package main

import (
	"fmt"
	"io"

	"tels/internal/expt"
)

// threshBench times the threshold-check engines (ilp | pbsat | portfolio)
// on the widest node functions of the algebraically factored MCNC
// benchmarks. Verdict and weight-vector identity across the modes is
// asserted inside expt.ThreshBench before any timing is reported.
func threshBench(quick, jsonOut bool, emit emitFn) error {
	names := []string{
		"maj5", "vote5", "mux16", "priority8", "t481x", "cm85a", "cmb",
		"term1", "comp4", "comp8", "comp", "i10",
	}
	minVars, maxVars, limit, reps := 6, 10, 64, 9
	if quick {
		names = []string{"cm85a", "term1", "comp", "i10"}
		limit, reps = 16, 2
	}
	rows, err := expt.ThreshBench(names, minVars, maxVars, limit, reps)
	if err != nil {
		return err
	}
	if jsonOut {
		if err := writeJSON(map[string]any{
			"experiment": "thresh", "min_vars": minVars, "max_vars": maxVars,
			"nodes_per_bench": limit, "reps": reps, "rows": rows,
		}); err != nil {
			return err
		}
	} else {
		fmt.Print(expt.RenderThreshBench(rows))
	}
	return emit("thresh.csv", func(w io.Writer) error { return expt.WriteThreshBenchCSV(w, rows) })
}
