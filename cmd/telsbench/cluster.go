package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"tels/internal/blif"
	"tels/internal/cluster"
	"tels/internal/mcnc"
	"tels/internal/service"
)

// This file implements `telsbench cluster`: the dispatch-layer scaling
// experiment behind BENCH_cluster.json. It boots fleets of 1, 2, and 4
// telsd managers inside this process (each with its own HTTP listener on
// loopback, a one-worker pool, and the shared consistent-hash ring),
// fans one Fig. 11 sweep grid across each fleet, and reports wall time,
// speedup, and scaling efficiency per fleet size — plus a cross-arm
// bit-identity check: every arm must produce the same curve as the
// single-node reference, or the experiment fails.
//
// The measurement is deliberately synthetic: all peers share one
// machine, so real synthesis would serialize on the physical cores and
// no dispatch layer could show scaling. Instead each point carries a
// fixed service.Config.ExecDelay sleep that stands in for per-point
// compute; the arms then measure how well the sweep coordinator keeps N
// one-worker peers busy (fan-out, hedging, stealing), which is exactly
// the layer this experiment exists to characterize.

// clusterArm is one fleet size's measurement.
type clusterArm struct {
	Peers        int     `json:"peers"`
	WallMS       int64   `json:"wall_ms"`
	Speedup      float64 `json:"speedup"`
	Efficiency   float64 `json:"efficiency"`
	RemotePoints int64   `json:"remote_points"`
	Steals       int64   `json:"steals"`
	Hedges       int64   `json:"hedges"`
	HedgesWon    int64   `json:"hedges_won"`
}

// benchPeer is one in-process daemon: manager, handler, loopback server.
type benchPeer struct {
	addr string
	m    *service.Manager
	srv  *http.Server
}

// startBenchFleet boots n managers with HTTP listeners on loopback. The
// listeners are created first so every peer's ring can be built from the
// full address list. With n == 1 the manager gets no cluster at all —
// the single-node arm is the plain pre-cluster code path.
func startBenchFleet(n int, delay time.Duration) ([]*benchPeer, error) {
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	peers := make([]*benchPeer, n)
	for i := range peers {
		var cl *cluster.Cluster
		if n > 1 {
			var err error
			cl, err = cluster.New(cluster.Config{Self: addrs[i], Peers: addrs})
			if err != nil {
				return nil, err
			}
		}
		// The shallow queue is the load balancer: a saturated owner answers
		// queue-full 503s, which the coordinator retries briefly and then
		// steals back locally, so hash skew degrades into balanced work
		// instead of a long tail on the most-loaded peer.
		m := service.New(service.Config{
			Workers:    1,
			QueueDepth: 2,
			Cluster:    cl,
			ExecDelay:  delay,
		})
		srv := &http.Server{Handler: service.NewHandler(m)}
		go srv.Serve(listeners[i])
		peers[i] = &benchPeer{addr: addrs[i], m: m, srv: srv}
	}
	return peers, nil
}

// closeBenchFleet drains managers before listeners: the coordinator's
// Close waits for its result pushes, which need the peer servers up.
func closeBenchFleet(peers []*benchPeer) {
	for _, p := range peers {
		if p != nil {
			p.m.Close()
		}
	}
	for _, p := range peers {
		if p != nil {
			p.srv.Close()
		}
	}
}

// runClusterArm fans one sweep across a fleet of n and returns the
// measurement plus the curve for the cross-arm identity check.
func runClusterArm(n int, req service.Request, delay time.Duration) (clusterArm, []service.SweepPoint, error) {
	arm := clusterArm{Peers: n}
	peers, err := startBenchFleet(n, delay)
	if err != nil {
		closeBenchFleet(peers)
		return arm, nil, err
	}
	defer closeBenchFleet(peers)
	coord := peers[0].m
	// A few points in flight per peer keeps every queue fed while letting
	// the shallow queues signal saturation early.
	req.Sweep.MaxInFlight = 3 * n
	start := time.Now()
	job, err := coord.Submit(req)
	if err != nil {
		return arm, nil, err
	}
	done, err := coord.Wait(context.Background(), job.ID)
	if err != nil {
		return arm, nil, err
	}
	arm.WallMS = time.Since(start).Milliseconds()
	if done.State != service.StateDone {
		return arm, nil, fmt.Errorf("cluster arm n=%d: sweep %s (%s)", n, done.State, done.Error)
	}
	sr := done.Result.Sweep
	if sr.FailedPoints != 0 {
		return arm, nil, fmt.Errorf("cluster arm n=%d: %d points failed", n, sr.FailedPoints)
	}
	ms := coord.MetricsSnapshot()
	arm.RemotePoints = ms["cluster_remote_points"]
	arm.Steals = ms["cluster_steals"]
	arm.Hedges = ms["cluster_hedges"]
	arm.HedgesWon = ms["cluster_hedges_won"]
	return arm, sr.Points, nil
}

// sameCurve reports the first divergence between two sweep curves, or ""
// when they are bit-identical in every reported figure.
func sameCurve(ref, got []service.SweepPoint) string {
	if len(ref) != len(got) {
		return fmt.Sprintf("point count %d vs %d", len(got), len(ref))
	}
	for i := range ref {
		r, g := ref[i], got[i]
		if g.V != r.V || g.DeltaOn != r.DeltaOn || g.Model != r.Model {
			return fmt.Sprintf("point %d grid coordinates differ", i)
		}
		if g.FailureRate != r.FailureRate || g.Yield != r.Yield {
			return fmt.Sprintf("point v=%g: failure rate %v vs %v", g.V, g.FailureRate, r.FailureRate)
		}
		if g.Gates != r.Gates || g.Area != r.Area {
			return fmt.Sprintf("point v=%g: gates/area %d/%d vs %d/%d", g.V, g.Gates, g.Area, r.Gates, r.Area)
		}
		if g.Error != "" {
			return fmt.Sprintf("point v=%g: error %q", g.V, g.Error)
		}
	}
	return ""
}

// clusterBench runs the 1/2/4-peer arms and renders or JSON-encodes the
// comparison.
func clusterBench(quick, jsonOut bool, seed int64, emit emitFn) error {
	const name = "cm152a"
	const deltaOn = 2
	delay := 60 * time.Millisecond
	points := 64
	trials := 50
	if quick {
		delay = 20 * time.Millisecond
		points = 24
		trials = 50
	}
	vs := make([]float64, points)
	for i := range vs {
		vs[i] = 0.2 + 0.05*float64(i) // dense enough that hash skew averages out
	}
	src, err := blif.WriteString(mcnc.Build(name))
	if err != nil {
		return err
	}
	req := service.Request{
		BLIF: src,
		Kind: "sweep",
		Yield: service.YieldSpec{
			Model:     "weight",
			MaxTrials: trials,
			HalfWidth: 0.001, // disable early stop: every point costs the same
			Seed:      seed,
		},
		Sweep: service.SweepSpec{Vs: vs},
	}
	req.Options.DeltaOn = deltaOn

	var arms []clusterArm
	var ref []service.SweepPoint
	for _, n := range []int{1, 2, 4} {
		arm, curve, err := runClusterArm(n, req, delay)
		if err != nil {
			return err
		}
		if n == 1 {
			ref = curve
		} else if diff := sameCurve(ref, curve); diff != "" {
			return fmt.Errorf("cluster arm n=%d diverges from single node: %s", n, diff)
		}
		arm.Speedup = 1
		if len(arms) > 0 {
			arm.Speedup = float64(arms[0].WallMS) / float64(arm.WallMS)
		}
		arm.Efficiency = arm.Speedup / float64(n)
		arms = append(arms, arm)
	}

	if jsonOut {
		if err := writeJSON(map[string]any{
			"experiment": "cluster", "mode": "synthetic",
			"benchmark": name, "delta_on": deltaOn,
			"exec_delay_ms": delay.Milliseconds(), "points": points,
			"trials": trials, "seed": seed, "workers_per_peer": 1,
			"curve_identical": true, "arms": arms,
		}); err != nil {
			return err
		}
	} else {
		fmt.Printf("Cluster sweep fan-out — %s, δon=%d, %d points, %d trials/point, exec delay %s, 1 worker/peer\n",
			name, deltaOn, points, trials, delay)
		fmt.Println("(synthetic: peers share one machine, per-point compute is a fixed sleep;")
		fmt.Println(" the measurement characterizes the dispatch layer, not the synthesizer)")
		fmt.Println()
		fmt.Printf("%5s | %8s | %7s | %10s | %6s %6s %6s\n",
			"peers", "wall ms", "speedup", "efficiency", "remote", "steal", "hedge")
		fmt.Println("----------------------------------------------------------------")
		for _, a := range arms {
			fmt.Printf("%5d | %8d | %6.2fx | %9.0f%% | %6d %6d %6d\n",
				a.Peers, a.WallMS, a.Speedup, 100*a.Efficiency, a.RemotePoints, a.Steals, a.Hedges)
		}
		fmt.Println("\nall arms produced bit-identical curves")
	}
	return emit("cluster.csv", func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "peers,wall_ms,speedup,efficiency,remote_points,steals,hedges,hedges_won"); err != nil {
			return err
		}
		for _, a := range arms {
			if _, err := fmt.Fprintf(w, "%d,%d,%g,%g,%d,%d,%d,%d\n",
				a.Peers, a.WallMS, a.Speedup, a.Efficiency, a.RemotePoints, a.Steals, a.Hedges, a.HedgesWon); err != nil {
				return err
			}
		}
		return nil
	})
}
