// Command telsbench regenerates the paper's experimental results on the
// recreated MCNC benchmarks:
//
//	telsbench table1          Table I   — gates/levels/area, one-to-one vs TELS (ψ=3)
//	telsbench fig10           Fig. 10   — gate count vs fanin restriction on comp
//	telsbench fig11           Fig. 11   — failure rate vs weight variation, per δon
//	telsbench fig12           Fig. 12   — failure rate and area vs δon at v=0.8
//	telsbench timing          §VI-A     — factoring vs synthesis time split
//	telsbench ablation        collapse / Theorem-2 contribution (extension)
//	telsbench heuristics      splitting-strategy comparison (extension)
//	telsbench unate           §VI-B unate/threshold census
//	telsbench weights         synthesis under RTD weight-ratio bounds (extension)
//	telsbench seeds           tie-break-seed robustness (extension)
//	telsbench sweep           Fig. 11 grid through the telsd sweep job kind,
//	                          fanned vs sequential wall-clock comparison
//	telsbench resyn           selective re-synthesis (internal/resyn) vs the
//	                          paper's global-δon hardening: area at equal yield
//	telsbench fsimwidth       packed-engine lane-width sweep: the Fig. 11 inner
//	                          loop timed at W=1 vs 4 vs 8 ×64-bit blocks
//	telsbench store           durable-store microbench: WAL append throughput
//	                          and cold-start recovery time vs journal size
//	telsbench cluster         sweep fan-out scaling across 1/2/4 in-process
//	                          telsd peers (synthetic per-point delay)
//	telsbench thresh          threshold-check solver portfolio: ilp vs pbsat vs
//	                          portfolio wall-clock on the widest MCNC nodes
//	telsbench netcore         arena-backed netcore representation vs the pointer
//	                          network: build/collapse/sweep ns/op and allocs/op
//	                          on the largest MCNC benchmarks (BENCH_netcore.json)
//	telsbench all             everything above (except sweep, resyn, fsimwidth,
//	                          store, cluster, thresh)
//
// The -quick flag shrinks the Monte-Carlo grids and skips the largest
// benchmark (i10) for a fast smoke run. The -json flag replaces the
// rendered tables of table1, fig10, fig11, fig12, resyn, fsimwidth,
// store, and cluster with a machine-readable JSON document on stdout
// (BENCH_fig11.json, BENCH_resyn.json, BENCH_fsim_width.json,
// BENCH_store.json, and BENCH_cluster.json in the repo root are such
// baselines, regenerated with `telsbench -quick -json fig11` and
// friends).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"tels/internal/blif"
	"tels/internal/cli"
	"tels/internal/core"
	"tels/internal/enum"
	"tels/internal/expt"
	"tels/internal/mcnc"
	"tels/internal/resyn"
	"tels/internal/service"
)

func main() {
	var (
		fanin   = flag.Int("fanin", 3, "fanin restriction ψ (Table I uses 3)")
		quick   = flag.Bool("quick", false, "smaller grids; skip i10")
		trials  = flag.Int("trials", 10, "Monte-Carlo disturbances per circuit (fig11/fig12)")
		seed    = flag.Int64("seed", 1, "experiment RNG seed")
		csvDir  = flag.String("csv", "", "also write plottable CSV files into this directory")
		jsonOut = flag.Bool("json", false, "emit JSON instead of tables (table1, fig10, fig11, fig12)")
		quiet   = flag.Bool("q", false, "suppress informational diagnostics")
	)
	flag.Parse()
	t := cli.New("telsbench")
	t.Quiet = *quiet
	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	t.Fail(run(cmd, *fanin, *quick, *trials, *seed, *csvDir, *jsonOut))
}

// writeJSON renders one experiment's machine-readable document.
func writeJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func run(cmd string, fanin int, quick bool, trials int, seed int64, csvDir string, jsonOut bool) error {
	o := core.Options{Fanin: fanin, DeltaOn: 0, DeltaOff: 1, Seed: seed}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	emit := func(name string, write func(io.Writer) error) error {
		if csvDir == "" {
			return nil
		}
		f, err := os.Create(filepath.Join(csvDir, name))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	_ = emit
	switch cmd {
	case "table1", "fig10", "fig11", "fig12", "resyn", "fsimwidth", "store", "cluster", "tenants", "thresh", "netcore":
	default:
		if jsonOut {
			return fmt.Errorf("-json supports table1, fig10, fig11, fig12, resyn, fsimwidth, store, cluster, tenants, thresh, and netcore, not %q", cmd)
		}
	}
	switch cmd {
	case "table1":
		return table1(o, quick, jsonOut, emit)
	case "fig10":
		return fig10(o, quick, jsonOut, emit)
	case "fig11":
		return fig11(trials, seed, quick, jsonOut, emit)
	case "fig12":
		return fig12(trials, seed, quick, jsonOut, emit)
	case "timing":
		return timing(o, quick)
	case "ablation":
		return ablation(o, quick)
	case "heuristics":
		return heuristics(o, quick)
	case "unate":
		return unateCensus()
	case "weights":
		return weightSweep(o)
	case "seeds":
		return seedSweep(o, quick)
	case "sweep":
		return serviceSweep(quick, seed)
	case "resyn":
		return resynBench(quick, jsonOut, seed, emit)
	case "fsimwidth":
		return fsimWidth(quick, jsonOut, seed, emit)
	case "store":
		return storeBench(quick, jsonOut, emit)
	case "cluster":
		return clusterBench(quick, jsonOut, seed, emit)
	case "tenants":
		return tenantsBench(quick, jsonOut, emit)
	case "thresh":
		return threshBench(quick, jsonOut, emit)
	case "netcore":
		return netcoreBench(quick, jsonOut, emit)
	case "all":
		for _, c := range []func() error{
			func() error { return table1(o, quick, false, emit) },
			func() error { return fig10(o, quick, false, emit) },
			func() error { return fig11(trials, seed, quick, false, emit) },
			func() error { return fig12(trials, seed, quick, false, emit) },
			func() error { return timing(o, quick) },
			func() error { return ablation(o, quick) },
			func() error { return heuristics(o, quick) },
			func() error { return weightSweep(o) },
			func() error { return seedSweep(o, quick) },
			unateCensus,
		} {
			if err := c(); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q (want table1, fig10, fig11, fig12, timing, ablation, heuristics, weights, seeds, unate, sweep, resyn, fsimwidth, store, cluster, tenants, or all)", cmd)
	}
}

// emitFn writes one experiment's CSV artifact (no-op when -csv is unset).
type emitFn func(name string, write func(io.Writer) error) error

// unateCensus re-derives the §VI-B numbers behind the Fig. 10 analysis:
// how many positive-unate permutation classes of each arity are threshold
// functions.
func unateCensus() error {
	fmt.Println("Unate census — threshold fraction of positive-unate classes (§VI-B)")
	fmt.Printf("%5s | %8s | %10s\n", "vars", "classes", "threshold")
	fmt.Println("---------------------------")
	for _, r := range enum.Census(5) {
		fmt.Printf("%5d | %8d | %10d\n", r.Vars, r.Classes, r.Threshold)
	}
	fmt.Println("(paper §VI-B: all of ≤3 vars, 17/20 at 4 vars, 92/168 at 5 vars;")
	fmt.Println(" the 5-var threshold count 92 matches; see EXPERIMENTS.md on 180 vs 168)")
	return nil
}

func weightSweep(o core.Options) error {
	// Weighted gates only appear once the fanin restriction allows them;
	// sweep at ψ = 6 where the ILP starts assigning multi-unit weights.
	o.Fanin = 6
	points, err := expt.WeightSweep("cordic", []int{0, 4, 3, 2, 1}, o)
	if err != nil {
		return err
	}
	fmt.Print(expt.RenderWeightSweep("cordic", points))
	return nil
}

func seedSweep(o core.Options, quick bool) error {
	names := []string{"cm152a", "cm85a", "pm1", "comp", "term1"}
	if quick {
		names = names[:3]
	}
	rows := make([]expt.SeedStats, 0, len(names))
	for _, name := range names {
		r, err := expt.SeedSweep(name, 9, o)
		if err != nil {
			return err
		}
		rows = append(rows, r)
	}
	fmt.Print(expt.RenderSeedSweep(rows))
	return nil
}

func heuristics(o core.Options, quick bool) error {
	names := tableSet(quick)
	if quick {
		names = names[:5]
	}
	rows, err := expt.Heuristics(names, o)
	if err != nil {
		return err
	}
	fmt.Print(expt.RenderHeuristics(rows))
	return nil
}

func ablation(o core.Options, quick bool) error {
	names := tableSet(quick)
	if quick {
		names = names[:5]
	}
	rows, err := expt.Ablation(names, o)
	if err != nil {
		return err
	}
	fmt.Print(expt.RenderAblation(rows))
	return nil
}

func tableSet(quick bool) []string {
	names := mcnc.TableISet()
	if !quick {
		return names
	}
	var out []string
	for _, n := range names {
		if n != "i10" {
			out = append(out, n)
		}
	}
	return out
}

func table1(o core.Options, quick, jsonOut bool, emit emitFn) error {
	if !jsonOut {
		fmt.Printf("Table I — threshold synthesis results with fanin restriction %d\n\n", o.Fanin)
	}
	rows, err := expt.TableI(tableSet(quick), o)
	if err != nil {
		return err
	}
	if jsonOut {
		if err := writeJSON(map[string]any{
			"experiment": "table1", "fanin": o.Fanin, "rows": rows,
		}); err != nil {
			return err
		}
	} else {
		fmt.Print(expt.RenderTableI(rows))
	}
	return emit("table1.csv", func(w io.Writer) error { return expt.WriteTableICSV(w, rows) })
}

func fig10(o core.Options, quick, jsonOut bool, emit emitFn) error {
	fanins := []int{3, 4, 5, 6, 7, 8}
	if quick {
		fanins = []int{3, 4, 5}
	}
	points, err := expt.Fig10("comp", fanins, o)
	if err != nil {
		return err
	}
	if jsonOut {
		if err := writeJSON(map[string]any{
			"experiment": "fig10", "benchmark": "comp", "points": points,
		}); err != nil {
			return err
		}
	} else {
		fmt.Print(expt.RenderFig10("comp", points))
	}
	return emit("fig10.csv", func(w io.Writer) error { return expt.WriteFig10CSV(w, points) })
}

func defectGrid(quick bool) (vs []float64, deltaOns []int) {
	deltaOns = []int{0, 1, 2, 3}
	if quick {
		return []float64{0, 0.8, 1.6, 2.4}, deltaOns
	}
	for v := 0.0; v <= 3.01; v += 0.25 {
		vs = append(vs, v)
	}
	return vs, deltaOns
}

func fig11(trials int, seed int64, quick, jsonOut bool, emit emitFn) error {
	vs, deltaOns := defectGrid(quick)
	names := expt.DefectSet()
	if quick {
		names = names[:6]
	}
	curves, err := expt.Fig11(names, vs, deltaOns, trials, seed)
	if err != nil {
		return err
	}
	if jsonOut {
		if err := writeJSON(map[string]any{
			"experiment": "fig11", "benchmarks": names,
			"trials": trials, "seed": seed, "curves": curves,
		}); err != nil {
			return err
		}
	} else {
		fmt.Print(expt.RenderFig11(curves))
	}
	return emit("fig11.csv", func(w io.Writer) error { return expt.WriteFig11CSV(w, curves) })
}

func fig12(trials int, seed int64, quick, jsonOut bool, emit emitFn) error {
	_, deltaOns := defectGrid(quick)
	names := expt.DefectSet()
	if quick {
		names = names[:6]
	}
	points, err := expt.Fig12(names, 0.8, deltaOns, trials, seed)
	if err != nil {
		return err
	}
	if jsonOut {
		if err := writeJSON(map[string]any{
			"experiment": "fig12", "benchmarks": names, "v": 0.8,
			"trials": trials, "seed": seed, "points": points,
		}); err != nil {
			return err
		}
	} else {
		fmt.Print(expt.RenderFig12(0.8, points))
	}
	return emit("fig12.csv", func(w io.Writer) error { return expt.WriteFig12CSV(w, 0.8, points) })
}

func timing(o core.Options, quick bool) error {
	rows, err := expt.Timing(tableSet(quick), o)
	if err != nil {
		return err
	}
	fmt.Print(expt.RenderTiming(rows))
	return nil
}

// serviceSweep reproduces one Fig. 11 curve (failure rate vs weight
// variation at δon=2) through the service's sweep job kind and compares
// its wall-clock against the same six points run as sequential standalone
// yield jobs. The sweep synthesizes the δon prefix once and fans the
// points across the worker pool; the sequential loop pays the full
// parse → synthesize → verify → estimate pipeline per point.
func serviceSweep(quick bool, seed int64) error {
	const name = "cm85a"
	const deltaOn = 2
	vs := []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
	maxTrials := 4000
	if quick {
		vs = []float64{1.0, 2.0, 3.0} // 3-point smoke grid
		maxTrials = 400
	}
	src, err := blif.WriteString(mcnc.Build(name))
	if err != nil {
		return err
	}
	yield := service.YieldSpec{
		Model:     "weight",
		MaxTrials: maxTrials,
		HalfWidth: 0.001, // effectively disable early stop: every point pays MaxTrials
		Seed:      seed,
	}
	base := service.Request{BLIF: src, Yield: yield}
	base.Options.DeltaOn = deltaOn

	// Sequential baseline: six standalone yield jobs, each awaited before
	// the next is submitted. A fresh manager per arm keeps the caches
	// independent.
	seqMgr := service.New(service.Config{})
	defer seqMgr.Close()
	seqStart := time.Now()
	for _, v := range vs {
		req := base
		req.Kind = "yield"
		req.Yield.V = v
		job, err := seqMgr.Submit(req)
		if err != nil {
			return err
		}
		done, err := seqMgr.Wait(context.Background(), job.ID)
		if err != nil {
			return err
		}
		if done.State != service.StateDone {
			return fmt.Errorf("sequential point v=%g: %s (%s)", v, done.State, done.Error)
		}
	}
	seq := time.Since(seqStart)

	fanMgr := service.New(service.Config{})
	defer fanMgr.Close()
	req := base
	req.Kind = "sweep"
	req.Sweep = service.SweepSpec{Vs: vs}
	fanStart := time.Now()
	job, err := fanMgr.Submit(req)
	if err != nil {
		return err
	}
	done, err := fanMgr.Wait(context.Background(), job.ID)
	if err != nil {
		return err
	}
	fan := time.Since(fanStart)
	if done.State != service.StateDone {
		return fmt.Errorf("sweep: %s (%s)", done.State, done.Error)
	}
	sr := done.Result.Sweep

	fmt.Printf("Fig. 11 via telsd sweep — %s, δon=%d, %d trials/point, %d workers\n\n",
		name, deltaOn, maxTrials, fanMgr.Workers())
	fmt.Printf("%6s | %12s\n", "v", "failure rate")
	fmt.Println("---------------------")
	for _, p := range sr.Points {
		fmt.Printf("%6.2f | %12.4f\n", p.V, p.FailureRate)
	}
	fmt.Printf("\nsequential yield jobs: %8.1f ms\n", float64(seq.Microseconds())/1000)
	fmt.Printf("sweep job (fanned):    %8.1f ms\n", float64(fan.Microseconds())/1000)
	fmt.Printf("speedup:               %8.2fx\n", float64(seq)/float64(fan))
	return nil
}

// fsimWidth benchmarks the packed engine's lane-width abstraction: the
// Fig. 11 inner loop (one perturbed threshold evaluation plus golden
// comparison per Monte-Carlo trial) timed at W = 1, 4, and 8 ×64-bit
// blocks on benchmarks spanning small exhaustive batches to wide sampled
// ones. Every width replays the identical seeded RNG stream, and
// expt.WidthBench fails if the per-width failure counts diverge, so the
// timing table doubles as an end-to-end bit-identity check. The sweep
// uses its own trial count (the -trials flag sizes the fig11/fig12
// grids, not this loop).
func fsimWidth(quick, jsonOut bool, seed int64, emit emitFn) error {
	const v = 1.6
	names := []string{"parity8", "rd53", "cm85a", "comp", "term1"}
	samples := 1 << 14
	trials := 60
	if quick {
		names = []string{"parity8", "cm85a", "comp"}
		samples = 1 << 12
		trials = 24
	}
	rows, err := expt.WidthBench(names, v, trials, samples, seed)
	if err != nil {
		return err
	}
	if jsonOut {
		if err := writeJSON(map[string]any{
			"experiment": "fsimwidth", "v": v, "trials": trials,
			"samples": samples, "seed": seed, "rows": rows,
		}); err != nil {
			return err
		}
	} else {
		fmt.Print(expt.RenderWidthBench(v, rows))
	}
	return emit("fsimwidth.csv", func(w io.Writer) error { return expt.WriteWidthBenchCSV(w, rows) })
}

// resynRow is one benchmark's selective-vs-global hardening comparison.
type resynRow struct {
	Benchmark     string  `json:"benchmark"`
	BaseYield     float64 `json:"base_yield"`
	BaseArea      int     `json:"base_area"`
	GlobalYield   float64 `json:"global_yield"`
	GlobalArea    int     `json:"global_area"`
	SelectiveYld  float64 `json:"selective_yield"`
	SelectiveArea int     `json:"selective_area"`
	Iterations    int     `json:"iterations"`
	Hardened      int     `json:"hardened_gates"`
	Stop          string  `json:"stop"`
	AreaSaved     int     `json:"area_saved"`
	Win           bool    `json:"win"`
}

// resynBench compares defect-aware selective re-synthesis against the
// paper's Fig. 12 recipe of hardening every gate by raising the global
// δon. Per benchmark: measure yield of the δon=1 network and of the
// globally hardened δon=2 network under weight variation v=1.2, then run
// the resyn loop from the δon=1 network with the global network's yield
// (its lower confidence bound — equal yield up to the Monte-Carlo
// resolution) as the target, capping per-gate hardening at the global
// arm's δon=2 so the loop spreads margin to blamed gates rather than
// over-hardening a few. A win is reaching that target with strictly
// smaller total area; it happens when logical masking concentrates
// first-flip blame in a subset of the gates. All three arms run as jobs
// through one service manager, so the resyn arm's baseline synthesis
// and fragment memo exercise the shared content-addressed cache.
// (δon=0 is no use as a baseline here: a minimal-area vector holds some
// on-set minterm at exactly Σwx = T, so any negative weight perturbation
// flips it and the base yield is pinned near zero at every v.)
func resynBench(quick, jsonOut bool, seed int64, emit emitFn) error {
	names := []string{"cm152a", "z4ml", "mux4", "dec4", "misex1", "cm85a"}
	maxTrials := 2000
	maxIters := 12
	if quick {
		maxTrials = 600
	}
	const v = 1.2
	m := service.New(service.Config{})
	defer m.Close()
	runJob := func(req service.Request) (*service.Result, error) {
		job, err := m.Submit(req)
		if err != nil {
			return nil, err
		}
		done, err := m.Wait(context.Background(), job.ID)
		if err != nil {
			return nil, err
		}
		if done.State != service.StateDone {
			return nil, fmt.Errorf("%s job on %s: %s (%s)", req.Kind, req.BLIF[:20], done.State, done.Error)
		}
		return done.Result, nil
	}
	yield := service.YieldSpec{
		Model:     "weight",
		V:         v,
		MaxTrials: maxTrials,
		HalfWidth: 0.001, // effectively disable early stop
		Seed:      seed,
	}
	rows := make([]resynRow, 0, len(names))
	for _, name := range names {
		src, err := blif.WriteString(mcnc.Build(name))
		if err != nil {
			return err
		}
		base := service.Request{BLIF: src, Kind: "yield", Yield: yield}
		base.Options.DeltaOn = 1
		r0, err := runJob(base)
		if err != nil {
			return err
		}
		global := base
		global.Options.DeltaOn = 2
		r1, err := runJob(global)
		if err != nil {
			return err
		}
		sel := service.Request{BLIF: src, Kind: "resyn", Yield: yield,
			Resyn: service.ResynSpec{TargetYield: 1 - r1.Yield.Hi, MaxIters: maxIters, TopK: 3, MaxDeltaOn: 2}}
		sel.Options.DeltaOn = 1
		rs, err := runJob(sel)
		if err != nil {
			return err
		}
		rep := rs.Resyn
		row := resynRow{
			Benchmark:     name,
			BaseYield:     r0.Yield.Yield,
			BaseArea:      r0.Stats.Area,
			GlobalYield:   r1.Yield.Yield,
			GlobalArea:    r1.Stats.Area,
			SelectiveYld:  rep.FinalYield,
			SelectiveArea: rep.FinalArea,
			Iterations:    len(rep.Iterations),
			Hardened:      rep.HardenedGates,
			Stop:          rep.Stop,
			AreaSaved:     r1.Stats.Area - rep.FinalArea,
		}
		row.Win = row.Stop == resyn.StopTargetYield && row.SelectiveArea < row.GlobalArea
		rows = append(rows, row)
	}
	if jsonOut {
		if err := writeJSON(map[string]any{
			"experiment": "resyn", "model": "weight-variation", "v": v,
			"max_trials": maxTrials, "seed": seed, "rows": rows,
		}); err != nil {
			return err
		}
	} else {
		fmt.Printf("Selective re-synthesis vs global δon hardening — weight variation v=%.1f, %d trials\n\n", v, maxTrials)
		fmt.Printf("%-8s | %7s %6s | %7s %6s | %7s %6s %5s | %6s %s\n",
			"bench", "y(δ1)", "area", "y(δ2)", "area", "y(sel)", "area", "saved", "iters", "stop")
		fmt.Println("--------------------------------------------------------------------------------")
		wins := 0
		for _, r := range rows {
			mark := " "
			if r.Win {
				mark = "*"
				wins++
			}
			fmt.Printf("%-8s | %7.4f %6d | %7.4f %6d | %7.4f %6d %4d%s | %6d %s\n",
				r.Benchmark, r.BaseYield, r.BaseArea, r.GlobalYield, r.GlobalArea,
				r.SelectiveYld, r.SelectiveArea, r.AreaSaved, mark, r.Iterations, r.Stop)
		}
		fmt.Printf("\n%d/%d benchmarks reach the global-δon yield at strictly smaller area (*)\n", wins, len(rows))
	}
	return emit("resyn.csv", func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "benchmark,base_yield,base_area,global_yield,global_area,selective_yield,selective_area,iterations,hardened,stop,win"); err != nil {
			return err
		}
		for _, r := range rows {
			if _, err := fmt.Fprintf(w, "%s,%g,%d,%g,%d,%g,%d,%d,%d,%s,%t\n",
				r.Benchmark, r.BaseYield, r.BaseArea, r.GlobalYield, r.GlobalArea,
				r.SelectiveYld, r.SelectiveArea, r.Iterations, r.Hardened, r.Stop, r.Win); err != nil {
				return err
			}
		}
		return nil
	})
}
