package main

import "testing"

func TestQuickCommands(t *testing.T) {
	// Exercise every experiment path end to end in quick mode; the
	// full-grid runs are covered by the expt package tests and the
	// repository benchmarks.
	for _, cmd := range []string{
		"table1", "fig10", "fig11", "fig12", "timing",
		"ablation", "heuristics", "weights", "seeds", "unate",
		"fsimwidth",
	} {
		if err := run(cmd, 3, true, 2, 1, t.TempDir(), false); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
}

func TestJSONCommands(t *testing.T) {
	// The four table/figure experiments emit JSON; everything else
	// rejects the flag.
	for _, cmd := range []string{"table1", "fig10", "fig11", "fig12", "fsimwidth"} {
		if err := run(cmd, 3, true, 2, 1, "", true); err != nil {
			t.Fatalf("%s -json: %v", cmd, err)
		}
	}
	for _, cmd := range []string{"timing", "unate", "all"} {
		if err := run(cmd, 3, true, 2, 1, "", true); err == nil {
			t.Fatalf("%s -json: expected an unsupported-flag error", cmd)
		}
	}
}

func TestUnknownCommand(t *testing.T) {
	if err := run("wat", 3, true, 1, 1, "", false); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestTableSetQuickExcludesI10(t *testing.T) {
	for _, name := range tableSet(true) {
		if name == "i10" {
			t.Fatal("quick set must exclude i10")
		}
	}
	found := false
	for _, name := range tableSet(false) {
		if name == "i10" {
			found = true
		}
	}
	if !found {
		t.Fatal("full set must include i10")
	}
}
