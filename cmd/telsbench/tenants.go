package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"tels/internal/blif"
	"tels/internal/mcnc"
	"tels/internal/service"
)

// This file implements `telsbench tenants`: the admission-layer
// experiment behind BENCH_tenants.json. Two tenants compete for one
// small worker pool — "heavy" floods a large backlog, "light" submits a
// small interactive batch right behind it — and the experiment measures
// each tenant's queue wait (submit → dispatch) under three arms:
//
//   solo  light runs alone: the no-contention baseline
//   fair  weighted-fair admission (the default): per-tenant queues,
//         stride-scheduled by weight
//   fifo  single shared queue: the pre-tenancy baseline
//
// Like the cluster experiment, the measurement is synthetic: every job
// carries a fixed ExecDelay sleep standing in for per-job compute, so
// the arms characterize the admission queue, not the synthesizer. The
// headline figure is light's p95 wait: under FIFO it grows with heavy's
// whole backlog; under weighted-fair it stays near the solo baseline no
// matter how deep heavy's flood is.

// tenantArm is one admission policy's measurement.
type tenantArm struct {
	Arm          string  `json:"arm"`
	HeavyJobs    int     `json:"heavy_jobs"`
	LightJobs    int     `json:"light_jobs"`
	WallMS       int64   `json:"wall_ms"`
	LightP50MS   float64 `json:"light_p50_ms"`
	LightP95MS   float64 `json:"light_p95_ms"`
	HeavyP50MS   float64 `json:"heavy_p50_ms"`
	HeavyP95MS   float64 `json:"heavy_p95_ms"`
	LightVsSolo  float64 `json:"light_p95_vs_solo"`
	LightMaxMS   float64 `json:"light_max_ms"`
}

// waitQuantiles returns the p50/p95/max queue wait of the jobs in ms.
func waitQuantiles(jobs []service.Job) (p50, p95, max float64) {
	if len(jobs) == 0 {
		return 0, 0, 0
	}
	waits := make([]float64, 0, len(jobs))
	for _, j := range jobs {
		waits = append(waits, float64(j.Started.Sub(j.Created).Microseconds())/1000)
	}
	sort.Float64s(waits)
	return waits[len(waits)/2], waits[(len(waits)*95)/100], waits[len(waits)-1]
}

// runTenantArm floods heavy's backlog, submits light's batch behind it,
// waits for light, and measures both tenants' queue waits.
func runTenantArm(arm string, src string, heavyJobs, lightJobs int, delay time.Duration) (tenantArm, error) {
	out := tenantArm{Arm: arm, HeavyJobs: heavyJobs, LightJobs: lightJobs}
	policy := service.AdmissionFair
	if arm == "fifo" {
		policy = service.AdmissionFIFO
	}
	m := service.New(service.Config{
		Workers:    2,
		QueueDepth: heavyJobs + lightJobs + 8,
		Admission:  policy,
		ExecDelay:  delay,
	})
	defer m.Close()

	req := func(seed int64) service.Request {
		r := service.Request{BLIF: src}
		r.Options.Seed = seed // distinct digests: no cache coalescing
		return r
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	start := time.Now()
	var heavyIDs, lightIDs []string
	for i := 0; i < heavyJobs; i++ {
		j, err := m.SubmitAs(service.Caller{Tenant: "heavy"}, req(int64(1000+i)))
		if err != nil {
			return out, err
		}
		heavyIDs = append(heavyIDs, j.ID)
	}
	for i := 0; i < lightJobs; i++ {
		j, err := m.SubmitAs(service.Caller{Tenant: "light"}, req(int64(900000+i)))
		if err != nil {
			return out, err
		}
		lightIDs = append(lightIDs, j.ID)
	}
	collect := func(ids []string) ([]service.Job, error) {
		jobs := make([]service.Job, 0, len(ids))
		for _, id := range ids {
			j, err := m.Wait(ctx, id)
			if err != nil {
				return nil, err
			}
			if j.State != service.StateDone {
				return nil, fmt.Errorf("tenants arm %s: job %s ended %s (%s)", arm, id, j.State, j.Error)
			}
			jobs = append(jobs, j)
		}
		return jobs, nil
	}
	light, err := collect(lightIDs)
	if err != nil {
		return out, err
	}
	heavy, err := collect(heavyIDs)
	if err != nil {
		return out, err
	}
	out.WallMS = time.Since(start).Milliseconds()
	out.LightP50MS, out.LightP95MS, out.LightMaxMS = waitQuantiles(light)
	out.HeavyP50MS, out.HeavyP95MS, _ = waitQuantiles(heavy)
	return out, nil
}

// tenantsBench runs the solo/fair/fifo arms and renders the comparison.
func tenantsBench(quick, jsonOut bool, emit emitFn) error {
	const name = "cm152a"
	delay := 10 * time.Millisecond
	heavyJobs, lightJobs := 300, 15
	if quick {
		delay = 5 * time.Millisecond
		heavyJobs, lightJobs = 120, 10
	}
	src, err := blif.WriteString(mcnc.Build(name))
	if err != nil {
		return err
	}

	solo, err := runTenantArm("solo", src, 0, lightJobs, delay)
	if err != nil {
		return err
	}
	fair, err := runTenantArm("fair", src, heavyJobs, lightJobs, delay)
	if err != nil {
		return err
	}
	fifo, err := runTenantArm("fifo", src, heavyJobs, lightJobs, delay)
	if err != nil {
		return err
	}
	norm := func(a *tenantArm) {
		if solo.LightP95MS > 0 {
			a.LightVsSolo = a.LightP95MS / solo.LightP95MS
		}
	}
	solo.LightVsSolo = 1
	norm(&fair)
	norm(&fifo)
	arms := []tenantArm{solo, fair, fifo}

	if jsonOut {
		return writeJSON(map[string]any{
			"experiment": "tenants", "mode": "synthetic",
			"benchmark": name, "exec_delay_ms": delay.Milliseconds(),
			"workers": 2, "heavy_jobs": heavyJobs, "light_jobs": lightJobs,
			"arms": arms,
		})
	}
	fmt.Printf("Multi-tenant admission — %s, %d heavy + %d light jobs, %s/job, 2 workers\n",
		name, heavyJobs, lightJobs, delay)
	fmt.Println("(synthetic: per-job compute is a fixed sleep; the measurement")
	fmt.Println(" characterizes the admission queue, not the synthesizer)")
	fmt.Println()
	fmt.Printf("%5s | %8s | light wait p50/p95/max ms | heavy p50/p95 ms | %9s\n",
		"arm", "wall ms", "p95 vs solo")
	fmt.Println("--------------------------------------------------------------------------")
	for _, a := range arms {
		fmt.Printf("%5s | %8d | %8.1f %8.1f %8.1f | %8.1f %8.1f | %10.1fx\n",
			a.Arm, a.WallMS, a.LightP50MS, a.LightP95MS, a.LightMaxMS,
			a.HeavyP50MS, a.HeavyP95MS, a.LightVsSolo)
	}
	fmt.Println("\nfair admission keeps the light tenant near its solo latency; fifo starves it")
	return emit("tenants.csv", func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "arm,wall_ms,light_p50_ms,light_p95_ms,light_max_ms,heavy_p50_ms,heavy_p95_ms,light_p95_vs_solo"); err != nil {
			return err
		}
		for _, a := range arms {
			if _, err := fmt.Fprintf(w, "%s,%d,%g,%g,%g,%g,%g,%g\n",
				a.Arm, a.WallMS, a.LightP50MS, a.LightP95MS, a.LightMaxMS,
				a.HeavyP50MS, a.HeavyP95MS, a.LightVsSolo); err != nil {
				return err
			}
		}
		return nil
	})
}
