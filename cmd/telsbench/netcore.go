package main

import (
	"fmt"
	"io"

	"tels/internal/expt"
)

// netcoreBench compares the pointer and arena network representations on
// the largest MCNC benchmarks: BLIF build, eliminate-0 collapse, and
// sweep, reporting ns/op and allocs/op per stage. Both paths of every
// stage are asserted byte-identical before any timing runs.
func netcoreBench(quick, jsonOut bool, emit emitFn) error {
	names := []string{"i10", "comp", "squar5"}
	reps := 9
	if quick {
		names = []string{"comp", "squar5", "term1"}
		reps = 3
	}
	rows, err := expt.NetcoreBench(names, reps)
	if err != nil {
		return err
	}
	if jsonOut {
		if err := writeJSON(map[string]any{
			"experiment": "netcore", "reps": reps, "rows": rows,
		}); err != nil {
			return err
		}
	} else {
		fmt.Print(expt.RenderNetcoreBench(rows))
	}
	return emit("netcore.csv", func(w io.Writer) error { return expt.WriteNetcoreBenchCSV(w, rows) })
}
