package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"tels/internal/store"
)

// This file benchmarks internal/store, the WAL-backed durability layer
// under telsd -data-dir: sequential append throughput of the journal,
// and cold-start recovery time as a function of journal size. The
// committed baseline BENCH_store.json is regenerated with
// `telsbench -quick -json store`.

// storeAppendRow is one append-throughput measurement.
type storeAppendRow struct {
	Records      int     `json:"records"`
	Bytes        int64   `json:"bytes"`
	WallMS       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	MBPerSec     float64 `json:"mb_per_sec"`
	Sync         bool    `json:"sync"`
}

// storeRecoveryRow is one cold-open measurement against a journal of a
// given size.
type storeRecoveryRow struct {
	Records        int     `json:"records"`
	JournalBytes   int64   `json:"journal_bytes"`
	Segments       int     `json:"segments"`
	SnapshotLoaded bool    `json:"snapshot_loaded"`
	JobsRecovered  int     `json:"jobs_recovered"`
	EventsReplayed int     `json:"events_replayed"`
	RecoveryMS     float64 `json:"recovery_ms"`
}

// storeEvents synthesizes a realistic journal stream: each job
// contributes a submitted event carrying a request blob, a started
// event, two progress ticks, and a finished event — five records per
// job, the cadence a sweep-heavy telsd workload produces.
func storeEvents(records int) []store.Event {
	// A request payload in the size range of a real normalized submission.
	req, _ := json.Marshal(map[string]any{
		"blif": ".model bench\n.inputs a b c d e f g h\n.outputs x y\n" +
			".names a b c d x\n1111 1\n.names e f g h y\n1--1 1\n.end\n",
		"kind":    "yield",
		"yield":   map[string]any{"model": "weight", "v": 0.8, "max_trials": 20000, "seed": 42},
		"options": map[string]any{"Fanin": 3, "DeltaOff": 1},
	})
	out := make([]store.Event, 0, records)
	for job := 0; len(out) < records; job++ {
		id := fmt.Sprintf("job-%06d", job+1)
		digest := fmt.Sprintf("%064x", job+1)
		out = append(out,
			store.Event{Type: store.EventSubmitted, JobID: id, Kind: "yield", Digest: digest, Request: req},
			store.Event{Type: store.EventStarted, JobID: id, Kind: "yield", Digest: digest},
			store.Event{Type: store.EventProgress, JobID: id, Done: 1, Total: 2},
			store.Event{Type: store.EventProgress, JobID: id, Done: 2, Total: 2},
			store.Event{Type: store.EventFinished, JobID: id, Kind: "yield", Digest: digest},
		)
	}
	return out[:records]
}

// storeAppendBench journals `records` events into a fresh store and
// reports throughput. Payload bytes are counted exactly as framed
// (8-byte header + JSON payload).
func storeAppendBench(records int, sync bool) (storeAppendRow, error) {
	dir, err := os.MkdirTemp("", "telsbench-store-*")
	if err != nil {
		return storeAppendRow{}, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{Sync: sync})
	if err != nil {
		return storeAppendRow{}, err
	}
	events := storeEvents(records)
	var bytes int64
	for _, ev := range events {
		p, err := json.Marshal(ev)
		if err != nil {
			return storeAppendRow{}, err
		}
		bytes += int64(len(p)) + 8
	}
	t0 := time.Now()
	for _, ev := range events {
		if err := st.Append(ev); err != nil {
			st.Close()
			return storeAppendRow{}, err
		}
	}
	wall := time.Since(t0)
	if err := st.Close(); err != nil {
		return storeAppendRow{}, err
	}
	sec := wall.Seconds()
	return storeAppendRow{
		Records:      records,
		Bytes:        bytes,
		WallMS:       float64(wall.Microseconds()) / 1e3,
		EventsPerSec: float64(records) / sec,
		MBPerSec:     float64(bytes) / (1 << 20) / sec,
		Sync:         sync,
	}, nil
}

// storeRecoveryBench builds a journal of `records` events, closes it,
// and times the cold re-open (snapshot load + segment replay + fold).
func storeRecoveryBench(records int) (storeRecoveryRow, error) {
	dir, err := os.MkdirTemp("", "telsbench-store-*")
	if err != nil {
		return storeRecoveryRow{}, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return storeRecoveryRow{}, err
	}
	for _, ev := range storeEvents(records) {
		if err := st.Append(ev); err != nil {
			st.Close()
			return storeRecoveryRow{}, err
		}
	}
	if err := st.Close(); err != nil {
		return storeRecoveryRow{}, err
	}
	t0 := time.Now()
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		return storeRecoveryRow{}, err
	}
	wall := time.Since(t0)
	rec := st2.Recovered()
	stats := st2.Stats()
	if err := st2.Close(); err != nil {
		return storeRecoveryRow{}, err
	}
	return storeRecoveryRow{
		Records:        records,
		JournalBytes:   stats.JournalBytes,
		Segments:       stats.Segments,
		SnapshotLoaded: rec.SnapshotLoaded,
		JobsRecovered:  len(rec.Jobs),
		EventsReplayed: rec.Events,
		RecoveryMS:     float64(wall.Microseconds()) / 1e3,
	}, nil
}

// storeBench runs both store benchmarks: append throughput (buffered
// and fsync-per-record) and recovery time vs journal size.
func storeBench(quick, jsonOut bool, emit emitFn) error {
	appendSizes := []int{5000, 50000}
	recoverySizes := []int{1000, 10000, 100000}
	syncRecords := 500
	if quick {
		appendSizes = []int{500, 2000}
		recoverySizes = []int{500, 2000}
		syncRecords = 100
	}

	appends := make([]storeAppendRow, 0, len(appendSizes)+1)
	for _, n := range appendSizes {
		row, err := storeAppendBench(n, false)
		if err != nil {
			return err
		}
		appends = append(appends, row)
	}
	// One fsync-per-record point: the durability ceiling of the media.
	syncRow, err := storeAppendBench(syncRecords, true)
	if err != nil {
		return err
	}
	appends = append(appends, syncRow)

	recoveries := make([]storeRecoveryRow, 0, len(recoverySizes))
	for _, n := range recoverySizes {
		row, err := storeRecoveryBench(n)
		if err != nil {
			return err
		}
		recoveries = append(recoveries, row)
	}

	if jsonOut {
		if err := writeJSON(map[string]any{
			"experiment": "store",
			"append":     appends,
			"recovery":   recoveries,
		}); err != nil {
			return err
		}
	} else {
		fmt.Println("WAL append throughput (CRC-framed JSON records)")
		fmt.Printf("%10s %12s %10s %14s %10s %6s\n", "records", "bytes", "wall ms", "events/s", "MB/s", "sync")
		for _, r := range appends {
			fmt.Printf("%10d %12d %10.2f %14.0f %10.1f %6v\n",
				r.Records, r.Bytes, r.WallMS, r.EventsPerSec, r.MBPerSec, r.Sync)
		}
		fmt.Println()
		fmt.Println("cold-start recovery vs journal size")
		fmt.Printf("%10s %14s %9s %9s %7s %10s %12s\n",
			"records", "journal B", "segments", "snapshot", "jobs", "events", "recover ms")
		for _, r := range recoveries {
			fmt.Printf("%10d %14d %9d %9v %7d %10d %12.2f\n",
				r.Records, r.JournalBytes, r.Segments, r.SnapshotLoaded,
				r.JobsRecovered, r.EventsReplayed, r.RecoveryMS)
		}
	}

	if err := emit("store_append.csv", func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "records,bytes,wall_ms,events_per_sec,mb_per_sec,sync"); err != nil {
			return err
		}
		for _, r := range appends {
			if _, err := fmt.Fprintf(w, "%d,%d,%.3f,%.0f,%.2f,%v\n",
				r.Records, r.Bytes, r.WallMS, r.EventsPerSec, r.MBPerSec, r.Sync); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	return emit("store_recovery.csv", func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "records,journal_bytes,segments,snapshot_loaded,jobs,events,recovery_ms"); err != nil {
			return err
		}
		for _, r := range recoveries {
			if _, err := fmt.Fprintf(w, "%d,%d,%d,%v,%d,%d,%.3f\n",
				r.Records, r.JournalBytes, r.Segments, r.SnapshotLoaded,
				r.JobsRecovered, r.EventsReplayed, r.RecoveryMS); err != nil {
				return err
			}
		}
		return nil
	})
}
