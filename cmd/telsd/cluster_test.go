package main

import (
	"context"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"tels/internal/service"
)

// The clustersmoke: three real telsd processes form a static ring on
// loopback, a sweep fans its grid across them, and one non-coordinator
// peer is SIGKILLed mid-grid. The sweep must complete on the survivors
// with a curve bit-identical to an uninterrupted single-node run — a
// dead peer degrades throughput, never correctness.

func TestClusterKillPeerMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real daemons")
	}
	bin := buildTelsd(t)
	addrs := []string{freeAddr(t), freeAddr(t), freeAddr(t)}
	peerList := strings.Join(addrs, ",")
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Clean reference: the same sweep run in-process on one node.
	ref := service.New(service.Config{Workers: 1})
	defer ref.Close()
	refJob, err := ref.Submit(sweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	refDone, err := ref.Wait(ctx, refJob.ID)
	if err != nil {
		t.Fatal(err)
	}
	if refDone.State != service.StateDone || refDone.Result == nil || refDone.Result.Sweep == nil {
		t.Fatalf("reference sweep: %+v", refDone)
	}

	daemons := make([]*exec.Cmd, len(addrs))
	for i, a := range addrs {
		daemons[i] = startTelsd(t, bin, a, "", "-peers", peerList, "-self", a)
	}
	defer func() {
		for _, d := range daemons {
			d.Process.Kill()
		}
	}()

	c := &service.Client{BaseURL: "http://" + addrs[0], PollInterval: 3 * time.Millisecond}
	sweep, err := c.SubmitSweep(ctx, sweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Digest != refDone.Digest {
		t.Fatalf("cluster digest %s != single-node digest %s for the same sweep", sweep.Digest, refDone.Digest)
	}

	// SIGKILL a non-coordinator peer as soon as the grid is visibly
	// underway: the points it owns must be stolen back by the survivors.
	killDeadline := time.Now().Add(90 * time.Second)
	for {
		if time.Now().After(killDeadline) {
			t.Fatal("sweep never reached a partially-done state")
		}
		job, err := c.Job(ctx, sweep.ID)
		if err != nil {
			t.Fatal(err)
		}
		if job.State == service.StateDone {
			t.Skip("sweep finished before the kill window; machine too fast for this grid")
		}
		if job.Progress != nil && job.Progress.DonePoints >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim := daemons[2]
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	victim.Wait()
	t.Logf("killed peer %s mid-grid", addrs[2])

	done, err := c.WaitDone(ctx, sweep.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != service.StateDone || done.Result == nil || done.Result.Sweep == nil {
		t.Fatalf("sweep after peer kill: state=%s error=%q", done.State, done.Error)
	}
	if done.Result.Sweep.FailedPoints != 0 {
		t.Fatalf("%d points failed; a dead peer must cost throughput, not points", done.Result.Sweep.FailedPoints)
	}

	// Bit-identical curve: every figure the sweep reports matches the
	// single-node reference exactly.
	refPts := refDone.Result.Sweep.Points
	gotPts := done.Result.Sweep.Points
	if len(gotPts) != len(refPts) {
		t.Fatalf("cluster curve has %d points, reference %d", len(gotPts), len(refPts))
	}
	for i, p := range gotPts {
		r := refPts[i]
		if p.V != r.V || p.FailureRate != r.FailureRate || p.Yield != r.Yield ||
			p.Gates != r.Gates || p.Area != r.Area {
			t.Fatalf("point %d diverged from single node: got v=%g rate=%g yield=%g gates=%d area=%d, want v=%g rate=%g yield=%g gates=%d area=%d",
				i, p.V, p.FailureRate, p.Yield, p.Gates, p.Area,
				r.V, r.FailureRate, r.Yield, r.Gates, r.Area)
		}
	}

	// The coordinator's metrics show the dispatch actually happened:
	// points ran on other peers, and the dead peer's work was stolen.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if metrics["cluster_remote_points"] == 0 {
		t.Fatal("cluster_remote_points = 0: the grid never fanned out")
	}
	if metrics["cluster_steals"] == 0 {
		t.Fatal("cluster_steals = 0: the killed peer's points were never stolen back")
	}
	if metrics["cluster_peers"] != 3 {
		t.Fatalf("cluster_peers = %d, want 3", metrics["cluster_peers"])
	}
}
