package main

import (
	"context"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"tels/internal/core"
	"tels/internal/service"
)

// The crash test SIGKILLs a real telsd child mid-sweep and restarts it
// on the same data dir: the sweep must resume, finish with the same
// digest and curve as an uninterrupted run, and points that completed
// before the kill must re-serve from the content-addressed store.

const crashBlif = `.model small
.inputs a b c
.outputs f g
.names a b c f
11- 1
1-1 1
.names a b g
11 1
.end
`

// crashSweep is sized so one worker takes visibly long per point: the
// killer can observe a partially-done sweep before the whole grid lands.
var crashSweep = struct {
	vs        []float64
	maxTrials int
	seed      int64
}{
	vs:        []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7},
	maxTrials: 60000,
	seed:      1729,
}

func buildTelsd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "telsd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build telsd: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startTelsd launches the daemon and waits for /v1/readyz — healthz
// alone goes green during boot, before the journal replay finishes. The
// returned process is not reaped by the test framework; callers kill it.
func startTelsd(t *testing.T, bin, addr, dataDir string, extra ...string) *exec.Cmd {
	t.Helper()
	args := []string{"-addr", addr, "-workers", "1"}
	if dataDir != "" {
		args = append(args, "-data-dir", dataDir)
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatalf("telsd on %s never became ready", addr)
	return nil
}

func sweepSpec() service.SweepJobSpec {
	return service.SweepJobSpec{
		SynthSpec: service.SynthSpec{BLIF: crashBlif},
		Yield: service.YieldSpec{
			Model:     "weight",
			MaxTrials: crashSweep.maxTrials,
			Seed:      crashSweep.seed,
		},
		Sweep: service.SweepSpec{Vs: crashSweep.vs},
	}
}

// sweepRequest is the in-process twin of sweepSpec's submission, for the
// clean reference run.
func sweepRequest() service.Request {
	return service.Request{
		BLIF:    crashBlif,
		Kind:    "sweep",
		Options: core.DefaultOptions(),
		Yield: service.YieldSpec{
			Model:     "weight",
			MaxTrials: crashSweep.maxTrials,
			Seed:      crashSweep.seed,
		},
		Sweep: service.SweepSpec{Vs: crashSweep.vs},
	}
}

func TestKillMidSweepRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon")
	}
	bin := buildTelsd(t)
	dataDir := t.TempDir()
	addr := freeAddr(t)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Clean reference: the same sweep run in-process, uninterrupted.
	ref := service.New(service.Config{Workers: 1})
	defer ref.Close()
	refJob, err := ref.Submit(sweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	refDone, err := ref.Wait(ctx, refJob.ID)
	if err != nil {
		t.Fatal(err)
	}
	if refDone.State != service.StateDone || refDone.Result == nil || refDone.Result.Sweep == nil {
		t.Fatalf("reference sweep: %+v", refDone)
	}

	daemon := startTelsd(t, bin, addr, dataDir)
	defer daemon.Process.Kill()
	c := &service.Client{BaseURL: "http://" + addr, PollInterval: 3 * time.Millisecond}

	// A small job finished before the crash, to check disk re-serving.
	pre, err := c.SubmitYield(ctx, service.YieldJobSpec{
		SynthSpec: service.SynthSpec{BLIF: crashBlif},
		Yield:     service.YieldSpec{Model: "weight", MaxTrials: 2000, Seed: 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	preDone, err := c.WaitDone(ctx, pre.ID)
	if err != nil {
		t.Fatal(err)
	}
	if preDone.State != service.StateDone {
		t.Fatalf("pre-crash yield job: %+v", preDone)
	}

	sweep, err := c.SubmitSweep(ctx, sweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Digest != refDone.Digest {
		t.Fatalf("daemon digest %s != in-process digest %s for the same sweep", sweep.Digest, refDone.Digest)
	}

	// Kill the daemon as soon as some — but not all — points landed.
	var partial int
	killDeadline := time.Now().Add(90 * time.Second)
	for {
		if time.Now().After(killDeadline) {
			t.Fatal("sweep never reached a partially-done state")
		}
		job, err := c.Job(ctx, sweep.ID)
		if err != nil {
			t.Fatal(err)
		}
		if job.State == service.StateDone {
			t.Skip("sweep finished before the kill window; machine too fast for this grid")
		}
		if job.Progress != nil && job.Progress.DonePoints >= 1 {
			partial = job.Progress.DonePoints
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()
	t.Logf("killed daemon with %d/%d points done", partial, len(crashSweep.vs))

	// Restart on the same journal: the sweep resumes under its original
	// ID and finishes.
	daemon2 := startTelsd(t, bin, addr, dataDir)
	defer func() {
		daemon2.Process.Signal(syscall.SIGTERM)
		daemon2.Wait()
	}()
	resumed, err := c.WaitDone(ctx, sweep.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.State != service.StateDone || resumed.Result == nil || resumed.Result.Sweep == nil {
		t.Fatalf("resumed sweep: state=%s error=%q", resumed.State, resumed.Error)
	}
	if resumed.Digest != refDone.Digest {
		t.Fatalf("resumed digest %s != reference %s", resumed.Digest, refDone.Digest)
	}

	// The curve is bit-identical to the uninterrupted run — replayed
	// points reuse the journaled deterministic seeds.
	refPts := refDone.Result.Sweep.Points
	gotPts := resumed.Result.Sweep.Points
	if len(gotPts) != len(refPts) {
		t.Fatalf("resumed curve has %d points, reference %d", len(gotPts), len(refPts))
	}
	var reserved int
	for i, p := range gotPts {
		r := refPts[i]
		if p.V != r.V || p.FailureRate != r.FailureRate || p.Yield != r.Yield {
			t.Fatalf("point %d diverged after recovery: got v=%g rate=%g yield=%g, want v=%g rate=%g yield=%g",
				i, p.V, p.FailureRate, p.Yield, r.V, r.FailureRate, r.Yield)
		}
		if p.CacheHit {
			reserved++
		}
	}
	// Points that finished before the kill persisted their results and
	// must re-serve from disk, not recompute.
	if reserved < partial {
		t.Fatalf("%d points re-served from store, want at least the %d finished pre-kill", reserved, partial)
	}

	// The pre-crash yield job re-serves from disk too: same digest, no
	// recompute (cache_hit).
	again, err := c.SubmitYield(ctx, service.YieldJobSpec{
		SynthSpec: service.SynthSpec{BLIF: crashBlif},
		Yield:     service.YieldSpec{Model: "weight", MaxTrials: 2000, Seed: 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	againDone, err := c.WaitDone(ctx, again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if againDone.Digest != preDone.Digest {
		t.Fatalf("pre-crash job digest changed: %s vs %s", againDone.Digest, preDone.Digest)
	}
	if againDone.Result == nil || !againDone.Result.CacheHit {
		t.Fatal("pre-crash result recomputed instead of re-served from store")
	}

	// The restarted daemon's journal metrics reflect the recovery.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if metrics["store_replayed_jobs"] < 2 {
		t.Fatalf("store_replayed_jobs = %d, want >= 2", metrics["store_replayed_jobs"])
	}
	if metrics["store_requeued_jobs"] < 1 {
		t.Fatalf("store_requeued_jobs = %d, want >= 1", metrics["store_requeued_jobs"])
	}
	if metrics["store_warmed_results"] < 1 {
		t.Fatalf("store_warmed_results = %d, want >= 1", metrics["store_warmed_results"])
	}
}

// TestSigtermDrainRequeues covers the graceful path end to end: SIGTERM
// journals the running sweep as interrupted, and the next start finishes
// it.
func TestSigtermDrainRequeues(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and restarts a real daemon")
	}
	bin := buildTelsd(t)
	dataDir := t.TempDir()
	addr := freeAddr(t)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	daemon := startTelsd(t, bin, addr, dataDir)
	defer daemon.Process.Kill()
	c := &service.Client{BaseURL: "http://" + addr, PollInterval: 3 * time.Millisecond}
	sweep, err := c.SubmitSweep(ctx, sweepSpec())
	if err != nil {
		t.Fatal(err)
	}

	// SIGTERM while the sweep is underway.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("sweep never started")
		}
		job, err := c.Job(ctx, sweep.ID)
		if err != nil {
			t.Fatal(err)
		}
		if job.State == service.StateDone {
			t.Skip("sweep finished before SIGTERM; machine too fast for this grid")
		}
		if job.State == service.StateRunning {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly on SIGTERM: %v", err)
	}

	daemon2 := startTelsd(t, bin, addr, dataDir)
	defer func() {
		daemon2.Process.Signal(syscall.SIGTERM)
		daemon2.Wait()
	}()
	resumed, err := c.WaitDone(ctx, sweep.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.State != service.StateDone {
		t.Fatalf("drained sweep resumed to %s (%s)", resumed.State, resumed.Error)
	}
	if got := len(resumed.Result.Sweep.Points); got != len(crashSweep.vs) {
		t.Fatalf("resumed sweep has %d points, want %d", got, len(crashSweep.vs))
	}

	// The drained job is visible through the list filters.
	list, err := c.ListJobs(ctx, service.JobFilter{State: service.StateDone, Kind: "sweep"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range list.Jobs {
		if j.ID == sweep.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("resumed sweep missing from ?state=done&kind=sweep list: %+v", list)
	}
}
