// Command telsd is the TELS synthesis daemon: it serves the full
// BLIF → optimize → synthesize → verify flow as a JSON-over-HTTP job API
// with a bounded worker pool and a content-addressed result cache, so
// repeated synthesis of the same netlist with the same knobs is served
// without re-running the flow.
//
//	telsd -addr :8455 -workers 8 -cache 256 -data-dir /var/lib/telsd
//
// With -data-dir set the daemon is durable: every job's lifecycle is
// journaled to a segmented, CRC-framed write-ahead log and every result
// is persisted to a content-addressed store under the job's SHA-256
// digest (internal/store). On restart the journal is replayed — jobs
// that were queued or running (or drained as interrupted by SIGTERM)
// are re-enqueued under their original IDs with their deterministic
// seeds, finished results are re-served from disk without
// recomputation, and a torn journal tail from a crash is truncated back
// to the last intact record. With -data-dir empty nothing touches disk
// and behavior is identical to the pre-store daemon.
//
// Submissions are kind-tagged: {"kind": "synth"} runs the flow above;
// {"kind": "yield"} appends a Monte-Carlo yield analysis on the packed
// fsim engine ({"model": "weight"|"drift"|"stuck", ...}) with CI-based
// early stopping, the result carrying the failure rate, Wilson interval,
// and critical-gate ranking; {"kind": "sweep"} fans a grid of yield
// points (vs × delta_ons × models) across the worker pool, synthesizing
// each δon prefix once and caching every point under the digest of the
// equivalent standalone yield job. Polling a running sweep returns its
// partial curve and a done_points/total_points counter. {"kind": "resyn"}
// runs the defect-aware selective re-synthesis loop (estimate yield,
// blame gates by first flip, re-derive the top offenders at a raised
// per-gate δon); polling a running resyn job returns the per-iteration
// trajectory, and the final result carries the hardening report plus the
// hardened netlist.
//
// With -peers set the daemon joins a static cluster: every peer is
// started with the same comma-separated peer list and its own -self
// identity, and a consistent-hash ring over job digests assigns each
// digest an owner peer. Before computing a foreign digest a peer asks
// its owner for an existing result; sweep grids fan their points to the
// owners (hedging stragglers with a local run and stealing work back
// from dead or saturated peers), so a killed peer degrades throughput,
// never correctness.
//
//	telsd -addr :8455 -peers host1:8455,host2:8455 -self host1:8455
//
// The daemon listens immediately but gates readiness: while the journal
// replays, GET /v1/healthz answers 200 (the process is alive) and
// GET /v1/readyz answers 503 (don't route work here yet); every other
// route also answers 503 until recovery completes.
//
// With -api-keys (or -api-keys-file) set the daemon is multi-tenant:
// every /v1 request except the probes must present a configured bearer
// key, every job belongs to the key's tenant, tenant keys see only
// their own jobs, and admission is weighted-fair across tenants (stride
// scheduling on per-tenant weights with low/normal/high priority lanes)
// with per-tenant quotas — a submission past max_jobs answers 429
// quota_exceeded with a Retry-After header. With no keys the daemon is
// open and byte-compatible with the pre-tenancy API.
//
// Endpoints (v1):
//
//	POST   /v1/jobs             submit {"kind": ..., "spec": {...}, "priority": ...}
//	GET    /v1/jobs             list retained jobs (?state=, ?kind=, ?tenant=, ?limit=N)
//	GET    /v1/jobs/{id}        job status, result, and sweep/resyn progress
//	GET    /v1/jobs/{id}/events Server-Sent Events stream of the job lifecycle
//	GET    /v1/jobs/{id}/tln    the synthesized threshold netlist (text)
//	POST   /v1/jobs/{id}/cancel cancel a queued or running job
//	GET    /v1/healthz          liveness probe (no auth)
//	GET    /v1/readyz           readiness probe (no auth; 503 during recovery)
//	GET    /v1/metrics          job, cache, sweep, resyn, store, cluster, per-tenant, and latency counters
//
// plus the cluster-internal /v1/cluster/* surface peers use to exchange
// results and work (admin or cluster-key principals only; the
// X-Tels-Tenant header carries job ownership across peers). Errors are
// uniformly {"error": {"code", "message"}}. The pre-v1 flat routes
// (POST /synth, and the unversioned /jobs, /healthz, /metrics mirrors)
// have been removed; only the /v1/ surface is served. docs/API.md is
// the complete reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"tels/internal/cli"
	"tels/internal/cluster"
	"tels/internal/core"
	"tels/internal/fsim"
	"tels/internal/service"
	"tels/internal/store"
)

// options carries the parsed flag set into run.
type options struct {
	addr       string
	workers    int
	queue      int
	cache      int
	timeout    time.Duration
	maxjobs    int
	width      fsim.Width
	solver     core.SolverMode
	dataDir    string
	peers      string
	self       string
	auth       *service.Auth
	admission  string
	tenantWt   int
	tenantJobs int
	tenantInfl int
	execDelay  time.Duration
}

func main() {
	var (
		addr      = flag.String("addr", ":8455", "listen address")
		workers   = flag.Int("workers", 0, "worker-pool size (0 = NumCPU)")
		queue     = flag.Int("queue", 0, "queue depth (0 = 4×workers)")
		cache     = flag.Int("cache", service.DefaultCacheEntries, "result-cache capacity in entries")
		timeout   = flag.Duration("timeout", 2*time.Minute, "default per-job timeout")
		maxjobs   = flag.Int("maxjobs", 1024, "retained job records")
		width     = flag.String("width", "1", "fsim lane-block width in 64-bit words (1, 4, or 8); results and job digests are identical at every width")
		solver    = flag.String("solver", "", "threshold-check engine: portfolio, ilp, or pbsat; results and job digests are identical across engines (default portfolio)")
		dataDir   = flag.String("data-dir", "", "durable store directory: journal job lifecycles, persist results, and recover on restart (empty = in-memory only)")
		peers     = flag.String("peers", "", "static cluster peer list (host:port,...); every peer must be started with the same list (empty = single node)")
		self      = flag.String("self", "", "this daemon's own address as it appears in -peers (required with -peers)")
		apiKeys   = flag.String("api-keys", "", "tenant API keys as tenant=key[,tenant=key=admin,...]; empty = open mode (no auth)")
		keysFile  = flag.String("api-keys-file", "", `JSON keys file {"tenants":[{"name","key","weight","max_jobs","max_in_flight","admin"}],"cluster_key":"..."}; merged with -api-keys`)
		clustKey  = flag.String("cluster-key", "", "shared bearer token peers present on /v1/cluster/* calls (required when keys are set on a cluster)")
		admission = flag.String("admission", service.AdmissionFair, "admission policy: fair (weighted-fair per-tenant queues) or fifo (single queue, baseline)")
		tenantWt  = flag.Int("tenant-weight", 0, "default tenant weight under fair admission (0 = 1)")
		tenantJ   = flag.Int("tenant-max-jobs", 0, "default cap on a tenant's outstanding jobs, 429 beyond it (0 = unlimited)")
		tenantIF  = flag.Int("tenant-max-inflight", 0, "default cap on a tenant's concurrently running jobs (0 = unlimited)")
		execDelay = flag.Duration("exec-delay", 0, "artificial latency added to every job execution (fault injection for staging and smoke tests)")
		quiet     = flag.Bool("q", false, "suppress startup and shutdown messages")
	)
	flag.Parse()
	t := cli.New("telsd")
	t.Quiet = *quiet
	if flag.NArg() > 0 {
		t.Usage("unexpected arguments %v", flag.Args())
	}
	w, err := fsim.ParseWidth(*width)
	if err != nil {
		t.Usage("%v", err)
	}
	sm, err := core.ParseSolverMode(*solver)
	if err != nil {
		t.Usage("%v", err)
	}
	if (*peers == "") != (*self == "") {
		t.Usage("-peers and -self must be set together")
	}
	if *admission != service.AdmissionFair && *admission != service.AdmissionFIFO {
		t.Usage("-admission must be fair or fifo, got %q", *admission)
	}
	auth, err := buildAuth(*apiKeys, *keysFile, *clustKey)
	if err != nil {
		t.Usage("%v", err)
	}
	o := options{
		addr: *addr, workers: *workers, queue: *queue, cache: *cache,
		timeout: *timeout, maxjobs: *maxjobs, width: w, solver: sm, dataDir: *dataDir,
		peers: *peers, self: *self, auth: auth, admission: *admission,
		tenantWt: *tenantWt, tenantJobs: *tenantJ, tenantInfl: *tenantIF,
		execDelay: *execDelay,
	}
	if err := run(t, o); err != nil {
		t.Fail(err)
	}
}

// buildAuth merges the -api-keys flag, the -api-keys-file contents, and
// the -cluster-key into one key table. nil (open mode) when no tenant
// keys are configured anywhere.
func buildAuth(apiKeys, keysFile, clusterKey string) (*service.Auth, error) {
	var tenants []service.TenantConfig
	if keysFile != "" {
		ts, fileClusterKey, err := service.LoadKeysFile(keysFile)
		if err != nil {
			return nil, err
		}
		tenants = append(tenants, ts...)
		if clusterKey == "" {
			clusterKey = fileClusterKey
		}
	}
	if apiKeys != "" {
		ts, err := service.ParseAPIKeys(apiKeys)
		if err != nil {
			return nil, err
		}
		tenants = append(tenants, ts...)
	}
	if len(tenants) == 0 && clusterKey == "" {
		return nil, nil
	}
	auth, err := service.NewAuth(tenants)
	if err != nil {
		return nil, err
	}
	auth.ClusterKey = clusterKey
	return auth, nil
}

// bootGate answers for the daemon until recovery completes: liveness
// stays green so supervisors don't kill a replaying daemon, readiness
// and everything else answer 503 so load balancers and cluster peers
// don't route work here yet. Once the real handler is published every
// request goes straight to it.
type bootGate struct {
	ready atomic.Pointer[http.Handler]
}

func (g *bootGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := g.ready.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if r.URL.Path == "/v1/healthz" {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"status":"ok","phase":"starting"}`)
		return
	}
	// Retry-After: replay is usually quick; waiters (service.Client.Wait
	// honors this) should come back shortly rather than give up.
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, `{"error":{"code":"overloaded","message":"recovering: journal replay in progress"}}`)
}

func run(t *cli.Tool, o options) error {
	// The listener comes up before recovery: store open + journal replay
	// can take a while after a crash, and a daemon that answers nothing
	// during that window looks dead to supervisors and peers alike.
	gate := &bootGate{}
	type booted struct {
		m  *service.Manager
		st *store.Store
	}
	bootCh := make(chan booted, 1)
	bootErr := make(chan error, 1)
	go func() {
		cfg := service.Config{
			Workers:           o.workers,
			QueueDepth:        o.queue,
			CacheEntries:      o.cache,
			DefaultTimeout:    o.timeout,
			MaxJobs:           o.maxjobs,
			FsimWidth:         o.width,
			Solver:            o.solver,
			Auth:              o.auth,
			Admission:         o.admission,
			TenantWeight:      o.tenantWt,
			TenantMaxJobs:     o.tenantJobs,
			TenantMaxInFlight: o.tenantInfl,
			ExecDelay:         o.execDelay,
		}
		var st *store.Store
		if o.dataDir != "" {
			var err error
			st, err = store.Open(o.dataDir, store.Options{})
			if err != nil {
				bootErr <- err
				return
			}
			rec := st.Recovered()
			pending := 0
			for _, j := range rec.Jobs {
				if !j.Terminal() {
					pending++
				}
			}
			t.Infof("recovered %s: %d jobs journaled (%d pending), %d events in %d ms%s",
				o.dataDir, len(rec.Jobs), pending, rec.Events, rec.Elapsed.Milliseconds(),
				tornNote(rec.TruncatedBytes))
			cfg.Store = st
		}
		if o.peers != "" {
			clCfg := cluster.Config{Self: o.self, Peers: splitPeers(o.peers)}
			if o.auth != nil {
				clCfg.AuthToken = o.auth.ClusterKey
			}
			cl, err := cluster.New(clCfg)
			if err != nil {
				if st != nil {
					st.Close()
				}
				bootErr <- err
				return
			}
			cfg.Cluster = cl
			t.Infof("cluster of %d peers, self %s", cl.Size(), cl.Self())
		}
		m := service.New(cfg)
		h := service.NewHandler(m)
		gate.ready.Store(&h)
		if o.auth != nil && !o.auth.Open() {
			t.Infof("auth on: %d tenants (%s admission)", len(o.auth.Tenants()), o.admission)
		}
		t.Infof("ready (%d workers, cache %d entries, fsim width %s)", m.Workers(), o.cache, o.width)
		bootCh <- booted{m: m, st: st}
	}()

	srv := &http.Server{
		Addr:              o.addr,
		Handler:           gate,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe()
	}()
	t.Infof("serving on %s", o.addr)

	select {
	case err := <-bootErr:
		srv.Close()
		<-errCh
		return err
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop the listener, then close the manager — which
	// cancels what is still queued or running; with a store those jobs
	// are journaled as interrupted and re-enqueued on the next start
	// instead of silently vanishing — and only then the store.
	t.Infof("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	select {
	case b := <-bootCh:
		b.m.Close()
		if b.st != nil {
			b.st.Close()
		}
	case err := <-bootErr:
		return err
	}
	return nil
}

// splitPeers parses the -peers list, tolerating stray whitespace and
// trailing commas; cluster.New validates the result.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func tornNote(truncated int64) string {
	if truncated == 0 {
		return ""
	}
	return fmt.Sprintf(", torn tail of %d bytes truncated", truncated)
}
