// Command telsd is the TELS synthesis daemon: it serves the full
// BLIF → optimize → synthesize → verify flow as a JSON-over-HTTP job API
// with a bounded worker pool and a content-addressed result cache, so
// repeated synthesis of the same netlist with the same knobs is served
// without re-running the flow.
//
//	telsd -addr :8455 -workers 8 -cache 256 -data-dir /var/lib/telsd
//
// With -data-dir set the daemon is durable: every job's lifecycle is
// journaled to a segmented, CRC-framed write-ahead log and every result
// is persisted to a content-addressed store under the job's SHA-256
// digest (internal/store). On restart the journal is replayed — jobs
// that were queued or running (or drained as interrupted by SIGTERM)
// are re-enqueued under their original IDs with their deterministic
// seeds, finished results are re-served from disk without
// recomputation, and a torn journal tail from a crash is truncated back
// to the last intact record. With -data-dir empty nothing touches disk
// and behavior is identical to the pre-store daemon.
//
// Submissions are kind-tagged: {"kind": "synth"} runs the flow above;
// {"kind": "yield"} appends a Monte-Carlo yield analysis on the packed
// fsim engine ({"model": "weight"|"drift"|"stuck", ...}) with CI-based
// early stopping, the result carrying the failure rate, Wilson interval,
// and critical-gate ranking; {"kind": "sweep"} fans a grid of yield
// points (vs × delta_ons × models) across the worker pool, synthesizing
// each δon prefix once and caching every point under the digest of the
// equivalent standalone yield job. Polling a running sweep returns its
// partial curve and a done_points/total_points counter. {"kind": "resyn"}
// runs the defect-aware selective re-synthesis loop (estimate yield,
// blame gates by first flip, re-derive the top offenders at a raised
// per-gate δon); polling a running resyn job returns the per-iteration
// trajectory, and the final result carries the hardening report plus the
// hardened netlist.
//
// Endpoints (v1):
//
//	POST   /v1/jobs             submit {"kind": ..., "spec": {...}}
//	GET    /v1/jobs             list retained jobs (?state=, ?kind=, ?limit=N)
//	GET    /v1/jobs/{id}        job status, result, and sweep/resyn progress
//	GET    /v1/jobs/{id}/tln    the synthesized threshold netlist (text)
//	POST   /v1/jobs/{id}/cancel cancel a queued or running job
//	GET    /v1/healthz          liveness probe
//	GET    /v1/metrics          job, cache, sweep, resyn, store, and latency counters
//
// Errors are uniformly {"error": {"code", "message"}}. The pre-v1 flat
// routes (POST /synth, and the unversioned /jobs, /healthz, /metrics
// mirrors) have been removed; only the /v1/ surface is served.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tels/internal/cli"
	"tels/internal/fsim"
	"tels/internal/service"
	"tels/internal/store"
)

func main() {
	var (
		addr    = flag.String("addr", ":8455", "listen address")
		workers = flag.Int("workers", 0, "worker-pool size (0 = NumCPU)")
		queue   = flag.Int("queue", 0, "queue depth (0 = 4×workers)")
		cache   = flag.Int("cache", service.DefaultCacheEntries, "result-cache capacity in entries")
		timeout = flag.Duration("timeout", 2*time.Minute, "default per-job timeout")
		maxjobs = flag.Int("maxjobs", 1024, "retained job records")
		width   = flag.String("width", "1", "fsim lane-block width in 64-bit words (1, 4, or 8); results and job digests are identical at every width")
		dataDir = flag.String("data-dir", "", "durable store directory: journal job lifecycles, persist results, and recover on restart (empty = in-memory only)")
		quiet   = flag.Bool("q", false, "suppress startup and shutdown messages")
	)
	flag.Parse()
	t := cli.New("telsd")
	t.Quiet = *quiet
	if flag.NArg() > 0 {
		t.Usage("unexpected arguments %v", flag.Args())
	}
	w, err := fsim.ParseWidth(*width)
	if err != nil {
		t.Usage("%v", err)
	}
	if err := run(t, *addr, *workers, *queue, *cache, *timeout, *maxjobs, w, *dataDir); err != nil {
		t.Fail(err)
	}
}

func run(t *cli.Tool, addr string, workers, queue, cache int, timeout time.Duration, maxjobs int, width fsim.Width, dataDir string) error {
	cfg := service.Config{
		Workers:        workers,
		QueueDepth:     queue,
		CacheEntries:   cache,
		DefaultTimeout: timeout,
		MaxJobs:        maxjobs,
		FsimWidth:      width,
	}
	if dataDir != "" {
		st, err := store.Open(dataDir, store.Options{})
		if err != nil {
			return err
		}
		defer st.Close()
		rec := st.Recovered()
		pending := 0
		for _, j := range rec.Jobs {
			if !j.Terminal() {
				pending++
			}
		}
		t.Infof("recovered %s: %d jobs journaled (%d pending), %d events in %d ms%s",
			dataDir, len(rec.Jobs), pending, rec.Events, rec.Elapsed.Milliseconds(),
			tornNote(rec.TruncatedBytes))
		cfg.Store = st
	}
	// Manager teardown runs before the store closes (deferred later):
	// drained jobs journal their interrupted events first.
	m := service.New(cfg)
	defer m.Close()

	srv := &http.Server{
		Addr:              addr,
		Handler:           service.NewHandler(m),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe()
	}()
	t.Infof("serving on %s (%d workers, cache %d entries, fsim width %s)", addr, m.Workers(), cache, width)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop the listener, then Manager.Close (deferred)
	// cancels what is still queued or running — with a store those jobs
	// are journaled as interrupted and re-enqueued on the next start
	// instead of silently vanishing.
	t.Infof("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func tornNote(truncated int64) string {
	if truncated == 0 {
		return ""
	}
	return fmt.Sprintf(", torn tail of %d bytes truncated", truncated)
}
