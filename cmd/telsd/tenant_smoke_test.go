package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tels/internal/service"
)

// The API smoke test boots a real telsd with two tenants plus an admin
// key and walks the multi-tenant surface end to end: auth failures in
// the JSON envelope, quota 429s with Retry-After, the SSE stream of a
// live sweep, and the admin ?tenant= filter.

// smokeSweep returns a sweep sized to run for a noticeable moment on
// one worker — long enough that quota rejections can be observed while
// earlier jobs are still outstanding, short enough for a smoke test.
func smokeSweep(seed int64) service.SweepJobSpec {
	return service.SweepJobSpec{
		SynthSpec: service.SynthSpec{BLIF: crashBlif, Seed: seed},
		Yield: service.YieldSpec{
			Model:     "weight",
			MaxTrials: 60000,
			Seed:      42,
		},
		Sweep: service.SweepSpec{Vs: []float64{0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5, 1.7}},
	}
}

func TestAPISmokeMultiTenant(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a real daemon")
	}
	bin := buildTelsd(t)
	addr := freeAddr(t)
	// The latency injection keeps the tiny smoke sweeps outstanding long
	// enough for the quota rejection to be observable over HTTP.
	daemon := startTelsd(t, bin, addr, "",
		"-api-keys", "alice=ka,bob=kb,ops=kadmin=admin",
		"-tenant-max-jobs", "2",
		"-exec-delay", "150ms",
	)
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()

	base := "http://" + addr
	alice := &service.Client{BaseURL: base, APIKey: "ka", PollInterval: 10 * time.Millisecond}
	bob := &service.Client{BaseURL: base, APIKey: "kb", PollInterval: 10 * time.Millisecond}
	admin := &service.Client{BaseURL: base, APIKey: "kadmin", PollInterval: 10 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// --- Auth failures arrive in the JSON envelope. ---
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("keyless list: %d\n%s", resp.StatusCode, body)
	}
	var env struct {
		Error service.APIError `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != service.CodeUnauthorized {
		t.Fatalf("401 not enveloped: %s", body)
	}
	keyless := &service.Client{BaseURL: base}
	if _, err := keyless.ListJobs(ctx, service.JobFilter{}); !service.IsUnauthorized(err) {
		t.Fatalf("keyless client: %v, want unauthorized", err)
	}
	wrong := &service.Client{BaseURL: base, APIKey: "nope"}
	if _, err := wrong.ListJobs(ctx, service.JobFilter{}); !service.IsForbidden(err) {
		t.Fatalf("wrong key: %v, want forbidden", err)
	}

	// --- Envelope conformance on routing errors. ---
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/jobs", strings.NewReader(""))
	req.Header.Set("Authorization", "Bearer ka")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /v1/jobs: %d\n%s", resp.StatusCode, body)
	}
	env.Error = service.APIError{}
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != service.CodeMethodNotAllowed {
		t.Fatalf("405 not enveloped: %s", body)
	}

	// --- Quota: alice's third outstanding job bounces 429 with
	// Retry-After; bob keeps flowing. ---
	j1, err := alice.SubmitSweep(ctx, smokeSweep(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.SubmitSweep(ctx, smokeSweep(2)); err != nil {
		t.Fatal(err)
	}
	_, err = alice.SubmitSweep(ctx, smokeSweep(3))
	if !service.IsQuotaExceeded(err) {
		t.Fatalf("third submit: %v, want quota_exceeded", err)
	}
	var se *service.StatusError
	if !errors.As(err, &se) || se.RetryAfter <= 0 {
		t.Fatalf("429 without Retry-After: %v", err)
	}
	bjob, err := bob.SubmitSweep(ctx, smokeSweep(4))
	if err != nil {
		t.Fatalf("bob blocked: %v", err)
	}

	// --- SSE: watch alice's sweep; every grid point must stream exactly
	// once across the snapshot and progress events. ---
	seen := map[int]int{}
	final, err := alice.Watch(ctx, j1.ID, func(ev service.JobEvent) {
		switch ev.Type {
		case "snapshot":
			if ev.Job != nil && ev.Job.Progress != nil {
				for _, p := range ev.Job.Progress.Points {
					seen[p.Index]++
				}
			}
		case "progress":
			if ev.Point != nil {
				seen[ev.Point.Index]++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone {
		t.Fatalf("sweep ended %s (%s)", final.State, final.Error)
	}
	for i := range smokeSweep(1).Sweep.Vs {
		if seen[i] != 1 {
			t.Fatalf("grid point %d streamed %d times (%v)", i, seen[i], seen)
		}
	}

	// --- Tenant scoping and the admin filter. ---
	if _, err := bob.Job(ctx, j1.ID); err == nil {
		t.Fatal("bob read alice's job")
	}
	if _, err := bob.WaitDone(ctx, bjob.ID); err != nil {
		t.Fatal(err)
	}
	al, err := admin.ListJobs(ctx, service.JobFilter{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range al.Jobs {
		if j.Tenant != "alice" {
			t.Fatalf("?tenant=alice returned %s job %s", j.Tenant, j.ID)
		}
	}
	if al.Total == 0 {
		t.Fatal("?tenant=alice returned nothing")
	}
	bl, err := bob.ListJobs(ctx, service.JobFilter{})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range bl.Jobs {
		if j.Tenant != "bob" {
			t.Fatalf("bob's list leaked %s job %s", j.Tenant, j.ID)
		}
	}

	// Quota frees once alice's work drains.
	if _, err := alice.WaitDone(ctx, j1.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		if _, err = alice.SubmitSweep(ctx, smokeSweep(5)); err == nil {
			break
		}
		if !service.IsQuotaExceeded(err) || time.Now().After(deadline) {
			t.Fatalf("submit after drain: %v", err)
		}
		time.Sleep(se.RetryAfter)
	}
}
