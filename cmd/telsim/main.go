// Command telsim is the simulation and inspection companion of cmd/tels,
// covering the remaining commands of the original TELS tool (threshold
// simulation and network information display):
//
//	telsim info <net.tln|net.blif>                network statistics
//	telsim run <net.tln|net.blif> [-n N] [-seed S]  simulate N random vectors
//	telsim compare <golden.blif> <impl.tln>       prove/check equivalence
//	telsim perturb <golden.blif> <impl.tln> [-v V] [-trials K]
//	                                              Monte-Carlo failure rate
//	telsim faults <impl.tln> [-n N] [-seed S]     single stuck-at fault sweep
//	telsim yield <golden.blif> <impl.tln> [-model weight|drift|stuck]
//	       [-v V] [-p P] [-maxtrials K] [-eps E]  Monte-Carlo yield estimate
//	telsim sweep <golden.blif> [-vs 0.4,0.8] [-dons 0,2] [-models weight]
//	       [-server URL] [-workers N]             yield curve via the service
//	telsim resyn <golden.blif> [-target Y] [-topk K] [-maxiters N]
//	       [-budget A] [-server URL]              selective re-synthesis loop
//	telsim dot <net.tln>                          Graphviz export
//
// faults, yield, and perturb run on the packed fsim engine: 64 vectors
// per machine word, exhaustive up to fsim.ExhaustiveInputs inputs,
// sampled beyond. -width selects the engine's lane-block width (1, 4, or
// 8 ×64-bit words; results are bit-identical at every width, wider
// blocks auto-vectorize under GOAMD64=v3). In -server mode the daemon's
// own -width applies instead.
//
// sweep submits one kind="sweep" job — to a running telsd when -server is
// given, to an in-process manager otherwise — synthesizing each δon once
// and fanning the grid points across the worker pool. Progress is polled
// from GET /v1/jobs/{id} and printed as points land.
//
// resyn submits one kind="resyn" job the same way: the service
// synthesizes the baseline, then iterates yield estimation → first-flip
// blame ranking → per-gate δon hardening until the target yield, the
// area budget, or convergence. Iterations are polled from
// GET /v1/jobs/{id} and printed as they land; the hardened .tln goes to
// stdout with -o.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"tels/internal/blif"
	"tels/internal/cli"
	"tels/internal/core"
	"tels/internal/fsim"
	"tels/internal/network"
	"tels/internal/service"
	"tels/internal/sim"
)

// options carries the flag values shared across subcommands.
type options struct {
	n         int
	seed      int64
	width     fsim.Width
	solver    core.SolverMode
	v         float64
	trials    int
	maxTrials int
	eps       float64
	model     string
	p         float64

	// sweep grid and transport
	vs       string
	dons     string
	models   string
	inflight int
	server   string
	apiKey   string
	workers  int
	quiet    bool

	// resyn loop
	don      int
	target   float64
	topk     int
	dstep    int
	maxdon   int
	maxiters int
	budget   int
	output   string
}

func main() {
	var o options
	flag.IntVar(&o.n, "n", 16, "random vectors for run; sample size for faults/yield on wide nets")
	flag.Int64Var(&o.seed, "seed", 1, "RNG seed")
	flag.Float64Var(&o.v, "v", 0.8, "variation multiplier for perturb and yield")
	flag.IntVar(&o.trials, "trials", 100, "Monte-Carlo trials for perturb")
	flag.IntVar(&o.maxTrials, "maxtrials", 2000, "trial cap for yield")
	flag.Float64Var(&o.eps, "eps", 0.02, "yield early-stop CI half-width")
	flag.StringVar(&o.model, "model", "weight", "yield defect model: weight, drift, or stuck")
	flag.Float64Var(&o.p, "p", 0.01, "per-gate stuck probability for -model stuck")
	flag.StringVar(&o.vs, "vs", "", "sweep: comma-separated variation multipliers (default -v)")
	flag.StringVar(&o.dons, "dons", "", "sweep: comma-separated δon margins (default the synthesis default)")
	flag.StringVar(&o.models, "models", "", "sweep: comma-separated defect models (default -model)")
	flag.IntVar(&o.inflight, "inflight", 0, "sweep: max concurrently outstanding points (default worker count)")
	flag.StringVar(&o.server, "server", "", "sweep: telsd base URL (default: in-process manager)")
	flag.StringVar(&o.apiKey, "api-key", "", "tenant API key for -server mode (telsd -api-keys)")
	flag.IntVar(&o.workers, "workers", 0, "sweep/resyn: in-process worker-pool size (default NumCPU)")
	flag.IntVar(&o.don, "don", 0, "resyn: baseline synthesis δon margin")
	flag.Float64Var(&o.target, "target", 0, "resyn: target yield (0 = run to convergence)")
	flag.IntVar(&o.topk, "topk", 0, "resyn: blamed gates hardened per iteration (default 3)")
	flag.IntVar(&o.dstep, "dstep", 0, "resyn: per-iteration δon increment (default 1)")
	flag.IntVar(&o.maxdon, "maxdon", 0, "resyn: per-gate δon cap (default base+8)")
	flag.IntVar(&o.maxiters, "maxiters", 0, "resyn: iteration cap (default 10)")
	flag.IntVar(&o.budget, "budget", 0, "resyn: area budget (0 = unbounded)")
	flag.StringVar(&o.output, "o", "", "resyn: write the hardened .tln here")
	width := flag.String("width", "1", "fsim lane-block width in 64-bit words (1, 4, or 8); results are bit-identical at every width")
	solver := flag.String("solver", "", "threshold-check engine for in-process sweep/resyn: portfolio, ilp, or pbsat (default portfolio)")
	quiet := flag.Bool("q", false, "suppress informational diagnostics")
	flag.Parse()
	o.quiet = *quiet
	t := cli.New("telsim")
	t.Quiet = *quiet
	w, err := fsim.ParseWidth(*width)
	if err != nil {
		t.Usage("%v", err)
	}
	o.width = w
	sm, err := core.ParseSolverMode(*solver)
	if err != nil {
		t.Usage("%v", err)
	}
	o.solver = sm
	if flag.NArg() < 1 {
		t.Usage("need a command (info, run, compare, perturb, faults, yield, sweep, resyn, dot)")
	}
	t.Fail(run(flag.Arg(0), flag.Args()[1:], o))
}

// loaded is a network in either representation.
type loaded struct {
	boolean   *network.Network
	threshold *core.Network
}

func load(path string) (loaded, error) {
	f, err := os.Open(path)
	if err != nil {
		return loaded{}, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".tln") {
		tn, err := core.ParseTLN(f)
		if err != nil {
			return loaded{}, fmt.Errorf("%s: %w", path, err)
		}
		return loaded{threshold: tn}, nil
	}
	nw, err := blif.Parse(f)
	if err != nil {
		return loaded{}, fmt.Errorf("%s: %w", path, err)
	}
	return loaded{boolean: nw}, nil
}

func run(cmd string, args []string, o options) error {
	switch cmd {
	case "info":
		if len(args) != 1 {
			return fmt.Errorf("info needs one netlist")
		}
		return info(args[0])
	case "run":
		if len(args) != 1 {
			return fmt.Errorf("run needs one netlist")
		}
		return simulate(args[0], o.n, o.seed)
	case "compare":
		if len(args) != 2 {
			return fmt.Errorf("compare needs <golden.blif> <impl.tln>")
		}
		return compare(args[0], args[1], o.seed)
	case "perturb":
		if len(args) != 2 {
			return fmt.Errorf("perturb needs <golden.blif> <impl.tln>")
		}
		return perturb(args[0], args[1], o)
	case "faults":
		if len(args) != 1 {
			return fmt.Errorf("faults needs one .tln netlist")
		}
		return faults(args[0], o)
	case "yield":
		if len(args) != 2 {
			return fmt.Errorf("yield needs <golden.blif> <impl.tln>")
		}
		return yield(args[0], args[1], o)
	case "sweep":
		if len(args) != 1 {
			return fmt.Errorf("sweep needs <golden.blif>")
		}
		return sweep(args[0], o)
	case "resyn":
		if len(args) != 1 {
			return fmt.Errorf("resyn needs <golden.blif>")
		}
		return resynCmd(args[0], o)
	case "dot":
		if len(args) != 1 {
			return fmt.Errorf("dot needs one .tln netlist")
		}
		l, err := load(args[0])
		if err != nil {
			return err
		}
		if l.threshold == nil {
			return fmt.Errorf("dot supports threshold (.tln) netlists")
		}
		return core.WriteDot(os.Stdout, l.threshold)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func info(path string) error {
	l, err := load(path)
	if err != nil {
		return err
	}
	if l.boolean != nil {
		s := l.boolean.Stats()
		fmt.Printf("%s: Boolean network\n", l.boolean.Name)
		fmt.Printf("  inputs   %d\n  outputs  %d\n  nodes    %d\n  levels   %d\n  literals %d\n",
			s.Inputs, s.Outputs, s.Gates, s.Levels, s.Literals)
		return nil
	}
	tn := l.threshold
	s := tn.Stats()
	fmt.Printf("%s: threshold network\n", tn.Name)
	fmt.Printf("  inputs  %d\n  outputs %d\n  gates   %d\n  levels  %d\n  area    %d (Eq. 14)\n",
		len(tn.Inputs), len(tn.Outputs), s.Gates, s.Levels, s.Area)
	hist := map[int]int{}
	maxW, maxT := 0, 0
	for _, g := range tn.Gates {
		hist[len(g.Inputs)]++
		for _, w := range g.Weights {
			if w < 0 {
				w = -w
			}
			if w > maxW {
				maxW = w
			}
		}
		t := g.T
		if t < 0 {
			t = -t
		}
		if t > maxT {
			maxT = t
		}
	}
	fanins := make([]int, 0, len(hist))
	for k := range hist {
		fanins = append(fanins, k)
	}
	sort.Ints(fanins)
	fmt.Printf("  fanin histogram:")
	for _, k := range fanins {
		fmt.Printf(" %d:%d", k, hist[k])
	}
	fmt.Printf("\n  max |weight| %d, max |T| %d\n", maxW, maxT)
	return nil
}

func simulate(path string, n int, seed int64) error {
	l, err := load(path)
	if err != nil {
		return err
	}
	var inputs []string
	var outputs []string
	evalFn := func(in map[string]bool) ([]bool, error) { return nil, nil }
	if l.boolean != nil {
		for _, in := range l.boolean.Inputs {
			inputs = append(inputs, in.Name)
		}
		for _, o := range l.boolean.Outputs {
			outputs = append(outputs, o.Name)
		}
		evalFn = l.boolean.EvalOutputs
	} else {
		inputs = l.threshold.Inputs
		outputs = l.threshold.Outputs
		evalFn = l.threshold.EvalOutputs
	}
	rng := rand.New(rand.NewSource(seed))
	fmt.Printf("%s -> %s\n", strings.Join(inputs, " "), strings.Join(outputs, " "))
	for i := 0; i < n; i++ {
		in := make(map[string]bool, len(inputs))
		var inBits, outBits strings.Builder
		for _, name := range inputs {
			val := rng.Intn(2) == 1
			in[name] = val
			inBits.WriteByte(bit(val))
		}
		out, err := evalFn(in)
		if err != nil {
			return err
		}
		for _, val := range out {
			outBits.WriteByte(bit(val))
		}
		fmt.Printf("%s -> %s\n", inBits.String(), outBits.String())
	}
	return nil
}

func bit(v bool) byte {
	if v {
		return '1'
	}
	return '0'
}

func compare(golden, impl string, seed int64) error {
	g, err := load(golden)
	if err != nil {
		return err
	}
	i, err := load(impl)
	if err != nil {
		return err
	}
	if g.boolean == nil || i.threshold == nil {
		return fmt.Errorf("compare needs a BLIF golden network and a .tln implementation")
	}
	res, err := sim.Prove(g.boolean, i.threshold, seed)
	if err != nil {
		return err
	}
	fmt.Printf("equivalent (%s)\n", res)
	return nil
}

func perturb(golden, impl string, o options) error {
	g, err := load(golden)
	if err != nil {
		return err
	}
	i, err := load(impl)
	if err != nil {
		return err
	}
	if g.boolean == nil || i.threshold == nil {
		return fmt.Errorf("perturb needs a BLIF golden network and a .tln implementation")
	}
	rate, err := sim.FailureRate(
		[]sim.Pair{{Name: impl, Bool: g.boolean, Threshold: i.threshold}},
		o.v, sim.FailureRateConfig{Trials: o.trials, Seed: o.seed, Width: o.width})
	if err != nil {
		return err
	}
	fmt.Printf("v=%.2f: %d trials, failure rate %.1f%%\n", o.v, o.trials, 100*rate)
	return nil
}

// batchFor builds the fault/yield vector batch: exhaustive when the input
// count permits, n random vectors otherwise.
func batchFor(inputs []string, n int, seed int64, w fsim.Width) (*fsim.Batch, error) {
	if len(inputs) <= fsim.ExhaustiveInputs {
		return fsim.ExhaustiveW(inputs, w)
	}
	if n < fsim.DefaultSamples {
		n = fsim.DefaultSamples
	}
	return fsim.RandomW(inputs, n, rand.New(rand.NewSource(seed)), w), nil
}

func faults(impl string, o options) error {
	l, err := load(impl)
	if err != nil {
		return err
	}
	if l.threshold == nil {
		return fmt.Errorf("faults supports threshold (.tln) netlists")
	}
	batch, err := batchFor(l.threshold.Inputs, o.n, o.seed, o.width)
	if err != nil {
		return err
	}
	rep, err := fsim.FaultSweep(l.threshold, batch)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	for _, s := range rep.Sites {
		status := fmt.Sprintf("detected by %d vectors", s.Detected)
		if s.Detected == 0 {
			status = "UNDETECTABLE"
		}
		fmt.Printf("  %s stuck-at-%d: %s\n", s.Gate, s.Stuck, status)
	}
	return nil
}

func yield(golden, impl string, o options) error {
	g, err := load(golden)
	if err != nil {
		return err
	}
	i, err := load(impl)
	if err != nil {
		return err
	}
	if g.boolean == nil || i.threshold == nil {
		return fmt.Errorf("yield needs a BLIF golden network and a .tln implementation")
	}
	var model fsim.DefectModel
	switch o.model {
	case "weight":
		model = fsim.WeightVariation{V: o.v}
	case "drift":
		model = fsim.ThresholdDrift{V: o.v}
	case "stuck":
		model = fsim.StuckAt{P: o.p}
	default:
		return fmt.Errorf("unknown defect model %q (want weight, drift, or stuck)", o.model)
	}
	rep, err := fsim.EstimateYield(g.boolean, i.threshold, model, fsim.YieldConfig{
		MaxTrials: o.maxTrials,
		HalfWidth: o.eps,
		Samples:   o.n,
		Seed:      o.seed,
		Width:     o.width,
	})
	if err != nil {
		return err
	}
	fmt.Println(rep)
	for n, s := range rep.Critical {
		if n >= 5 {
			break
		}
		fmt.Printf("  critical %d: %s (blamed for %d failing lanes, flipped on %d)\n",
			n+1, s.Gate, s.Blamed, s.Flipped)
	}
	return nil
}

// sweep drives one kind="sweep" job through the service layer and renders
// the resulting yield curve.
func sweep(golden string, o options) error {
	src, err := os.ReadFile(golden)
	if err != nil {
		return err
	}
	vs, err := parseFloats(o.vs)
	if err != nil {
		return fmt.Errorf("-vs: %w", err)
	}
	dons, err := parseInts(o.dons)
	if err != nil {
		return fmt.Errorf("-dons: %w", err)
	}
	var models []string
	if o.models != "" {
		models = strings.Split(o.models, ",")
	}
	spec := service.SweepJobSpec{
		SynthSpec: service.SynthSpec{BLIF: string(src), Seed: o.seed},
		Yield: service.YieldSpec{
			Model:     o.model,
			V:         o.v,
			P:         o.p,
			MaxTrials: o.maxTrials,
			HalfWidth: o.eps,
			Seed:      o.seed,
		},
		Sweep: service.SweepSpec{Vs: vs, DeltaOns: dons, Models: models, MaxInFlight: o.inflight},
	}
	progress := func(j service.Job) {
		if o.quiet || j.Progress == nil {
			return
		}
		fmt.Fprintf(os.Stderr, "\rsweep %s: %d/%d points", j.ID, j.Progress.DonePoints, j.Progress.TotalPoints)
	}
	env, err := specEnvelope("sweep", spec)
	if err != nil {
		return err
	}
	final, err := runServiceJob(env, o, progress)
	if err != nil {
		return err
	}
	if !o.quiet {
		fmt.Fprintln(os.Stderr)
	}
	if final.State != service.StateDone {
		return fmt.Errorf("sweep %s: %s", final.State, final.Error)
	}
	sr := final.Result.Sweep
	fmt.Printf("# sweep of %s: %d points in %d ms\n", golden, sr.DonePoints, sr.WallMS)
	fmt.Printf("%-4s %-8s %-6s %-6s %-6s %-10s %-8s %s\n",
		"don", "model", "v", "gates", "area", "fail_rate", "yield", "cache")
	for _, p := range sr.Points {
		if p.Error != "" {
			fmt.Printf("%-4d %-8s %-6.2f point failed: %s\n", p.DeltaOn, p.Model, p.V, p.Error)
			continue
		}
		cache := "miss"
		if p.CacheHit {
			cache = "hit"
		}
		fmt.Printf("%-4d %-8s %-6.2f %-6d %-6d %-10.4f %-8.4f %s\n",
			p.DeltaOn, p.Model, p.V, p.Gates, p.Area, p.FailureRate, p.Yield, cache)
	}
	return nil
}

// specEnvelope wraps a job spec in its kind-tagged submission, the same
// bytes the HTTP path sends.
func specEnvelope(kind string, spec any) (service.SubmitEnvelope, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return service.SubmitEnvelope{}, err
	}
	return service.SubmitEnvelope{Kind: kind, Spec: raw}, nil
}

// runServiceJob submits the envelope — to a running telsd when -server
// is set, to an in-process manager otherwise — and polls the job to a
// terminal state, invoking progress on every snapshot.
func runServiceJob(env service.SubmitEnvelope, o options, progress func(service.Job)) (service.Job, error) {
	ctx := context.Background()
	if o.server != "" {
		c := &service.Client{BaseURL: o.server, APIKey: o.apiKey, PollInterval: 100 * time.Millisecond}
		job, err := c.SubmitEnvelope(ctx, env)
		if err != nil {
			return service.Job{}, describeAPIError(err)
		}
		// Watch streams progress over SSE and falls back to polling when
		// the stream is unavailable.
		job, err = c.Watch(ctx, job.ID, func(ev service.JobEvent) {
			if ev.Job != nil {
				progress(*ev.Job)
			}
		})
		if err != nil {
			return service.Job{}, describeAPIError(err)
		}
		return job, nil
	}
	m := service.New(service.Config{Workers: o.workers, FsimWidth: o.width, Solver: o.solver})
	defer m.Close()
	ccBefore := core.SnapshotCheckCounters()
	defer func() {
		if o.quiet {
			return
		}
		cc := core.SnapshotCheckCounters()
		if cc.Checks == ccBefore.Checks {
			return
		}
		fmt.Fprintf(os.Stderr, "solver %s: %d checks, %d races (%d ilp / %d pbsat wins), %d unsat-cache hits, %d budget bailouts\n",
			o.solver, cc.Checks-ccBefore.Checks, cc.Races-ccBefore.Races,
			cc.ILPWins-ccBefore.ILPWins, cc.PbsatWins-ccBefore.PbsatWins,
			cc.UnsatCacheHits-ccBefore.UnsatCacheHits, cc.BudgetBailouts-ccBefore.BudgetBailouts)
	}()
	req, err := env.Request()
	if err != nil {
		return service.Job{}, err
	}
	job, err := m.Submit(req)
	if err != nil {
		return service.Job{}, err
	}
	for {
		snap, ok := m.Get(job.ID)
		if !ok {
			return service.Job{}, fmt.Errorf("job %s vanished", job.ID)
		}
		progress(snap)
		if snap.State.Terminal() {
			return snap, nil
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// describeAPIError surfaces the envelope's machine-readable code on a
// server rejection, with actionable hints for the auth and quota cases,
// so a scripted caller can tell a quota push-back from a bad spec.
func describeAPIError(err error) error {
	var se *service.StatusError
	if !errors.As(err, &se) {
		return err
	}
	switch {
	case service.IsQuotaExceeded(err):
		return fmt.Errorf("telsim: tenant quota exceeded [%s]: %s (retry after %s)", se.Code, se.Message, se.RetryAfter)
	case service.IsUnauthorized(err):
		return fmt.Errorf("telsim: server requires an API key [%s]: %s (pass -api-key)", se.Code, se.Message)
	case service.IsForbidden(err):
		return fmt.Errorf("telsim: API key rejected [%s]: %s", se.Code, se.Message)
	case service.IsOverloaded(err):
		return fmt.Errorf("telsim: server overloaded [%s]: %s (retry after %s)", se.Code, se.Message, se.RetryAfter)
	}
	return fmt.Errorf("telsim: server error [%s]: %w", se.Code, err)
}

// resynCmd drives one kind="resyn" job through the service layer and
// renders the hardening trajectory.
func resynCmd(golden string, o options) error {
	src, err := os.ReadFile(golden)
	if err != nil {
		return err
	}
	don := o.don
	spec := service.ResynJobSpec{
		SynthSpec: service.SynthSpec{BLIF: string(src), Seed: o.seed, DeltaOn: &don},
		Yield: service.YieldSpec{
			Model:     o.model,
			V:         o.v,
			P:         o.p,
			MaxTrials: o.maxTrials,
			HalfWidth: o.eps,
			Seed:      o.seed,
		},
		Resyn: service.ResynSpec{
			TopK:        o.topk,
			DeltaStep:   o.dstep,
			MaxDeltaOn:  o.maxdon,
			MaxIters:    o.maxiters,
			TargetYield: o.target,
			AreaBudget:  o.budget,
		},
	}
	progress := func(j service.Job) {
		if o.quiet || j.Progress == nil {
			return
		}
		n := len(j.Progress.Iterations)
		if n == 0 {
			return
		}
		it := j.Progress.Iterations[n-1]
		fmt.Fprintf(os.Stderr, "\rresyn %s: iter %d, yield %.4f, area %d, %d hardened",
			j.ID, it.Iter, it.Yield, it.Area, len(it.Hardened))
	}
	env, err := specEnvelope("resyn", spec)
	if err != nil {
		return err
	}
	final, err := runServiceJob(env, o, progress)
	if err != nil {
		return err
	}
	if !o.quiet {
		fmt.Fprintln(os.Stderr)
	}
	if final.State != service.StateDone {
		return fmt.Errorf("resyn %s: %s", final.State, final.Error)
	}
	rep := final.Result.Resyn
	fmt.Printf("# resyn of %s under %s: %s after %d iterations\n",
		golden, rep.Model, rep.Stop, len(rep.Iterations))
	fmt.Printf("%-5s %-8s %-8s %-6s %-6s %s\n", "iter", "yield", "ci", "gates", "area", "hardened")
	for _, it := range rep.Iterations {
		var hardened []string
		for _, h := range it.Hardened {
			tag := fmt.Sprintf("%s→δ%d", h.Gate, h.DeltaOn)
			if h.Decomposed {
				tag += fmt.Sprintf("(+%d gates)", h.AddedGates)
			}
			hardened = append(hardened, tag)
		}
		fmt.Printf("%-5d %-8.4f ±%-7.3f %-6d %-6d %s\n",
			it.Iter, it.Yield, (it.Hi-it.Lo)/2, it.Gates, it.Area, strings.Join(hardened, " "))
	}
	fmt.Printf("yield %.4f → %.4f, area %d → %d (+%d), %d gate hardenings (%d memoised)\n",
		rep.InitialYield, rep.FinalYield, rep.InitialArea, rep.FinalArea,
		rep.FinalArea-rep.InitialArea, rep.HardenedGates, rep.CacheHits)
	if o.output != "" {
		if err := os.WriteFile(o.output, []byte(final.Result.TLN), 0o644); err != nil {
			return err
		}
		fmt.Printf("hardened network written to %s\n", o.output)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
