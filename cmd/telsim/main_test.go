package main

import (
	"os"
	"path/filepath"
	"testing"
)

const testBlif = `
.model t
.inputs a b
.outputs f
.names a b f
11 1
.end
`

const testTLN = `
.tnet t
.inputs a b
.outputs f
.gate f = [T=2] +1*a +1*b
.end
`

const wrongTLN = `
.tnet t
.inputs a b
.outputs f
.gate f = [T=1] +1*a +1*b
.end
`

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// opts returns the flag defaults used by the subcommand tests.
func opts() options {
	return options{
		n: 4, seed: 1, v: 0.8, trials: 10,
		maxTrials: 200, eps: 0.02, model: "weight", p: 0.1,
	}
}

func TestInfoBoth(t *testing.T) {
	if err := run("info", []string{write(t, "t.blif", testBlif)}, opts()); err != nil {
		t.Fatal(err)
	}
	if err := run("info", []string{write(t, "t.tln", testTLN)}, opts()); err != nil {
		t.Fatal(err)
	}
}

func TestRunCommand(t *testing.T) {
	if err := run("run", []string{write(t, "t.tln", testTLN)}, opts()); err != nil {
		t.Fatal(err)
	}
	if err := run("run", []string{write(t, "t.blif", testBlif)}, opts()); err != nil {
		t.Fatal(err)
	}
}

func TestCompareCommand(t *testing.T) {
	golden := write(t, "t.blif", testBlif)
	good := write(t, "good.tln", testTLN)
	bad := write(t, "bad.tln", wrongTLN)
	if err := run("compare", []string{golden, good}, opts()); err != nil {
		t.Fatal(err)
	}
	if err := run("compare", []string{golden, bad}, opts()); err == nil {
		t.Fatal("OR gate accepted as AND implementation")
	}
}

func TestPerturbCommand(t *testing.T) {
	golden := write(t, "t.blif", testBlif)
	impl := write(t, "good.tln", testTLN)
	o := opts()
	o.trials = 5
	if err := run("perturb", []string{golden, impl}, o); err != nil {
		t.Fatal(err)
	}
}

func TestFaultsCommand(t *testing.T) {
	if err := run("faults", []string{write(t, "t.tln", testTLN)}, opts()); err != nil {
		t.Fatal(err)
	}
	if err := run("faults", []string{write(t, "t.blif", testBlif)}, opts()); err == nil {
		t.Fatal("faults on a BLIF network should be rejected")
	}
}

func TestYieldCommand(t *testing.T) {
	golden := write(t, "t.blif", testBlif)
	impl := write(t, "good.tln", testTLN)
	for _, model := range []string{"weight", "drift", "stuck"} {
		o := opts()
		o.model = model
		if err := run("yield", []string{golden, impl}, o); err != nil {
			t.Fatalf("%s: %v", model, err)
		}
	}
	o := opts()
	o.model = "cosmic-ray"
	if err := run("yield", []string{golden, impl}, o); err == nil {
		t.Fatal("unknown defect model accepted")
	}
}

func TestDotCommand(t *testing.T) {
	if err := run("dot", []string{write(t, "t.tln", testTLN)}, opts()); err != nil {
		t.Fatal(err)
	}
	if err := run("dot", []string{write(t, "t.blif", testBlif)}, opts()); err == nil {
		t.Fatal("dot of a BLIF network should be rejected")
	}
}

func TestBadUsage(t *testing.T) {
	cases := [][2]string{
		{"info", ""},
		{"wat", ""},
		{"compare", "one-arg-only"},
		{"yield", "one-arg-only"},
		{"faults", ""},
	}
	for _, c := range cases {
		var args []string
		if c[1] != "" {
			args = []string{c[1]}
		}
		if err := run(c[0], args, opts()); err == nil {
			t.Errorf("command %q with args %v accepted", c[0], args)
		}
	}
	if err := run("info", []string{"/nonexistent.tln"}, opts()); err == nil {
		t.Error("missing file accepted")
	}
}
