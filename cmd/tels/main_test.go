package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tels/internal/cli"
	"tels/internal/service"
)

const testBlif = `
.model small
.inputs a b c
.outputs f
.names a b x
11 1
.names x c f
1- 1
-1 1
.end
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func quietTool() *cli.Tool {
	return &cli.Tool{Name: "tels", Quiet: true}
}

// base returns the default flag configuration for tests.
func base(args ...string) config {
	return config{fanin: 3, deltaOn: 0, deltaOff: 1, script: "algebraic", mapper: "tels", verify: true, args: args}
}

func TestRunFullFlow(t *testing.T) {
	in := writeTemp(t, "small.blif", testBlif)
	out := filepath.Join(t.TempDir(), "small.tln")
	rtdOut := filepath.Join(t.TempDir(), "small.sp")
	cfg := base(in)
	cfg.output = out
	cfg.rtdOut = rtdOut
	if err := run(quietTool(), cfg); err != nil {
		t.Fatal(err)
	}
	tln, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tln), ".tnet small") {
		t.Fatalf("tln output wrong:\n%s", tln)
	}
	sp, err := os.ReadFile(rtdOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sp), "MOBILE netlist") {
		t.Fatalf("rtd output wrong:\n%s", sp)
	}
}

func TestRunOneToOneAndScripts(t *testing.T) {
	in := writeTemp(t, "small.blif", testBlif)
	for _, script := range []string{"algebraic", "boolean", "none"} {
		cfg := base(in)
		cfg.script = script
		cfg.mapper = "one2one"
		cfg.output = filepath.Join(t.TempDir(), script+".tln")
		if err := run(quietTool(), cfg); err != nil {
			t.Fatalf("script %s: %v", script, err)
		}
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	in := writeTemp(t, "small.blif", testBlif)
	cases := []struct {
		name string
		mod  func(*config)
	}{
		{"bad script", func(c *config) { c.script = "wat" }},
		{"bad mapper", func(c *config) { c.mapper = "wat" }},
		{"two inputs", func(c *config) { c.args = []string{in, in} }},
		{"missing file", func(c *config) { c.args = []string{"/nonexistent.blif"} }},
		{"bad fanin", func(c *config) { c.fanin = 1 }},
	}
	for _, tc := range cases {
		cfg := base(in)
		cfg.script = "none"
		cfg.verify = false
		tc.mod(&cfg)
		if err := run(quietTool(), cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestRunBadBlif(t *testing.T) {
	in := writeTemp(t, "bad.blif", ".model m\n.inputs a\n.outputs y\n.names a b y\n11 1\n.end")
	cfg := base(in)
	cfg.script = "none"
	cfg.verify = false
	if err := run(quietTool(), cfg); err == nil {
		t.Fatal("undefined signal accepted")
	}
}

// TestRunServerRoundTrip drives the -server mode against an in-process
// telsd handler: the CLI submits the job, polls it, fetches the .tln, and
// writes the same outputs the local flow would.
func TestRunServerRoundTrip(t *testing.T) {
	m := service.New(service.Config{Workers: 2})
	defer m.Close()
	srv := httptest.NewServer(service.NewHandler(m))
	defer srv.Close()

	in := writeTemp(t, "small.blif", testBlif)
	out := filepath.Join(t.TempDir(), "small.tln")
	cfg := base(in)
	cfg.output = out
	cfg.server = srv.URL
	if err := run(quietTool(), cfg); err != nil {
		t.Fatal(err)
	}
	tln, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tln), ".tnet small") {
		t.Fatalf("tln output wrong:\n%s", tln)
	}
}
