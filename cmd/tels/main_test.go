package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testBlif = `
.model small
.inputs a b c
.outputs f
.names a b x
11 1
.names x c f
1- 1
-1 1
.end
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFullFlow(t *testing.T) {
	in := writeTemp(t, "small.blif", testBlif)
	out := filepath.Join(t.TempDir(), "small.tln")
	rtdOut := filepath.Join(t.TempDir(), "small.sp")
	err := run(3, 0, 1, 0, 0, false, "algebraic", "tels", out, rtdOut, true, true, []string{in})
	if err != nil {
		t.Fatal(err)
	}
	tln, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tln), ".tnet small") {
		t.Fatalf("tln output wrong:\n%s", tln)
	}
	sp, err := os.ReadFile(rtdOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sp), "MOBILE netlist") {
		t.Fatalf("rtd output wrong:\n%s", sp)
	}
}

func TestRunOneToOneAndScripts(t *testing.T) {
	in := writeTemp(t, "small.blif", testBlif)
	for _, script := range []string{"algebraic", "boolean", "none"} {
		out := filepath.Join(t.TempDir(), script+".tln")
		if err := run(3, 0, 1, 0, 0, false, script, "one2one", out, "", true, true, []string{in}); err != nil {
			t.Fatalf("script %s: %v", script, err)
		}
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	in := writeTemp(t, "small.blif", testBlif)
	cases := []struct {
		name string
		err  func() error
	}{
		{"bad script", func() error {
			return run(3, 0, 1, 0, 0, false, "wat", "tels", "", "", false, true, []string{in})
		}},
		{"bad mapper", func() error {
			return run(3, 0, 1, 0, 0, false, "none", "wat", "", "", false, true, []string{in})
		}},
		{"two inputs", func() error {
			return run(3, 0, 1, 0, 0, false, "none", "tels", "", "", false, true, []string{in, in})
		}},
		{"missing file", func() error {
			return run(3, 0, 1, 0, 0, false, "none", "tels", "", "", false, true, []string{"/nonexistent.blif"})
		}},
		{"bad fanin", func() error {
			return run(1, 0, 1, 0, 0, false, "none", "tels", "", "", false, true, []string{in})
		}},
	}
	for _, tc := range cases {
		if tc.err() == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestRunBadBlif(t *testing.T) {
	in := writeTemp(t, "bad.blif", ".model m\n.inputs a\n.outputs y\n.names a b y\n11 1\n.end")
	if err := run(3, 0, 1, 0, 0, false, "none", "tels", "", "", false, true, []string{in}); err == nil {
		t.Fatal("undefined signal accepted")
	}
}
