// Command tels is the ThrEshold Logic Synthesizer: it reads a
// combinational BLIF network, optionally optimizes it with an
// algebraic-factoring script, synthesizes a threshold (LTG) network per
// the DATE'04 TELS methodology, verifies it by simulation, and writes the
// result in the .tln format.
//
// Usage:
//
//	tels [flags] [input.blif]
//
// With no input file, BLIF is read from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tels/internal/blif"
	"tels/internal/core"
	"tels/internal/network"
	"tels/internal/opt"
	"tels/internal/rtd"
	"tels/internal/sim"
)

func main() {
	var (
		fanin    = flag.Int("fanin", 3, "fanin restriction ψ per threshold gate")
		deltaOn  = flag.Int("don", 0, "defect tolerance δon")
		deltaOff = flag.Int("doff", 1, "defect tolerance δoff")
		seed     = flag.Int64("seed", 0, "tie-break seed for the splitting heuristics")
		exact    = flag.Bool("exact", false, "solve threshold ILPs in exact rational arithmetic")
		maxw     = flag.Int("maxw", 0, "bound on |weight| per gate input (0 = unbounded)")
		script   = flag.String("script", "algebraic", "pre-synthesis optimization: algebraic, boolean, or none")
		mapper   = flag.String("map", "tels", "mapping: tels (threshold synthesis) or one2one (baseline)")
		output   = flag.String("o", "", "write the threshold network (.tln) to this file (default stdout)")
		rtdOut   = flag.String("rtd", "", "also write an RTD/MOBILE netlist to this file")
		verify   = flag.Bool("verify", true, "simulate the result against the source network")
		quiet    = flag.Bool("q", false, "suppress the statistics summary")
	)
	flag.Parse()
	if err := run(*fanin, *deltaOn, *deltaOff, *maxw, *seed, *exact, *script, *mapper, *output, *rtdOut, *verify, *quiet, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "tels: %v\n", err)
		os.Exit(1)
	}
}

func run(fanin, deltaOn, deltaOff, maxWeight int, seed int64, exact bool, script, mapper, output, rtdOut string,
	verify, quiet bool, args []string) error {
	var in io.Reader = os.Stdin
	srcName := "<stdin>"
	if len(args) > 1 {
		return fmt.Errorf("expected at most one input file, got %d", len(args))
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		srcName = args[0]
	}
	src, err := blif.Parse(in)
	if err != nil {
		return fmt.Errorf("%s: %w", srcName, err)
	}

	var optimized *network.Network
	switch script {
	case "algebraic":
		optimized = opt.Algebraic(src)
	case "boolean":
		optimized = opt.Boolean(src)
	case "none":
		optimized = src.Clone()
	default:
		return fmt.Errorf("unknown script %q (want algebraic, boolean, or none)", script)
	}

	o := core.Options{Fanin: fanin, DeltaOn: deltaOn, DeltaOff: deltaOff, Seed: seed, ExactILP: exact, MaxWeight: maxWeight}
	var tn *core.Network
	var stats core.SynthStats
	switch mapper {
	case "tels":
		tn, stats, err = core.Synthesize(optimized, o)
	case "one2one":
		tn, err = core.OneToOne(optimized, o)
	default:
		return fmt.Errorf("unknown mapper %q (want tels or one2one)", mapper)
	}
	if err != nil {
		return err
	}

	verifyMode := sim.Proved
	if verify {
		res, err := sim.Prove(src, tn, 1)
		if err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		verifyMode = res
	}

	out := os.Stdout
	if output != "" {
		f, err := os.Create(output)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := core.WriteTLN(out, tn); err != nil {
		return err
	}

	if rtdOut != "" {
		nl, err := rtd.Map(tn)
		if err != nil {
			return err
		}
		f, err := os.Create(rtdOut)
		if err != nil {
			return err
		}
		if err := nl.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !quiet {
			s := nl.Stats()
			fmt.Fprintf(os.Stderr, "tels: RTD mapping: %d MOBILEs, %d RTDs, %d HFETs, area %d -> %s\n",
				s.Mobiles, s.RTDs, s.HFETs, s.Area, rtdOut)
		}
	}

	if !quiet {
		s := tn.Stats()
		fmt.Fprintf(os.Stderr, "tels: %s: %d gates, %d levels, area %d (ψ=%d, δon=%d, δoff=%d)\n",
			tn.Name, s.Gates, s.Levels, s.Area, fanin, deltaOn, deltaOff)
		if mapper == "tels" {
			fmt.Fprintf(os.Stderr, "tels: %d ILP checks (%d threshold), %d collapses, %d unate / %d binate splits, %d Theorem-2 merges\n",
				stats.ILPCalls, stats.ILPFeasible, stats.Collapses,
				stats.UnateSplits, stats.BinateSplits, stats.Theorem2)
		}
		if verify {
			switch verifyMode {
			case sim.Proved:
				fmt.Fprintln(os.Stderr, "tels: equivalence proved (BDD) against the source network")
			default:
				fmt.Fprintln(os.Stderr, "tels: equivalence checked by simulation against the source network")
			}
		}
	}
	return nil
}
