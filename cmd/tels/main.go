// Command tels is the ThrEshold Logic Synthesizer: it reads a
// combinational BLIF network, optionally optimizes it with an
// algebraic-factoring script, synthesizes a threshold (LTG) network per
// the DATE'04 TELS methodology, verifies it by simulation, and writes the
// result in the .tln format.
//
// Usage:
//
//	tels [flags] [input.blif]
//
// With no input file, BLIF is read from standard input. With -server URL
// the flow is executed by a telsd daemon instead of in-process: the BLIF
// is submitted as a job, polled to completion, and the resulting .tln
// fetched back — repeated runs of the same input hit the daemon's result
// cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"tels/internal/blif"
	"tels/internal/cli"
	"tels/internal/core"
	"tels/internal/network"
	"tels/internal/opt"
	"tels/internal/rtd"
	"tels/internal/service"
	"tels/internal/sim"
)

// config mirrors the command-line flags.
type config struct {
	fanin     int
	deltaOn   int
	deltaOff  int
	maxWeight int
	seed      int64
	exact     bool
	solver    string
	script    string
	mapper    string
	output    string
	rtdOut    string
	verify    bool
	server    string
	args      []string
}

func main() {
	var cfg config
	flag.IntVar(&cfg.fanin, "fanin", 3, "fanin restriction ψ per threshold gate")
	flag.IntVar(&cfg.deltaOn, "don", 0, "defect tolerance δon")
	flag.IntVar(&cfg.deltaOff, "doff", 1, "defect tolerance δoff")
	flag.Int64Var(&cfg.seed, "seed", 0, "tie-break seed for the splitting heuristics")
	flag.BoolVar(&cfg.exact, "exact", false, "solve threshold ILPs in exact rational arithmetic")
	flag.StringVar(&cfg.solver, "solver", "", "threshold-check engine: portfolio, ilp, or pbsat (default portfolio)")
	flag.IntVar(&cfg.maxWeight, "maxw", 0, "bound on |weight| per gate input (0 = unbounded)")
	flag.StringVar(&cfg.script, "script", "algebraic", "pre-synthesis optimization: algebraic, boolean, or none")
	flag.StringVar(&cfg.mapper, "map", "tels", "mapping: tels (threshold synthesis) or one2one (baseline)")
	flag.StringVar(&cfg.output, "o", "", "write the threshold network (.tln) to this file (default stdout)")
	flag.StringVar(&cfg.rtdOut, "rtd", "", "also write an RTD/MOBILE netlist to this file")
	flag.BoolVar(&cfg.verify, "verify", true, "simulate the result against the source network")
	flag.StringVar(&cfg.server, "server", "", "run the flow through a telsd daemon at this URL instead of in-process")
	quiet := flag.Bool("q", false, "suppress the statistics summary")
	flag.Parse()
	cfg.args = flag.Args()
	t := cli.New("tels")
	t.Quiet = *quiet
	t.Fail(run(t, cfg))
}

func run(t *cli.Tool, cfg config) error {
	var in io.Reader = os.Stdin
	srcName := "<stdin>"
	if len(cfg.args) > 1 {
		return fmt.Errorf("expected at most one input file, got %d", len(cfg.args))
	}
	if len(cfg.args) == 1 {
		f, err := os.Open(cfg.args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		srcName = cfg.args[0]
	}

	if cfg.server != "" {
		return runRemote(t, cfg, in, srcName)
	}
	return runLocal(t, cfg, in, srcName)
}

// runLocal executes the whole flow in-process.
func runLocal(t *cli.Tool, cfg config, in io.Reader, srcName string) error {
	src, err := blif.Parse(in)
	if err != nil {
		return fmt.Errorf("%s: %w", srcName, err)
	}

	var optimized *network.Network
	switch cfg.script {
	case "algebraic":
		optimized = opt.Algebraic(src)
	case "boolean":
		optimized = opt.Boolean(src)
	case "none":
		optimized = src.Clone()
	default:
		return fmt.Errorf("unknown script %q (want algebraic, boolean, or none)", cfg.script)
	}

	solver, err := core.ParseSolverMode(cfg.solver)
	if err != nil {
		return err
	}
	o := core.Options{Fanin: cfg.fanin, DeltaOn: cfg.deltaOn, DeltaOff: cfg.deltaOff,
		Seed: cfg.seed, ExactILP: cfg.exact, MaxWeight: cfg.maxWeight, Solver: solver}
	ccBefore := core.SnapshotCheckCounters()
	var tn *core.Network
	var stats core.SynthStats
	switch cfg.mapper {
	case "tels":
		tn, stats, err = core.Synthesize(optimized, o)
	case "one2one":
		tn, err = core.OneToOne(optimized, o)
	default:
		return fmt.Errorf("unknown mapper %q (want tels or one2one)", cfg.mapper)
	}
	if err != nil {
		return err
	}

	verifyMode := sim.Proved
	if cfg.verify {
		res, err := sim.Prove(src, tn, 1)
		if err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		verifyMode = res
	}

	if err := writeOutputs(t, cfg, tn); err != nil {
		return err
	}

	s := tn.Stats()
	t.Infof("%s: %d gates, %d levels, area %d (ψ=%d, δon=%d, δoff=%d)",
		tn.Name, s.Gates, s.Levels, s.Area, cfg.fanin, cfg.deltaOn, cfg.deltaOff)
	if cfg.mapper == "tels" {
		t.Infof("%d ILP checks (%d threshold), %d collapses, %d unate / %d binate splits, %d Theorem-2 merges",
			stats.ILPCalls, stats.ILPFeasible, stats.Collapses,
			stats.UnateSplits, stats.BinateSplits, stats.Theorem2)
		cc := core.SnapshotCheckCounters()
		t.Infof("solver %s: %d checks, %d races (%d ilp / %d pbsat wins), %d unsat-cache hits, %d budget bailouts",
			solver, cc.Checks-ccBefore.Checks, cc.Races-ccBefore.Races,
			cc.ILPWins-ccBefore.ILPWins, cc.PbsatWins-ccBefore.PbsatWins,
			cc.UnsatCacheHits-ccBefore.UnsatCacheHits, cc.BudgetBailouts-ccBefore.BudgetBailouts)
	}
	if cfg.verify {
		switch verifyMode {
		case sim.Proved:
			t.Infof("equivalence proved (BDD) against the source network")
		default:
			t.Infof("equivalence checked by simulation against the source network")
		}
	}
	return nil
}

// runRemote drives the flow through a telsd daemon: submit, poll, fetch.
func runRemote(t *cli.Tool, cfg config, in io.Reader, srcName string) error {
	text, err := io.ReadAll(in)
	if err != nil {
		return fmt.Errorf("%s: %w", srcName, err)
	}
	c := &service.Client{BaseURL: cfg.server}
	ctx := context.Background()
	don, doff := cfg.deltaOn, cfg.deltaOff
	job, err := c.SubmitSynth(ctx, service.SynthSpec{
		BLIF:       string(text),
		Script:     cfg.script,
		Mapper:     cfg.mapper,
		Fanin:      cfg.fanin,
		DeltaOn:    &don,
		DeltaOff:   &doff,
		Seed:       cfg.seed,
		Exact:      cfg.exact,
		MaxWeight:  cfg.maxWeight,
		SkipVerify: !cfg.verify,
	})
	if err != nil {
		return err
	}
	t.Infof("submitted %s as %s (digest %.12s…)", srcName, job.ID, job.Digest)
	job, err = c.WaitDone(ctx, job.ID)
	if err != nil {
		return err
	}
	if job.State != service.StateDone {
		return fmt.Errorf("job %s %s: %s", job.ID, job.State, job.Error)
	}
	text2, err := c.TLN(ctx, job.ID)
	if err != nil {
		return err
	}
	tn, err := core.ParseTLNString(text2)
	if err != nil {
		return fmt.Errorf("server returned malformed .tln: %w", err)
	}
	if err := writeOutputs(t, cfg, tn); err != nil {
		return err
	}
	if job.Result != nil {
		r := job.Result
		from := "synthesized"
		if r.CacheHit {
			from = "served from cache"
		}
		t.Infof("%s: %d gates, %d levels, area %d — %s, verification %s",
			tn.Name, r.Stats.Gates, r.Stats.Levels, r.Stats.Area, from, r.Verified)
	}
	return nil
}

// writeOutputs renders the .tln (and optional RTD netlist) per the flags.
func writeOutputs(t *cli.Tool, cfg config, tn *core.Network) error {
	out := os.Stdout
	if cfg.output != "" {
		f, err := os.Create(cfg.output)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := core.WriteTLN(out, tn); err != nil {
		return err
	}

	if cfg.rtdOut != "" {
		nl, err := rtd.Map(tn)
		if err != nil {
			return err
		}
		f, err := os.Create(cfg.rtdOut)
		if err != nil {
			return err
		}
		if err := nl.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		s := nl.Stats()
		t.Infof("RTD mapping: %d MOBILEs, %d RTDs, %d HFETs, area %d -> %s",
			s.Mobiles, s.RTDs, s.HFETs, s.Area, cfg.rtdOut)
	}
	return nil
}
