package main

import (
	"os"
	"path/filepath"
	"testing"

	"tels/internal/cli"
)

func TestListAndEmit(t *testing.T) {
	if err := run(&cli.Tool{Name: "benchgen", Quiet: true}, true, "", nil); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := run(&cli.Tool{Name: "benchgen", Quiet: true}, false, dir, []string{"mux4", "adder4"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mux4.blif", "adder4.blif"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

func TestErrors(t *testing.T) {
	if err := run(&cli.Tool{Name: "benchgen", Quiet: true}, false, "", nil); err == nil {
		t.Fatal("no benchmark name accepted")
	}
	if err := run(&cli.Tool{Name: "benchgen", Quiet: true}, false, "", []string{"no-such-circuit"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
