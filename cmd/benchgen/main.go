// Command benchgen emits the recreated MCNC benchmark circuits as BLIF.
//
//	benchgen -list            list all benchmarks with descriptions
//	benchgen comp             write comp.blif content to stdout
//	benchgen -dir out all     write every benchmark to out/<name>.blif
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tels/internal/blif"
	"tels/internal/cli"
	"tels/internal/mcnc"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available benchmarks")
		dir   = flag.String("dir", "", "write <name>.blif files into this directory")
		quiet = flag.Bool("q", false, "suppress informational diagnostics")
	)
	flag.Parse()
	t := cli.New("benchgen")
	t.Quiet = *quiet
	t.Fail(run(t, *list, *dir, flag.Args()))
}

func run(t *cli.Tool, list bool, dir string, args []string) error {
	if list {
		for _, bm := range mcnc.All() {
			nw := bm.Build()
			fmt.Printf("%-10s %3d in / %3d out / %4d gates  %s\n",
				bm.Name, len(nw.Inputs), len(nw.Outputs), nw.GateCount(), bm.Description)
		}
		return nil
	}
	if len(args) == 0 {
		return fmt.Errorf("no benchmark named (use -list to see them, or 'all')")
	}
	names := args
	if len(args) == 1 && args[0] == "all" {
		names = mcnc.Names()
	}
	for _, name := range names {
		bm, ok := mcnc.Get(name)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", name)
		}
		nw := bm.Build()
		if dir == "" {
			if err := blif.Write(os.Stdout, nw); err != nil {
				return err
			}
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(dir, name+".blif")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := blif.Write(f, nw); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		t.Infof("wrote %s", path)
	}
	return nil
}
