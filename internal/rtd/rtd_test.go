package rtd

import (
	"strings"
	"testing"

	"tels/internal/core"
	"tels/internal/logic"
	"tels/internal/mcnc"
	"tels/internal/network"
	"tels/internal/opt"
)

func sampleNetwork(t *testing.T) *core.Network {
	t.Helper()
	tn := core.NewNetwork("demo")
	tn.AddInput("a")
	tn.AddInput("b")
	tn.AddInput("c")
	gates := []*core.Gate{
		{Name: "g1", Inputs: []string{"a", "b", "c"}, Weights: []int{2, -1, -1}, T: 1},
		{Name: "f", Inputs: []string{"g1", "c"}, Weights: []int{1, 1}, T: 1},
	}
	for _, g := range gates {
		if err := tn.AddGate(g); err != nil {
			t.Fatal(err)
		}
	}
	tn.MarkOutput("f")
	return tn
}

func TestMapStructure(t *testing.T) {
	nl, err := Map(sampleNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Mobiles) != 2 {
		t.Fatalf("mobiles = %d, want 2", len(nl.Mobiles))
	}
	g1 := nl.Mobiles[0]
	if g1.Name != "g1" || len(g1.Branches) != 3 {
		t.Fatalf("g1 mobile wrong: %+v", g1)
	}
	// The two negative weights become falling branches of unit peak.
	falls := 0
	for _, b := range g1.Branches {
		if b.Falling {
			falls++
			if b.Weight != 1 {
				t.Fatalf("falling branch weight = %d, want 1", b.Weight)
			}
		}
	}
	if falls != 2 {
		t.Fatalf("falling branches = %d, want 2", falls)
	}
	if g1.DriverPeak != 1 {
		t.Fatalf("driver peak = %d, want |T| = 1", g1.DriverPeak)
	}
}

func TestAreaMatchesEq14(t *testing.T) {
	tn := sampleNetwork(t)
	nl, err := Map(tn)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := nl.Stats().Area, tn.Area(); got != want {
		t.Fatalf("mapped area = %d, network Eq.14 area = %d", got, want)
	}
}

func TestDeviceCounts(t *testing.T) {
	nl, err := Map(sampleNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	s := nl.Stats()
	// g1: 3 branches + 2 = 5 RTDs, 3 HFETs; f: 2 branches + 2 = 4 RTDs, 2 HFETs.
	if s.RTDs != 9 || s.HFETs != 5 {
		t.Fatalf("devices = %d RTDs / %d HFETs, want 9/5", s.RTDs, s.HFETs)
	}
	if s.Mobiles != 2 {
		t.Fatalf("mobiles = %d", s.Mobiles)
	}
}

func TestZeroWeightSkipped(t *testing.T) {
	tn := core.NewNetwork("z")
	tn.AddInput("a")
	tn.AddInput("b")
	if err := tn.AddGate(&core.Gate{
		Name: "f", Inputs: []string{"a", "b"}, Weights: []int{1, 0}, T: 1,
	}); err != nil {
		t.Fatal(err)
	}
	tn.MarkOutput("f")
	nl, err := Map(tn)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Mobiles[0].Branches) != 1 {
		t.Fatalf("zero-weight input not skipped: %+v", nl.Mobiles[0])
	}
}

func TestWriteNetlist(t *testing.T) {
	nl, err := Map(sampleNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	text, err := nl.WriteString()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"MOBILE netlist demo",
		"mobile_g1",
		"rtd_peak=2",
		"side=fall",
		"driver_peak=1",
		".end",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("netlist missing %q:\n%s", want, text)
		}
	}
}

func TestMapSynthesizedBenchmark(t *testing.T) {
	src := mcnc.Build("cm152a")
	tn, _, err := core.Synthesize(opt.Algebraic(src), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Map(tn)
	if err != nil {
		t.Fatal(err)
	}
	s := nl.Stats()
	if s.Mobiles != tn.GateCount() {
		t.Fatalf("mobiles %d != gates %d", s.Mobiles, tn.GateCount())
	}
	if s.Area != tn.Area() {
		t.Fatalf("area %d != Eq.14 area %d", s.Area, tn.Area())
	}
	if s.RTDs <= s.Mobiles || s.HFETs == 0 {
		t.Fatalf("implausible device counts: %+v", s)
	}
}

// TestNegativeThresholdDriver: a gate with T < 0 (an LTG that fires even
// with no active inputs, e.g. NOR via negative weights) still maps to a
// physical |T| driver RTD and the Eq. 14 area stays consistent.
func TestNegativeThresholdDriver(t *testing.T) {
	tn := core.NewNetwork("nor")
	tn.AddInput("a")
	tn.AddInput("b")
	if err := tn.AddGate(&core.Gate{
		Name: "f", Inputs: []string{"a", "b"}, Weights: []int{-1, -1}, T: 0,
	}); err != nil {
		t.Fatal(err)
	}
	tn.MarkOutput("f")
	nl, err := Map(tn)
	if err != nil {
		t.Fatal(err)
	}
	m := nl.Mobiles[0]
	for _, b := range m.Branches {
		if !b.Falling || b.Weight != 1 {
			t.Fatalf("negative weight mapped wrong: %+v", b)
		}
	}
	if m.DriverPeak != 0 {
		t.Fatalf("driver peak = %d, want |T| = 0", m.DriverPeak)
	}
	if got, want := nl.Stats().Area, tn.Area(); got != want {
		t.Fatalf("mapped area = %d, Eq.14 area = %d", got, want)
	}

	neg := core.NewNetwork("negT")
	neg.AddInput("a")
	if err := neg.AddGate(&core.Gate{
		Name: "f", Inputs: []string{"a"}, Weights: []int{-2}, T: -1,
	}); err != nil {
		t.Fatal(err)
	}
	neg.MarkOutput("f")
	nl, err = Map(neg)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Mobiles[0].DriverPeak != 1 {
		t.Fatalf("driver peak = %d, want |T| = 1", nl.Mobiles[0].DriverPeak)
	}
	if got, want := nl.Stats().Area, neg.Area(); got != want {
		t.Fatalf("mapped area = %d, Eq.14 area = %d", got, want)
	}
}

// TestMapInvertedInputsOneToOne: a source network using inverted literals
// synthesizes (one-to-one) into LTGs with negative input weights, and the
// MOBILE mapping keeps each such input on a falling RTD branch.
func TestMapInvertedInputsOneToOne(t *testing.T) {
	nw := network.New("inv")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	// f = a'·b + a·b' (XOR via inverted literals; decomposes to gates
	// whose covers carry Neg phases).
	f := nw.AddNode("f", []*network.Node{a, b}, logic.MustCover("01", "10"))
	nw.MarkOutput(f)
	o := core.DefaultOptions()
	tn, err := core.OneToOne(nw, o)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Map(tn)
	if err != nil {
		t.Fatal(err)
	}
	falling, total := 0, 0
	for gi, g := range tn.Gates {
		m := nl.Mobiles[gi]
		bi := 0
		for i, w := range g.Weights {
			if w == 0 {
				continue
			}
			br := m.Branches[bi]
			bi++
			total++
			if br.Input != g.Inputs[i] {
				t.Fatalf("gate %s branch %d input %q, want %q", g.Name, bi, br.Input, g.Inputs[i])
			}
			if br.Falling != (w < 0) || br.Weight != abs(w) {
				t.Fatalf("gate %s weight %d mapped to %+v", g.Name, w, br)
			}
			if br.Falling {
				falling++
			}
		}
	}
	if falling == 0 {
		t.Fatalf("XOR one-to-one mapping produced no inverted (falling) branches across %d branches", total)
	}
	if got, want := nl.Stats().Area, tn.Area(); got != want {
		t.Fatalf("mapped area = %d, Eq.14 area = %d", got, want)
	}
}

// TestMapRejectsCycle: the mapper surfaces topological-order errors.
func TestMapRejectsCycle(t *testing.T) {
	tn := core.NewNetwork("loop")
	tn.AddInput("a")
	if err := tn.AddGate(&core.Gate{
		Name: "g1", Inputs: []string{"g2", "a"}, Weights: []int{1, 1}, T: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := tn.AddGate(&core.Gate{
		Name: "g2", Inputs: []string{"g1"}, Weights: []int{1}, T: 1,
	}); err != nil {
		t.Fatal(err)
	}
	tn.MarkOutput("g2")
	if _, err := Map(tn); err == nil {
		t.Fatal("cyclic network mapped without error")
	}
}
