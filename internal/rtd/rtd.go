// Package rtd maps synthesized threshold networks onto the paper's target
// nanotechnology: monostable-bistable transition logic elements (MOBILEs)
// built from resonant tunneling diodes and HFETs (§II-A, Fig. 1). Each
// LTG becomes a MOBILE with one driver/load RTD pair and one RTD–HFET
// branch per input; a positive weight contributes to the rising branch
// set, a negative weight to the falling set, and the RTD peak currents
// are proportional to |w|. The package reports device counts and the
// Eq. 14 RTD area, and serializes a SPICE-like structural netlist.
package rtd

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"tels/internal/core"
)

// Branch is one input branch of a MOBILE: an RTD in series with an HFET
// gated by the input signal.
type Branch struct {
	Input   string
	Weight  int  // |w| relative RTD peak current (area)
	Falling bool // true when the weight is negative (output-pulling branch)
}

// Mobile is one monostable-bistable logic element implementing an LTG.
type Mobile struct {
	Name     string
	Branches []Branch
	// DriverPeak and LoadPeak are the relative peak currents of the
	// clocked driver/load RTD pair realizing the threshold T.
	DriverPeak int
	LoadPeak   int
	Output     string
}

// DeviceCount returns the RTD and HFET counts of the element: one RTD per
// branch plus the driver/load pair, one HFET per branch.
func (m *Mobile) DeviceCount() (rtds, hfets int) {
	return len(m.Branches) + 2, len(m.Branches)
}

// Area returns the element's RTD area in units of a weight-1 RTD,
// matching Eq. 14: Σ|wᵢ| + |T| (the HFET area is ignored, as in the
// paper).
func (m *Mobile) Area() int {
	a := m.DriverPeak
	for _, b := range m.Branches {
		a += b.Weight
	}
	return a
}

// Netlist is a threshold network mapped to MOBILE elements.
type Netlist struct {
	Name    string
	Inputs  []string
	Outputs []string
	Mobiles []*Mobile
}

// Map converts the threshold network into a MOBILE netlist.
func Map(tn *core.Network) (*Netlist, error) {
	order, err := tn.TopoGates()
	if err != nil {
		return nil, err
	}
	nl := &Netlist{
		Name:    tn.Name,
		Inputs:  append([]string(nil), tn.Inputs...),
		Outputs: append([]string(nil), tn.Outputs...),
	}
	for _, g := range order {
		m := &Mobile{Name: g.Name, Output: g.Name}
		for i, in := range g.Inputs {
			w := g.Weights[i]
			if w == 0 {
				continue // a zero weight contributes no branch
			}
			b := Branch{Input: in, Weight: abs(w), Falling: w < 0}
			m.Branches = append(m.Branches, b)
		}
		// The driver RTD realizes |T| units of peak current; its sign
		// selects which side of the bistable pair it biases.
		m.DriverPeak = abs(g.T)
		m.LoadPeak = 1
		nl.Mobiles = append(nl.Mobiles, m)
	}
	return nl, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Stats summarizes the physical mapping.
type Stats struct {
	Mobiles int
	RTDs    int
	HFETs   int
	Area    int // Eq. 14 units
}

// Stats computes device counts and area for the netlist.
func (nl *Netlist) Stats() Stats {
	s := Stats{Mobiles: len(nl.Mobiles)}
	for _, m := range nl.Mobiles {
		r, h := m.DeviceCount()
		s.RTDs += r
		s.HFETs += h
		s.Area += m.Area()
	}
	return s
}

// Write serializes the netlist in a SPICE-like structural form: one
// X-element per MOBILE with RTD peak-current parameters.
func (nl *Netlist) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "* MOBILE netlist %s (RTD/HFET threshold logic)\n", nl.Name)
	fmt.Fprintf(bw, "* inputs: %s\n", strings.Join(nl.Inputs, " "))
	fmt.Fprintf(bw, "* outputs: %s\n", strings.Join(nl.Outputs, " "))
	for _, m := range nl.Mobiles {
		fmt.Fprintf(bw, ".subckt_use mobile_%s out=%s clk=clk", m.Name, m.Output)
		fmt.Fprintf(bw, " driver_peak=%d load_peak=%d\n", m.DriverPeak, m.LoadPeak)
		for i, b := range m.Branches {
			side := "rise"
			if b.Falling {
				side = "fall"
			}
			fmt.Fprintf(bw, "+  branch%d in=%s rtd_peak=%d side=%s\n", i, b.Input, b.Weight, side)
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// WriteString renders the netlist to a string.
func (nl *Netlist) WriteString() (string, error) {
	var sb strings.Builder
	if err := nl.Write(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}
