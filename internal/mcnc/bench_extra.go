package mcnc

import (
	"fmt"

	"tels/internal/logic"
	"tels/internal/network"
)

// This file registers the second half of the recreated suite: datapath
// converters, encoders and decoders, arithmetic blocks, and a few more
// random-logic circuits, standing in for the remainder of the ~60 MCNC
// benchmarks the paper ran.

// subtract builds x − y (two's complement) returning difference bits and
// the final carry (1 when x ≥ y).
func subtract(b *network.Builder, tag string, x, y []*network.Node) ([]*network.Node, *network.Node) {
	ny := make([]*network.Node, len(y))
	for i := range y {
		ny[i] = b.Not(fmt.Sprintf("%s_n%d", tag, i), y[i])
	}
	one := b.Node(tag+"_one", logic.One(0))
	return rippleAdder(b, tag, x, ny, one)
}

func init() {
	register("rd84", "count the ones of 8 inputs (4-bit result)", func() *network.Network {
		b := network.NewBuilder("rd84")
		for i, o := range onesCount(b, "c", inputs(b, "x", 8)) {
			b.Output(b.OutputAs(nameN("q", i), o))
		}
		return b.Net
	})

	register("bcd7seg", "BCD digit to 7-segment decoder", func() *network.Network {
		b := network.NewBuilder("bcd7seg")
		in := inputs(b, "d", 4)
		// Segment patterns for digits 0-9 (a..g), blank for 10-15.
		segs := [10][7]int{
			{1, 1, 1, 1, 1, 1, 0}, // 0
			{0, 1, 1, 0, 0, 0, 0}, // 1
			{1, 1, 0, 1, 1, 0, 1}, // 2
			{1, 1, 1, 1, 0, 0, 1}, // 3
			{0, 1, 1, 0, 0, 1, 1}, // 4
			{1, 0, 1, 1, 0, 1, 1}, // 5
			{1, 0, 1, 1, 1, 1, 1}, // 6
			{1, 1, 1, 0, 0, 0, 0}, // 7
			{1, 1, 1, 1, 1, 1, 1}, // 8
			{1, 1, 1, 1, 0, 1, 1}, // 9
		}
		for s := 0; s < 7; s++ {
			cover := logic.NewCover(4)
			for digit := 0; digit < 10; digit++ {
				if segs[digit][s] == 0 {
					continue
				}
				cube := logic.NewCube(4)
				for i := 0; i < 4; i++ {
					if digit&(1<<uint(i)) != 0 {
						cube[i] = logic.Pos
					} else {
						cube[i] = logic.Neg
					}
				}
				cover.AddCube(cube)
			}
			seg := b.Node(fmt.Sprintf("seg_%c", 'a'+s), cover, in...)
			b.Output(seg)
		}
		return b.Net
	})

	register("gray2bin8", "8-bit Gray-code to binary converter", func() *network.Network {
		b := network.NewBuilder("gray2bin8")
		g := inputs(b, "g", 8)
		// b_i = g_i ^ g_{i+1} ^ ... ^ g_7 (MSB passes through).
		acc := g[7]
		outs := make([]*network.Node, 8)
		outs[7] = b.Buf("b7", acc)
		for i := 6; i >= 0; i-- {
			acc = b.Xor(nameN("b", i), g[i], acc)
			outs[i] = acc
		}
		for i := 0; i < 8; i++ {
			b.Output(outs[i])
		}
		return b.Net
	})

	register("bin2gray8", "8-bit binary to Gray-code converter", func() *network.Network {
		b := network.NewBuilder("bin2gray8")
		x := inputs(b, "b", 8)
		for i := 0; i < 7; i++ {
			b.Output(b.Xor(nameN("g", i), x[i], x[i+1]))
		}
		b.Output(b.Buf("g7", x[7]))
		return b.Net
	})

	register("priority8", "8-input priority encoder (index of highest set bit + valid)", func() *network.Network {
		b := network.NewBuilder("priority8")
		x := inputs(b, "x", 8)
		// sel_i = x_i AND none of x_{i+1..7}.
		sel := make([]*network.Node, 8)
		var noneAbove *network.Node
		for i := 7; i >= 0; i-- {
			if noneAbove == nil {
				sel[i] = b.Buf(nameN("s", i), x[i])
				noneAbove = b.Not(nameN("na", i), x[i])
			} else {
				sel[i] = b.And(nameN("s", i), x[i], noneAbove)
				if i > 0 {
					noneAbove = b.And(nameN("na", i), noneAbove, b.Not(nameN("nx", i), x[i]))
				}
			}
		}
		for bitPos := 0; bitPos < 3; bitPos++ {
			var terms []*network.Node
			for i := 0; i < 8; i++ {
				if i&(1<<uint(bitPos)) != 0 {
					terms = append(terms, sel[i])
				}
			}
			b.Output(b.Or(nameN("q", bitPos), terms...))
		}
		b.Output(b.OutputAs("valid", b.Or("anyx", x...)))
		return b.Net
	})

	register("barrel8", "8-bit barrel rotator (3-bit amount)", func() *network.Network {
		b := network.NewBuilder("barrel8")
		x := inputs(b, "x", 8)
		s := inputs(b, "s", 3)
		level := x
		for stage := 0; stage < 3; stage++ {
			shift := 1 << uint(stage)
			next := make([]*network.Node, 8)
			for i := 0; i < 8; i++ {
				from := (i + shift) % 8
				next[i] = b.Mux2(fmt.Sprintf("m%d_%d", stage, i), s[stage], level[i], level[from])
			}
			level = next
		}
		for i := 0; i < 8; i++ {
			b.Output(b.OutputAs(nameN("y", i), level[i]))
		}
		return b.Net
	})

	register("hamming74", "Hamming (7,4) encoder", func() *network.Network {
		b := network.NewBuilder("hamming74")
		d := inputs(b, "d", 4)
		p1 := b.Xor("p1", b.Xor("p1a", d[0], d[1]), d[3])
		p2 := b.Xor("p2", b.Xor("p2a", d[0], d[2]), d[3])
		p3 := b.Xor("p3", b.Xor("p3a", d[1], d[2]), d[3])
		for _, o := range []*network.Node{p1, p2, p3} {
			b.Output(o)
		}
		for i := range d {
			b.Output(b.Buf(nameN("c", i), d[i]))
		}
		return b.Net
	})

	register("absdiff4", "|a − b| of two 4-bit numbers plus a>b flag", func() *network.Network {
		b := network.NewBuilder("absdiff4")
		x := inputs(b, "a", 4)
		y := inputs(b, "b", 4)
		ab, geAB := subtract(b, "ab", x, y) // a-b, carry=1 iff a>=b
		ba, _ := subtract(b, "ba", y, x)
		for i := 0; i < 4; i++ {
			b.Output(b.Mux2(nameN("m", i), geAB, ba[i], ab[i]))
		}
		// Strictly greater: a>=b and not equal; equality iff a-b == 0.
		nz := b.Or("nz", ab...)
		b.Output(b.And("gt", geAB, nz))
		return b.Net
	})

	register("mult3", "3-bit by 3-bit multiplier", func() *network.Network {
		b := network.NewBuilder("mult3")
		x := inputs(b, "a", 3)
		y := inputs(b, "b", 3)
		cols := make([][]*network.Node, 6)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				cols[i+j] = append(cols[i+j], b.And(fmt.Sprintf("pp%d_%d", i, j), x[i], y[j]))
			}
		}
		serial := 0
		var carries []*network.Node
		for w := 0; w < 6; w++ {
			bits := append(cols[w], carries...)
			carries = nil
			for len(bits) > 2 {
				s, c := fullAdder(b, fmt.Sprintf("fa%d", serial), bits[0], bits[1], bits[2])
				serial++
				bits = append(bits[3:], s)
				carries = append(carries, c)
			}
			if len(bits) == 2 {
				s := b.Xor(fmt.Sprintf("hs%d", serial), bits[0], bits[1])
				c := b.And(fmt.Sprintf("hc%d", serial), bits[0], bits[1])
				serial++
				bits = []*network.Node{s}
				carries = append(carries, c)
			}
			if len(bits) == 0 {
				bits = []*network.Node{b.Node(fmt.Sprintf("z%d", w), logic.Zero(0))}
			}
			b.Output(b.OutputAs(nameN("p", w), bits[0]))
		}
		return b.Net
	})

	register("inc5", "5-bit incrementer", func() *network.Network {
		b := network.NewBuilder("inc5")
		x := inputs(b, "x", 5)
		carry := b.Node("cin1", logic.One(0))
		var cn *network.Node = carry
		for i := 0; i < 5; i++ {
			b.Output(b.Xor(nameN("s", i), x[i], cn))
			if i < 4 {
				cn = b.And(nameN("c", i), x[i], cn)
			} else {
				cn = b.And("cout_c", x[i], cn)
			}
		}
		b.Output(b.OutputAs("cout", cn))
		return b.Net
	})

	register("t481x", "all adjacent input pairs equal (16 in / 1 out)", func() *network.Network {
		b := network.NewBuilder("t481x")
		x := inputs(b, "x", 16)
		var eqs []*network.Node
		for i := 0; i < 8; i++ {
			eqs = append(eqs, b.Xnor(nameN("e", i), x[2*i], x[2*i+1]))
		}
		b.Output(b.And("f", eqs...))
		return b.Net
	})

	register("sao2x", "random two-level control logic (10 in / 4 out)", func() *network.Network {
		return randomLogic("sao2x", 505, 10, 4, 5, 6)
	})
	register("apex7x", "larger random logic (49 in / 37 out)", func() *network.Network {
		return randomLogic("apex7x", 606, 49, 37, 4, 6)
	})
	register("frg1x", "random control logic (28 in / 3 out)", func() *network.Network {
		return randomLogic("frg1x", 707, 28, 3, 6, 7)
	})
	register("vote5", "5-way weighted vote: passes when chair + 2 members or 4 members agree", func() *network.Network {
		b := network.NewBuilder("vote5")
		x := inputs(b, "v", 5) // v0 is the chair
		// weight(v0)=2, others 1, threshold 4: a natural threshold function.
		cover := logic.NewCover(5)
		for m := 0; m < 32; m++ {
			sum := 0
			cube := logic.NewCube(5)
			for i := 0; i < 5; i++ {
				if m&(1<<uint(i)) != 0 {
					cube[i] = logic.Pos
					if i == 0 {
						sum += 2
					} else {
						sum++
					}
				} else {
					cube[i] = logic.Neg
				}
			}
			if sum >= 4 {
				cover.AddCube(cube)
			}
		}
		b.Output(b.Node("pass", cover, x...))
		return b.Net
	})
}
