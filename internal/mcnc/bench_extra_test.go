package mcnc

import (
	"math/rand"
	"testing"
)

func TestRd84Behaviour(t *testing.T) {
	nw := Build("rd84")
	for m := 0; m < 256; m++ {
		in := map[string]bool{}
		ones := 0
		for i := 0; i < 8; i++ {
			v := m&(1<<uint(i)) != 0
			in[nameN("x", i)] = v
			if v {
				ones++
			}
		}
		out := evalInt(t, nw, in)
		got := 0
		for i, v := range out {
			if v {
				got |= 1 << uint(i)
			}
		}
		if got != ones {
			t.Fatalf("rd84(%08b) = %d, want %d", m, got, ones)
		}
	}
}

func TestBcd7segBehaviour(t *testing.T) {
	nw := Build("bcd7seg")
	want := map[int]string{
		0: "1111110", 1: "0110000", 2: "1101101", 3: "1111001", 4: "0110011",
		5: "1011011", 6: "1011111", 7: "1110000", 8: "1111111", 9: "1111011",
	}
	for digit := 0; digit < 16; digit++ {
		in := map[string]bool{}
		for i := 0; i < 4; i++ {
			in[nameN("d", i)] = digit&(1<<uint(i)) != 0
		}
		out := evalInt(t, nw, in)
		got := ""
		for _, v := range out {
			if v {
				got += "1"
			} else {
				got += "0"
			}
		}
		expected, ok := want[digit]
		if !ok {
			expected = "0000000" // blank for non-BCD codes
		}
		if got != expected {
			t.Fatalf("bcd7seg(%d) = %s, want %s", digit, got, expected)
		}
	}
}

func TestGrayConvertersBehaviour(t *testing.T) {
	g2b := Build("gray2bin8")
	b2g := Build("bin2gray8")
	for v := 0; v < 256; v++ {
		gray := v ^ (v >> 1)
		// bin2gray8(v) must equal gray.
		in := map[string]bool{}
		for i := 0; i < 8; i++ {
			in[nameN("b", i)] = v&(1<<uint(i)) != 0
		}
		out := evalInt(t, b2g, in)
		got := 0
		for i, b := range out {
			if b {
				got |= 1 << uint(i)
			}
		}
		if got != gray {
			t.Fatalf("bin2gray8(%d) = %d, want %d", v, got, gray)
		}
		// gray2bin8(gray) must equal v.
		in = map[string]bool{}
		for i := 0; i < 8; i++ {
			in[nameN("g", i)] = gray&(1<<uint(i)) != 0
		}
		out = evalInt(t, g2b, in)
		got = 0
		for i, b := range out {
			if b {
				got |= 1 << uint(i)
			}
		}
		if got != v {
			t.Fatalf("gray2bin8(%d) = %d, want %d", gray, got, v)
		}
	}
}

func TestPriority8Behaviour(t *testing.T) {
	nw := Build("priority8")
	for m := 0; m < 256; m++ {
		in := map[string]bool{}
		for i := 0; i < 8; i++ {
			in[nameN("x", i)] = m&(1<<uint(i)) != 0
		}
		out := evalInt(t, nw, in) // q0 q1 q2 valid
		if m == 0 {
			if out[3] {
				t.Fatal("valid should be 0 for empty input")
			}
			continue
		}
		if !out[3] {
			t.Fatalf("valid should be 1 for %08b", m)
		}
		highest := 0
		for i := 7; i >= 0; i-- {
			if m&(1<<uint(i)) != 0 {
				highest = i
				break
			}
		}
		got := 0
		for i := 0; i < 3; i++ {
			if out[i] {
				got |= 1 << uint(i)
			}
		}
		if got != highest {
			t.Fatalf("priority8(%08b) = %d, want %d", m, got, highest)
		}
	}
}

func TestBarrel8Behaviour(t *testing.T) {
	nw := Build("barrel8")
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 300; iter++ {
		x := rng.Intn(256)
		s := rng.Intn(8)
		in := map[string]bool{}
		for i := 0; i < 8; i++ {
			in[nameN("x", i)] = x&(1<<uint(i)) != 0
		}
		for i := 0; i < 3; i++ {
			in[nameN("s", i)] = s&(1<<uint(i)) != 0
		}
		out := evalInt(t, nw, in)
		got := 0
		for i, v := range out {
			if v {
				got |= 1 << uint(i)
			}
		}
		want := ((x >> uint(s)) | (x << uint(8-s))) & 0xff
		if got != want {
			t.Fatalf("barrel8(%08b, %d) = %08b, want %08b", x, s, got, want)
		}
	}
}

func TestHamming74Behaviour(t *testing.T) {
	nw := Build("hamming74")
	for d := 0; d < 16; d++ {
		in := map[string]bool{}
		bit := func(i int) bool { return d&(1<<uint(i)) != 0 }
		for i := 0; i < 4; i++ {
			in[nameN("d", i)] = bit(i)
		}
		out := evalInt(t, nw, in) // p1 p2 p3 c0..c3
		if out[0] != (bit(0) != bit(1) != bit(3)) {
			t.Fatalf("p1 wrong for %04b", d)
		}
		if out[1] != (bit(0) != bit(2) != bit(3)) {
			t.Fatalf("p2 wrong for %04b", d)
		}
		if out[2] != (bit(1) != bit(2) != bit(3)) {
			t.Fatalf("p3 wrong for %04b", d)
		}
		for i := 0; i < 4; i++ {
			if out[3+i] != bit(i) {
				t.Fatalf("data bit %d wrong for %04b", i, d)
			}
		}
	}
}

func TestAbsdiff4Behaviour(t *testing.T) {
	nw := Build("absdiff4")
	for a := 0; a < 16; a++ {
		for c := 0; c < 16; c++ {
			in := map[string]bool{}
			for i := 0; i < 4; i++ {
				in[nameN("a", i)] = a&(1<<uint(i)) != 0
				in[nameN("b", i)] = c&(1<<uint(i)) != 0
			}
			out := evalInt(t, nw, in)
			got := 0
			for i := 0; i < 4; i++ {
				if out[i] {
					got |= 1 << uint(i)
				}
			}
			want := a - c
			if want < 0 {
				want = -want
			}
			if got != want {
				t.Fatalf("absdiff4(%d,%d) = %d, want %d", a, c, got, want)
			}
			if out[4] != (a > c) {
				t.Fatalf("absdiff4 gt(%d,%d) = %v", a, c, out[4])
			}
		}
	}
}

func TestMult3Behaviour(t *testing.T) {
	nw := Build("mult3")
	for a := 0; a < 8; a++ {
		for c := 0; c < 8; c++ {
			in := map[string]bool{}
			for i := 0; i < 3; i++ {
				in[nameN("a", i)] = a&(1<<uint(i)) != 0
				in[nameN("b", i)] = c&(1<<uint(i)) != 0
			}
			out := evalInt(t, nw, in)
			got := 0
			for i, v := range out {
				if v {
					got |= 1 << uint(i)
				}
			}
			if got != a*c {
				t.Fatalf("mult3(%d,%d) = %d, want %d", a, c, got, a*c)
			}
		}
	}
}

func TestInc5Behaviour(t *testing.T) {
	nw := Build("inc5")
	for x := 0; x < 32; x++ {
		in := map[string]bool{}
		for i := 0; i < 5; i++ {
			in[nameN("x", i)] = x&(1<<uint(i)) != 0
		}
		out := evalInt(t, nw, in)
		got := 0
		for i := 0; i < 5; i++ {
			if out[i] {
				got |= 1 << uint(i)
			}
		}
		if out[5] {
			got |= 32
		}
		if got != x+1 {
			t.Fatalf("inc5(%d) = %d, want %d", x, got, x+1)
		}
	}
}

func TestT481xBehaviour(t *testing.T) {
	nw := Build("t481x")
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 300; iter++ {
		m := rng.Intn(1 << 16)
		in := map[string]bool{}
		for i := 0; i < 16; i++ {
			in[nameN("x", i)] = m&(1<<uint(i)) != 0
		}
		want := true
		for i := 0; i < 8; i++ {
			a := m&(1<<uint(2*i)) != 0
			c := m&(1<<uint(2*i+1)) != 0
			if a != c {
				want = false
				break
			}
		}
		out := evalInt(t, nw, in)
		if out[0] != want {
			t.Fatalf("t481x(%016b) = %v, want %v", m, out[0], want)
		}
	}
}

func TestVote5Behaviour(t *testing.T) {
	nw := Build("vote5")
	for m := 0; m < 32; m++ {
		in := map[string]bool{}
		sum := 0
		for i := 0; i < 5; i++ {
			v := m&(1<<uint(i)) != 0
			in[nameN("v", i)] = v
			if v {
				if i == 0 {
					sum += 2
				} else {
					sum++
				}
			}
		}
		out := evalInt(t, nw, in)
		if out[0] != (sum >= 4) {
			t.Fatalf("vote5(%05b) = %v, want %v", m, out[0], sum >= 4)
		}
	}
}

// Every newly registered benchmark must synthesize and prove equivalent;
// covered globally by TestAllBenchmarksValidate plus the synthesis suite,
// but run the smallest ones through the full flow here for fast feedback.
func TestExtraBenchmarksCount(t *testing.T) {
	if len(Names()) < 40 {
		t.Fatalf("registry has %d benchmarks, want ≥ 40", len(Names()))
	}
}
