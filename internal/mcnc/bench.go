package mcnc

import (
	"fmt"
	"sort"

	"tels/internal/logic"
	"tels/internal/netcore"
	"tels/internal/network"
)

// Benchmark is one recreated circuit.
type Benchmark struct {
	Name        string
	Description string
	Build       func() *network.Network
}

// registry holds all recreated benchmarks by name.
var registry = map[string]Benchmark{}

func register(name, desc string, build func() *network.Network) {
	registry[name] = Benchmark{Name: name, Description: desc, Build: build}
}

// Get returns the named benchmark.
func Get(name string) (Benchmark, bool) {
	b, ok := registry[name]
	return b, ok
}

// Names returns all benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns all benchmarks sorted by name.
func All() []Benchmark {
	names := Names()
	out := make([]Benchmark, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// TableISet returns the ten benchmarks of the paper's Table I, in the
// paper's row order.
func TableISet() []string {
	return []string{"cm152a", "cordic", "cm85a", "comp", "cmb", "term1", "pm1", "x1", "i10", "tcon"}
}

// Build constructs the named benchmark network or panics; convenience for
// tests and the experiment drivers.
func Build(name string) *network.Network {
	b, ok := Get(name)
	if !ok {
		panic(fmt.Sprintf("mcnc: unknown benchmark %q", name))
	}
	return b.Build()
}

// BuildCore constructs the named benchmark in the arena-backed
// representation: the generator DSL emits the pointer network and the
// result is interned into a netcore arena (structurally hashing every
// cover) at this boundary.
func BuildCore(name string) *netcore.Network {
	return netcore.FromNetwork(Build(name))
}

func init() {
	// ---- The Table I set -------------------------------------------------

	register("cm152a", "8:1 multiplexer (11 in / 1 out, matching the MCNC profile)", func() *network.Network {
		b := network.NewBuilder("cm152a")
		data := inputs(b, "a", 8)
		sel := inputs(b, "s", 3)
		b.Output(mux(b, "m", sel, data))
		return b.Net
	})

	register("cordic", "two-stage CORDIC-style conditional add/sub with sign outputs (23 in / 2 out)", func() *network.Network {
		b := network.NewBuilder("cordic")
		x := inputs(b, "x", 10)
		y := inputs(b, "y", 10)
		m := inputs(b, "m", 3)
		// Stage 1: t = m0 ? x+y : x-y  (two's complement subtract via xor).
		yx := make([]*network.Node, len(y))
		for i := range y {
			yx[i] = b.Xnor(nameN("yx", i), y[i], m[0]) // m0=1 -> y, m0=0 -> !y
		}
		carry := b.Not("cin", m[0]) // +1 when subtracting
		sums, cout := rippleAdder(b, "st1", x, yx, carry)
		// Stage 2: rotate direction from the stage-1 sign; combine with the
		// remaining mode bits.
		sign := sums[len(sums)-1]
		d := b.Xor("dir", sign, m[1])
		s2 := b.Mux2("sel2", m[2], d, cout)
		b.Output(b.OutputAs("sgn", sign))
		b.Output(b.OutputAs("rot", s2))
		return b.Net
	})

	register("cm85a", "4-bit comparator with enable (9 in / 3 out)", func() *network.Network {
		b := network.NewBuilder("cm85a")
		x := inputs(b, "a", 4)
		y := inputs(b, "b", 4)
		en := b.Input("en")
		eq, gt, lt := comparator(b, "c", x, y)
		b.Output(b.And("oeq", eq, en))
		b.Output(b.And("ogt", gt, en))
		b.Output(b.And("olt", lt, en))
		return b.Net
	})

	register("comp", "16-bit magnitude comparator (32 in / 3 out, matching the MCNC profile)", func() *network.Network {
		b := network.NewBuilder("comp")
		x := inputs(b, "a", 16)
		y := inputs(b, "b", 16)
		eq, gt, lt := comparator(b, "c", x, y)
		b.Output(b.OutputAs("oeq", eq))
		b.Output(b.OutputAs("ogt", gt))
		b.Output(b.OutputAs("olt", lt))
		return b.Net
	})

	register("cmb", "address match + parity combinational block (16 in / 4 out)", func() *network.Network {
		b := network.NewBuilder("cmb")
		a := inputs(b, "a", 8)
		c := inputs(b, "c", 8)
		eq, gt, _ := comparator(b, "m", a, c)
		par := parityTree(b, "p", a)
		anyHigh := b.Or("any", append([]*network.Node{}, c...)...)
		b.Output(b.OutputAs("match", eq))
		b.Output(b.OutputAs("above", gt))
		b.Output(b.OutputAs("par", par))
		b.Output(b.OutputAs("nz", anyHigh))
		return b.Net
	})

	register("term1", "terminal controller: address match gating a data byte plus status (34 in / 10 out)", func() *network.Network {
		b := network.NewBuilder("term1")
		d := inputs(b, "d", 16)
		a := inputs(b, "a", 8)
		c := inputs(b, "c", 8)
		s := inputs(b, "s", 2)
		eq, gt, _ := comparator(b, "m", a, c)
		// Select a data byte with s0 and gate it with the address match.
		for i := 0; i < 8; i++ {
			byteSel := b.Mux2(nameN("bs", i), s[0], d[i], d[8+i])
			b.Output(b.And(nameN("q", i), byteSel, eq))
		}
		par := parityTree(b, "p", d[:8])
		b.Output(b.OutputAs("par", b.Xor("parx", par, s[1])))
		b.Output(b.OutputAs("abv", gt))
		return b.Net
	})

	register("pm1", "decoder plus parity random-logic block (16 in / 13 out)", func() *network.Network {
		b := network.NewBuilder("pm1")
		s := inputs(b, "s", 3)
		en := b.Input("en")
		d := inputs(b, "d", 8)
		p := inputs(b, "p", 4)
		for i, o := range decoder(b, "dec", s, en) {
			b.Output(b.OutputAs(nameN("z", i), o))
		}
		b.Output(b.OutputAs("par", parityTree(b, "pp", p)))
		b.Output(b.And("g0", d[0], d[1]))
		b.Output(b.Or("g1", d[2], d[3], d[4]))
		b.Output(b.Node("g2", logic.MustCover("10-", "0-1"), d[5], d[6], d[7]))
		b.Output(b.Xor("g3", d[0], d[7]))
		return b.Net
	})

	register("x1", "multi-output random logic (51 in / 35 out)", func() *network.Network {
		return randomLogic("x1", 101, 51, 35, 5, 7)
	})

	register("i10", "array of 32 conditional add/compare slices (257 in / 224 out)", func() *network.Network {
		b := network.NewBuilder("i10")
		ctrl := b.Input("ctl")
		for s := 0; s < 32; s++ {
			x := inputs(b, fmt.Sprintf("x%d_", s), 4)
			y := inputs(b, fmt.Sprintf("y%d_", s), 4)
			tag := fmt.Sprintf("sl%d", s)
			// Conditional subtract: y XOR ctl, carry-in ctl.
			yx := make([]*network.Node, 4)
			for i := range yx {
				yx[i] = b.Xor(fmt.Sprintf("%s_yx%d", tag, i), y[i], ctrl)
			}
			sums, cout := rippleAdder(b, tag+"_add", x, yx, ctrl)
			eq, gt, _ := comparator(b, tag+"_cmp", x, y)
			for i, sm := range sums {
				b.Output(b.OutputAs(fmt.Sprintf("s%d_%d", s, i), sm))
			}
			b.Output(b.OutputAs(fmt.Sprintf("co%d", s), cout))
			b.Output(b.OutputAs(fmt.Sprintf("eq%d", s), eq))
			b.Output(b.OutputAs(fmt.Sprintf("gt%d", s), gt))
		}
		return b.Net
	})

	register("tcon", "wires, inverters and xor pairs (17 in / 16 out)", func() *network.Network {
		b := network.NewBuilder("tcon")
		a := inputs(b, "a", 8)
		c := inputs(b, "c", 8)
		k := b.Input("k")
		for i := 0; i < 8; i++ {
			b.Output(b.Xor(nameN("u", i), a[i], c[i]))
		}
		for i := 0; i < 4; i++ {
			b.Output(b.Not(nameN("v", i), c[i]))
		}
		for i := 4; i < 7; i++ {
			b.Output(b.Buf(nameN("v", i), c[i]))
		}
		b.Output(b.Not("v7", k))
		return b.Net
	})

	// ---- Additional classic circuits (rest of the suite) -----------------

	register("mux4", "4:1 multiplexer", func() *network.Network {
		b := network.NewBuilder("mux4")
		data := inputs(b, "a", 4)
		sel := inputs(b, "s", 2)
		b.Output(mux(b, "m", sel, data))
		return b.Net
	})
	register("mux16", "16:1 multiplexer", func() *network.Network {
		b := network.NewBuilder("mux16")
		data := inputs(b, "a", 16)
		sel := inputs(b, "s", 4)
		b.Output(mux(b, "m", sel, data))
		return b.Net
	})
	register("comp4", "4-bit magnitude comparator", func() *network.Network {
		b := network.NewBuilder("comp4")
		x := inputs(b, "a", 4)
		y := inputs(b, "b", 4)
		eq, gt, lt := comparator(b, "c", x, y)
		b.Output(b.OutputAs("oeq", eq))
		b.Output(b.OutputAs("ogt", gt))
		b.Output(b.OutputAs("olt", lt))
		return b.Net
	})
	register("comp8", "8-bit magnitude comparator", func() *network.Network {
		b := network.NewBuilder("comp8")
		x := inputs(b, "a", 8)
		y := inputs(b, "b", 8)
		eq, gt, lt := comparator(b, "c", x, y)
		b.Output(b.OutputAs("oeq", eq))
		b.Output(b.OutputAs("ogt", gt))
		b.Output(b.OutputAs("olt", lt))
		return b.Net
	})
	register("adder4", "4-bit ripple-carry adder", func() *network.Network {
		b := network.NewBuilder("adder4")
		x := inputs(b, "a", 4)
		y := inputs(b, "b", 4)
		cin := b.Input("ci")
		sums, cout := rippleAdder(b, "add", x, y, cin)
		for i, s := range sums {
			b.Output(b.OutputAs(nameN("s", i), s))
		}
		b.Output(b.OutputAs("co", cout))
		return b.Net
	})
	register("adder8", "8-bit ripple-carry adder", func() *network.Network {
		b := network.NewBuilder("adder8")
		x := inputs(b, "a", 8)
		y := inputs(b, "b", 8)
		cin := b.Input("ci")
		sums, cout := rippleAdder(b, "add", x, y, cin)
		for i, s := range sums {
			b.Output(b.OutputAs(nameN("s", i), s))
		}
		b.Output(b.OutputAs("co", cout))
		return b.Net
	})
	register("parity8", "8-input odd parity", func() *network.Network {
		b := network.NewBuilder("parity8")
		b.Output(b.OutputAs("p", parityTree(b, "t", inputs(b, "x", 8))))
		return b.Net
	})
	register("parity16", "16-input odd parity", func() *network.Network {
		b := network.NewBuilder("parity16")
		b.Output(b.OutputAs("p", parityTree(b, "t", inputs(b, "x", 16))))
		return b.Net
	})
	register("maj5", "5-input majority as a flat SOP", func() *network.Network {
		return majorityNet("maj5", 5)
	})
	register("maj7", "7-input majority as a flat SOP", func() *network.Network {
		return majorityNet("maj7", 7)
	})
	register("dec4", "4:16 decoder with enable", func() *network.Network {
		b := network.NewBuilder("dec4")
		sel := inputs(b, "s", 4)
		en := b.Input("en")
		for i, o := range decoder(b, "d", sel, en) {
			b.Output(b.OutputAs(nameN("z", i), o))
		}
		return b.Net
	})
	register("rd53", "count the ones of 5 inputs (3-bit result)", func() *network.Network {
		b := network.NewBuilder("rd53")
		cnt := onesCount(b, "c", inputs(b, "x", 5))
		for i, o := range cnt {
			b.Output(b.OutputAs(nameN("q", i), o))
		}
		return b.Net
	})
	register("rd73", "count the ones of 7 inputs (3-bit result)", func() *network.Network {
		b := network.NewBuilder("rd73")
		cnt := onesCount(b, "c", inputs(b, "x", 7))
		for i, o := range cnt {
			b.Output(b.OutputAs(nameN("q", i), o))
		}
		return b.Net
	})
	register("9sym", "symmetric: 1 iff between 3 and 6 of 9 inputs are high", func() *network.Network {
		b := network.NewBuilder("9sym")
		cnt := onesCount(b, "c", inputs(b, "x", 9))
		// count in [3,6]: c3..c6 of a 4-bit count (0..9).
		// q = (count >= 3) AND (count <= 6).
		ge3 := b.Or("ge3",
			b.And("c4or8", cnt[2]), // weight-4 bit set -> >= 4
			b.And("c3", cnt[0], cnt[1]),
			cnt[3], // weight-8 bit -> >= 8
		)
		// count <= 6 ⟺ not(count >= 7) ⟺ !c3 ∧ !(c2 c1 c0).
		le6 := b.And("le6", b.Nand("le6a", cnt[0], cnt[1], cnt[2]), b.Not("n8", cnt[3]))
		b.Output(b.And("f", ge3, le6))
		return b.Net
	})
	register("z4ml", "2-bit x 2-bit multiply plus 2-bit add (mod 16)", func() *network.Network {
		b := network.NewBuilder("z4ml")
		a := inputs(b, "a", 2)
		c := inputs(b, "c", 2)
		e := inputs(b, "e", 2)
		// product p = a*c (4 bits).
		p0 := b.And("p0", a[0], c[0])
		m01 := b.And("m01", a[0], c[1])
		m10 := b.And("m10", a[1], c[0])
		m11 := b.And("m11", a[1], c[1])
		p1 := b.Xor("p1", m01, m10)
		g1 := b.And("g1", m01, m10)
		p2 := b.Xor("p2", m11, g1)
		p3 := b.And("p3", m11, g1)
		// sum = p + e.
		sums, cout := rippleAdder(b, "s", []*network.Node{p0, p1, p2, p3},
			[]*network.Node{e[0], e[1], zero(b, "z0"), zero(b, "z1")}, nil)
		for i, s := range sums {
			b.Output(b.OutputAs(nameN("q", i), s))
		}
		b.Output(b.OutputAs("qc", cout))
		return b.Net
	})
	register("con1", "two small control functions (7 in / 2 out)", func() *network.Network {
		b := network.NewBuilder("con1")
		x := inputs(b, "x", 7)
		f1 := b.Node("f1", logic.MustCover("1-1----", "-11----", "0-0-1--"), x[0], x[1], x[2], x[3], x[4], x[5], x[6])
		f2 := b.Node("f2", logic.MustCover("---11--", "1----11", "-0--0--"), x[0], x[1], x[2], x[3], x[4], x[5], x[6])
		b.Output(f1)
		b.Output(f2)
		return b.Net
	})
	register("xor5", "5-input parity as a flat SOP node", func() *network.Network {
		b := network.NewBuilder("xor5")
		x := inputs(b, "x", 5)
		cover := logic.NewCover(5)
		for m := 0; m < 32; m++ {
			ones := 0
			cube := logic.NewCube(5)
			for i := 0; i < 5; i++ {
				if m&(1<<uint(i)) != 0 {
					ones++
					cube[i] = logic.Pos
				} else {
					cube[i] = logic.Neg
				}
			}
			if ones%2 == 1 {
				cover.AddCube(cube)
			}
		}
		b.Output(b.Node("f", cover, x...))
		return b.Net
	})
	register("misex1", "random control logic (8 in / 7 out)", func() *network.Network {
		return randomLogic("misex1", 202, 8, 7, 4, 6)
	})
	register("b12", "random control logic (15 in / 9 out)", func() *network.Network {
		return randomLogic("b12", 303, 15, 9, 5, 6)
	})
	register("alu2s", "ALU slice: add/and/or/xor selected by 2 bits", func() *network.Network {
		b := network.NewBuilder("alu2s")
		x := inputs(b, "a", 4)
		y := inputs(b, "b", 4)
		s := inputs(b, "s", 2)
		cin := b.Input("ci")
		sums, cout := rippleAdder(b, "add", x, y, cin)
		for i := 0; i < 4; i++ {
			andB := b.And(nameN("nA", i), x[i], y[i])
			orB := b.Or(nameN("nO", i), x[i], y[i])
			xorB := b.Xor(nameN("nX", i), x[i], y[i])
			lo := b.Mux2(nameN("lo", i), s[0], andB, orB)
			hi := b.Mux2(nameN("hi", i), s[0], xorB, sums[i])
			b.Output(b.Mux2(nameN("q", i), s[1], lo, hi))
		}
		b.Output(b.And("qc", cout, s[1]))
		return b.Net
	})
	register("squar5", "low 6 bits of the square of a 5-bit input", func() *network.Network {
		b := network.NewBuilder("squar5")
		x := inputs(b, "x", 5)
		// Build via partial products p_ij = x_i x_j summed with shifts.
		cols := make([][]*network.Node, 10)
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				p := b.And(fmt.Sprintf("pp%d_%d", i, j), x[i], x[j])
				cols[i+j] = append(cols[i+j], p)
			}
		}
		serial := 0
		outBits := make([]*network.Node, 6)
		var carries []*network.Node
		for w := 0; w < 6; w++ {
			bits := append(cols[w], carries...)
			carries = nil
			for len(bits) > 2 {
				s, c := fullAdder(b, fmt.Sprintf("sq%d", serial), bits[0], bits[1], bits[2])
				serial++
				bits = append(bits[3:], s)
				carries = append(carries, c)
			}
			if len(bits) == 2 {
				s := b.Xor(fmt.Sprintf("sqs%d", serial), bits[0], bits[1])
				c := b.And(fmt.Sprintf("sqc%d", serial), bits[0], bits[1])
				serial++
				bits = []*network.Node{s}
				carries = append(carries, c)
			}
			outBits[w] = bits[0]
		}
		for i, o := range outBits {
			b.Output(b.OutputAs(nameN("q", i), o))
		}
		return b.Net
	})
	register("cm42a", "2:4 decoder pair (paper-family control circuit)", func() *network.Network {
		b := network.NewBuilder("cm42a")
		s := inputs(b, "s", 2)
		t := inputs(b, "t", 2)
		for i, o := range decoder(b, "d0", s, nil) {
			b.Output(b.OutputAs(nameN("y", i), o))
		}
		for i, o := range decoder(b, "d1", t, nil) {
			b.Output(b.OutputAs(nameN("z", i), o))
		}
		return b.Net
	})
	register("cm163a", "random logic with shared subfunctions (16 in / 5 out)", func() *network.Network {
		return randomLogic("cm163a", 404, 16, 5, 4, 6)
	})
	register("majgate", "single 3-input majority node", func() *network.Network {
		return majorityNet("majgate", 3)
	})
}

// majorityNet builds an n-input majority function as one flat SOP node.
func majorityNet(name string, n int) *network.Network {
	b := network.NewBuilder(name)
	x := inputs(b, "x", n)
	cover := logic.NewCover(n)
	// All cubes with exactly ceil(n/2)+... majority: > n/2 ones.
	need := n/2 + 1
	var rec func(start, chosen int, cube logic.Cube)
	rec = func(start, chosen int, cube logic.Cube) {
		if chosen == need {
			cover.AddCube(cube.Clone())
			return
		}
		for i := start; i < n; i++ {
			cube[i] = logic.Pos
			rec(i+1, chosen+1, cube)
			cube[i] = logic.DC
		}
	}
	rec(0, 0, logic.NewCube(n))
	b.Output(b.Node("f", cover, x...))
	return b.Net
}

func zero(b *network.Builder, name string) *network.Node {
	return b.Node(name, logic.Zero(0))
}
