// Package mcnc provides functional recreations of the MCNC benchmark
// circuits the paper evaluates on. The original BLIF files are not
// redistributable, so each named benchmark is rebuilt from its documented
// function and I/O profile (multiplexers, comparators, CORDIC-style
// arithmetic, terminal-controller logic, …); DESIGN.md §3 records each
// substitution. The package also provides a wider set of classic
// combinational functions (parity, symmetric counters, adders, decoders)
// standing in for the rest of the ~60-circuit suite.
package mcnc

import (
	"fmt"
	"math/rand"

	"tels/internal/logic"
	"tels/internal/network"
)

// nameN formats indexed signal names ("a3").
func nameN(prefix string, i int) string { return fmt.Sprintf("%s%d", prefix, i) }

// inputs adds n inputs named prefix0..prefix{n-1}.
func inputs(b *network.Builder, prefix string, n int) []*network.Node {
	out := make([]*network.Node, n)
	for i := range out {
		out[i] = b.Input(nameN(prefix, i))
	}
	return out
}

// fullAdder builds a gate-level full adder and returns (sum, carry).
func fullAdder(b *network.Builder, tag string, x, y, cin *network.Node) (*network.Node, *network.Node) {
	p := b.Xor(tag+"_p", x, y)
	s := b.Xor(tag+"_s", p, cin)
	c := b.Or(tag+"_c", b.And(tag+"_g", x, y), b.And(tag+"_pc", p, cin))
	return s, c
}

// rippleAdder adds two equal-width vectors, returning sums and the carry.
func rippleAdder(b *network.Builder, tag string, x, y []*network.Node, cin *network.Node) ([]*network.Node, *network.Node) {
	sums := make([]*network.Node, len(x))
	carry := cin
	for i := range x {
		if carry == nil {
			// Half adder for the first bit.
			sums[i] = b.Xor(fmt.Sprintf("%s_s%d", tag, i), x[i], y[i])
			carry = b.And(fmt.Sprintf("%s_c%d", tag, i), x[i], y[i])
			continue
		}
		sums[i], carry = fullAdder(b, fmt.Sprintf("%s_fa%d", tag, i), x[i], y[i], carry)
	}
	return sums, carry
}

// comparator builds an equal/greater comparator over two equal-width
// vectors (LSB first) and returns (eq, gt, lt).
func comparator(b *network.Builder, tag string, x, y []*network.Node) (eq, gt, lt *network.Node) {
	// Bitwise: e_i = XNOR, g_i = x_i !y_i, l_i = !x_i y_i.
	n := len(x)
	eqs := make([]*network.Node, n)
	for i := 0; i < n; i++ {
		eqs[i] = b.Xnor(fmt.Sprintf("%s_e%d", tag, i), x[i], y[i])
	}
	// MSB-first priority chain.
	var gtAcc, ltAcc *network.Node
	var eqPrefix *network.Node // conjunction of eq on bits above the current one
	for i := n - 1; i >= 0; i-- {
		gi := b.Node(fmt.Sprintf("%s_g%d", tag, i), logic.MustCover("10"), x[i], y[i])
		li := b.Node(fmt.Sprintf("%s_l%d", tag, i), logic.MustCover("01"), x[i], y[i])
		if eqPrefix != nil {
			gi = b.And(fmt.Sprintf("%s_gg%d", tag, i), eqPrefix, gi)
			li = b.And(fmt.Sprintf("%s_ll%d", tag, i), eqPrefix, li)
		}
		if gtAcc == nil {
			gtAcc, ltAcc = gi, li
		} else {
			gtAcc = b.Or(fmt.Sprintf("%s_go%d", tag, i), gtAcc, gi)
			ltAcc = b.Or(fmt.Sprintf("%s_lo%d", tag, i), ltAcc, li)
		}
		if eqPrefix == nil {
			eqPrefix = eqs[i]
		} else {
			eqPrefix = b.And(fmt.Sprintf("%s_ep%d", tag, i), eqPrefix, eqs[i])
		}
	}
	return eqPrefix, gtAcc, ltAcc
}

// parityTree xors the signals pairwise into a single parity bit.
func parityTree(b *network.Builder, tag string, sigs []*network.Node) *network.Node {
	level := sigs
	serial := 0
	for len(level) > 1 {
		var next []*network.Node
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.Xor(fmt.Sprintf("%s_x%d", tag, serial), level[i], level[i+1]))
			serial++
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// mux builds a 2^k:1 multiplexer from 2:1 stages.
func mux(b *network.Builder, tag string, sel, data []*network.Node) *network.Node {
	level := data
	for s, sl := range sel {
		var next []*network.Node
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.Mux2(fmt.Sprintf("%s_m%d_%d", tag, s, i/2), sl, level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// decoder builds a full 2^k output decoder with an optional enable.
func decoder(b *network.Builder, tag string, sel []*network.Node, enable *network.Node) []*network.Node {
	k := len(sel)
	outs := make([]*network.Node, 1<<uint(k))
	for m := range outs {
		fanins := append([]*network.Node(nil), sel...)
		cube := logic.NewCube(k)
		for i := 0; i < k; i++ {
			if m&(1<<uint(i)) != 0 {
				cube[i] = logic.Pos
			} else {
				cube[i] = logic.Neg
			}
		}
		if enable != nil {
			fanins = append(fanins, enable)
			cube = append(cube, logic.Pos)
		}
		cv := logic.NewCover(len(fanins))
		cv.AddCube(cube)
		outs[m] = b.Node(fmt.Sprintf("%s_d%d", tag, m), cv, fanins...)
	}
	return outs
}

// onesCount builds a population counter over the signals, returning the
// binary count LSB first, using a full-adder reduction tree.
func onesCount(b *network.Builder, tag string, sigs []*network.Node) []*network.Node {
	// Columns of bits by weight.
	cols := [][]*network.Node{append([]*network.Node(nil), sigs...)}
	serial := 0
	for w := 0; w < len(cols); w++ {
		for len(cols[w]) > 1 {
			if len(cols) == w+1 {
				cols = append(cols, nil)
			}
			if len(cols[w]) >= 3 {
				x, y, z := cols[w][0], cols[w][1], cols[w][2]
				cols[w] = cols[w][3:]
				s, c := fullAdder(b, fmt.Sprintf("%s_fa%d", tag, serial), x, y, z)
				serial++
				cols[w] = append(cols[w], s)
				cols[w+1] = append(cols[w+1], c)
				if len(cols[w]) == 1 {
					break
				}
				continue
			}
			x, y := cols[w][0], cols[w][1]
			cols[w] = cols[w][2:]
			s := b.Xor(fmt.Sprintf("%s_hs%d", tag, serial), x, y)
			c := b.And(fmt.Sprintf("%s_hc%d", tag, serial), x, y)
			serial++
			cols[w] = append(cols[w], s)
			cols[w+1] = append(cols[w+1], c)
		}
	}
	out := make([]*network.Node, len(cols))
	for w, col := range cols {
		if len(col) == 1 {
			out[w] = col[0]
		} else {
			// Empty column: constant 0.
			out[w] = b.Node(fmt.Sprintf("%s_z%d", tag, w), logic.Zero(0))
		}
	}
	return out
}

// randomLogic builds a deterministic multi-output SOP network: each output
// is an OR of a few cubes over a random subset of the inputs. It stands in
// for the unstructured "random logic" MCNC circuits (pm1, x1, …).
func randomLogic(name string, seed int64, nIn, nOut, maxCubes, maxLits int) *network.Network {
	rng := rand.New(rand.NewSource(seed))
	b := network.NewBuilder(name)
	ins := inputs(b, "x", nIn)
	for o := 0; o < nOut; o++ {
		k := 3 + rng.Intn(maxLits-2)
		if k > nIn {
			k = nIn
		}
		perm := rng.Perm(nIn)
		fanins := make([]*network.Node, k)
		for i := 0; i < k; i++ {
			fanins[i] = ins[perm[i]]
		}
		cover := logic.NewCover(k)
		cubes := 2 + rng.Intn(maxCubes-1)
		for c := 0; c < cubes; c++ {
			cube := logic.NewCube(k)
			any := false
			for j := 0; j < k; j++ {
				switch rng.Intn(3) {
				case 0:
					cube[j] = logic.Pos
					any = true
				case 1:
					cube[j] = logic.Neg
					any = true
				}
			}
			if any {
				cover.AddCube(cube)
			}
		}
		if cover.IsZero() {
			cube := logic.NewCube(k)
			cube[0] = logic.Pos
			cover.AddCube(cube)
		}
		out := b.Node(nameN("y", o), cover.SCC(), fanins...)
		b.Output(out)
	}
	b.Net.RemoveDangling()
	return b.Net
}
