package mcnc

import (
	"math/rand"
	"testing"

	"tels/internal/network"
)

func TestRegistryComplete(t *testing.T) {
	if len(Names()) < 25 {
		t.Fatalf("only %d benchmarks registered, want ≥ 25", len(Names()))
	}
	for _, name := range TableISet() {
		if _, ok := Get(name); !ok {
			t.Errorf("Table I benchmark %s missing", name)
		}
	}
	if _, ok := Get("no-such-bench"); ok {
		t.Error("Get should fail for unknown names")
	}
}

func TestAllBenchmarksValidate(t *testing.T) {
	for _, bm := range All() {
		nw := bm.Build()
		if err := nw.Validate(); err != nil {
			t.Errorf("%s: %v", bm.Name, err)
		}
		if nw.Name != bm.Name {
			t.Errorf("%s: network named %q", bm.Name, nw.Name)
		}
	}
}

func TestBuildersAreDeterministic(t *testing.T) {
	for _, name := range []string{"x1", "misex1", "cm163a", "comp"} {
		a, _ := blifLike(Build(name))
		b, _ := blifLike(Build(name))
		if a != b {
			t.Errorf("%s: two builds differ", name)
		}
	}
}

func blifLike(nw *network.Network) (string, error) {
	s := ""
	order, err := nw.TopoSort()
	if err != nil {
		return "", err
	}
	for _, n := range order {
		s += n.Name + ":"
		for _, f := range n.Fanins {
			s += f.Name + ","
		}
		s += n.Cover.String() + ";"
	}
	return s, nil
}

func TestIOProfiles(t *testing.T) {
	cases := []struct {
		name     string
		ins, out int
	}{
		{"cm152a", 11, 1},
		{"cordic", 23, 2},
		{"cm85a", 9, 3},
		{"comp", 32, 3},
		{"cmb", 16, 4},
		{"term1", 34, 10},
		{"pm1", 16, 13},
		{"x1", 51, 35},
		{"i10", 257, 224},
		{"tcon", 17, 16},
	}
	for _, tc := range cases {
		nw := Build(tc.name)
		if got := len(nw.Inputs); got != tc.ins {
			t.Errorf("%s: %d inputs, want %d", tc.name, got, tc.ins)
		}
		if got := len(nw.Outputs); got != tc.out {
			t.Errorf("%s: %d outputs, want %d", tc.name, got, tc.out)
		}
	}
}

func evalInt(t *testing.T, nw *network.Network, in map[string]bool) []bool {
	t.Helper()
	out, err := nw.EvalOutputs(in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMuxBehaviour(t *testing.T) {
	nw := Build("cm152a")
	for sel := 0; sel < 8; sel++ {
		for val := 0; val < 2; val++ {
			in := map[string]bool{}
			for i := 0; i < 8; i++ {
				in[nameN("a", i)] = false
			}
			in[nameN("a", sel)] = val == 1
			for i := 0; i < 3; i++ {
				in[nameN("s", i)] = sel&(1<<uint(i)) != 0
			}
			out := evalInt(t, nw, in)
			if out[0] != (val == 1) {
				t.Fatalf("mux sel=%d val=%d gives %v", sel, val, out[0])
			}
		}
	}
}

func TestComparatorBehaviour(t *testing.T) {
	nw := Build("comp4")
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		a := rng.Intn(16)
		c := rng.Intn(16)
		in := map[string]bool{}
		for i := 0; i < 4; i++ {
			in[nameN("a", i)] = a&(1<<uint(i)) != 0
			in[nameN("b", i)] = c&(1<<uint(i)) != 0
		}
		out := evalInt(t, nw, in) // oeq, ogt, olt
		if out[0] != (a == c) || out[1] != (a > c) || out[2] != (a < c) {
			t.Fatalf("comp4(%d,%d) = %v", a, c, out)
		}
	}
}

func TestAdderBehaviour(t *testing.T) {
	nw := Build("adder8")
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 300; iter++ {
		a := rng.Intn(256)
		c := rng.Intn(256)
		ci := rng.Intn(2)
		in := map[string]bool{"ci": ci == 1}
		for i := 0; i < 8; i++ {
			in[nameN("a", i)] = a&(1<<uint(i)) != 0
			in[nameN("b", i)] = c&(1<<uint(i)) != 0
		}
		out := evalInt(t, nw, in)
		sum := a + c + ci
		for i := 0; i < 8; i++ {
			if out[i] != (sum&(1<<uint(i)) != 0) {
				t.Fatalf("adder8(%d,%d,%d): bit %d wrong", a, c, ci, i)
			}
		}
		if out[8] != (sum >= 256) {
			t.Fatalf("adder8(%d,%d,%d): carry wrong", a, c, ci)
		}
	}
}

func TestParityBehaviour(t *testing.T) {
	nw := Build("parity8")
	for m := 0; m < 256; m++ {
		in := map[string]bool{}
		ones := 0
		for i := 0; i < 8; i++ {
			v := m&(1<<uint(i)) != 0
			in[nameN("x", i)] = v
			if v {
				ones++
			}
		}
		out := evalInt(t, nw, in)
		if out[0] != (ones%2 == 1) {
			t.Fatalf("parity8(%08b) = %v", m, out[0])
		}
	}
}

func TestOnesCountBehaviour(t *testing.T) {
	nw := Build("rd73")
	for m := 0; m < 128; m++ {
		in := map[string]bool{}
		ones := 0
		for i := 0; i < 7; i++ {
			v := m&(1<<uint(i)) != 0
			in[nameN("x", i)] = v
			if v {
				ones++
			}
		}
		out := evalInt(t, nw, in)
		got := 0
		for i, v := range out {
			if v {
				got |= 1 << uint(i)
			}
		}
		if got != ones {
			t.Fatalf("rd73(%07b) = %d, want %d", m, got, ones)
		}
	}
}

func TestNineSymBehaviour(t *testing.T) {
	nw := Build("9sym")
	for m := 0; m < 512; m++ {
		in := map[string]bool{}
		ones := 0
		for i := 0; i < 9; i++ {
			v := m&(1<<uint(i)) != 0
			in[nameN("x", i)] = v
			if v {
				ones++
			}
		}
		out := evalInt(t, nw, in)
		want := ones >= 3 && ones <= 6
		if out[0] != want {
			t.Fatalf("9sym with %d ones = %v, want %v", ones, out[0], want)
		}
	}
}

func TestMajorityBehaviour(t *testing.T) {
	nw := Build("maj5")
	for m := 0; m < 32; m++ {
		in := map[string]bool{}
		ones := 0
		for i := 0; i < 5; i++ {
			v := m&(1<<uint(i)) != 0
			in[nameN("x", i)] = v
			if v {
				ones++
			}
		}
		out := evalInt(t, nw, in)
		if out[0] != (ones >= 3) {
			t.Fatalf("maj5(%05b) = %v", m, out[0])
		}
	}
}

func TestXor5Behaviour(t *testing.T) {
	nw := Build("xor5")
	for m := 0; m < 32; m++ {
		in := map[string]bool{}
		ones := 0
		for i := 0; i < 5; i++ {
			v := m&(1<<uint(i)) != 0
			in[nameN("x", i)] = v
			if v {
				ones++
			}
		}
		out := evalInt(t, nw, in)
		if out[0] != (ones%2 == 1) {
			t.Fatalf("xor5(%05b) = %v", m, out[0])
		}
	}
}

func TestTconShape(t *testing.T) {
	nw := Build("tcon")
	in := map[string]bool{"k": true}
	for i := 0; i < 8; i++ {
		in[nameN("a", i)] = i%2 == 0
		in[nameN("c", i)] = false
	}
	out := evalInt(t, nw, in)
	// u_i = a_i XOR c_i = a_i here.
	for i := 0; i < 8; i++ {
		if out[i] != (i%2 == 0) {
			t.Fatalf("tcon u%d = %v", i, out[i])
		}
	}
	// v0..v3 = !c_i = true; v4..v6 = c_i = false; v7 = !k = false.
	for i := 8; i < 12; i++ {
		if !out[i] {
			t.Fatalf("tcon v%d should be 1", i-8)
		}
	}
	for i := 12; i < 15; i++ {
		if out[i] {
			t.Fatalf("tcon v%d should be 0", i-8)
		}
	}
	if out[15] {
		t.Fatal("tcon v7 should be 0")
	}
}

func TestI10Slices(t *testing.T) {
	nw := Build("i10")
	if nw.GateCount() < 800 {
		t.Fatalf("i10 has only %d gates; expected a large circuit", nw.GateCount())
	}
	// Check slice 0 arithmetic on a few vectors: ctl=0 -> x+y.
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 50; iter++ {
		in := map[string]bool{"ctl": false}
		want := map[string]bool{}
		for s := 0; s < 32; s++ {
			x := rng.Intn(16)
			y := rng.Intn(16)
			for i := 0; i < 4; i++ {
				in[nameN(nameN("x", s)+"_", i)] = x&(1<<uint(i)) != 0
				in[nameN(nameN("y", s)+"_", i)] = y&(1<<uint(i)) != 0
			}
			sum := x + y
			for i := 0; i < 4; i++ {
				want[nameN(nameN("s", s)+"_", i)] = sum&(1<<uint(i)) != 0
			}
			want[nameN("co", s)] = sum >= 16
			want[nameN("eq", s)] = x == y
			want[nameN("gt", s)] = x > y
		}
		vals, err := nw.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for sig, w := range want {
			if vals[sig] != w {
				t.Fatalf("i10 %s = %v, want %v", sig, vals[sig], w)
			}
		}
	}
}

func TestZ4mlBehaviour(t *testing.T) {
	nw := Build("z4ml")
	for a := 0; a < 4; a++ {
		for c := 0; c < 4; c++ {
			for e := 0; e < 4; e++ {
				in := map[string]bool{}
				for i := 0; i < 2; i++ {
					in[nameN("a", i)] = a&(1<<uint(i)) != 0
					in[nameN("c", i)] = c&(1<<uint(i)) != 0
					in[nameN("e", i)] = e&(1<<uint(i)) != 0
				}
				out := evalInt(t, nw, in)
				want := a*c + e
				got := 0
				for i := 0; i < 4; i++ {
					if out[i] {
						got |= 1 << uint(i)
					}
				}
				if out[4] {
					got |= 16
				}
				if got != want {
					t.Fatalf("z4ml(%d*%d+%d) = %d, want %d", a, c, e, got, want)
				}
			}
		}
	}
}

func TestSquar5Behaviour(t *testing.T) {
	nw := Build("squar5")
	for x := 0; x < 32; x++ {
		in := map[string]bool{}
		for i := 0; i < 5; i++ {
			in[nameN("x", i)] = x&(1<<uint(i)) != 0
		}
		out := evalInt(t, nw, in)
		got := 0
		for i := 0; i < 6; i++ {
			if out[i] {
				got |= 1 << uint(i)
			}
		}
		if got != (x*x)&63 {
			t.Fatalf("squar5(%d) = %d, want %d", x, got, (x*x)&63)
		}
	}
}

func TestDecoderBehaviour(t *testing.T) {
	nw := Build("dec4")
	for sel := 0; sel < 16; sel++ {
		for en := 0; en < 2; en++ {
			in := map[string]bool{"en": en == 1}
			for i := 0; i < 4; i++ {
				in[nameN("s", i)] = sel&(1<<uint(i)) != 0
			}
			out := evalInt(t, nw, in)
			for i := 0; i < 16; i++ {
				want := en == 1 && i == sel
				if out[i] != want {
					t.Fatalf("dec4 sel=%d en=%d z%d=%v", sel, en, i, out[i])
				}
			}
		}
	}
}
