package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// WAL framing. Every record is length-prefixed and CRC-framed:
//
//	[4 bytes  payload length, little-endian uint32]
//	[4 bytes  CRC32-C of the payload, little-endian uint32]
//	[payload  JSON-encoded Event]
//
// The header and payload are written with a single Write, so on a crash
// the only damage mode is a torn tail: a record whose header or payload
// is short, or whose checksum no longer matches. Recovery scans each
// segment record by record and, in the newest segment only, truncates
// the file back to the last intact frame; a bad frame in an older
// segment cannot be a torn append and is reported as corruption.

const (
	frameHeaderSize = 8
	// maxRecordBytes rejects lengths that can only come from a corrupt
	// header, bounding the allocation a scan will attempt.
	maxRecordBytes = 8 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame writes one framed record. The frame is assembled in a
// single buffer and issued as one Write so a crash can tear at most the
// final frame.
func appendFrame(w io.Writer, payload []byte) (int64, error) {
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("store: record of %d bytes exceeds the %d-byte frame limit", len(payload), maxRecordBytes)
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[frameHeaderSize:], payload)
	if _, err := w.Write(buf); err != nil {
		return 0, err
	}
	return int64(len(buf)), nil
}

// scanFrames walks a segment's bytes and returns the intact payloads,
// the byte offset of the end of the last intact frame, and whether the
// scan stopped early on a torn or corrupt frame.
func scanFrames(data []byte) (payloads [][]byte, good int64, torn bool) {
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return payloads, off, false
		}
		if len(rest) < frameHeaderSize {
			return payloads, off, true
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		if n > maxRecordBytes || int64(len(rest)) < frameHeaderSize+int64(n) {
			return payloads, off, true
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int64(n)]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(rest[4:8]) {
			return payloads, off, true
		}
		payloads = append(payloads, payload)
		off += frameHeaderSize + int64(n)
	}
}
