// Package store is telsd's durable job and result store. It has two
// halves under one data directory:
//
//   - wal/: a segmented append-only write-ahead log of job lifecycle
//     events (submitted, started, progress, finished, failed, canceled,
//     interrupted), each record length-prefixed and CRC32-C framed.
//     Segments rotate at a size threshold; every CompactEvery appends
//     the folded per-job state is written as a snapshot and the
//     segments it covers are deleted. Recovery loads the newest
//     snapshot, replays the remaining segments, and truncates a torn
//     tail in the newest segment back to the last intact frame.
//
//   - results/: a content-addressed result store keyed by the
//     service's SHA-256 request digests. Finished results are written
//     atomically (temp file + rename), so a crash never leaves a
//     partially-visible result, and identical jobs re-serve from disk
//     across restarts without recomputation.
//
// The store knows nothing about the service's request or result types:
// events carry the request as raw JSON and results are opaque bytes,
// so the persistence format is decoupled from the service schema.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// EventType is the lifecycle phase a journal record describes.
type EventType string

// Journal event types. A job is journaled submitted once, started when
// a worker (or coordinator) picks it up, progress zero or more times,
// and exactly one terminal event: finished, failed, or canceled.
// Interrupted marks a queued or running job that a graceful shutdown
// drained; on the next start it is re-enqueued instead of lost.
const (
	EventSubmitted   EventType = "submitted"
	EventStarted     EventType = "started"
	EventProgress    EventType = "progress"
	EventFinished    EventType = "finished"
	EventFailed      EventType = "failed"
	EventCanceled    EventType = "canceled"
	EventInterrupted EventType = "interrupted"
)

// Event is one journal record.
type Event struct {
	Type  EventType `json:"type"`
	JobID string    `json:"job_id"`
	// Kind, Digest, and Request ride on submitted events; Digest also
	// keys the result store entry named by finished events.
	Kind    string          `json:"kind,omitempty"`
	Digest  string          `json:"digest,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`
	// Tenant and Priority ride on submitted events (journal schema v2).
	// Records written before multi-tenancy simply lack them; the service
	// replays such jobs under its default tenant.
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority,omitempty"`
	// Error and ErrorCode ride on failed events.
	Error     string `json:"error,omitempty"`
	ErrorCode string `json:"error_code,omitempty"`
	// Done and Total ride on progress events (sweep points landed,
	// resyn iterations completed).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Unix is the event time in nanoseconds since the epoch.
	Unix int64 `json:"unix,omitempty"`
}

// JobState is the folded view of one job's journal records.
type JobState struct {
	ID        string          `json:"id"`
	Kind      string          `json:"kind,omitempty"`
	Digest    string          `json:"digest,omitempty"`
	Request   json.RawMessage `json:"request,omitempty"`
	Tenant    string          `json:"tenant,omitempty"`
	Priority  string          `json:"priority,omitempty"`
	Status    EventType       `json:"status"`
	Error     string          `json:"error,omitempty"`
	ErrorCode string          `json:"error_code,omitempty"`
	Done      int             `json:"done,omitempty"`
	Total     int             `json:"total,omitempty"`
	Submitted int64           `json:"submitted_unix,omitempty"`
	Finished  int64           `json:"finished_unix,omitempty"`
}

// Terminal reports whether the job's last journaled event is final.
// Interrupted jobs are not terminal: they are the backlog a restart
// re-enqueues.
func (j JobState) Terminal() bool {
	switch j.Status {
	case EventFinished, EventFailed, EventCanceled:
		return true
	}
	return false
}

// Recovery summarizes what Open replayed.
type Recovery struct {
	// Jobs is the folded journal in submission order.
	Jobs []JobState
	// Events is the number of journal records replayed (snapshot
	// entries excluded).
	Events int
	// TruncatedBytes is how much torn tail was cut from the newest
	// segment (0 for a clean shutdown).
	TruncatedBytes int64
	// SnapshotLoaded reports whether a compaction snapshot seeded the
	// replay.
	SnapshotLoaded bool
	// Elapsed is the wall-clock recovery time.
	Elapsed time.Duration
}

// Stats is a point-in-time accounting snapshot for metrics.
type Stats struct {
	// JournalBytes is the total size of the live WAL segments.
	JournalBytes int64
	// Segments is the number of live WAL segments.
	Segments int
	// Appends counts journal records written since Open.
	Appends int64
	// Compactions counts snapshot+prune cycles since Open.
	Compactions int64
	// Results is the number of persisted result files.
	Results int64
}

// Options tune the store.
type Options struct {
	// SegmentBytes rotates the active WAL segment beyond this size
	// (default 4 MiB).
	SegmentBytes int64
	// CompactEvery triggers a snapshot+prune after this many appends
	// (default 8192).
	CompactEvery int
	// MaxJobs bounds the folded job states the journal retains; the
	// oldest terminal jobs are dropped first (default 4096).
	MaxJobs int
	// Sync fsyncs the active segment after every append. Off by
	// default: an OS-buffered write already survives a process kill,
	// and the segment is synced on rotation and Close.
	Sync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CompactEvery <= 0 {
		o.CompactEvery = 8192
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 4096
	}
	return o
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Store owns one data directory. All methods are safe for concurrent
// use; the journal is single-writer by construction (appends serialize
// on the store's mutex, preserving event order).
type Store struct {
	dir    string
	walDir string
	resDir string
	opts   Options

	// resMu serializes result-store writes (exists-check, write, and
	// counter bump form one critical section) without stalling journal
	// appends, which serialize on mu.
	resMu sync.Mutex

	mu           sync.Mutex
	seg          *os.File
	segSeq       uint64
	segBytes     int64
	liveSegs     map[uint64]int64 // segment seq → byte size, active included
	jobs         map[string]*JobState
	order        []string
	sinceCompact int
	appends      int64
	compactions  int64
	results      int64
	recovery     Recovery
	closed       bool
}

func segName(seq uint64) string  { return fmt.Sprintf("seg-%08d.wal", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d.json", seq) }

// snapshot is the on-disk compaction format: the folded job states of
// every journal record in segments before Seq.
//
// Version history: 1 = pre-tenant (JobState lacks Tenant/Priority);
// 2 = adds Tenant/Priority. Loading accepts any version up to
// snapshotVersion — the fields are additive, so a v1 snapshot decodes
// with empty tenancy and the service assigns its default tenant.
// Snapshots from a future version are skipped, falling back to an
// older readable one (or a plain segment replay).
type snapshot struct {
	Version int        `json:"version"`
	Seq     uint64     `json:"seq"`
	Jobs    []JobState `json:"jobs"`
}

// snapshotVersion is the format written by compactLocked.
const snapshotVersion = 2

// Open creates the directory layout if needed and recovers the journal:
// newest snapshot first, then every surviving segment in order, with a
// torn tail in the newest segment truncated back to the last intact
// frame. The folded backlog is available from Recovered.
func Open(dir string, opts Options) (*Store, error) {
	start := time.Now()
	s := &Store{
		dir:      dir,
		walDir:   filepath.Join(dir, "wal"),
		resDir:   filepath.Join(dir, "results"),
		opts:     opts.withDefaults(),
		liveSegs: make(map[uint64]int64),
		jobs:     make(map[string]*JobState),
	}
	for _, d := range []string{s.walDir, s.resDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	segs, snapSeq, err := s.loadSnapshot()
	if err != nil {
		return nil, err
	}
	if err := s.replaySegments(segs, snapSeq); err != nil {
		return nil, err
	}
	if err := s.openActiveSegment(segs, snapSeq); err != nil {
		return nil, err
	}
	n, err := s.countResults()
	if err != nil {
		return nil, err
	}
	s.results = n
	s.recovery.Jobs = s.jobsLocked()
	s.recovery.Elapsed = time.Since(start)
	return s, nil
}

// loadSnapshot lists the wal directory and seeds the job table from the
// newest readable snapshot. It returns the segment sequence numbers on
// disk and the snapshot's starting sequence (0 = no snapshot).
func (s *Store) loadSnapshot() (segs []uint64, snapSeq uint64, err error) {
	entries, err := os.ReadDir(s.walDir)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	var snaps []uint64
	for _, e := range entries {
		var seq uint64
		switch {
		case !e.Type().IsRegular():
		case matchSeq(e.Name(), "seg-", ".wal", &seq):
			segs = append(segs, seq)
		case matchSeq(e.Name(), "snap-", ".json", &seq):
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] }) // newest first
	for _, seq := range snaps {
		data, rerr := os.ReadFile(filepath.Join(s.walDir, snapName(seq)))
		if rerr != nil {
			continue
		}
		var snap snapshot
		if json.Unmarshal(data, &snap) != nil || snap.Seq != seq {
			continue // half-written snapshot from a crash mid-compaction
		}
		if snap.Version > snapshotVersion {
			continue // written by a newer build; fall back to an older one
		}
		for i := range snap.Jobs {
			j := snap.Jobs[i]
			s.jobs[j.ID] = &j
			s.order = append(s.order, j.ID)
		}
		s.recovery.SnapshotLoaded = true
		return segs, seq, nil
	}
	return segs, 0, nil
}

func matchSeq(name, prefix, suffix string, seq *uint64) bool {
	if len(name) != len(prefix)+8+len(suffix) {
		return false
	}
	var n uint64
	if _, err := fmt.Sscanf(name, prefix+"%08d"+suffix, &n); err != nil {
		return false
	}
	*seq = n
	return true
}

// replaySegments folds every segment at or after the snapshot boundary
// into the job table. A torn or corrupt tail is truncated in the newest
// segment; anywhere else it is real corruption and an error. Segments
// older than the snapshot are leftovers of a crash mid-compaction and
// are deleted.
func (s *Store) replaySegments(segs []uint64, snapSeq uint64) error {
	last := uint64(0)
	if len(segs) > 0 {
		last = segs[len(segs)-1]
	}
	for _, seq := range segs {
		path := filepath.Join(s.walDir, segName(seq))
		if seq < snapSeq {
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("store: prune pre-snapshot segment: %w", err)
			}
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		payloads, good, torn := scanFrames(data)
		if torn {
			if seq != last {
				return fmt.Errorf("store: segment %s is corrupt at byte %d (not the newest segment, so this is not a torn append)", segName(seq), good)
			}
			if err := os.Truncate(path, good); err != nil {
				return fmt.Errorf("store: truncate torn tail: %w", err)
			}
			s.recovery.TruncatedBytes = int64(len(data)) - good
		}
		for _, p := range payloads {
			var ev Event
			if err := json.Unmarshal(p, &ev); err != nil {
				// The frame's checksum matched, so this was written as is;
				// skip rather than fail recovery on one bad record.
				continue
			}
			s.foldLocked(ev)
			s.recovery.Events++
		}
		s.liveSegs[seq] = good
	}
	return nil
}

// openActiveSegment opens the newest segment for appending, or starts a
// fresh one when the journal is empty.
func (s *Store) openActiveSegment(segs []uint64, snapSeq uint64) error {
	live := segs[:0]
	for _, seq := range segs {
		if seq >= snapSeq {
			live = append(live, seq)
		}
	}
	if len(live) == 0 {
		return s.startSegmentLocked(max(snapSeq, 1))
	}
	seq := live[len(live)-1]
	f, err := os.OpenFile(filepath.Join(s.walDir, segName(seq)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.seg, s.segSeq, s.segBytes = f, seq, s.liveSegs[seq]
	return nil
}

// startSegmentLocked creates and activates segment seq.
func (s *Store) startSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(s.walDir, segName(seq)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.seg, s.segSeq, s.segBytes = f, seq, 0
	s.liveSegs[seq] = 0
	return nil
}

// foldLocked applies one event to the job table, pruning the oldest
// terminal jobs beyond MaxJobs.
func (s *Store) foldLocked(ev Event) {
	j, ok := s.jobs[ev.JobID]
	if !ok {
		if ev.Type != EventSubmitted {
			return // event for a job pruned from the table; ignore
		}
		j = &JobState{ID: ev.JobID}
		s.jobs[ev.JobID] = j
		s.order = append(s.order, ev.JobID)
	}
	switch ev.Type {
	case EventSubmitted:
		j.Kind, j.Digest, j.Request, j.Submitted = ev.Kind, ev.Digest, ev.Request, ev.Unix
		j.Tenant, j.Priority = ev.Tenant, ev.Priority
		j.Status = EventSubmitted
	case EventProgress:
		j.Done, j.Total = ev.Done, ev.Total
	case EventFinished, EventFailed, EventCanceled:
		j.Status = ev.Type
		j.Error, j.ErrorCode, j.Finished = ev.Error, ev.ErrorCode, ev.Unix
	default:
		j.Status = ev.Type
	}
	if len(s.order) > s.opts.MaxJobs {
		kept := s.order[:0]
		excess := len(s.order) - s.opts.MaxJobs
		for _, id := range s.order {
			if excess > 0 && s.jobs[id] != nil && s.jobs[id].Terminal() {
				delete(s.jobs, id)
				excess--
				continue
			}
			kept = append(kept, id)
		}
		s.order = kept
	}
}

func (s *Store) jobsLocked() []JobState {
	out := make([]JobState, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, *j)
		}
	}
	return out
}

// Recovered returns what Open replayed. The slice is a snapshot taken
// at open time; later appends don't mutate it.
func (s *Store) Recovered() Recovery { return s.recovery }

// Append journals one event: frame, write, fold, and — past the
// rotation and compaction thresholds — rotate the segment or snapshot
// and prune. The write is a single OS call, so it is durable against a
// process kill as soon as Append returns (against power loss only with
// Options.Sync).
func (s *Store) Append(ev Event) error {
	payload, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("store: encode event: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.segBytes > 0 && s.segBytes+frameHeaderSize+int64(len(payload)) > s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := appendFrame(s.seg, payload)
	if err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	s.segBytes += n
	s.liveSegs[s.segSeq] = s.segBytes
	s.appends++
	s.sinceCompact++
	s.foldLocked(ev)
	if s.opts.Sync {
		if err := s.seg.Sync(); err != nil {
			return fmt.Errorf("store: sync: %w", err)
		}
	}
	if s.sinceCompact >= s.opts.CompactEvery {
		return s.compactLocked()
	}
	return nil
}

// rotateLocked syncs and closes the active segment and starts the next.
func (s *Store) rotateLocked() error {
	if err := s.seg.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	if err := s.seg.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return s.startSegmentLocked(s.segSeq + 1)
}

// Compact forces a snapshot+prune cycle (normally triggered every
// CompactEvery appends): rotate to a fresh segment, write the folded
// job table as a snapshot covering everything before it, then delete
// the covered segments and older snapshots.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if err := s.rotateLocked(); err != nil {
		return err
	}
	snap := snapshot{Version: snapshotVersion, Seq: s.segSeq, Jobs: s.jobsLocked()}
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	if err := atomicWrite(s.walDir, snapName(s.segSeq), data); err != nil {
		return err
	}
	// atomicWrite fsynced the snapshot and the wal directory, so the
	// snapshot is durable — against power loss, not just a process kill
	// — before anything it covers goes. A crash between these removals
	// just leaves files Open prunes later.
	for seq := range s.liveSegs {
		if seq < s.segSeq {
			if err := os.Remove(filepath.Join(s.walDir, segName(seq))); err != nil {
				return fmt.Errorf("store: prune segment: %w", err)
			}
			delete(s.liveSegs, seq)
		}
	}
	entries, err := os.ReadDir(s.walDir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		var seq uint64
		if matchSeq(e.Name(), "snap-", ".json", &seq) && seq < s.segSeq {
			if err := os.Remove(filepath.Join(s.walDir, e.Name())); err != nil {
				return fmt.Errorf("store: prune snapshot: %w", err)
			}
		}
	}
	s.sinceCompact = 0
	s.compactions++
	return nil
}

// Stats returns the accounting snapshot for metrics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Segments:    len(s.liveSegs),
		Appends:     s.appends,
		Compactions: s.compactions,
		Results:     s.results,
	}
	for _, b := range s.liveSegs {
		st.JournalBytes += b
	}
	return st
}

// Close syncs and closes the active segment. The result store needs no
// teardown (every write is already atomic and self-contained).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.seg.Sync(); err != nil {
		s.seg.Close()
		return fmt.Errorf("store: sync: %w", err)
	}
	return s.seg.Close()
}

// atomicWrite writes name under dir via a temp file and rename, so
// readers never observe a partial file. The temp file is fsynced
// before the rename and the directory after it, so the file is durable
// against power loss by the time atomicWrite returns — compaction
// relies on this to delete the segments a snapshot covers immediately,
// and Options.Sync relies on it for result files.
func atomicWrite(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making renames and unlinks inside it
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}
