package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// lifecycle journals a full job: submitted → started → finished.
func lifecycle(t *testing.T, s *Store, id, digest string) {
	t.Helper()
	req := json.RawMessage(fmt.Sprintf(`{"blif":"net-%s"}`, id))
	for _, ev := range []Event{
		{Type: EventSubmitted, JobID: id, Kind: "synth", Digest: digest, Request: req, Unix: 1},
		{Type: EventStarted, JobID: id, Unix: 2},
		{Type: EventFinished, JobID: id, Digest: digest, Unix: 3},
	} {
		if err := s.Append(ev); err != nil {
			t.Fatalf("Append(%s): %v", ev.Type, err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	lifecycle(t, s, "job-000001", strings.Repeat("ab", 32))
	if err := s.Append(Event{Type: EventSubmitted, JobID: "job-000002", Kind: "sweep", Request: json.RawMessage(`{"blif":"x"}`), Unix: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Event{Type: EventStarted, JobID: "job-000002", Unix: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Event{Type: EventProgress, JobID: "job-000002", Done: 3, Total: 9, Unix: 6}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, Options{})
	rec := r.Recovered()
	if rec.TruncatedBytes != 0 {
		t.Fatalf("clean journal reported %d truncated bytes", rec.TruncatedBytes)
	}
	if len(rec.Jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(rec.Jobs))
	}
	j1, j2 := rec.Jobs[0], rec.Jobs[1]
	if j1.ID != "job-000001" || j1.Status != EventFinished || !j1.Terminal() {
		t.Fatalf("job 1 recovered as %+v", j1)
	}
	if j1.Digest != strings.Repeat("ab", 32) || j1.Kind != "synth" {
		t.Fatalf("job 1 lost its submit fields: %+v", j1)
	}
	if j2.ID != "job-000002" || j2.Status != EventStarted || j2.Terminal() {
		t.Fatalf("job 2 recovered as %+v", j2)
	}
	if j2.Done != 3 || j2.Total != 9 {
		t.Fatalf("job 2 lost progress: %+v", j2)
	}
	if !bytes.Contains(j2.Request, []byte(`"blif"`)) {
		t.Fatalf("job 2 lost its request: %s", j2.Request)
	}
}

// TestTornTailTruncates is the crash contract: a partial final record
// recovers by truncation, not error, and earlier records survive.
func TestTornTailTruncates(t *testing.T) {
	for name, tear := range map[string]func([]byte) []byte{
		// half a header
		"short-header": func(seg []byte) []byte { return append(seg, 0x55, 0x66) },
		// a full header promising more payload than exists
		"short-payload": func(seg []byte) []byte {
			return append(seg, 0x40, 0, 0, 0, 1, 2, 3, 4, 'p', 'a', 'r', 't')
		},
		// a complete frame whose payload was corrupted in place
		"crc-mismatch": func(seg []byte) []byte {
			seg[len(seg)-1] ^= 0xff
			return seg
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := openTest(t, dir, Options{})
			lifecycle(t, s, "job-000001", strings.Repeat("cd", 32))
			if err := s.Append(Event{Type: EventSubmitted, JobID: "job-000002", Request: json.RawMessage(`{}`), Unix: 9}); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "wal", segName(1))
			seg, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tear(append([]byte(nil), seg...)), 0o644); err != nil {
				t.Fatal(err)
			}

			r := openTest(t, dir, Options{})
			rec := r.Recovered()
			if rec.TruncatedBytes == 0 {
				t.Fatal("recovery did not truncate the torn tail")
			}
			if len(rec.Jobs) == 0 || rec.Jobs[0].ID != "job-000001" || rec.Jobs[0].Status != EventFinished {
				t.Fatalf("intact records lost: %+v", rec.Jobs)
			}
			// The truncated journal accepts appends and round-trips again.
			lifecycle(t, r, "job-000003", strings.Repeat("ef", 32))
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			r2 := openTest(t, dir, Options{})
			if got := r2.Recovered(); got.TruncatedBytes != 0 || got.Jobs[len(got.Jobs)-1].ID != "job-000003" {
				t.Fatalf("post-truncation journal did not recover cleanly: %+v", got)
			}
		})
	}
}

// Corruption in a non-newest segment cannot be a torn append and must
// surface as an error, not silent data loss.
func TestCorruptMiddleSegmentErrors(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 256}) // force rotation
	for i := 1; i <= 8; i++ {
		lifecycle(t, s, fmt.Sprintf("job-%06d", i), strings.Repeat(fmt.Sprintf("%02x", i), 32))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(s.liveSegs); n < 2 {
		t.Fatalf("rotation produced %d segments, need ≥ 2 for this test", n)
	}
	path := filepath.Join(dir, "wal", segName(1))
	seg, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	seg[len(seg)/2] ^= 0xff
	if err := os.WriteFile(path, seg, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt middle segment")
	}
}

func TestSegmentRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 512})
	const jobs = 20
	for i := 1; i <= jobs; i++ {
		lifecycle(t, s, fmt.Sprintf("job-%06d", i), strings.Repeat(fmt.Sprintf("%02x", i), 32))
	}
	st := s.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segment(s) for %d bytes", st.Segments, st.JournalBytes)
	}
	if st.Appends != jobs*3 {
		t.Fatalf("appends = %d, want %d", st.Appends, jobs*3)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openTest(t, dir, Options{})
	rec := r.Recovered()
	if len(rec.Jobs) != jobs || rec.Events != jobs*3 {
		t.Fatalf("replayed %d jobs / %d events, want %d / %d", len(rec.Jobs), rec.Events, jobs, jobs*3)
	}
	for i, j := range rec.Jobs {
		if want := fmt.Sprintf("job-%06d", i+1); j.ID != want {
			t.Fatalf("job %d replayed out of order: %s", i, j.ID)
		}
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	// Auto-compaction: every 30 appends (= 10 lifecycles).
	s := openTest(t, dir, Options{SegmentBytes: 512, CompactEvery: 30})
	const jobs = 25
	for i := 1; i <= jobs; i++ {
		lifecycle(t, s, fmt.Sprintf("job-%06d", i), strings.Repeat(fmt.Sprintf("%02x", i), 32))
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatal("no auto-compaction after 75 appends with CompactEvery=30")
	}
	before := st.JournalBytes
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if after := s.Stats().JournalBytes; after >= before && before > 0 {
		t.Fatalf("compaction did not shrink the journal: %d → %d", before, after)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, Options{})
	rec := r.Recovered()
	if !rec.SnapshotLoaded {
		t.Fatal("recovery after compaction did not load a snapshot")
	}
	if len(rec.Jobs) != jobs {
		t.Fatalf("compaction lost jobs: %d, want %d", len(rec.Jobs), jobs)
	}
	for i, j := range rec.Jobs {
		if want := fmt.Sprintf("job-%06d", i+1); j.ID != want || j.Status != EventFinished {
			t.Fatalf("job %d replayed as %+v", i, j)
		}
	}
}

func TestMaxJobsPrunesTerminal(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{MaxJobs: 5})
	for i := 1; i <= 9; i++ {
		lifecycle(t, s, fmt.Sprintf("job-%06d", i), strings.Repeat(fmt.Sprintf("%02x", i), 32))
	}
	// One pending job must survive pruning even when old.
	if err := s.Append(Event{Type: EventSubmitted, JobID: "job-000010", Request: json.RawMessage(`{}`), Unix: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 11; i <= 18; i++ {
		lifecycle(t, s, fmt.Sprintf("job-%06d", i), strings.Repeat(fmt.Sprintf("%02x", i%16), 32))
	}
	s.mu.Lock()
	n := len(s.order)
	_, pendingKept := s.jobs["job-000010"]
	s.mu.Unlock()
	if n > 6 { // MaxJobs plus at most the protected pending job
		t.Fatalf("job table holds %d entries, want ≤ 6", n)
	}
	if !pendingKept {
		t.Fatal("pruning dropped a pending job")
	}
}

func TestResultStore(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	digest := strings.Repeat("0f", 32)
	data := []byte(`{"tln":"gate g = <1,1;1>(a,b)"}`)
	if s.HasResult(digest) {
		t.Fatal("HasResult true before Put")
	}
	if _, err := s.GetResult(digest); !errors.Is(err, ErrNoResult) {
		t.Fatalf("GetResult before Put: %v, want ErrNoResult", err)
	}
	if err := s.PutResult(digest, data); err != nil {
		t.Fatal(err)
	}
	if err := s.PutResult(digest, []byte("ignored")); err != nil {
		t.Fatalf("idempotent re-put: %v", err)
	}
	got, err := s.GetResult(digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("GetResult = %s, want %s (re-put must not overwrite)", got, data)
	}
	if !s.HasResult(digest) {
		t.Fatal("HasResult false after Put")
	}
	if err := s.PutResult("../escape", data); err == nil {
		t.Fatal("PutResult accepted a non-hex digest")
	}

	other := strings.Repeat("1a", 32)
	if err := s.PutResult(other, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openTest(t, dir, Options{})
	if got := r.Stats().Results; got != 2 {
		t.Fatalf("reopened store counts %d results, want 2", got)
	}
	digests, err := r.ResultDigests()
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) != 2 {
		t.Fatalf("ResultDigests = %v, want both digests", digests)
	}
	back, err := r.GetResult(digest)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("result did not survive reopen: %s, %v", back, err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Event{Type: EventSubmitted, JobID: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
}

func TestEmptyDirRecovers(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	rec := s.Recovered()
	if len(rec.Jobs) != 0 || rec.Events != 0 || rec.SnapshotLoaded {
		t.Fatalf("fresh store recovered %+v", rec)
	}
}
