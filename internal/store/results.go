package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The result store is content-addressed: a finished job's result bytes
// live at results/<digest[:2]>/<digest>.json, keyed by the service's
// SHA-256 request digest. Writes are atomic (temp file + rename), reads
// need no locking beyond the filesystem's, and identical requests share
// one file across restarts — the on-disk twin of the in-memory LRU.

// ErrNoResult is returned by GetResult for an absent digest.
var ErrNoResult = errors.New("store: no result for digest")

// validDigest accepts lowercase-hex content addresses (the service's
// SHA-256 digests) and rejects anything that could escape the results
// directory or collide with sharding.
func validDigest(digest string) error {
	if len(digest) < 8 {
		return fmt.Errorf("store: digest %q too short", digest)
	}
	for _, c := range digest {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: digest %q is not lowercase hex", digest)
		}
	}
	return nil
}

func (s *Store) resultPath(digest string) string {
	return filepath.Join(s.resDir, digest[:2], digest+".json")
}

// PutResult persists the result bytes under the digest. Re-putting an
// existing digest is a no-op: the address is derived from the request
// content, so the bytes are already equivalent. resMu makes the
// exists-check, write, and counter bump one critical section — two
// concurrent first-puts of the same digest would otherwise both write
// and both increment, drifting the results count from the file count.
func (s *Store) PutResult(digest string, data []byte) error {
	if err := validDigest(digest); err != nil {
		return err
	}
	s.resMu.Lock()
	defer s.resMu.Unlock()
	path := s.resultPath(digest)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := atomicWrite(dir, filepath.Base(path), data); err != nil {
		return err
	}
	s.mu.Lock()
	s.results++
	s.mu.Unlock()
	return nil
}

// GetResult reads the result bytes for the digest (ErrNoResult when
// absent).
func (s *Store) GetResult(digest string) ([]byte, error) {
	if err := validDigest(digest); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.resultPath(digest))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoResult, digest)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}

// HasResult reports whether a result is persisted for the digest.
func (s *Store) HasResult(digest string) bool {
	if validDigest(digest) != nil {
		return false
	}
	_, err := os.Stat(s.resultPath(digest))
	return err == nil
}

// ResultDigests lists every persisted digest, newest first by file
// modification time — the order a bounded cache warm should load them.
func (s *Store) ResultDigests() ([]string, error) {
	type entry struct {
		digest string
		mod    int64
	}
	var found []entry
	shards, err := os.ReadDir(s.resDir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.resDir, sh.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		for _, f := range files {
			name := f.Name()
			if filepath.Ext(name) != ".json" {
				continue
			}
			digest := name[:len(name)-len(".json")]
			if validDigest(digest) != nil {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			found = append(found, entry{digest, info.ModTime().UnixNano()})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mod > found[j].mod })
	out := make([]string, len(found))
	for i, e := range found {
		out[i] = e.digest
	}
	return out, nil
}

// countResults sizes the results counter at open time.
func (s *Store) countResults() (int64, error) {
	digests, err := s.ResultDigests()
	if err != nil {
		return 0, err
	}
	return int64(len(digests)), nil
}
