package sim

import (
	"fmt"
	"math/rand"

	"tels/internal/core"
	"tels/internal/netcore"
)

// VectorsCore is Vectors for the arena-backed representation: exhaustive
// when the input count is at most ExhaustiveLimit, otherwise `samples`
// random vectors drawn from rng (consuming rng exactly as Vectors would).
func VectorsCore(nc *netcore.Network, samples int, rng *rand.Rand) []map[string]bool {
	ins := nc.Inputs()
	n := len(ins)
	if n <= ExhaustiveLimit {
		out := make([]map[string]bool, 0, 1<<uint(n))
		for m := 0; m < 1<<uint(n); m++ {
			in := make(map[string]bool, n)
			for i, node := range ins {
				in[nc.NetName(node)] = m&(1<<uint(i)) != 0
			}
			out = append(out, in)
		}
		return out
	}
	out := make([]map[string]bool, 0, samples)
	for v := 0; v < samples; v++ {
		in := make(map[string]bool, n)
		for _, node := range ins {
			in[nc.NetName(node)] = rng.Intn(2) == 1
		}
		out = append(out, in)
	}
	return out
}

// EquivalentCore checks that the threshold network computes the same
// outputs as the arena-backed Boolean network, evaluating the arena
// directly instead of converting to the pointer representation first.
// Same vector discipline as EquivalentScalar.
func EquivalentCore(nc *netcore.Network, tn *core.Network, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	tev, err := tn.NewEvaluator()
	if err != nil {
		return err
	}
	outs := nc.Outputs()
	var got []bool
	for _, in := range VectorsCore(nc, DefaultRandomVectors, rng) {
		vals, err := nc.Eval(in)
		if err != nil {
			return err
		}
		got, err = tev.Eval(in, got)
		if err != nil {
			return err
		}
		for i, o := range outs {
			name := nc.NetName(o)
			if vals[name] != got[i] {
				return fmt.Errorf("sim: output %s mismatches on %v: boolean=%v threshold=%v",
					name, in, vals[name], got[i])
			}
		}
	}
	return nil
}
