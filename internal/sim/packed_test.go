package sim

import (
	"fmt"
	"strings"
	"testing"

	"tels/internal/core"
	"tels/internal/logic"
	"tels/internal/mcnc"
	"tels/internal/network"
	"tels/internal/opt"
)

// synthPair synthesizes one benchmark for the packed/scalar cross-checks.
func synthPair(t *testing.T, name string) Pair {
	t.Helper()
	src := mcnc.Build(name)
	tn, _, err := core.Synthesize(opt.Algebraic(src), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return Pair{Name: name, Bool: src, Threshold: tn}
}

// TestFailureRatePackedMatchesScalar pins the tentpole property: the
// packed Fig. 11 inner loop counts exactly the failures the scalar oracle
// counts, trial for trial, on real synthesized benchmarks.
func TestFailureRatePackedMatchesScalar(t *testing.T) {
	pairs := []Pair{synthPair(t, "cm152a"), synthPair(t, "maj5"), synthPair(t, "rd53")}
	for _, v := range []float64{0.4, 0.8, 1.6, 2.4} {
		cfg := FailureRateConfig{Trials: 8, Seed: 7}
		packed, err := FailureRate(pairs, v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Scalar = true
		scalar, err := FailureRate(pairs, v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if packed != scalar {
			t.Fatalf("v=%g: packed rate %f != scalar rate %f", v, packed, scalar)
		}
	}
}

// TestEquivalentPackedAgreesWithScalar: both equivalence paths accept a
// correct synthesis and reject a corrupted one with a located mismatch.
func TestEquivalentPackedAgreesWithScalar(t *testing.T) {
	pair := synthPair(t, "cm85a")
	if err := Equivalent(pair.Bool, pair.Threshold, 1); err != nil {
		t.Fatalf("packed: %v", err)
	}
	if err := EquivalentScalar(pair.Bool, pair.Threshold, 1); err != nil {
		t.Fatalf("scalar: %v", err)
	}
	// Corrupt one gate's threshold so some vector must flip.
	bad := pair.Threshold.Gates[0]
	old := bad.T
	bad.T = old + 100
	perr := Equivalent(pair.Bool, pair.Threshold, 1)
	serr := EquivalentScalar(pair.Bool, pair.Threshold, 1)
	bad.T = old
	if perr == nil || serr == nil {
		t.Fatalf("corruption not detected: packed=%v scalar=%v", perr, serr)
	}
	if !strings.Contains(perr.Error(), "mismatches") {
		t.Fatalf("packed error lacks location: %v", perr)
	}
}

// TestEquivalentFallsBackBeyondFaninLimit: a gate too wide for the packed
// engine (fanin > fsim.PackedFaninLimit) routes the check through the
// scalar oracle instead of failing, and FailureRate likewise still works.
func TestEquivalentFallsBackBeyondFaninLimit(t *testing.T) {
	const n = 14 // > fsim.PackedFaninLimit, ≤ ExhaustiveLimit
	nw := network.New("wideor")
	fanins := make([]*network.Node, n)
	cubes := make([]string, n)
	for i := 0; i < n; i++ {
		fanins[i] = nw.AddInput(fmt.Sprintf("x%d", i))
		c := strings.Repeat("-", n)
		cubes[i] = c[:i] + "1" + c[i+1:]
	}
	f := nw.AddNode("f", fanins, logic.MustCover(cubes...))
	nw.MarkOutput(f)

	tn := core.NewNetwork("wideor")
	g := &core.Gate{Name: "f", T: 1}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("x%d", i)
		tn.AddInput(name)
		g.Inputs = append(g.Inputs, name)
		g.Weights = append(g.Weights, 1)
	}
	if err := tn.AddGate(g); err != nil {
		t.Fatal(err)
	}
	tn.MarkOutput("f")

	if err := Equivalent(nw, tn, 1); err != nil {
		t.Fatal(err)
	}
	rate, err := FailureRate([]Pair{{Name: "wideor", Bool: nw, Threshold: tn}}, 0,
		FailureRateConfig{Trials: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0 {
		t.Fatalf("zero-noise failure rate = %f", rate)
	}
}
