package sim

import (
	"strings"
	"testing"

	"tels/internal/core"
	"tels/internal/mcnc"
	"tels/internal/opt"
)

func TestProveSmall(t *testing.T) {
	p := buildPair(t, 0)
	res, err := Prove(p.Bool, p.Threshold, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res != Proved {
		t.Fatalf("result = %v, want proved", res)
	}
}

func TestProveFindsCounterexample(t *testing.T) {
	p := buildPair(t, 0)
	p.Threshold.Gates[0].T += 100
	_, err := Prove(p.Bool, p.Threshold, 1)
	if err == nil {
		t.Fatal("corrupted network proved equivalent")
	}
	if !strings.Contains(err.Error(), "counterexample") {
		t.Fatalf("error lacks counterexample: %v", err)
	}
}

// Prove must handle the wide benchmarks that Equivalent can only sample:
// the 32-input comparator gets a complete proof because the DFS variable
// order interleaves the a/b bits.
func TestProveWideComparator(t *testing.T) {
	src := mcnc.Build("comp")
	tn, _, err := core.Synthesize(opt.Algebraic(src), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Prove(src, tn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res != Proved {
		t.Fatalf("comp fell back to %v; expected a full BDD proof", res)
	}
}

func TestProveBenchmarks(t *testing.T) {
	for _, name := range []string{"cm152a", "cordic", "term1", "parity16", "alu2s"} {
		src := mcnc.Build(name)
		tn, _, err := core.Synthesize(opt.Algebraic(src), core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := Prove(src, tn, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestProveOneToOne(t *testing.T) {
	src := mcnc.Build("cm85a")
	tn, err := core.OneToOne(opt.Boolean(src), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Prove(src, tn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res != Proved {
		t.Fatalf("result = %v", res)
	}
}

func TestProveResultString(t *testing.T) {
	if Proved.String() != "proved" || Simulated.String() != "simulated" {
		t.Fatal("ProveResult strings wrong")
	}
}
