package sim_test

import (
	"fmt"

	"tels/internal/core"
	"tels/internal/network"
	"tels/internal/sim"
)

// ExampleProve synthesizes a small network and proves the threshold
// implementation equivalent with a BDD.
func ExampleProve() {
	b := network.NewBuilder("demo")
	x, y, z := b.Input("x"), b.Input("y"), b.Input("z")
	b.Output(b.Or("f", b.And("g", x, y), z))

	tn, _, err := core.Synthesize(b.Net, core.DefaultOptions())
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := sim.Prove(b.Net, tn, 1)
	fmt.Println(res, err)
	// Output: proved <nil>
}
