package sim

import (
	"math/rand"
	"testing"

	"tels/internal/core"
	"tels/internal/logic"
	"tels/internal/network"
)

// buildPair synthesizes a small comparator-flavoured network.
func buildPair(t *testing.T, deltaOn int) Pair {
	t.Helper()
	b := network.NewBuilder("pairnet")
	a0 := b.Input("a0")
	a1 := b.Input("a1")
	b0 := b.Input("b0")
	b1 := b.Input("b1")
	eq0 := b.Xnor("eq0", a0, b0)
	eq1 := b.Xnor("eq1", a1, b1)
	eq := b.And("eq", eq0, eq1)
	gt := b.Or("gt",
		b.Node("g1", logic.MustCover("10"), a1, b1),
		b.And("g2", eq1, b.Node("g0", logic.MustCover("10"), a0, b0)))
	b.Output(eq)
	b.Output(gt)
	tn, _, err := core.Synthesize(b.Net, core.Options{Fanin: 3, DeltaOn: deltaOn, DeltaOff: 1})
	if err != nil {
		t.Fatal(err)
	}
	return Pair{Name: "pairnet", Bool: b.Net, Threshold: tn}
}

func TestEquivalentAccepts(t *testing.T) {
	p := buildPair(t, 0)
	if err := Equivalent(p.Bool, p.Threshold, 1); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalentDetectsMismatch(t *testing.T) {
	p := buildPair(t, 0)
	// Corrupt one gate's threshold hard enough to change behaviour.
	p.Threshold.Gates[0].T += 100
	if err := Equivalent(p.Bool, p.Threshold, 1); err == nil {
		t.Fatal("corrupted network accepted")
	}
}

func TestVectorsExhaustiveVsSampled(t *testing.T) {
	p := buildPair(t, 0)
	rng := rand.New(rand.NewSource(3))
	vs := Vectors(p.Bool, 100, rng)
	if len(vs) != 16 {
		t.Fatalf("4 inputs should give 16 exhaustive vectors, got %d", len(vs))
	}
	// A wide network samples.
	b := network.NewBuilder("wide")
	var ins []*network.Node
	for i := 0; i < 20; i++ {
		ins = append(ins, b.Input(network.New("x").FreshName("i")+string(rune('a'+i))))
	}
	b.Output(b.Or("y", ins...))
	vs = Vectors(b.Net, 100, rng)
	if len(vs) != 100 {
		t.Fatalf("wide network should sample 100 vectors, got %d", len(vs))
	}
}

func TestZeroPerturbationNeverFails(t *testing.T) {
	p := buildPair(t, 0)
	rng := rand.New(rand.NewSource(9))
	vectors := Vectors(p.Bool, 256, rng)
	pert := Perturb(p.Threshold, 0, rng)
	bad, err := FailsUnderPerturbation(p.Bool, p.Threshold, pert, vectors)
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Fatal("zero perturbation must not fail")
	}
}

func TestSmallPerturbationWithinMargin(t *testing.T) {
	// With δon=0 the ON side has no margin, so any v > 0 may fail — that
	// is the paper's Fig. 11 motivation. With δon=1 and δoff=1 both sides
	// have margin 1; a multiplier v drifts any weighted sum by at most
	// fanin·v/2 = 0.15 < 1, so no failures can occur.
	p := buildPair(t, 1)
	rng := rand.New(rand.NewSource(11))
	vectors := Vectors(p.Bool, 256, rng)
	for trial := 0; trial < 20; trial++ {
		pert := Perturb(p.Threshold, 0.1, rng)
		bad, err := FailsUnderPerturbation(p.Bool, p.Threshold, pert, vectors)
		if err != nil {
			t.Fatal(err)
		}
		if bad {
			t.Fatal("v=0.1 must stay within the δ margins")
		}
	}
}

func TestLargePerturbationEventuallyFails(t *testing.T) {
	p := buildPair(t, 0)
	rate, err := FailureRate([]Pair{p}, 3.0, FailureRateConfig{Trials: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rate == 0 {
		t.Fatal("v=3 should cause failures on a δon=0 network")
	}
}

func TestDefectToleranceImprovesRobustness(t *testing.T) {
	// Failure rate at fixed v must not increase when δon grows (Fig. 11).
	v := 1.2
	rate0, err := FailureRate([]Pair{buildPair(t, 0)}, v, FailureRateConfig{Trials: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rate3, err := FailureRate([]Pair{buildPair(t, 3)}, v, FailureRateConfig{Trials: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rate3 > rate0 {
		t.Fatalf("failure rate grew with δon: %.2f -> %.2f", rate0, rate3)
	}
}

func TestFailureRateMonotoneInV(t *testing.T) {
	p := buildPair(t, 0)
	cfg := FailureRateConfig{Trials: 60, Seed: 13}
	r1, err := FailureRate([]Pair{p}, 0.2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := FailureRate([]Pair{p}, 2.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < r1 {
		t.Fatalf("failure rate not increasing with v: %.2f at 0.2 vs %.2f at 2.5", r1, r2)
	}
}

func TestFailureRateEmptyPairs(t *testing.T) {
	if _, err := FailureRate(nil, 1, FailureRateConfig{}); err == nil {
		t.Fatal("empty pair list must error")
	}
}

func TestEvalPerturbedStandalone(t *testing.T) {
	p := buildPair(t, 0)
	rng := rand.New(rand.NewSource(21))
	pert := Perturb(p.Threshold, 0, rng)
	in := map[string]bool{"a0": true, "a1": false, "b0": true, "b1": false}
	got, err := EvalPerturbed(p.Threshold, pert, in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Threshold.EvalOutputs(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zero-noise EvalPerturbed differs at output %d", i)
		}
	}
	if _, err := EvalPerturbed(p.Threshold, pert, map[string]bool{"a0": true}); err == nil {
		t.Fatal("missing inputs accepted")
	}
}

func TestFailureRateDeterministic(t *testing.T) {
	pairs := []Pair{buildPair(t, 0), buildPair(t, 1), buildPair(t, 2)}
	cfg := FailureRateConfig{Trials: 20, Seed: 5}
	a, err := FailureRate(pairs, 1.1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b, err := FailureRate(pairs, 1.1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("parallel FailureRate not deterministic: %v vs %v", a, b)
		}
	}
}
