// Package sim validates synthesized threshold networks against their
// source Boolean networks and implements the Monte-Carlo weight
// perturbation experiments of §VI-C: every synthesized benchmark is
// simulated with disturbed weights w' = w + v·U(−0.5, 0.5) and counted as
// failed if any input vector produces a wrong output.
//
// The hot paths (Equivalent's simulation sweep and FailureRate's
// Monte-Carlo inner loop) run word-parallel through internal/fsim, 64
// vectors per machine word; the scalar evaluators in this package remain
// the correctness oracle (FailureRateConfig.Scalar and EquivalentScalar
// force them), and both paths consume the seeded RNG streams identically,
// so packed and scalar runs produce the same results.
package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"tels/internal/core"
	"tels/internal/fsim"
	"tels/internal/network"
)

// ExhaustiveLimit is the largest primary-input count for which equivalence
// checks enumerate all vectors; beyond it a random sample is used.
const ExhaustiveLimit = 14

// DefaultRandomVectors is the sample size for large networks.
const DefaultRandomVectors = 4096

// Vectors produces the input assignments used for checking nw: exhaustive
// when the input count is at most ExhaustiveLimit, otherwise `samples`
// random vectors drawn from rng.
func Vectors(nw *network.Network, samples int, rng *rand.Rand) []map[string]bool {
	n := len(nw.Inputs)
	if n <= ExhaustiveLimit {
		out := make([]map[string]bool, 0, 1<<uint(n))
		for m := 0; m < 1<<uint(n); m++ {
			in := make(map[string]bool, n)
			for i, node := range nw.Inputs {
				in[node.Name] = m&(1<<uint(i)) != 0
			}
			out = append(out, in)
		}
		return out
	}
	out := make([]map[string]bool, 0, samples)
	for v := 0; v < samples; v++ {
		in := make(map[string]bool, n)
		for _, node := range nw.Inputs {
			in[node.Name] = rng.Intn(2) == 1
		}
		out = append(out, in)
	}
	return out
}

// inputNames returns the Boolean network's primary-input names in order.
func inputNames(nw *network.Network) []string {
	names := make([]string, len(nw.Inputs))
	for i, in := range nw.Inputs {
		names[i] = in.Name
	}
	return names
}

// packedBatch builds the packed counterpart of Vectors: exhaustive for
// narrow networks, `samples` random vectors otherwise, consuming rng
// exactly as Vectors would. The lane width w is a pure throughput knob;
// the valid bits are identical at every width.
func packedBatch(nw *network.Network, samples int, rng *rand.Rand, w fsim.Width) (*fsim.Batch, error) {
	names := inputNames(nw)
	if len(names) <= ExhaustiveLimit {
		return fsim.ExhaustiveW(names, w)
	}
	return fsim.RandomW(names, samples, rng, w), nil
}

// Equivalent checks that the threshold network computes the same outputs
// as the Boolean network on all vectors (or a random sample for wide
// networks). It returns a descriptive error on the first mismatch. The
// sweep runs word-parallel when both networks compile for the packed
// engine, and falls back to EquivalentScalar otherwise (e.g. a gate
// beyond fsim.PackedFaninLimit).
func Equivalent(nw *network.Network, tn *core.Network, seed int64) error {
	bsim, berr := fsim.CompileBool(nw)
	tsim, terr := fsim.CompileThresh(tn)
	if berr != nil || terr != nil {
		return EquivalentScalar(nw, tn, seed)
	}
	rng := rand.New(rand.NewSource(seed))
	batch, err := packedBatch(nw, DefaultRandomVectors, rng, fsim.DefaultWidth)
	if err != nil {
		return err
	}
	want, err := bsim.Eval(batch)
	if err != nil {
		return err
	}
	got, err := tsim.Eval(batch)
	if err != nil {
		return err
	}
	if vec, out, bad := batch.FirstDiff(want, got); bad {
		in := batch.Assignment(vec)
		return fmt.Errorf("sim: output %s mismatches on %v: boolean=%v threshold=%v",
			nw.Outputs[out].Name, in, fsim.Bit(want[out], vec), fsim.Bit(got[out], vec))
	}
	return nil
}

// EquivalentScalar is the one-vector-at-a-time oracle behind Equivalent.
func EquivalentScalar(nw *network.Network, tn *core.Network, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	bev, err := nw.NewEvaluator()
	if err != nil {
		return err
	}
	tev, err := tn.NewEvaluator()
	if err != nil {
		return err
	}
	var want, got []bool
	for _, in := range Vectors(nw, DefaultRandomVectors, rng) {
		want, err = bev.Eval(in, want)
		if err != nil {
			return err
		}
		got, err = tev.Eval(in, got)
		if err != nil {
			return err
		}
		for i := range want {
			if want[i] != got[i] {
				return fmt.Errorf("sim: output %s mismatches on %v: boolean=%v threshold=%v",
					nw.Outputs[i].Name, in, want[i], got[i])
			}
		}
	}
	return nil
}

// Perturbation is one Monte-Carlo disturbance of a threshold network's
// weights, aligned with an Evaluator's gate order.
type Perturbation struct {
	noise [][]float64
}

// PerturbFor draws a disturbance with multiplier v for the evaluator's
// network: each weight receives an independent v·U(−0.5, 0.5) offset, per
// §VI-C.
func PerturbFor(ev *core.Evaluator, v float64, rng *rand.Rand) *Perturbation {
	return &Perturbation{noise: drawNoise(ev.GateOrder(), v, rng)}
}

// Noise exposes the per-gate weight offsets in evaluator gate order (the
// layout core.Evaluator.EvalPerturbed and fsim.ThreshSim.EvalPerturbed
// both accept).
func (p *Perturbation) Noise() [][]float64 { return p.noise }

// drawNoise samples one §VI-C disturbance for gates in evaluation order.
// Both the scalar and packed paths draw through here, so they consume the
// RNG identically.
func drawNoise(order []*core.Gate, v float64, rng *rand.Rand) [][]float64 {
	noise := make([][]float64, len(order))
	for gi, g := range order {
		n := make([]float64, len(g.Weights))
		for i := range n {
			n[i] = v * (rng.Float64() - 0.5)
		}
		noise[gi] = n
	}
	return noise
}

// Perturb draws a disturbance for the network (convenience wrapper that
// builds a fresh evaluator; use PerturbFor in hot loops).
func Perturb(tn *core.Network, v float64, rng *rand.Rand) *Perturbation {
	ev, err := tn.NewEvaluator()
	if err != nil {
		panic(err) // networks passed here are always validated
	}
	return PerturbFor(ev, v, rng)
}

// EvalPerturbed evaluates the threshold network under the disturbance.
func EvalPerturbed(tn *core.Network, p *Perturbation, inputs map[string]bool) ([]bool, error) {
	ev, err := tn.NewEvaluator()
	if err != nil {
		return nil, err
	}
	out, err := ev.EvalPerturbed(inputs, p.noise, nil)
	if err != nil {
		return nil, err
	}
	return append([]bool(nil), out...), nil
}

// FailsUnderPerturbation reports whether the disturbed threshold network
// produces a wrong output on any of the vectors ("the circuit fails if
// there exists any input vector with which TELS generates a wrong output
// value under the disturbed weights").
func FailsUnderPerturbation(nw *network.Network, tn *core.Network, p *Perturbation,
	vectors []map[string]bool) (bool, error) {
	bev, err := nw.NewEvaluator()
	if err != nil {
		return false, err
	}
	tev, err := tn.NewEvaluator()
	if err != nil {
		return false, err
	}
	return failsWith(bev, tev, p, vectors)
}

func failsWith(bev *network.Evaluator, tev *core.Evaluator, p *Perturbation,
	vectors []map[string]bool) (bool, error) {
	var want, got []bool
	var err error
	for _, in := range vectors {
		want, err = bev.Eval(in, want)
		if err != nil {
			return false, err
		}
		got, err = tev.EvalPerturbed(in, p.noise, got)
		if err != nil {
			return false, err
		}
		for i := range want {
			if want[i] != got[i] {
				return true, nil
			}
		}
	}
	return false, nil
}

// FailureRateConfig controls a Monte-Carlo failure-rate measurement.
type FailureRateConfig struct {
	Trials  int   // disturbed instances per circuit (default 10)
	Samples int   // random vectors for wide circuits (default DefaultRandomVectors)
	Seed    int64 // RNG seed
	// Scalar forces the one-vector-at-a-time oracle path instead of the
	// packed fsim engine (for cross-checks and benchmarks; both paths
	// produce identical results).
	Scalar bool
	// Width is the packed engine's lane-block width (default
	// fsim.DefaultWidth). Results are bit-identical at every width.
	Width fsim.Width
}

// FailureRate measures the fraction of (circuit, disturbance) trials that
// fail under multiplier v. The paper reports the percentage of benchmarks
// failing; with one trial per benchmark that statistic is very coarse, so
// the default runs several independent disturbances per circuit and pools
// them (documented in EXPERIMENTS.md). Circuits are processed in
// parallel; each draws from its own deterministic RNG stream, so the
// result depends only on cfg.Seed, never on scheduling.
func FailureRate(pairs []Pair, v float64, cfg FailureRateConfig) (float64, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 10
	}
	if cfg.Samples <= 0 {
		cfg.Samples = DefaultRandomVectors
	}
	if len(pairs) == 0 {
		return 0, fmt.Errorf("sim: no trials")
	}
	failures := make([]int, len(pairs))
	errs := make([]error, len(pairs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pairs) {
		workers = len(pairs)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				failures[i], errs[i] = pairFailures(pairs[i], v, cfg, int64(i))
			}
		}()
	}
	for i := range pairs {
		work <- i
	}
	close(work)
	wg.Wait()
	failed := 0
	for i := range pairs {
		if errs[i] != nil {
			return 0, errs[i]
		}
		failed += failures[i]
	}
	return float64(failed) / float64(len(pairs)*cfg.Trials), nil
}

// pairFailures runs the trials for one circuit with a per-pair RNG
// stream: word-parallel through fsim when both networks compile for the
// packed engine, through the scalar oracle otherwise. The two paths draw
// vectors and disturbances in the same RNG order and the packed perturbed
// evaluator reproduces the scalar float association exactly, so they
// count the same failures.
func pairFailures(pair Pair, v float64, cfg FailureRateConfig, idx int64) (int, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 1_000_003*idx))
	if !cfg.Scalar {
		bsim, berr := fsim.CompileBool(pair.Bool)
		tsim, terr := fsim.CompileThresh(pair.Threshold)
		if berr == nil && terr == nil {
			return packedPairFailures(pair, bsim, tsim, v, cfg, rng)
		}
	}
	vectors := Vectors(pair.Bool, cfg.Samples, rng)
	bev, err := pair.Bool.NewEvaluator()
	if err != nil {
		return 0, err
	}
	tev, err := pair.Threshold.NewEvaluator()
	if err != nil {
		return 0, err
	}
	failed := 0
	for trial := 0; trial < cfg.Trials; trial++ {
		p := PerturbFor(tev, v, rng)
		bad, err := failsWith(bev, tev, p, vectors)
		if err != nil {
			return 0, err
		}
		if bad {
			failed++
		}
	}
	return failed, nil
}

// packedPairFailures is the Fig. 11/12 inner loop on the packed engine:
// the golden outputs are evaluated once per pair, then each disturbance
// re-derives the gate fire tables and sweeps all vectors 64 lanes at a
// time.
func packedPairFailures(pair Pair, bsim *fsim.BoolSim, tsim *fsim.ThreshSim,
	v float64, cfg FailureRateConfig, rng *rand.Rand) (int, error) {
	batch, err := packedBatch(pair.Bool, cfg.Samples, rng, cfg.Width)
	if err != nil {
		return 0, err
	}
	ref, err := bsim.Eval(batch)
	if err != nil {
		return 0, err
	}
	golden := make([][]uint64, len(ref))
	for o := range ref {
		golden[o] = append([]uint64(nil), ref[o]...)
	}
	order := tsim.GateOrder()
	failed := 0
	for trial := 0; trial < cfg.Trials; trial++ {
		noise := drawNoise(order, v, rng)
		got, err := tsim.EvalPerturbed(batch, noise)
		if err != nil {
			return 0, err
		}
		if batch.Differs(golden, got) {
			failed++
		}
	}
	return failed, nil
}

// Pair couples a Boolean reference network with its synthesized threshold
// implementation.
type Pair struct {
	Name      string
	Bool      *network.Network
	Threshold *core.Network
}
