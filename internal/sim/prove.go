package sim

import (
	"errors"
	"fmt"

	"tels/internal/bdd"
	"tels/internal/core"
	"tels/internal/network"
)

// ProveResult reports how an equivalence check was discharged.
type ProveResult int

// Outcomes of Prove.
const (
	Proved    ProveResult = iota // BDD proof of equivalence
	Simulated                    // BDD exceeded its budget; sampled instead
)

func (r ProveResult) String() string {
	if r == Proved {
		return "proved"
	}
	return "simulated"
}

// Prove establishes functional equivalence of the Boolean network and the
// threshold network. It first attempts an exact proof by compiling both
// into one BDD manager (shared variable order from a structural DFS) and
// comparing the output functions for structural identity. Networks whose
// cones exceed the node budget fall back to Equivalent (exhaustive or
// sampled simulation). On inequivalence the error carries a concrete
// counterexample when the proof path found one.
func Prove(nw *network.Network, tn *core.Network, seed int64) (ProveResult, error) {
	res, err := proveBDD(nw, tn)
	if err == nil {
		return Proved, nil
	}
	if errors.Is(err, bdd.ErrNodeLimit) {
		return Simulated, Equivalent(nw, tn, seed)
	}
	_ = res
	return Proved, err
}

func proveBDD(nw *network.Network, tn *core.Network) (ProveResult, error) {
	if len(nw.Outputs) != len(tn.Outputs) {
		return Proved, fmt.Errorf("sim: output counts differ: %d vs %d",
			len(nw.Outputs), len(tn.Outputs))
	}
	varLevel := bdd.VarOrder(nw)
	m := bdd.New(len(varLevel), 0)
	want, err := bdd.CompileBoolean(m, nw, varLevel)
	if err != nil {
		return Proved, err
	}
	got, err := bdd.CompileThreshold(m, tn, varLevel)
	if err != nil {
		return Proved, err
	}
	levelName := make([]string, len(varLevel))
	for name, level := range varLevel {
		levelName[level] = name
	}
	for i := range want {
		if want[i] == got[i] {
			continue
		}
		diff, err := m.Xor(want[i], got[i])
		if err != nil {
			return Proved, err
		}
		assign := m.AnySat(diff)
		cex := make(map[string]bool, len(assign))
		for level, v := range assign {
			cex[levelName[level]] = v
		}
		return Proved, fmt.Errorf("sim: output %s differs; counterexample %v",
			nw.Outputs[i].Name, cex)
	}
	return Proved, nil
}
