package truth

import (
	"math/bits"
	"sort"

	"tels/internal/logic"
)

// Primes returns all prime implicants of the function as cubes over its N
// variables, computed by Quine–McCluskey iterative merging. Cubes are
// packed into uint64 keys (values | dcs<<32) and bucketed by DC mask and
// ones count so only cubes that can actually merge are compared.
func (t *Table) Primes() []logic.Cube {
	type qmCube struct {
		values uint32 // bits for non-DC positions (DC positions are 0)
		dcs    uint32 // bitmask of DC positions
	}
	key := func(c qmCube) uint64 { return uint64(c.values) | uint64(c.dcs)<<32 }

	var current []qmCube
	for m := 0; m < t.Size(); m++ {
		if t.Get(m) {
			current = append(current, qmCube{values: uint32(m)})
		}
	}
	var primes []qmCube
	for len(current) > 0 {
		merged := make([]bool, len(current))
		// Bucket by (dcs, popcount(values)): a merge pairs two cubes with
		// identical DC masks whose values differ in exactly one bit, so
		// their ones counts differ by one.
		type bucketKey struct {
			dcs  uint32
			ones int
		}
		buckets := make(map[bucketKey][]int)
		for i, c := range current {
			buckets[bucketKey{c.dcs, bits.OnesCount32(c.values)}] = append(
				buckets[bucketKey{c.dcs, bits.OnesCount32(c.values)}], i)
		}
		nextSet := make(map[uint64]qmCube)
		for bk, lo := range buckets {
			hi, ok := buckets[bucketKey{bk.dcs, bk.ones + 1}]
			if !ok {
				continue
			}
			for _, a := range lo {
				for _, b := range hi {
					diff := current[a].values ^ current[b].values
					if diff&(diff-1) != 0 {
						continue
					}
					merged[a] = true
					merged[b] = true
					nc := qmCube{values: current[a].values &^ diff, dcs: bk.dcs | diff}
					nextSet[key(nc)] = nc
				}
			}
		}
		for i, c := range current {
			if !merged[i] {
				primes = append(primes, c)
			}
		}
		keys := make([]uint64, 0, len(nextSet))
		for k := range nextSet {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		current = current[:0]
		for _, k := range keys {
			current = append(current, nextSet[k])
		}
	}
	out := make([]logic.Cube, 0, len(primes))
	for _, p := range primes {
		c := logic.NewCube(t.n)
		for i := 0; i < t.n; i++ {
			bit := uint32(1) << uint(i)
			switch {
			case p.dcs&bit != 0:
				c[i] = logic.DC
			case p.values&bit != 0:
				c[i] = logic.Pos
			default:
				c[i] = logic.Neg
			}
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// MinimalSOP returns an irredundant prime cover of the function: all
// essential primes plus a greedy selection covering the remaining minterms.
// The result is exact as a cover (equivalent to t) though not guaranteed
// minimum-cardinality.
func (t *Table) MinimalSOP() logic.Cover {
	return t.MinimalSOPWithDC(nil)
}

// MinimalSOPWithDC returns an irredundant prime cover of an incompletely
// specified function: primes are generated over the union of the ON-set
// and the don't-care set dc, but only true ON-set minterms must be
// covered. The returned cover agrees with t wherever dc is 0 and is free
// on the dc minterms — the classical two-level use of satisfiability
// don't-cares. A nil dc behaves like MinimalSOP.
func (t *Table) MinimalSOPWithDC(dc *Table) logic.Cover {
	expand := t
	if dc != nil {
		t.checkArity(dc)
		expand = t.Or(dc)
	}
	primes := expand.Primes()
	cover := logic.NewCover(t.n)
	if len(primes) == 0 {
		return cover // constant 0
	}
	// Which primes cover which ON-set minterms (don't-cares need not be
	// covered).
	var minterms []int
	for m := 0; m < t.Size(); m++ {
		if t.Get(m) && (dc == nil || !dc.Get(m)) {
			minterms = append(minterms, m)
		}
	}
	if len(minterms) == 0 {
		return cover // ON-set fully inside the DC set: constant 0 works
	}
	assign := make([]bool, t.n)
	covers := make([][]int, len(primes)) // prime index -> minterm indices
	coveredBy := make([][]int, len(minterms))
	for mi, m := range minterms {
		for i := 0; i < t.n; i++ {
			assign[i] = m&(1<<uint(i)) != 0
		}
		for pi, p := range primes {
			if p.Eval(assign) {
				covers[pi] = append(covers[pi], mi)
				coveredBy[mi] = append(coveredBy[mi], pi)
			}
		}
	}
	selected := make([]bool, len(primes))
	covered := make([]bool, len(minterms))
	remaining := len(minterms)
	take := func(pi int) {
		if selected[pi] {
			return
		}
		selected[pi] = true
		for _, mi := range covers[pi] {
			if !covered[mi] {
				covered[mi] = true
				remaining--
			}
		}
	}
	// Essential primes first.
	for mi := range minterms {
		if len(coveredBy[mi]) == 1 {
			take(coveredBy[mi][0])
		}
	}
	// Greedy cover of the rest.
	for remaining > 0 {
		best, bestGain := -1, 0
		for pi := range primes {
			if selected[pi] {
				continue
			}
			gain := 0
			for _, mi := range covers[pi] {
				if !covered[mi] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = pi, gain
			}
		}
		if best < 0 {
			break // unreachable: primes cover all ON minterms
		}
		take(best)
	}
	for pi, p := range primes {
		if selected[pi] {
			cover.AddCube(p.Clone())
		}
	}
	return cover
}
