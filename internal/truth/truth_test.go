package truth

import (
	"math/rand"
	"testing"

	"tels/internal/logic"
)

func randomTable(rng *rand.Rand, n int) *Table {
	t := New(n)
	for m := 0; m < t.Size(); m++ {
		t.Set(m, rng.Intn(2) == 1)
	}
	return t
}

func TestVarAndConst(t *testing.T) {
	x := Var(3, 1)
	for m := 0; m < 8; m++ {
		want := m&2 != 0
		if x.Get(m) != want {
			t.Fatalf("Var(3,1) at %d = %v, want %v", m, x.Get(m), want)
		}
	}
	one := Const(2, true)
	if c, v := one.IsConst(); !c || !v {
		t.Fatal("Const(2,true) should be constant 1")
	}
	zero := Const(2, false)
	if c, v := zero.IsConst(); !c || v {
		t.Fatal("Const(2,false) should be constant 0")
	}
}

func TestBooleanOps(t *testing.T) {
	a, b := Var(2, 0), Var(2, 1)
	and := a.And(b)
	if and.CountOnes() != 1 || !and.Get(3) {
		t.Fatalf("a*b wrong: %s", and)
	}
	or := a.Or(b)
	if or.CountOnes() != 3 || or.Get(0) {
		t.Fatalf("a+b wrong: %s", or)
	}
	xor := a.Xor(b)
	if !xor.Get(1) || !xor.Get(2) || xor.Get(0) || xor.Get(3) {
		t.Fatalf("a^b wrong: %s", xor)
	}
	not := a.Not()
	if !not.Get(0) || not.Get(1) {
		t.Fatalf("!a wrong: %s", not)
	}
}

func TestNotMasksHighBits(t *testing.T) {
	// For n < 6 the complement must not set bits beyond 2^n.
	a := New(3)
	na := a.Not()
	if got, want := na.CountOnes(), 8; got != want {
		t.Fatalf("CountOnes(!0) = %d, want %d", got, want)
	}
	if !na.Equal(Const(3, true)) {
		t.Fatal("!const0 != const1")
	}
}

func TestCofactorAndSupport(t *testing.T) {
	// f = x0*x1 + x2
	f := Var(3, 0).And(Var(3, 1)).Or(Var(3, 2))
	f1 := f.Cofactor(2, true)
	if c, v := f1.IsConst(); !c || !v {
		t.Fatal("f|x2=1 should be constant 1")
	}
	f0 := f.Cofactor(2, false)
	if !f0.Equal(Var(3, 0).And(Var(3, 1))) {
		t.Fatal("f|x2=0 should be x0*x1")
	}
	sup := f.Support()
	if len(sup) != 3 {
		t.Fatalf("Support = %v, want all three", sup)
	}
	g := Var(3, 0).Or(Var(3, 0)) // depends only on x0
	if got := g.Support(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Support = %v, want [0]", got)
	}
}

func TestUnateness(t *testing.T) {
	// f = x0 + !x1: positive in x0, negative in x1.
	f := Var(2, 0).Or(Var(2, 1).Not())
	if u := f.VarUnateness(0); u != PosUnate {
		t.Errorf("x0 unateness = %v, want positive", u)
	}
	if u := f.VarUnateness(1); u != NegUnate {
		t.Errorf("x1 unateness = %v, want negative", u)
	}
	// xor is binate in both.
	x := Var(2, 0).Xor(Var(2, 1))
	if u := x.VarUnateness(0); u != Binate {
		t.Errorf("xor unateness = %v, want binate", u)
	}
	if x.IsUnate() {
		t.Error("xor should not be unate")
	}
	if !f.IsUnate() {
		t.Error("x0 + !x1 should be unate")
	}
	// Independence.
	g := Var(2, 0)
	if u := g.VarUnateness(1); u != Independent {
		t.Errorf("unused var unateness = %v, want independent", u)
	}
}

func TestFromCoverRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(5)
		cv := logic.NewCover(n)
		for c := 0; c < 1+rng.Intn(4); c++ {
			cube := logic.NewCube(n)
			for j := 0; j < n; j++ {
				cube[j] = logic.Phase(rng.Intn(3))
			}
			cv.AddCube(cube)
		}
		tt := FromCover(cv)
		assign := make([]bool, n)
		for m := 0; m < tt.Size(); m++ {
			for i := 0; i < n; i++ {
				assign[i] = m&(1<<uint(i)) != 0
			}
			if tt.Get(m) != cv.Eval(assign) {
				t.Fatalf("iter %d: FromCover disagrees at %d", iter, m)
			}
		}
	}
}

func TestProject(t *testing.T) {
	// f = x1 + x3 over 4 vars; project to [1,3].
	f := Var(4, 1).Or(Var(4, 3))
	g := f.Project([]int{1, 3})
	want := Var(2, 0).Or(Var(2, 1))
	if !g.Equal(want) {
		t.Fatalf("Project = %s, want %s", g, want)
	}
}

func TestProjectPanicsOnDroppedSupport(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Project should panic when dropping a support variable")
		}
	}()
	Var(3, 2).Project([]int{0, 1})
}

func TestSubstituteNeg(t *testing.T) {
	// f = x0*!x1; substituting x1 -> !x1 yields x0*x1.
	f := Var(2, 0).And(Var(2, 1).Not())
	g := f.SubstituteNeg(1)
	if !g.Equal(Var(2, 0).And(Var(2, 1))) {
		t.Fatalf("SubstituteNeg wrong: %s", g)
	}
	// Applying twice restores the function.
	if !g.SubstituteNeg(1).Equal(f) {
		t.Fatal("SubstituteNeg is not an involution")
	}
}

func TestLargeTables(t *testing.T) {
	// Exercise the multi-word path (n > 6).
	n := 8
	f := Var(n, 7).And(Var(n, 0))
	if f.CountOnes() != 64 {
		t.Fatalf("x7*x0 over 8 vars has %d ones, want 64", f.CountOnes())
	}
	if !f.Not().Not().Equal(f) {
		t.Fatal("double complement broken on multi-word table")
	}
	if f.VarUnateness(7) != PosUnate {
		t.Fatal("unateness broken on multi-word table")
	}
}
