package truth

import (
	"math/rand"
	"testing"

	"tels/internal/logic"
)

func TestPrimesXor(t *testing.T) {
	x := Var(2, 0).Xor(Var(2, 1))
	primes := x.Primes()
	if len(primes) != 2 {
		t.Fatalf("xor has %d primes, want 2: %v", len(primes), primes)
	}
	got := map[string]bool{}
	for _, p := range primes {
		got[p.String()] = true
	}
	if !got["01"] || !got["10"] {
		t.Fatalf("xor primes = %v", got)
	}
}

func TestPrimesAbsorb(t *testing.T) {
	// f = x0 + x0*x1 has the single prime x0.
	f := Var(2, 0).Or(Var(2, 0).And(Var(2, 1)))
	primes := f.Primes()
	if len(primes) != 1 || primes[0].String() != "1-" {
		t.Fatalf("primes = %v, want [1-]", primes)
	}
}

func TestPrimesConstant(t *testing.T) {
	one := Const(2, true)
	primes := one.Primes()
	if len(primes) != 1 || !primes[0].IsUniverse() {
		t.Fatalf("constant-1 primes = %v, want the universe", primes)
	}
	if got := Const(2, false).Primes(); len(got) != 0 {
		t.Fatalf("constant-0 primes = %v, want none", got)
	}
}

func primeOracle(tt *Table, c logic.Cube) bool {
	// c is an implicant of tt and no single literal can be dropped.
	cover := logic.NewCover(tt.N())
	cover.AddCube(c)
	if !FromCover(cover).implies(tt) {
		return false
	}
	for i, p := range c {
		if p == logic.DC {
			continue
		}
		bigger := logic.NewCover(tt.N())
		bigger.AddCube(c.Without(i))
		if FromCover(bigger).implies(tt) {
			return false
		}
	}
	return true
}

func TestPrimesAreExactlyPrimes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 120; iter++ {
		n := 1 + rng.Intn(4)
		tt := randomTable(rng, n)
		primes := tt.Primes()
		seen := map[string]bool{}
		for _, p := range primes {
			if !primeOracle(tt, p) {
				t.Fatalf("iter %d: %v is not prime for %s", iter, p, tt)
			}
			seen[p.String()] = true
		}
		// Completeness: every implicant cube that the oracle says is prime
		// must be listed (enumerate all 3^n cubes).
		total := 1
		for i := 0; i < n; i++ {
			total *= 3
		}
		for code := 0; code < total; code++ {
			c := logic.NewCube(n)
			x := code
			empty := false
			for i := 0; i < n; i++ {
				c[i] = logic.Phase(x % 3)
				x /= 3
				_ = empty
			}
			if primeOracle(tt, c) && !seen[c.String()] {
				t.Fatalf("iter %d: prime %v missing from %v (f=%s)", iter, c, primes, tt)
			}
		}
	}
}

func TestMinimalSOPEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(5)
		tt := randomTable(rng, n)
		cover := tt.MinimalSOP()
		if !FromCover(cover).Equal(tt) {
			t.Fatalf("iter %d: MinimalSOP not equivalent (f=%s, cover=%v)", iter, tt, cover)
		}
	}
}

func TestMinimalSOPIrredundant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 120; iter++ {
		n := 1 + rng.Intn(4)
		tt := randomTable(rng, n)
		cover := tt.MinimalSOP()
		for drop := range cover.Cubes {
			smaller := logic.NewCover(n)
			for i, c := range cover.Cubes {
				if i != drop {
					smaller.AddCube(c)
				}
			}
			if FromCover(smaller).Equal(tt) {
				t.Fatalf("iter %d: cube %d of %v is redundant for %s", iter, drop, cover, tt)
			}
		}
	}
}

func TestMinimalSOPUnatePhases(t *testing.T) {
	// For a unate function, the minimal prime cover uses each variable in
	// only its unate phase (primes of unate functions are unate).
	f := Var(3, 0).Or(Var(3, 1).Not().And(Var(3, 2)))
	cover := f.MinimalSOP()
	u := cover.Usage()
	if u[0].Neg != 0 || u[1].Pos != 0 || u[2].Neg != 0 {
		t.Fatalf("unate cover uses wrong phases: %v", cover)
	}
}

func TestMinimalSOPWithDC(t *testing.T) {
	// f = x0*x1 with don't cares on every minterm where x0 != x1: the
	// cover may expand to the single literal x0 (or x1).
	on := Var(2, 0).And(Var(2, 1))
	dc := Var(2, 0).Xor(Var(2, 1))
	cover := on.MinimalSOPWithDC(dc)
	if cover.LiteralCount() != 1 {
		t.Fatalf("cover = %v, want a single literal", cover)
	}
	// The cover must agree with f outside the DC set.
	got := FromCover(cover)
	for m := 0; m < 4; m++ {
		if dc.Get(m) {
			continue
		}
		if got.Get(m) != on.Get(m) {
			t.Fatalf("cover differs from f at care minterm %d", m)
		}
	}
}

func TestMinimalSOPWithDCRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(4)
		on := randomTable(rng, n)
		dc := randomTable(rng, n)
		cover := on.MinimalSOPWithDC(dc)
		got := FromCover(cover)
		for m := 0; m < on.Size(); m++ {
			if dc.Get(m) {
				continue
			}
			if got.Get(m) != on.Get(m) {
				t.Fatalf("iter %d: cover differs at care minterm %d", iter, m)
			}
		}
		// More don't cares can only help: literal count must not exceed
		// the DC-free minimization.
		if cover.LiteralCount() > on.MinimalSOP().LiteralCount() {
			t.Fatalf("iter %d: DC minimization worse than exact", iter)
		}
	}
}

func TestMinimalSOPWithDCFullDC(t *testing.T) {
	on := Var(2, 0)
	dc := Const(2, true)
	cover := on.MinimalSOPWithDC(dc)
	if !cover.IsZero() {
		t.Fatalf("fully-DC function should minimize to constant 0, got %v", cover)
	}
}
