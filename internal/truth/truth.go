// Package truth implements an exact truth-table engine for small Boolean
// functions (up to 24 variables). The threshold synthesizer works on
// collapsed node functions whose support is bounded by the fanin
// restriction, so exact bit-level manipulation is both affordable and
// removes any dependence on cover minimality: unateness, support membership
// and equivalence are all decided exactly here.
package truth

import (
	"fmt"
	"math/bits"

	"tels/internal/logic"
)

// MaxVars is the largest supported variable count. 2^24 bits = 2 MiB per
// table; collapsed functions in practice have at most a dozen variables.
const MaxVars = 24

// Table is the truth table of a Boolean function of N variables. Bit m of
// the table is the function value on the assignment whose i-th variable is
// bit i of m.
type Table struct {
	n    int
	bits []uint64
}

// New returns the constant-0 table of n variables.
func New(n int) *Table {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("truth: variable count %d out of range [0,%d]", n, MaxVars))
	}
	return &Table{n: n, bits: make([]uint64, wordsFor(n))}
}

func wordsFor(n int) int {
	size := 1 << uint(n)
	if size < 64 {
		return 1
	}
	return size / 64
}

// N returns the number of variables.
func (t *Table) N() int { return t.n }

// Words exposes the packed minterm bits (64 minterms per word, unused
// high bits of the final word masked off). The returned slice aliases the
// table's storage and must not be modified; it exists so callers can hash
// a table without walking minterms one by one.
func (t *Table) Words() []uint64 {
	t.bits[len(t.bits)-1] &= t.mask()
	return t.bits
}

// Size returns the number of minterms, 2^N.
func (t *Table) Size() int { return 1 << uint(t.n) }

// Get reports the function value at minterm m.
func (t *Table) Get(m int) bool {
	return t.bits[m>>6]&(1<<uint(m&63)) != 0
}

// Set assigns the function value at minterm m.
func (t *Table) Set(m int, v bool) {
	if v {
		t.bits[m>>6] |= 1 << uint(m&63)
	} else {
		t.bits[m>>6] &^= 1 << uint(m&63)
	}
}

// mask returns the valid-bit mask for the final word of a table with fewer
// than 64 minterms.
func (t *Table) mask() uint64 {
	if t.Size() >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(t.Size())) - 1
}

// Clone returns an independent copy.
func (t *Table) Clone() *Table {
	u := New(t.n)
	copy(u.bits, t.bits)
	return u
}

// Const returns the constant table of n variables with the given value.
func Const(n int, v bool) *Table {
	t := New(n)
	if v {
		for i := range t.bits {
			t.bits[i] = ^uint64(0)
		}
		t.bits[len(t.bits)-1] &= t.mask()
		if t.Size() < 64 {
			t.bits[0] &= t.mask()
		}
	}
	return t
}

// Var returns the table of the projection function x_i over n variables.
func Var(n, i int) *Table {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("truth: variable %d out of range for %d-variable table", i, n))
	}
	t := New(n)
	for m := 0; m < t.Size(); m++ {
		if m&(1<<uint(i)) != 0 {
			t.Set(m, true)
		}
	}
	return t
}

// Not returns the complement function.
func (t *Table) Not() *Table {
	u := New(t.n)
	for i := range t.bits {
		u.bits[i] = ^t.bits[i]
	}
	u.bits[len(u.bits)-1] &= t.mask()
	if t.Size() < 64 {
		u.bits[0] &= t.mask()
	}
	return u
}

// And returns the conjunction of two tables of the same arity.
func (t *Table) And(u *Table) *Table {
	t.checkArity(u)
	v := New(t.n)
	for i := range t.bits {
		v.bits[i] = t.bits[i] & u.bits[i]
	}
	return v
}

// Or returns the disjunction of two tables of the same arity.
func (t *Table) Or(u *Table) *Table {
	t.checkArity(u)
	v := New(t.n)
	for i := range t.bits {
		v.bits[i] = t.bits[i] | u.bits[i]
	}
	return v
}

// Xor returns the exclusive-or of two tables of the same arity.
func (t *Table) Xor(u *Table) *Table {
	t.checkArity(u)
	v := New(t.n)
	for i := range t.bits {
		v.bits[i] = t.bits[i] ^ u.bits[i]
	}
	return v
}

func (t *Table) checkArity(u *Table) {
	if t.n != u.n {
		panic(fmt.Sprintf("truth: arity mismatch %d vs %d", t.n, u.n))
	}
}

// Equal reports whether two tables denote the same function.
func (t *Table) Equal(u *Table) bool {
	if t.n != u.n {
		return false
	}
	for i := range t.bits {
		if t.bits[i] != u.bits[i] {
			return false
		}
	}
	return true
}

// IsConst reports whether the function is constant, and its value.
func (t *Table) IsConst() (bool, bool) {
	ones := t.CountOnes()
	if ones == 0 {
		return true, false
	}
	if ones == t.Size() {
		return true, true
	}
	return false, false
}

// CountOnes returns the number of ON-set minterms.
func (t *Table) CountOnes() int {
	n := 0
	for _, w := range t.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Eval evaluates the function on an assignment of all N variables.
func (t *Table) Eval(assign []bool) bool {
	m := 0
	for i, v := range assign {
		if v {
			m |= 1 << uint(i)
		}
	}
	return t.Get(m)
}

// Cofactor returns the cofactor with respect to variable i fixed at value v.
// The result still has N variables but no longer depends on variable i.
func (t *Table) Cofactor(i int, v bool) *Table {
	u := New(t.n)
	step := 1 << uint(i)
	for m := 0; m < t.Size(); m++ {
		src := m
		if v {
			src = m | step
		} else {
			src = m &^ step
		}
		u.Set(m, t.Get(src))
	}
	return u
}

// DependsOn reports whether the function depends on variable i.
func (t *Table) DependsOn(i int) bool {
	return !t.Cofactor(i, false).Equal(t.Cofactor(i, true))
}

// Support returns the indices of variables the function truly depends on.
func (t *Table) Support() []int {
	var s []int
	for i := 0; i < t.n; i++ {
		if t.DependsOn(i) {
			s = append(s, i)
		}
	}
	return s
}

// Unateness classifies a variable's influence on the function.
type Unateness int

// The possible unateness classifications of one variable.
const (
	Independent Unateness = iota // f does not depend on the variable
	PosUnate                     // f is positive (monotone increasing) in it
	NegUnate                     // f is negative (monotone decreasing) in it
	Binate                       // f depends on it non-monotonically
)

func (u Unateness) String() string {
	switch u {
	case Independent:
		return "independent"
	case PosUnate:
		return "positive-unate"
	case NegUnate:
		return "negative-unate"
	case Binate:
		return "binate"
	}
	return "unknown"
}

// implies reports whether the ON-set of t is a subset of the ON-set of u.
func (t *Table) implies(u *Table) bool {
	for i := range t.bits {
		if t.bits[i]&^u.bits[i] != 0 {
			return false
		}
	}
	return true
}

// VarUnateness classifies variable i exactly via cofactor containment:
// f is positive unate in x iff f|x=0 implies f|x=1.
func (t *Table) VarUnateness(i int) Unateness {
	f0 := t.Cofactor(i, false)
	f1 := t.Cofactor(i, true)
	le := f0.implies(f1)
	ge := f1.implies(f0)
	switch {
	case le && ge:
		return Independent
	case le:
		return PosUnate
	case ge:
		return NegUnate
	default:
		return Binate
	}
}

// IsUnate reports whether the function is unate in every variable it
// depends on.
func (t *Table) IsUnate() bool {
	for i := 0; i < t.n; i++ {
		if t.VarUnateness(i) == Binate {
			return false
		}
	}
	return true
}

// FromCover builds the table of a cover.
func FromCover(f logic.Cover) *Table {
	t := New(f.N)
	assign := make([]bool, f.N)
	for m := 0; m < t.Size(); m++ {
		for i := 0; i < f.N; i++ {
			assign[i] = m&(1<<uint(i)) != 0
		}
		if f.Eval(assign) {
			t.Set(m, true)
		}
	}
	return t
}

// Project returns the function re-expressed over only the given variables,
// which must include the true support. The k-th variable of the result is
// vars[k] of the original.
func (t *Table) Project(vars []int) *Table {
	for _, s := range t.Support() {
		found := false
		for _, v := range vars {
			if v == s {
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("truth: Project drops support variable %d", s))
		}
	}
	u := New(len(vars))
	for m := 0; m < u.Size(); m++ {
		src := 0
		for k, v := range vars {
			if m&(1<<uint(k)) != 0 {
				src |= 1 << uint(v)
			}
		}
		u.Set(m, t.Get(src))
	}
	return u
}

// SubstituteNeg returns the function with variable i replaced by its
// complement (the phase-substitution used to put unate functions in
// positive form).
func (t *Table) SubstituteNeg(i int) *Table {
	u := New(t.n)
	step := 1 << uint(i)
	for m := 0; m < t.Size(); m++ {
		u.Set(m, t.Get(m^step))
	}
	return u
}

// String renders the table as a bit string, minterm 0 first.
func (t *Table) String() string {
	b := make([]byte, t.Size())
	for m := 0; m < t.Size(); m++ {
		if t.Get(m) {
			b[m] = '1'
		} else {
			b[m] = '0'
		}
	}
	return string(b)
}
