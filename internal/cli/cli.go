// Package cli centralizes the error-path conventions shared by the TELS
// command-line tools: diagnostics go to stderr prefixed with the tool
// name, failures exit non-zero, and informational chatter respects a
// common -q quiet flag.
package cli

import (
	"fmt"
	"io"
	"os"
)

// Tool carries a command's name and verbosity through its run functions.
type Tool struct {
	// Name prefixes every diagnostic, e.g. "tels: ...".
	Name string
	// Quiet suppresses Infof output (the -q flag).
	Quiet bool
	// Stderr defaults to os.Stderr; tests may redirect it.
	Stderr io.Writer
}

// New returns a tool writing diagnostics to os.Stderr.
func New(name string) *Tool {
	return &Tool{Name: name, Stderr: os.Stderr}
}

func (t *Tool) errw() io.Writer {
	if t.Stderr != nil {
		return t.Stderr
	}
	return os.Stderr
}

// Infof prints a status line to stderr unless the tool is quiet.
func (t *Tool) Infof(format string, args ...any) {
	if t.Quiet {
		return
	}
	fmt.Fprintf(t.errw(), t.Name+": "+format+"\n", args...)
}

// Errorf prints a diagnostic to stderr regardless of quietness.
func (t *Tool) Errorf(format string, args ...any) {
	fmt.Fprintf(t.errw(), t.Name+": "+format+"\n", args...)
}

// Fail prints the error and exits 1. A nil error is a no-op.
func (t *Tool) Fail(err error) {
	if err == nil {
		return
	}
	t.Errorf("%v", err)
	os.Exit(1)
}

// Usage prints a usage diagnostic and exits 2 (flag.Parse's convention
// for bad invocations).
func (t *Tool) Usage(format string, args ...any) {
	t.Errorf(format, args...)
	os.Exit(2)
}
