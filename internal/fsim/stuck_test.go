package fsim

import (
	"encoding/json"
	"math/rand"
	"testing"

	"tels/internal/core"
	"tels/internal/logic"
	"tels/internal/network"
)

// andOrPair builds a two-output netlist whose blame ranking under
// stuck-at defects is known a priori: g_and = a∧b and g_or = a∨b, both
// primary outputs. Over the four polarity combinations of StuckAt{P:1},
// g_and flips 1 or 3 of the four lanes (expected 2 per trial) and is
// first in topological order, so it takes the blame on every lane it
// flips; g_or is only blamed on lanes g_and leaves clean (expected 1 per
// trial). The ranking must therefore come out [g_and, g_or].
func andOrPair(t *testing.T) (*network.Network, *core.Network) {
	t.Helper()
	nw := network.New("pair")
	a, b := nw.AddInput("a"), nw.AddInput("b")
	ga := nw.AddNode("g_and", []*network.Node{a, b}, logic.MustCover("11"))
	go_ := nw.AddNode("g_or", []*network.Node{a, b}, logic.MustCover("1-", "-1"))
	nw.MarkOutput(ga)
	nw.MarkOutput(go_)
	tn := core.NewNetwork("pair")
	tn.AddInput("a")
	tn.AddInput("b")
	if err := tn.AddGate(&core.Gate{Name: "g_and", Inputs: []string{"a", "b"}, Weights: []int{1, 1}, T: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tn.AddGate(&core.Gate{Name: "g_or", Inputs: []string{"a", "b"}, Weights: []int{1, 1}, T: 1}); err != nil {
		t.Fatal(err)
	}
	tn.MarkOutput("g_and")
	tn.MarkOutput("g_or")
	return nw, tn
}

// TestStuckAtBlameRanking checks the first-flip attribution end to end
// under the StuckAt model: every trial fails (some lane always flips at
// P=1), both gates appear in Critical, and the topologically earlier
// g_and — which flips twice as many lanes in expectation — outranks
// g_or.
func TestStuckAtBlameRanking(t *testing.T) {
	nw, tn := andOrPair(t)
	cfg := YieldConfig{MaxTrials: 200, MinTrials: 200, Seed: 5}
	rep, err := EstimateYield(nw, tn, StuckAt{P: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != rep.Trials || rep.Yield != 0 {
		t.Fatalf("P=1 stuck-at must fail every trial: %+v", rep)
	}
	if len(rep.Critical) != 2 {
		t.Fatalf("both gates should carry blame: %+v", rep.Critical)
	}
	first, second := rep.Critical[0], rep.Critical[1]
	if first.Gate != "g_and" || second.Gate != "g_or" {
		t.Fatalf("ranking = [%s, %s], want [g_and, g_or]", first.Gate, second.Gate)
	}
	if first.Blamed <= second.Blamed {
		t.Fatalf("g_and should out-blame g_or: %+v", rep.Critical)
	}
	for _, gi := range rep.Critical {
		if gi.Flipped < gi.Blamed {
			t.Fatalf("%s: flipped %d < blamed %d", gi.Gate, gi.Flipped, gi.Blamed)
		}
		if gi.Blamed == 0 {
			t.Fatalf("%s: never blamed despite P=1 faults: %+v", gi.Gate, rep.Critical)
		}
	}
	// Expected blame per trial is 2 lanes for g_and and 1 for g_or;
	// allow generous Monte-Carlo slack around the 2:1 ratio.
	if first.Blamed < rep.Trials || second.Blamed > rep.Trials {
		t.Fatalf("blame far from the a-priori 2:1 split over %d trials: %+v", rep.Trials, rep.Critical)
	}
}

// TestStuckAtSessionMatchesOneShot: estimating through a reused
// YieldSession must reproduce the standalone EstimateYield report
// exactly, stuck-at model included.
func TestStuckAtSessionMatchesOneShot(t *testing.T) {
	nw, tn := andOrPair(t)
	cfg := YieldConfig{MaxTrials: 300, MinTrials: 64, Seed: 9}
	model := StuckAt{P: 0.3}
	one, err := EstimateYield(nw, tn, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewYieldSession(nw, tn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := sess.EstimateFor(tn, model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(one)
		b, _ := json.Marshal(got)
		if string(a) != string(b) {
			t.Fatalf("session estimate %d diverges:\n one-shot: %s\n session:  %s", i, a, b)
		}
	}
}

// alternateStuck is a deterministic defect model that sticks exactly one
// gate output at 1 per trial, cycling through the gates in order. It
// exists to manufacture exact blame ties between gates in disjoint
// fanin cones.
type alternateStuck struct{ trial int }

func (m *alternateStuck) Name() string { return "alternate-stuck" }

func (m *alternateStuck) Draw(s *ThreshSim, _ *rand.Rand) *Defect {
	stuck := make([]int8, len(s.GateOrder()))
	for i := range stuck {
		stuck[i] = -1
	}
	stuck[m.trial%len(stuck)] = 1
	m.trial++
	return &Defect{Stuck: stuck}
}

// TestCriticalTieBreakByName: two buffer gates in disjoint cones, each
// stuck-at-1 on alternate trials, accumulate identical blame and flip
// counts. The ranking's final tie-break must order them by gate name —
// "alpha" before "zeta" — even though "zeta" comes first topologically,
// and the report must serialize to identical bytes on every run.
func TestCriticalTieBreakByName(t *testing.T) {
	nw := network.New("tie")
	a, b := nw.AddInput("a"), nw.AddInput("b")
	z := nw.AddNode("zeta", []*network.Node{a}, logic.MustCover("1"))
	al := nw.AddNode("alpha", []*network.Node{b}, logic.MustCover("1"))
	nw.MarkOutput(z)
	nw.MarkOutput(al)
	tn := core.NewNetwork("tie")
	tn.AddInput("a")
	tn.AddInput("b")
	if err := tn.AddGate(&core.Gate{Name: "zeta", Inputs: []string{"a"}, Weights: []int{1}, T: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tn.AddGate(&core.Gate{Name: "alpha", Inputs: []string{"b"}, Weights: []int{1}, T: 1}); err != nil {
		t.Fatal(err)
	}
	tn.MarkOutput("zeta")
	tn.MarkOutput("alpha")

	// Two trials, no early stop: trial 0 sticks zeta (flips the two a=0
	// lanes), trial 1 sticks alpha (flips the two b=0 lanes). Each gate
	// ends at Blamed=2, Flipped=2.
	cfg := YieldConfig{MaxTrials: 2, MinTrials: 2, Seed: 1}
	run := func() *YieldReport {
		rep, err := EstimateYield(nw, tn, &alternateStuck{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	want := []GateImpact{
		{Gate: "alpha", Blamed: 2, Flipped: 2},
		{Gate: "zeta", Blamed: 2, Flipped: 2},
	}
	if len(rep.Critical) != 2 || rep.Critical[0] != want[0] || rep.Critical[1] != want[1] {
		t.Fatalf("tie not broken by name: %+v, want %+v", rep.Critical, want)
	}
	base, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := json.Marshal(run())
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(base) {
			t.Fatalf("run %d report not byte-stable:\n%s\nvs\n%s", i, base, again)
		}
	}
}

// TestCriticalByteStable: repeated estimates with randomized models and
// equal seeds serialize to identical bytes — the determinism contract
// the resyn loop and the service cache both lean on.
func TestCriticalByteStable(t *testing.T) {
	nw, tn := andOrPair(t)
	for _, model := range []DefectModel{
		StuckAt{P: 0.4},
		WeightVariation{V: 1.5},
		ThresholdDrift{V: 1.5},
	} {
		cfg := YieldConfig{MaxTrials: 250, MinTrials: 64, Seed: 13}
		base, err := EstimateYield(nw, tn, model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		bb, _ := json.Marshal(base)
		for i := 0; i < 3; i++ {
			rep, err := EstimateYield(nw, tn, model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rb, _ := json.Marshal(rep)
			if string(rb) != string(bb) {
				t.Fatalf("%s run %d not byte-stable:\n%s\nvs\n%s", model.Name(), i, bb, rb)
			}
		}
	}
}
