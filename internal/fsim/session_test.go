package fsim

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"tels/internal/core"
	"tels/internal/logic"
	"tels/internal/network"
)

// wideAndPair builds an n-input AND tree (n > ExhaustiveInputs exercises
// the randomly sampled batch path) as both network kinds.
func wideAndPair(t *testing.T, n int) (*network.Network, *core.Network) {
	t.Helper()
	nw := network.New("wide")
	tn := core.NewNetwork("wide")
	var half [2][]*network.Node
	var names [2][]string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("x%d", i)
		half[i%2] = append(half[i%2], nw.AddInput(name))
		tn.AddInput(name)
		names[i%2] = append(names[i%2], name)
	}
	var tops []*network.Node
	for h := 0; h < 2; h++ {
		cube := make([]byte, len(half[h]))
		for i := range cube {
			cube[i] = '1'
		}
		node := nw.AddNode(fmt.Sprintf("h%d", h), half[h], logic.MustCover(string(cube)))
		tops = append(tops, node)
		w := make([]int, len(names[h]))
		for i := range w {
			w[i] = 1
		}
		if err := tn.AddGate(&core.Gate{Name: fmt.Sprintf("h%d", h), Inputs: names[h], Weights: w, T: len(w)}); err != nil {
			t.Fatal(err)
		}
	}
	f := nw.AddNode("f", tops, logic.MustCover("11"))
	nw.MarkOutput(f)
	if err := tn.AddGate(&core.Gate{Name: "f", Inputs: []string{"h0", "h1"}, Weights: []int{1, 1}, T: 2}); err != nil {
		t.Fatal(err)
	}
	tn.MarkOutput("f")
	return nw, tn
}

func reportsEqual(a, b *YieldReport) bool {
	return a.Trials == b.Trials && a.Failures == b.Failures &&
		a.FailureRate == b.FailureRate && a.Lo == b.Lo && a.Hi == b.Hi &&
		a.Vectors == b.Vectors && a.EarlyStopped == b.EarlyStopped &&
		reflect.DeepEqual(a.Critical, b.Critical)
}

// TestYieldSessionMatchesEstimateYield: on an exhaustive batch, a shared
// session reproduces the single-call estimator bit for bit, for every
// model and any per-point seed.
func TestYieldSessionMatchesEstimateYield(t *testing.T) {
	nw, tn := andPair(t)
	sess, err := NewYieldSession(nw, tn, YieldConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	models := []DefectModel{
		WeightVariation{V: 2.5}, ThresholdDrift{V: 1.5}, StuckAt{P: 0.3},
	}
	for _, model := range models {
		for _, seed := range []int64{1, 7, 99} {
			cfg := YieldConfig{MaxTrials: 150, MinTrials: 16, Seed: seed}
			want, err := EstimateYield(nw, tn, model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sess.Estimate(model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reportsEqual(got, want) {
				t.Fatalf("%s seed %d: session %+v != single-call %+v", model.Name(), seed, got, want)
			}
		}
	}
}

// TestYieldSessionWideMatches: with a randomly sampled batch (more inputs
// than ExhaustiveInputs) the session still matches the single-call
// estimator when the point seed equals the session's build seed.
func TestYieldSessionWideMatches(t *testing.T) {
	nw, tn := wideAndPair(t, ExhaustiveInputs+2)
	cfg := YieldConfig{MaxTrials: 60, MinTrials: 8, Samples: 256, Seed: 5}
	sess, err := NewYieldSession(nw, tn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Vectors() != 256 {
		t.Fatalf("vectors = %d, want 256", sess.Vectors())
	}
	want, err := EstimateYield(nw, tn, WeightVariation{V: 3}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Estimate(WeightVariation{V: 3}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reportsEqual(got, want) {
		t.Fatalf("session %+v != single-call %+v", got, want)
	}
}

// TestYieldSessionConcurrent: Estimate is safe to call from many
// goroutines on one session and stays deterministic under contention.
func TestYieldSessionConcurrent(t *testing.T) {
	nw, tn := andPair(t)
	sess, err := NewYieldSession(nw, tn, YieldConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	want := make([]*YieldReport, n)
	for i := 0; i < n; i++ {
		cfg := YieldConfig{MaxTrials: 120, MinTrials: 16, Seed: int64(i)}
		want[i], err = sess.Estimate(WeightVariation{V: 1.5 + float64(i)/4}, cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	got := make([]*YieldReport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := YieldConfig{MaxTrials: 120, MinTrials: 16, Seed: int64(i)}
			got[i], errs[i] = sess.Estimate(WeightVariation{V: 1.5 + float64(i)/4}, cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reportsEqual(got[i], want[i]) {
			t.Fatalf("point %d: concurrent %+v != sequential %+v", i, got[i], want[i])
		}
	}
}
