package fsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// validWords is the number of 64-bit words carrying valid lanes; rows of
// any width agree on exactly these (pad words differ only in count).
func validWords(n int) int { return (n + 63) / 64 }

// sameValid fails unless packed rows a (width wa) and b agree on every
// valid word under the n-vector mask.
func sameValid(t *testing.T, label string, n int, a, b [][]uint64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: output counts differ: %d vs %d", label, len(a), len(b))
	}
	valid := validWords(n)
	var tail uint64 = ^uint64(0)
	if rem := n % 64; rem != 0 {
		tail = uint64(1)<<uint(rem) - 1
	}
	for o := range a {
		for wi := 0; wi < valid; wi++ {
			mask := ^uint64(0)
			if wi == valid-1 {
				mask = tail
			}
			if a[o][wi]&mask != b[o][wi]&mask {
				t.Fatalf("%s: output %d word %d: %016x vs %016x",
					label, o, wi, a[o][wi]&mask, b[o][wi]&mask)
			}
		}
	}
}

func cloneRows(rows [][]uint64) [][]uint64 {
	out := make([][]uint64, len(rows))
	for i := range rows {
		out[i] = append([]uint64(nil), rows[i]...)
	}
	return out
}

// TestWidthBasics pins the Width type's arithmetic and parsing.
func TestWidthBasics(t *testing.T) {
	for _, w := range Widths() {
		if !w.Valid() {
			t.Fatalf("width %d invalid", w)
		}
		if w.Lanes() != 64*w.Words() {
			t.Fatalf("width %d: lanes %d != 64×%d", w, w.Lanes(), w.Words())
		}
		got, err := ParseWidth(w.String())
		if err != nil || got != w {
			t.Fatalf("ParseWidth(%q) = %d, %v", w.String(), got, err)
		}
	}
	for _, bad := range []string{"", "0", "2", "16", "w4"} {
		if _, err := ParseWidth(bad); err == nil {
			t.Fatalf("ParseWidth(%q) accepted", bad)
		}
	}
	if Width(0).or0() != DefaultWidth {
		t.Fatal("zero width does not default")
	}
}

// TestBatchLayoutAcrossWidths: batches of every width carry identical
// valid bits at identical flat positions, for exhaustive and random
// fills, including masked tails (n not a multiple of 64·W).
func TestBatchLayoutAcrossWidths(t *testing.T) {
	inputs := []string{"a", "b", "c", "d", "e", "f", "g"}
	base, err := ExhaustiveW(inputs, W1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []Width{W4, W8} {
		b, err := ExhaustiveW(inputs, w)
		if err != nil {
			t.Fatal(err)
		}
		if b.Len() != base.Len() || b.Width() != w {
			t.Fatalf("width %d: len=%d width=%d", w, b.Len(), b.Width())
		}
		if b.Words() != b.Blocks()*w.Words() {
			t.Fatalf("width %d: words %d != blocks %d × %d", w, b.Words(), b.Blocks(), w.Words())
		}
		sameValid(t, fmt.Sprintf("exhaustive W%d", w), b.Len(), base.words, b.words)
	}
	// 130 vectors: a partial word at every width, plus pad words at W4/W8.
	for _, n := range []int{100, 130, 300} {
		base := RandomW(inputs, n, rand.New(rand.NewSource(5)), W1)
		for _, w := range []Width{W4, W8} {
			b := RandomW(inputs, n, rand.New(rand.NewSource(5)), w)
			sameValid(t, fmt.Sprintf("random n=%d W%d", n, w), n, base.words, b.words)
			for wi := validWords(n); wi < b.Words(); wi++ {
				if b.mask[wi] != 0 {
					t.Fatalf("n=%d W%d: pad word %d has mask bits", n, w, wi)
				}
			}
		}
	}
}

// TestPackedEvalAcrossWidths: Boolean, exact-threshold, perturbed, and
// defect evaluation produce identical valid words at W=1, 4, and 8 on
// random networks (the W=1 path is itself pinned to the scalar oracle by
// the fsim_test.go property tests, so transitively all widths match it).
func TestPackedEvalAcrossWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(8)
		nw := randomBoolNet(rng, n)
		tn := randomThreshNet(rng, n)
		bsim, err := CompileBool(nw)
		if err != nil {
			t.Fatal(err)
		}
		tsim, err := CompileThresh(tn)
		if err != nil {
			t.Fatal(err)
		}
		noise := make([][]float64, len(tsim.GateOrder()))
		stuck := make([]int8, len(tsim.GateOrder()))
		for gi, g := range tsim.GateOrder() {
			ns := make([]float64, len(g.Weights))
			for i := range ns {
				ns[i] = 2 * (rng.Float64() - 0.5)
			}
			noise[gi] = ns
			stuck[gi] = int8(rng.Intn(3) - 1) // -1, 0, or 1
		}
		defect := &Defect{WeightNoise: noise, Stuck: stuck}

		type ref struct {
			boolOut, threshOut, pertOut, defOut, trace [][]uint64
			vectors                                    int
		}
		var base *ref
		for _, w := range Widths() {
			bb, err := ExhaustiveW(inputNames(nw), w)
			if err != nil {
				t.Fatal(err)
			}
			bt, err := ExhaustiveW(tn.Inputs, w)
			if err != nil {
				t.Fatal(err)
			}
			bo, err := bsim.Eval(bb)
			if err != nil {
				t.Fatal(err)
			}
			cur := &ref{boolOut: cloneRows(bo), vectors: bt.Len()}
			to, err := tsim.Eval(bt)
			if err != nil {
				t.Fatal(err)
			}
			cur.threshOut = cloneRows(to)
			po, err := tsim.EvalPerturbed(bt, noise)
			if err != nil {
				t.Fatal(err)
			}
			cur.pertOut = cloneRows(po)
			trace := makeTrace(len(tsim.GateOrder()), bt.Words())
			do, err := tsim.EvalDefect(bt, defect, trace)
			if err != nil {
				t.Fatal(err)
			}
			cur.defOut = cloneRows(do)
			cur.trace = trace
			if base == nil {
				base = cur
				continue
			}
			label := fmt.Sprintf("trial %d W%d", trial, w)
			sameValid(t, label+" bool", 1<<uint(n), base.boolOut, cur.boolOut)
			sameValid(t, label+" thresh", cur.vectors, base.threshOut, cur.threshOut)
			sameValid(t, label+" perturbed", cur.vectors, base.pertOut, cur.pertOut)
			sameValid(t, label+" defect", cur.vectors, base.defOut, cur.defOut)
			sameValid(t, label+" trace", cur.vectors, base.trace, cur.trace)
		}
	}
}

// TestDiffersAcrossWidths: Differs and FirstDiff agree at every width,
// including on a masked tail where only invalid lanes differ.
func TestDiffersAcrossWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tn := randomThreshNet(rng, 6)
	tsim, err := CompileThresh(tn)
	if err != nil {
		t.Fatal(err)
	}
	noise := make([][]float64, len(tsim.GateOrder()))
	for gi, g := range tsim.GateOrder() {
		ns := make([]float64, len(g.Weights))
		for i := range ns {
			ns[i] = 3 * (rng.Float64() - 0.5)
		}
		noise[gi] = ns
	}
	type result struct {
		differs  bool
		vec, out int
		found    bool
	}
	var base *result
	for _, w := range Widths() {
		b, err := ExhaustiveW(tn.Inputs, w)
		if err != nil {
			t.Fatal(err)
		}
		clean, err := tsim.Eval(b)
		if err != nil {
			t.Fatal(err)
		}
		golden := cloneRows(clean)
		pert, err := tsim.EvalPerturbed(b, noise)
		if err != nil {
			t.Fatal(err)
		}
		cur := &result{differs: b.Differs(golden, pert)}
		cur.vec, cur.out, cur.found = b.FirstDiff(golden, pert)
		if base == nil {
			base = cur
			continue
		}
		if *base != *cur {
			t.Fatalf("W%d: %+v, want %+v", w, cur, base)
		}
	}

	// Masked tail: differences confined to invalid lanes are invisible at
	// every width.
	for _, w := range Widths() {
		b := RandomW([]string{"x"}, 70, rand.New(rand.NewSource(1)), w)
		a := make([][]uint64, 1)
		c := make([][]uint64, 1)
		a[0] = make([]uint64, b.Words())
		c[0] = make([]uint64, b.Words())
		ones := ^uint64(0)
		c[0][1] = ones << 6 // lanes 70.. of word 1 are masked
		if w != W1 && b.Words() > 2 {
			c[0][2] = ^uint64(0) // a pure pad word
		}
		if b.Differs(a, c) {
			t.Fatalf("W%d: masked-lane difference detected", w)
		}
		c[0][1] |= 1 << 5 // lane 69: valid
		vec, out, found := b.FirstDiff(a, c)
		if !b.Differs(a, c) || !found || vec != 69 || out != 0 {
			t.Fatalf("W%d: FirstDiff = (%d, %d, %v), want (69, 0, true)", w, vec, out, found)
		}
	}
}

// TestYieldAcrossWidths: EstimateYield reports — failure counts, CI
// bounds, early stopping, and the Critical ranking — are byte-identical
// at W=1, 4, and 8, on both exhaustive and randomly sampled batches.
func TestYieldAcrossWidths(t *testing.T) {
	cases := []struct {
		name string
		n    int
	}{
		{"exhaustive", 6},
		{"sampled", ExhaustiveInputs + 2}, // random batch with a masked tail (300 % 64 != 0)
	}
	models := []DefectModel{
		WeightVariation{V: 2.0}, ThresholdDrift{V: 1.2}, StuckAt{P: 0.2},
	}
	for _, tc := range cases {
		nw, tn := wideAndPair(t, tc.n)
		for _, model := range models {
			var baseJSON []byte
			for _, w := range Widths() {
				cfg := YieldConfig{MaxTrials: 200, MinTrials: 16, Seed: 3, Samples: 300, Width: w}
				rep, err := EstimateYield(nw, tn, model, cfg)
				if err != nil {
					t.Fatal(err)
				}
				js, err := json.Marshal(rep)
				if err != nil {
					t.Fatal(err)
				}
				if baseJSON == nil {
					baseJSON = js
					continue
				}
				if string(js) != string(baseJSON) {
					t.Fatalf("%s/%s W%d:\n%s\nwant\n%s", tc.name, model.Name(), w, js, baseJSON)
				}
			}
		}
	}
}

// TestSessionAcrossWidths: a YieldSession built at one width reproduces
// EstimateYield at another width bit for bit — sessions and one-shot
// estimates interoperate freely across lane widths.
func TestSessionAcrossWidths(t *testing.T) {
	nw, tn := wideAndPair(t, 8)
	want, err := EstimateYield(nw, tn, WeightVariation{V: 2.0},
		YieldConfig{MaxTrials: 150, MinTrials: 16, Seed: 9, Width: W1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []Width{W4, W8} {
		sess, err := NewYieldSession(nw, tn, YieldConfig{Seed: 9, Width: w})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.Estimate(WeightVariation{V: 2.0},
			YieldConfig{MaxTrials: 150, MinTrials: 16, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if !reportsEqual(want, got) {
			t.Fatalf("W%d session report diverges:\n%+v\nwant\n%+v", w, got, want)
		}
	}
}

// TestFaultSweepAcrossWidths: the deterministic stuck-at sweep report is
// byte-identical at every width, on a batch with a masked tail.
func TestFaultSweepAcrossWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	tn := randomThreshNet(rng, 7) // 128 vectors: partial block at W4/W8
	var baseJSON []byte
	for _, w := range Widths() {
		b, err := ExhaustiveW(tn.Inputs, w)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := FaultSweep(tn, b)
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if baseJSON == nil {
			baseJSON = js
			continue
		}
		if string(js) != string(baseJSON) {
			t.Fatalf("W%d fault report diverges:\n%s\nwant\n%s", w, js, baseJSON)
		}
	}
}

// TestExhaustiveTooManyInputs: the hardened constructor reports the
// sentinel instead of panicking, at every width, and InvalidInput
// classifies it.
func TestExhaustiveTooManyInputs(t *testing.T) {
	inputs := make([]string, MaxExhaustiveInputs+1)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("x%d", i)
	}
	for _, w := range Widths() {
		_, err := ExhaustiveW(inputs, w)
		if !errors.Is(err, ErrTooManyInputs) {
			t.Fatalf("W%d: err = %v, want ErrTooManyInputs", w, err)
		}
		if !InvalidInput(err) {
			t.Fatalf("W%d: InvalidInput(%v) = false", w, err)
		}
	}
	if _, err := Exhaustive(inputs[:MaxExhaustiveInputs]); err != nil {
		t.Fatalf("at the limit: %v", err)
	}
}

// TestInvalidInputClassifier: fanin overflows classify as invalid input;
// unrelated errors do not.
func TestInvalidInputClassifier(t *testing.T) {
	if !InvalidInput(fmt.Errorf("wrapped: %w", ErrFaninLimit)) {
		t.Fatal("wrapped ErrFaninLimit not classified")
	}
	if InvalidInput(errors.New("disk on fire")) {
		t.Fatal("unrelated error classified as invalid input")
	}
	if InvalidInput(nil) {
		t.Fatal("nil error classified as invalid input")
	}
}
