package fsim

import (
	"fmt"
	"math/rand"
)

// Defect is one concrete fault instance for a compiled threshold network.
// All slices are aligned with ThreshSim.GateOrder(); nil fields mean "no
// fault of that kind".
type Defect struct {
	// WeightNoise adds a real offset to every weight: WeightNoise[gi][i]
	// is added to GateOrder()[gi].Weights[i].
	WeightNoise [][]float64
	// ThresholdNoise drifts every gate threshold: gate gi fires when the
	// (possibly noisy) sum reaches T + ThresholdNoise[gi].
	ThresholdNoise []float64
	// Stuck forces gate outputs: per gate, -1 = free, 0 = stuck-at-0,
	// 1 = stuck-at-1.
	Stuck []int8
}

// DefectModel draws independent defect instances for a compiled network.
type DefectModel interface {
	// Name identifies the model in reports.
	Name() string
	// Draw produces one defect instance, consuming rng deterministically.
	Draw(s *ThreshSim, rng *rand.Rand) *Defect
}

// WeightVariation is the paper's §VI-C Monte-Carlo disturbance: every
// weight receives an independent V·U(−0.5, 0.5) offset. Its RNG
// consumption (gate-major, weight-minor, one Float64 per weight) is
// identical to sim.PerturbFor, so packed and scalar experiments driven
// from the same stream see the same disturbances.
type WeightVariation struct {
	V float64
}

// Name implements DefectModel.
func (m WeightVariation) Name() string { return fmt.Sprintf("weight-variation v=%g", m.V) }

// Draw implements DefectModel.
func (m WeightVariation) Draw(s *ThreshSim, rng *rand.Rand) *Defect {
	noise := make([][]float64, len(s.order))
	for gi, g := range s.order {
		n := make([]float64, len(g.Weights))
		for i := range n {
			n[i] = m.V * (rng.Float64() - 0.5)
		}
		noise[gi] = n
	}
	return &Defect{WeightNoise: noise}
}

// ThresholdDrift perturbs every gate threshold by V·U(−0.5, 0.5),
// modelling bias drift of the MOBILE driver/load RTD pair rather than of
// the input branches.
type ThresholdDrift struct {
	V float64
}

// Name implements DefectModel.
func (m ThresholdDrift) Name() string { return fmt.Sprintf("threshold-drift v=%g", m.V) }

// Draw implements DefectModel.
func (m ThresholdDrift) Draw(s *ThreshSim, rng *rand.Rand) *Defect {
	drift := make([]float64, len(s.order))
	for gi := range drift {
		drift[gi] = m.V * (rng.Float64() - 0.5)
	}
	return &Defect{ThresholdNoise: drift}
}

// StuckAt sticks each gate output independently with probability P, at a
// uniformly random polarity (the classic manufacturing-defect model).
type StuckAt struct {
	P float64
}

// Name implements DefectModel.
func (m StuckAt) Name() string { return fmt.Sprintf("stuck-at p=%g", m.P) }

// Draw implements DefectModel.
func (m StuckAt) Draw(s *ThreshSim, rng *rand.Rand) *Defect {
	stuck := make([]int8, len(s.order))
	for gi := range stuck {
		stuck[gi] = -1
		if rng.Float64() < m.P {
			stuck[gi] = int8(rng.Intn(2))
		}
	}
	return &Defect{Stuck: stuck}
}
