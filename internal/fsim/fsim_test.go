package fsim

import (
	"fmt"
	"math/rand"
	"testing"

	"tels/internal/core"
	"tels/internal/logic"
	"tels/internal/network"
)

// randomBoolNet builds a random DAG of SOP nodes over n inputs.
func randomBoolNet(rng *rand.Rand, n int) *network.Network {
	nw := network.New("rand")
	var signals []*network.Node
	for i := 0; i < n; i++ {
		signals = append(signals, nw.AddInput(fmt.Sprintf("x%d", i)))
	}
	nodes := 2 + rng.Intn(8)
	for i := 0; i < nodes; i++ {
		k := 1 + rng.Intn(3)
		if k > len(signals) {
			k = len(signals)
		}
		fanins := make([]*network.Node, 0, k)
		seen := map[int]bool{}
		for len(fanins) < k {
			j := rng.Intn(len(signals))
			if seen[j] {
				continue
			}
			seen[j] = true
			fanins = append(fanins, signals[j])
		}
		cubes := make([]string, 1+rng.Intn(3))
		for c := range cubes {
			s := make([]byte, k)
			for p := range s {
				s[p] = "01-"[rng.Intn(3)]
			}
			cubes[c] = string(s)
		}
		node := nw.AddNode(fmt.Sprintf("n%d", i), fanins, logic.MustCover(cubes...))
		signals = append(signals, node)
	}
	// Mark a few nodes (possibly inputs) as outputs, at least one.
	outs := 1 + rng.Intn(3)
	for i := 0; i < outs; i++ {
		nw.MarkOutput(signals[rng.Intn(len(signals))])
	}
	return nw
}

// randomThreshNet builds a random threshold-gate DAG over n inputs.
func randomThreshNet(rng *rand.Rand, n int) *core.Network {
	tn := core.NewNetwork("rand")
	var signals []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("x%d", i)
		tn.AddInput(name)
		signals = append(signals, name)
	}
	gates := 2 + rng.Intn(8)
	for i := 0; i < gates; i++ {
		k := 1 + rng.Intn(4)
		if k > len(signals) {
			k = len(signals)
		}
		g := &core.Gate{Name: fmt.Sprintf("g%d", i), T: rng.Intn(7) - 2}
		seen := map[int]bool{}
		for len(g.Inputs) < k {
			j := rng.Intn(len(signals))
			if seen[j] {
				continue
			}
			seen[j] = true
			g.Inputs = append(g.Inputs, signals[j])
			g.Weights = append(g.Weights, rng.Intn(7)-3)
		}
		if err := tn.AddGate(g); err != nil {
			panic(err)
		}
		signals = append(signals, g.Name)
	}
	tn.MarkOutput(signals[len(signals)-1])
	tn.MarkOutput(signals[rng.Intn(len(signals))])
	return tn
}

// exhaustive is the test shorthand for Exhaustive over inputs known to be
// within MaxExhaustiveInputs.
func exhaustive(t *testing.T, inputs []string) *Batch {
	t.Helper()
	b, err := Exhaustive(inputs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestExhaustiveBatchLayout pins the packing convention: vector m assigns
// input i the value of bit i of m.
func TestExhaustiveBatchLayout(t *testing.T) {
	inputs := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	b := exhaustive(t, inputs)
	if b.Len() != 256 || b.Blocks() != 4 {
		t.Fatalf("len=%d blocks=%d", b.Len(), b.Blocks())
	}
	for m := 0; m < b.Len(); m++ {
		got := b.Assignment(m)
		for i, name := range inputs {
			want := m>>uint(i)&1 == 1
			if got[name] != want {
				t.Fatalf("vector %d input %s = %v, want %v", m, name, got[name], want)
			}
		}
	}
}

// TestRandomBatchMatchesScalarStream checks that Random consumes the RNG
// exactly like the scalar per-vector sampler.
func TestRandomBatchMatchesScalarStream(t *testing.T) {
	inputs := []string{"a", "b", "c"}
	b := Random(inputs, 100, rand.New(rand.NewSource(7)))
	rng := rand.New(rand.NewSource(7))
	for v := 0; v < 100; v++ {
		got := b.Assignment(v)
		for _, name := range inputs {
			want := rng.Intn(2) == 1
			if got[name] != want {
				t.Fatalf("vector %d input %s = %v, want %v", v, name, got[name], want)
			}
		}
	}
}

// TestPackedBoolMatchesScalar is the property test: on random networks
// and all 2^n inputs, the packed Boolean evaluator equals the scalar
// network.Evaluator bit for bit.
func TestPackedBoolMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		nw := randomBoolNet(rng, n)
		sim, err := CompileBool(nw)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := nw.NewEvaluator()
		if err != nil {
			t.Fatal(err)
		}
		batch := exhaustive(t, inputNames(nw))
		got, err := sim.Eval(batch)
		if err != nil {
			t.Fatal(err)
		}
		var want []bool
		for m := 0; m < batch.Len(); m++ {
			want, err = ev.Eval(batch.Assignment(m), want)
			if err != nil {
				t.Fatal(err)
			}
			for o := range want {
				if Bit(got[o], m) != want[o] {
					t.Fatalf("trial %d: vector %d output %d: packed=%v scalar=%v",
						trial, m, o, Bit(got[o], m), want[o])
				}
			}
		}
	}
}

func inputNames(nw *network.Network) []string {
	names := make([]string, len(nw.Inputs))
	for i, in := range nw.Inputs {
		names[i] = in.Name
	}
	return names
}

// TestPackedThreshMatchesScalar: packed threshold evaluation equals the
// scalar core.Evaluator on random networks over all 2^n inputs.
func TestPackedThreshMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		tn := randomThreshNet(rng, n)
		sim, err := CompileThresh(tn)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := tn.NewEvaluator()
		if err != nil {
			t.Fatal(err)
		}
		batch := exhaustive(t, tn.Inputs)
		got, err := sim.Eval(batch)
		if err != nil {
			t.Fatal(err)
		}
		var want []bool
		for m := 0; m < batch.Len(); m++ {
			want, err = ev.Eval(batch.Assignment(m), want)
			if err != nil {
				t.Fatal(err)
			}
			for o := range want {
				if Bit(got[o], m) != want[o] {
					t.Fatalf("trial %d: vector %d output %d: packed=%v scalar=%v",
						trial, m, o, Bit(got[o], m), want[o])
				}
			}
		}
	}
}

// TestPackedPerturbedMatchesScalar: under random weight noise the packed
// evaluator equals core.Evaluator.EvalPerturbed bit for bit (same float
// association order, so even razor-edge sums agree).
func TestPackedPerturbedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(7)
		tn := randomThreshNet(rng, n)
		sim, err := CompileThresh(tn)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := tn.NewEvaluator()
		if err != nil {
			t.Fatal(err)
		}
		noise := make([][]float64, len(sim.GateOrder()))
		for gi, g := range sim.GateOrder() {
			ns := make([]float64, len(g.Weights))
			for i := range ns {
				ns[i] = 2 * (rng.Float64() - 0.5)
			}
			noise[gi] = ns
		}
		batch := exhaustive(t, tn.Inputs)
		got, err := sim.EvalPerturbed(batch, noise)
		if err != nil {
			t.Fatal(err)
		}
		var want []bool
		for m := 0; m < batch.Len(); m++ {
			want, err = ev.EvalPerturbed(batch.Assignment(m), noise, want)
			if err != nil {
				t.Fatal(err)
			}
			for o := range want {
				if Bit(got[o], m) != want[o] {
					t.Fatalf("trial %d: vector %d output %d: packed=%v scalar=%v",
						trial, m, o, Bit(got[o], m), want[o])
				}
			}
		}
	}
}

// TestGateOrderMatchesCoreEvaluator pins the noise-slice alignment
// contract between fsim and the scalar evaluator.
func TestGateOrderMatchesCoreEvaluator(t *testing.T) {
	tn := randomThreshNet(rand.New(rand.NewSource(23)), 5)
	sim, err := CompileThresh(tn)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := tn.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	a, b := sim.GateOrder(), ev.GateOrder()
	if len(a) != len(b) {
		t.Fatalf("order lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order[%d]: %s vs %s", i, a[i].Name, b[i].Name)
		}
	}
}

// TestStuckAtDefect: sticking the output gate forces the output word.
func TestStuckAtDefect(t *testing.T) {
	tn := core.NewNetwork("s")
	tn.AddInput("a")
	tn.AddInput("b")
	if err := tn.AddGate(&core.Gate{Name: "f", Inputs: []string{"a", "b"}, Weights: []int{1, 1}, T: 2}); err != nil {
		t.Fatal(err)
	}
	tn.MarkOutput("f")
	sim, err := CompileThresh(tn)
	if err != nil {
		t.Fatal(err)
	}
	batch := exhaustive(t, tn.Inputs)
	for _, v := range []int8{0, 1} {
		out, err := sim.EvalDefect(batch, &Defect{Stuck: []int8{v}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for m := 0; m < batch.Len(); m++ {
			if Bit(out[0], m) != (v == 1) {
				t.Fatalf("stuck-at-%d: vector %d = %v", v, m, Bit(out[0], m))
			}
		}
	}
}

// TestFaninLimit: compile rejects gates beyond the packed fanin limit.
func TestFaninLimit(t *testing.T) {
	tn := core.NewNetwork("wide")
	g := &core.Gate{Name: "f", T: 1}
	for i := 0; i < PackedFaninLimit+1; i++ {
		name := fmt.Sprintf("x%d", i)
		tn.AddInput(name)
		g.Inputs = append(g.Inputs, name)
		g.Weights = append(g.Weights, 1)
	}
	if err := tn.AddGate(g); err != nil {
		t.Fatal(err)
	}
	tn.MarkOutput("f")
	if _, err := CompileThresh(tn); err == nil {
		t.Fatal("expected a fanin-limit error")
	}
}

// TestFirstDiff checks mismatch localization across blocks.
func TestFirstDiff(t *testing.T) {
	b := newBatch([]string{"x"}, 130, W1)
	a := [][]uint64{{0, 0, 0}}
	c := [][]uint64{{0, 1 << 5, 1 << 1}}
	vec, out, found := b.FirstDiff(a, c)
	if !found || vec != 69 || out != 0 {
		t.Fatalf("FirstDiff = (%d, %d, %v), want (69, 0, true)", vec, out, found)
	}
	// Lanes beyond Len are masked: 130 vectors → block 2 valid bits 0..1.
	c2 := [][]uint64{{0, 0, 1 << 2}}
	if _, _, found := b.FirstDiff(a, c2); found {
		t.Fatal("diff found in masked lane")
	}
}

// TestPackDense round-trips explicit vectors.
func TestPackDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inputs := []string{"p", "q", "r"}
	vecs := make([]map[string]bool, 77)
	for i := range vecs {
		vecs[i] = map[string]bool{}
		for _, n := range inputs {
			vecs[i][n] = rng.Intn(2) == 1
		}
	}
	b, err := Pack(inputs, vecs)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range vecs {
		got := b.Assignment(i)
		for _, n := range inputs {
			if got[n] != want[n] {
				t.Fatalf("vector %d input %s mismatch", i, n)
			}
		}
	}
}
