// Package fsim is the word-parallel fault- and variation-simulation
// engine: it packs 64 input vectors into each uint64 word and evaluates
// Boolean networks (internal/network) and threshold networks
// (internal/core) in topological order over preallocated flat buffers —
// no per-vector maps, no per-gate allocation in the hot loop. The inner
// evaluator kernels are generic over the lane-block width (Width: 1, 4,
// or 8 words per step), so the same flat layout runs through portable
// 64-bit code or compiler-vectorized 256/512-bit blocks with bit-identical
// results. On top of the packed evaluators it provides defect models
// (weight variation, threshold drift, stuck-at gate faults), a Monte-Carlo
// yield estimator with sequential early stopping, and a critical-gate
// ranking that attributes observed output failures to the first flipped
// gate on each failing lane. The scalar evaluators in internal/sim,
// internal/network and internal/core remain the correctness oracle;
// property tests pin the packed paths to them bit for bit.
package fsim

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
)

// lanes is the number of vectors per 64-bit word. The packing layout
// (vector index v lives in bit v%64 of word v/64 of a flat row) is
// fixed and width-independent; Width only sets how many words the
// evaluator kernels advance per step.
const lanes = 64

// MaxExhaustiveInputs bounds Exhaustive batches (2^20 vectors ≈ 16 K words
// per input); callers with wider networks sample with Random instead.
const MaxExhaustiveInputs = 20

// ErrTooManyInputs is returned by Exhaustive when the input count exceeds
// MaxExhaustiveInputs. Service runners classify it (via InvalidInput) as a
// caller error rather than an internal failure.
var ErrTooManyInputs = errors.New("fsim: too many inputs for exhaustive batch")

// Batch is a set of packed input assignments: for every input, a flat row
// of uint64 words with vector index v living in bit v%64 of word v/64.
// Rows are padded to a whole number of lane blocks (Width.Words() words
// each); the mask zeroes the final partial word and every pad word out of
// all comparisons and counts, so batches of different widths carry the
// same valid bits at the same flat positions.
type Batch struct {
	inputs []string
	pos    map[string]int
	n      int
	width  Width
	blocks int        // lane blocks per row
	words  [][]uint64 // [input][word], blocks*width.Words() words per row
	mask   []uint64   // [word] valid-lane mask (zero on pad words)
}

// newBatch allocates an empty batch for the inputs and vector count at
// lane width w.
func newBatch(inputs []string, n int, w Width) *Batch {
	w = w.or0()
	wpb := w.Words()
	blocks := (n + w.Lanes() - 1) / w.Lanes()
	if n == 0 {
		blocks = 0
	}
	row := blocks * wpb
	b := &Batch{
		inputs: append([]string(nil), inputs...),
		pos:    make(map[string]int, len(inputs)),
		n:      n,
		width:  w,
		blocks: blocks,
		words:  make([][]uint64, len(inputs)),
		mask:   make([]uint64, row),
	}
	for i, name := range b.inputs {
		b.pos[name] = i
		b.words[i] = make([]uint64, row)
	}
	valid := (n + lanes - 1) / lanes
	for wi := 0; wi < valid; wi++ {
		b.mask[wi] = ^uint64(0)
	}
	if rem := n % lanes; rem != 0 && valid > 0 {
		b.mask[valid-1] = (uint64(1) << uint(rem)) - 1
	}
	return b
}

// Len returns the number of vectors in the batch.
func (b *Batch) Len() int { return b.n }

// Blocks returns the number of lane blocks per row (each Width.Words()
// words wide).
func (b *Batch) Blocks() int { return b.blocks }

// Words returns the padded row length in 64-bit words
// (Blocks()·Width().Words()). Packed output and trace rows share it.
func (b *Batch) Words() int { return len(b.mask) }

// Width returns the lane-block width the batch was built for.
func (b *Batch) Width() Width { return b.width }

// Inputs returns the input names, in column order.
func (b *Batch) Inputs() []string { return b.inputs }

// Exhaustive packs all 2^n assignments of the inputs at the default
// width: vector m assigns input i the value of bit i of m, matching the
// enumeration order of sim.Vectors. It returns ErrTooManyInputs if
// len(inputs) exceeds MaxExhaustiveInputs.
func Exhaustive(inputs []string) (*Batch, error) {
	return ExhaustiveW(inputs, DefaultWidth)
}

// ExhaustiveW is Exhaustive at an explicit lane width. The valid bits are
// identical at every width; only the row padding differs.
func ExhaustiveW(inputs []string, w Width) (*Batch, error) {
	n := len(inputs)
	if n > MaxExhaustiveInputs {
		return nil, fmt.Errorf("%w: %d inputs (max %d)", ErrTooManyInputs, n, MaxExhaustiveInputs)
	}
	b := newBatch(inputs, 1<<uint(n), w)
	// Inside a 64-lane word, inputs 0..5 follow fixed alternation
	// patterns; inputs 6+ are constant per word, selected by the word
	// index bits. Pad words get the same fill; the mask hides them.
	var low = [6]uint64{
		0xAAAAAAAAAAAAAAAA, 0xCCCCCCCCCCCCCCCC, 0xF0F0F0F0F0F0F0F0,
		0xFF00FF00FF00FF00, 0xFFFF0000FFFF0000, 0xFFFFFFFF00000000,
	}
	for i := 0; i < n; i++ {
		row := b.words[i]
		if i < 6 {
			for wi := range row {
				row[wi] = low[i]
			}
			continue
		}
		for wi := range row {
			if wi>>(uint(i)-6)&1 == 1 {
				row[wi] = ^uint64(0)
			}
		}
	}
	return b, nil
}

// Random packs n uniformly random assignments at the default width. The
// RNG consumption order (vector-major, input-minor, one Intn(2) per bit)
// is identical to sim.Vectors, so a packed caller sampling from the same
// seeded stream sees exactly the vectors the scalar path would.
func Random(inputs []string, n int, rng *rand.Rand) *Batch {
	return RandomW(inputs, n, rng, DefaultWidth)
}

// RandomW is Random at an explicit lane width; the RNG stream and the
// valid bits are identical at every width.
func RandomW(inputs []string, n int, rng *rand.Rand, w Width) *Batch {
	b := newBatch(inputs, n, w)
	for v := 0; v < n; v++ {
		wi, bit := v/lanes, uint(v%lanes)
		for i := range inputs {
			if rng.Intn(2) == 1 {
				b.words[i][wi] |= uint64(1) << bit
			}
		}
	}
	return b
}

// Pack converts explicit assignments (e.g. from sim.Vectors) into a batch
// at the default width. Every assignment must cover every input by name.
func Pack(inputs []string, vecs []map[string]bool) (*Batch, error) {
	return PackW(inputs, vecs, DefaultWidth)
}

// PackW is Pack at an explicit lane width.
func PackW(inputs []string, vecs []map[string]bool, w Width) (*Batch, error) {
	b := newBatch(inputs, len(vecs), w)
	for v, vec := range vecs {
		wi, bit := v/lanes, uint(v%lanes)
		for i, name := range inputs {
			val, ok := vec[name]
			if !ok {
				return nil, fmt.Errorf("fsim: vector %d has no value for input %s", v, name)
			}
			if val {
				b.words[i][wi] |= uint64(1) << bit
			}
		}
	}
	return b, nil
}

// Assignment reconstructs vector v as a name→value map (for error
// messages; never used in hot loops).
func (b *Batch) Assignment(v int) map[string]bool {
	out := make(map[string]bool, len(b.inputs))
	wi, bit := v/lanes, uint(v%lanes)
	for i, name := range b.inputs {
		out[name] = b.words[i][wi]>>bit&1 == 1
	}
	return out
}

// columns resolves the batch column of every name, erroring on inputs the
// batch does not carry.
func (b *Batch) columns(names []string) ([]int, error) {
	cols := make([]int, len(names))
	for i, name := range names {
		c, ok := b.pos[name]
		if !ok {
			return nil, fmt.Errorf("fsim: batch has no column for input %s", name)
		}
		cols[i] = c
	}
	return cols, nil
}

// Differs reports whether two packed output sets (shaped [output][word])
// disagree on any valid lane, with early exit on the first differing word.
func (b *Batch) Differs(a, c [][]uint64) bool {
	for o := range a {
		ao, co := a[o], c[o]
		for wi := range b.mask {
			if (ao[wi]^co[wi])&b.mask[wi] != 0 {
				return true
			}
		}
	}
	return false
}

// FirstDiff locates the lowest (vector, output) pair where the two packed
// output sets disagree.
func (b *Batch) FirstDiff(a, c [][]uint64) (vec, out int, found bool) {
	bestVec, bestOut := -1, -1
	for o := range a {
		ao, co := a[o], c[o]
		for wi := range b.mask {
			d := (ao[wi] ^ co[wi]) & b.mask[wi]
			if d == 0 {
				continue
			}
			v := wi*lanes + bits.TrailingZeros64(d)
			if bestVec < 0 || v < bestVec {
				bestVec, bestOut = v, o
			}
			break // later words of this output can only be higher vectors
		}
	}
	if bestVec < 0 {
		return 0, 0, false
	}
	return bestVec, bestOut, true
}

// Bit extracts output word bit v for packed rows shaped [word].
func Bit(row []uint64, v int) bool {
	return row[v/lanes]>>uint(v%lanes)&1 == 1
}
