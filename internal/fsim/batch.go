// Package fsim is the word-parallel fault- and variation-simulation
// engine: it packs 64 input vectors into each uint64 word and evaluates
// Boolean networks (internal/network) and threshold networks
// (internal/core) in topological order over preallocated flat buffers —
// no per-vector maps, no per-gate allocation in the hot loop. On top of
// the packed evaluators it provides defect models (weight variation,
// threshold drift, stuck-at gate faults), a Monte-Carlo yield estimator
// with sequential early stopping, and a critical-gate ranking that
// attributes observed output failures to the first flipped gate on each
// failing lane. The scalar evaluators in internal/sim, internal/network
// and internal/core remain the correctness oracle; property tests pin the
// packed paths to them bit for bit.
package fsim

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// lanes is the SIMD width of the engine: vectors per machine word. The
// packing layout (vector index = block*lanes + lane) is the only place the
// width is assumed; a future wider backend swaps this constant and the
// word type.
const lanes = 64

// MaxExhaustiveInputs bounds Exhaustive batches (2^20 vectors ≈ 16 K words
// per input); callers with wider networks sample with Random instead.
const MaxExhaustiveInputs = 20

// Batch is a set of packed input assignments: for every input, one uint64
// word per block of 64 vectors, with vector index v living in bit v%64 of
// block v/64. The final block's unused lanes are masked out of every
// comparison helper.
type Batch struct {
	inputs []string
	pos    map[string]int
	n      int
	blocks int
	words  [][]uint64 // [input][block]
	mask   []uint64   // [block] valid-lane mask
}

// newBatch allocates an empty batch for the inputs and vector count.
func newBatch(inputs []string, n int) *Batch {
	blocks := (n + lanes - 1) / lanes
	b := &Batch{
		inputs: append([]string(nil), inputs...),
		pos:    make(map[string]int, len(inputs)),
		n:      n,
		blocks: blocks,
		words:  make([][]uint64, len(inputs)),
		mask:   make([]uint64, blocks),
	}
	for i, name := range b.inputs {
		b.pos[name] = i
		b.words[i] = make([]uint64, blocks)
	}
	for blk := range b.mask {
		b.mask[blk] = ^uint64(0)
	}
	if rem := n % lanes; rem != 0 && blocks > 0 {
		b.mask[blocks-1] = (uint64(1) << uint(rem)) - 1
	}
	return b
}

// Len returns the number of vectors in the batch.
func (b *Batch) Len() int { return b.n }

// Blocks returns the number of 64-lane blocks.
func (b *Batch) Blocks() int { return b.blocks }

// Inputs returns the input names, in column order.
func (b *Batch) Inputs() []string { return b.inputs }

// Exhaustive packs all 2^n assignments of the inputs: vector m assigns
// input i the value of bit i of m, matching the enumeration order of
// sim.Vectors. It panics if len(inputs) exceeds MaxExhaustiveInputs.
func Exhaustive(inputs []string) *Batch {
	n := len(inputs)
	if n > MaxExhaustiveInputs {
		panic(fmt.Sprintf("fsim: exhaustive batch over %d inputs (max %d)", n, MaxExhaustiveInputs))
	}
	b := newBatch(inputs, 1<<uint(n))
	// Inside a 64-lane block, inputs 0..5 follow fixed alternation
	// patterns; inputs 6+ are constant per block, selected by the block
	// index bits.
	var low = [6]uint64{
		0xAAAAAAAAAAAAAAAA, 0xCCCCCCCCCCCCCCCC, 0xF0F0F0F0F0F0F0F0,
		0xFF00FF00FF00FF00, 0xFFFF0000FFFF0000, 0xFFFFFFFF00000000,
	}
	for i := 0; i < n; i++ {
		w := b.words[i]
		if i < 6 {
			for blk := range w {
				w[blk] = low[i]
			}
			continue
		}
		for blk := range w {
			if blk>>(uint(i)-6)&1 == 1 {
				w[blk] = ^uint64(0)
			}
		}
	}
	return b
}

// Random packs n uniformly random assignments. The RNG consumption order
// (vector-major, input-minor, one Intn(2) per bit) is identical to
// sim.Vectors, so a packed caller sampling from the same seeded stream
// sees exactly the vectors the scalar path would.
func Random(inputs []string, n int, rng *rand.Rand) *Batch {
	b := newBatch(inputs, n)
	for v := 0; v < n; v++ {
		blk, bit := v/lanes, uint(v%lanes)
		for i := range inputs {
			if rng.Intn(2) == 1 {
				b.words[i][blk] |= uint64(1) << bit
			}
		}
	}
	return b
}

// Pack converts explicit assignments (e.g. from sim.Vectors) into a batch.
// Every assignment must cover every input by name.
func Pack(inputs []string, vecs []map[string]bool) (*Batch, error) {
	b := newBatch(inputs, len(vecs))
	for v, vec := range vecs {
		blk, bit := v/lanes, uint(v%lanes)
		for i, name := range inputs {
			val, ok := vec[name]
			if !ok {
				return nil, fmt.Errorf("fsim: vector %d has no value for input %s", v, name)
			}
			if val {
				b.words[i][blk] |= uint64(1) << bit
			}
		}
	}
	return b, nil
}

// Assignment reconstructs vector v as a name→value map (for error
// messages; never used in hot loops).
func (b *Batch) Assignment(v int) map[string]bool {
	out := make(map[string]bool, len(b.inputs))
	blk, bit := v/lanes, uint(v%lanes)
	for i, name := range b.inputs {
		out[name] = b.words[i][blk]>>bit&1 == 1
	}
	return out
}

// columns resolves the batch column of every name, erroring on inputs the
// batch does not carry.
func (b *Batch) columns(names []string) ([]int, error) {
	cols := make([]int, len(names))
	for i, name := range names {
		c, ok := b.pos[name]
		if !ok {
			return nil, fmt.Errorf("fsim: batch has no column for input %s", name)
		}
		cols[i] = c
	}
	return cols, nil
}

// Differs reports whether two packed output sets (shaped [output][block])
// disagree on any valid lane, with early exit on the first differing word.
func (b *Batch) Differs(a, c [][]uint64) bool {
	for o := range a {
		ao, co := a[o], c[o]
		for blk := 0; blk < b.blocks; blk++ {
			if (ao[blk]^co[blk])&b.mask[blk] != 0 {
				return true
			}
		}
	}
	return false
}

// FirstDiff locates the lowest (vector, output) pair where the two packed
// output sets disagree.
func (b *Batch) FirstDiff(a, c [][]uint64) (vec, out int, found bool) {
	bestVec, bestOut := -1, -1
	for o := range a {
		ao, co := a[o], c[o]
		for blk := 0; blk < b.blocks; blk++ {
			d := (ao[blk] ^ co[blk]) & b.mask[blk]
			if d == 0 {
				continue
			}
			v := blk*lanes + bits.TrailingZeros64(d)
			if bestVec < 0 || v < bestVec {
				bestVec, bestOut = v, o
			}
			break // later blocks of this output can only be higher vectors
		}
	}
	if bestVec < 0 {
		return 0, 0, false
	}
	return bestVec, bestOut, true
}

// Bit extracts output word bit v for packed rows shaped [block].
func Bit(row []uint64, v int) bool {
	return row[v/lanes]>>uint(v%lanes)&1 == 1
}
