package fsim

import (
	"tels/internal/logic"
	"tels/internal/network"
)

// boolLit is one literal of a compiled cube: the value slot of the fanin
// and its phase.
type boolLit struct {
	slot int
	neg  bool
}

// boolCube is a compiled product term: the AND of its literals (empty =
// the universal cube).
type boolCube []boolLit

// boolNode is one internal node: the OR of its cubes, written to slot.
type boolNode struct {
	cubes []boolCube
	slot  int
}

// boolKern holds the per-width value buffer of a BoolSim: one lane block
// per signal, rewritten per step.
type boolKern[B lword[B]] struct {
	vals []B
}

// BoolSim evaluates a Boolean network one lane block (the batch's width ×
// 64 vectors) at a time. Compile once, evaluate many batches; not safe
// for concurrent use (buffers are reused).
type BoolSim struct {
	inputs   []string
	inSlots  []int
	nodes    []boolNode
	outSlots []int
	nslots   int
	out      [][]uint64 // [output][word], reused across Eval calls

	// per-width kernels, allocated on first use
	k1 *boolKern[b1]
	k4 *boolKern[b4]
	k8 *boolKern[b8]
}

// CompileBool flattens the network into slot-addressed packed-cover form.
func CompileBool(nw *network.Network) (*BoolSim, error) {
	order, err := nw.TopoSort()
	if err != nil {
		return nil, err
	}
	s := &BoolSim{}
	slot := make(map[*network.Node]int, len(order))
	for _, n := range order {
		slot[n] = len(slot)
	}
	s.nslots = len(slot)
	for _, in := range nw.Inputs {
		s.inputs = append(s.inputs, in.Name)
		s.inSlots = append(s.inSlots, slot[in])
	}
	for _, n := range order {
		if n.Kind != network.Internal {
			continue
		}
		bn := boolNode{slot: slot[n]}
		for _, c := range n.Cover.Cubes {
			cube := make(boolCube, 0, len(c))
			for i, p := range c {
				switch p {
				case logic.Pos:
					cube = append(cube, boolLit{slot: slot[n.Fanins[i]]})
				case logic.Neg:
					cube = append(cube, boolLit{slot: slot[n.Fanins[i]], neg: true})
				}
			}
			bn.cubes = append(bn.cubes, cube)
		}
		s.nodes = append(s.nodes, bn)
	}
	for _, o := range nw.Outputs {
		s.outSlots = append(s.outSlots, slot[o])
	}
	s.out = make([][]uint64, len(s.outSlots))
	return s, nil
}

// Eval computes the packed outputs ([output][word]) for the batch at the
// batch's lane width. The returned slices are reused by the next Eval
// call. Results are bit-identical on valid lanes at every width.
func (s *BoolSim) Eval(b *Batch) ([][]uint64, error) {
	cols, err := b.columns(s.inputs)
	if err != nil {
		return nil, err
	}
	row := b.Words()
	for o := range s.out {
		if cap(s.out[o]) < row {
			s.out[o] = make([]uint64, row)
		}
		s.out[o] = s.out[o][:row]
	}
	switch b.width {
	case W4:
		if s.k4 == nil {
			s.k4 = &boolKern[b4]{vals: make([]b4, s.nslots)}
		}
		runBool(s, s.k4, b, cols)
	case W8:
		if s.k8 == nil {
			s.k8 = &boolKern[b8]{vals: make([]b8, s.nslots)}
		}
		runBool(s, s.k8, b, cols)
	default:
		if s.k1 == nil {
			s.k1 = &boolKern[b1]{vals: make([]b1, s.nslots)}
		}
		runBool(s, s.k1, b, cols)
	}
	return s.out, nil
}

// runBool is the generic inner loop: per lane block, load the input
// blocks, OR each node's cubes of ANDed literals, and store the outputs
// back to the flat rows. The early exits (dead cube, saturated node) are
// pure optimizations — they never change the stored words — so taking
// them per block rather than per word keeps all widths bit-identical.
func runBool[B lword[B]](s *BoolSim, k *boolKern[B], b *Batch, cols []int) {
	var zero B
	wpb := zero.words()
	for blk := 0; blk < b.blocks; blk++ {
		base := blk * wpb
		for i, slot := range s.inSlots {
			k.vals[slot] = zero.load(b.words[cols[i]][base:])
		}
		for _, n := range s.nodes {
			var acc B
			for _, cube := range n.cubes {
				t := zero.ones()
				for _, l := range cube {
					w := k.vals[l.slot]
					if l.neg {
						w = w.not()
					}
					t = t.and(w)
					if t.isZero() {
						break
					}
				}
				acc = acc.or(t)
				if acc.isOnes() {
					break
				}
			}
			k.vals[n.slot] = acc
		}
		for o, slot := range s.outSlots {
			k.vals[slot].store(s.out[o][base:])
		}
	}
}
