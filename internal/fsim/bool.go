package fsim

import (
	"tels/internal/logic"
	"tels/internal/network"
)

// boolLit is one literal of a compiled cube: the value slot of the fanin
// and its phase.
type boolLit struct {
	slot int
	neg  bool
}

// boolCube is a compiled product term: the AND of its literals (empty =
// the universal cube).
type boolCube []boolLit

// boolNode is one internal node: the OR of its cubes, written to slot.
type boolNode struct {
	cubes []boolCube
	slot  int
}

// BoolSim evaluates a Boolean network 64 vectors at a time. Compile once,
// evaluate many batches; not safe for concurrent use (buffers are reused).
type BoolSim struct {
	inputs   []string
	inSlots  []int
	nodes    []boolNode
	outSlots []int
	vals     []uint64   // one word per signal, rewritten per block
	out      [][]uint64 // [output][block], reused across Eval calls
}

// CompileBool flattens the network into slot-addressed packed-cover form.
func CompileBool(nw *network.Network) (*BoolSim, error) {
	order, err := nw.TopoSort()
	if err != nil {
		return nil, err
	}
	s := &BoolSim{}
	slot := make(map[*network.Node]int, len(order))
	for _, n := range order {
		slot[n] = len(slot)
	}
	s.vals = make([]uint64, len(slot))
	for _, in := range nw.Inputs {
		s.inputs = append(s.inputs, in.Name)
		s.inSlots = append(s.inSlots, slot[in])
	}
	for _, n := range order {
		if n.Kind != network.Internal {
			continue
		}
		bn := boolNode{slot: slot[n]}
		for _, c := range n.Cover.Cubes {
			cube := make(boolCube, 0, len(c))
			for i, p := range c {
				switch p {
				case logic.Pos:
					cube = append(cube, boolLit{slot: slot[n.Fanins[i]]})
				case logic.Neg:
					cube = append(cube, boolLit{slot: slot[n.Fanins[i]], neg: true})
				}
			}
			bn.cubes = append(bn.cubes, cube)
		}
		s.nodes = append(s.nodes, bn)
	}
	for _, o := range nw.Outputs {
		s.outSlots = append(s.outSlots, slot[o])
	}
	s.out = make([][]uint64, len(s.outSlots))
	return s, nil
}

// Eval computes the packed outputs ([output][block]) for the batch. The
// returned slices are reused by the next Eval call.
func (s *BoolSim) Eval(b *Batch) ([][]uint64, error) {
	cols, err := b.columns(s.inputs)
	if err != nil {
		return nil, err
	}
	for o := range s.out {
		if cap(s.out[o]) < b.blocks {
			s.out[o] = make([]uint64, b.blocks)
		}
		s.out[o] = s.out[o][:b.blocks]
	}
	for blk := 0; blk < b.blocks; blk++ {
		for i, slot := range s.inSlots {
			s.vals[slot] = b.words[cols[i]][blk]
		}
		for _, n := range s.nodes {
			var acc uint64
			for _, cube := range n.cubes {
				t := ^uint64(0)
				for _, l := range cube {
					w := s.vals[l.slot]
					if l.neg {
						w = ^w
					}
					t &= w
					if t == 0 {
						break
					}
				}
				acc |= t
				if acc == ^uint64(0) {
					break
				}
			}
			s.vals[n.slot] = acc
		}
		for o, slot := range s.outSlots {
			s.out[o][blk] = s.vals[slot]
		}
	}
	return s.out, nil
}
