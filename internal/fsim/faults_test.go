package fsim

import (
	"testing"

	"tels/internal/core"
)

// TestFaultSweepAND pins detectability counts on a 2-input AND: stuck-at-0
// is observable only on vector 11, stuck-at-1 on the other three.
func TestFaultSweepAND(t *testing.T) {
	_, tn := andPair(t)
	rep, err := FaultSweep(tn, exhaustive(t, tn.Inputs))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != 2 || rep.DetectedFaults != 2 || rep.Coverage != 1 {
		t.Fatalf("bad summary: %+v", rep)
	}
	// Sites are sorted hardest-first: stuck-at-0 (1 vector) before
	// stuck-at-1 (3 vectors).
	if rep.Sites[0].Stuck != 0 || rep.Sites[0].Detected != 1 {
		t.Fatalf("stuck-at-0 site: %+v", rep.Sites[0])
	}
	if rep.Sites[1].Stuck != 1 || rep.Sites[1].Detected != 3 {
		t.Fatalf("stuck-at-1 site: %+v", rep.Sites[1])
	}
}

// TestFaultSweepRedundant: a gate with no path to any output is
// undetectable, and the coverage reflects it.
func TestFaultSweepRedundant(t *testing.T) {
	tn := core.NewNetwork("red")
	tn.AddInput("a")
	tn.AddInput("b")
	if err := tn.AddGate(&core.Gate{Name: "dead", Inputs: []string{"a", "b"}, Weights: []int{1, 1}, T: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tn.AddGate(&core.Gate{Name: "f", Inputs: []string{"a", "b"}, Weights: []int{1, 1}, T: 1}); err != nil {
		t.Fatal(err)
	}
	tn.MarkOutput("f")
	rep, err := FaultSweep(tn, exhaustive(t, tn.Inputs))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != 4 || rep.DetectedFaults != 2 || rep.Coverage != 0.5 {
		t.Fatalf("bad summary: %+v", rep)
	}
	for _, s := range rep.Sites[:2] {
		if s.Gate != "dead" || s.Detected != 0 {
			t.Fatalf("expected dead-gate faults first: %+v", rep.Sites)
		}
	}
}
