package fsim

import (
	"testing"

	"tels/internal/core"
	"tels/internal/logic"
	"tels/internal/network"
)

// andPair builds a 2-input AND as both a Boolean and a threshold network.
func andPair(t *testing.T) (*network.Network, *core.Network) {
	t.Helper()
	nw := network.New("and")
	a, b := nw.AddInput("a"), nw.AddInput("b")
	f := nw.AddNode("f", []*network.Node{a, b}, logic.MustCover("11"))
	nw.MarkOutput(f)
	tn := core.NewNetwork("and")
	tn.AddInput("a")
	tn.AddInput("b")
	if err := tn.AddGate(&core.Gate{Name: "f", Inputs: []string{"a", "b"}, Weights: []int{1, 1}, T: 2}); err != nil {
		t.Fatal(err)
	}
	tn.MarkOutput("f")
	return nw, tn
}

// TestYieldPerfectUnderNoNoise: with zero-variation weights the yield is
// 1 and the estimator stops at the trial floor.
func TestYieldPerfectUnderNoNoise(t *testing.T) {
	nw, tn := andPair(t)
	rep, err := EstimateYield(nw, tn, WeightVariation{V: 0}, YieldConfig{MaxTrials: 500, MinTrials: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 || rep.Yield != 1 {
		t.Fatalf("unexpected failures: %+v", rep)
	}
	if !rep.EarlyStopped {
		t.Fatalf("expected early stop at a zero failure rate: %+v", rep)
	}
	if rep.Trials >= 500 {
		t.Fatalf("early stopping did not shorten the run: %d trials", rep.Trials)
	}
	if len(rep.Critical) != 0 {
		t.Fatalf("no gate should be blamed: %+v", rep.Critical)
	}
}

// TestYieldZeroUnderCertainFault: a gate certainly stuck fails every
// trial; the estimator converges to failure rate 1 and blames the gate.
func TestYieldZeroUnderCertainFault(t *testing.T) {
	nw, tn := andPair(t)
	rep, err := EstimateYield(nw, tn, StuckAt{P: 1}, YieldConfig{MaxTrials: 500, MinTrials: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != rep.Trials || rep.Yield != 0 {
		t.Fatalf("expected certain failure: %+v", rep)
	}
	if len(rep.Critical) != 1 || rep.Critical[0].Gate != "f" || rep.Critical[0].Blamed == 0 {
		t.Fatalf("gate f should carry all blame: %+v", rep.Critical)
	}
}

// TestYieldDeterministic: identical configs give identical reports.
func TestYieldDeterministic(t *testing.T) {
	nw, tn := andPair(t)
	cfg := YieldConfig{MaxTrials: 200, MinTrials: 16, Seed: 42}
	a, err := EstimateYield(nw, tn, WeightVariation{V: 2.5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateYield(nw, tn, WeightVariation{V: 2.5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trials != b.Trials || a.Failures != b.Failures || a.FailureRate != b.FailureRate {
		t.Fatalf("non-deterministic yield: %+v vs %+v", a, b)
	}
}

// TestYieldCIBracketsRate: the Wilson interval always contains the point
// estimate, and drift/stuck models produce sane reports too.
func TestYieldCIBracketsRate(t *testing.T) {
	nw, tn := andPair(t)
	for _, model := range []DefectModel{
		WeightVariation{V: 1.5},
		ThresholdDrift{V: 1.5},
		StuckAt{P: 0.2},
	} {
		rep, err := EstimateYield(nw, tn, model, YieldConfig{MaxTrials: 300, MinTrials: 16, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Lo > rep.FailureRate || rep.Hi < rep.FailureRate {
			t.Fatalf("%s: CI [%f, %f] misses rate %f", model.Name(), rep.Lo, rep.Hi, rep.FailureRate)
		}
		if rep.Trials == 0 || rep.Trials > 300 {
			t.Fatalf("%s: bad trial count %d", model.Name(), rep.Trials)
		}
	}
}

// TestWilson sanity-checks the interval math.
func TestWilson(t *testing.T) {
	lo, hi := wilson(0, 100, 1.96)
	if lo != 0 || hi > 0.05 {
		t.Fatalf("wilson(0,100) = [%f, %f]", lo, hi)
	}
	lo, hi = wilson(50, 100, 1.96)
	if lo > 0.5 || hi < 0.5 || hi-lo > 0.25 {
		t.Fatalf("wilson(50,100) = [%f, %f]", lo, hi)
	}
	lo, hi = wilson(100, 100, 1.96)
	if hi < 0.99 || lo < 0.9 {
		t.Fatalf("wilson(100,100) = [%f, %f]", lo, hi)
	}
}
