package fsim

import (
	"errors"
	"fmt"
	"math/bits"

	"tels/internal/core"
)

// PackedFaninLimit bounds the gate fanin the packed threshold evaluator
// accepts: each gate is evaluated through a 2^k-entry fire table, so the
// limit caps the per-gate scratch at 4096 minterm blocks. Networks
// synthesized under the paper's fanin restriction (ψ ≤ 8) are far below
// it; CompileThresh fails beyond it and callers fall back to the scalar
// evaluator.
const PackedFaninLimit = 12

// ErrFaninLimit is returned by CompileThresh when a gate's fanin exceeds
// PackedFaninLimit. Service runners classify it (via InvalidInput) as a
// caller error rather than an internal failure.
var ErrFaninLimit = errors.New("fsim: gate fanin exceeds packed limit")

// fireTable is the packed truth table of one gate under one weight
// assignment: bit m is the gate output on input minterm m (bit i of m is
// the value of gate input i). The table is indexed by minterm, not by
// vector, so it stays a plain uint64 bitset at every lane width. ones
// counts the set bits so evaluation can OR whichever of the ON or OFF
// minterm sets is smaller.
type fireTable struct {
	bits []uint64
	ones int
}

func newFireTable(k int) fireTable {
	return fireTable{bits: make([]uint64, (1<<uint(k)+lanes-1)/lanes)}
}

func (ft *fireTable) set(m int) {
	ft.bits[m/lanes] |= uint64(1) << uint(m%lanes)
	ft.ones++
}

func (ft *fireTable) clear() {
	for i := range ft.bits {
		ft.bits[i] = 0
	}
	ft.ones = 0
}

// pGate is one compiled threshold gate.
type pGate struct {
	g    *core.Gate
	ins  []int // fanin value slots
	slot int   // output value slot
	size int   // 1 << fanin
}

// threshKern holds the per-width buffers of a ThreshSim: one lane block
// per signal plus the 2^maxFanin minterm-mask array.
type threshKern[B lword[B]] struct {
	vals []B
	mts  []B
}

// ThreshSim evaluates a threshold network one lane block (the batch's
// width × 64 vectors) at a time, under exact weights (Eval), Monte-Carlo
// weight noise (EvalPerturbed), or a general Defect (EvalDefect). Compile
// once, evaluate many batches; not safe for concurrent use.
type ThreshSim struct {
	tn       *core.Network
	order    []*core.Gate
	inputs   []string
	inSlots  []int
	gates    []pGate
	outSlots []int
	nslots   int
	maxFanin int

	out  [][]uint64  // [output][word], reused across calls
	base []fireTable // exact-weight tables, built at compile time
	work []fireTable // rebuilt per perturbed/defect evaluation

	// per-width kernels, allocated on first use
	k1 *threshKern[b1]
	k4 *threshKern[b4]
	k8 *threshKern[b8]
}

// CompileThresh prepares the packed evaluator. The gate order is
// tn.TopoGates(), identical to core.Evaluator.GateOrder(), so noise
// slices drawn for one are valid for the other.
func CompileThresh(tn *core.Network) (*ThreshSim, error) {
	order, err := tn.TopoGates()
	if err != nil {
		return nil, err
	}
	s := &ThreshSim{tn: tn, order: order}
	slot := make(map[string]int, len(tn.Inputs)+len(order))
	for _, in := range tn.Inputs {
		slot[in] = len(slot)
		s.inputs = append(s.inputs, in)
		s.inSlots = append(s.inSlots, slot[in])
	}
	maxFanin := 0
	for _, g := range order {
		if len(g.Inputs) > PackedFaninLimit {
			return nil, fmt.Errorf("%w: gate %s fanin %d (max %d)",
				ErrFaninLimit, g.Name, len(g.Inputs), PackedFaninLimit)
		}
		if len(g.Inputs) > maxFanin {
			maxFanin = len(g.Inputs)
		}
		slot[g.Name] = len(slot)
	}
	s.nslots = len(slot)
	s.maxFanin = maxFanin
	s.base = make([]fireTable, len(order))
	s.work = make([]fireTable, len(order))
	for gi, g := range order {
		pg := pGate{g: g, slot: slot[g.Name], size: 1 << uint(len(g.Inputs))}
		for _, in := range g.Inputs {
			is, ok := slot[in]
			if !ok {
				return nil, fmt.Errorf("fsim: gate %s input %s is undriven", g.Name, in)
			}
			pg.ins = append(pg.ins, is)
		}
		s.gates = append(s.gates, pg)
		s.base[gi] = newFireTable(len(g.Inputs))
		s.work[gi] = newFireTable(len(g.Inputs))
		fillExactFire(g, &s.base[gi])
	}
	for _, o := range tn.Outputs {
		os, ok := slot[o]
		if !ok {
			return nil, fmt.Errorf("fsim: output %s is undriven", o)
		}
		s.outSlots = append(s.outSlots, os)
	}
	s.out = make([][]uint64, len(s.outSlots))
	return s, nil
}

// GateOrder exposes the evaluation order; noise slices passed to
// EvalPerturbed and Defect fields are aligned with it.
func (s *ThreshSim) GateOrder() []*core.Gate { return s.order }

// fillExactFire enumerates the gate's integer-weight truth table.
func fillExactFire(g *core.Gate, ft *fireTable) {
	ft.clear()
	for m := 0; m < 1<<uint(len(g.Inputs)); m++ {
		sum := 0
		for i, w := range g.Weights {
			if m>>uint(i)&1 == 1 {
				sum += w
			}
		}
		if sum >= g.T {
			ft.set(m)
		}
	}
}

// fillNoisyFire enumerates the truth table under real-valued weight noise
// and threshold drift. The per-minterm sum accumulates float64 terms in
// ascending input order — exactly the association the scalar
// core.Evaluator.EvalPerturbed uses — so packed and scalar agree bit for
// bit even on razor-edge sums.
func fillNoisyFire(g *core.Gate, noise []float64, drift float64, ft *fireTable) {
	ft.clear()
	t := float64(g.T) + drift
	for m := 0; m < 1<<uint(len(g.Inputs)); m++ {
		sum := 0.0
		for i, w := range g.Weights {
			if m>>uint(i)&1 == 1 {
				if noise != nil {
					sum += float64(w) + noise[i]
				} else {
					sum += float64(w)
				}
			}
		}
		if sum >= t {
			ft.set(m)
		}
	}
}

// Eval computes the packed outputs under the exact integer weights.
func (s *ThreshSim) Eval(b *Batch) ([][]uint64, error) {
	return s.evalWith(b, s.base, nil, nil)
}

// EvalPerturbed computes the packed outputs with per-gate weight noise
// (noise[gi] aligned with GateOrder()[gi].Weights), the w' = w +
// v·U(−0.5,0.5) model of §VI-C.
func (s *ThreshSim) EvalPerturbed(b *Batch, noise [][]float64) ([][]uint64, error) {
	for gi := range s.gates {
		fillNoisyFire(s.gates[gi].g, noise[gi], 0, &s.work[gi])
	}
	return s.evalWith(b, s.work, nil, nil)
}

// EvalDefect computes the packed outputs under a defect instance, writing
// per-gate output words into trace ([gate][word], rows at least
// b.Words() long) when trace is non-nil.
func (s *ThreshSim) EvalDefect(b *Batch, d *Defect, trace [][]uint64) ([][]uint64, error) {
	tabs := s.base
	if d != nil && (d.WeightNoise != nil || d.ThresholdNoise != nil) {
		tabs = s.work
		for gi := range s.gates {
			var wn []float64
			drift := 0.0
			if d.WeightNoise != nil {
				wn = d.WeightNoise[gi]
			}
			if d.ThresholdNoise != nil {
				drift = d.ThresholdNoise[gi]
			}
			fillNoisyFire(s.gates[gi].g, wn, drift, &s.work[gi])
		}
	}
	var stuck []int8
	if d != nil {
		stuck = d.Stuck
	}
	return s.evalWith(b, tabs, stuck, trace)
}

// evalWith sizes the output rows and dispatches the generic inner loop at
// the batch's lane width.
func (s *ThreshSim) evalWith(b *Batch, tabs []fireTable, stuck []int8, trace [][]uint64) ([][]uint64, error) {
	cols, err := b.columns(s.inputs)
	if err != nil {
		return nil, err
	}
	row := b.Words()
	for o := range s.out {
		if cap(s.out[o]) < row {
			s.out[o] = make([]uint64, row)
		}
		s.out[o] = s.out[o][:row]
	}
	switch b.width {
	case W4:
		if s.k4 == nil {
			s.k4 = &threshKern[b4]{vals: make([]b4, s.nslots), mts: make([]b4, 1<<uint(s.maxFanin))}
		}
		runThresh(s, s.k4, b, cols, tabs, stuck, trace)
	case W8:
		if s.k8 == nil {
			s.k8 = &threshKern[b8]{vals: make([]b8, s.nslots), mts: make([]b8, 1<<uint(s.maxFanin))}
		}
		runThresh(s, s.k8, b, cols, tabs, stuck, trace)
	default:
		if s.k1 == nil {
			s.k1 = &threshKern[b1]{vals: make([]b1, s.nslots), mts: make([]b1, 1<<uint(s.maxFanin))}
		}
		runThresh(s, s.k1, b, cols, tabs, stuck, trace)
	}
	return s.out, nil
}

// runThresh is the generic packed inner loop: per lane block, load the
// input blocks, evaluate every gate through its fire table over an
// incrementally doubled minterm-mask array, and collect the outputs.
func runThresh[B lword[B]](s *ThreshSim, k *threshKern[B], b *Batch, cols []int, tabs []fireTable, stuck []int8, trace [][]uint64) {
	var zero B
	wpb := zero.words()
	mts := k.mts
	for blk := 0; blk < b.blocks; blk++ {
		base := blk * wpb
		for i, slot := range s.inSlots {
			k.vals[slot] = zero.load(b.words[cols[i]][base:])
		}
		for gi := range s.gates {
			pg := &s.gates[gi]
			if stuck != nil && stuck[gi] >= 0 {
				var word B
				if stuck[gi] == 1 {
					word = zero.ones()
				}
				k.vals[pg.slot] = word
				if trace != nil {
					word.store(trace[gi][base:])
				}
				continue
			}
			// Build the 2^k minterm masks by recursive doubling,
			// processing fanins in reverse so input i lands at index
			// bit i: each pass splits every existing mask on one input
			// block, costing ~2·2^k block-ops total.
			mts[0] = zero.ones()
			size := 1
			for i := len(pg.ins) - 1; i >= 0; i-- {
				w := k.vals[pg.ins[i]]
				for j := size - 1; j >= 0; j-- {
					t := mts[j]
					mts[2*j+1] = t.and(w)
					mts[2*j] = t.andNot(w)
				}
				size <<= 1
			}
			// OR the smaller of the ON/OFF minterm sets; the minterm
			// masks partition the lanes, so the OFF union is the exact
			// complement of the ON union. The fire words stay 64-bit —
			// they index minterms, not vectors.
			ft := &tabs[gi]
			invert := 2*ft.ones > size
			var acc B
			words := (size + lanes - 1) / lanes
			for wi := 0; wi < words; wi++ {
				fw := ft.bits[wi]
				if invert {
					fw = ^fw
				}
				if rem := size - wi*lanes; rem < lanes {
					fw &= uint64(1)<<uint(rem) - 1
				}
				for fw != 0 {
					acc = acc.or(mts[wi*lanes+bits.TrailingZeros64(fw)])
					fw &= fw - 1
				}
			}
			if invert {
				acc = acc.not()
			}
			k.vals[pg.slot] = acc
			if trace != nil {
				acc.store(trace[gi][base:])
			}
		}
		for o, slot := range s.outSlots {
			k.vals[slot].store(s.out[o][base:])
		}
	}
}
