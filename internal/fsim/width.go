package fsim

import "fmt"

// Width selects the lane-block width of the packed engine: the number of
// 64-bit words a kernel advances per step, i.e. one W×64-lane block. The
// packed memory layout is width-independent — every batch, output row,
// trace row, and mask is a flat []uint64 with vector v living in bit v%64
// of word v/64 — so all widths produce bit-identical results; wider
// blocks only change how many words the inner loops touch per iteration,
// which the compiler turns into 256/512-bit vector ops on fixed-size
// arrays under GOAMD64=v3.
type Width int

// Supported widths. W1 is the portable default; W4 and W8 map to 256-
// and 512-bit blocks respectively.
const (
	W1 Width = 1
	W4 Width = 4
	W8 Width = 8
)

// DefaultWidth is the width used when none is requested (the portable
// single-word path).
const DefaultWidth = W1

// Widths lists the supported lane widths, narrowest first.
func Widths() []Width { return []Width{W1, W4, W8} }

// Valid reports whether w is a supported width.
func (w Width) Valid() bool { return w == W1 || w == W4 || w == W8 }

// Words is the number of 64-bit words per lane block.
func (w Width) Words() int { return int(w) }

// Lanes is the number of vectors per lane block.
func (w Width) Lanes() int { return int(w) * 64 }

// String renders the width as its word count ("1", "4", "8").
func (w Width) String() string { return fmt.Sprintf("%d", int(w)) }

// ParseWidth parses a -width style flag value ("1", "4", or "8").
func ParseWidth(s string) (Width, error) {
	switch s {
	case "1":
		return W1, nil
	case "4":
		return W4, nil
	case "8":
		return W8, nil
	}
	return 0, fmt.Errorf("fsim: unsupported lane width %q (want 1, 4, or 8)", s)
}

// or0 returns w, substituting the default for the zero value so config
// structs can leave the width unset.
func (w Width) or0() Width {
	if w == 0 {
		return DefaultWidth
	}
	return w
}

// The lane-block types: fixed-size arrays of 64-bit words with value-
// receiver bitwise ops. Every method is a short fixed-trip-count loop or
// a word-wise expression, so the compiler inlines and — for b4/b8 under
// GOAMD64=v3 — auto-vectorizes them. The lword constraint below is the
// only seam the generic kernels in bool.go and thresh.go need.
type (
	b1 [1]uint64
	b4 [4]uint64
	b8 [8]uint64
)

// lword is the lane-word constraint: the bitwise algebra plus flat
// load/store against the width-independent []uint64 layout. load and
// ones ignore their receiver (Go has no static methods); call them on
// the zero value.
type lword[B any] interface {
	and(B) B
	or(B) B
	xor(B) B
	andNot(B) B
	not() B
	isZero() bool
	isOnes() bool
	words() int
	ones() B
	load(src []uint64) B
	store(dst []uint64)
}

func (a b1) and(b b1) b1    { return b1{a[0] & b[0]} }
func (a b1) or(b b1) b1     { return b1{a[0] | b[0]} }
func (a b1) xor(b b1) b1    { return b1{a[0] ^ b[0]} }
func (a b1) andNot(b b1) b1 { return b1{a[0] &^ b[0]} }
func (a b1) not() b1        { return b1{^a[0]} }
func (a b1) isZero() bool   { return a[0] == 0 }
func (a b1) isOnes() bool   { return a[0] == ^uint64(0) }
func (b1) words() int       { return 1 }
func (b1) ones() b1         { return b1{^uint64(0)} }
func (b1) load(src []uint64) b1 {
	return b1{src[0]}
}
func (a b1) store(dst []uint64) {
	dst[0] = a[0]
}

func (a b4) and(b b4) b4 {
	for i := range a {
		a[i] &= b[i]
	}
	return a
}
func (a b4) or(b b4) b4 {
	for i := range a {
		a[i] |= b[i]
	}
	return a
}
func (a b4) xor(b b4) b4 {
	for i := range a {
		a[i] ^= b[i]
	}
	return a
}
func (a b4) andNot(b b4) b4 {
	for i := range a {
		a[i] &^= b[i]
	}
	return a
}
func (a b4) not() b4 {
	for i := range a {
		a[i] = ^a[i]
	}
	return a
}
func (a b4) isZero() bool { return a[0]|a[1]|a[2]|a[3] == 0 }
func (a b4) isOnes() bool { return a[0]&a[1]&a[2]&a[3] == ^uint64(0) }
func (b4) words() int     { return 4 }
func (b4) ones() b4 {
	return b4{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
}
func (b4) load(src []uint64) b4 {
	var a b4
	copy(a[:], src[:4])
	return a
}
func (a b4) store(dst []uint64) {
	copy(dst[:4], a[:])
}

func (a b8) and(b b8) b8 {
	for i := range a {
		a[i] &= b[i]
	}
	return a
}
func (a b8) or(b b8) b8 {
	for i := range a {
		a[i] |= b[i]
	}
	return a
}
func (a b8) xor(b b8) b8 {
	for i := range a {
		a[i] ^= b[i]
	}
	return a
}
func (a b8) andNot(b b8) b8 {
	for i := range a {
		a[i] &^= b[i]
	}
	return a
}
func (a b8) not() b8 {
	for i := range a {
		a[i] = ^a[i]
	}
	return a
}
func (a b8) isZero() bool {
	return a[0]|a[1]|a[2]|a[3]|a[4]|a[5]|a[6]|a[7] == 0
}
func (a b8) isOnes() bool {
	return a[0]&a[1]&a[2]&a[3]&a[4]&a[5]&a[6]&a[7] == ^uint64(0)
}
func (b8) words() int { return 8 }
func (b8) ones() b8 {
	return b8{
		^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0),
		^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0),
	}
}
func (b8) load(src []uint64) b8 {
	var a b8
	copy(a[:], src[:8])
	return a
}
func (a b8) store(dst []uint64) {
	copy(dst[:8], a[:])
}
