package fsim

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"tels/internal/core"
	"tels/internal/network"
)

// ExhaustiveInputs is the widest network the yield estimator checks
// exhaustively, mirroring sim.ExhaustiveLimit; wider networks are sampled
// with DefaultSamples random vectors.
const ExhaustiveInputs = 14

// DefaultSamples is the random-vector sample size for wide networks.
const DefaultSamples = 4096

// YieldConfig controls a Monte-Carlo yield measurement.
type YieldConfig struct {
	// MaxTrials caps the defect instances drawn (default 2000).
	MaxTrials int
	// MinTrials is the floor before early stopping may strike
	// (default 64).
	MinTrials int
	// HalfWidth is the target confidence-interval half-width on the
	// failure rate; sampling stops once the Wilson interval is at least
	// this tight (default 0.02).
	HalfWidth float64
	// Z is the normal quantile of the interval (default 1.96 ≈ 95%).
	Z float64
	// Samples is the random-vector count for networks wider than
	// ExhaustiveInputs (default DefaultSamples).
	Samples int
	// Seed drives both vector sampling and defect drawing.
	Seed int64
	// Width is the lane-block width of the packed engine (default
	// DefaultWidth). It is a pure throughput knob: reports are
	// bit-identical at every width, so it never participates in result
	// digests or report comparisons.
	Width Width
}

func (c YieldConfig) withDefaults() YieldConfig {
	if c.MaxTrials <= 0 {
		c.MaxTrials = 2000
	}
	if c.MinTrials <= 0 {
		c.MinTrials = 64
	}
	if c.MinTrials > c.MaxTrials {
		c.MinTrials = c.MaxTrials
	}
	if c.HalfWidth <= 0 {
		c.HalfWidth = 0.02
	}
	if c.Z <= 0 {
		c.Z = 1.96
	}
	if c.Samples <= 0 {
		c.Samples = DefaultSamples
	}
	c.Width = c.Width.or0()
	return c
}

// InvalidInput reports whether err stems from a request the packed engine
// rejects by design — too many inputs for an exhaustive batch, or a gate
// fanin beyond the packed limit — rather than an internal failure.
// Service runners map it to the invalid_request error code.
func InvalidInput(err error) bool {
	return errors.Is(err, ErrTooManyInputs) || errors.Is(err, ErrFaninLimit)
}

// GateImpact ranks one gate's contribution to observed failures.
type GateImpact struct {
	// Gate names the threshold gate.
	Gate string `json:"gate"`
	// Blamed counts failing (trial, vector) pairs attributed to this
	// gate: it was the first gate in topological order whose output
	// flipped on that lane, i.e. the gate whose noise margin was
	// violated before the error propagated.
	Blamed int `json:"blamed"`
	// Flipped counts every (trial, vector) pair in failing trials where
	// the gate's output differed from its clean value, attributed or not.
	Flipped int `json:"flipped"`
}

// YieldReport is the outcome of a yield measurement.
type YieldReport struct {
	Model        string       `json:"model"`
	Trials       int          `json:"trials"`
	Failures     int          `json:"failures"`
	FailureRate  float64      `json:"failure_rate"`
	Yield        float64      `json:"yield"`
	Lo           float64      `json:"ci_lo"`
	Hi           float64      `json:"ci_hi"`
	EarlyStopped bool         `json:"early_stopped"`
	Vectors      int          `json:"vectors"`
	Critical     []GateImpact `json:"critical,omitempty"`
}

// wilson returns the Wilson score interval for fails successes in n
// trials at normal quantile z.
func wilson(fails, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(fails) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	hw := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-hw, center+hw
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// YieldSession is the point-level entry for repeated yield measurements
// of one (golden, implementation) pair: the input batch is packed and the
// golden Boolean reference is evaluated once at session build, then every
// Estimate call reuses them and only re-runs the Monte-Carlo trial loop.
// A sweep over defect models or variation multipliers amortizes the
// packing and reference simulation across all its points.
//
// The shared state is immutable after NewYieldSession, and each Estimate
// call compiles its own private threshold evaluator, so Estimate is safe
// for concurrent use from multiple goroutines.
type YieldSession struct {
	tn     *core.Network
	batch  *Batch
	golden [][]uint64
	// random records that the batch was sampled (wide network) rather
	// than exhaustive, and how many vectors were drawn; Estimate uses it
	// to keep its defect RNG stream aligned with EstimateYield's.
	random  bool
	seed    int64 // the seed that drew a random batch
	samples int
}

// NewYieldSession packs the vector batch (exhaustive up to
// ExhaustiveInputs inputs, cfg.Samples random vectors beyond) and records
// the golden Boolean outputs. Only cfg.Samples and cfg.Seed are read; the
// trial knobs are per-Estimate.
func NewYieldSession(nw *network.Network, tn *core.Network, cfg YieldConfig) (*YieldSession, error) {
	cfg = cfg.withDefaults()
	bsim, err := CompileBool(nw)
	if err != nil {
		return nil, err
	}
	// Probe the threshold side now so a fanin overflow fails at session
	// build rather than on the first point.
	if _, err := CompileThresh(tn); err != nil {
		return nil, err
	}
	inputs := make([]string, len(nw.Inputs))
	for i, in := range nw.Inputs {
		inputs[i] = in.Name
	}
	s := &YieldSession{tn: tn, seed: cfg.Seed, samples: cfg.Samples}
	if len(inputs) <= ExhaustiveInputs {
		s.batch, err = ExhaustiveW(inputs, cfg.Width)
		if err != nil {
			return nil, err
		}
	} else {
		// Consume the seed stream exactly as EstimateYield does so the
		// defect draws that follow in Estimate stay aligned.
		rng := rand.New(rand.NewSource(cfg.Seed))
		s.batch = RandomW(inputs, cfg.Samples, rng, cfg.Width)
		s.random = true
	}
	ref, err := bsim.Eval(s.batch)
	if err != nil {
		return nil, err
	}
	s.golden = make([][]uint64, len(ref))
	for o := range ref {
		s.golden[o] = append([]uint64(nil), ref[o]...)
	}
	return s, nil
}

// Vectors reports the packed vector count shared by every point.
func (s *YieldSession) Vectors() int { return s.batch.Len() }

// VerifyClean checks that tn computes the session's golden outputs on
// every batch vector under exact weights (no defects). The re-synthesis
// loop runs this after splicing hardened gates as a cheap functional
// safety net: a replacement that changed the logic would otherwise
// surface only as a collapsed yield estimate.
func (s *YieldSession) VerifyClean(tn *core.Network) error {
	if len(tn.Outputs) != len(s.golden) {
		return fmt.Errorf("fsim: network has %d outputs, session golden has %d",
			len(tn.Outputs), len(s.golden))
	}
	tsim, err := CompileThresh(tn)
	if err != nil {
		return err
	}
	out, err := tsim.Eval(s.batch)
	if err != nil {
		return err
	}
	for o := range out {
		for wi := range s.batch.mask {
			if diff := (out[o][wi] ^ s.golden[o][wi]) & s.batch.mask[wi]; diff != 0 {
				return fmt.Errorf("fsim: clean mismatch on output %s (word %d)",
					tn.Outputs[o], wi)
			}
		}
	}
	return nil
}

// Estimate runs one Monte-Carlo yield measurement against the session's
// shared batch and golden outputs. For exhaustive batches the report is
// bit-identical to EstimateYield with the same arguments for any
// cfg.Seed; for randomly sampled batches that equivalence holds when
// cfg.Seed matches the session's build seed (other seeds still measure
// the session's fixed vector sample, with defect draws from cfg.Seed).
func (s *YieldSession) Estimate(model DefectModel, cfg YieldConfig) (*YieldReport, error) {
	return s.EstimateFor(s.tn, model, cfg)
}

// EstimateFor measures tn — any threshold implementation of the session's
// golden network, not just the one the session was built with — against
// the shared batch and golden outputs. The selective re-synthesis loop
// (internal/resyn) uses this to re-estimate each hardened revision of the
// network without re-packing the batch or re-simulating the reference.
func (s *YieldSession) EstimateFor(tn *core.Network, model DefectModel, cfg YieldConfig) (*YieldReport, error) {
	cfg = cfg.withDefaults()
	if len(tn.Outputs) != len(s.golden) {
		return nil, fmt.Errorf("fsim: network has %d outputs, session golden has %d",
			len(tn.Outputs), len(s.golden))
	}
	tsim, err := CompileThresh(tn)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	if s.random && cfg.Seed == s.seed {
		// EstimateYield draws the batch from the same stream before the
		// first defect; replay that consumption (one Intn(2) per bit,
		// vector-major) so the defect sequence matches it exactly.
		for i := 0; i < s.samples*len(s.batch.Inputs()); i++ {
			rng.Intn(2)
		}
	}
	return s.estimate(tsim, model, cfg, rng)
}

// EstimateYield measures the fraction of defect instances under which the
// threshold network computes a wrong output on any vector ("the circuit
// fails if there exists any input vector with which TELS generates a
// wrong output value"), stopping early once the failure-rate confidence
// interval is tighter than cfg.HalfWidth. The Boolean network is the
// golden reference; failures are attributed to critical gates by first
// topological flip. Callers measuring many points of the same pair
// should build a YieldSession instead, which packs the batch and golden
// reference once.
func EstimateYield(nw *network.Network, tn *core.Network, model DefectModel, cfg YieldConfig) (*YieldReport, error) {
	cfg = cfg.withDefaults()
	s, err := NewYieldSession(nw, tn, cfg)
	if err != nil {
		return nil, err
	}
	tsim, err := CompileThresh(tn)
	if err != nil {
		return nil, err
	}
	// Re-derive the RNG the session used for batch sampling so defect
	// draws continue the same stream (no-op consumption for exhaustive
	// batches, matching the historical single-call behavior).
	rng := rand.New(rand.NewSource(cfg.Seed))
	if s.random {
		for i := 0; i < cfg.Samples*len(s.batch.Inputs()); i++ {
			rng.Intn(2)
		}
	}
	return s.estimate(tsim, model, cfg, rng)
}

// estimate is the shared trial loop; tsim and rng are private to the
// call, everything reached through s is read-only.
func (s *YieldSession) estimate(tsim *ThreshSim, model DefectModel, cfg YieldConfig, rng *rand.Rand) (*YieldReport, error) {
	batch, golden := s.batch, s.golden
	gates := tsim.GateOrder()
	cleanTrace := makeTrace(len(gates), batch.Words())
	if _, err := tsim.EvalDefect(batch, nil, cleanTrace); err != nil {
		return nil, err
	}
	badTrace := makeTrace(len(gates), batch.Words())
	blamed := make([]int, len(gates))
	flipped := make([]int, len(gates))

	rep := &YieldReport{Model: model.Name(), Vectors: batch.Len()}
	for rep.Trials < cfg.MaxTrials {
		d := model.Draw(tsim, rng)
		out, err := tsim.EvalDefect(batch, d, badTrace)
		if err != nil {
			return nil, err
		}
		rep.Trials++
		failedTrial := false
		for wi := range batch.mask {
			var fail uint64
			for o := range out {
				fail |= out[o][wi] ^ golden[o][wi]
			}
			fail &= batch.mask[wi]
			if fail == 0 {
				continue
			}
			failedTrial = true
			// Attribute each failing lane to the first flipped gate in
			// topological order; once a lane is blamed it is removed so
			// downstream propagation is not double-counted. Iterating flat
			// 64-bit words keeps the counts and orderings identical at
			// every lane width.
			remaining := fail
			for gi := range gates {
				flip := (cleanTrace[gi][wi] ^ badTrace[gi][wi]) & batch.mask[wi]
				if flip == 0 {
					continue
				}
				flipped[gi] += bits.OnesCount64(flip & fail)
				if hit := flip & remaining; hit != 0 {
					blamed[gi] += bits.OnesCount64(hit)
					remaining &^= hit
				}
			}
		}
		if failedTrial {
			rep.Failures++
		}
		lo, hi := wilson(rep.Failures, rep.Trials, cfg.Z)
		if rep.Trials >= cfg.MinTrials && (hi-lo)/2 <= cfg.HalfWidth {
			rep.EarlyStopped = rep.Trials < cfg.MaxTrials
			break
		}
	}

	rep.FailureRate = float64(rep.Failures) / float64(rep.Trials)
	rep.Yield = 1 - rep.FailureRate
	rep.Lo, rep.Hi = wilson(rep.Failures, rep.Trials, cfg.Z)
	for gi, g := range gates {
		if blamed[gi] == 0 && flipped[gi] == 0 {
			continue
		}
		rep.Critical = append(rep.Critical, GateImpact{Gate: g.Name, Blamed: blamed[gi], Flipped: flipped[gi]})
	}
	// The ranking must be a total order — blame, then flips, then the
	// (unique) gate name — so reports are byte-stable across runs at equal
	// blame and the selective re-synthesis loop picks the same gates every
	// time.
	sort.Slice(rep.Critical, func(i, j int) bool {
		a, b := rep.Critical[i], rep.Critical[j]
		if a.Blamed != b.Blamed {
			return a.Blamed > b.Blamed
		}
		if a.Flipped != b.Flipped {
			return a.Flipped > b.Flipped
		}
		return a.Gate < b.Gate
	})
	return rep, nil
}

func makeTrace(gates, words int) [][]uint64 {
	tr := make([][]uint64, gates)
	for i := range tr {
		tr[i] = make([]uint64, words)
	}
	return tr
}

// String renders a one-line summary for CLI output.
func (r *YieldReport) String() string {
	stop := "max-trials"
	if r.EarlyStopped {
		stop = "early-stop"
	}
	return fmt.Sprintf("%s: %d/%d trials failed (rate %.3f, 95%% CI [%.3f, %.3f], yield %.3f, %s, %d vectors)",
		r.Model, r.Failures, r.Trials, r.FailureRate, r.Lo, r.Hi, r.Yield, stop, r.Vectors)
}
