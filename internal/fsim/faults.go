package fsim

import (
	"fmt"
	"math/bits"
	"sort"

	"tels/internal/core"
)

// FaultSite is one single-stuck-at fault and its detectability under a
// vector batch.
type FaultSite struct {
	// Gate names the faulty threshold gate.
	Gate string `json:"gate"`
	// Stuck is the fault polarity (0 or 1).
	Stuck int8 `json:"stuck"`
	// Detected counts the vectors on which the fault is observable at a
	// primary output.
	Detected int `json:"detected"`
}

// FaultReport summarizes a deterministic single-stuck-at fault sweep.
type FaultReport struct {
	// Faults is the number of fault sites simulated (two per gate).
	Faults int `json:"faults"`
	// DetectedFaults counts sites observable on at least one vector.
	DetectedFaults int `json:"detected_faults"`
	// Coverage is DetectedFaults / Faults.
	Coverage float64 `json:"coverage"`
	// Vectors is the batch size the sweep used.
	Vectors int `json:"vectors"`
	// Sites lists every fault, hardest to detect first.
	Sites []FaultSite `json:"sites"`
}

// FaultSweep simulates every single stuck-at-0/1 gate fault of the
// threshold network against its own clean behaviour, one packed sweep per
// fault site. Redundant (undetectable) faults surface with Detected == 0
// — on a MOBILE array those are the defects manufacturing test cannot
// screen.
func FaultSweep(tn *core.Network, batch *Batch) (*FaultReport, error) {
	sim, err := CompileThresh(tn)
	if err != nil {
		return nil, err
	}
	clean, err := sim.Eval(batch)
	if err != nil {
		return nil, err
	}
	golden := make([][]uint64, len(clean))
	for o := range clean {
		golden[o] = append([]uint64(nil), clean[o]...)
	}
	gates := sim.GateOrder()
	rep := &FaultReport{Vectors: batch.Len()}
	stuck := make([]int8, len(gates))
	for gi, g := range gates {
		for _, sv := range []int8{0, 1} {
			for i := range stuck {
				stuck[i] = -1
			}
			stuck[gi] = sv
			out, err := sim.EvalDefect(batch, &Defect{Stuck: stuck}, nil)
			if err != nil {
				return nil, err
			}
			detected := 0
			for wi := range batch.mask {
				var fail uint64
				for o := range out {
					fail |= out[o][wi] ^ golden[o][wi]
				}
				detected += bits.OnesCount64(fail & batch.mask[wi])
			}
			rep.Faults++
			if detected > 0 {
				rep.DetectedFaults++
			}
			rep.Sites = append(rep.Sites, FaultSite{Gate: g.Name, Stuck: sv, Detected: detected})
		}
	}
	rep.Coverage = float64(rep.DetectedFaults) / float64(rep.Faults)
	sort.Slice(rep.Sites, func(i, j int) bool {
		a, b := rep.Sites[i], rep.Sites[j]
		if a.Detected != b.Detected {
			return a.Detected < b.Detected
		}
		if a.Gate != b.Gate {
			return a.Gate < b.Gate
		}
		return a.Stuck < b.Stuck
	})
	return rep, nil
}

// String renders a one-line summary for CLI output.
func (r *FaultReport) String() string {
	return fmt.Sprintf("%d/%d stuck-at faults detectable (coverage %.1f%%, %d vectors)",
		r.DetectedFaults, r.Faults, 100*r.Coverage, r.Vectors)
}
