package cluster

import (
	"sync"
	"time"
)

// Health is the per-peer circuit breaker: consecutive transport
// failures trip a peer into a cooldown during which the dispatch layer
// computes the peer's keys locally instead of waiting on it. After the
// cooldown one probe request is allowed through (half-open); its
// outcome closes or re-trips the breaker. Inflight and error counters
// feed the cluster_peer_* metrics.
type Health struct {
	threshold int           // consecutive failures that trip the breaker
	cooldown  time.Duration // how long a tripped peer stays out of rotation

	mu    sync.Mutex
	peers map[string]*peerHealth
}

type peerHealth struct {
	consecFails int
	downUntil   time.Time
	probing     bool // a half-open probe is in flight
	inflight    int64
	requests    int64
	errors      int64
	trips       int64
}

// PeerStats is one peer's health snapshot.
type PeerStats struct {
	Inflight int64
	Requests int64
	Errors   int64
	Trips    int64
	Down     bool
}

// NewHealth builds a breaker tripping after threshold consecutive
// failures (≤0 → 3) for cooldown (≤0 → 2s).
func NewHealth(threshold int, cooldown time.Duration) *Health {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &Health{threshold: threshold, cooldown: cooldown, peers: make(map[string]*peerHealth)}
}

func (h *Health) peer(addr string) *peerHealth {
	p, ok := h.peers[addr]
	if !ok {
		p = &peerHealth{}
		h.peers[addr] = p
	}
	return p
}

// Available reports whether the peer should be dispatched to: the
// breaker is closed, or its cooldown has expired and no half-open probe
// is already occupying the slot.
func (h *Health) Available(addr string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(addr)
	if p.downUntil.IsZero() || time.Now().After(p.downUntil) {
		return !p.probing || p.downUntil.IsZero()
	}
	return false
}

// Begin records the start of one request to the peer. A request started
// against a tripped-but-cooled-down peer becomes the half-open probe.
func (h *Health) Begin(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(addr)
	p.inflight++
	p.requests++
	if !p.downUntil.IsZero() && time.Now().After(p.downUntil) {
		p.probing = true
	}
}

// End records the outcome of one request. Success closes the breaker;
// a failure counts toward the trip threshold (or re-trips a half-open
// peer immediately).
func (h *Health) End(addr string, failed bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(addr)
	p.inflight--
	if !failed {
		p.consecFails = 0
		p.downUntil = time.Time{}
		p.probing = false
		return
	}
	p.errors++
	p.consecFails++
	if p.probing || p.consecFails >= h.threshold {
		p.downUntil = time.Now().Add(h.cooldown)
		p.trips++
		p.probing = false
	}
}

// Snapshot copies every tracked peer's counters.
func (h *Health) Snapshot() map[string]PeerStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := time.Now()
	out := make(map[string]PeerStats, len(h.peers))
	for addr, p := range h.peers {
		out[addr] = PeerStats{
			Inflight: p.inflight,
			Requests: p.requests,
			Errors:   p.errors,
			Trips:    p.trips,
			Down:     !p.downUntil.IsZero() && now.Before(p.downUntil),
		}
	}
	return out
}
