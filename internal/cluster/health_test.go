package cluster

import (
	"testing"
	"time"
)

func TestHealthBreakerTripAndRecover(t *testing.T) {
	h := NewHealth(3, 50*time.Millisecond)
	const peer = "h1:1"

	fail := func() {
		h.Begin(peer)
		h.End(peer, true)
	}
	ok := func() {
		h.Begin(peer)
		h.End(peer, false)
	}

	if !h.Available(peer) {
		t.Fatal("fresh peer unavailable")
	}
	fail()
	fail()
	if !h.Available(peer) {
		t.Fatal("breaker tripped before threshold")
	}
	ok() // success resets the consecutive count
	fail()
	fail()
	fail()
	if h.Available(peer) {
		t.Fatal("breaker did not trip at threshold")
	}
	st := h.Snapshot()[peer]
	if st.Trips != 1 || !st.Down {
		t.Fatalf("snapshot after trip = %+v", st)
	}

	time.Sleep(60 * time.Millisecond)
	if !h.Available(peer) {
		t.Fatal("peer not half-open after cooldown")
	}
	// The probe occupies the half-open slot: no second request allowed.
	h.Begin(peer)
	if h.Available(peer) {
		t.Fatal("second request admitted during half-open probe")
	}
	h.End(peer, true) // probe fails -> re-trip immediately
	if h.Available(peer) {
		t.Fatal("failed probe did not re-trip the breaker")
	}

	time.Sleep(60 * time.Millisecond)
	ok() // successful probe closes the breaker
	if !h.Available(peer) {
		t.Fatal("successful probe did not close the breaker")
	}
	st = h.Snapshot()[peer]
	if st.Down || st.Trips != 2 || st.Inflight != 0 {
		t.Fatalf("snapshot after recovery = %+v", st)
	}
}

func TestHealthPeersIndependent(t *testing.T) {
	h := NewHealth(1, time.Minute)
	h.Begin("bad:1")
	h.End("bad:1", true)
	if h.Available("bad:1") {
		t.Fatal("bad peer still available")
	}
	if !h.Available("good:2") {
		t.Fatal("unrelated peer affected by another peer's breaker")
	}
}
