package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testPeer is an httptest server speaking just enough of the
// /v1/cluster/* surface for transport-level tests.
func testPeer(t *testing.T, handler http.HandlerFunc) string {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func twoPeerCluster(t *testing.T, remote string, cfg Config) *Cluster {
	t.Helper()
	cfg.Self = "self:0"
	cfg.Peers = []string{"self:0", remote}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFetchHitMissUnavailable(t *testing.T) {
	addr := testPeer(t, func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasSuffix(r.URL.Path, "/hit"):
			w.Write([]byte(`{"kind":"yield"}`))
		case strings.HasSuffix(r.URL.Path, "/miss"):
			w.WriteHeader(http.StatusNotFound)
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	})
	c := twoPeerCluster(t, addr, Config{})
	ctx := context.Background()

	data, err := c.Fetch(ctx, addr, "hit")
	if err != nil || string(data) != `{"kind":"yield"}` {
		t.Fatalf("hit: data=%q err=%v", data, err)
	}
	if _, err := c.Fetch(ctx, addr, "miss"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss: err=%v, want ErrNotFound", err)
	}
	if _, err := c.Fetch(ctx, addr, "err"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("5xx: err=%v, want ErrUnavailable", err)
	}
	// Misses are healthy answers: only the 5xx should have counted.
	if st := c.Stats()[addr]; st.Errors != 1 || st.Requests != 3 {
		t.Fatalf("stats = %+v, want 1 error across 3 requests", st)
	}
}

func TestComputeRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	addr := testPeer(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"overloaded","message":"queue full"}}`))
			return
		}
		w.Write([]byte(`{"id":"j1","state":"done"}`))
	})
	c := twoPeerCluster(t, addr, Config{
		Retries: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
	})
	data, err := c.Compute(context.Background(), addr, []byte(`{}`))
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if string(data) != `{"id":"j1","state":"done"}` {
		t.Fatalf("Compute body = %q", data)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 retries)", n)
	}
}

func TestComputeExhaustsRetriesOnDeadPeer(t *testing.T) {
	// A listener that was closed: connections are refused.
	srv := httptest.NewServer(http.NotFoundHandler())
	addr := strings.TrimPrefix(srv.URL, "http://")
	srv.Close()

	c := twoPeerCluster(t, addr, Config{
		Retries: 1, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		FailThreshold: 2, Cooldown: time.Minute,
	})
	if _, err := c.Compute(context.Background(), addr, []byte(`{}`)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	// Two failed attempts tripped the breaker; further calls short-circuit.
	if c.Available(addr) {
		t.Fatal("breaker still admits the dead peer")
	}
	if _, err := c.Fetch(context.Background(), addr, "d"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("tripped-peer fetch err = %v, want immediate ErrUnavailable", err)
	}
}

func TestComputeBusyDoesNotTripBreaker(t *testing.T) {
	var calls atomic.Int64
	addr := testPeer(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"overloaded","message":"queue full"}}`))
	})
	c := twoPeerCluster(t, addr, Config{
		Retries: -1, FailThreshold: 2, Cooldown: time.Minute,
	})
	// Far more consecutive queue-full answers than the threshold: each
	// steers the caller to steal, none may mark the live peer dead.
	for i := 0; i < 5; i++ {
		if _, err := c.Compute(context.Background(), addr, []byte(`{}`)); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("call %d: err = %v, want ErrUnavailable", i, err)
		}
	}
	if !c.Available(addr) {
		t.Fatal("queue-full answers tripped the breaker of a live peer")
	}
	if n := calls.Load(); n != 5 {
		t.Fatalf("server saw %d calls, want 5 (no short-circuit)", n)
	}
	if st := c.Stats()[addr]; st.Trips != 0 {
		t.Fatalf("stats = %+v, want zero trips", st)
	}
}

func TestComputeRejectedNotRetried(t *testing.T) {
	var calls atomic.Int64
	addr := testPeer(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":{"code":"invalid_request","message":"bad spec"}}`))
	})
	c := twoPeerCluster(t, addr, Config{Retries: 3, RetryBase: time.Millisecond})
	_, err := c.Compute(context.Background(), addr, []byte(`{}`))
	if err == nil || errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want a permanent rejection", err)
	}
	if !strings.Contains(err.Error(), "invalid_request") {
		t.Fatalf("error %q does not surface the envelope code", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on rejection)", n)
	}
}

func TestComputeHonorsContextDuringBackoff(t *testing.T) {
	addr := testPeer(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	c := twoPeerCluster(t, addr, Config{
		Retries: 5, RetryBase: time.Hour, RetryMax: time.Hour,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Compute(ctx, addr, []byte(`{}`))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the first attempt fail and enter backoff
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Compute did not return after cancellation during backoff")
	}
}

func TestPushStoresOnPeer(t *testing.T) {
	var got atomic.Value
	addr := testPeer(t, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut {
			t.Errorf("method = %s", r.Method)
		}
		got.Store(r.URL.Path)
		w.WriteHeader(http.StatusNoContent)
	})
	c := twoPeerCluster(t, addr, Config{})
	if err := c.Push(context.Background(), addr, "abc123", []byte(`{}`)); err != nil {
		t.Fatalf("Push: %v", err)
	}
	if p, _ := got.Load().(string); p != "/v1/cluster/result/abc123" {
		t.Fatalf("push path = %q", p)
	}
}

func TestOwnerSelfDetection(t *testing.T) {
	c, err := New(Config{Self: "a:1", Peers: []string{"a:1", "b:2", "c:3"}})
	if err != nil {
		t.Fatal(err)
	}
	sawSelf, sawRemote := false, false
	for i := 0; i < 100 && !(sawSelf && sawRemote); i++ {
		addr, self := c.Owner(digestFor(i))
		if self {
			if addr != "a:1" {
				t.Fatalf("self=true but addr=%s", addr)
			}
			sawSelf = true
		} else {
			sawRemote = true
		}
	}
	if !sawSelf || !sawRemote {
		t.Fatal("owner split degenerate across 100 digests")
	}
}
