package cluster

import (
	"context"
	"errors"
	"net/http"
	"time"
)

// Config assembles one peer's view of the fleet.
type Config struct {
	// Self is this peer's own address as it appears in Peers.
	Self string
	// Peers is the static ring membership (every peer must be started
	// with the same list).
	Peers []string
	// VNodes is the virtual-node count per peer (0 = DefaultVNodes).
	VNodes int

	// FillTimeout bounds one cache-fill lookup on the owner peer
	// (0 = 500ms). Fills are an optimization: a slow owner must never
	// delay local compute by more than this.
	FillTimeout time.Duration
	// Retries is how many times a transiently failing compute call is
	// retried with backoff before the work is stolen back (0 = 2).
	Retries int
	// RetryBase and RetryMax bound the exponential backoff between
	// retries (0 = 25ms / 400ms).
	RetryBase time.Duration
	RetryMax  time.Duration

	// HedgeQuantile is the latency quantile a remote request must
	// exceed before a local hedge is launched (0 = 0.95).
	HedgeQuantile float64
	// HedgeMultiplier scales the quantile into the hedge delay (0 = 3):
	// hedge after 3× the p95 of recent remote latencies.
	HedgeMultiplier float64
	// HedgeMin and HedgeMax clamp the hedge delay (0 = 100ms / 10s).
	// Until enough latency samples exist the delay is HedgeMax, so cold
	// starts don't duplicate work on a guess.
	HedgeMin time.Duration
	HedgeMax time.Duration

	// FailThreshold consecutive transport failures trip a peer's
	// breaker for Cooldown (0 = 3 / 2s).
	FailThreshold int
	Cooldown      time.Duration

	// HTTPClient overrides the transport's client (tests).
	HTTPClient *http.Client

	// AuthToken is the shared cluster bearer token attached to every
	// peer call (telsd -cluster-key). Empty sends no credentials — an
	// open-mode fleet.
	AuthToken string
}

func (c Config) withDefaults() Config {
	if c.FillTimeout <= 0 {
		c.FillTimeout = 500 * time.Millisecond
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 400 * time.Millisecond
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile > 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMultiplier <= 0 {
		c.HedgeMultiplier = 3
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 100 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 10 * time.Second
	}
	return c
}

// Cluster is one peer's dispatch handle on the fleet: ownership lookup,
// health-gated transport with retries, and the hedge policy.
type Cluster struct {
	cfg       Config
	ring      *Ring
	health    *Health
	latency   *Latency
	transport *Transport
}

// New validates the configuration and builds the cluster handle.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Self, cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	tr := NewTransport(cfg.HTTPClient)
	tr.Auth = cfg.AuthToken
	return &Cluster{
		cfg:       cfg,
		ring:      ring,
		health:    NewHealth(cfg.FailThreshold, cfg.Cooldown),
		latency:   &Latency{},
		transport: tr,
	}, nil
}

// Owner maps a digest to its owner peer and reports whether that is
// this peer itself.
func (c *Cluster) Owner(digest string) (addr string, self bool) {
	addr = c.ring.Owner(digest)
	return addr, addr == c.cfg.Self
}

// Self returns this peer's address.
func (c *Cluster) Self() string { return c.cfg.Self }

// Size returns the fleet size.
func (c *Cluster) Size() int { return c.ring.Size() }

// Peers returns the sorted static peer list.
func (c *Cluster) Peers() []string { return c.ring.Peers() }

// Available reports whether the peer's breaker admits a request.
func (c *Cluster) Available(addr string) bool { return c.health.Available(addr) }

// FillTimeout is the cache-fill lookup bound.
func (c *Cluster) FillTimeout() time.Duration { return c.cfg.FillTimeout }

// HedgeDelay is how long a remote request may run before a local hedge
// is launched: HedgeMultiplier × the HedgeQuantile of recent remote
// latencies, clamped to [HedgeMin, HedgeMax]; HedgeMax until the
// latency window has enough samples.
func (c *Cluster) HedgeDelay() time.Duration {
	p, ok := c.latency.Percentile(c.cfg.HedgeQuantile)
	if !ok {
		return c.cfg.HedgeMax
	}
	d := time.Duration(float64(p) * c.cfg.HedgeMultiplier)
	if d < c.cfg.HedgeMin {
		d = c.cfg.HedgeMin
	}
	if d > c.cfg.HedgeMax {
		d = c.cfg.HedgeMax
	}
	return d
}

// Fetch asks one peer for a cached or persisted result, under the
// breaker. No retries: a fill is an optimization and the caller is
// about to compute anyway.
func (c *Cluster) Fetch(ctx context.Context, addr, digest string) ([]byte, error) {
	if !c.health.Available(addr) {
		return nil, ErrUnavailable
	}
	c.health.Begin(addr)
	data, err := c.transport.GetResult(ctx, addr, digest)
	// A miss is a healthy answer; only transport-level failures count
	// against the peer.
	c.health.End(addr, err != nil && !errors.Is(err, ErrNotFound))
	return data, err
}

// Push stores a result on the owner peer (best-effort, single try).
func (c *Cluster) Push(ctx context.Context, addr, digest string, result []byte) error {
	if !c.health.Available(addr) {
		return ErrUnavailable
	}
	c.health.Begin(addr)
	err := c.transport.PutResult(ctx, addr, digest, result)
	c.health.End(addr, err != nil)
	return err
}

// Compute runs one job to completion on the peer, retrying transient
// failures with jittered exponential backoff. Successful calls feed the
// hedge-delay latency window. The returned bytes are the terminal Job
// JSON; an ErrUnavailable return means the peer is down or saturated
// and the caller should steal the work back locally. It is ComputeAs
// without a tenant attribution.
func (c *Cluster) Compute(ctx context.Context, addr string, request []byte) ([]byte, error) {
	return c.ComputeAs(ctx, addr, "", request)
}

// ComputeAs is Compute with the originating tenant propagated to the
// serving peer, so per-tenant admission holds fleet-wide.
func (c *Cluster) ComputeAs(ctx context.Context, addr, tenant string, request []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if !c.health.Available(addr) {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, ErrUnavailable
		}
		c.health.Begin(addr)
		start := time.Now()
		data, err := c.transport.ComputeAs(ctx, addr, tenant, request)
		// A queue-full answer proves the peer is alive; only failures to
		// answer at all count toward tripping its breaker.
		c.health.End(addr, err != nil && !errors.Is(err, ErrBusy))
		if err == nil {
			c.latency.Observe(time.Since(start))
			return data, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !errors.Is(err, ErrUnavailable) || attempt >= c.cfg.Retries {
			return nil, err
		}
		lastErr = err
		select {
		case <-time.After(Backoff(attempt, c.cfg.RetryBase, c.cfg.RetryMax)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Stats snapshots every peer's health counters for the metrics surface.
func (c *Cluster) Stats() map[string]PeerStats { return c.health.Snapshot() }
