package cluster

import (
	"testing"
	"time"
)

func TestLatencyPercentileNeedsSamples(t *testing.T) {
	var l Latency
	for i := 0; i < minHedgeSamples-1; i++ {
		l.Observe(10 * time.Millisecond)
	}
	if _, ok := l.Percentile(0.95); ok {
		t.Fatal("percentile available below the sample floor")
	}
	l.Observe(10 * time.Millisecond)
	if _, ok := l.Percentile(0.95); !ok {
		t.Fatal("percentile unavailable at the sample floor")
	}
}

func TestLatencyPercentileOrdering(t *testing.T) {
	var l Latency
	for i := 1; i <= 100; i++ { // window keeps the last 64: 37..100ms
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	p50, _ := l.Percentile(0.50)
	p95, _ := l.Percentile(0.95)
	if p50 >= p95 {
		t.Fatalf("p50 %v >= p95 %v", p50, p95)
	}
	if p95 < 90*time.Millisecond || p95 > 100*time.Millisecond {
		t.Fatalf("p95 = %v, want within the retained 37..100ms window's top", p95)
	}
}

func TestBackoffGrowthAndJitter(t *testing.T) {
	base, max := 25*time.Millisecond, 400*time.Millisecond
	for attempt := 0; attempt < 10; attempt++ {
		ideal := base << uint(attempt)
		if ideal > max || ideal <= 0 {
			ideal = max
		}
		for i := 0; i < 20; i++ {
			d := Backoff(attempt, base, max)
			lo := time.Duration(float64(ideal) * 0.75)
			hi := time.Duration(float64(ideal) * 1.25)
			if d < lo || d > hi {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
	// Huge attempt numbers must not overflow into negative sleeps.
	if d := Backoff(500, base, max); d <= 0 || d > time.Duration(float64(max)*1.25) {
		t.Fatalf("overflowing attempt produced %v", d)
	}
}

func TestHedgeDelayColdStartAndClamp(t *testing.T) {
	c, err := New(Config{
		Self: "a:1", Peers: []string{"a:1", "b:2"},
		HedgeMin: 50 * time.Millisecond, HedgeMax: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := c.HedgeDelay(); d != time.Second {
		t.Fatalf("cold-start hedge delay = %v, want HedgeMax", d)
	}
	for i := 0; i < 16; i++ {
		c.latency.Observe(2 * time.Millisecond)
	}
	// 3 × 2ms = 6ms clamps up to HedgeMin.
	if d := c.HedgeDelay(); d != 50*time.Millisecond {
		t.Fatalf("fast-peer hedge delay = %v, want HedgeMin", d)
	}
	for i := 0; i < 64; i++ {
		c.latency.Observe(10 * time.Second)
	}
	if d := c.HedgeDelay(); d != time.Second {
		t.Fatalf("slow-peer hedge delay = %v, want clamp at HedgeMax", d)
	}
}
