package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"testing"
)

func digestFor(i int) string {
	h := sha256.Sum256([]byte("key-" + strconv.Itoa(i)))
	return hex.EncodeToString(h[:])
}

func TestNewRingValidation(t *testing.T) {
	cases := []struct {
		name  string
		self  string
		peers []string
	}{
		{"empty", "a", nil},
		{"blank peer", "a", []string{"a", ""}},
		{"duplicate", "a", []string{"a", "a"}},
		{"self missing", "c", []string{"a", "b"}},
	}
	for _, tc := range cases {
		if _, err := NewRing(tc.self, tc.peers, 0); err == nil {
			t.Errorf("%s: NewRing accepted invalid input", tc.name)
		}
	}
	if _, err := NewRing("a", []string{"a"}, 0); err != nil {
		t.Fatalf("single-peer ring rejected: %v", err)
	}
}

func TestRingOwnerAgreesAcrossPeers(t *testing.T) {
	peers := []string{"h1:1", "h2:2", "h3:3"}
	rings := make([]*Ring, len(peers))
	for i, p := range peers {
		r, err := NewRing(p, peers, 0)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
	}
	for i := 0; i < 200; i++ {
		d := digestFor(i)
		want := rings[0].Owner(d)
		for _, r := range rings[1:] {
			if got := r.Owner(d); got != want {
				t.Fatalf("rings disagree on %s: %s vs %s", d, want, got)
			}
		}
	}
}

func TestRingDistribution(t *testing.T) {
	peers := []string{"h1:1", "h2:2", "h3:3", "h4:4"}
	r, err := NewRing(peers[0], peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[r.Owner(digestFor(i))]++
	}
	// With 64 vnodes a 4-peer ring should keep every share within a
	// factor of two of uniform; this is a sanity bound, not a tight one.
	for _, p := range peers {
		share := float64(counts[p]) / n
		if share < 0.125 || share > 0.50 {
			t.Errorf("peer %s owns %.1f%% of keys (counts=%v)", p, 100*share, counts)
		}
	}
}

// TestRingRebalanceOnRemoval pins the consistent-hashing contract: when
// a peer leaves the static list, only keys it owned change owner —
// everything else stays put, so the surviving peers' caches stay warm.
func TestRingRebalanceOnRemoval(t *testing.T) {
	peers := []string{"h1:1", "h2:2", "h3:3", "h4:4"}
	before, err := NewRing("h1:1", peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := before.Without("h3:3", "h1:1")
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != 3 {
		t.Fatalf("Size after removal = %d, want 3", after.Size())
	}

	const n = 2000
	moved, owned := 0, 0
	for i := 0; i < n; i++ {
		d := digestFor(i)
		was, now := before.Owner(d), after.Owner(d)
		if was == "h3:3" {
			owned++
			if now == "h3:3" {
				t.Fatalf("removed peer still owns %s", d)
			}
			continue
		}
		if was != now {
			moved++
			t.Errorf("key %s moved %s -> %s despite its owner surviving", d, was, now)
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys owned by surviving peers moved", moved)
	}
	if owned == 0 {
		t.Fatal("test vacuous: removed peer owned no sampled keys")
	}

	if _, err := before.Without("nope:0", "h1:1"); err == nil {
		t.Error("Without accepted a peer not on the ring")
	}
}
