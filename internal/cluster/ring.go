// Package cluster is the dispatch substrate for a fleet of telsd peers
// behind one content-addressed cache: a static consistent-hash ring with
// virtual nodes maps job digests to owner peers, a per-peer health
// breaker keeps dead or saturated peers out of the request path, a
// latency tracker derives the hedge delay for straggler requests, and a
// small HTTP transport speaks the daemon's /v1/cluster/* endpoints.
//
// The package is deliberately service-agnostic: it moves opaque JSON
// bytes keyed by SHA-256 digests. internal/service owns the dispatch
// policy (remote cache-fill before local compute, sweep fan-out to
// owner peers, hedged requests, stealing work back locally) and the
// wire shapes on both ends.
//
// v1 is gossip-free: every peer is started with the same -peers list
// and the same -self identity, so all rings agree on ownership without
// any membership protocol. A dead peer is handled by the health breaker
// (its keys are computed locally by whoever needs them), not by ring
// mutation — consistent hashing only matters again when the operator
// changes the static list and restarts the fleet, at which point only
// the removed peer's share of the key space moves.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the number of virtual nodes per peer when the
// configuration leaves it zero. 64 points per peer keeps the maximum
// per-peer share within a few percent of uniform for small fleets.
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a peer.
type ringPoint struct {
	hash uint64
	peer string
}

// Ring is an immutable consistent-hash ring over a static peer list.
// Every peer in a fleet builds the same ring from the same list, so
// Owner is a pure function of the digest that all peers agree on.
type Ring struct {
	self   string
	peers  []string // sorted, distinct
	vnodes int
	points []ringPoint // sorted by hash
}

// hash64 maps a string to a position on the circle: the first 8 bytes
// of its SHA-256, big-endian. SHA-256 keeps vnode placement and key
// lookup identical across architectures and Go versions (fnv would too,
// but the digests being placed are already SHA-256 hex — reusing the
// same primitive keeps the whole addressing story one hash function).
func hash64(s string) uint64 {
	h := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(h[:8])
}

// NewRing builds the ring. self must be one of peers; peers must be
// non-empty, distinct, non-blank strings. vnodes ≤ 0 takes
// DefaultVNodes.
func NewRing(self string, peers []string, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	seen := make(map[string]bool, len(sorted))
	for _, p := range sorted {
		if p == "" {
			return nil, fmt.Errorf("cluster: blank peer address")
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
	}
	if !seen[self] {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", self, sorted)
	}
	r := &Ring{
		self:   self,
		peers:  sorted,
		vnodes: vnodes,
		points: make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for _, p := range sorted {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(p + "#" + strconv.Itoa(i)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.peer < b.peer // total order even on (astronomically unlikely) hash ties
	})
	return r, nil
}

// Owner returns the peer owning the key: the first virtual node at or
// clockwise after the key's position on the circle.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer
}

// Self returns this peer's own address.
func (r *Ring) Self() string { return r.self }

// Peers returns the sorted peer list (shared; callers must not mutate).
func (r *Ring) Peers() []string { return r.peers }

// Size returns the number of peers on the ring.
func (r *Ring) Size() int { return len(r.peers) }

// Without returns a new ring with the peer removed — the static-list
// rebalance an operator performs by restarting the fleet with a shorter
// -peers list. Consistent hashing guarantees only the removed peer's
// keys change owner; the rest of the key space is untouched (pinned by
// TestRingRebalanceOnRemoval). newSelf names the caller's identity on
// the new ring (the removed peer cannot keep a ring of its own).
func (r *Ring) Without(peer, newSelf string) (*Ring, error) {
	kept := make([]string, 0, len(r.peers))
	for _, p := range r.peers {
		if p != peer {
			kept = append(kept, p)
		}
	}
	if len(kept) == len(r.peers) {
		return nil, fmt.Errorf("cluster: peer %q not on the ring", peer)
	}
	return NewRing(newSelf, kept, r.vnodes)
}
