package cluster

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// latencyWindow is the sliding window of recent remote request
// latencies the hedge delay is derived from. Small and fixed: hedging
// should react to the last few dozen requests, not the whole run.
const latencyWindow = 64

// minHedgeSamples gates hedging until the window holds enough
// observations for a percentile to mean anything; before that the
// hedge delay is the configured maximum, so cold starts never duplicate
// work on a guess.
const minHedgeSamples = 8

// Latency tracks a sliding window of request latencies and reports
// percentiles of it.
type Latency struct {
	mu      sync.Mutex
	samples [latencyWindow]time.Duration
	n       int // filled entries (≤ latencyWindow)
	next    int // ring cursor
}

// Observe records one completed request's latency.
func (l *Latency) Observe(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples[l.next] = d
	l.next = (l.next + 1) % latencyWindow
	if l.n < latencyWindow {
		l.n++
	}
}

// Percentile returns the q-quantile (0 < q ≤ 1) of the window, and
// whether the window holds at least minHedgeSamples observations.
func (l *Latency) Percentile(q float64) (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n < minHedgeSamples {
		return 0, false
	}
	tmp := make([]time.Duration, l.n)
	copy(tmp, l.samples[:l.n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	i := int(q*float64(l.n)) - 1
	if i < 0 {
		i = 0
	}
	if i >= l.n {
		i = l.n - 1
	}
	return tmp[i], true
}

// jitterRand guards the shared jitter source; backoff is called from
// many dispatch goroutines at once.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// Backoff returns the pause before retry attempt (0-based): an
// exponential of base capped at max, with ±25% jitter so a fleet of
// retriers doesn't re-converge on the struggling peer in lockstep.
func Backoff(attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if max <= 0 {
		max = 400 * time.Millisecond
	}
	d := base << uint(attempt)
	if d > max || d <= 0 { // d ≤ 0 on shift overflow
		d = max
	}
	jitterMu.Lock()
	f := 0.75 + 0.5*jitterRand.Float64()
	jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}
