package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// The transport speaks the daemon's cluster-internal v1 endpoints. The
// payloads are opaque to this package: results and compute requests are
// JSON produced and consumed by internal/service on both ends.
//
//	GET  /v1/cluster/result/{digest}  persisted-or-cached result bytes, 404 if absent
//	PUT  /v1/cluster/result/{digest}  store a result computed by a non-owner
//	POST /v1/cluster/compute          run one job to completion, return its Job JSON

// Classified transport errors. ErrUnavailable covers everything the
// caller should treat as "peer down or saturated" — connection
// failures, 5xx, and queue-full 503s — i.e. retry with backoff or steal
// the work back locally. ErrBusy narrows ErrUnavailable (errors.Is
// matches both) to a live peer that answered 503: saturation steers
// retries and stealing exactly like unreachability, but it must not
// count toward the breaker, or a loaded fleet talks itself into marking
// healthy peers dead. ErrNotFound is a clean cache miss.
var (
	ErrNotFound    = errors.New("cluster: result not found on peer")
	ErrUnavailable = errors.New("cluster: peer unavailable")
	ErrBusy        = fmt.Errorf("%w: peer saturated", ErrUnavailable)
)

// TenantHeader carries the originating tenant on peer-to-peer compute
// calls, so the serving peer schedules the fanned-out work under the
// tenant that submitted it.
const TenantHeader = "X-Tels-Tenant"

// Transport is the raw HTTP client for peer-to-peer calls.
type Transport struct {
	client *http.Client
	// Auth, when set, is the shared cluster bearer token attached to
	// every peer call (telsd -cluster-key); empty sends no credentials,
	// matching an open-mode fleet.
	Auth string
}

// authorize attaches the shared cluster credential, if any.
func (t *Transport) authorize(req *http.Request) {
	if t.Auth != "" {
		req.Header.Set("Authorization", "Bearer "+t.Auth)
	}
}

// NewTransport wraps the HTTP client (nil → a dedicated client with
// sane connection pooling; the default client's shared pool would let
// an unrelated slow download starve cluster traffic).
func NewTransport(c *http.Client) *Transport {
	if c == nil {
		c = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     60 * time.Second,
		}}
	}
	return &Transport{client: c}
}

func peerURL(addr, path string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimRight(addr, "/") + path
	}
	return "http://" + addr + path
}

// classify folds an http round-trip outcome into the package's error
// vocabulary. A context error stays a context error so cancellation and
// deadline handling upstream keep working.
func classify(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrUnavailable, err)
}

// GetResult fetches the peer's cached or persisted result for a digest.
func (t *Transport) GetResult(ctx context.Context, addr, digest string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peerURL(addr, "/v1/cluster/result/"+digest), nil)
	if err != nil {
		return nil, err
	}
	t.authorize(req)
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, classify(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, classify(err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return body, nil
	case resp.StatusCode == http.StatusNotFound:
		return nil, ErrNotFound
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusServiceUnavailable:
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, respError(resp.StatusCode, body))
	}
	return nil, fmt.Errorf("cluster: %s", respError(resp.StatusCode, body))
}

// PutResult pushes a freshly computed result to its owner peer, so the
// owner can serve future cache-fill requests for a digest it never
// computed itself.
func (t *Transport) PutResult(ctx context.Context, addr, digest string, result []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, peerURL(addr, "/v1/cluster/result/"+digest), bytes.NewReader(result))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	t.authorize(req)
	resp, err := t.client.Do(req)
	if err != nil {
		return classify(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNoContent:
		return nil
	case resp.StatusCode >= 500:
		return fmt.Errorf("%w: %s", ErrUnavailable, respError(resp.StatusCode, body))
	}
	return fmt.Errorf("cluster: %s", respError(resp.StatusCode, body))
}

// Compute runs one job to completion on the peer: the body is the
// service's internal Request JSON, the response the terminal Job JSON.
// The request is synchronous on purpose — cancelling ctx tears down the
// connection, which the serving peer observes and cancels the job, so a
// hedge loser releases the remote worker instead of leaking it. It is
// ComputeAs without a tenant attribution.
func (t *Transport) Compute(ctx context.Context, addr string, request []byte) ([]byte, error) {
	return t.ComputeAs(ctx, addr, "", request)
}

// ComputeAs is Compute with the originating tenant attached via
// TenantHeader, so per-tenant admission holds on the serving peer.
func (t *Transport) ComputeAs(ctx context.Context, addr, tenant string, request []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peerURL(addr, "/v1/cluster/compute"), bytes.NewReader(request))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	t.authorize(req)
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, classify(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, classify(err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return body, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		// Queue full, replaying its journal, or shutting down: the peer
		// answered, so it is saturated — not dead.
		return nil, fmt.Errorf("%w: %s", ErrBusy, respError(resp.StatusCode, body))
	case resp.StatusCode >= 500:
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, respError(resp.StatusCode, body))
	}
	return nil, fmt.Errorf("cluster: compute rejected: %s", respError(resp.StatusCode, body))
}

// respError extracts the v1 error envelope's message, falling back to
// the raw body.
func respError(status int, body []byte) string {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error.Message != "" {
		return fmt.Sprintf("%d (%s): %s", status, env.Error.Code, env.Error.Message)
	}
	return fmt.Sprintf("%d: %s", status, strings.TrimSpace(string(body)))
}
