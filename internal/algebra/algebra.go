// Package algebra implements the algebraic (weak) division and kernel
// machinery used for multi-level factorization, following the classical
// Brayton–McMullen formulation that SIS implements. Algebraic expressions
// treat x and !x as unrelated literals; this is exactly what makes the
// extracted network "algebraically factored", the input form the TELS
// synthesis algorithm expects.
package algebra

import (
	"sort"

	"tels/internal/logic"
)

// Lit is an algebraic literal: variable index v in positive phase is 2v,
// in negative phase 2v+1.
type Lit int

// MakeLit builds a literal from a variable index and phase.
func MakeLit(v int, ph logic.Phase) Lit {
	switch ph {
	case logic.Pos:
		return Lit(2 * v)
	case logic.Neg:
		return Lit(2*v + 1)
	}
	panic("algebra: literal from DC phase")
}

// Var returns the variable index of the literal.
func (l Lit) Var() int { return int(l) / 2 }

// Phase returns the phase of the literal.
func (l Lit) Phase() logic.Phase {
	if l%2 == 0 {
		return logic.Pos
	}
	return logic.Neg
}

// Cube is a product of literals, kept sorted and duplicate-free.
type Cube []Lit

// Expr is an algebraic SOP: a set of cubes (their OR).
type Expr []Cube

// FromCover converts a positional cover into an algebraic expression.
func FromCover(f logic.Cover) Expr {
	e := make(Expr, 0, len(f.Cubes))
	for _, c := range f.Cubes {
		var cube Cube
		for v, ph := range c {
			if ph != logic.DC {
				cube = append(cube, MakeLit(v, ph))
			}
		}
		sort.Slice(cube, func(i, j int) bool { return cube[i] < cube[j] })
		e = append(e, cube)
	}
	return e
}

// ToCover converts the expression back to a positional cover over n
// variables. A cube containing both phases of a variable would be
// non-algebraic; it is dropped (it denotes the empty cube).
func (e Expr) ToCover(n int) logic.Cover {
	out := logic.NewCover(n)
nextCube:
	for _, cube := range e {
		c := logic.NewCube(n)
		for _, l := range cube {
			v, ph := l.Var(), l.Phase()
			if c[v] != logic.DC && c[v] != ph {
				continue nextCube
			}
			c[v] = ph
		}
		out.AddCube(c)
	}
	return out
}

// Clone returns a deep copy.
func (e Expr) Clone() Expr {
	out := make(Expr, len(e))
	for i, c := range e {
		out[i] = append(Cube(nil), c...)
	}
	return out
}

// Literals returns the total literal count of the expression.
func (e Expr) Literals() int {
	n := 0
	for _, c := range e {
		n += len(c)
	}
	return n
}

// cubeContainsAll reports whether cube c includes every literal of d.
func cubeContainsAll(c, d Cube) bool {
	i := 0
	for _, l := range d {
		for i < len(c) && c[i] < l {
			i++
		}
		if i >= len(c) || c[i] != l {
			return false
		}
		i++
	}
	return true
}

// cubeMinus returns c with the literals of d removed (d must be contained).
func cubeMinus(c, d Cube) Cube {
	var out Cube
	j := 0
	for _, l := range c {
		if j < len(d) && d[j] == l {
			j++
			continue
		}
		out = append(out, l)
	}
	return out
}

// cubeUnion returns the sorted union of two cubes.
func cubeUnion(c, d Cube) Cube {
	out := make(Cube, 0, len(c)+len(d))
	i, j := 0, 0
	for i < len(c) && j < len(d) {
		switch {
		case c[i] < d[j]:
			out = append(out, c[i])
			i++
		case c[i] > d[j]:
			out = append(out, d[j])
			j++
		default:
			out = append(out, c[i])
			i++
			j++
		}
	}
	out = append(out, c[i:]...)
	out = append(out, d[j:]...)
	return out
}

func cubeKey(c Cube) string {
	b := make([]byte, 0, len(c)*2)
	for _, l := range c {
		b = append(b, byte(l>>8), byte(l))
	}
	return string(b)
}

func cubeEqual(c, d Cube) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// CommonCube returns the largest cube dividing every cube of e (the
// literals common to all cubes). Nil if e is empty or has no common
// literal.
func (e Expr) CommonCube() Cube {
	if len(e) == 0 {
		return nil
	}
	common := append(Cube(nil), e[0]...)
	for _, c := range e[1:] {
		var kept Cube
		for _, l := range common {
			if containsLit(c, l) {
				kept = append(kept, l)
			}
		}
		common = kept
		if len(common) == 0 {
			return nil
		}
	}
	return common
}

func containsLit(c Cube, l Lit) bool {
	i := sort.Search(len(c), func(i int) bool { return c[i] >= l })
	return i < len(c) && c[i] == l
}

// IsCubeFree reports whether no single literal divides every cube and the
// expression has more than one cube (a single cube is never cube-free).
func (e Expr) IsCubeFree() bool {
	if len(e) <= 1 {
		return false
	}
	return len(e.CommonCube()) == 0
}

// MakeCubeFree returns the expression divided by its common cube.
func (e Expr) MakeCubeFree() Expr {
	cc := e.CommonCube()
	if len(cc) == 0 {
		return e.Clone()
	}
	out := make(Expr, len(e))
	for i, c := range e {
		out[i] = cubeMinus(c, cc)
	}
	return out
}

// DivideByCube returns the quotient and remainder of e divided by a single
// cube d: quotient cubes are those containing d, with d removed.
func (e Expr) DivideByCube(d Cube) (quotient, remainder Expr) {
	for _, c := range e {
		if cubeContainsAll(c, d) {
			quotient = append(quotient, cubeMinus(c, d))
		} else {
			remainder = append(remainder, append(Cube(nil), c...))
		}
	}
	return quotient, remainder
}

// WeakDiv computes the algebraic (weak) division e / d, returning the
// quotient q and remainder r such that e = q*d + r with q maximal.
func WeakDiv(e, d Expr) (q, r Expr) {
	if len(d) == 0 {
		return nil, e.Clone()
	}
	var inter map[string]Cube
	for i, dc := range d {
		qi, _ := e.DivideByCube(dc)
		set := make(map[string]Cube, len(qi))
		for _, c := range qi {
			set[cubeKey(c)] = c
		}
		if i == 0 {
			inter = set
			continue
		}
		for k := range inter {
			if _, ok := set[k]; !ok {
				delete(inter, k)
			}
		}
		if len(inter) == 0 {
			break
		}
	}
	if len(inter) == 0 {
		return nil, e.Clone()
	}
	keys := make([]string, 0, len(inter))
	for k := range inter {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		q = append(q, inter[k])
	}
	// r = e - q*d (cube-set difference).
	product := make(map[string]bool, len(q)*len(d))
	for _, qc := range q {
		for _, dc := range d {
			product[cubeKey(cubeUnion(qc, dc))] = true
		}
	}
	for _, c := range e {
		if !product[cubeKey(c)] {
			r = append(r, append(Cube(nil), c...))
		}
	}
	return q, r
}

// Kernel is a cube-free quotient of the expression by one of its
// co-kernels.
type Kernel struct {
	CoKernel Cube
	Expr     Expr
}

// Kernels enumerates all kernels of the expression (including, when the
// expression is itself cube-free, the expression with the empty
// co-kernel), using the classical recursive literal-division algorithm.
func Kernels(e Expr) []Kernel {
	seen := make(map[string]bool)
	var out []Kernel

	add := func(coK Cube, k Expr) {
		key := exprKey(k)
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Kernel{CoKernel: coK, Expr: k.Clone()})
	}

	// Literal universe, sorted.
	litSet := make(map[Lit]bool)
	for _, c := range e {
		for _, l := range c {
			litSet[l] = true
		}
	}
	lits := make([]Lit, 0, len(litSet))
	for l := range litSet {
		lits = append(lits, l)
	}
	sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })

	var rec func(f Expr, coK Cube, minLitIdx int)
	rec = func(f Expr, coK Cube, minLitIdx int) {
		for idx := minLitIdx; idx < len(lits); idx++ {
			l := lits[idx]
			cnt := 0
			for _, c := range f {
				if containsLit(c, l) {
					cnt++
				}
			}
			if cnt < 2 {
				continue
			}
			q, _ := f.DivideByCube(Cube{l})
			cc := q.CommonCube()
			// Skip if a smaller-indexed literal divides the quotient: that
			// kernel is found through the other literal (standard pruning).
			skip := false
			for _, cl := range cc {
				ci := sort.Search(len(lits), func(i int) bool { return lits[i] >= cl })
				if ci < idx {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			k := q.MakeCubeFree()
			newCoK := cubeUnion(cubeUnion(coK, Cube{l}), cc)
			add(newCoK, k)
			rec(k, newCoK, idx+1)
		}
	}

	free := e.MakeCubeFree()
	if len(free) > 1 {
		add(e.CommonCube(), free)
	}
	rec(e, nil, 0)
	return out
}

// Level0 reports whether the kernel expression has no kernels other than
// itself (no literal appears in two or more of its cubes).
func Level0(k Expr) bool {
	count := make(map[Lit]int)
	for _, c := range k {
		for _, l := range c {
			count[l]++
			if count[l] >= 2 {
				return false
			}
		}
	}
	return true
}

func exprKey(e Expr) string {
	keys := make([]string, len(e))
	for i, c := range e {
		keys[i] = cubeKey(c)
	}
	sort.Strings(keys)
	b := make([]byte, 0, 16)
	for _, k := range keys {
		b = append(b, k...)
		b = append(b, 0xff)
	}
	return string(b)
}

// Equal reports whether two expressions are the same cube set.
func Equal(a, b Expr) bool {
	return exprKey(a) == exprKey(b)
}

// Vars returns the sorted variable indices used by the expression.
func (e Expr) Vars() []int {
	set := make(map[int]bool)
	for _, c := range e {
		for _, l := range c {
			set[l.Var()] = true
		}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
