package algebra

import (
	"math/rand"
	"sort"
	"testing"

	"tels/internal/logic"
)

// expr builds an algebraic expression from cube strings over n variables.
func expr(n int, cubes ...string) Expr {
	return FromCover(logic.MustCover(cubes...))
}

func TestFromCoverToCover(t *testing.T) {
	f := logic.MustCover("1-0", "01-")
	e := FromCover(f)
	if len(e) != 2 {
		t.Fatalf("expr has %d cubes", len(e))
	}
	back := e.ToCover(3)
	if !f.Equivalent(back) {
		t.Fatalf("round trip changed function: %v -> %v", f, back)
	}
}

func TestLitEncoding(t *testing.T) {
	l := MakeLit(3, logic.Neg)
	if l.Var() != 3 || l.Phase() != logic.Neg {
		t.Fatalf("lit %d decodes to var %d phase %v", l, l.Var(), l.Phase())
	}
	p := MakeLit(3, logic.Pos)
	if p.Var() != 3 || p.Phase() != logic.Pos {
		t.Fatalf("lit %d decodes wrong", p)
	}
}

func TestCommonCube(t *testing.T) {
	// f = abc + abd: common cube ab.
	e := expr(4, "111-", "11-1")
	cc := e.CommonCube()
	if len(cc) != 2 || cc[0].Var() != 0 || cc[1].Var() != 1 {
		t.Fatalf("CommonCube = %v", cc)
	}
	if e.IsCubeFree() {
		t.Fatal("abc+abd is not cube-free")
	}
	free := e.MakeCubeFree()
	if !free.IsCubeFree() {
		t.Fatalf("MakeCubeFree result not cube-free: %v", free)
	}
	// c + d
	want := expr(4, "--1-", "---1")
	if !Equal(free, want) {
		t.Fatalf("MakeCubeFree = %v, want %v", free, want)
	}
}

func TestWeakDivTextbook(t *testing.T) {
	// Classic: F = ac + ad + bc + bd + e, D = a + b.
	// F/D = c + d, remainder e.
	F := expr(5, "1-1--", "1--1-", "-11--", "-1-1-", "----1")
	D := expr(5, "1----", "-1---")
	q, r := WeakDiv(F, D)
	wantQ := expr(5, "--1--", "---1-")
	wantR := expr(5, "----1")
	if !Equal(q, wantQ) {
		t.Fatalf("quotient = %v, want %v", q, wantQ)
	}
	if !Equal(r, wantR) {
		t.Fatalf("remainder = %v, want %v", r, wantR)
	}
}

func TestWeakDivNoQuotient(t *testing.T) {
	F := expr(3, "11-")
	D := expr(3, "--1")
	q, r := WeakDiv(F, D)
	if len(q) != 0 {
		t.Fatalf("quotient = %v, want empty", q)
	}
	if !Equal(r, F) {
		t.Fatalf("remainder = %v, want original", r)
	}
}

// Reconstruction property: F == Q*D + R as cube sets, for random algebraic
// expressions.
func TestWeakDivReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 300; iter++ {
		n := 3 + rng.Intn(3)
		F := randomExpr(rng, n, 1+rng.Intn(6))
		D := randomExpr(rng, n, 1+rng.Intn(3))
		q, r := WeakDiv(F, D)
		// Rebuild q*d + r.
		var rebuilt Expr
		for _, qc := range q {
			for _, dc := range D {
				rebuilt = append(rebuilt, cubeUnion(qc, dc))
			}
		}
		rebuilt = append(rebuilt, r...)
		if !Equal(dedupe(rebuilt), dedupe(F)) {
			t.Fatalf("iter %d: F=%v D=%v q=%v r=%v rebuilt=%v", iter, F, D, q, r, rebuilt)
		}
	}
}

func dedupe(e Expr) Expr {
	seen := map[string]bool{}
	var out Expr
	for _, c := range e {
		k := cubeKey(c)
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

func randomExpr(rng *rand.Rand, n, cubes int) Expr {
	seen := map[string]bool{}
	var out Expr
	for len(out) < cubes {
		var c Cube
		for v := 0; v < n; v++ {
			switch rng.Intn(3) {
			case 0:
				c = append(c, MakeLit(v, logic.Pos))
			case 1:
				c = append(c, MakeLit(v, logic.Neg))
			}
		}
		if len(c) == 0 {
			continue
		}
		k := cubeKey(c)
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

func TestKernelsTextbook(t *testing.T) {
	// F = adf + aef + bdf + bef + cdf + cef + g
	//   = (a+b+c)(d+e)f + g.
	// Kernels: {a+b+c, d+e, (a+b+c)(d+e)f+g expanded}, the whole F is
	// cube-free so F itself is a kernel.
	vars := 7 // a..g = 0..6
	mk := func(ls ...int) Cube {
		var c Cube
		for _, v := range ls {
			c = append(c, MakeLit(v, logic.Pos))
		}
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		return c
	}
	F := Expr{
		mk(0, 3, 5), mk(0, 4, 5),
		mk(1, 3, 5), mk(1, 4, 5),
		mk(2, 3, 5), mk(2, 4, 5),
		mk(6),
	}
	_ = vars
	ks := Kernels(F)
	foundABC, foundDE, foundSelf := false, false, false
	abc := Expr{mk(0), mk(1), mk(2)}
	de := Expr{mk(3), mk(4)}
	for _, k := range ks {
		if Equal(k.Expr, abc) {
			foundABC = true
		}
		if Equal(k.Expr, de) {
			foundDE = true
		}
		if Equal(k.Expr, F) {
			foundSelf = true
		}
	}
	if !foundABC || !foundDE || !foundSelf {
		t.Fatalf("kernels missing: abc=%v de=%v self=%v (got %d kernels)",
			foundABC, foundDE, foundSelf, len(ks))
	}
}

// Property: every reported kernel is a cube-free quotient of F by its
// co-kernel.
func TestKernelsAreQuotients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 150; iter++ {
		n := 3 + rng.Intn(3)
		F := randomExpr(rng, n, 2+rng.Intn(5))
		for _, k := range Kernels(F) {
			if !k.Expr.IsCubeFree() && len(k.Expr) > 1 {
				t.Fatalf("iter %d: kernel %v is not cube-free", iter, k.Expr)
			}
			if len(k.CoKernel) == 0 {
				// The expression itself (made cube-free); check equality.
				if !Equal(k.Expr, F.MakeCubeFree()) && !Equal(k.Expr, F) {
					t.Fatalf("iter %d: empty co-kernel but expr %v != F %v", iter, k.Expr, F)
				}
				continue
			}
			q, _ := F.DivideByCube(k.CoKernel)
			if !Equal(q.MakeCubeFree(), k.Expr) {
				t.Fatalf("iter %d: kernel %v with co-kernel %v is not the cube-free quotient %v",
					iter, k.Expr, k.CoKernel, q.MakeCubeFree())
			}
		}
	}
}

func TestLevel0(t *testing.T) {
	if !Level0(expr(4, "1---", "-1--")) {
		t.Fatal("a+b should be level 0")
	}
	if Level0(expr(4, "11--", "1-1-")) {
		t.Fatal("ab+ac is not level 0 (a repeats)")
	}
}

func TestVars(t *testing.T) {
	e := expr(5, "1---0", "-1---")
	got := e.Vars()
	want := []int{0, 1, 4}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}
