// Package service turns the batch TELS flow into a long-lived synthesis
// service: a job manager with a bounded worker pool runs the
// BLIF → optimize → synthesize → verify pipeline per job, a
// content-addressed cache short-circuits repeated requests, and a typed
// job API (submit, status, result, list, cancel) backs the cmd/telsd
// HTTP daemon.
package service

import (
	"fmt"
	"time"

	"tels/internal/core"
)

// State is the lifecycle phase of a job.
type State string

// Job states. A job moves queued → running → one of the terminal states
// (done, failed, cancelled). Cancellation may also strike while queued.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Request describes one synthesis job: the source netlist plus the knobs
// cmd/tels exposes. The zero value of every field is usable; defaults are
// normalized by Normalize.
type Request struct {
	// BLIF is the source network in BLIF text form.
	BLIF string `json:"blif"`
	// Script selects the pre-synthesis optimization: "algebraic"
	// (default), "boolean", or "none".
	Script string `json:"script,omitempty"`
	// Mapper selects "tels" (default) or "one2one".
	Mapper string `json:"mapper,omitempty"`
	// Options configure the threshold synthesis core.
	Options core.Options `json:"options"`
	// Verify runs the BDD/simulation equivalence check. Defaults to on;
	// SkipVerify turns it off (named so the zero value keeps the check).
	SkipVerify bool `json:"skip_verify,omitempty"`
	// Timeout bounds the job's wall-clock run time. Zero uses the
	// manager's default.
	Timeout time.Duration `json:"timeout,omitempty"`
}

// Normalize fills defaults and rejects malformed requests.
func (r *Request) Normalize() error {
	if r.BLIF == "" {
		return fmt.Errorf("service: empty blif")
	}
	if r.Script == "" {
		r.Script = "algebraic"
	}
	switch r.Script {
	case "algebraic", "boolean", "none":
	default:
		return fmt.Errorf("service: unknown script %q (want algebraic, boolean, or none)", r.Script)
	}
	if r.Mapper == "" {
		r.Mapper = "tels"
	}
	switch r.Mapper {
	case "tels", "one2one":
	default:
		return fmt.Errorf("service: unknown mapper %q (want tels or one2one)", r.Mapper)
	}
	if r.Options.Fanin == 0 {
		r.Options.Fanin = core.DefaultOptions().Fanin
	}
	// δoff=0 makes the ON (Σ ≥ T+δon) and OFF (Σ ≤ T−δoff) constraints
	// overlap at Σ=T, which the "fire iff Σ ≥ T" evaluator resolves as
	// ON — synthesized networks can then fail verification. Normalize to
	// the paper's default δoff=1, matching the cmd/tels -doff default.
	if r.Options.DeltaOff == 0 {
		r.Options.DeltaOff = 1
	}
	if r.Timeout < 0 {
		return fmt.Errorf("service: negative timeout")
	}
	return nil
}

// StageTimes records the per-stage wall-clock latency of one run.
type StageTimes struct {
	Parse      time.Duration `json:"parse"`
	Optimize   time.Duration `json:"optimize"`
	Synthesize time.Duration `json:"synthesize"`
	Verify     time.Duration `json:"verify"`
}

// Result is the outcome of a completed job.
type Result struct {
	// TLN is the synthesized threshold network in .tln text form.
	TLN string `json:"tln"`
	// Stats summarizes the threshold network (gates, levels, area).
	Stats core.Stats `json:"stats"`
	// SynthStats reports the TELS core's work (zero for one2one).
	SynthStats core.SynthStats `json:"synth_stats"`
	// Verified is "proved", "simulated", or "skipped".
	Verified string `json:"verified"`
	// CacheHit marks results served from the content-addressed cache.
	CacheHit bool `json:"cache_hit"`
	// Stages holds the per-stage latencies of the run that produced the
	// result (the original run's, for cache hits).
	Stages StageTimes `json:"stages"`
}

// Job is a snapshot of one submission's state. Snapshots are values: the
// manager copies them out under its lock, so callers can read them
// without further synchronization.
type Job struct {
	ID       string    `json:"id"`
	State    State     `json:"state"`
	Digest   string    `json:"digest"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
	Error    string    `json:"error,omitempty"`
	Result   *Result   `json:"result,omitempty"`
}
