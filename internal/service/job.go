// Package service turns the batch TELS flow into a long-lived synthesis
// service: a job manager with a bounded worker pool runs the
// BLIF → optimize → synthesize → verify pipeline per job, a
// content-addressed cache short-circuits repeated requests, and a typed
// job API (submit, status, result, list, cancel) backs the cmd/telsd
// HTTP daemon.
package service

import (
	"fmt"
	"time"

	"tels/internal/core"
	"tels/internal/fsim"
	"tels/internal/resyn"
)

// State is the lifecycle phase of a job.
type State string

// Job states. A job moves queued → running → one of the terminal states
// (done, failed, cancelled). Cancellation may also strike while queued.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Scheduling priorities. Within one tenant's queue, higher-priority jobs
// dispatch first; across tenants the weighted-fair scheduler still
// governs, so priority never lets one tenant crowd out another.
const (
	PriorityHigh   = "high"
	PriorityNormal = "normal"
	PriorityLow    = "low"
)

// priorityIndex maps a normalized priority to its per-tenant queue lane
// (0 dispatches first).
func priorityIndex(p string) int {
	switch p {
	case PriorityHigh:
		return 0
	case PriorityLow:
		return 2
	}
	return 1
}

// YieldSpec configures the analysis stage of a yield job.
type YieldSpec struct {
	// Model selects the defect model: "weight" (default), "drift", or
	// "stuck".
	Model string `json:"model,omitempty"`
	// V is the variation multiplier for weight/drift models (default 0.8,
	// the paper's §VI-C midpoint).
	V float64 `json:"v,omitempty"`
	// P is the per-gate stuck probability for the stuck model
	// (default 0.01).
	P float64 `json:"p,omitempty"`
	// MaxTrials caps the Monte-Carlo defect instances (0 = fsim default).
	MaxTrials int `json:"max_trials,omitempty"`
	// HalfWidth is the early-stop CI half-width (0 = fsim default).
	HalfWidth float64 `json:"half_width,omitempty"`
	// Seed drives vector sampling and defect drawing.
	Seed int64 `json:"seed,omitempty"`
}

// DefectModel instantiates the configured fsim model.
func (y YieldSpec) DefectModel() (fsim.DefectModel, error) {
	switch y.Model {
	case "weight":
		return fsim.WeightVariation{V: y.V}, nil
	case "drift":
		return fsim.ThresholdDrift{V: y.V}, nil
	case "stuck":
		return fsim.StuckAt{P: y.P}, nil
	}
	return nil, fmt.Errorf("service: unknown defect model %q (want weight, drift, or stuck)", y.Model)
}

// ResynSpec configures the defect-aware selective re-synthesis loop of a
// "resyn" job. Zero values take the loop's defaults; Normalize makes
// them explicit so equal effective configs share one digest.
type ResynSpec struct {
	// TopK bounds the blamed gates hardened per iteration (default 3).
	TopK int `json:"top_k,omitempty"`
	// DeltaStep is the per-iteration δon increment (default 1).
	DeltaStep int `json:"delta_step,omitempty"`
	// MaxDeltaOn caps any single gate's margin (default base δon+8).
	MaxDeltaOn int `json:"max_delta_on,omitempty"`
	// MaxIters caps hardening iterations (default 10).
	MaxIters int `json:"max_iters,omitempty"`
	// TargetYield stops the loop once an estimate reaches it (0 = run to
	// convergence or the iteration cap).
	TargetYield float64 `json:"target_yield,omitempty"`
	// AreaBudget rejects hardenings that would exceed it (0 = unbounded).
	AreaBudget int `json:"area_budget,omitempty"`
}

// MaxSweepPoints bounds the grid of one sweep job.
const MaxSweepPoints = 1024

// SweepSpec is the grid of a sweep job. Each listed axis replaces the
// corresponding base value (Options.DeltaOn for DeltaOns, Yield.Model for
// Models, Yield.V for Vs); an absent axis contributes the single base
// value. The grid is the cross product of the axes, ordered δon-major,
// then model, then v.
type SweepSpec struct {
	// Vs sweeps the variation multiplier of the weight/drift models.
	Vs []float64 `json:"vs,omitempty"`
	// DeltaOns sweeps the synthesis δon margin; each distinct value is
	// synthesized once and shared by its points.
	DeltaOns []int `json:"delta_ons,omitempty"`
	// Models sweeps the defect model ("weight", "drift", "stuck").
	Models []string `json:"models,omitempty"`
	// MaxInFlight bounds the sweep's concurrently outstanding points
	// (0 = the manager's worker count).
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// points expands the grid against the base request; every returned
// SweepPoint carries only its grid coordinates.
func (s SweepSpec) points(base Request) []SweepPoint {
	dons := s.DeltaOns
	if len(dons) == 0 {
		dons = []int{base.Options.DeltaOn}
	}
	models := s.Models
	if len(models) == 0 {
		models = []string{base.Yield.Model}
	}
	vs := s.Vs
	if len(vs) == 0 {
		vs = []float64{base.Yield.V}
	}
	out := make([]SweepPoint, 0, len(dons)*len(models)*len(vs))
	for _, don := range dons {
		for _, model := range models {
			for _, v := range vs {
				out = append(out, SweepPoint{
					Index: len(out), DeltaOn: don, Model: model, V: v, P: base.Yield.P,
				})
			}
		}
	}
	return out
}

// SweepPoint is one grid point of a sweep: its coordinates plus, once
// evaluated, the per-point yield result.
type SweepPoint struct {
	// Index is the point's position in the grid expansion order.
	Index int `json:"index"`
	// DeltaOn, Model, V, and P locate the point on the grid.
	DeltaOn int     `json:"delta_on"`
	Model   string  `json:"model"`
	V       float64 `json:"v"`
	P       float64 `json:"p,omitempty"`
	// FailureRate and Yield summarize the point's Monte-Carlo outcome.
	FailureRate float64 `json:"failure_rate"`
	Yield       float64 `json:"yield"`
	// Gates and Area describe the δon's synthesized network (Eq. 14).
	Gates int `json:"gates"`
	Area  int `json:"area"`
	// CacheHit marks points served from the content-addressed cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Error is set when this point failed; the sweep still completes.
	Error string `json:"error,omitempty"`
	// Report is the point's full yield report.
	Report *fsim.YieldReport `json:"report,omitempty"`
}

// SweepResult aggregates a finished sweep into an ordered curve.
type SweepResult struct {
	TotalPoints  int `json:"total_points"`
	DonePoints   int `json:"done_points"`
	FailedPoints int `json:"failed_points,omitempty"`
	// Points holds the completed points in grid order.
	Points []SweepPoint `json:"points"`
	// WallMS is the sweep's wall-clock time, fan-out included.
	WallMS int64 `json:"wall_ms"`
}

// Progress reports a running job's partial state; clients polling
// GET /v1/jobs/{id} can stream it. For sweep jobs the curve fills in as
// points land (DonePoints is monotonically non-decreasing across polls);
// for resyn jobs Iterations grows as the loop measures and hardens.
type Progress struct {
	DonePoints   int `json:"done_points,omitempty"`
	TotalPoints  int `json:"total_points,omitempty"`
	FailedPoints int `json:"failed_points,omitempty"`
	// Points holds the points completed so far, in grid order.
	Points []SweepPoint `json:"points,omitempty"`
	// Iterations holds the resyn iterations completed so far, in order:
	// each carries that round's yield, area, and hardened-gate list.
	Iterations []resyn.Iteration `json:"iterations,omitempty"`
}

// Request describes one synthesis job: the source netlist plus the knobs
// cmd/tels exposes. The zero value of every field is usable; defaults are
// normalized by Normalize.
type Request struct {
	// BLIF is the source network in BLIF text form.
	BLIF string `json:"blif"`
	// Kind selects the pipeline: "synth" (default) runs
	// parse → optimize → synthesize → verify; "yield" additionally runs a
	// Monte-Carlo yield analysis of the synthesized network on the packed
	// fsim engine, with the parsed source as the golden reference; "sweep"
	// fans a grid of yield points across the worker pool; "resyn" runs
	// the defect-aware selective re-synthesis loop on the synthesized
	// network, streaming per-iteration progress.
	Kind string `json:"kind,omitempty"`
	// Yield configures the analysis stage of yield jobs, the base point
	// of sweep jobs, and the estimator of resyn jobs.
	Yield YieldSpec `json:"yield,omitempty"`
	// Sweep is the grid of sweep jobs.
	Sweep SweepSpec `json:"sweep,omitempty"`
	// Resyn configures the re-synthesis loop of resyn jobs.
	Resyn ResynSpec `json:"resyn,omitempty"`
	// Script selects the pre-synthesis optimization: "algebraic"
	// (default), "boolean", or "none".
	Script string `json:"script,omitempty"`
	// Mapper selects "tels" (default) or "one2one".
	Mapper string `json:"mapper,omitempty"`
	// Options configure the threshold synthesis core.
	Options core.Options `json:"options"`
	// Verify runs the BDD/simulation equivalence check. Defaults to on;
	// SkipVerify turns it off (named so the zero value keeps the check).
	SkipVerify bool `json:"skip_verify,omitempty"`
	// Timeout bounds the job's wall-clock run time. Zero uses the
	// manager's default.
	Timeout time.Duration `json:"timeout,omitempty"`
	// Priority orders the job within its tenant's queue: "high",
	// "normal" (default), or "low". It never affects the result, so it
	// is deliberately excluded from the request digest — a high-priority
	// submission still hits the cache entry its low-priority twin filled.
	Priority string `json:"priority,omitempty"`
}

// Normalize fills defaults and rejects malformed requests.
func (r *Request) Normalize() error {
	if r.BLIF == "" {
		return fmt.Errorf("service: empty blif")
	}
	if r.Priority == "" {
		r.Priority = PriorityNormal
	}
	switch r.Priority {
	case PriorityHigh, PriorityNormal, PriorityLow:
	default:
		return fmt.Errorf("service: unknown priority %q (want high, normal, or low)", r.Priority)
	}
	if r.Kind == "" {
		r.Kind = "synth"
	}
	switch r.Kind {
	case "synth":
	case "yield", "sweep", "resyn":
		if r.Yield.Model == "" {
			r.Yield.Model = "weight"
		}
		if r.Yield.V == 0 {
			r.Yield.V = 0.8
		}
		if r.Yield.P == 0 {
			r.Yield.P = 0.01
		}
		if _, err := r.Yield.DefectModel(); err != nil {
			return err
		}
		if r.Yield.MaxTrials < 0 || r.Yield.HalfWidth < 0 {
			return fmt.Errorf("service: negative yield bounds")
		}
		if r.Kind == "sweep" {
			if err := r.normalizeSweep(); err != nil {
				return err
			}
		}
		if r.Kind == "resyn" {
			if err := r.normalizeResyn(); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("service: unknown job kind %q (want synth, yield, sweep, or resyn)", r.Kind)
	}
	if r.Script == "" {
		r.Script = "algebraic"
	}
	switch r.Script {
	case "algebraic", "boolean", "none":
	default:
		return fmt.Errorf("service: unknown script %q (want algebraic, boolean, or none)", r.Script)
	}
	if r.Mapper == "" {
		r.Mapper = "tels"
	}
	switch r.Mapper {
	case "tels", "one2one":
	default:
		return fmt.Errorf("service: unknown mapper %q (want tels or one2one)", r.Mapper)
	}
	if r.Options.Fanin == 0 {
		r.Options.Fanin = core.DefaultOptions().Fanin
	}
	// δoff=0 makes the ON (Σ ≥ T+δon) and OFF (Σ ≤ T−δoff) constraints
	// overlap at Σ=T, which the "fire iff Σ ≥ T" evaluator resolves as
	// ON — synthesized networks can then fail verification. Normalize to
	// the paper's default δoff=1, matching the cmd/tels -doff default.
	if r.Options.DeltaOff == 0 {
		r.Options.DeltaOff = 1
	}
	if r.Timeout < 0 {
		return fmt.Errorf("service: negative timeout")
	}
	return nil
}

// normalizeSweep validates the grid axes of a sweep request; the base
// yield knobs are already normalized by the caller.
func (r *Request) normalizeSweep() error {
	s := r.Sweep
	if s.MaxInFlight < 0 {
		return fmt.Errorf("service: negative sweep in-flight budget")
	}
	for _, v := range s.Vs {
		if v < 0 {
			return fmt.Errorf("service: negative sweep v %g", v)
		}
	}
	for _, don := range s.DeltaOns {
		if don < 0 {
			return fmt.Errorf("service: negative sweep delta_on %d", don)
		}
	}
	for _, model := range s.Models {
		if _, err := (YieldSpec{Model: model, V: r.Yield.V, P: r.Yield.P}).DefectModel(); err != nil {
			return err
		}
	}
	total := max(1, len(s.Vs)) * max(1, len(s.DeltaOns)) * max(1, len(s.Models))
	if total > MaxSweepPoints {
		return fmt.Errorf("service: sweep grid has %d points (max %d)", total, MaxSweepPoints)
	}
	return nil
}

// normalizeResyn validates the loop knobs and makes the defaults
// explicit, so requests that mean the same loop share one digest.
func (r *Request) normalizeResyn() error {
	s := &r.Resyn
	if s.TopK < 0 || s.DeltaStep < 0 || s.MaxDeltaOn < 0 || s.MaxIters < 0 || s.AreaBudget < 0 {
		return fmt.Errorf("service: negative resyn knob")
	}
	if s.TargetYield < 0 || s.TargetYield > 1 {
		return fmt.Errorf("service: resyn target yield %g outside [0, 1]", s.TargetYield)
	}
	if s.TopK == 0 {
		s.TopK = 3
	}
	if s.DeltaStep == 0 {
		s.DeltaStep = 1
	}
	if s.MaxDeltaOn == 0 {
		s.MaxDeltaOn = r.Options.DeltaOn + 8
	}
	if s.MaxDeltaOn < r.Options.DeltaOn {
		return fmt.Errorf("service: resyn max δon %d below base δon %d", s.MaxDeltaOn, r.Options.DeltaOn)
	}
	if s.MaxIters == 0 {
		s.MaxIters = 10
	}
	return nil
}

// StageTimes records the per-stage wall-clock latency of one run.
type StageTimes struct {
	Parse      time.Duration `json:"parse"`
	Optimize   time.Duration `json:"optimize"`
	Synthesize time.Duration `json:"synthesize"`
	Verify     time.Duration `json:"verify"`
	// Analyze is the yield-analysis stage (zero for synth jobs).
	Analyze time.Duration `json:"analyze,omitempty"`
}

// Result is the outcome of a completed job.
type Result struct {
	// TLN is the synthesized threshold network in .tln text form.
	TLN string `json:"tln"`
	// Stats summarizes the threshold network (gates, levels, area).
	Stats core.Stats `json:"stats"`
	// SynthStats reports the TELS core's work (zero for one2one).
	SynthStats core.SynthStats `json:"synth_stats"`
	// Verified is "proved", "simulated", or "skipped".
	Verified string `json:"verified"`
	// Yield is the Monte-Carlo yield analysis (yield jobs and sweep
	// points only).
	Yield *fsim.YieldReport `json:"yield,omitempty"`
	// Sweep is the aggregated curve of a sweep job.
	Sweep *SweepResult `json:"sweep,omitempty"`
	// Resyn is the re-synthesis report of a resyn job; its TLN sibling
	// holds the hardened network.
	Resyn *resyn.Report `json:"resyn,omitempty"`
	// CacheHit marks results served from the content-addressed cache.
	CacheHit bool `json:"cache_hit"`
	// Stages holds the per-stage latencies of the run that produced the
	// result (the original run's, for cache hits).
	Stages StageTimes `json:"stages"`
}

// Job is a snapshot of one submission's state. Snapshots are values: the
// manager copies them out under its lock, so callers can read them
// without further synchronization.
type Job struct {
	ID   string `json:"id"`
	Kind string `json:"kind,omitempty"`
	// Tenant is the owning tenant (the authenticated API key's tenant,
	// or "default" when telsd runs without -api-keys).
	Tenant string `json:"tenant,omitempty"`
	// Priority is the job's scheduling lane within its tenant.
	Priority string    `json:"priority,omitempty"`
	State    State     `json:"state"`
	Digest   string    `json:"digest"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
	Error    string    `json:"error,omitempty"`
	// ErrorCode classifies Error with a v1 error-envelope code when the
	// failure is attributable to the request (e.g. invalid_request for a
	// spec the packed engine rejects by design); empty for internal
	// failures, timeouts, and cancellations.
	ErrorCode string `json:"error_code,omitempty"`
	// Progress streams a sweep job's partial curve while it runs.
	Progress *Progress `json:"progress,omitempty"`
	Result   *Result   `json:"result,omitempty"`
}
