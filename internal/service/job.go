// Package service turns the batch TELS flow into a long-lived synthesis
// service: a job manager with a bounded worker pool runs the
// BLIF → optimize → synthesize → verify pipeline per job, a
// content-addressed cache short-circuits repeated requests, and a typed
// job API (submit, status, result, list, cancel) backs the cmd/telsd
// HTTP daemon.
package service

import (
	"fmt"
	"time"

	"tels/internal/core"
	"tels/internal/fsim"
)

// State is the lifecycle phase of a job.
type State string

// Job states. A job moves queued → running → one of the terminal states
// (done, failed, cancelled). Cancellation may also strike while queued.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// YieldSpec configures the analysis stage of a yield job.
type YieldSpec struct {
	// Model selects the defect model: "weight" (default), "drift", or
	// "stuck".
	Model string `json:"model,omitempty"`
	// V is the variation multiplier for weight/drift models (default 0.8,
	// the paper's §VI-C midpoint).
	V float64 `json:"v,omitempty"`
	// P is the per-gate stuck probability for the stuck model
	// (default 0.01).
	P float64 `json:"p,omitempty"`
	// MaxTrials caps the Monte-Carlo defect instances (0 = fsim default).
	MaxTrials int `json:"max_trials,omitempty"`
	// HalfWidth is the early-stop CI half-width (0 = fsim default).
	HalfWidth float64 `json:"half_width,omitempty"`
	// Seed drives vector sampling and defect drawing.
	Seed int64 `json:"seed,omitempty"`
}

// DefectModel instantiates the configured fsim model.
func (y YieldSpec) DefectModel() (fsim.DefectModel, error) {
	switch y.Model {
	case "weight":
		return fsim.WeightVariation{V: y.V}, nil
	case "drift":
		return fsim.ThresholdDrift{V: y.V}, nil
	case "stuck":
		return fsim.StuckAt{P: y.P}, nil
	}
	return nil, fmt.Errorf("service: unknown defect model %q (want weight, drift, or stuck)", y.Model)
}

// Request describes one synthesis job: the source netlist plus the knobs
// cmd/tels exposes. The zero value of every field is usable; defaults are
// normalized by Normalize.
type Request struct {
	// BLIF is the source network in BLIF text form.
	BLIF string `json:"blif"`
	// Kind selects the pipeline: "synth" (default) runs
	// parse → optimize → synthesize → verify; "yield" additionally runs a
	// Monte-Carlo yield analysis of the synthesized network on the packed
	// fsim engine, with the parsed source as the golden reference.
	Kind string `json:"kind,omitempty"`
	// Yield configures the analysis stage of yield jobs.
	Yield YieldSpec `json:"yield,omitempty"`
	// Script selects the pre-synthesis optimization: "algebraic"
	// (default), "boolean", or "none".
	Script string `json:"script,omitempty"`
	// Mapper selects "tels" (default) or "one2one".
	Mapper string `json:"mapper,omitempty"`
	// Options configure the threshold synthesis core.
	Options core.Options `json:"options"`
	// Verify runs the BDD/simulation equivalence check. Defaults to on;
	// SkipVerify turns it off (named so the zero value keeps the check).
	SkipVerify bool `json:"skip_verify,omitempty"`
	// Timeout bounds the job's wall-clock run time. Zero uses the
	// manager's default.
	Timeout time.Duration `json:"timeout,omitempty"`
}

// Normalize fills defaults and rejects malformed requests.
func (r *Request) Normalize() error {
	if r.BLIF == "" {
		return fmt.Errorf("service: empty blif")
	}
	if r.Kind == "" {
		r.Kind = "synth"
	}
	switch r.Kind {
	case "synth":
	case "yield":
		if r.Yield.Model == "" {
			r.Yield.Model = "weight"
		}
		if r.Yield.V == 0 {
			r.Yield.V = 0.8
		}
		if r.Yield.P == 0 {
			r.Yield.P = 0.01
		}
		if _, err := r.Yield.DefectModel(); err != nil {
			return err
		}
		if r.Yield.MaxTrials < 0 || r.Yield.HalfWidth < 0 {
			return fmt.Errorf("service: negative yield bounds")
		}
	default:
		return fmt.Errorf("service: unknown job kind %q (want synth or yield)", r.Kind)
	}
	if r.Script == "" {
		r.Script = "algebraic"
	}
	switch r.Script {
	case "algebraic", "boolean", "none":
	default:
		return fmt.Errorf("service: unknown script %q (want algebraic, boolean, or none)", r.Script)
	}
	if r.Mapper == "" {
		r.Mapper = "tels"
	}
	switch r.Mapper {
	case "tels", "one2one":
	default:
		return fmt.Errorf("service: unknown mapper %q (want tels or one2one)", r.Mapper)
	}
	if r.Options.Fanin == 0 {
		r.Options.Fanin = core.DefaultOptions().Fanin
	}
	// δoff=0 makes the ON (Σ ≥ T+δon) and OFF (Σ ≤ T−δoff) constraints
	// overlap at Σ=T, which the "fire iff Σ ≥ T" evaluator resolves as
	// ON — synthesized networks can then fail verification. Normalize to
	// the paper's default δoff=1, matching the cmd/tels -doff default.
	if r.Options.DeltaOff == 0 {
		r.Options.DeltaOff = 1
	}
	if r.Timeout < 0 {
		return fmt.Errorf("service: negative timeout")
	}
	return nil
}

// StageTimes records the per-stage wall-clock latency of one run.
type StageTimes struct {
	Parse      time.Duration `json:"parse"`
	Optimize   time.Duration `json:"optimize"`
	Synthesize time.Duration `json:"synthesize"`
	Verify     time.Duration `json:"verify"`
	// Analyze is the yield-analysis stage (zero for synth jobs).
	Analyze time.Duration `json:"analyze,omitempty"`
}

// Result is the outcome of a completed job.
type Result struct {
	// TLN is the synthesized threshold network in .tln text form.
	TLN string `json:"tln"`
	// Stats summarizes the threshold network (gates, levels, area).
	Stats core.Stats `json:"stats"`
	// SynthStats reports the TELS core's work (zero for one2one).
	SynthStats core.SynthStats `json:"synth_stats"`
	// Verified is "proved", "simulated", or "skipped".
	Verified string `json:"verified"`
	// Yield is the Monte-Carlo yield analysis (yield jobs only).
	Yield *fsim.YieldReport `json:"yield,omitempty"`
	// CacheHit marks results served from the content-addressed cache.
	CacheHit bool `json:"cache_hit"`
	// Stages holds the per-stage latencies of the run that produced the
	// result (the original run's, for cache hits).
	Stages StageTimes `json:"stages"`
}

// Job is a snapshot of one submission's state. Snapshots are values: the
// manager copies them out under its lock, so callers can read them
// without further synchronization.
type Job struct {
	ID       string    `json:"id"`
	State    State     `json:"state"`
	Digest   string    `json:"digest"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
	Error    string    `json:"error,omitempty"`
	Result   *Result   `json:"result,omitempty"`
}
