package service

import (
	"context"
	"fmt"
	"time"

	"tels/internal/blif"
	"tels/internal/core"
	"tels/internal/fsim"
	"tels/internal/resyn"
)

// This file implements the "resyn" job kind: the defect-aware selective
// re-synthesis loop of internal/resyn run as a service job.
//
// A resyn job occupies one worker like a synth job (the loop is
// sequential), but its synthesis prefix goes through the same
// content-addressed path as everything else: the baseline network is
// looked up under the digest of the equivalent standalone synth request
// before the pipeline runs, and the per-gate (function, δon) fragments
// the loop derives are memoised in the shared result cache under a
// "resyn:"-prefixed digest namespace, so repeated hardenings — across
// iterations, jobs, and benchmarks — synthesize once. Per-iteration
// progress (yield, area, hardened gates) streams through the job table
// and is visible to clients polling GET /v1/jobs/{id}.

// resynMemoPrefix namespaces fragment memo entries in the result cache,
// away from request digests.
const resynMemoPrefix = "resyn:"

// cacheMemo adapts the manager's result cache to the loop's Memo
// interface: fragment .tln text rides in Result.TLN.
type cacheMemo struct{ m *Manager }

// Get implements resyn.Memo.
func (c cacheMemo) Get(key string) (string, bool) {
	res, ok := c.m.cache.Get(resynMemoPrefix + key)
	if !ok {
		return "", false
	}
	c.m.metrics.resynMemoHits.Add(1)
	return res.TLN, true
}

// Put implements resyn.Memo.
func (c cacheMemo) Put(key, tln string) {
	evicted := c.m.cache.Put(resynMemoPrefix+key, Result{TLN: tln})
	c.m.metrics.cacheEvictions.Add(int64(evicted))
}

// resynBaseline obtains the synthesized starting network: a cache hit
// under the equivalent synth request's digest when possible, a pipeline
// run otherwise (cached for the next job).
func (m *Manager) resynBaseline(ctx context.Context, req Request) (Result, error) {
	sreq := synthRequest(req, req.Options.DeltaOn)
	sdigest, err := Digest(sreq)
	if err != nil {
		return Result{}, err
	}
	if res, ok := m.cache.Get(sdigest); ok {
		m.metrics.cacheHits.Add(1)
		res.CacheHit = true
		return res, nil
	}
	m.metrics.cacheMisses.Add(1)
	res, err := m.exec(ctx, sreq)
	if err != nil {
		return Result{}, err
	}
	m.persistResult(sdigest, res)
	evicted := m.cache.Put(sdigest, res)
	m.metrics.cacheEvictions.Add(int64(evicted))
	m.metrics.addStages(res.Stages)
	return res, nil
}

// resynRunner returns the executor of one resyn job.
func (m *Manager) resynRunner(j *jobRecord) func(context.Context, Request) (Result, error) {
	return func(ctx context.Context, req Request) (Result, error) {
		base, err := m.resynBaseline(ctx, req)
		if err != nil {
			return Result{}, fmt.Errorf("service: resyn baseline: %w", err)
		}
		golden, err := blif.ParseString(req.BLIF)
		if err != nil {
			return Result{}, fmt.Errorf("service: parse blif: %w", err)
		}
		tn, err := core.ParseTLNString(base.TLN)
		if err != nil {
			return Result{}, fmt.Errorf("service: resyn baseline: malformed tln: %w", err)
		}
		model, err := req.Yield.DefectModel()
		if err != nil {
			return Result{}, err
		}

		cfg := resyn.Config{
			Model: model,
			Yield: fsim.YieldConfig{
				MaxTrials: req.Yield.MaxTrials,
				HalfWidth: req.Yield.HalfWidth,
				Seed:      req.Yield.Seed,
				Width:     m.cfg.FsimWidth,
			},
			Synth:       withSolver(req.Options, m.cfg.Solver),
			TopK:        req.Resyn.TopK,
			DeltaStep:   req.Resyn.DeltaStep,
			MaxDeltaOn:  req.Resyn.MaxDeltaOn,
			MaxIters:    req.Resyn.MaxIters,
			TargetYield: req.Resyn.TargetYield,
			AreaBudget:  req.Resyn.AreaBudget,
			Memo:        cacheMemo{m},
			OnIteration: func(it resyn.Iteration) {
				m.metrics.resynIterations.Add(1)
				m.metrics.resynGatesHardened.Add(int64(len(it.Hardened)))
				m.mu.Lock()
				j.resynIters = append(j.resynIters, it)
				m.journalProgressLocked(j, len(j.resynIters), req.Resyn.MaxIters)
				m.emitLocked(j, eventProgress, nil, &it)
				m.mu.Unlock()
				m.flushJournal()
			},
		}

		t := time.Now()
		rep, err := resyn.Run(ctx, golden, tn, cfg)
		if err != nil {
			return Result{}, fmt.Errorf("service: resyn: %w", err)
		}
		res := Result{
			TLN:        rep.Network.String(),
			Stats:      rep.Network.Stats(),
			SynthStats: base.SynthStats,
			// Every accepted splice passed the session's full-batch clean
			// check, so the hardened network is simulation-verified even
			// when the baseline was proved.
			Verified: "simulated",
			Resyn:    rep,
			Stages:   base.Stages,
		}
		if base.Verified == "skipped" {
			res.Verified = base.Verified
		}
		res.Stages.Analyze = time.Since(t)
		return res, nil
	}
}
