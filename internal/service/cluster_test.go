package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tels/internal/cluster"
	"tels/internal/core"
)

// peerNode is one member of an in-process test fleet: a real manager
// served over a real loopback listener, so the dispatch layer exercises
// genuine HTTP between peers.
type peerNode struct {
	addr string
	cl   *cluster.Cluster
	m    *Manager
	srv  *httptest.Server
	once sync.Once
}

func (n *peerNode) close() {
	n.once.Do(func() {
		n.srv.Close()
		n.m.Close()
	})
}

// startFleet boots n managers wired into one static ring. The listeners
// are created first so every peer's ring can be built from the final
// address list. cfg (optional) mutates peer i's service config; wrap
// (optional) decorates peer i's handler to inject faults.
func startFleet(t *testing.T, n int, clCfg cluster.Config, cfg func(i int, c *Config), wrap func(i int, h http.Handler) http.Handler) []*peerNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	nodes := make([]*peerNode, n)
	for i := range nodes {
		cc := clCfg
		cc.Self = addrs[i]
		cc.Peers = addrs
		cl, err := cluster.New(cc)
		if err != nil {
			t.Fatal(err)
		}
		sc := Config{Workers: 1, QueueDepth: 64, Cluster: cl}
		if cfg != nil {
			cfg(i, &sc)
		}
		m := New(sc)
		h := http.Handler(NewHandler(m))
		if wrap != nil {
			h = wrap(i, h)
		}
		srv := &httptest.Server{
			Listener: listeners[i],
			Config:   &http.Server{Handler: h},
		}
		srv.Start()
		nodes[i] = &peerNode{addr: addrs[i], cl: cl, m: m, srv: srv}
		t.Cleanup(nodes[i].close)
	}
	return nodes
}

// requestOwnedBy finds a synth request whose digest the ring assigns to
// owner, by walking the seed knob (the seed changes the digest, not the
// tiny network's synthesis outcome's validity).
func requestOwnedBy(t *testing.T, cl *cluster.Cluster, owner string) Request {
	t.Helper()
	for seed := int64(1); seed < 4096; seed++ {
		req := Request{BLIF: testBlif, Options: core.Options{Seed: seed}}
		norm := req
		if err := norm.Normalize(); err != nil {
			t.Fatal(err)
		}
		d, err := Digest(norm)
		if err != nil {
			t.Fatal(err)
		}
		if a, _ := cl.Owner(d); a == owner {
			return req
		}
	}
	t.Fatal("no seed maps to the requested owner")
	return Request{}
}

func submitAndWait(t *testing.T, m *Manager, req Request) Job {
	t.Helper()
	job, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done, err := m.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	return done
}

// clusterSweepRequest is the shared grid the fan-out tests run on every
// topology; identical seeds make the curve bit-comparable across them.
func clusterSweepRequest() Request {
	return Request{
		BLIF:  testBlif,
		Kind:  "sweep",
		Yield: YieldSpec{Model: "weight", MaxTrials: 3000, Seed: 42},
		Sweep: SweepSpec{Vs: []float64{0.3, 0.5, 0.7, 0.9, 1.1, 1.3}},
	}
}

// pointsOwnedBy counts how many of the shared grid's points the ring
// assigns to owner, exactly as the sweep coordinator will digest them.
func pointsOwnedBy(t *testing.T, cl *cluster.Cluster, owner string) int {
	t.Helper()
	req := clusterSweepRequest()
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, p := range req.Sweep.points(req) {
		d, err := Digest(pointRequest(req, p))
		if err != nil {
			t.Fatal(err)
		}
		if a, _ := cl.Owner(d); a == owner {
			n++
		}
	}
	return n
}

// startSweepFleet retries startFleet until the second peer owns at
// least one grid point: listener ports are random, so a single draw can
// put the whole grid on the coordinator and starve every remote-path
// assertion. The discarded fleets' cleanups are idempotent.
func startSweepFleet(t *testing.T, n int, clCfg cluster.Config, cfg func(i int, c *Config), wrap func(i int, h http.Handler) http.Handler) []*peerNode {
	t.Helper()
	for attempt := 0; attempt < 16; attempt++ {
		nodes := startFleet(t, n, clCfg, cfg, wrap)
		if pointsOwnedBy(t, nodes[0].cl, nodes[1].addr) > 0 {
			return nodes
		}
		for _, nd := range nodes {
			nd.close()
		}
	}
	t.Fatal("no fleet draw assigned the second peer any grid point")
	return nil
}

// referenceCurve runs the sweep on a fresh single-node manager.
func referenceCurve(t *testing.T) []SweepPoint {
	t.Helper()
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 64})
	done := submitAndWait(t, m, clusterSweepRequest())
	if done.State != StateDone || done.Result == nil || done.Result.Sweep == nil {
		t.Fatalf("reference sweep: state=%s err=%s", done.State, done.Error)
	}
	return done.Result.Sweep.Points
}

// assertSameCurve compares two sweep curves point by point on every
// numeric outcome (cache provenance may differ by topology).
func assertSameCurve(t *testing.T, got, want []SweepPoint) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("curve has %d points, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Error != "" {
			t.Fatalf("point %d failed: %s", i, g.Error)
		}
		if g.FailureRate != w.FailureRate || g.Yield != w.Yield || g.Gates != w.Gates || g.Area != w.Area {
			t.Fatalf("point %d diverges: got {fr=%v y=%v gates=%d area=%d}, want {fr=%v y=%v gates=%d area=%d}",
				i, g.FailureRate, g.Yield, g.Gates, g.Area, w.FailureRate, w.Yield, w.Gates, w.Area)
		}
	}
}

func TestClusterRemoteFill(t *testing.T) {
	nodes := startFleet(t, 2, cluster.Config{}, nil, nil)
	a, b := nodes[0], nodes[1]

	req := requestOwnedBy(t, a.cl, b.addr)
	if done := submitAndWait(t, b.m, req); done.State != StateDone {
		t.Fatalf("owner compute: state=%s err=%s", done.State, done.Error)
	}

	done := submitAndWait(t, a.m, req)
	if done.State != StateDone {
		t.Fatalf("fill job: state=%s err=%s", done.State, done.Error)
	}
	if !done.Result.CacheHit {
		t.Fatal("remote-filled result not marked as a cache hit")
	}
	am := a.m.MetricsSnapshot()
	if am["cluster_remote_hits"] != 1 {
		t.Fatalf("cluster_remote_hits = %d, want 1", am["cluster_remote_hits"])
	}
	if am["jobs_executed"] != 0 {
		t.Fatalf("jobs_executed = %d on the filling peer, want 0", am["jobs_executed"])
	}
	bm := b.m.MetricsSnapshot()
	if bm["cluster_fills_served"] != 1 {
		t.Fatalf("owner cluster_fills_served = %d, want 1", bm["cluster_fills_served"])
	}
}

// TestClusterOwnerTimeoutFallsBackToLocal pins the fill bound: a hung
// owner delays a job by at most FillTimeout before local compute runs.
func TestClusterOwnerTimeoutFallsBackToLocal(t *testing.T) {
	hang := func(i int, h http.Handler) http.Handler {
		if i != 1 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/cluster/result/") {
				<-r.Context().Done() // hold the fill until the caller gives up
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	nodes := startFleet(t, 2, cluster.Config{FillTimeout: 50 * time.Millisecond}, nil, hang)
	a, b := nodes[0], nodes[1]

	req := requestOwnedBy(t, a.cl, b.addr)
	start := time.Now()
	done := submitAndWait(t, a.m, req)
	if done.State != StateDone {
		t.Fatalf("state=%s err=%s", done.State, done.Error)
	}
	if done.Result.CacheHit {
		t.Fatal("fallback compute mislabeled as a cache hit")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("job took %v: the hung owner was not bounded by FillTimeout", elapsed)
	}
	am := a.m.MetricsSnapshot()
	if am["cluster_remote_misses"] != 1 || am["jobs_executed"] != 1 {
		t.Fatalf("misses=%d executed=%d, want 1/1", am["cluster_remote_misses"], am["jobs_executed"])
	}
}

func TestClusterSweepFanOutMatchesSingleNode(t *testing.T) {
	want := referenceCurve(t)
	nodes := startSweepFleet(t, 2, cluster.Config{}, nil, nil)
	a := nodes[0]

	done := submitAndWait(t, a.m, clusterSweepRequest())
	if done.State != StateDone || done.Result == nil || done.Result.Sweep == nil {
		t.Fatalf("sweep: state=%s err=%s", done.State, done.Error)
	}
	if done.Result.Sweep.FailedPoints != 0 {
		t.Fatalf("%d failed points", done.Result.Sweep.FailedPoints)
	}
	assertSameCurve(t, done.Result.Sweep.Points, want)
	am := a.m.MetricsSnapshot()
	if am["cluster_remote_points"] == 0 {
		t.Fatal("no points were dispatched to the owner peer")
	}
}

// TestClusterDeadPeerSteals pins the degradation contract: a dead peer
// costs throughput, never correctness — its points are stolen back and
// the curve is bit-identical to a single-node run.
func TestClusterDeadPeerSteals(t *testing.T) {
	want := referenceCurve(t)
	nodes := startSweepFleet(t, 2, cluster.Config{
		RetryBase: 2 * time.Millisecond, RetryMax: 5 * time.Millisecond,
		Cooldown: time.Minute, // once tripped, stay tripped for the test
	}, nil, nil)
	a, b := nodes[0], nodes[1]
	b.close() // the peer is gone before the sweep starts

	done := submitAndWait(t, a.m, clusterSweepRequest())
	if done.State != StateDone || done.Result == nil || done.Result.Sweep == nil {
		t.Fatalf("sweep: state=%s err=%s", done.State, done.Error)
	}
	if done.Result.Sweep.FailedPoints != 0 {
		t.Fatalf("%d failed points: dead peer leaked into the curve", done.Result.Sweep.FailedPoints)
	}
	assertSameCurve(t, done.Result.Sweep.Points, want)
	am := a.m.MetricsSnapshot()
	if am["cluster_steals"] == 0 {
		t.Fatal("no steals recorded against the dead peer")
	}
}

// TestClusterHedgeLocalWins pins the straggler path: a peer that takes
// far longer than the hedge delay loses to the local hedge, and the
// sweep's curve is still bit-identical.
func TestClusterHedgeLocalWins(t *testing.T) {
	want := referenceCurve(t)
	nodes := startSweepFleet(t, 2,
		cluster.Config{HedgeMin: 40 * time.Millisecond, HedgeMax: 40 * time.Millisecond},
		func(i int, c *Config) {
			if i == 1 {
				c.ExecDelay = 3 * time.Second // every remote compute straggles
			}
		}, nil)
	a, b := nodes[0], nodes[1]

	done := submitAndWait(t, a.m, clusterSweepRequest())
	if done.State != StateDone || done.Result == nil || done.Result.Sweep == nil {
		t.Fatalf("sweep: state=%s err=%s", done.State, done.Error)
	}
	if done.Result.Sweep.FailedPoints != 0 {
		t.Fatalf("%d failed points", done.Result.Sweep.FailedPoints)
	}
	assertSameCurve(t, done.Result.Sweep.Points, want)
	am := a.m.MetricsSnapshot()
	if am["cluster_hedges"] == 0 || am["cluster_hedges_won"] == 0 {
		t.Fatalf("hedges=%d won=%d, want both > 0", am["cluster_hedges"], am["cluster_hedges_won"])
	}
	if bm := b.m.MetricsSnapshot(); bm["cluster_compute_served"] == 0 {
		t.Fatal("straggler peer never accepted a compute request")
	}
}

// TestComputeEndpointCancelsOnDisconnect pins the hedge-loser contract:
// when the calling peer hangs up, the serving peer cancels the job and
// the worker slot is released — not leaked for the job's full duration.
func TestComputeEndpointCancelsOnDisconnect(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	started := make(chan struct{})
	released := make(chan struct{})
	m.exec = func(ctx context.Context, req Request) (Result, error) {
		close(started)
		<-ctx.Done()
		close(released)
		return Result{}, ctx.Err()
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	body, err := json.Marshal(Request{BLIF: testBlif})
	if err != nil {
		t.Fatal(err)
	}
	tr := cluster.NewTransport(nil)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := tr.Compute(ctx, strings.TrimPrefix(srv.URL, "http://"), body)
		errCh <- err
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("compute never reached a worker")
	}
	cancel()
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("worker not released after the caller disconnected")
	}
	if err := <-errCh; err == nil {
		t.Fatal("cancelled compute returned no error")
	}
}

func TestClusterResultEndpoints(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	done := submitAndWait(t, m, testRequest())
	if done.State != StateDone {
		t.Fatalf("state=%s err=%s", done.State, done.Error)
	}

	resp, err := http.Get(srv.URL + "/v1/cluster/result/" + done.Digest)
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got.TLN != done.Result.TLN {
		t.Fatalf("GET result: status=%d tln match=%v", resp.StatusCode, got.TLN == done.Result.TLN)
	}

	resp, err = http.Get(srv.URL + "/v1/cluster/result/no-such-digest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET missing result: status=%d, want 404", resp.StatusCode)
	}

	// PUT then GET round-trips a pushed result.
	pushed := Result{TLN: ".tnet pushed\n.end\n", Verified: "skipped"}
	data, _ := json.Marshal(pushed)
	putReq, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/cluster/result/feedface", bytes.NewReader(data))
	resp, err = http.DefaultClient.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT result: status=%d, want 204", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/cluster/result/feedface")
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.NewDecoder(resp.Body).Decode(&back); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if back.TLN != pushed.TLN {
		t.Fatalf("pushed result did not round-trip: %q", back.TLN)
	}
}

func TestReadyzServes(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status=%d, want 200", resp.StatusCode)
	}
}

// TestListRejectsEmptyQueryValues pins the ?state= bugfix: an
// empty-but-present filter value is invalid_request, not match-all.
func TestListRejectsEmptyQueryValues(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	for _, q := range []string{"?state=", "?kind=", "?limit=", "?state=&kind=synth"} {
		resp, err := http.Get(srv.URL + "/v1/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		var env struct {
			Error APIError `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || env.Error.Code != CodeInvalidRequest {
			t.Fatalf("%s: status=%d code=%q, want 400 %s", q, resp.StatusCode, env.Error.Code, CodeInvalidRequest)
		}
	}
	// Absent filters still list fine.
	for _, q := range []string{"", "?state=done", "?kind=synth&limit=5"} {
		resp, err := http.Get(srv.URL + "/v1/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%q: status=%d, want 200", q, resp.StatusCode)
		}
	}
}

// TestClientWaitBacksOff pins the Wait polling contract: the interval
// grows toward the cap instead of hammering at a fixed rate, and ctx
// cancellation is honored between polls.
func TestClientWaitBacksOff(t *testing.T) {
	var polls atomic.Int64
	start := time.Now()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		state := StateRunning
		if time.Since(start) > 400*time.Millisecond {
			state = StateDone
		}
		polls.Add(1)
		json.NewEncoder(w).Encode(Job{ID: "job-000001", State: state})
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, PollInterval: 5 * time.Millisecond, PollMaxInterval: 80 * time.Millisecond}
	job, err := c.WaitDone(context.Background(), "job-000001")
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone {
		t.Fatalf("state=%s", job.State)
	}
	// Fixed 5ms polling would make ~80 requests in 400ms; the backoff
	// (5, 10, 20, 40, 80, 80, ... with ±20% jitter) makes ~10.
	if n := polls.Load(); n > 30 {
		t.Fatalf("%d polls in ~400ms: Wait is not backing off", n)
	}

	ctx, cancel := context.WithCancel(context.Background())
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(Job{ID: "job-000002", State: StateRunning})
	}))
	defer hang.Close()
	hc := &Client{BaseURL: hang.URL, PollInterval: 10 * time.Millisecond, PollMaxInterval: 50 * time.Millisecond}
	waitErr := make(chan error, 1)
	go func() {
		_, err := hc.WaitDone(ctx, "job-000002")
		waitErr <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-waitErr:
		if err != context.Canceled {
			t.Fatalf("err=%v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not honor ctx cancellation between polls")
	}
}
