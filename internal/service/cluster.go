package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"tels/internal/cluster"
)

// This file is the manager's side of the cluster dispatch layer. The
// internal/cluster package moves opaque JSON keyed by digests; here
// those bytes get their meaning: results are Result JSON, compute
// requests are the internal Request JSON (Normalize is idempotent, so a
// request re-normalized on the serving peer digests identically), and
// compute responses are terminal Job snapshots.
//
// Dispatch policy, in order of preference for a digest owned elsewhere:
//
//  1. remote fill — ask the owner for a cached/persisted result before
//     computing locally (bounded by FillTimeout; a miss or a slow owner
//     costs at most that);
//  2. remote compute — sweep points are fanned to their owner peers,
//     hedged with a local run once the request outlives the fleet's
//     recent latency profile;
//  3. steal — a down or saturated owner degrades to local compute,
//     never to a failed point.

// remoteFill asks the digest's owner for an existing result. It returns
// false — never an error — when the digest is self-owned, the cluster is
// off, the owner is down, or the owner simply doesn't have the result:
// filling is an optimization in front of local compute.
func (m *Manager) remoteFill(ctx context.Context, digest string) (Result, bool) {
	cl := m.cfg.Cluster
	if cl == nil {
		return Result{}, false
	}
	owner, self := cl.Owner(digest)
	if self || !cl.Available(owner) {
		return Result{}, false
	}
	fctx, cancel := context.WithTimeout(ctx, cl.FillTimeout())
	defer cancel()
	data, err := cl.Fetch(fctx, owner, digest)
	if err != nil {
		m.metrics.clusterRemoteMisses.Add(1)
		return Result{}, false
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		m.metrics.clusterRemoteMisses.Add(1)
		return Result{}, false
	}
	m.metrics.clusterRemoteHits.Add(1)
	return res, true
}

// pushToOwner replicates a freshly computed result to the digest's owner
// so the owner can serve future fills for work it never ran. Fire and
// forget: a failed push costs nothing but a future fill miss.
func (m *Manager) pushToOwner(digest string, res Result) {
	cl := m.cfg.Cluster
	if cl == nil {
		return
	}
	owner, self := cl.Owner(digest)
	if self || !cl.Available(owner) {
		return
	}
	data, err := json.Marshal(res)
	if err != nil {
		return
	}
	m.pushWg.Add(1)
	go func() {
		defer m.pushWg.Done()
		ctx, cancel := context.WithTimeout(m.baseCtx, 2*time.Second)
		defer cancel()
		if cl.Push(ctx, owner, digest, data) == nil {
			m.metrics.clusterPushes.Add(1)
		}
	}()
}

// runPoint evaluates one sweep grid point, picking the venue: the
// digest's owner peer when that is someone else and reachable (with a
// local hedge against stragglers), the local pool otherwise. An
// unavailable owner is stolen from, not surfaced as a point error.
func (m *Manager) runPoint(ctx context.Context, j *jobRecord, px *prefix, p SweepPoint, preq Request, pdigest string) {
	if cl := m.cfg.Cluster; cl != nil {
		if owner, self := cl.Owner(pdigest); !self {
			if cl.Available(owner) {
				res, err := m.remotePoint(ctx, j, px, p, preq, pdigest, owner)
				if err == nil || ctx.Err() != nil || !errors.Is(err, cluster.ErrUnavailable) {
					m.recordPoint(j, p, res, err)
					return
				}
				// The owner went away mid-request despite retries.
			}
			m.metrics.clusterSteals.Add(1)
		}
	}
	res, err := m.localPoint(ctx, j, px, p, preq, pdigest)
	m.recordPoint(j, p, res, err)
}

// localPoint runs one grid point through the local queue against the
// sweep's shared session.
func (m *Manager) localPoint(ctx context.Context, j *jobRecord, px *prefix, p SweepPoint, preq Request, pdigest string) (*Result, error) {
	rec, err := m.submitInternal(ctx, fmt.Sprintf("%s.p%d", j.id, p.Index), j.tenant, preq, pdigest, m.pointRunner(px, p.Index))
	if err != nil {
		return nil, err
	}
	<-rec.done
	m.mu.Lock()
	res, rerr := rec.result, rec.err
	m.mu.Unlock()
	return res, rerr
}

// pointOutcome carries one venue's answer for a hedged point.
type pointOutcome struct {
	res *Result
	err error
}

// remotePoint runs one grid point on its owner peer, hedging with a
// local run once the request has been outstanding longer than the
// cluster's hedge delay. Whichever venue finishes first wins; the loser
// is cancelled — the remote side observes the closed connection and
// cancels the job, the local side abandons the worker slot.
func (m *Manager) remotePoint(ctx context.Context, j *jobRecord, px *prefix, p SweepPoint, preq Request, pdigest, owner string) (*Result, error) {
	cl := m.cfg.Cluster
	body, err := json.Marshal(preq)
	if err != nil {
		return nil, err
	}
	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel()
	remoteCh := make(chan pointOutcome, 1)
	go func() {
		data, err := cl.ComputeAs(rctx, owner, j.tenant, body)
		if err != nil {
			remoteCh <- pointOutcome{nil, err}
			return
		}
		remoteCh <- decodeRemoteJob(data)
	}()
	m.metrics.clusterRemotePoints.Add(1)

	hedge := time.NewTimer(cl.HedgeDelay())
	defer hedge.Stop()
	select {
	case out := <-remoteCh:
		return out.res, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-hedge.C:
	}

	// The remote request is a straggler: race a local run against it.
	m.metrics.clusterHedges.Add(1)
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	localCh := make(chan pointOutcome, 1)
	go func() {
		res, err := m.localPoint(hctx, j, px, p, preq, pdigest)
		localCh <- pointOutcome{res, err}
	}()
	select {
	case out := <-remoteCh:
		if out.err == nil {
			m.metrics.clusterHedgesLost.Add(1)
			hcancel() // the local hedge lost: release its worker
			return out.res, nil
		}
		// The straggler ultimately failed; the hedge is now the primary.
		lout := <-localCh
		if lout.err == nil {
			m.metrics.clusterHedgesWon.Add(1)
		}
		return lout.res, lout.err
	case out := <-localCh:
		if out.err != nil {
			// The hedge failed first (e.g. sweep cancelled); fall back to
			// whatever the remote produces rather than racing to report.
			rout := <-remoteCh
			if rout.err == nil {
				m.metrics.clusterHedgesLost.Add(1)
				return rout.res, nil
			}
			return out.res, out.err
		}
		m.metrics.clusterHedgesWon.Add(1)
		rcancel() // the remote straggler lost: tear down its connection
		return out.res, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// decodeRemoteJob folds a peer's terminal Job JSON into a point outcome.
func decodeRemoteJob(data []byte) pointOutcome {
	var job Job
	if err := json.Unmarshal(data, &job); err != nil {
		return pointOutcome{nil, fmt.Errorf("service: decode remote job: %w", err)}
	}
	switch {
	case job.State == StateDone && job.Result != nil:
		return pointOutcome{job.Result, nil}
	case job.Error != "":
		return pointOutcome{nil, fmt.Errorf("service: remote compute: %s", job.Error)}
	}
	return pointOutcome{nil, fmt.Errorf("service: remote compute ended %s without a result", job.State)}
}

// CachedResult serves a peer's cache-fill request: the in-memory cache
// first, then the content-addressed store. It never computes.
func (m *Manager) CachedResult(digest string) (*Result, bool) {
	m.mu.Lock()
	res, ok := m.cache.Get(digest)
	m.mu.Unlock()
	if ok {
		m.metrics.clusterFillsServed.Add(1)
		return &res, true
	}
	if m.store == nil {
		return nil, false
	}
	if res, ok := m.loadResult(digest); ok {
		m.metrics.clusterFillsServed.Add(1)
		return res, true
	}
	return nil, false
}

// AcceptResult stores a result a non-owner peer computed for a digest
// this peer owns: persisted (when durable) and cached, so future fills
// hit.
func (m *Manager) AcceptResult(digest string, res Result) {
	res.CacheHit = false
	m.persistResult(digest, res)
	m.mu.Lock()
	evicted := m.cache.Put(digest, res)
	m.mu.Unlock()
	m.metrics.cacheEvictions.Add(int64(evicted))
}

// ComputeSync runs one request to completion on the local pool and
// returns the terminal job snapshot. It backs the peer-to-peer compute
// endpoint: the job is internal (absent from the public table and the
// journal), a full queue fails fast with ErrQueueFull so the calling
// peer can back off or steal, and cancelling ctx — the caller hanging
// up — cancels the job and releases its worker. It is ComputeSyncAs
// for the default tenant.
func (m *Manager) ComputeSync(ctx context.Context, req Request) (Job, error) {
	return m.ComputeSyncAs(ctx, DefaultTenant, req)
}

// ComputeSyncAs is ComputeSync with the originating tenant attached:
// fanned-out work is scheduled under the tenant that submitted the
// sweep on the coordinating peer, so weighted-fair admission holds
// fleet-wide, not just where the submission landed.
func (m *Manager) ComputeSyncAs(ctx context.Context, tenant string, req Request) (Job, error) {
	if err := req.Normalize(); err != nil {
		return Job{}, err
	}
	switch req.Kind {
	case "synth", "yield":
	default:
		return Job{}, fmt.Errorf("service: cluster compute does not accept kind %q (want synth or yield)", req.Kind)
	}
	digest, err := Digest(req)
	if err != nil {
		return Job{}, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Job{}, ErrClosed
	}
	m.seq++
	id := fmt.Sprintf("rpc-%06d", m.seq)
	m.mu.Unlock()

	if tenant == "" {
		tenant = DefaultTenant
	}
	jctx, cancel := context.WithCancel(m.baseCtx)
	j := &jobRecord{
		id:       id,
		req:      req,
		digest:   digest,
		tenant:   tenant,
		state:    StateQueued,
		created:  time.Now(),
		internal: true,
		ctx:      jctx,
		cancel:   cancel,
		done:     make(chan struct{}),
	}
	if err := m.admit.enqueueInternalFast(j); err != nil {
		cancel()
		return Job{}, err
	}
	m.metrics.clusterComputeServed.Add(1)

	select {
	case <-j.done:
	case <-ctx.Done():
		m.mu.Lock()
		j.cancelled = true
		m.mu.Unlock()
		cancel()
		<-j.done // the worker observes the cancel and finishes the record
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return j.snapshotLocked(), nil
}
