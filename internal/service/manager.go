package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sync/atomic"

	"tels/internal/cluster"
	"tels/internal/core"
	"tels/internal/fsim"
	"tels/internal/resyn"
	"tels/internal/store"
)

// Config sizes the manager.
type Config struct {
	// Workers is the worker-pool size (default runtime.NumCPU()).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker
	// (default 4×Workers). Submit fails with ErrQueueFull beyond it.
	QueueDepth int
	// CacheEntries bounds the result cache (default DefaultCacheEntries).
	CacheEntries int
	// DefaultTimeout bounds jobs that don't set their own Timeout
	// (default 2 minutes).
	DefaultTimeout time.Duration
	// MaxJobs bounds the retained job table (default 1024); the oldest
	// finished jobs are pruned first.
	MaxJobs int
	// FsimWidth is the packed fault-simulation engine's lane-block width
	// for every yield/sweep/resyn job this manager runs (default
	// fsim.DefaultWidth). Results are bit-identical at every width, so
	// the knob is deployment configuration — it is surfaced as the
	// fsim_width metrics label and never enters job digests.
	FsimWidth fsim.Width
	// Solver selects the threshold-check engine for every synthesis and
	// resynthesis job this manager runs (default core.SolverPortfolio:
	// the simplex ILP raced against the pbsat pseudo-Boolean engine).
	// Results are bit-identical across modes, so — like FsimWidth — the
	// knob is deployment configuration: it is surfaced as the
	// solver_mode metrics label and never enters job digests.
	Solver core.SolverMode
	// Store, when set, makes the manager durable: job lifecycles are
	// journaled to its WAL, results persist to its content-addressed
	// store, and at construction the journal is replayed — terminal
	// jobs are restored with their results, pending jobs re-enqueued
	// under their original IDs, and the cache warmed from disk. Nil
	// keeps the manager fully in-memory.
	Store *store.Store
	// Cluster, when set, spreads the content-addressed cache across a
	// static fleet of telsd peers: before computing a digest owned by
	// another peer the manager asks the owner for an existing result,
	// sweep grids fan their points to owner peers (hedged and stolen
	// back when peers straggle or die), and fresh results computed for
	// foreign digests are pushed to their owners. Nil keeps the manager
	// single-node; a fully dead fleet degrades to exactly that.
	Cluster *cluster.Cluster
	// ExecDelay adds an artificial latency to every pipeline execution.
	// It exists for benchmarks and tests that measure the dispatch layer
	// itself (cmd/telsbench cluster runs every peer in one process, where
	// real compute would serialize on the machine's cores); it never
	// enters job digests and must stay zero in production.
	ExecDelay time.Duration
	// Auth is the tenant/key table. Nil (or empty) is open mode: every
	// caller acts as an admin of the default tenant, preserving the
	// pre-tenancy behavior of a keyless telsd.
	Auth *Auth
	// Admission selects the scheduling policy: AdmissionFair (default)
	// or AdmissionFIFO (the pre-tenancy single-queue baseline, kept for
	// comparison benchmarks).
	Admission string
	// TenantWeight is the default weighted-fair share of a tenant that
	// doesn't override it in the auth table (default 1).
	TenantWeight int
	// TenantMaxJobs caps any tenant's outstanding (queued or running)
	// public jobs; beyond it submissions fail with ErrQuotaExceeded
	// (0 = unlimited; per-tenant overrides in the auth table win).
	TenantMaxJobs int
	// TenantMaxInFlight caps any tenant's concurrently dispatched jobs;
	// excess queued work simply waits (0 = unlimited).
	TenantMaxInFlight int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.FsimWidth == 0 {
		c.FsimWidth = fsim.DefaultWidth
	}
	return c
}

// Submission errors.
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrClosed    = errors.New("service: manager closed")
)

// jobRecord is the manager's mutable view of one submission. All mutable
// fields are guarded by the manager's mutex; the immutable ones are set
// at submit time.
type jobRecord struct {
	id     string
	req    Request
	digest string
	tenant string

	state     State
	created   time.Time
	started   time.Time
	finished  time.Time
	err       error
	errCode   string // explicit error code (set on journal replay)
	result    *Result
	cancelled bool // Cancel was requested (distinguishes cancel from timeout)

	// internal marks sub-tasks spawned by a sweep coordinator: they are
	// absent from the public job table and excluded from the job-outcome
	// counters (cache traffic still counts).
	internal bool
	// run, when set, replaces the manager's pipeline for this job (sweep
	// points run a point estimator against a shared session).
	run func(context.Context, Request) (Result, error)

	// Sweep progress (kind "sweep" only), guarded by the manager's mutex.
	// sweepPoints is indexed by grid position; nil slots are pending.
	sweepTotal  int
	sweepDone   int
	sweepFailed int
	sweepPoints []*SweepPoint

	// Resyn progress (kind "resyn" only), guarded by the manager's
	// mutex: iterations appended as the loop completes them.
	resynIters []resyn.Iteration

	ctx    context.Context // cancelled by Cancel or manager shutdown
	cancel context.CancelFunc
	done   chan struct{} // closed when the job reaches a terminal state

	// gone marks a record cancelled while queued; the admission queue
	// skips it lazily at pop time instead of unlinking it eagerly.
	gone atomic.Bool
	// subs are the job's live SSE subscribers, guarded by the manager's
	// mutex; emissions and snapshots happen under it, which is what
	// makes the stream's exactly-once-per-increment guarantee hold.
	subs []*subscriber
	// eventSeq numbers the events emitted for this job (SSE ids).
	eventSeq int64
}

// flight is one in-progress pipeline run; jobs with the same digest wait
// on it instead of re-running the synthesis (singleflight).
type flight struct {
	done chan struct{}
	res  Result
	err  error
}

// Manager owns the worker pool, the job table, and the result cache.
type Manager struct {
	cfg     Config
	cache   *Cache
	metrics *Metrics

	// store persists job lifecycles and results (nil = in-memory only);
	// the counters beside it feed the store_* metrics. Journal events
	// are captured into journalPending under mu and written to the WAL
	// by flushJournal outside it, so disk I/O never runs inside the
	// manager's critical sections; journalMu serializes flushers, which
	// keeps the WAL in capture (= state transition) order.
	store           *store.Store
	journalMu       sync.Mutex
	journalPending  []store.Event
	storeErrs       atomic.Int64
	storeReplayed   int64 // journal entries replayed at construction
	storeRequeued   int64 // replayed pending jobs put back in the queue
	storeWarmed     int64 // cache entries loaded from persisted results
	storeRecoveryMS int64

	mu       sync.Mutex
	jobs     map[string]*jobRecord
	order    []string // submission order, for List and pruning
	flights  map[string]*flight
	seq      int
	closed   bool
	draining bool // Close in progress: journal cancellations as interrupted

	admit      *admitQueue
	wg         sync.WaitGroup
	coordWg    sync.WaitGroup // sweep coordinators; drained before the queue closes
	pushWg     sync.WaitGroup // best-effort result pushes to owner peers
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// exec runs one pipeline; tests replace it to model slow or stuck
	// jobs deterministically. Set before any Submit.
	exec func(context.Context, Request) (Result, error)
	// sweepPointStart, when set, is invoked with the grid index at the
	// start of every executed sweep point; tests use it to pace points.
	sweepPointStart func(index int)
}

// New starts a manager with its worker pool. With Config.Store set it
// first replays the journal: terminal jobs are restored with their
// results, the cache is warmed from disk, and the pending backlog is
// re-enqueued in journal order — restored jobs bypass the depth bound
// and tenant quotas (they were admitted before the restart) but still
// register against their tenant's outstanding count, so quota
// accounting survives recovery. Recovered sweep coordinators start
// only after the backlog is enqueued and the workers are draining.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		cache:      NewCache(cfg.CacheEntries),
		metrics:    &Metrics{},
		store:      cfg.Store,
		jobs:       make(map[string]*jobRecord),
		flights:    make(map[string]*flight),
		baseCtx:    ctx,
		baseCancel: cancel,
		exec:       runBounded(cfg.FsimWidth, cfg.Solver),
		admit:      newAdmitQueue(cfg),
	}
	var pending []*jobRecord
	if m.store != nil {
		pending = m.restore(decodeBacklog(m.store))
	}
	for _, j := range pending {
		m.admit.enqueueRestored(j)
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	for _, j := range pending {
		if j.req.Kind == "sweep" {
			m.coordWg.Add(1)
			go m.runSweep(j)
		}
	}
	return m
}

// Workers reports the worker-pool size.
func (m *Manager) Workers() int { return m.cfg.Workers }

// Auth returns the tenant/key table (nil in open mode).
func (m *Manager) Auth() *Auth { return m.cfg.Auth }

// Close stops accepting jobs, cancels everything in flight, and waits for
// the workers to drain. Sweep coordinators observe the cancellation and
// stop feeding the queue before it closes.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	// From here cancellations are drain-induced, not user-requested;
	// with a store they are journaled as interrupted so the next start
	// re-enqueues them.
	m.draining = true
	m.mu.Unlock()
	m.baseCancel()
	m.coordWg.Wait()
	m.admit.close()
	m.wg.Wait()
	m.pushWg.Wait()  // in-flight owner pushes observe baseCtx and stop
	m.flushJournal() // drain-induced interrupted events reach the WAL
}

// Submit validates and enqueues a request under the default tenant,
// returning the job snapshot. It is SubmitAs with an open-mode caller;
// in-process embedders (cmd/telsim) use it directly.
func (m *Manager) Submit(req Request) (Job, error) {
	return m.SubmitAs(Caller{Tenant: DefaultTenant, Admin: true}, req)
}

// SubmitAs validates and enqueues a request on behalf of a caller,
// returning the job snapshot. The digest is computed up front, so a
// request that doesn't parse fails here rather than occupying a
// worker. Admission is per tenant: the caller's tenant owns the job,
// its outstanding-job quota applies (ErrQuotaExceeded beyond it), and
// the weighted-fair scheduler orders it against other tenants' work.
func (m *Manager) SubmitAs(caller Caller, req Request) (Job, error) {
	if err := req.Normalize(); err != nil {
		return Job{}, err
	}
	digest, err := Digest(req)
	if err != nil {
		return Job{}, err
	}
	tenant := caller.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}

	defer m.flushJournal() // after the deferred unlock (LIFO)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Job{}, ErrClosed
	}
	m.seq++
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &jobRecord{
		id:      fmt.Sprintf("job-%06d", m.seq),
		req:     req,
		digest:  digest,
		tenant:  tenant,
		state:   StateQueued,
		created: time.Now(),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	if req.Kind == "resyn" {
		// Resyn jobs run the selective re-synthesis loop in place of the
		// pipeline; the runner streams per-iteration progress into the
		// record.
		j.run = m.resynRunner(j)
	}
	if req.Kind == "sweep" {
		// Sweep jobs don't occupy a queue slot or a worker: a dedicated
		// coordinator fans their points into the queue, so even a
		// single-worker pool can't be deadlocked by its own sweep. They
		// still hold one outstanding-job slot of their tenant's quota.
		if err := m.admit.admitSweep(tenant); err != nil {
			cancel()
			return Job{}, err
		}
		m.coordWg.Add(1)
		go m.runSweep(j)
	} else if err := m.admit.enqueuePublic(j); err != nil {
		cancel()
		return Job{}, err
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.metrics.jobsSubmitted.Add(1)
	m.journalSubmitLocked(j)
	m.pruneLocked()
	return j.snapshotLocked(), nil
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.snapshotLocked(), true
}

// List returns snapshots of the retained jobs in submission order.
func (m *Manager) List() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.order))
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok {
			out = append(out, j.snapshotLocked())
		}
	}
	return out
}

// Cancel requests cancellation of a queued or running job. It reports
// whether the request took effect (false for unknown or already-terminal
// jobs). A queued job is finalized immediately; a running job's worker
// observes the context and releases its slot without waiting for the
// abandoned pipeline goroutine.
func (m *Manager) Cancel(id string) bool {
	defer m.flushJournal() // after the deferred unlock (LIFO)
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || j.state.Terminal() {
		return false
	}
	j.cancelled = true
	j.cancel()
	if j.state == StateQueued {
		// Leave the record in its admission lane; pop skips gone records
		// lazily. The terminal transition below retires its quota slot.
		j.gone.Store(true)
		m.finishLocked(j, nil, context.Canceled)
	}
	return true
}

// Wait blocks until the job reaches a terminal state or ctx expires, and
// returns the final snapshot.
func (m *Manager) Wait(ctx context.Context, id string) (Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return Job{}, ctx.Err()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return j.snapshotLocked(), nil
}

// MetricsSnapshot returns the counter map for /metrics.
func (m *Manager) MetricsSnapshot() map[string]int64 {
	m.mu.Lock()
	perState := make(map[State]int)
	for _, j := range m.jobs {
		perState[j.state]++
	}
	m.mu.Unlock()
	out := m.metrics.Snapshot(perState, m.cache.Len())
	out["fsim_width"] = int64(m.cfg.FsimWidth)
	out["solver_mode"] = int64(m.cfg.Solver)
	cc := core.SnapshotCheckCounters()
	out["threshold_checks"] = cc.Checks
	out["races"] = cc.Races
	out["ilp_wins"] = cc.ILPWins
	out["pbsat_wins"] = cc.PbsatWins
	out["unsat_core_hits"] = cc.UnsatCacheHits
	out["solver_budget_bailouts"] = cc.BudgetBailouts
	for name, ts := range m.admit.stats() {
		out["tenant_"+name+"_queued"] = int64(ts.Queued)
		out["tenant_"+name+"_running"] = int64(ts.Running)
		out["tenant_"+name+"_outstanding"] = int64(ts.Outstanding)
		out["tenant_"+name+"_dispatched"] = ts.Dispatched
		out["tenant_"+name+"_quota_rejections"] = ts.QuotaRejections
	}
	if cl := m.cfg.Cluster; cl != nil {
		m.metrics.addCluster(out)
		out["cluster_peers"] = int64(cl.Size())
		for addr, st := range cl.Stats() {
			out["cluster_peer_"+addr+"_inflight"] = st.Inflight
			out["cluster_peer_"+addr+"_requests"] = st.Requests
			out["cluster_peer_"+addr+"_errors"] = st.Errors
			out["cluster_peer_"+addr+"_trips"] = st.Trips
			if st.Down {
				out["cluster_peer_"+addr+"_down"] = 1
			} else {
				out["cluster_peer_"+addr+"_down"] = 0
			}
		}
	}
	if m.store != nil {
		st := m.store.Stats()
		out["store_journal_bytes"] = st.JournalBytes
		out["store_segments"] = int64(st.Segments)
		out["store_appends"] = st.Appends
		out["store_compactions"] = st.Compactions
		out["store_results"] = st.Results
		out["store_replayed_jobs"] = m.storeReplayed
		out["store_requeued_jobs"] = m.storeRequeued
		out["store_warmed_results"] = m.storeWarmed
		out["store_recovery_ms"] = m.storeRecoveryMS
		out["store_errors"] = m.storeErrs.Load()
	}
	return out
}

// pruneLocked evicts the oldest finished jobs beyond MaxJobs.
func (m *Manager) pruneLocked() {
	if len(m.order) <= m.cfg.MaxJobs {
		return
	}
	kept := m.order[:0]
	excess := len(m.order) - m.cfg.MaxJobs
	for _, id := range m.order {
		j := m.jobs[id]
		if excess > 0 && j != nil && j.state.Terminal() {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

func (j *jobRecord) snapshotLocked() Job {
	job := Job{
		ID:       j.id,
		Kind:     j.req.Kind,
		Tenant:   j.tenant,
		Priority: j.req.Priority,
		State:    j.state,
		Digest:   j.digest,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Result:   j.result,
	}
	if j.err != nil {
		job.Error = j.err.Error()
		job.ErrorCode = j.errCode
		if fsim.InvalidInput(j.err) {
			// Requests the packed engine rejects by design (too many
			// exhaustive inputs, fanin over the packed limit) are caller
			// errors, not service failures.
			job.ErrorCode = CodeInvalidRequest
		}
	}
	if j.req.Kind == "sweep" && j.sweepTotal > 0 {
		pr := &Progress{
			DonePoints:   j.sweepDone,
			TotalPoints:  j.sweepTotal,
			FailedPoints: j.sweepFailed,
		}
		for _, sp := range j.sweepPoints {
			if sp != nil {
				pr.Points = append(pr.Points, *sp)
			}
		}
		job.Progress = pr
	}
	if j.req.Kind == "resyn" && len(j.resynIters) > 0 {
		job.Progress = &Progress{
			Iterations: append([]resyn.Iteration(nil), j.resynIters...),
		}
	}
	return job
}

// worker drains the admission queue until Close.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j, ok := m.admit.pop()
		if !ok {
			return
		}
		m.runJob(j)
		m.admit.release(j)
	}
}

// runJob drives one job: cache lookup, singleflight coalescing, or an
// actual pipeline run under the job's deadline.
func (m *Manager) runJob(j *jobRecord) {
	defer m.flushJournal() // terminal transitions journal under the lock
	m.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting for a worker
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	timeout := j.req.Timeout
	if timeout <= 0 {
		timeout = m.cfg.DefaultTimeout
	}
	if !j.internal {
		m.journalLocked(store.Event{Type: store.EventStarted, JobID: j.id})
		m.emitLocked(j, eventState, nil, nil)
	}
	m.mu.Unlock()
	m.flushJournal()

	ctx, cancel := context.WithTimeout(j.ctx, timeout)
	defer cancel()

	for {
		m.mu.Lock()
		if res, ok := m.cache.Get(j.digest); ok {
			m.metrics.cacheHits.Add(1)
			res.CacheHit = true
			m.finishLocked(j, &res, nil)
			m.mu.Unlock()
			return
		}
		if f, ok := m.flights[j.digest]; ok {
			m.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				m.finish(j, nil, ctx.Err())
				return
			}
			if f.err != nil {
				// The leader failed (error, cancel, or timeout): this
				// job retries from the top and may become the leader.
				continue
			}
			m.mu.Lock()
			m.metrics.cacheHits.Add(1)
			res := f.res
			res.CacheHit = true
			m.finishLocked(j, &res, nil)
			m.mu.Unlock()
			return
		}
		f := &flight{done: make(chan struct{})}
		m.flights[j.digest] = f
		m.metrics.cacheMisses.Add(1)
		m.mu.Unlock()

		// A digest owned by another peer may already be computed there:
		// ask before burning a worker on it. Jobs with a custom runner
		// skip the fill — the sweep dispatcher already chose the venue.
		if j.run == nil {
			if res, ok := m.remoteFill(ctx, j.digest); ok {
				m.mu.Lock()
				delete(m.flights, j.digest)
				res.CacheHit = false // stored copy mirrors a fresh result
				evicted := m.cache.Put(j.digest, res)
				m.metrics.cacheEvictions.Add(int64(evicted))
				f.res = res
				close(f.done)
				r := res
				r.CacheHit = true
				m.finishLocked(j, &r, nil)
				m.mu.Unlock()
				return
			}
		}
		m.metrics.jobsExecuted.Add(1)

		exec := m.exec
		if j.run != nil {
			// Custom runners (sweep points) get the same detachment the
			// pipeline has: a cancelled job frees its worker immediately.
			inner := j.run
			exec = func(c context.Context, r Request) (Result, error) {
				return runDetached(c, r, inner)
			}
		}
		if d := m.cfg.ExecDelay; d > 0 {
			inner := exec
			exec = func(c context.Context, r Request) (Result, error) {
				select {
				case <-time.After(d):
				case <-c.Done():
					return Result{}, c.Err()
				}
				return inner(c, r)
			}
		}
		res, err := exec(ctx, j.req)
		if err == nil {
			// Persist the fresh result before taking the lock (disk I/O);
			// internal sweep points and prefixes persist here too, so a
			// restarted sweep re-serves its finished points from disk.
			m.persistResult(j.digest, res)
			// Replicate to the digest's owner peer so its future fills hit.
			m.pushToOwner(j.digest, res)
		}

		m.mu.Lock()
		delete(m.flights, j.digest)
		if err == nil {
			evicted := m.cache.Put(j.digest, res)
			m.metrics.cacheEvictions.Add(int64(evicted))
			m.metrics.addStages(res.Stages)
		}
		f.res, f.err = res, err
		close(f.done)
		if err != nil {
			m.finishLocked(j, nil, err)
		} else {
			r := res
			m.finishLocked(j, &r, nil)
		}
		m.mu.Unlock()
		return
	}
}

func (m *Manager) finish(j *jobRecord, res *Result, err error) {
	defer m.flushJournal() // after the deferred unlock (LIFO)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finishLocked(j, res, err)
}

// finishLocked moves the job to its terminal state and fires its done
// channel. Callers hold m.mu.
func (m *Manager) finishLocked(j *jobRecord, res *Result, err error) {
	if j.state.Terminal() {
		return
	}
	j.finished = time.Now()
	j.result = res
	switch {
	case err == nil:
		j.state = StateDone
		if !j.internal {
			m.metrics.jobsDone.Add(1)
		}
	case j.cancelled || errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = context.Canceled
		if !j.internal {
			m.metrics.jobsCancelled.Add(1)
		}
	case errors.Is(err, context.DeadlineExceeded):
		j.state = StateFailed
		j.err = fmt.Errorf("service: job timed out: %w", err)
		if !j.internal {
			m.metrics.jobsFailed.Add(1)
		}
	default:
		j.state = StateFailed
		j.err = err
		if !j.internal {
			m.metrics.jobsFailed.Add(1)
		}
	}
	if !j.internal {
		m.admit.finished(j.tenant)
	}
	m.journalFinishLocked(j)
	m.emitEndLocked(j)
	j.cancel() // release the context's resources
	close(j.done)
}
