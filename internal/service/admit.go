package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// This file is the admission layer that replaced the manager's single
// channel queue: per-tenant weighted-fair queues with three priority
// lanes each, per-tenant quotas, and a stride scheduler that picks the
// next job for a freed worker.
//
// Fairness is stride scheduling over tenants: each tenant carries a
// virtual "pass"; dispatching one of its jobs advances the pass by
// 1/weight, and a freed worker always serves the eligible tenant with
// the smallest pass. A tenant that floods the queue therefore advances
// its own pass quickly and yields to lighter tenants, while an idle
// tenant re-enters at the current virtual time (never banking credit
// for time it wasn't asking to run). Within one tenant, the high lane
// drains before normal before low — priority orders a tenant's own
// work and never steals capacity from other tenants.

// ErrQuotaExceeded is the sentinel under every per-tenant quota
// rejection; the API maps it to 429 quota_exceeded with Retry-After.
var ErrQuotaExceeded = errors.New("service: tenant quota exceeded")

// QuotaError reports which quota a submission tripped.
type QuotaError struct {
	// Tenant is the over-budget tenant.
	Tenant string
	// Limit is the quota that was hit.
	Limit int
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("service: tenant %q over job quota (limit %d outstanding)", e.Tenant, e.Limit)
}

func (e *QuotaError) Unwrap() error { return ErrQuotaExceeded }

// quotaRetryAfter is the Retry-After suggestion on 429s: long enough
// that a polite client backs off, short enough that freed quota is
// picked up promptly.
const quotaRetryAfter = time.Second

// Admission policies.
const (
	AdmissionFair = "fair" // weighted-fair stride scheduling (default)
	AdmissionFIFO = "fifo" // single shared FIFO (the pre-tenancy baseline)
)

// tenantState is one tenant's admission bookkeeping.
type tenantState struct {
	name        string
	weight      float64
	maxJobs     int // outstanding public jobs; <=0 = unlimited
	maxInFlight int // concurrently dispatched jobs; <=0 = unlimited

	pass        float64         // stride virtual time
	q           [3][]*jobRecord // priority lanes: high, normal, low
	nq          int             // records across lanes, cancelled included
	outstanding int             // public queued+running jobs (sweeps included)
	running     int             // dispatched worker-occupying jobs

	dispatched      int64
	quotaRejections int64
}

// popLane removes and returns the tenant's next queued record (which
// may be a cancelled one the caller must skip).
func (t *tenantState) popLane() (*jobRecord, bool) {
	for lane := range t.q {
		if len(t.q[lane]) > 0 {
			j := t.q[lane][0]
			t.q[lane][0] = nil
			t.q[lane] = t.q[lane][1:]
			t.nq--
			return j, true
		}
	}
	return nil, false
}

// TenantStats is one tenant's admission counters for /metrics.
type TenantStats struct {
	Queued          int
	Running         int
	Outstanding     int
	Dispatched      int64
	QuotaRejections int64
}

// admitQueue is the manager's admission queue. It has its own mutex;
// the manager may take it while holding m.mu (never the reverse).
type admitQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	policy   string
	depth    int // global queued-record bound for fail-fast enqueues
	defaults struct {
		weight      int
		maxJobs     int
		maxInFlight int
	}
	auth *Auth

	vtime   float64
	tenants map[string]*tenantState
	fifo    []*jobRecord // AdmissionFIFO: one shared lane, tenants ignored
	queued  int          // records physically queued, internal and cancelled included
	closed  bool
}

func newAdmitQueue(cfg Config) *admitQueue {
	aq := &admitQueue{
		policy:  cfg.Admission,
		depth:   cfg.QueueDepth,
		auth:    cfg.Auth,
		tenants: make(map[string]*tenantState),
	}
	if aq.policy == "" {
		aq.policy = AdmissionFair
	}
	aq.defaults.weight = cfg.TenantWeight
	if aq.defaults.weight <= 0 {
		aq.defaults.weight = 1
	}
	aq.defaults.maxJobs = cfg.TenantMaxJobs
	aq.defaults.maxInFlight = cfg.TenantMaxInFlight
	aq.cond = sync.NewCond(&aq.mu)
	return aq
}

// tenantLocked lazily materializes a tenant's state, resolving its
// knobs from the auth table (per-tenant overrides) over the manager
// defaults.
func (aq *admitQueue) tenantLocked(name string) *tenantState {
	if name == "" {
		name = DefaultTenant
	}
	if t, ok := aq.tenants[name]; ok {
		return t
	}
	t := &tenantState{
		name:        name,
		weight:      float64(aq.defaults.weight),
		maxJobs:     aq.defaults.maxJobs,
		maxInFlight: aq.defaults.maxInFlight,
		pass:        aq.vtime,
	}
	if tc, ok := aq.auth.Tenant(name); ok {
		if tc.Weight != 0 {
			t.weight = float64(tc.Weight)
		}
		if tc.MaxJobs != 0 {
			t.maxJobs = tc.MaxJobs
		}
		if tc.MaxInFlight != 0 {
			t.maxInFlight = tc.MaxInFlight
		}
	}
	if t.weight <= 0 {
		t.weight = 1
	}
	aq.tenants[name] = t
	return t
}

// checkJobQuotaLocked applies the outstanding-job quota.
func (aq *admitQueue) checkJobQuotaLocked(t *tenantState) error {
	if t.maxJobs > 0 && t.outstanding >= t.maxJobs {
		t.quotaRejections++
		return &QuotaError{Tenant: t.name, Limit: t.maxJobs, RetryAfter: quotaRetryAfter}
	}
	return nil
}

// enqueuePublic admits one public non-sweep job: the global depth bound
// first (503 overloaded), then the tenant's job quota (429), then the
// job joins its tenant's lane. An idle tenant's pass is floored to the
// current virtual time so it can't bank credit.
func (aq *admitQueue) enqueuePublic(j *jobRecord) error {
	aq.mu.Lock()
	defer aq.mu.Unlock()
	if aq.queued >= aq.depth {
		return ErrQueueFull
	}
	t := aq.tenantLocked(j.tenant)
	if err := aq.checkJobQuotaLocked(t); err != nil {
		return err
	}
	t.outstanding++
	aq.pushQueueLocked(t, j)
	return nil
}

// admitSweep admits a sweep job: it holds an outstanding-job slot for
// quota purposes but never occupies a queue position or a worker (its
// coordinator fans internal points instead).
func (aq *admitQueue) admitSweep(tenant string) error {
	aq.mu.Lock()
	defer aq.mu.Unlock()
	t := aq.tenantLocked(tenant)
	if err := aq.checkJobQuotaLocked(t); err != nil {
		return err
	}
	t.outstanding++
	return nil
}

// enqueueRestored re-admits a journal-replayed pending job, bypassing
// the depth bound and quotas (it was admitted before the restart; a
// quota change must not orphan it) while still registering it against
// the tenant's outstanding count, so quota accounting survives
// recovery.
func (aq *admitQueue) enqueueRestored(j *jobRecord) {
	aq.mu.Lock()
	defer aq.mu.Unlock()
	t := aq.tenantLocked(j.tenant)
	t.outstanding++
	if j.req.Kind == "sweep" {
		return
	}
	aq.pushQueueLocked(t, j)
}

// enqueueInternal admits a coordinator sub-task (sweep point, prefix
// synth): no quota, no depth bound — the coordinator's in-flight budget
// paces it — but it is scheduled under its tenant, so a sweep's points
// compete fairly with other tenants' jobs.
func (aq *admitQueue) enqueueInternal(j *jobRecord) {
	aq.mu.Lock()
	defer aq.mu.Unlock()
	aq.pushQueueLocked(aq.tenantLocked(j.tenant), j)
}

// enqueueInternalFast is enqueueInternal with the global depth bound:
// the cluster compute path fails fast with ErrQueueFull so a saturated
// peer answers busy instead of hoarding work.
func (aq *admitQueue) enqueueInternalFast(j *jobRecord) error {
	aq.mu.Lock()
	defer aq.mu.Unlock()
	if aq.queued >= aq.depth {
		return ErrQueueFull
	}
	aq.pushQueueLocked(aq.tenantLocked(j.tenant), j)
	return nil
}

func (aq *admitQueue) pushQueueLocked(t *tenantState, j *jobRecord) {
	if t.nq == 0 && t.pass < aq.vtime {
		t.pass = aq.vtime
	}
	if aq.policy == AdmissionFIFO {
		aq.fifo = append(aq.fifo, j)
	} else {
		lane := priorityIndex(j.req.Priority)
		t.q[lane] = append(t.q[lane], j)
	}
	t.nq++
	aq.queued++
	aq.cond.Signal()
}

// pop blocks until a job is dispatchable and returns it, or returns
// ok=false when the queue is closed and drained. Under the fair policy
// it serves the smallest-pass tenant whose in-flight quota admits
// another dispatch; during shutdown the in-flight quota is waived so
// the drain can't wedge.
func (aq *admitQueue) pop() (*jobRecord, bool) {
	aq.mu.Lock()
	defer aq.mu.Unlock()
	for {
		if j, ok := aq.popLocked(); ok {
			return j, true
		}
		if aq.closed && aq.queued == 0 {
			return nil, false
		}
		aq.cond.Wait()
	}
}

func (aq *admitQueue) popLocked() (*jobRecord, bool) {
	if aq.policy == AdmissionFIFO {
		for len(aq.fifo) > 0 {
			j := aq.fifo[0]
			aq.fifo[0] = nil
			aq.fifo = aq.fifo[1:]
			aq.queued--
			t := aq.tenantLocked(j.tenant)
			t.nq--
			if j.gone.Load() {
				continue
			}
			t.running++
			t.dispatched++
			return j, true
		}
		return nil, false
	}
	for {
		var best *tenantState
		for _, t := range aq.tenants {
			if t.nq == 0 {
				continue
			}
			if !aq.closed && t.maxInFlight > 0 && t.running >= t.maxInFlight {
				continue
			}
			if best == nil || t.pass < best.pass {
				best = t
			}
		}
		if best == nil {
			return nil, false
		}
		j, ok := best.popLane()
		if !ok { // unreachable: nq > 0 implies a queued record
			return nil, false
		}
		aq.queued--
		if j.gone.Load() {
			continue // cancelled while queued; costs no pass advance
		}
		aq.vtime = best.pass
		best.pass += 1 / best.weight
		best.running++
		best.dispatched++
		return j, true
	}
}

// release returns a dispatched job's worker slot to its tenant.
func (aq *admitQueue) release(j *jobRecord) {
	aq.mu.Lock()
	t := aq.tenantLocked(j.tenant)
	t.running--
	aq.mu.Unlock()
	aq.cond.Broadcast()
}

// finished retires one public job from its tenant's outstanding count
// (called exactly once per public job, at its terminal transition).
func (aq *admitQueue) finished(tenant string) {
	aq.mu.Lock()
	t := aq.tenantLocked(tenant)
	if t.outstanding > 0 {
		t.outstanding--
	}
	aq.mu.Unlock()
}

// close stops dispatch admission: pops drain what is queued and then
// report exhaustion.
func (aq *admitQueue) close() {
	aq.mu.Lock()
	aq.closed = true
	aq.mu.Unlock()
	aq.cond.Broadcast()
}

// stats snapshots every tenant's counters.
func (aq *admitQueue) stats() map[string]TenantStats {
	aq.mu.Lock()
	defer aq.mu.Unlock()
	out := make(map[string]TenantStats, len(aq.tenants))
	for name, t := range aq.tenants {
		live := 0
		for lane := range t.q {
			for _, j := range t.q[lane] {
				if j != nil && !j.gone.Load() {
					live++
				}
			}
		}
		out[name] = TenantStats{
			Queued:          live,
			Running:         t.running,
			Outstanding:     t.outstanding,
			Dispatched:      t.dispatched,
			QuotaRejections: t.quotaRejections,
		}
	}
	return out
}

// tenantNames returns the names seen so far, sorted (metrics ordering).
func (aq *admitQueue) tenantNames() []string {
	aq.mu.Lock()
	defer aq.mu.Unlock()
	names := make([]string, 0, len(aq.tenants))
	for name := range aq.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
