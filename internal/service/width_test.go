package service

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"tels/internal/fsim"
)

// TestFsimWidthTransparent runs the same yield request through managers
// deployed at every lane width: the job digests and yield reports must be
// identical — the width is a deployment throughput knob, never request
// state — and the configured width is visible only in the metrics.
func TestFsimWidthTransparent(t *testing.T) {
	req := Request{
		BLIF:  testBlif,
		Kind:  "yield",
		Yield: YieldSpec{Model: "weight", V: 2.0, MaxTrials: 200, Seed: 3},
	}
	var digests []string
	var reports []*fsim.YieldReport
	for _, w := range fsim.Widths() {
		m := newTestManager(t, Config{Workers: 2, FsimWidth: w})
		job, err := m.Submit(req)
		if err != nil {
			t.Fatalf("width %s: %v", w, err)
		}
		done, err := m.Wait(context.Background(), job.ID)
		if err != nil {
			t.Fatalf("width %s: %v", w, err)
		}
		if done.State != StateDone {
			t.Fatalf("width %s: state %s (%s)", w, done.State, done.Error)
		}
		if done.Result.Yield == nil {
			t.Fatalf("width %s: no yield report", w)
		}
		digests = append(digests, done.Digest)
		reports = append(reports, done.Result.Yield)
		if got := m.MetricsSnapshot()["fsim_width"]; got != int64(w) {
			t.Fatalf("width %s: fsim_width metric = %d", w, got)
		}
	}
	for i := 1; i < len(digests); i++ {
		if digests[i] != digests[0] {
			t.Fatalf("width changed the job digest: %s vs %s", digests[i], digests[0])
		}
		a, b := reports[i], reports[0]
		if a.Trials != b.Trials || a.Failures != b.Failures ||
			a.FailureRate != b.FailureRate || a.Vectors != b.Vectors ||
			fmt.Sprint(a.Critical) != fmt.Sprint(b.Critical) {
			t.Fatalf("width changed the yield report: %+v vs %+v", a, b)
		}
	}
}

// TestInvalidInputErrorCode covers the error-hardening classification: a
// job failing with a wrapped fsim engine sentinel (ErrFaninLimit here —
// the TELS synthesizer itself splits gates below the packed limit, so
// the sentinel reaches the service only from hand-built networks or
// future pipelines) is surfaced as invalid_request, while an arbitrary
// internal failure stays unclassified.
func TestInvalidInputErrorCode(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	// Fail exactly as the yield runner does: the sentinel wrapped twice
	// with %w, once by fsim and once by the runner.
	m.exec = func(ctx context.Context, req Request) (Result, error) {
		return Result{}, fmt.Errorf("service: yield analysis: %w",
			fmt.Errorf("%w: gate g fanin 14 (max %d)", fsim.ErrFaninLimit, fsim.PackedFaninLimit))
	}
	job, err := m.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	done, err := m.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateFailed {
		t.Fatalf("state = %s, want failed", done.State)
	}
	if done.ErrorCode != CodeInvalidRequest {
		t.Fatalf("error code = %q (error %q), want %q", done.ErrorCode, done.Error, CodeInvalidRequest)
	}
	if !strings.Contains(done.Error, "fanin") {
		t.Fatalf("error does not mention fanin: %q", done.Error)
	}

	// An internal failure must NOT be classified as the client's fault.
	m2 := newTestManager(t, Config{Workers: 1})
	m2.exec = func(ctx context.Context, req Request) (Result, error) {
		return Result{}, fmt.Errorf("boom")
	}
	job2, err := m2.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	done2, err := m2.Wait(context.Background(), job2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done2.State != StateFailed || done2.ErrorCode != "" {
		t.Fatalf("internal failure misclassified: state %s, code %q", done2.State, done2.ErrorCode)
	}
}
