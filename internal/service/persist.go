package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"tels/internal/store"
)

// This file wires the manager to the durable store (internal/store).
// With Config.Store set, every public job's lifecycle is journaled to
// the WAL (submitted with its full normalized request, started,
// progress, and one terminal event) and every freshly computed result
// is persisted to the content-addressed result store under its request
// digest. At construction the manager replays the journal: terminal
// jobs come back into the job table with their results loaded from
// disk, pending jobs (queued, running, or interrupted by a graceful
// drain) are re-enqueued under their original IDs — their requests
// carry the deterministic seeds, so replayed sweeps and resyns
// reproduce bit-identical digests — and the LRU cache is warmed from
// the persisted results so finished work is re-served without
// recomputation. Without a store every hook is a no-op and the manager
// behaves exactly as before.
//
// Journal appends and result writes are best-effort: a persistence
// error never fails the job, it only increments store_errors (the job
// would merely be recomputed after a restart).

// replayedJob pairs one folded journal entry with its decoded request.
type replayedJob struct {
	st  store.JobState
	req Request
	err error // request decode/normalize failure (journal damage)
}

// decodeBacklog parses the store's recovered job states into requests.
func decodeBacklog(st *store.Store) []replayedJob {
	rec := st.Recovered()
	out := make([]replayedJob, 0, len(rec.Jobs))
	for _, js := range rec.Jobs {
		rj := replayedJob{st: js}
		if err := json.Unmarshal(js.Request, &rj.req); err != nil {
			rj.err = fmt.Errorf("service: replay job %s: decode request: %w", js.ID, err)
		} else if err := rj.req.Normalize(); err != nil {
			rj.err = fmt.Errorf("service: replay job %s: %w", js.ID, err)
		}
		out = append(out, rj)
	}
	return out
}

// restore replays the decoded backlog into the job table and warms the
// cache, returning the pending jobs in journal order. It runs from New
// before any worker starts: the caller re-admits the returned list
// (bypassing quotas — the jobs were admitted before the restart) and
// only then starts workers and recovered sweep coordinators.
func (m *Manager) restore(backlog []replayedJob) []*jobRecord {
	start := time.Now()
	m.warmCache()
	var pending []*jobRecord
	for _, rj := range backlog {
		if j := m.restoreJob(rj); j != nil {
			pending = append(pending, j)
		}
		m.storeReplayed++
	}
	m.storeRecoveryMS = time.Since(start).Milliseconds()
	return pending
}

// replayTenant resolves a folded journal entry's owner. Records written
// before the journal carried tenancy (schema v1) have an empty tenant
// and replay under the default tenant — pinned by test, since changing
// it would silently re-own old backlogs.
func replayTenant(st store.JobState) string {
	if st.Tenant == "" {
		return DefaultTenant
	}
	return st.Tenant
}

// restoreJob rebuilds one journal entry: terminal states land directly
// in the job table (results re-read from the content-addressed store),
// pending states are returned for the caller to re-enqueue under their
// original IDs.
func (m *Manager) restoreJob(rj replayedJob) *jobRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bumpSeqLocked(rj.st.ID)
	created := time.Unix(0, rj.st.Submitted)
	if rj.st.Submitted == 0 {
		created = time.Now()
	}

	if rj.err != nil {
		m.insertTerminalLocked(rj, created, StateFailed, rj.err, nil)
		return nil
	}
	switch rj.st.Status {
	case store.EventFinished:
		if res, ok := m.loadResult(rj.st.Digest); ok {
			m.insertTerminalLocked(rj, created, StateDone, nil, res)
			return nil
		}
		// The journal says finished but the result file is gone (e.g. a
		// crash between the result write and the journal append, or a
		// pruned results directory): recompute.
		return m.requeueLocked(rj, created)
	case store.EventFailed:
		m.insertTerminalLocked(rj, created, StateFailed, errors.New(rj.st.Error), nil)
	case store.EventCanceled:
		m.insertTerminalLocked(rj, created, StateCancelled, context.Canceled, nil)
	default: // submitted, started, interrupted → back into the queue
		return m.requeueLocked(rj, created)
	}
	return nil
}

// insertTerminalLocked adds a finished journal entry to the job table.
func (m *Manager) insertTerminalLocked(rj replayedJob, created time.Time, state State, err error, res *Result) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	cancel()
	j := &jobRecord{
		id:       rj.st.ID,
		req:      rj.req,
		digest:   rj.st.Digest,
		tenant:   replayTenant(rj.st),
		state:    state,
		created:  created,
		finished: time.Unix(0, rj.st.Finished),
		err:      err,
		errCode:  rj.st.ErrorCode,
		result:   res,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
	}
	if rj.st.Finished == 0 {
		j.finished = created
	}
	if state == StateCancelled {
		j.cancelled = true
	}
	close(j.done)
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
}

// requeueLocked rebuilds a pending journal entry under its original ID
// and returns it for New to re-admit: sweep coordinators must not
// start before the backlog is enqueued and the workers are draining,
// so recovered sweeps resume against a live pool.
func (m *Manager) requeueLocked(rj replayedJob, created time.Time) *jobRecord {
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &jobRecord{
		id:      rj.st.ID,
		req:     rj.req,
		digest:  rj.st.Digest,
		tenant:  replayTenant(rj.st),
		state:   StateQueued,
		created: created,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	if rj.req.Kind == "resyn" {
		j.run = m.resynRunner(j)
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.storeRequeued++
	return j
}

// bumpSeqLocked keeps the ID counter above every replayed ID so new
// submissions never collide with recovered ones.
func (m *Manager) bumpSeqLocked(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "job-%06d", &n); err == nil && n > m.seq {
		m.seq = n
	}
}

// loadResult reads and decodes one persisted result.
func (m *Manager) loadResult(digest string) (*Result, bool) {
	if digest == "" {
		return nil, false
	}
	data, err := m.store.GetResult(digest)
	if err != nil {
		return nil, false
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, false
	}
	return &res, true
}

// warmCache preloads the LRU from the persisted results, newest first,
// up to the cache capacity — so recovered results are re-served from
// memory and replayed sweep points hit instead of recomputing. Loaded
// oldest-to-newest so the LRU's eviction order matches file age.
func (m *Manager) warmCache() {
	capEntries := m.cfg.CacheEntries
	if capEntries <= 0 {
		capEntries = DefaultCacheEntries
	}
	digests, err := m.store.ResultDigests()
	if err != nil {
		m.storeErrs.Add(1)
		return
	}
	if len(digests) > capEntries {
		digests = digests[:capEntries]
	}
	for i := len(digests) - 1; i >= 0; i-- {
		res, ok := m.loadResult(digests[i])
		if !ok {
			continue
		}
		m.cache.Put(digests[i], *res)
		m.storeWarmed++
	}
}

// journalLocked captures one event, stamping the time. The caller
// holds m.mu — the capture order under the lock is the order the
// events reach the WAL — and calls flushJournal after releasing it, so
// the disk write itself never runs inside the manager's critical
// section.
func (m *Manager) journalLocked(ev store.Event) {
	if m.store == nil {
		return
	}
	ev.Unix = time.Now().UnixNano()
	m.journalPending = append(m.journalPending, ev)
}

// flushJournal appends every captured event to the WAL; errors only
// count. Callers must not hold m.mu. journalMu serializes flushers, so
// batches reach the store in capture order; a concurrent flusher may
// have already drained this caller's events, in which case the append
// completed before that flusher released journalMu — an event is
// always durable by the time its capturer's flush returns.
func (m *Manager) flushJournal() {
	if m.store == nil {
		return
	}
	m.journalMu.Lock()
	defer m.journalMu.Unlock()
	m.mu.Lock()
	evs := m.journalPending
	m.journalPending = nil
	m.mu.Unlock()
	for _, ev := range evs {
		if err := m.store.Append(ev); err != nil {
			m.storeErrs.Add(1)
		}
	}
}

// journalSubmitLocked journals a public job's submission with its full
// normalized request, the replay unit of recovery.
func (m *Manager) journalSubmitLocked(j *jobRecord) {
	if m.store == nil {
		return
	}
	req, err := json.Marshal(j.req)
	if err != nil {
		m.storeErrs.Add(1)
		return
	}
	m.journalLocked(store.Event{
		Type:     store.EventSubmitted,
		JobID:    j.id,
		Kind:     j.req.Kind,
		Digest:   j.digest,
		Request:  req,
		Tenant:   j.tenant,
		Priority: j.req.Priority,
	})
}

// journalProgressLocked journals a sweep's done/total counters or a
// resyn's iteration count, so an operator can see how far a recovered
// backlog had progressed.
func (m *Manager) journalProgressLocked(j *jobRecord, done, total int) {
	if m.store == nil || j.internal {
		return
	}
	m.journalLocked(store.Event{Type: store.EventProgress, JobID: j.id, Done: done, Total: total})
}

// journalFinishLocked journals a public job's terminal transition.
// During a graceful drain, cancellations the user didn't ask for are
// journaled as interrupted, so the next start re-enqueues them instead
// of losing them.
func (m *Manager) journalFinishLocked(j *jobRecord) {
	if m.store == nil || j.internal {
		return
	}
	ev := store.Event{JobID: j.id, Digest: j.digest}
	switch j.state {
	case StateDone:
		ev.Type = store.EventFinished
	case StateCancelled:
		ev.Type = store.EventCanceled
		if m.draining && !j.cancelled {
			ev.Type = store.EventInterrupted
		}
	default:
		ev.Type = store.EventFailed
		if j.err != nil {
			ev.Error = j.err.Error()
		}
		ev.ErrorCode = j.snapshotLocked().ErrorCode
	}
	m.journalLocked(ev)
}

// persistResult writes a freshly computed result to the
// content-addressed store (no-op without a store, idempotent per
// digest).
func (m *Manager) persistResult(digest string, res Result) {
	if m.store == nil {
		return
	}
	data, err := json.Marshal(res)
	if err == nil {
		err = m.store.PutResult(digest, data)
	}
	if err != nil {
		m.storeErrs.Add(1)
	}
}
