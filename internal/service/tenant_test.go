package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"tels/internal/cluster"
	"tels/internal/store"
)

// testAuth builds the three-principal key table most tenancy tests use:
// two plain tenants plus an admin key.
func testAuth(t *testing.T, tenants ...TenantConfig) *Auth {
	t.Helper()
	if tenants == nil {
		tenants = []TenantConfig{
			{Name: "alice", Key: "ka"},
			{Name: "bob", Key: "kb"},
			{Name: "ops", Key: "kadmin", Admin: true},
		}
	}
	a, err := NewAuth(tenants)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func synthEnvelope(t *testing.T, priority string) []byte {
	t.Helper()
	spec, err := json.Marshal(SynthSpec{BLIF: testBlif})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(SubmitEnvelope{Kind: "synth", Spec: spec, Priority: priority})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// readBody drains and returns a response body.
func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return []byte(sb.String())
}

// httpDo issues one request against the test server.
func httpDo(t *testing.T, srv *httptest.Server, method, path, key, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, readBody(t, resp)
}

// wantEnvelope asserts the body is the v1 error envelope with the code.
func wantEnvelope(t *testing.T, body []byte, wantCode string) {
	t.Helper()
	var env struct {
		Error APIError `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("body is not the JSON envelope: %v\n%s", err, body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", body)
	}
	if wantCode != "" && env.Error.Code != wantCode {
		t.Fatalf("code = %q, want %q (%s)", env.Error.Code, wantCode, body)
	}
}

// TestV1ErrorEnvelopeConformance sweeps the whole v1 surface with wrong
// methods, bad bodies, and missing credentials: every error answer —
// the routing layer's own 405s included — must carry the uniform
// {"error": {"code", "message"}} envelope.
func TestV1ErrorEnvelopeConformance(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, Auth: testAuth(t)})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	cases := []struct {
		name       string
		method     string
		path       string
		key        string
		body       string
		wantStatus int
		wantCode   string
	}{
		// Wrong method on every route → 405 in the envelope.
		{"put jobs", http.MethodPut, "/v1/jobs", "kadmin", "", 405, CodeMethodNotAllowed},
		{"post job id", http.MethodPost, "/v1/jobs/job-000001", "kadmin", "", 405, CodeMethodNotAllowed},
		{"put tln", http.MethodPut, "/v1/jobs/job-000001/tln", "kadmin", "", 405, CodeMethodNotAllowed},
		{"get cancel", http.MethodGet, "/v1/jobs/job-000001/cancel", "kadmin", "", 405, CodeMethodNotAllowed},
		{"post events", http.MethodPost, "/v1/jobs/job-000001/events", "kadmin", "", 405, CodeMethodNotAllowed},
		{"post healthz", http.MethodPost, "/v1/healthz", "", "", 405, CodeMethodNotAllowed},
		{"post readyz", http.MethodPost, "/v1/readyz", "", "", 405, CodeMethodNotAllowed},
		{"post metrics", http.MethodPost, "/v1/metrics", "kadmin", "", 405, CodeMethodNotAllowed},
		{"delete cluster result", http.MethodDelete, "/v1/cluster/result/abc", "kadmin", "", 405, CodeMethodNotAllowed},
		{"get cluster compute", http.MethodGet, "/v1/cluster/compute", "kadmin", "", 405, CodeMethodNotAllowed},
		// Bad bodies → 400 invalid_request.
		{"garbage submit", http.MethodPost, "/v1/jobs", "ka", "{", 400, CodeInvalidRequest},
		{"empty spec", http.MethodPost, "/v1/jobs", "ka", `{"kind":"synth"}`, 400, CodeInvalidRequest},
		{"bad kind", http.MethodPost, "/v1/jobs", "ka", `{"kind":"wat","spec":{}}`, 400, CodeInvalidRequest},
		{"bad priority", http.MethodPost, "/v1/jobs", "ka", string(synthEnvelopeWithPriority(t, "urgent")), 400, CodeInvalidRequest},
		{"garbage compute", http.MethodPost, "/v1/cluster/compute", "kadmin", "{", 400, CodeInvalidRequest},
		// Missing or wrong credentials.
		{"no key submit", http.MethodPost, "/v1/jobs", "", `{}`, 401, CodeUnauthorized},
		{"no key list", http.MethodGet, "/v1/jobs", "", "", 401, CodeUnauthorized},
		{"no key get", http.MethodGet, "/v1/jobs/job-000001", "", "", 401, CodeUnauthorized},
		{"no key events", http.MethodGet, "/v1/jobs/job-000001/events", "", "", 401, CodeUnauthorized},
		{"no key tln", http.MethodGet, "/v1/jobs/job-000001/tln", "", "", 401, CodeUnauthorized},
		{"no key cancel", http.MethodPost, "/v1/jobs/job-000001/cancel", "", "", 401, CodeUnauthorized},
		{"no key metrics", http.MethodGet, "/v1/metrics", "", "", 401, CodeUnauthorized},
		{"no key cluster", http.MethodPost, "/v1/cluster/compute", "", "{}", 401, CodeUnauthorized},
		{"wrong key", http.MethodGet, "/v1/jobs", "nope", "", 403, CodeForbidden},
		{"tenant key on cluster", http.MethodPost, "/v1/cluster/compute", "ka", "{}", 403, CodeForbidden},
		// Unknown routes → 404 envelope.
		{"pre-v1 synth", http.MethodPost, "/synth", "ka", "{}", 404, CodeNotFound},
		{"unknown job", http.MethodGet, "/v1/jobs/job-999999", "ka", "", 404, CodeNotFound},
		// Malformed filters.
		{"empty tenant filter", http.MethodGet, "/v1/jobs?tenant=", "kadmin", "", 400, CodeInvalidRequest},
		{"empty state filter", http.MethodGet, "/v1/jobs?state=", "kadmin", "", 400, CodeInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := httpDo(t, srv, tc.method, tc.path, tc.key, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("%s %s: status %d, want %d\n%s", tc.method, tc.path, resp.StatusCode, tc.wantStatus, body)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type = %q, want application/json", ct)
			}
			wantEnvelope(t, body, tc.wantCode)
		})
	}

	// Probe routes stay open without credentials.
	for _, path := range []string{"/v1/healthz", "/v1/readyz"} {
		resp, body := httpDo(t, srv, http.MethodGet, path, "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s without key: status %d\n%s", path, resp.StatusCode, body)
		}
	}
}

func synthEnvelopeWithPriority(t *testing.T, priority string) []byte {
	t.Helper()
	return synthEnvelope(t, priority)
}

// TestTenantScopingAndListFilter covers job visibility: tenant keys see
// only their own jobs (foreign IDs answer 404, list auto-scopes), the
// admin key sees everything and can filter with ?tenant=.
func TestTenantScopingAndListFilter(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2, Auth: testAuth(t)})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	alice := &Client{BaseURL: srv.URL, APIKey: "ka"}
	bob := &Client{BaseURL: srv.URL, APIKey: "kb"}
	admin := &Client{BaseURL: srv.URL, APIKey: "kadmin"}
	ctx := context.Background()

	ajob, err := alice.SubmitSynth(ctx, SynthSpec{BLIF: testBlif})
	if err != nil {
		t.Fatal(err)
	}
	if ajob.Tenant != "alice" {
		t.Fatalf("tenant = %q, want alice", ajob.Tenant)
	}
	bjob, err := bob.SubmitSynth(ctx, SynthSpec{BLIF: testBlif, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.WaitDone(ctx, ajob.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.WaitDone(ctx, bjob.ID); err != nil {
		t.Fatal(err)
	}

	// Foreign job IDs answer exactly like unknown ones.
	if _, err := bob.Job(ctx, ajob.ID); err == nil {
		t.Fatal("bob read alice's job")
	} else {
		var se *StatusError
		if !errors.As(err, &se) || se.StatusCode != http.StatusNotFound {
			t.Fatalf("cross-tenant get: %v, want 404", err)
		}
	}
	if _, err := bob.TLN(ctx, ajob.ID); err == nil {
		t.Fatal("bob fetched alice's netlist")
	}
	if err := bob.Cancel(ctx, ajob.ID); err == nil {
		t.Fatal("bob cancelled alice's job")
	}
	// The admin key sees it.
	if _, err := admin.Job(ctx, ajob.ID); err != nil {
		t.Fatalf("admin get: %v", err)
	}

	// Tenant keys are auto-scoped on list.
	al, err := alice.ListJobs(ctx, JobFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if al.Total != 1 || len(al.Jobs) != 1 || al.Jobs[0].ID != ajob.ID {
		t.Fatalf("alice list = %+v, want only her job", al)
	}
	// Naming another tenant is forbidden for non-admins.
	if _, err := bob.ListJobs(ctx, JobFilter{Tenant: "alice"}); !IsForbidden(err) {
		t.Fatalf("bob ?tenant=alice: %v, want forbidden", err)
	}
	// Naming yourself is allowed.
	if bl, err := bob.ListJobs(ctx, JobFilter{Tenant: "bob"}); err != nil || bl.Total != 1 {
		t.Fatalf("bob ?tenant=bob: %v %+v", err, bl)
	}
	// Admin sees all and filters.
	all, err := admin.ListJobs(ctx, JobFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if all.Total != 2 {
		t.Fatalf("admin total = %d, want 2", all.Total)
	}
	fl, err := admin.ListJobs(ctx, JobFilter{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if fl.Total != 1 || fl.Jobs[0].ID != ajob.ID {
		t.Fatalf("admin ?tenant=alice = %+v", fl)
	}
}

// TestPriorityValidatedAndRecorded pins the priority knob: unknown
// values are rejected at submit, valid ones ride on the job snapshot.
func TestPriorityValidatedAndRecorded(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	req := testRequest()
	req.Priority = "urgent"
	if _, err := m.Submit(req); err == nil {
		t.Fatal("unknown priority accepted")
	}
	req.Priority = PriorityHigh
	job, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if job.Priority != PriorityHigh {
		t.Fatalf("priority = %q, want high", job.Priority)
	}
	// Default is normal.
	job2, err := m.Submit(Request{BLIF: testBlif, Options: testRequest().Options})
	if err != nil {
		t.Fatal(err)
	}
	if job2.Priority != PriorityNormal {
		t.Fatalf("default priority = %q, want normal", job2.Priority)
	}
}

// TestPriorityOrdersWithinTenant proves the lanes: with a single busy
// worker, a high-priority job submitted last dispatches before the
// normal-priority backlog queued ahead of it.
func TestPriorityOrdersWithinTenant(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 64, ExecDelay: 30 * time.Millisecond})
	// Occupy the worker.
	first, err := m.Submit(reqWithSeed(100))
	if err != nil {
		t.Fatal(err)
	}
	var normals []string
	for i := 0; i < 3; i++ {
		j, err := m.Submit(reqWithSeed(int64(200 + i)))
		if err != nil {
			t.Fatal(err)
		}
		normals = append(normals, j.ID)
	}
	hi := reqWithSeed(300)
	hi.Priority = PriorityHigh
	hjob, err := m.Submit(hi)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := m.Wait(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
	hdone, err := m.Wait(ctx, hjob.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range normals {
		ndone, err := m.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !hdone.Started.Before(ndone.Started) {
			t.Fatalf("high-priority job started %v, after normal job %s at %v",
				hdone.Started, id, ndone.Started)
		}
	}
}

func reqWithSeed(seed int64) Request {
	req := testRequest()
	req.Options.Seed = seed
	return req
}

// TestQuotaRejectsWithRetryAfter is the admission-quota round trip: a
// tenant over its outstanding-job cap gets 429 quota_exceeded with a
// Retry-After header while another tenant keeps submitting, and the
// quota frees as jobs finish.
func TestQuotaRejectsWithRetryAfter(t *testing.T) {
	auth := testAuth(t,
		TenantConfig{Name: "alice", Key: "ka", MaxJobs: 2},
		TenantConfig{Name: "bob", Key: "kb"},
	)
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 64, Auth: auth, ExecDelay: 50 * time.Millisecond})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	alice := &Client{BaseURL: srv.URL, APIKey: "ka"}
	bob := &Client{BaseURL: srv.URL, APIKey: "kb"}
	ctx := context.Background()

	var ids []string
	for i := 0; i < 2; i++ {
		j, err := alice.SubmitSynth(ctx, SynthSpec{BLIF: testBlif, Seed: int64(10 + i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	_, err := alice.SubmitSynth(ctx, SynthSpec{BLIF: testBlif, Seed: 99})
	if !IsQuotaExceeded(err) {
		t.Fatalf("third submit: %v, want quota_exceeded", err)
	}
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("no StatusError in %v", err)
	}
	if se.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", se.StatusCode)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", se.RetryAfter)
	}
	if !errors.Is(se, &StatusError{Code: CodeQuotaExceeded}) {
		t.Fatal("errors.Is on the code template failed")
	}

	// The other tenant is unaffected.
	bj, err := bob.SubmitSynth(ctx, SynthSpec{BLIF: testBlif, Seed: 50})
	if err != nil {
		t.Fatalf("bob blocked by alice's quota: %v", err)
	}

	// The quota frees as alice's jobs finish.
	for _, id := range ids {
		if _, err := alice.WaitDone(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := alice.SubmitSynth(ctx, SynthSpec{BLIF: testBlif, Seed: 99}); err != nil {
		t.Fatalf("submit after quota freed: %v", err)
	}
	if _, err := bob.WaitDone(ctx, bj.ID); err != nil {
		t.Fatal(err)
	}

	snap := m.MetricsSnapshot()
	if snap["tenant_alice_quota_rejections"] < 1 {
		t.Fatalf("tenant_alice_quota_rejections = %d, want >= 1", snap["tenant_alice_quota_rejections"])
	}
}

// waitP95 returns the p95 queue wait (started - created) of the jobs.
func waitP95(t *testing.T, jobs []Job) time.Duration {
	t.Helper()
	waits := make([]time.Duration, 0, len(jobs))
	for _, j := range jobs {
		if j.Started.IsZero() {
			t.Fatalf("job %s never started", j.ID)
		}
		waits = append(waits, j.Started.Sub(j.Created))
	}
	sort.Slice(waits, func(i, k int) bool { return waits[i] < waits[k] })
	return waits[(len(waits)*95)/100]
}

// runStarvationRound floods the manager with heavy's backlog, then
// submits light's small batch, waits for light's jobs, and returns their
// p95 queue wait.
func runStarvationRound(t *testing.T, m *Manager, heavyJobs, lightJobs int) time.Duration {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	heavy := Caller{Tenant: "heavy"}
	light := Caller{Tenant: "light"}
	for i := 0; i < heavyJobs; i++ {
		if _, err := m.SubmitAs(heavy, reqWithSeed(int64(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	var ids []string
	for i := 0; i < lightJobs; i++ {
		j, err := m.SubmitAs(light, reqWithSeed(int64(5000+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	var done []Job
	for _, id := range ids {
		j, err := m.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State != StateDone {
			t.Fatalf("light job %s ended %s (%s)", id, j.State, j.Error)
		}
		done = append(done, j)
	}
	return waitP95(t, done)
}

// TestWeightedFairPreventsStarvation is the acceptance scenario: tenant
// "heavy" floods the queue, tenant "light" submits a small batch after
// it. Under weighted-fair admission light's p95 queue wait stays within
// 5× its solo run (with a floor absorbing scheduler noise); under the
// FIFO baseline the same batch waits behind the whole flood, growing
// with the backlog — demonstrably worse than fair.
func TestWeightedFairPreventsStarvation(t *testing.T) {
	if testing.Short() {
		t.Skip("starvation scenario is timing-sensitive")
	}
	const (
		delay = 5 * time.Millisecond
		heavy = 200
		light = 10
		floor = 150 * time.Millisecond
	)
	base := Config{Workers: 2, QueueDepth: heavy + light + 8, ExecDelay: delay}

	solo := newTestManager(t, base)
	soloP95 := runStarvationRound(t, solo, 0, light)
	solo.Close()

	fairCfg := base
	fairCfg.Admission = AdmissionFair
	fair := newTestManager(t, fairCfg)
	fairP95 := runStarvationRound(t, fair, heavy, light)
	fair.Close()

	fifoCfg := base
	fifoCfg.Admission = AdmissionFIFO
	fifo := newTestManager(t, fifoCfg)
	fifoP95 := runStarvationRound(t, fifo, heavy, light)
	fifo.Close()

	bound := 5 * soloP95
	if bound < 5*floor {
		bound = 5 * floor
	}
	t.Logf("light p95 wait: solo %v, fair %v, fifo %v (fair bound %v)", soloP95, fairP95, fifoP95, bound)
	if fairP95 > bound {
		t.Fatalf("fair p95 %v exceeds bound %v (solo %v)", fairP95, bound, soloP95)
	}
	if fifoP95 <= fairP95 {
		t.Fatalf("fifo p95 %v not worse than fair %v — baseline should starve", fifoP95, fairP95)
	}
}

// TestRestartPreservesTenantOwnershipAndQuota replays a journaled
// backlog across a restart: the recovered job keeps its owning tenant,
// and its quota slot is re-registered so the tenant can't over-submit
// around a restart.
func TestRestartPreservesTenantOwnershipAndQuota(t *testing.T) {
	dir := t.TempDir()
	auth := testAuth(t, TenantConfig{Name: "alice", Key: "ka", MaxJobs: 1})
	st := openTestStore(t, dir)
	m := New(Config{Workers: 1, Store: st, Auth: auth, ExecDelay: 30 * time.Second})
	job, err := m.SubmitAs(Caller{Tenant: "alice"}, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if job.Tenant != "alice" {
		t.Fatalf("tenant = %q", job.Tenant)
	}
	// Close mid-run: the drain journals the job as interrupted.
	m.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	m2 := New(Config{Workers: 1, Store: st2, Auth: auth})
	t.Cleanup(m2.Close)
	back, ok := m2.Get(job.ID)
	if !ok {
		t.Fatalf("job %s lost across restart", job.ID)
	}
	if back.Tenant != "alice" {
		t.Fatalf("replayed tenant = %q, want alice", back.Tenant)
	}
	// The replayed job occupies alice's single quota slot immediately.
	if _, err := m2.SubmitAs(Caller{Tenant: "alice"}, reqWithSeed(77)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("submit over replayed backlog: %v, want quota exceeded", err)
	}
	// Once the recovered job finishes, the slot frees.
	done, err := m2.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("recovered job ended %s (%s)", done.State, done.Error)
	}
	if _, err := m2.SubmitAs(Caller{Tenant: "alice"}, reqWithSeed(77)); err != nil {
		t.Fatalf("submit after recovery drained: %v", err)
	}
}

// TestPreTenantJournalReplaysAsDefault pins the schema-v1 compatibility
// contract: journal records written before events carried tenancy have
// no tenant field and must replay under the default tenant — changing
// this would silently re-own old backlogs.
func TestPreTenantJournalReplaysAsDefault(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	req := testRequest()
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := Digest(req)
	if err != nil {
		t.Fatal(err)
	}
	// A hand-written pre-tenancy submitted event: no Tenant, no Priority.
	if err := st.Append(store.Event{
		Type:    store.EventSubmitted,
		JobID:   "job-000042",
		Kind:    "synth",
		Digest:  digest,
		Request: raw,
		Unix:    time.Now().UnixNano(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	m := New(Config{Workers: 1, Store: st2})
	t.Cleanup(m.Close)
	back, ok := m.Get("job-000042")
	if !ok {
		t.Fatal("pre-tenant job not replayed")
	}
	if back.Tenant != DefaultTenant {
		t.Fatalf("replayed tenant = %q, want %q", back.Tenant, DefaultTenant)
	}
	done, err := m.Wait(context.Background(), "job-000042")
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("replayed job ended %s (%s)", done.State, done.Error)
	}
}

// TestMetricsExposeTenantGauges pins the per-tenant metrics surface.
func TestMetricsExposeTenantGauges(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	job, err := m.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), job.ID); err != nil {
		t.Fatal(err)
	}
	snap := m.MetricsSnapshot()
	if snap["tenant_default_dispatched"] < 1 {
		t.Fatalf("tenant_default_dispatched = %d, want >= 1", snap["tenant_default_dispatched"])
	}
	if _, ok := snap["tenant_default_outstanding"]; !ok {
		t.Fatal("tenant_default_outstanding missing")
	}
}

// TestClusterPropagatesTenantOnFanOut boots an authenticated 3-peer
// ring and fans a sweep out as tenant "alice": the X-Tels-Tenant header
// on /v1/cluster/compute must carry ownership to remote peers, so their
// per-tenant accounting records alice — not default — as the tenant the
// forwarded points ran for, keeping quota and fairness bookkeeping
// coherent across the fleet.
func TestClusterPropagatesTenantOnFanOut(t *testing.T) {
	const clusterKey = "ck-fleet"
	mkAuth := func() *Auth {
		a := testAuth(t,
			TenantConfig{Name: "alice", Key: "ka", MaxJobs: 8},
			TenantConfig{Name: "ops", Key: "kadmin", Admin: true},
		)
		a.ClusterKey = clusterKey
		return a
	}
	nodes := startFleet(t, 3, cluster.Config{AuthToken: clusterKey}, func(i int, c *Config) {
		c.Auth = mkAuth()
	}, nil)

	job, err := nodes[0].m.SubmitAs(Caller{Tenant: "alice"}, clusterSweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	if job.Tenant != "alice" {
		t.Fatalf("tenant = %q", job.Tenant)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done, err := nodes[0].m.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("sweep ended %s (%s)", done.State, done.Error)
	}
	if done.Progress == nil || done.Progress.DonePoints != len(clusterSweepRequest().Sweep.Vs) {
		t.Fatalf("incomplete sweep: %+v", done.Progress)
	}

	// At least one non-submitting peer must have dispatched work under
	// alice's name — that's the header doing its job.
	var remote int64
	for _, n := range nodes[1:] {
		remote += n.m.MetricsSnapshot()["tenant_alice_dispatched"]
	}
	if remote == 0 {
		t.Fatal("no remote peer recorded alice dispatches; tenant header not propagated")
	}
	// And nothing should have leaked into the default tenant's ledger on
	// those peers beyond what they dispatched for themselves (none here).
	for i, n := range nodes[1:] {
		if d := n.m.MetricsSnapshot()["tenant_default_dispatched"]; d != 0 {
			t.Fatalf("peer %d dispatched %d jobs as default; forwarded work lost its tenant", i+1, d)
		}
	}
}

// TestOverloadedCarriesRetryAfter pins the 503 contract: a full queue
// answers overloaded with a Retry-After hint.
func TestOverloadedCarriesRetryAfter(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 1, ExecDelay: 300 * time.Millisecond})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	// Fill the worker and the 1-deep queue, then overflow.
	var err error
	for i := 0; i < 8; i++ {
		_, err = c.SubmitSynth(ctx, SynthSpec{BLIF: testBlif, Seed: int64(400 + i)})
		if err != nil {
			break
		}
	}
	if !IsOverloaded(err) {
		t.Fatalf("overflow submit: %v, want overloaded", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.RetryAfter <= 0 {
		t.Fatalf("503 without Retry-After: %v", err)
	}
}

