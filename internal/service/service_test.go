package service

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const testBlif = `.model small
.inputs a b c
.outputs f
.names a b x
11 1
.names x c f
1- 1
-1 1
.end
`

func testRequest() Request {
	return Request{BLIF: testBlif}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m := New(cfg)
	t.Cleanup(m.Close)
	return m
}

func TestSubmitRunsFlow(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	job, err := m.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateQueued {
		t.Fatalf("state = %s, want queued", job.State)
	}
	done, err := m.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("state = %s (%s), want done", done.State, done.Error)
	}
	if done.Result == nil || !strings.Contains(done.Result.TLN, ".tnet small") {
		t.Fatalf("bad result: %+v", done.Result)
	}
	if done.Result.Verified != "proved" && done.Result.Verified != "simulated" {
		t.Fatalf("verified = %q", done.Result.Verified)
	}
	if done.Result.CacheHit {
		t.Fatal("first run must not be a cache hit")
	}
}

func TestSubmitRejectsBadRequests(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	cases := []Request{
		{},                              // empty BLIF
		{BLIF: testBlif, Script: "wat"}, // unknown script
		{BLIF: testBlif, Mapper: "wat"}, // unknown mapper
		{BLIF: ".model m\n.inputs a\n.outputs y\n.names a b y\n11 1\n.end"}, // undefined signal
	}
	for i, req := range cases {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestConcurrentSubmissionsCoalesce is the acceptance test: N concurrent
// submissions of the same request produce identical .tln output with
// exactly one cache miss and N−1 hits; only one pipeline run executes.
func TestConcurrentSubmissionsCoalesce(t *testing.T) {
	const n = 8
	m := newTestManager(t, Config{Workers: 4, QueueDepth: n})

	var wg sync.WaitGroup
	ids := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, err := m.Submit(testRequest())
			ids[i], errs[i] = job.ID, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	var tlns []string
	for _, id := range ids {
		job, err := m.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if job.State != StateDone {
			t.Fatalf("job %s: state %s (%s)", id, job.State, job.Error)
		}
		tlns = append(tlns, job.Result.TLN)
	}
	for i := 1; i < n; i++ {
		if tlns[i] != tlns[0] {
			t.Fatalf("job %d produced different TLN:\n%s\nvs\n%s", i, tlns[i], tlns[0])
		}
	}

	snap := m.MetricsSnapshot()
	if snap["cache_misses"] != 1 {
		t.Errorf("cache_misses = %d, want 1", snap["cache_misses"])
	}
	if snap["cache_hits"] != n-1 {
		t.Errorf("cache_hits = %d, want %d", snap["cache_hits"], n-1)
	}
	if snap["jobs_executed"] != 1 {
		t.Errorf("jobs_executed = %d, want 1", snap["jobs_executed"])
	}
	if snap["jobs_done"] != n {
		t.Errorf("jobs_done = %d, want %d", snap["jobs_done"], n)
	}
}

// TestCancelReleasesWorkerSlot wedges the single worker on a stuck job,
// cancels it, and proves the slot is released by running a second job to
// completion.
func TestCancelReleasesWorkerSlot(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 4})
	started := make(chan struct{})
	real := m.exec
	m.exec = func(ctx context.Context, req Request) (Result, error) {
		if strings.Contains(req.BLIF, "stuck") {
			close(started)
			<-ctx.Done() // model a pipeline that never finishes on its own
			return Result{}, ctx.Err()
		}
		return real(ctx, req)
	}

	stuckReq := testRequest()
	stuckReq.BLIF = strings.Replace(stuckReq.BLIF, ".model small", ".model stuck", 1)
	stuck, err := m.Submit(stuckReq)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker is now wedged inside the stuck job

	if !m.Cancel(stuck.ID) {
		t.Fatal("cancel reported no effect")
	}
	job, err := m.Wait(context.Background(), stuck.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", job.State)
	}

	// The only worker must be free again: a normal job completes.
	next, err := m.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := m.Wait(ctx, next.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("follow-up job state = %s (%s), want done", done.State, done.Error)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 4})
	started := make(chan struct{})
	var once sync.Once
	m.exec = func(ctx context.Context, req Request) (Result, error) {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return Result{}, ctx.Err()
	}
	first, err := m.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// Use a different circuit so the queued job doesn't coalesce.
	queuedReq := testRequest()
	queuedReq.Options.Fanin = 4
	queued, err := m.Submit(queuedReq)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(queued.ID) {
		t.Fatal("cancel of queued job reported no effect")
	}
	job, _ := m.Get(queued.ID)
	if job.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", job.State)
	}
	m.Cancel(first.ID)
}

func TestJobTimeout(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	m.exec = func(ctx context.Context, req Request) (Result, error) {
		<-ctx.Done()
		return Result{}, ctx.Err()
	}
	req := testRequest()
	req.Timeout = 20 * time.Millisecond
	job, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	done, err := m.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateFailed || !strings.Contains(done.Error, "timed out") {
		t.Fatalf("state = %s (%q), want failed/timed out", done.State, done.Error)
	}
}

func TestDigestCanonicalization(t *testing.T) {
	base := testRequest()
	if err := base.Normalize(); err != nil {
		t.Fatal(err)
	}
	d1, err := Digest(base)
	if err != nil {
		t.Fatal(err)
	}

	// Comments and whitespace don't change the address.
	noisy := base
	noisy.BLIF = "# a comment\n" + strings.ReplaceAll(testBlif, ".inputs a b c", ".inputs  a  b  c")
	d2, err := Digest(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("whitespace/comment variants should share a digest")
	}

	// Any synthesis knob does.
	bumped := base
	bumped.Options.Fanin = 4
	d3, err := Digest(bumped)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d3 {
		t.Error("different fanin must change the digest")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", Result{TLN: "a"})
	c.Put("b", Result{TLN: "b"})
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	if evicted := c.Put("c", Result{TLN: "c"}); evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

// TestHTTPEndToEnd drives the full HTTP surface with the client: submit →
// poll → fetch .tln, then a second identical submission that must be a
// cache hit, visible in /metrics.
func TestHTTPEndToEnd(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, PollInterval: 5 * time.Millisecond}
	ctx := context.Background()

	job, err := c.SubmitSynth(ctx, SynthSpec{BLIF: testBlif})
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.WaitDone(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("state = %s (%s)", done.State, done.Error)
	}
	tln, err := c.TLN(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tln, ".tnet small") {
		t.Fatalf("tln:\n%s", tln)
	}

	again, err := c.SubmitSynth(ctx, SynthSpec{BLIF: testBlif})
	if err != nil {
		t.Fatal(err)
	}
	done2, err := c.WaitDone(ctx, again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done2.State != StateDone || done2.Result == nil || !done2.Result.CacheHit {
		t.Fatalf("second run should be a cache hit: %+v", done2)
	}
	if done2.Result.TLN != tln {
		t.Fatal("cache returned a different network")
	}

	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap["cache_hits"] != 1 || snap["cache_misses"] != 1 {
		t.Fatalf("metrics hits/misses = %d/%d, want 1/1", snap["cache_hits"], snap["cache_misses"])
	}
	if snap["jobs_done"] != 2 {
		t.Fatalf("jobs_done = %d, want 2", snap["jobs_done"])
	}
}

func TestHTTPErrors(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	if _, err := c.SubmitSynth(ctx, SynthSpec{}); err == nil {
		t.Error("empty submission accepted")
	}
	if _, err := c.Job(ctx, "job-999999"); err == nil {
		t.Error("unknown job returned no error")
	}
	if _, err := c.TLN(ctx, "job-999999"); err == nil {
		t.Error("unknown tln returned no error")
	}

	// .tln of an unfinished job is a conflict, not a success.
	started := make(chan struct{})
	m.exec = func(ctx context.Context, req Request) (Result, error) {
		close(started)
		<-ctx.Done()
		return Result{}, ctx.Err()
	}
	job, err := c.SubmitSynth(ctx, SynthSpec{BLIF: testBlif})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := c.TLN(ctx, job.ID); err == nil {
		t.Error("tln of a running job should fail")
	}
	if err := c.Cancel(ctx, job.ID); err != nil {
		t.Errorf("cancel: %v", err)
	}
}

func TestManagerCloseRejectsSubmit(t *testing.T) {
	m := New(Config{Workers: 1})
	m.Close()
	if _, err := m.Submit(testRequest()); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	m.Close() // idempotent
}

// TestYieldJob runs a kind "yield" job end to end: the result carries a
// deterministic yield report, the analyze stage is timed, and an
// identical resubmission is served from the cache with the same report.
func TestYieldJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	req := Request{
		BLIF:  testBlif,
		Kind:  "yield",
		Yield: YieldSpec{Model: "weight", V: 2.0, MaxTrials: 200, Seed: 3},
	}
	job, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	done, err := m.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("state = %s (%s)", done.State, done.Error)
	}
	rep := done.Result.Yield
	if rep == nil || rep.Trials == 0 || rep.Vectors != 8 {
		t.Fatalf("bad yield report: %+v", rep)
	}
	if done.Result.Stages.Analyze <= 0 {
		t.Fatalf("analyze stage not timed: %+v", done.Result.Stages)
	}

	again, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	done2, err := m.Wait(context.Background(), again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !done2.Result.CacheHit {
		t.Fatal("identical yield job should be a cache hit")
	}
	r2 := done2.Result.Yield
	if r2.Trials != rep.Trials || r2.Failures != rep.Failures || r2.FailureRate != rep.FailureRate {
		t.Fatalf("cached report differs: %+v vs %+v", r2, rep)
	}
}

// TestYieldRequestValidation rejects unknown kinds and defect models and
// keeps yield knobs out of plain synthesis digests.
func TestYieldRequestValidation(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	bad := []Request{
		{BLIF: testBlif, Kind: "wat"},
		{BLIF: testBlif, Kind: "yield", Yield: YieldSpec{Model: "cosmic-ray"}},
		{BLIF: testBlif, Kind: "yield", Yield: YieldSpec{MaxTrials: -1}},
	}
	for i, req := range bad {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}

	synth := testRequest()
	if err := synth.Normalize(); err != nil {
		t.Fatal(err)
	}
	yield := Request{BLIF: testBlif, Kind: "yield"}
	if err := yield.Normalize(); err != nil {
		t.Fatal(err)
	}
	ds, err := Digest(synth)
	if err != nil {
		t.Fatal(err)
	}
	dy, err := Digest(yield)
	if err != nil {
		t.Fatal(err)
	}
	if ds == dy {
		t.Fatal("yield job shares a digest with plain synthesis")
	}
	seeded := yield
	seeded.Yield.Seed = 99
	dseed, err := Digest(seeded)
	if err != nil {
		t.Fatal(err)
	}
	if dseed == dy {
		t.Fatal("yield seed must change the digest")
	}

	// The v1 wire form carries the yield block through to the typed
	// request.
	env := SubmitEnvelope{Kind: "yield", Spec: mustJSON(YieldJobSpec{
		SynthSpec: SynthSpec{BLIF: testBlif},
		Yield:     YieldSpec{Model: "drift", V: 1.5},
	})}
	req, err := env.Request()
	if err != nil {
		t.Fatal(err)
	}
	if req.Kind != "yield" || req.Yield.Model != "drift" || req.Yield.V != 1.5 {
		t.Fatalf("wire conversion dropped yield spec: %+v", req)
	}
}
