package service

import (
	"tels/internal/resyn"
)

// This file is the job-event broker behind GET /v1/jobs/{id}/events:
// per-job subscriber lists fed from the manager's state transitions.
// Everything — snapshot assembly, subscription registration, and event
// emission — happens under the manager's mutex, so a subscriber's
// snapshot plus its subsequent increments cover each progress step
// exactly once: a sweep point recorded before Subscribe is in the
// snapshot and never re-emitted; one recorded after is emitted and
// absent from the snapshot.

// Event kinds delivered on a job's event stream (the SSE "event:"
// field).
const (
	eventSnapshot = "snapshot" // first event: the full job state at subscribe time
	eventState    = "state"    // a lifecycle transition (queued → running)
	eventProgress = "progress" // one sweep point landed or one resyn iteration finished
	eventEnd      = "end"      // terminal state; the stream closes after it
)

// JobEvent is one entry on a job's event stream.
type JobEvent struct {
	// Seq numbers the job's events from 1 (the SSE id), snapshot
	// included; a reconnecting client can detect gaps.
	Seq int64 `json:"seq"`
	// Type is one of snapshot, state, progress, end.
	Type string `json:"type"`
	// Job is the full snapshot on snapshot/state/end events.
	Job *Job `json:"job,omitempty"`
	// Point is the grid point a sweep progress event delivers.
	Point *SweepPoint `json:"point,omitempty"`
	// Iteration is the loop round a resyn progress event delivers.
	Iteration *resyn.Iteration `json:"iteration,omitempty"`
	// Done and Total accompany progress events.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}

// subscriberBuf bounds one subscriber's event buffer. It covers the
// largest sweep (MaxSweepPoints progress events) plus lifecycle events
// with slack; a consumer that still falls behind is disconnected and
// falls back to polling rather than stalling the manager.
const subscriberBuf = MaxSweepPoints + 64

type subscriber struct {
	ch     chan JobEvent
	closed bool
}

// Subscribe attaches an event stream to a job. The first event on the
// channel is a snapshot of the job at subscription time; subsequent
// events are the increments after it. The channel is closed after the
// end event (immediately after the snapshot for already-terminal
// jobs). The returned cancel is idempotent and must be called when the
// consumer stops reading. ok=false means no such job.
func (m *Manager) Subscribe(id string) (<-chan JobEvent, func(), bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, okj := m.jobs[id]
	if !okj {
		return nil, nil, false
	}
	sub := &subscriber{ch: make(chan JobEvent, subscriberBuf)}
	snap := j.snapshotLocked()
	j.eventSeq++
	sub.ch <- JobEvent{Seq: j.eventSeq, Type: eventSnapshot, Job: &snap}
	if j.state.Terminal() {
		j.eventSeq++
		sub.ch <- JobEvent{Seq: j.eventSeq, Type: eventEnd, Job: &snap}
		close(sub.ch)
		sub.closed = true
		return sub.ch, func() {}, true
	}
	j.subs = append(j.subs, sub)
	cancel := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, s := range j.subs {
			if s == sub {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
		if !sub.closed {
			close(sub.ch)
			sub.closed = true
		}
	}
	return sub.ch, cancel, true
}

// emitLocked delivers one event to the job's subscribers. Callers hold
// m.mu. A subscriber whose buffer is full is dropped (channel closed):
// it can resynchronize by re-subscribing or polling, and the manager
// never blocks on a slow reader.
func (m *Manager) emitLocked(j *jobRecord, typ string, point *SweepPoint, iter *resyn.Iteration) {
	if len(j.subs) == 0 {
		return
	}
	j.eventSeq++
	ev := JobEvent{Seq: j.eventSeq, Type: typ, Point: point, Iteration: iter}
	switch typ {
	case eventState, eventEnd:
		snap := j.snapshotLocked()
		ev.Job = &snap
	case eventProgress:
		ev.Done, ev.Total = j.sweepDone, j.sweepTotal
		if iter != nil {
			ev.Done, ev.Total = len(j.resynIters), j.req.Resyn.MaxIters
		}
	}
	kept := j.subs[:0]
	for _, sub := range j.subs {
		select {
		case sub.ch <- ev:
			if typ == eventEnd {
				close(sub.ch)
				sub.closed = true
				continue
			}
			kept = append(kept, sub)
		default: // consumer fell behind; disconnect it
			close(sub.ch)
			sub.closed = true
		}
	}
	j.subs = kept
}

// emitEndLocked fires the terminal event and detaches every
// subscriber. Callers hold m.mu.
func (m *Manager) emitEndLocked(j *jobRecord) {
	m.emitLocked(j, eventEnd, nil, nil)
	j.subs = nil
}
