package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tels/internal/store"
)

func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

// TestRestartReServesFinishedResults is the durability round trip: a
// finished job survives a restart in the job table, and an identical
// new submission is served from the warmed cache without re-running the
// pipeline.
func TestRestartReServesFinishedResults(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	m := New(Config{Workers: 2, Store: st})
	job, err := m.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	done, err := m.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("state = %s (%s)", done.State, done.Error)
	}
	m.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	m2 := New(Config{Workers: 2, Store: st2})
	t.Cleanup(m2.Close)
	var execs atomic.Int64
	real := m2.exec
	m2.exec = func(ctx context.Context, req Request) (Result, error) {
		execs.Add(1)
		return real(ctx, req)
	}

	// The finished job is back in the table with its result and digest.
	back, ok := m2.Get(job.ID)
	if !ok {
		t.Fatalf("job %s lost across restart", job.ID)
	}
	if back.State != StateDone || back.Digest != done.Digest {
		t.Fatalf("replayed as %s digest %s, want done digest %s", back.State, back.Digest, done.Digest)
	}
	if back.Result == nil || back.Result.TLN != done.Result.TLN {
		t.Fatal("replayed job lost its result")
	}

	// An identical submission hits the warmed cache: no pipeline run.
	again, err := m2.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if again.ID == job.ID {
		t.Fatal("new submission reused a replayed job ID")
	}
	fin, err := m2.Wait(context.Background(), again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone || fin.Result == nil || !fin.Result.CacheHit {
		t.Fatalf("re-submission not served from disk: %+v", fin)
	}
	if fin.Digest != done.Digest {
		t.Fatalf("digest changed across restart: %s vs %s", fin.Digest, done.Digest)
	}
	if execs.Load() != 0 {
		t.Fatalf("pipeline ran %d times for a persisted result", execs.Load())
	}

	snap := m2.MetricsSnapshot()
	if snap["store_replayed_jobs"] == 0 || snap["store_warmed_results"] == 0 {
		t.Fatalf("store metrics missing recovery counts: %v", snap)
	}
}

// TestDrainInterruptsAndRequeues is the graceful-drain contract: jobs
// still queued or running when Close drains are journaled interrupted
// and re-enqueued — under their original IDs — on the next start.
func TestDrainInterruptsAndRequeues(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	m := New(Config{Workers: 1, QueueDepth: 4, Store: st})
	started := make(chan struct{}, 2)
	m.exec = func(ctx context.Context, req Request) (Result, error) {
		started <- struct{}{}
		<-ctx.Done() // a pipeline the drain must interrupt
		return Result{}, ctx.Err()
	}
	running, err := m.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queuedReq := testRequest()
	queuedReq.Options.DeltaOn = 1 // distinct digest, so it can't coalesce
	queued, err := m.Submit(queuedReq)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	var pending int
	for _, j := range st2.Recovered().Jobs {
		if j.Status == store.EventInterrupted {
			pending++
		}
	}
	if pending != 2 {
		t.Fatalf("journal holds %d interrupted jobs, want 2: %+v", pending, st2.Recovered().Jobs)
	}

	m2 := New(Config{Workers: 2, Store: st2})
	t.Cleanup(m2.Close)
	for _, id := range []string{running.ID, queued.ID} {
		fin, err := m2.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != StateDone {
			t.Fatalf("requeued job %s finished %s (%s)", id, fin.State, fin.Error)
		}
	}
}

// TestCrashRequeuesPendingJobs simulates a hard crash (no drain, no
// terminal events): a journal left with submitted/started jobs
// re-enqueues them on the next start with their digests intact.
func TestCrashRequeuesPendingJobs(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	m := New(Config{Workers: 1, Store: st})
	started := make(chan struct{})
	m.exec = func(ctx context.Context, req Request) (Result, error) {
		close(started)
		<-ctx.Done()
		return Result{}, ctx.Err()
	}
	job, err := m.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// Crash: the manager is abandoned mid-run — nothing terminal is
	// journaled. (Closed at cleanup only to reap its goroutines.)
	t.Cleanup(m.Close)
	t.Cleanup(func() { st.Close() })

	st2 := openTestStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	m2 := New(Config{Workers: 1, Store: st2})
	t.Cleanup(m2.Close)
	fin, err := m2.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("crashed job replayed to %s (%s)", fin.State, fin.Error)
	}
	if fin.Digest != job.Digest {
		t.Fatalf("digest changed across crash replay: %s vs %s", fin.Digest, job.Digest)
	}
}

// TestRestoreFinishedWithoutResultDoesNotDeadlock pins the
// queue-sizing contract: finished journal entries whose result file is
// missing (persistResult is best-effort, so a failed write still
// journals finished) are re-enqueued at restore and must count toward
// the backlog the queue is sized for. A backlog of them larger than
// QueueDepth used to block New's restore sends before any worker
// started, deadlocking startup.
func TestRestoreFinishedWithoutResultDoesNotDeadlock(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	const n = 8 // larger than the QueueDepth below
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		req := testRequest()
		req.Options.Seed = int64(i + 1) // distinct digests
		if err := req.Normalize(); err != nil {
			t.Fatal(err)
		}
		digest, err := Digest(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("job-%06d", i+1)
		ids = append(ids, id)
		for _, ev := range []store.Event{
			{Type: store.EventSubmitted, JobID: id, Kind: req.Kind, Digest: digest, Request: raw},
			{Type: store.EventStarted, JobID: id},
			// Finished, but no result file was ever persisted.
			{Type: store.EventFinished, JobID: id, Digest: digest},
		} {
			if err := st.Append(ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	created := make(chan *Manager, 1)
	go func() { created <- New(Config{Workers: 1, QueueDepth: 2, Store: st2}) }()
	var m2 *Manager
	select {
	case m2 = <-created:
	case <-time.After(10 * time.Second):
		t.Fatal("New deadlocked restoring a finished-without-result backlog")
	}
	t.Cleanup(m2.Close)
	for _, id := range ids {
		fin, err := m2.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != StateDone {
			t.Fatalf("job %s replayed to %s (%s)", id, fin.State, fin.Error)
		}
	}
}

// TestRestartReplaysFailedAndCancelled keeps terminal non-success
// states terminal across a restart instead of re-running them.
func TestRestartReplaysFailedAndCancelled(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	m := New(Config{Workers: 1, Store: st})
	blocked := make(chan struct{})
	m.exec = func(ctx context.Context, req Request) (Result, error) {
		if req.Options.DeltaOn == 1 {
			close(blocked)
			<-ctx.Done()
			return Result{}, ctx.Err()
		}
		return Result{}, fmt.Errorf("synthetic pipeline failure")
	}
	failReq := testRequest()
	failed, err := m.Submit(failReq)
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := m.Wait(context.Background(), failed.ID); err != nil || fin.State != StateFailed {
		t.Fatalf("setup: %v %+v", err, fin)
	}
	cancelReq := testRequest()
	cancelReq.Options.DeltaOn = 1
	cancelled, err := m.Submit(cancelReq)
	if err != nil {
		t.Fatal(err)
	}
	<-blocked
	m.Cancel(cancelled.ID)
	if fin, err := m.Wait(context.Background(), cancelled.ID); err != nil || fin.State != StateCancelled {
		t.Fatalf("setup: %v %+v", err, fin)
	}
	m.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	m2 := New(Config{Workers: 1, Store: st2})
	t.Cleanup(m2.Close)
	f, ok := m2.Get(failed.ID)
	if !ok || f.State != StateFailed || f.Error == "" {
		t.Fatalf("failed job replayed as %+v", f)
	}
	c, ok := m2.Get(cancelled.ID)
	if !ok || c.State != StateCancelled {
		t.Fatalf("cancelled job replayed as %+v", c)
	}
}

// TestRestartResumesSweep runs a sweep to completion, restarts, and
// checks the aggregate curve is re-served from disk; a fresh identical
// sweep after restart serves every point from the warmed cache.
func TestRestartResumesSweep(t *testing.T) {
	dir := t.TempDir()
	req := testRequest()
	req.Kind = "sweep"
	req.Yield = YieldSpec{Model: "weight", V: 0.8, MaxTrials: 50, Seed: 7}
	req.Sweep = SweepSpec{Vs: []float64{0.5, 1.0, 1.5}}

	st := openTestStore(t, dir)
	m := New(Config{Workers: 2, Store: st})
	job, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	done, err := m.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone || done.Result == nil || done.Result.Sweep == nil {
		t.Fatalf("sweep: %+v", done)
	}
	m.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	m2 := New(Config{Workers: 2, Store: st2})
	t.Cleanup(m2.Close)
	back, ok := m2.Get(job.ID)
	if !ok || back.State != StateDone || back.Result == nil || back.Result.Sweep == nil {
		t.Fatalf("sweep not re-served after restart: %+v", back)
	}
	if len(back.Result.Sweep.Points) != len(done.Result.Sweep.Points) {
		t.Fatal("sweep curve truncated across restart")
	}
	for i, p := range back.Result.Sweep.Points {
		if p.FailureRate != done.Result.Sweep.Points[i].FailureRate {
			t.Fatalf("point %d failure rate drifted across restart", i)
		}
	}

	// A new identical sweep must hit the warmed cache on every point.
	again, err := m2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := m2.Wait(context.Background(), again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("re-run sweep: %s (%s)", fin.State, fin.Error)
	}
	for _, p := range fin.Result.Sweep.Points {
		if !p.CacheHit {
			t.Fatalf("point v=%g recomputed despite persisted results", p.V)
		}
		want := done.Result.Sweep.Points[p.Index]
		if p.FailureRate != want.FailureRate {
			t.Fatalf("point v=%g failure rate %g != original %g", p.V, p.FailureRate, want.FailureRate)
		}
	}
}

// TestListFilters exercises the ?state=, ?kind=, and ?limit= query
// parameters of GET /v1/jobs.
func TestListFilters(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)

	var synthIDs []string
	for i := 0; i < 3; i++ {
		req := testRequest()
		req.Options.Seed = int64(i) // distinct digests
		job, err := m.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Wait(context.Background(), job.ID); err != nil {
			t.Fatal(err)
		}
		synthIDs = append(synthIDs, job.ID)
	}
	yreq := testRequest()
	yreq.Kind = "yield"
	yreq.Yield = YieldSpec{Model: "weight", V: 0.8, MaxTrials: 20}
	yjob, err := m.Submit(yreq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), yjob.ID); err != nil {
		t.Fatal(err)
	}

	get := func(query string) JobList {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs%s: status %d", query, resp.StatusCode)
		}
		var out JobList
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if all := get(""); len(all.Jobs) != 4 || all.Total != 4 {
		t.Fatalf("unfiltered list: %d jobs, total %d", len(all.Jobs), all.Total)
	}
	if byKind := get("?kind=yield"); len(byKind.Jobs) != 1 || byKind.Jobs[0].ID != yjob.ID {
		t.Fatalf("kind filter: %+v", byKind)
	}
	if byState := get("?state=done"); byState.Total != 4 {
		t.Fatalf("state filter: total %d, want 4", byState.Total)
	}
	limited := get("?kind=synth&limit=2")
	if len(limited.Jobs) != 2 || limited.Total != 3 {
		t.Fatalf("limit: %d jobs, total %d, want 2 of 3", len(limited.Jobs), limited.Total)
	}
	// limit keeps the newest matches.
	if limited.Jobs[0].ID != synthIDs[1] || limited.Jobs[1].ID != synthIDs[2] {
		t.Fatalf("limit kept %s,%s; want the newest two %s,%s",
			limited.Jobs[0].ID, limited.Jobs[1].ID, synthIDs[1], synthIDs[2])
	}
	if none := get("?state=failed"); len(none.Jobs) != 0 || none.Total != 0 {
		t.Fatalf("empty filter returned %+v", none)
	}

	for _, bad := range []string{"?state=bogus", "?kind=bogus", "?limit=-1", "?limit=x"} {
		resp, err := http.Get(srv.URL + "/v1/jobs" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/jobs%s: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// The typed client round-trips the same filters.
	c := &Client{BaseURL: srv.URL}
	got, err := c.ListJobs(context.Background(), JobFilter{Kind: "synth", State: StateDone, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 1 || got.Total != 3 || got.Jobs[0].ID != synthIDs[2] {
		t.Fatalf("client filter: %+v", got)
	}
}

// TestNoStoreUnchanged pins the no-store mode: no store_* metrics, no
// data written anywhere, digests as before.
func TestNoStoreUnchanged(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	job, err := m.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), job.ID); err != nil {
		t.Fatal(err)
	}
	snap := m.MetricsSnapshot()
	if _, ok := snap["store_journal_bytes"]; ok {
		t.Fatal("store metrics exposed without a store")
	}
}

// TestJournalProgressSurvives checks a sweep's progress counters land
// in the journal (operators can see how far a backlog got).
func TestJournalProgressSurvives(t *testing.T) {
	dir := t.TempDir()
	req := testRequest()
	req.Kind = "sweep"
	req.Yield = YieldSpec{Model: "weight", V: 0.8, MaxTrials: 30, Seed: 3}
	req.Sweep = SweepSpec{Vs: []float64{0.5, 1.0}}

	st := openTestStore(t, dir)
	m := New(Config{Workers: 2, Store: st})
	job, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := m.Wait(context.Background(), job.ID); err != nil || fin.State != StateDone {
		t.Fatalf("sweep: %v %+v", err, fin)
	}
	m.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	for _, j := range st2.Recovered().Jobs {
		if j.ID == job.ID {
			if j.Done != 2 || j.Total != 2 {
				t.Fatalf("journal progress %d/%d, want 2/2", j.Done, j.Total)
			}
			return
		}
	}
	t.Fatalf("sweep job missing from journal")
}

// Replays must finish fast enough to be usable at startup; this is a
// sanity bound, not a benchmark (the real numbers live in telsbench
// store).
func TestRecoveryElapsedRecorded(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	m := New(Config{Workers: 1, Store: st})
	job, err := m.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), job.ID); err != nil {
		t.Fatal(err)
	}
	m.Close()
	st.Close()

	st2 := openTestStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	m2 := New(Config{Workers: 1, Store: st2})
	t.Cleanup(m2.Close)
	snap := m2.MetricsSnapshot()
	if snap["store_recovery_ms"] < 0 || snap["store_recovery_ms"] > int64(10*time.Second/time.Millisecond) {
		t.Fatalf("implausible recovery time: %d ms", snap["store_recovery_ms"])
	}
	if snap["store_replayed_jobs"] != 1 {
		t.Fatalf("store_replayed_jobs = %d, want 1", snap["store_replayed_jobs"])
	}
}
