package service

import (
	"context"
	"testing"

	"tels/internal/core"
)

// A wider circuit than testBlif so the synthesis core runs a nontrivial
// number of threshold checks per job.
const solverTestBlif = `.model solvr
.inputs a b c d e
.outputs f g
.names a b c d x
1111 1
.names x e f
1- 1
-1 1
.names a c e g
110 1
011 1
101 1
.end
`

// TestSolverModeTransparent runs the same synthesis job through managers
// deployed at every solver mode: job digests and result bytes must be
// identical — the solver is a deployment latency knob, never request
// state — and the configured mode is visible only in the metrics.
func TestSolverModeTransparent(t *testing.T) {
	modes := []core.SolverMode{core.SolverILP, core.SolverPbsat, core.SolverPortfolio}
	var digests, tlns []string
	var areas []int
	for _, mode := range modes {
		m := newTestManager(t, Config{Workers: 2, Solver: mode})
		job, err := m.Submit(Request{BLIF: solverTestBlif})
		if err != nil {
			t.Fatalf("solver %s: %v", mode, err)
		}
		done, err := m.Wait(context.Background(), job.ID)
		if err != nil {
			t.Fatalf("solver %s: %v", mode, err)
		}
		if done.State != StateDone {
			t.Fatalf("solver %s: state %s (%s)", mode, done.State, done.Error)
		}
		digests = append(digests, done.Digest)
		tlns = append(tlns, done.Result.TLN)
		areas = append(areas, done.Result.Stats.Area)
		if got := m.MetricsSnapshot()["solver_mode"]; got != int64(mode) {
			t.Fatalf("solver %s: solver_mode metric = %d", mode, got)
		}
	}
	for i := 1; i < len(modes); i++ {
		if digests[i] != digests[0] {
			t.Fatalf("solver %s changed the job digest: %s vs %s", modes[i], digests[i], digests[0])
		}
		if tlns[i] != tlns[0] {
			t.Fatalf("solver %s changed the network:\n%s\nvs\n%s", modes[i], tlns[i], tlns[0])
		}
		if areas[i] != areas[0] {
			t.Fatalf("solver %s changed the area: %d vs %d", modes[i], areas[i], areas[0])
		}
	}
}

// TestSolverMetricsExported checks that the portfolio race counters are
// surfaced through /v1/metrics' backing snapshot with their documented
// names.
func TestSolverMetricsExported(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, Solver: core.SolverPortfolio})
	job, err := m.Submit(Request{BLIF: solverTestBlif})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), job.ID); err != nil {
		t.Fatal(err)
	}
	snap := m.MetricsSnapshot()
	for _, key := range []string{
		"threshold_checks", "races", "ilp_wins", "pbsat_wins",
		"unsat_core_hits", "solver_budget_bailouts", "solver_mode",
	} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("metrics snapshot missing %q", key)
		}
	}
	if snap["threshold_checks"] == 0 {
		t.Fatal("threshold_checks did not advance across a synthesis job")
	}
}
