package service

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// sweepRequestWithDelay returns a 6-point sweep; paired with ExecDelay
// it runs long enough for a subscriber to attach mid-flight.
func sweepRequestWithDelay() Request {
	return clusterSweepRequest()
}

// TestSSEDeliversEveryIncrementExactlyOnce is the streaming acceptance
// check: watching a sweep over /v1/jobs/{id}/events must deliver each
// grid point exactly once — partitioned between the initial snapshot
// (points finished before the subscriber attached) and subsequent
// progress events — and the stream's final job must match the polled
// snapshot.
func TestSSEDeliversEveryIncrementExactlyOnce(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2, ExecDelay: 15 * time.Millisecond})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	req := sweepRequestWithDelay()
	job, err := c.SubmitSweep(ctx, SweepJobSpec{
		SynthSpec: SynthSpec{BLIF: req.BLIF},
		Yield:     req.Yield,
		Sweep:     req.Sweep,
	})
	if err != nil {
		t.Fatal(err)
	}
	grid := len(req.Sweep.Vs)

	seen := make(map[int]int) // grid index -> delivery count
	var sawEnd bool
	var lastSeq int64
	final, err := c.Watch(ctx, job.ID, func(ev JobEvent) {
		if ev.Seq <= lastSeq {
			t.Errorf("event seq went backwards: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case "snapshot":
			if ev.Job != nil && ev.Job.Progress != nil {
				for _, p := range ev.Job.Progress.Points {
					seen[p.Index]++
				}
			}
		case "progress":
			if ev.Point != nil {
				seen[ev.Point.Index]++
			}
			if ev.Total != grid {
				t.Errorf("progress total = %d, want %d", ev.Total, grid)
			}
		case "end":
			sawEnd = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("watched job ended %s (%s)", final.State, final.Error)
	}
	if !sawEnd {
		t.Fatal("stream closed without an end event")
	}
	for i := 0; i < grid; i++ {
		if seen[i] != 1 {
			t.Fatalf("grid point %d delivered %d times, want exactly once (seen: %v)", i, seen[i], seen)
		}
	}
	if len(seen) != grid {
		t.Fatalf("delivered %d distinct points, want %d", len(seen), grid)
	}

	// The stream's final snapshot agrees with a plain poll.
	polled, err := c.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if polled.State != final.State || polled.Progress == nil || final.Progress == nil ||
		len(polled.Progress.Points) != len(final.Progress.Points) {
		t.Fatalf("stream final %+v disagrees with polled %+v", final, polled)
	}
}

// TestSSETerminalJobReplaysSnapshotThenEnd pins the late-subscriber
// contract: watching an already-finished job yields its snapshot and an
// immediate end, never a hang.
func TestSSETerminalJobReplaysSnapshotThenEnd(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := c.SubmitSynth(ctx, SynthSpec{BLIF: testBlif})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitDone(ctx, job.ID); err != nil {
		t.Fatal(err)
	}

	var types []string
	final, err := c.Watch(ctx, job.ID, func(ev JobEvent) { types = append(types, ev.Type) })
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("final state %s", final.State)
	}
	if len(types) < 2 || types[0] != "snapshot" || types[len(types)-1] != "end" {
		t.Fatalf("terminal watch events = %v, want snapshot ... end", types)
	}
}

// TestSubscribeExactlyOnceUnderManager drives the subscription layer
// directly (no HTTP): every progress increment of a running sweep is
// observed exactly once across snapshot and events.
func TestSubscribeExactlyOnceUnderManager(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2, ExecDelay: 10 * time.Millisecond})
	req := sweepRequestWithDelay()
	job, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, ok := m.Subscribe(job.ID)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer cancel()
	seen := make(map[int]int)
	for ev := range ch {
		switch ev.Type {
		case "snapshot":
			if ev.Job != nil && ev.Job.Progress != nil {
				for _, p := range ev.Job.Progress.Points {
					seen[p.Index]++
				}
			}
		case "progress":
			if ev.Point != nil {
				seen[ev.Point.Index]++
			}
		}
	}
	grid := len(req.Sweep.Vs)
	for i := 0; i < grid; i++ {
		if seen[i] != 1 {
			t.Fatalf("point %d seen %d times (%v)", i, seen[i], seen)
		}
	}
}

// TestSubscribeUnknownJob pins the miss path.
func TestSubscribeUnknownJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	if _, _, ok := m.Subscribe("job-999999"); ok {
		t.Fatal("subscribed to a job that does not exist")
	}
}
