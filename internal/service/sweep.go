package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"tels/internal/blif"
	"tels/internal/core"
	"tels/internal/fsim"
)

// This file implements the "sweep" job kind: one submission that fans a
// grid of yield points across the worker pool.
//
// A sweep never occupies a worker itself. Its coordinator goroutine
// first obtains one synthesis prefix per distinct δon by running an
// internal synth job through the pool — content-addressed, so a prefix
// that was ever synthesized before (by a plain synth job, a yield job,
// or an earlier sweep) is a cache hit and a prefix shared by concurrent
// sweeps is coalesced into one run. It then builds one fsim.YieldSession
// per prefix (vector batch packed and golden reference simulated once)
// and fans the points into the queue as internal jobs, at most
// MaxInFlight outstanding at a time. Each point is cached under the
// digest of the equivalent standalone yield request, lands in the job's
// progress table as it completes, and is individually abandoned when the
// sweep is cancelled.

// synthRequest strips an analysis request (sweep or resyn) down to the
// synthesis prefix of one δon value.
func synthRequest(base Request, deltaOn int) Request {
	req := base
	req.Kind = "synth"
	req.Yield = YieldSpec{}
	req.Sweep = SweepSpec{}
	req.Resyn = ResynSpec{}
	req.Options.DeltaOn = deltaOn
	return req
}

// pointRequest is the standalone yield request equivalent to one grid
// point; its digest is the point's cache address.
func pointRequest(base Request, p SweepPoint) Request {
	req := base
	req.Kind = "yield"
	req.Sweep = SweepSpec{}
	req.Options.DeltaOn = p.DeltaOn
	req.Yield.Model = p.Model
	req.Yield.V = p.V
	return req
}

// submitInternal enqueues a coordinator sub-task. Unlike Submit it is
// exempt from the depth bound and quotas — the coordinator is paced by
// its in-flight budget, not by ErrQueueFull — but the record is
// scheduled under its tenant, so a sweep's fan-out competes fairly
// with other tenants' work. The record is invisible to the public job
// table.
func (m *Manager) submitInternal(ctx context.Context, id, tenant string, req Request, digest string, run func(context.Context, Request) (Result, error)) (*jobRecord, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	jctx, cancel := context.WithCancel(ctx)
	j := &jobRecord{
		id:       id,
		req:      req,
		digest:   digest,
		tenant:   tenant,
		state:    StateQueued,
		created:  time.Now(),
		internal: true,
		run:      run,
		ctx:      jctx,
		cancel:   cancel,
		done:     make(chan struct{}),
	}
	m.admit.enqueueInternal(j)
	return j, nil
}

// prefix is the per-δon shared state of a sweep: the synthesized
// network's result plus a yield session holding the packed batch and
// golden reference every point of that δon reuses.
type prefix struct {
	res  Result
	sess *fsim.YieldSession
}

// runSweep coordinates one sweep job from its own goroutine.
func (m *Manager) runSweep(j *jobRecord) {
	defer m.coordWg.Done()
	start := time.Now()

	m.mu.Lock()
	if j.state != StateQueued { // cancelled before the coordinator ran
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	timeout := j.req.Timeout
	if timeout <= 0 {
		timeout = m.cfg.DefaultTimeout
	}
	points := j.req.Sweep.points(j.req)
	j.sweepTotal = len(points)
	j.sweepPoints = make([]*SweepPoint, len(points))
	m.emitLocked(j, eventState, nil, nil)
	m.mu.Unlock()
	m.metrics.sweepPointsPlanned.Add(int64(len(points)))

	ctx, cancel := context.WithTimeout(j.ctx, timeout)
	defer cancel()

	prefixes, err := m.sweepPrefixes(ctx, j, points)
	if err != nil {
		m.finish(j, nil, err)
		return
	}

	// Clustered sweeps default their budget to the fleet's aggregate
	// worker count: most points run on other peers, so pacing by the
	// local pool alone would leave the fleet idle.
	budget := j.req.Sweep.MaxInFlight
	if budget <= 0 {
		budget = m.cfg.Workers
		if cl := m.cfg.Cluster; cl != nil {
			budget = m.cfg.Workers * cl.Size()
		}
	}
	sem := make(chan struct{}, budget)
	var wg sync.WaitGroup
fan:
	for i := range points {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break fan
		}
		p := points[i]
		preq := pointRequest(j.req, p)
		pdigest, derr := Digest(preq)
		if derr != nil { // unreachable: the sweep request already parsed
			<-sem
			m.finish(j, nil, derr)
			return
		}
		wg.Add(1)
		go func(p SweepPoint, preq Request, pdigest string) {
			defer wg.Done()
			defer func() { <-sem }()
			m.runPoint(ctx, j, prefixes[p.DeltaOn], p, preq, pdigest)
		}(p, preq, pdigest)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		m.finish(j, nil, err)
		return
	}

	m.mu.Lock()
	sr := &SweepResult{
		TotalPoints:  j.sweepTotal,
		DonePoints:   j.sweepDone,
		FailedPoints: j.sweepFailed,
		WallMS:       time.Since(start).Milliseconds(),
	}
	for _, sp := range j.sweepPoints {
		if sp != nil {
			sr.Points = append(sr.Points, *sp)
		}
	}
	m.mu.Unlock()
	res := Result{Sweep: sr}
	// Persist the aggregated curve under the sweep's own digest so a
	// restart re-serves the finished sweep from disk (the individual
	// points are already persisted under their standalone-yield
	// digests as they complete).
	m.persistResult(j.digest, res)
	m.finish(j, &res, nil)
}

// sweepPrefixes synthesizes (or cache-loads) one prefix per distinct δon
// in grid order and builds the shared yield session for each.
func (m *Manager) sweepPrefixes(ctx context.Context, j *jobRecord, points []SweepPoint) (map[int]*prefix, error) {
	golden, err := blif.ParseString(j.req.BLIF)
	if err != nil {
		return nil, fmt.Errorf("service: parse blif: %w", err)
	}
	prefixes := make(map[int]*prefix)
	for _, p := range points {
		if _, ok := prefixes[p.DeltaOn]; ok {
			continue
		}
		sreq := synthRequest(j.req, p.DeltaOn)
		sdigest, err := Digest(sreq)
		if err != nil {
			return nil, err
		}
		rec, err := m.submitInternal(ctx, fmt.Sprintf("%s.synth-don%d", j.id, p.DeltaOn), j.tenant, sreq, sdigest, nil)
		if err != nil {
			return nil, err
		}
		select {
		case <-rec.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		m.mu.Lock()
		res, rerr := rec.result, rec.err
		m.mu.Unlock()
		if rerr != nil {
			return nil, fmt.Errorf("service: sweep synthesis (δon=%d): %w", p.DeltaOn, rerr)
		}
		tn, err := core.ParseTLNString(res.TLN)
		if err != nil {
			return nil, fmt.Errorf("service: sweep synthesis (δon=%d): malformed tln: %w", p.DeltaOn, err)
		}
		sess, err := fsim.NewYieldSession(golden, tn, fsim.YieldConfig{Seed: j.req.Yield.Seed, Width: m.cfg.FsimWidth})
		if err != nil {
			return nil, fmt.Errorf("service: sweep session (δon=%d): %w", p.DeltaOn, err)
		}
		prefixes[p.DeltaOn] = &prefix{res: *res, sess: sess}
	}
	return prefixes, nil
}

// pointRunner returns the executor of one grid point: a Monte-Carlo
// estimate on the prefix's shared session. The returned Result has the
// exact shape of a standalone yield job with the same spec, so the two
// can share cache entries.
func (m *Manager) pointRunner(px *prefix, index int) func(context.Context, Request) (Result, error) {
	hook := m.sweepPointStart
	return func(ctx context.Context, req Request) (Result, error) {
		if hook != nil {
			hook(index)
		}
		model, err := req.Yield.DefectModel()
		if err != nil {
			return Result{}, err
		}
		t := time.Now()
		rep, err := px.sess.Estimate(model, fsim.YieldConfig{
			MaxTrials: req.Yield.MaxTrials,
			HalfWidth: req.Yield.HalfWidth,
			Seed:      req.Yield.Seed,
			Width:     m.cfg.FsimWidth,
		})
		if err != nil {
			return Result{}, fmt.Errorf("service: yield analysis: %w", err)
		}
		res := px.res
		res.CacheHit = false
		res.Yield = rep
		res.Stages.Analyze = time.Since(t)
		return res, nil
	}
}

// recordPoint folds one finished point into the sweep's progress table;
// the outcome may come from a local run or a peer's compute response.
func (m *Manager) recordPoint(j *jobRecord, p SweepPoint, res *Result, err error) {
	defer m.flushJournal() // after the deferred unlock (LIFO)
	m.mu.Lock()
	defer m.mu.Unlock()
	sp := p // grid coordinates
	switch {
	case err != nil:
		sp.Error = err.Error()
		j.sweepFailed++
	case res != nil:
		sp.CacheHit = res.CacheHit
		sp.Gates = res.Stats.Gates
		sp.Area = res.Stats.Area
		if res.Yield != nil {
			sp.FailureRate = res.Yield.FailureRate
			sp.Yield = res.Yield.Yield
			sp.Report = res.Yield
		}
	}
	j.sweepPoints[p.Index] = &sp
	j.sweepDone++
	m.metrics.sweepPointsDone.Add(1)
	m.journalProgressLocked(j, j.sweepDone, j.sweepTotal)
	m.emitLocked(j, eventProgress, &sp, nil)
}
