package service

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// DefaultTenant is the tenant every job belongs to when telsd runs
// without API keys, and the tenant pre-tenancy journals replay under.
const DefaultTenant = "default"

// TenantConfig declares one tenant: its bearer key plus the admission
// knobs that govern it. Zero-valued knobs inherit the manager defaults
// (Config.TenantWeight/TenantMaxJobs/TenantMaxInFlight).
type TenantConfig struct {
	// Name identifies the tenant; it appears on jobs, journal records,
	// and metrics.
	Name string `json:"name"`
	// Key is the bearer token presented as "Authorization: Bearer <key>".
	Key string `json:"key"`
	// Weight scales the tenant's share of the worker pool under
	// weighted-fair admission (0 = default weight 1).
	Weight int `json:"weight,omitempty"`
	// MaxJobs caps the tenant's outstanding (queued or running) public
	// jobs; submissions beyond it are rejected 429 quota_exceeded
	// (0 = manager default, negative = unlimited).
	MaxJobs int `json:"max_jobs,omitempty"`
	// MaxInFlight caps the tenant's concurrently running dispatches
	// (0 = manager default, negative = unlimited).
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// Admin grants fleet-wide visibility: listing every tenant's jobs,
	// reading any job, and calling the cluster-internal routes.
	Admin bool `json:"admin,omitempty"`
}

// Caller is the authenticated principal a request acts as. The zero
// value is anonymous; handlers never see it because the middleware
// always resolves one.
type Caller struct {
	// Tenant is the principal's tenant name.
	Tenant string
	// Admin marks admin keys (and every caller in open mode).
	Admin bool
}

// Sees reports whether the caller may observe a job owned by tenant:
// admins see everything, tenant keys only their own jobs.
func (c Caller) Sees(tenant string) bool { return c.Admin || c.Tenant == tenant }

// Auth is the tenant/key table telsd authenticates against. A nil Auth
// (or one with no tenants) is "open mode": every request is admitted as
// an admin caller of the default tenant, which keeps a keyless telsd
// byte-compatible with the pre-tenancy API.
type Auth struct {
	// ClusterKey, when set, additionally authorizes the cluster-internal
	// routes (/v1/cluster/...) without naming a tenant — peers share it.
	ClusterKey string

	tenants map[string]TenantConfig // by name
	byKey   map[string]TenantConfig // by bearer key
}

// Open reports whether the table admits unauthenticated callers.
func (a *Auth) Open() bool { return a == nil || len(a.tenants) == 0 }

// Tenant looks a tenant up by name.
func (a *Auth) Tenant(name string) (TenantConfig, bool) {
	if a == nil {
		return TenantConfig{}, false
	}
	t, ok := a.tenants[name]
	return t, ok
}

// Tenants returns the configured tenant names, sorted.
func (a *Auth) Tenants() []string {
	if a == nil {
		return nil
	}
	names := make([]string, 0, len(a.tenants))
	for name := range a.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Authenticate resolves a bearer token to a caller. In open mode every
// token (or none) is the default tenant with admin rights. Otherwise a
// missing token is rejected with ok=false and known=false; a present
// but unknown token with ok=false and known=false too — the API layer
// maps absent→401 and wrong→403 itself, so Authenticate just answers
// "who is this".
func (a *Auth) Authenticate(token string) (Caller, bool) {
	if a.Open() {
		return Caller{Tenant: DefaultTenant, Admin: true}, true
	}
	if t, ok := a.byKey[token]; ok && token != "" {
		return Caller{Tenant: t.Name, Admin: t.Admin}, true
	}
	if token != "" && a.ClusterKey != "" && token == a.ClusterKey {
		// Peers authenticate with the shared cluster key; they act for
		// whichever tenant the forwarded request names, so the key itself
		// is an admin principal of the default tenant.
		return Caller{Tenant: DefaultTenant, Admin: true}, true
	}
	return Caller{}, false
}

// NewAuth builds the key table, rejecting duplicate names or keys.
func NewAuth(tenants []TenantConfig) (*Auth, error) {
	a := &Auth{
		tenants: make(map[string]TenantConfig, len(tenants)),
		byKey:   make(map[string]TenantConfig, len(tenants)),
	}
	for _, t := range tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("service: tenant with empty name")
		}
		if t.Key == "" {
			return nil, fmt.Errorf("service: tenant %q has empty key", t.Name)
		}
		if _, dup := a.tenants[t.Name]; dup {
			return nil, fmt.Errorf("service: duplicate tenant %q", t.Name)
		}
		if _, dup := a.byKey[t.Key]; dup {
			return nil, fmt.Errorf("service: tenants share one key (second: %q)", t.Name)
		}
		a.tenants[t.Name] = t
		a.byKey[t.Key] = t
	}
	return a, nil
}

// ParseAPIKeys parses the telsd -api-keys flag: comma-separated
// tenant=key pairs, e.g. "alice=ka,bob=kb". A tenant named "admin" or
// prefixed "admin:" is not special; admin rights come from the keys
// file. As a convenience, "name=key=admin" marks an admin tenant.
func ParseAPIKeys(s string) ([]TenantConfig, error) {
	var out []TenantConfig
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		parts := strings.Split(pair, "=")
		switch len(parts) {
		case 2:
			out = append(out, TenantConfig{Name: strings.TrimSpace(parts[0]), Key: strings.TrimSpace(parts[1])})
		case 3:
			if strings.TrimSpace(parts[2]) != "admin" {
				return nil, fmt.Errorf("service: bad -api-keys entry %q (want tenant=key or tenant=key=admin)", pair)
			}
			out = append(out, TenantConfig{Name: strings.TrimSpace(parts[0]), Key: strings.TrimSpace(parts[1]), Admin: true})
		default:
			return nil, fmt.Errorf("service: bad -api-keys entry %q (want tenant=key)", pair)
		}
	}
	return out, nil
}

// keysFile is the -api-keys-file format: {"tenants":[{...}],
// "cluster_key":"..."} with TenantConfig entries.
type keysFile struct {
	Tenants    []TenantConfig `json:"tenants"`
	ClusterKey string         `json:"cluster_key,omitempty"`
}

// LoadKeysFile reads a JSON keys file and returns its tenants plus the
// optional shared cluster key.
func LoadKeysFile(path string) ([]TenantConfig, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("service: read keys file: %w", err)
	}
	var kf keysFile
	if err := json.Unmarshal(data, &kf); err != nil {
		return nil, "", fmt.Errorf("service: parse keys file %s: %w", path, err)
	}
	return kf.Tenants, kf.ClusterKey, nil
}
