package service

import (
	"context"
	"fmt"
	"time"

	"tels/internal/blif"
	"tels/internal/core"
	"tels/internal/fsim"
	"tels/internal/network"
	"tels/internal/opt"
	"tels/internal/sim"
)

// runDetached executes fn under the job's context. The synthesis core and
// the packed yield estimator are not preemptible, so the work runs in its
// own goroutine and is abandoned when the context fires: the worker slot
// is released immediately and the orphaned run's result is discarded (its
// flight is already resolved with the context error, so coalesced jobs
// retry).
func runDetached(ctx context.Context, req Request, fn func(context.Context, Request) (Result, error)) (Result, error) {
	type outcome struct {
		res Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := fn(ctx, req)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// runBounded builds the default manager exec at the configured fsim lane
// width and threshold-check solver mode: the full pipeline, detached.
// The solver is injected here — after digest computation — because it is
// deployment configuration that never enters the wire spec or job
// digests (results are bit-identical across modes).
func runBounded(width fsim.Width, solver core.SolverMode) func(context.Context, Request) (Result, error) {
	return func(ctx context.Context, req Request) (Result, error) {
		return runDetached(ctx, req, func(ctx context.Context, req Request) (Result, error) {
			req.Options.Solver = solver
			return runPipeline(ctx, req, width)
		})
	}
}

// withSolver returns the synthesis options with the manager's deployment
// solver mode applied; the wire spec deliberately carries no solver
// field, so every exec path injects it the same way.
func withSolver(o core.Options, m core.SolverMode) core.Options {
	o.Solver = m
	return o
}

// runPipeline is the full batch flow of cmd/tels: parse → optimize →
// synthesize → verify → render. The context is checked between stages so
// a cancelled job stops at the next stage boundary even when its worker
// has already moved on. width is the packed engine's lane-block width for
// the yield stage; it never affects the result bits.
func runPipeline(ctx context.Context, req Request, width fsim.Width) (Result, error) {
	var st StageTimes
	t := time.Now()
	src, err := blif.ParseString(req.BLIF)
	st.Parse = time.Since(t)
	if err != nil {
		return Result{}, fmt.Errorf("service: parse: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	t = time.Now()
	var optimized *network.Network
	switch req.Script {
	case "algebraic":
		optimized = opt.Algebraic(src)
	case "boolean":
		optimized = opt.Boolean(src)
	default:
		optimized = src.Clone()
	}
	st.Optimize = time.Since(t)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	t = time.Now()
	var tn *core.Network
	var synthStats core.SynthStats
	switch req.Mapper {
	case "one2one":
		tn, err = core.OneToOne(optimized, req.Options)
	default:
		tn, synthStats, err = core.Synthesize(optimized, req.Options)
	}
	st.Synthesize = time.Since(t)
	if err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	verified := "skipped"
	if !req.SkipVerify {
		t = time.Now()
		proof, err := sim.Prove(src, tn, 1)
		st.Verify = time.Since(t)
		if err != nil {
			return Result{}, fmt.Errorf("service: verification failed: %w", err)
		}
		verified = proof.String()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	var yield *fsim.YieldReport
	if req.Kind == "yield" {
		model, err := req.Yield.DefectModel()
		if err != nil {
			return Result{}, err
		}
		t = time.Now()
		yield, err = fsim.EstimateYield(src, tn, model, fsim.YieldConfig{
			MaxTrials: req.Yield.MaxTrials,
			HalfWidth: req.Yield.HalfWidth,
			Seed:      req.Yield.Seed,
			Width:     width,
		})
		st.Analyze = time.Since(t)
		if err != nil {
			return Result{}, fmt.Errorf("service: yield analysis: %w", err)
		}
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	return Result{
		TLN:        tn.String(),
		Stats:      tn.Stats(),
		SynthStats: synthStats,
		Verified:   verified,
		Yield:      yield,
		Stages:     st,
	}, nil
}
