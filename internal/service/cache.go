package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"tels/internal/blif"
)

// Digest returns the content address of a normalized request: the SHA-256
// of the canonicalized BLIF (parsed and re-emitted, so whitespace, cube
// order within a line, and comments don't fragment the cache) together
// with a fixed-order encoding of every synthesis knob that can change the
// output. Identical digests always yield identical threshold networks.
// The canonicalization round-trips through the arena representation
// without building a pointer network; the emitted text — and therefore
// every existing digest — is unchanged.
func Digest(req Request) (string, error) {
	nc, err := blif.ParseCoreString(req.BLIF)
	if err != nil {
		return "", fmt.Errorf("service: parse blif: %w", err)
	}
	var sb strings.Builder
	if err := blif.WriteCore(&sb, nc); err != nil {
		return "", fmt.Errorf("service: canonicalize blif: %w", err)
	}
	canon := sb.String()
	h := sha256.New()
	o := req.Options
	fmt.Fprintf(h, "tels/v1\nscript=%s\nmapper=%s\nverify=%t\n", req.Script, req.Mapper, !req.SkipVerify)
	fmt.Fprintf(h, "fanin=%d\ndon=%d\ndoff=%d\nseed=%d\nmaxilp=%d\nexact=%t\nmaxw=%d\nnocollapse=%t\nnotheorem2=%t\nsplit=%d\n",
		o.Fanin, o.DeltaOn, o.DeltaOff, o.Seed, o.MaxILPNodes, o.ExactILP, o.MaxWeight, o.NoCollapse, o.NoTheorem2, o.Split)
	// Per-node margin overrides, in sorted order. Only written when
	// present so pre-override digests stay stable.
	if len(o.DeltaOnOverrides) > 0 {
		names := make([]string, 0, len(o.DeltaOnOverrides))
		for name := range o.DeltaOnOverrides {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(h, "donover.%s=%d\n", name, o.DeltaOnOverrides[name])
		}
	}
	// Analysis jobs fold their knobs into the address; plain synth
	// requests keep the original encoding so their digests are stable
	// across these additions.
	if req.Kind == "yield" || req.Kind == "sweep" || req.Kind == "resyn" {
		y := req.Yield
		fmt.Fprintf(h, "kind=%s\nymodel=%s\nyv=%g\nyp=%g\nymax=%d\nyhw=%g\nyseed=%d\n",
			req.Kind, y.Model, y.V, y.P, y.MaxTrials, y.HalfWidth, y.Seed)
	}
	if req.Kind == "resyn" {
		rs := req.Resyn
		fmt.Fprintf(h, "rtopk=%d\nrstep=%d\nrmaxdon=%d\nriters=%d\nrtarget=%g\nrbudget=%d\n",
			rs.TopK, rs.DeltaStep, rs.MaxDeltaOn, rs.MaxIters, rs.TargetYield, rs.AreaBudget)
	}
	// A sweep job's own digest covers its grid. Its results are NOT
	// cached under this address: every point is cached individually under
	// the digest of the equivalent standalone yield request (synth knobs +
	// point key), so a re-run with one new grid point hits the cache on
	// every old point and shares entries with standalone yield jobs.
	if req.Kind == "sweep" {
		s := req.Sweep
		fmt.Fprintf(h, "svs=%v\nsdons=%v\nsmodels=%v\n", s.Vs, s.DeltaOns, s.Models)
	}
	fmt.Fprintf(h, "blif=%s", canon)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Cache is a bounded LRU map from request digest to synthesis result.
// It is pure storage: hit/miss accounting lives in Metrics, where the
// manager can also credit results served by coalescing with an in-flight
// run of the same digest.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	res Result
}

// DefaultCacheEntries bounds the cache when the configuration leaves it 0.
const DefaultCacheEntries = 256

// NewCache returns a cache holding at most capacity results
// (DefaultCacheEntries if capacity ≤ 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached result for the digest, marking it most recently
// used.
func (c *Cache) Get(key string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return Result{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores the result under the digest and returns how many entries
// were evicted to make room.
func (c *Cache) Put(key string, res Result) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return 0
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	evicted := 0
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

// Len reports the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
