package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"tels/internal/core"
)

// SubmitRequest is the JSON wire form of a synthesis request
// (POST /synth). It mirrors the cmd/tels flags; absent fields take the
// same defaults the CLI uses (ψ=3, δon=0, δoff=1, algebraic script, tels
// mapper, verification on). Kind "yield" appends a Monte-Carlo yield
// analysis configured by the Yield block.
type SubmitRequest struct {
	BLIF      string `json:"blif"`
	Kind      string `json:"kind,omitempty"`
	Script    string `json:"script,omitempty"`
	Mapper    string `json:"mapper,omitempty"`
	Fanin     int    `json:"fanin,omitempty"`
	DeltaOn   *int   `json:"delta_on,omitempty"`
	DeltaOff  *int   `json:"delta_off,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	Exact     bool   `json:"exact,omitempty"`
	MaxWeight int    `json:"max_weight,omitempty"`
	// Yield configures the analysis stage of kind "yield" jobs.
	Yield *YieldSpec `json:"yield,omitempty"`
	// SkipVerify disables the equivalence check.
	SkipVerify bool `json:"skip_verify,omitempty"`
	// TimeoutMS bounds the job's run time in milliseconds (0 = server
	// default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Request converts the wire form to the typed job request.
func (s SubmitRequest) Request() Request {
	o := core.DefaultOptions()
	if s.Fanin != 0 {
		o.Fanin = s.Fanin
	}
	if s.DeltaOn != nil {
		o.DeltaOn = *s.DeltaOn
	}
	if s.DeltaOff != nil {
		o.DeltaOff = *s.DeltaOff
	}
	o.Seed = s.Seed
	o.ExactILP = s.Exact
	o.MaxWeight = s.MaxWeight
	req := Request{
		BLIF:       s.BLIF,
		Kind:       s.Kind,
		Script:     s.Script,
		Mapper:     s.Mapper,
		Options:    o,
		SkipVerify: s.SkipVerify,
		Timeout:    time.Duration(s.TimeoutMS) * time.Millisecond,
	}
	if s.Yield != nil {
		req.Yield = *s.Yield
	}
	return req
}

// maxBodyBytes bounds request bodies; the largest MCNC benchmark is well
// under 1 MiB of BLIF.
const maxBodyBytes = 8 << 20

// NewHandler exposes the manager as a JSON-over-HTTP API:
//
//	POST   /synth            submit a job (SubmitRequest JSON) → Job
//	GET    /jobs             list retained jobs
//	GET    /jobs/{id}        job status (includes result when done)
//	GET    /jobs/{id}/tln    the synthesized .tln as text/plain
//	POST   /jobs/{id}/cancel cancel a queued or running job
//	DELETE /jobs/{id}        same as cancel
//	GET    /healthz          liveness probe
//	GET    /metrics          expvar-style counters
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /synth", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
			return
		}
		if len(body) > maxBodyBytes {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("body exceeds %d bytes", maxBodyBytes))
			return
		}
		var sr SubmitRequest
		if err := json.Unmarshal(body, &sr); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
			return
		}
		job, err := m.Submit(sr.Request())
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": m.List()})
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("GET /jobs/{id}/tln", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		if job.State != StateDone || job.Result == nil {
			writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s, not done", job.ID, job.State))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, job.Result.TLN)
	})
	cancel := func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, ok := m.Get(id); !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
			return
		}
		cancelled := m.Cancel(id)
		job, _ := m.Get(id)
		writeJSON(w, http.StatusOK, map[string]any{"cancelled": cancelled, "job": job})
	}
	mux.HandleFunc("POST /jobs/{id}/cancel", cancel)
	mux.HandleFunc("DELETE /jobs/{id}", cancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "workers": m.Workers()})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.MetricsSnapshot())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
