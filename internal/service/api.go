package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tels/internal/cluster"
	"tels/internal/core"
)

// The wire API is versioned under /v1/. A submission is a kind-tagged
// spec union —
//
//	{"kind": "synth", "spec": {"blif": "...", "fanin": 3, ...}}
//	{"kind": "yield", "spec": {..synth fields.., "yield": {...}}}
//	{"kind": "sweep", "spec": {..synth fields.., "yield": {...}, "sweep": {"vs": [...]}}}
//	{"kind": "resyn", "spec": {..synth fields.., "yield": {...}, "resyn": {"target_yield": 0.99, ...}}}
//
// — so each kind owns its own spec shape instead of growing one flat
// struct. The pre-v1 flat routes (POST /synth, unversioned /jobs
// mirrors) are gone: every path outside /v1/ answers with the 404 error
// envelope.

// SynthSpec is the v1 wire form of the synthesis knobs shared by every
// job kind. It mirrors the cmd/tels flags; absent fields take the same
// defaults the CLI uses (ψ=3, δon=0, δoff=1, algebraic script, tels
// mapper, verification on).
type SynthSpec struct {
	BLIF      string `json:"blif"`
	Script    string `json:"script,omitempty"`
	Mapper    string `json:"mapper,omitempty"`
	Fanin     int    `json:"fanin,omitempty"`
	DeltaOn   *int   `json:"delta_on,omitempty"`
	DeltaOff  *int   `json:"delta_off,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	Exact     bool   `json:"exact,omitempty"`
	MaxWeight int    `json:"max_weight,omitempty"`
	// SkipVerify disables the equivalence check.
	SkipVerify bool `json:"skip_verify,omitempty"`
	// TimeoutMS bounds the job's run time in milliseconds (0 = server
	// default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// request converts the synthesis knobs to the typed job request.
func (s SynthSpec) request() Request {
	o := core.DefaultOptions()
	if s.Fanin != 0 {
		o.Fanin = s.Fanin
	}
	if s.DeltaOn != nil {
		o.DeltaOn = *s.DeltaOn
	}
	if s.DeltaOff != nil {
		o.DeltaOff = *s.DeltaOff
	}
	o.Seed = s.Seed
	o.ExactILP = s.Exact
	o.MaxWeight = s.MaxWeight
	return Request{
		BLIF:       s.BLIF,
		Script:     s.Script,
		Mapper:     s.Mapper,
		Options:    o,
		SkipVerify: s.SkipVerify,
		Timeout:    time.Duration(s.TimeoutMS) * time.Millisecond,
	}
}

// YieldJobSpec is the v1 spec of kind "yield": synthesis knobs plus the
// Monte-Carlo analysis configuration.
type YieldJobSpec struct {
	SynthSpec
	Yield YieldSpec `json:"yield"`
}

// SweepJobSpec is the v1 spec of kind "sweep": synthesis knobs, the base
// yield point, and the grid fanned across the worker pool.
type SweepJobSpec struct {
	SynthSpec
	Yield YieldSpec `json:"yield"`
	Sweep SweepSpec `json:"sweep"`
}

// ResynJobSpec is the v1 spec of kind "resyn": synthesis knobs, the
// estimator configuration, and the selective re-synthesis loop knobs.
type ResynJobSpec struct {
	SynthSpec
	Yield YieldSpec `json:"yield"`
	Resyn ResynSpec `json:"resyn"`
}

// SubmitEnvelope is the kind-tagged v1 submission body.
type SubmitEnvelope struct {
	Kind string          `json:"kind"`
	Spec json.RawMessage `json:"spec"`
	// Priority orders the job within the submitting tenant's queue:
	// "high", "normal" (default), or "low".
	Priority string `json:"priority,omitempty"`
}

// Request decodes the envelope's spec according to its kind.
func (e SubmitEnvelope) Request() (Request, error) {
	req, err := e.decodeSpec()
	if err != nil {
		return Request{}, err
	}
	req.Priority = e.Priority
	return req, nil
}

func (e SubmitEnvelope) decodeSpec() (Request, error) {
	kind := e.Kind
	if kind == "" {
		kind = "synth"
	}
	if len(e.Spec) == 0 {
		return Request{}, fmt.Errorf("service: submission has no spec")
	}
	switch kind {
	case "synth":
		var s SynthSpec
		if err := json.Unmarshal(e.Spec, &s); err != nil {
			return Request{}, fmt.Errorf("service: decode synth spec: %w", err)
		}
		return s.request(), nil
	case "yield":
		var s YieldJobSpec
		if err := json.Unmarshal(e.Spec, &s); err != nil {
			return Request{}, fmt.Errorf("service: decode yield spec: %w", err)
		}
		req := s.SynthSpec.request()
		req.Kind = "yield"
		req.Yield = s.Yield
		return req, nil
	case "sweep":
		var s SweepJobSpec
		if err := json.Unmarshal(e.Spec, &s); err != nil {
			return Request{}, fmt.Errorf("service: decode sweep spec: %w", err)
		}
		req := s.SynthSpec.request()
		req.Kind = "sweep"
		req.Yield = s.Yield
		req.Sweep = s.Sweep
		return req, nil
	case "resyn":
		var s ResynJobSpec
		if err := json.Unmarshal(e.Spec, &s); err != nil {
			return Request{}, fmt.Errorf("service: decode resyn spec: %w", err)
		}
		req := s.SynthSpec.request()
		req.Kind = "resyn"
		req.Yield = s.Yield
		req.Resyn = s.Resyn
		return req, nil
	}
	return Request{}, fmt.Errorf("service: unknown job kind %q (want synth, yield, sweep, or resyn)", kind)
}

// Error codes of the uniform JSON error envelope. Every error response
// has the body {"error": {"code": "...", "message": "..."}}.
const (
	CodeInvalidRequest   = "invalid_request"    // malformed body or spec (400)
	CodeUnauthorized     = "unauthorized"       // missing credentials (401)
	CodeForbidden        = "forbidden"          // wrong or insufficient credentials (403)
	CodeNotFound         = "not_found"          // unknown job or route (404)
	CodeMethodNotAllowed = "method_not_allowed" // route exists, method doesn't (405)
	CodeConflict         = "conflict"           // job not in a usable state (409)
	CodeTooLarge         = "payload_too_large"  // body over the size cap (413)
	CodeQuotaExceeded    = "quota_exceeded"     // tenant over its admission quota (429)
	CodeOverloaded       = "overloaded"         // queue full or shutting down (503)
	CodeInternal         = "internal"           // unexpected server failure (500)
)

// overloadedRetryAfter is the Retry-After suggestion on 503s: the queue
// drains at worker speed, so a short pause is enough.
const overloadedRetryAfter = time.Second

// APIError is the wire error payload.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// maxBodyBytes bounds request bodies; the largest MCNC benchmark is well
// under 1 MiB of BLIF.
const maxBodyBytes = 8 << 20

// NewHandler exposes the manager as a JSON-over-HTTP API:
//
//	POST   /v1/jobs             submit a job (kind-tagged SubmitEnvelope) → Job
//	GET    /v1/jobs             list retained jobs (?state=, ?kind=, ?tenant=, ?limit=N)
//	GET    /v1/jobs/{id}        job status (sweep jobs include progress)
//	GET    /v1/jobs/{id}/events SSE stream of state transitions and progress
//	GET    /v1/jobs/{id}/tln    the synthesized .tln as text/plain
//	POST   /v1/jobs/{id}/cancel cancel a queued or running job
//	DELETE /v1/jobs/{id}        same as cancel
//	GET    /v1/healthz          liveness probe
//	GET    /v1/readyz           readiness probe (cmd/telsd 503s it during WAL replay)
//	GET    /v1/metrics          expvar-style counters
//
// plus the cluster-internal peer surface:
//
//	GET  /v1/cluster/result/{digest}  cached/persisted result, 404 on miss
//	PUT  /v1/cluster/result/{digest}  accept a result computed by a non-owner peer
//	POST /v1/cluster/compute          run an internal Request to completion → Job
//
// With the manager's Config.Auth set, every route except healthz and
// readyz requires "Authorization: Bearer <key>": a missing credential
// is 401 unauthorized, an unknown one 403 forbidden, and jobs are
// scoped to the key's tenant (admin keys and the shared cluster key
// see everything). Without Auth the daemon is open: every caller acts
// as an admin of the "default" tenant, preserving the pre-tenancy
// behavior.
//
// Everything else — including the removed pre-v1 routes (POST /synth,
// unversioned /jobs, /healthz, /metrics) — gets a 404. Errors are
// always {"error": {"code", "message"}}, including 405s the routing
// layer itself produces.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	// owned hides other tenants' jobs from non-admin callers: a foreign
	// job ID answers exactly like a nonexistent one, so tenants can't
	// probe each other's job namespace.
	owned := func(w http.ResponseWriter, r *http.Request) (Job, bool) {
		id := r.PathValue("id")
		job, ok := m.Get(id)
		if !ok || !callerFrom(r.Context()).Sees(job.Tenant) {
			writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("unknown job %q", id))
			return Job{}, false
		}
		return job, true
	}

	submit := func(w http.ResponseWriter, r *http.Request, decode func([]byte) (Request, error)) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("read body: %w", err))
			return
		}
		if len(body) > maxBodyBytes {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge, fmt.Errorf("body exceeds %d bytes", maxBodyBytes))
			return
		}
		req, err := decode(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, err)
			return
		}
		job, err := m.SubmitAs(callerFrom(r.Context()), req)
		if err != nil {
			var qe *QuotaError
			switch {
			case errors.As(err, &qe):
				w.Header().Set("Retry-After", retryAfterValue(qe.RetryAfter))
				writeError(w, http.StatusTooManyRequests, CodeQuotaExceeded, err)
			case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed):
				w.Header().Set("Retry-After", retryAfterValue(overloadedRetryAfter))
				writeError(w, http.StatusServiceUnavailable, CodeOverloaded, err)
			default:
				writeError(w, http.StatusBadRequest, CodeInvalidRequest, err)
			}
			return
		}
		writeJSON(w, http.StatusAccepted, job)
	}
	// list supports ?state=, ?kind=, ?tenant=, and ?limit=N so an
	// operator can inspect a recovered backlog (e.g. /v1/jobs?state=queued)
	// without dumping every retained job. limit keeps the newest N
	// matches. Non-admin callers only ever see their own tenant's jobs;
	// naming another tenant is 403.
	list := func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		// An empty-but-present value (?state=) is a malformed filter, not
		// an absent one: silently matching everything would hide typos
		// like "?state=&kind=synth" from scripts.
		for _, k := range []string{"state", "kind", "limit", "tenant"} {
			if q.Has(k) && q.Get(k) == "" {
				writeError(w, http.StatusBadRequest, CodeInvalidRequest,
					fmt.Errorf("empty %s parameter (omit it to match all)", k))
				return
			}
		}
		state := State(q.Get("state"))
		switch state {
		case "", StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
		default:
			writeError(w, http.StatusBadRequest, CodeInvalidRequest,
				fmt.Errorf("unknown state %q (want queued, running, done, failed, or cancelled)", state))
			return
		}
		kind := q.Get("kind")
		switch kind {
		case "", "synth", "yield", "sweep", "resyn":
		default:
			writeError(w, http.StatusBadRequest, CodeInvalidRequest,
				fmt.Errorf("unknown job kind %q (want synth, yield, sweep, or resyn)", kind))
			return
		}
		caller := callerFrom(r.Context())
		tenant := q.Get("tenant")
		if tenant != "" && !caller.Sees(tenant) {
			writeError(w, http.StatusForbidden, CodeForbidden,
				fmt.Errorf("tenant %q may not list tenant %q", caller.Tenant, tenant))
			return
		}
		if !caller.Admin {
			tenant = caller.Tenant // tenant keys are always scoped to themselves
		}
		limit := 0
		if s := q.Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("bad limit %q", s))
				return
			}
			limit = n
		}
		jobs := make([]Job, 0)
		for _, job := range m.List() {
			if (state == "" || job.State == state) && (kind == "" || job.Kind == kind) && (tenant == "" || job.Tenant == tenant) {
				jobs = append(jobs, job)
			}
		}
		total := len(jobs)
		if limit > 0 && len(jobs) > limit {
			jobs = jobs[len(jobs)-limit:]
		}
		writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs, "total": total})
	}
	get := func(w http.ResponseWriter, r *http.Request) {
		job, ok := owned(w, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, job)
	}
	events := func(w http.ResponseWriter, r *http.Request) {
		job, ok := owned(w, r)
		if !ok {
			return
		}
		fl, okf := w.(http.Flusher)
		if !okf {
			writeError(w, http.StatusInternalServerError, CodeInternal, fmt.Errorf("response writer cannot stream"))
			return
		}
		ch, stop, oks := m.Subscribe(job.ID)
		if !oks {
			writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("unknown job %q", job.ID))
			return
		}
		defer stop()
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		h.Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		for {
			select {
			case ev, open := <-ch:
				if !open {
					return // consumer fell behind and was dropped; it re-syncs by reconnecting
				}
				data, err := json.Marshal(ev)
				if err != nil {
					return
				}
				fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
				fl.Flush()
				if ev.Type == eventEnd {
					return
				}
			case <-r.Context().Done():
				return
			}
		}
	}
	tln := func(w http.ResponseWriter, r *http.Request) {
		job, ok := owned(w, r)
		if !ok {
			return
		}
		if job.State != StateDone || job.Result == nil {
			writeError(w, http.StatusConflict, CodeConflict, fmt.Errorf("job %s is %s, not done", job.ID, job.State))
			return
		}
		if job.Result.TLN == "" {
			writeError(w, http.StatusConflict, CodeConflict, fmt.Errorf("job %s (%s) has no single netlist", job.ID, job.Kind))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, job.Result.TLN)
	}
	cancel := func(w http.ResponseWriter, r *http.Request) {
		job, ok := owned(w, r)
		if !ok {
			return
		}
		cancelled := m.Cancel(job.ID)
		job, _ = m.Get(job.ID)
		writeJSON(w, http.StatusOK, map[string]any{"cancelled": cancelled, "job": job})
	}
	healthz := func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "workers": m.Workers()})
	}
	// readyz answers 200 once this handler serves at all: a manager that
	// constructed has finished WAL replay. cmd/telsd fronts this handler
	// with a boot gate that 503s readyz (while keeping healthz green)
	// until construction completes, so load balancers and cluster peers
	// don't route to a daemon still replaying its journal.
	readyz := func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "workers": m.Workers()})
	}
	metrics := func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.MetricsSnapshot())
	}

	// Cluster-internal surface: peers exchange results and work on it.
	clusterGet := func(w http.ResponseWriter, r *http.Request) {
		digest := r.PathValue("digest")
		res, ok := m.CachedResult(digest)
		if !ok {
			writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("no result for digest %q", digest))
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
	clusterPut := func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("read body: %w", err))
			return
		}
		if len(body) > maxBodyBytes {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge, fmt.Errorf("body exceeds %d bytes", maxBodyBytes))
			return
		}
		var res Result
		if err := json.Unmarshal(body, &res); err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("decode result: %w", err))
			return
		}
		m.AcceptResult(r.PathValue("digest"), res)
		w.WriteHeader(http.StatusNoContent)
	}
	clusterCompute := func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("read body: %w", err))
			return
		}
		if len(body) > maxBodyBytes {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge, fmt.Errorf("body exceeds %d bytes", maxBodyBytes))
			return
		}
		var req Request
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("decode request: %w", err))
			return
		}
		// Synchronous on purpose: the caller cancelling (r.Context())
		// cancels the job, so a hedge loser releases this peer's worker.
		// The tenant header attributes the fanned-out work to the tenant
		// that submitted the sweep on the coordinating peer.
		job, err := m.ComputeSyncAs(r.Context(), r.Header.Get(cluster.TenantHeader), req)
		if err != nil {
			if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed) {
				writeError(w, http.StatusServiceUnavailable, CodeOverloaded, err)
				return
			}
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, job)
	}

	// v1 surface.
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submit(w, r, func(body []byte) (Request, error) {
			var env SubmitEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				return Request{}, fmt.Errorf("decode submission: %w", err)
			}
			return env.Request()
		})
	})
	mux.HandleFunc("GET /v1/jobs", list)
	mux.HandleFunc("GET /v1/jobs/{id}", get)
	mux.HandleFunc("GET /v1/jobs/{id}/events", events)
	mux.HandleFunc("GET /v1/jobs/{id}/tln", tln)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", cancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", cancel)
	mux.HandleFunc("GET /v1/healthz", healthz)
	mux.HandleFunc("GET /v1/readyz", readyz)
	mux.HandleFunc("GET /v1/metrics", metrics)
	mux.HandleFunc("GET /v1/cluster/result/{digest}", clusterGet)
	mux.HandleFunc("PUT /v1/cluster/result/{digest}", clusterPut)
	mux.HandleFunc("POST /v1/cluster/compute", clusterCompute)

	// No catch-all route: the mux's native 404 (unknown path) and 405
	// (known path, wrong method) answers are rewritten into the JSON
	// envelope by envelopeRouting below. Registering "/" here would
	// shadow the method mismatch and turn every wrong-method request
	// into a 404.
	return envelopeRouting(withAuth(m.Auth(), mux))
}

// callerKey stores the authenticated Caller in the request context.
type callerKeyType struct{}

var callerKey callerKeyType

// callerFrom recovers the authenticated principal; requests that never
// passed the auth middleware (direct handler tests) act as the open-mode
// admin, matching a keyless daemon.
func callerFrom(ctx context.Context) Caller {
	if c, ok := ctx.Value(callerKey).(Caller); ok {
		return c
	}
	return Caller{Tenant: DefaultTenant, Admin: true}
}

// withAuth authenticates every request against the key table and stores
// the resulting Caller in the context. Probe routes stay open so load
// balancers need no credentials. The cluster-internal surface requires
// an admin principal (the shared cluster key or an admin tenant key) —
// a plain tenant key must not be able to push results or run arbitrary
// internal requests on a peer.
func withAuth(auth *Auth, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" || r.URL.Path == "/v1/readyz" {
			next.ServeHTTP(w, r)
			return
		}
		caller := Caller{Tenant: DefaultTenant, Admin: true}
		if !auth.Open() {
			hdr := r.Header.Get("Authorization")
			if hdr == "" {
				writeError(w, http.StatusUnauthorized, CodeUnauthorized,
					fmt.Errorf("missing Authorization header (want Bearer <api-key>)"))
				return
			}
			token, ok := strings.CutPrefix(hdr, "Bearer ")
			if !ok {
				writeError(w, http.StatusUnauthorized, CodeUnauthorized,
					fmt.Errorf("malformed Authorization header (want Bearer <api-key>)"))
				return
			}
			caller, ok = auth.Authenticate(strings.TrimSpace(token))
			if !ok {
				writeError(w, http.StatusForbidden, CodeForbidden, fmt.Errorf("unknown API key"))
				return
			}
		}
		if strings.HasPrefix(r.URL.Path, "/v1/cluster/") && !caller.Admin {
			writeError(w, http.StatusForbidden, CodeForbidden,
				fmt.Errorf("cluster routes require the cluster key or an admin key"))
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), callerKey, caller)))
	})
}

// envelopeRouting converts the bare text/plain 404s and 405s Go's
// ServeMux writes for unmatched paths and method-pattern mismatches
// into the uniform JSON error envelope, so every error on the surface —
// routing-layer ones included — has the same shape. Handler-written
// 404s (unknown job IDs) already carry the envelope and are recognized
// by their application/json Content-Type; those pass through untouched.
func envelopeRouting(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&envelopeWriter{ResponseWriter: w, req: r}, r)
	})
}

// envelopeWriter intercepts plain-text WriteHeader(404/405): it
// replaces the mux's status line and body with the JSON envelope and
// swallows the original body bytes. Every other status passes through.
type envelopeWriter struct {
	http.ResponseWriter
	req       *http.Request
	rewrote   bool // an envelope was written; swallow the original body
	committed bool
}

func (ew *envelopeWriter) WriteHeader(status int) {
	if ew.committed {
		return
	}
	ew.committed = true
	routing := status == http.StatusMethodNotAllowed || status == http.StatusNotFound
	if routing && !strings.HasPrefix(ew.Header().Get("Content-Type"), "application/json") {
		ew.rewrote = true
		// The mux already set Content-Type/Allow on the shared header map;
		// writeError overrides Content-Type, Allow stays — it's correct.
		if status == http.StatusMethodNotAllowed {
			writeError(ew.ResponseWriter, status, CodeMethodNotAllowed,
				fmt.Errorf("method %s not allowed on %s", ew.req.Method, ew.req.URL.Path))
		} else {
			writeError(ew.ResponseWriter, status, CodeNotFound,
				fmt.Errorf("no route %s %s", ew.req.Method, ew.req.URL.Path))
		}
		return
	}
	ew.ResponseWriter.WriteHeader(status)
}

func (ew *envelopeWriter) Write(p []byte) (int, error) {
	if !ew.committed {
		ew.WriteHeader(http.StatusOK)
	}
	if ew.rewrote {
		return len(p), nil // discard the mux's plain-text body
	}
	return ew.ResponseWriter.Write(p)
}

// Flush passes streaming through the interceptor — the SSE route needs
// the underlying Flusher.
func (ew *envelopeWriter) Flush() {
	if fl, ok := ew.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// retryAfterValue renders a Retry-After header in whole seconds,
// rounding up so "retry after 200ms" never becomes "retry now".
func retryAfterValue(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, map[string]APIError{
		"error": {Code: code, Message: err.Error()},
	})
}
