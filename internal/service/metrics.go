package service

import (
	"sync/atomic"
)

// Metrics aggregates the service's expvar-style counters: cumulative job
// outcomes, cache traffic, and per-stage latency sums (nanoseconds). All
// counters are monotonic; current per-state job counts are derived from
// the job table at snapshot time by the manager.
type Metrics struct {
	jobsSubmitted atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64
	jobsExecuted  atomic.Int64 // pipeline runs actually started (= cache misses)

	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheEvictions atomic.Int64

	sweepPointsPlanned atomic.Int64
	sweepPointsDone    atomic.Int64

	resynIterations    atomic.Int64
	resynGatesHardened atomic.Int64
	resynMemoHits      atomic.Int64

	parseNS      atomic.Int64
	optimizeNS   atomic.Int64
	synthesizeNS atomic.Int64
	verifyNS     atomic.Int64
	analyzeNS    atomic.Int64
}

func (m *Metrics) addStages(st StageTimes) {
	m.parseNS.Add(int64(st.Parse))
	m.optimizeNS.Add(int64(st.Optimize))
	m.synthesizeNS.Add(int64(st.Synthesize))
	m.verifyNS.Add(int64(st.Verify))
	m.analyzeNS.Add(int64(st.Analyze))
}

// Snapshot flattens the counters into a name → value map ready for JSON
// rendering. perState and cacheLen are sampled by the manager under its
// lock so the snapshot is internally consistent for the job table.
func (m *Metrics) Snapshot(perState map[State]int, cacheLen int) map[string]int64 {
	out := map[string]int64{
		"jobs_submitted":          m.jobsSubmitted.Load(),
		"jobs_done":               m.jobsDone.Load(),
		"jobs_failed":             m.jobsFailed.Load(),
		"jobs_cancelled":          m.jobsCancelled.Load(),
		"jobs_executed":           m.jobsExecuted.Load(),
		"cache_hits":              m.cacheHits.Load(),
		"cache_misses":            m.cacheMisses.Load(),
		"cache_evictions":         m.cacheEvictions.Load(),
		"cache_entries":           int64(cacheLen),
		"sweep_points_planned":    m.sweepPointsPlanned.Load(),
		"sweep_points_done":       m.sweepPointsDone.Load(),
		"resyn_iterations":        m.resynIterations.Load(),
		"resyn_gates_hardened":    m.resynGatesHardened.Load(),
		"resyn_memo_hits":         m.resynMemoHits.Load(),
		"stage_parse_ns_sum":      m.parseNS.Load(),
		"stage_optimize_ns_sum":   m.optimizeNS.Load(),
		"stage_synthesize_ns_sum": m.synthesizeNS.Load(),
		"stage_verify_ns_sum":     m.verifyNS.Load(),
		"stage_analyze_ns_sum":    m.analyzeNS.Load(),
	}
	for _, s := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		out["jobs_state_"+string(s)] = int64(perState[s])
	}
	return out
}
