package service

import (
	"sync/atomic"
)

// Metrics aggregates the service's expvar-style counters: cumulative job
// outcomes, cache traffic, and per-stage latency sums (nanoseconds). All
// counters are monotonic; current per-state job counts are derived from
// the job table at snapshot time by the manager.
type Metrics struct {
	jobsSubmitted atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64
	jobsExecuted  atomic.Int64 // pipeline runs actually started (= cache misses)

	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheEvictions atomic.Int64

	sweepPointsPlanned atomic.Int64
	sweepPointsDone    atomic.Int64

	resynIterations    atomic.Int64
	resynGatesHardened atomic.Int64
	resynMemoHits      atomic.Int64

	// Cluster dispatch counters (snapshotted only when clustering is on).
	clusterRemoteHits    atomic.Int64 // fills answered by an owner peer
	clusterRemoteMisses  atomic.Int64 // fill attempts that missed or failed
	clusterRemotePoints  atomic.Int64 // sweep points dispatched to owner peers
	clusterSteals        atomic.Int64 // points stolen back from dead/saturated owners
	clusterHedges        atomic.Int64 // local hedges launched against stragglers
	clusterHedgesWon     atomic.Int64 // hedges where the local run finished first
	clusterHedgesLost    atomic.Int64 // hedges where the remote still won
	clusterPushes        atomic.Int64 // results replicated to their owner peer
	clusterFillsServed   atomic.Int64 // fill requests this peer answered
	clusterComputeServed atomic.Int64 // compute requests this peer accepted

	parseNS      atomic.Int64
	optimizeNS   atomic.Int64
	synthesizeNS atomic.Int64
	verifyNS     atomic.Int64
	analyzeNS    atomic.Int64
}

func (m *Metrics) addStages(st StageTimes) {
	m.parseNS.Add(int64(st.Parse))
	m.optimizeNS.Add(int64(st.Optimize))
	m.synthesizeNS.Add(int64(st.Synthesize))
	m.verifyNS.Add(int64(st.Verify))
	m.analyzeNS.Add(int64(st.Analyze))
}

// Snapshot flattens the counters into a name → value map ready for JSON
// rendering. perState and cacheLen are sampled by the manager under its
// lock so the snapshot is internally consistent for the job table.
func (m *Metrics) Snapshot(perState map[State]int, cacheLen int) map[string]int64 {
	out := map[string]int64{
		"jobs_submitted":          m.jobsSubmitted.Load(),
		"jobs_done":               m.jobsDone.Load(),
		"jobs_failed":             m.jobsFailed.Load(),
		"jobs_cancelled":          m.jobsCancelled.Load(),
		"jobs_executed":           m.jobsExecuted.Load(),
		"cache_hits":              m.cacheHits.Load(),
		"cache_misses":            m.cacheMisses.Load(),
		"cache_evictions":         m.cacheEvictions.Load(),
		"cache_entries":           int64(cacheLen),
		"sweep_points_planned":    m.sweepPointsPlanned.Load(),
		"sweep_points_done":       m.sweepPointsDone.Load(),
		"resyn_iterations":        m.resynIterations.Load(),
		"resyn_gates_hardened":    m.resynGatesHardened.Load(),
		"resyn_memo_hits":         m.resynMemoHits.Load(),
		"stage_parse_ns_sum":      m.parseNS.Load(),
		"stage_optimize_ns_sum":   m.optimizeNS.Load(),
		"stage_synthesize_ns_sum": m.synthesizeNS.Load(),
		"stage_verify_ns_sum":     m.verifyNS.Load(),
		"stage_analyze_ns_sum":    m.analyzeNS.Load(),
	}
	for _, s := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		out["jobs_state_"+string(s)] = int64(perState[s])
	}
	return out
}

// addCluster folds the dispatch counters into a snapshot; the manager
// calls it only when clustering is configured, so single-node metric
// surfaces are unchanged.
func (m *Metrics) addCluster(out map[string]int64) {
	out["cluster_remote_hits"] = m.clusterRemoteHits.Load()
	out["cluster_remote_misses"] = m.clusterRemoteMisses.Load()
	out["cluster_remote_points"] = m.clusterRemotePoints.Load()
	out["cluster_steals"] = m.clusterSteals.Load()
	out["cluster_hedges"] = m.clusterHedges.Load()
	out["cluster_hedges_won"] = m.clusterHedgesWon.Load()
	out["cluster_hedges_lost"] = m.clusterHedgesLost.Load()
	out["cluster_pushes"] = m.clusterPushes.Load()
	out["cluster_fills_served"] = m.clusterFillsServed.Load()
	out["cluster_compute_served"] = m.clusterComputeServed.Load()
}
