package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func sweepRequest() Request {
	return Request{
		BLIF:  testBlif,
		Kind:  "sweep",
		Yield: YieldSpec{MaxTrials: 64, Seed: 7},
		Sweep: SweepSpec{Vs: []float64{0.4, 0.8}, DeltaOns: []int{0, 2}},
	}
}

func TestSweepJobBasic(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	job, err := m.Submit(sweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	if job.Kind != "sweep" {
		t.Fatalf("kind = %q, want sweep", job.Kind)
	}
	done, err := m.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("state = %s (%s), want done", done.State, done.Error)
	}
	sr := done.Result.Sweep
	if sr == nil {
		t.Fatal("no sweep result")
	}
	if sr.TotalPoints != 4 || sr.DonePoints != 4 || sr.FailedPoints != 0 {
		t.Fatalf("counts = %d/%d (%d failed), want 4/4", sr.DonePoints, sr.TotalPoints, sr.FailedPoints)
	}
	if len(sr.Points) != 4 {
		t.Fatalf("len(points) = %d, want 4", len(sr.Points))
	}
	for i, p := range sr.Points {
		if p.Index != i {
			t.Errorf("point %d: index %d, out of grid order", i, p.Index)
		}
		if p.Error != "" {
			t.Errorf("point %d: error %q", i, p.Error)
		}
		if p.Gates <= 0 || p.Report == nil {
			t.Errorf("point %d: missing synthesis stats or report: %+v", i, p)
		}
	}
	// δon-major expansion: points 0,1 share δon=0, points 2,3 δon=2.
	if sr.Points[0].DeltaOn != 0 || sr.Points[2].DeltaOn != 2 {
		t.Fatalf("unexpected δon order: %d, %d", sr.Points[0].DeltaOn, sr.Points[2].DeltaOn)
	}
	snap := m.MetricsSnapshot()
	if snap["sweep_points_planned"] != 4 || snap["sweep_points_done"] != 4 {
		t.Errorf("sweep point counters = %d planned / %d done, want 4/4",
			snap["sweep_points_planned"], snap["sweep_points_done"])
	}
	if snap["jobs_done"] != 1 {
		t.Errorf("jobs_done = %d, want 1 (internal sub-tasks must not count)", snap["jobs_done"])
	}
}

// TestSweepUsesCachedSynthesis proves a sweep over an already-synthesized
// network never re-synthesizes: the prefix is served from the cache and
// only the grid points execute.
func TestSweepUsesCachedSynthesis(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	job, err := m.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), job.ID); err != nil {
		t.Fatal(err)
	}
	before := m.MetricsSnapshot()

	req := sweepRequest()
	req.Sweep.DeltaOns = nil // single δon = the cached synthesis
	job, err = m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	done, err := m.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("state = %s (%s)", done.State, done.Error)
	}
	after := m.MetricsSnapshot()
	// One prefix cache hit; the two points are fresh misses; no synthesis
	// pipeline beyond the two point estimates runs.
	if got := after["cache_hits"] - before["cache_hits"]; got != 1 {
		t.Errorf("cache_hits grew by %d, want 1 (the synth prefix)", got)
	}
	if got := after["cache_misses"] - before["cache_misses"]; got != 2 {
		t.Errorf("cache_misses grew by %d, want 2 (the points)", got)
	}
	if got := after["jobs_executed"] - before["jobs_executed"]; got != 2 {
		t.Errorf("jobs_executed grew by %d, want 2 — the sweep re-synthesized", got)
	}
}

// TestSweepRerunHitsOldPoints proves point results are cached per point
// (synth digest + point key): re-running a sweep with one extra grid
// point hits the cache on every old point.
func TestSweepRerunHitsOldPoints(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	req := sweepRequest()
	req.Sweep.DeltaOns = []int{0}
	job, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), job.ID); err != nil {
		t.Fatal(err)
	}
	before := m.MetricsSnapshot()

	req.Sweep.Vs = append(req.Sweep.Vs, 1.2) // one new point
	job, err = m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	done, err := m.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("state = %s (%s)", done.State, done.Error)
	}
	pts := done.Result.Sweep.Points
	if len(pts) != 3 {
		t.Fatalf("len(points) = %d, want 3", len(pts))
	}
	if !pts[0].CacheHit || !pts[1].CacheHit {
		t.Errorf("old points not served from cache: %+v, %+v", pts[0], pts[1])
	}
	if pts[2].CacheHit {
		t.Errorf("new point unexpectedly cached: %+v", pts[2])
	}
	after := m.MetricsSnapshot()
	if got := after["cache_hits"] - before["cache_hits"]; got != 3 {
		t.Errorf("cache_hits grew by %d, want 3 (prefix + 2 old points)", got)
	}
	if got := after["jobs_executed"] - before["jobs_executed"]; got != 1 {
		t.Errorf("jobs_executed grew by %d, want 1 (only the new point)", got)
	}
}

// TestSweepCancelFreesWorkers cancels a sweep mid-flight while its point
// wedges the only worker, then proves the slot is released by running a
// plain job to completion.
func TestSweepCancelFreesWorkers(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 8})
	started := make(chan int, 16)
	release := make(chan struct{})
	m.sweepPointStart = func(i int) {
		started <- i
		<-release
	}
	defer close(release)

	req := sweepRequest()
	req.Sweep.DeltaOns = []int{0}
	req.Sweep.Vs = []float64{0.4, 0.8, 1.2}
	job, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("no point started")
	}
	if !m.Cancel(job.ID) {
		t.Fatal("cancel did not take effect")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done, err := m.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", done.State)
	}

	// The wedged point was abandoned; the single worker must be free.
	m.sweepPointStart = nil
	follow, err := m.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	fdone, err := m.Wait(ctx, follow.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fdone.State != StateDone {
		t.Fatalf("follow-up state = %s (%s), want done", fdone.State, fdone.Error)
	}
}

// TestSweepProgressMonotonic steps a sweep one point at a time and checks
// the polled progress counter only ever grows, with points landing in
// grid order.
func TestSweepProgressMonotonic(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	step := make(chan struct{})
	started := make(chan int, 16)
	m.sweepPointStart = func(i int) {
		started <- i
		<-step
	}

	req := sweepRequest()
	req.Sweep.DeltaOns = []int{0}
	req.Sweep.Vs = []float64{0.4, 0.8, 1.2}
	req.Sweep.MaxInFlight = 1
	job, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(30 * time.Second)
	for k := 0; k < 3; k++ {
		select {
		case <-started:
		case <-deadline:
			t.Fatalf("point %d never started", k)
		}
		snap, _ := m.Get(job.ID)
		if snap.Progress == nil || snap.Progress.DonePoints != k || snap.Progress.TotalPoints != 3 {
			t.Fatalf("before releasing point %d: progress = %+v", k, snap.Progress)
		}
		step <- struct{}{}
		for {
			snap, _ = m.Get(job.ID)
			pr := snap.Progress
			if pr.DonePoints < k {
				t.Fatalf("done_points went backwards: %d after %d", pr.DonePoints, k)
			}
			for i, p := range pr.Points {
				if i > 0 && pr.Points[i-1].Index >= p.Index {
					t.Fatalf("points out of grid order: %+v", pr.Points)
				}
			}
			if pr.DonePoints == k+1 {
				break
			}
			select {
			case <-deadline:
				t.Fatalf("point %d never landed", k)
			case <-time.After(time.Millisecond):
			}
		}
	}
	done, err := m.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("state = %s (%s)", done.State, done.Error)
	}
}

func TestSweepValidation(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	bad := []Request{
		func() Request { // unknown model in the grid
			r := sweepRequest()
			r.Sweep.Models = []string{"wat"}
			return r
		}(),
		func() Request { // negative δon
			r := sweepRequest()
			r.Sweep.DeltaOns = []int{-1}
			return r
		}(),
		func() Request { // grid beyond MaxSweepPoints
			r := sweepRequest()
			r.Sweep.Vs = make([]float64, MaxSweepPoints+1)
			return r
		}(),
	}
	for i, req := range bad {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// TestV1SweepHTTP drives a sweep end to end through the versioned API:
// kind-tagged submission, progress polling, and the error envelope on the
// netlist route (a sweep has no single .tln).
func TestV1SweepHTTP(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, PollInterval: time.Millisecond}
	ctx := context.Background()

	job, err := c.SubmitSweep(ctx, SweepJobSpec{
		SynthSpec: SynthSpec{BLIF: testBlif},
		Yield:     YieldSpec{MaxTrials: 64, Seed: 7},
		Sweep:     SweepSpec{Vs: []float64{0.4, 0.8}, DeltaOns: []int{0, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lastDone := -1
	final, err := c.Wait(ctx, job.ID, func(j Job) {
		if j.Progress == nil {
			return
		}
		if j.Progress.DonePoints < lastDone {
			t.Errorf("polled done_points went backwards: %d after %d", j.Progress.DonePoints, lastDone)
		}
		lastDone = j.Progress.DonePoints
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}
	if final.Progress == nil || final.Progress.DonePoints != 4 {
		t.Fatalf("final progress = %+v, want 4/4", final.Progress)
	}
	if final.Result.Sweep == nil || len(final.Result.Sweep.Points) != 4 {
		t.Fatalf("final sweep result = %+v", final.Result.Sweep)
	}

	_, err = c.TLN(ctx, job.ID)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != CodeConflict {
		t.Fatalf("tln on a sweep: err = %v, want %s envelope", err, CodeConflict)
	}
}

// TestV1ErrorEnvelope checks every error path returns the uniform
// {"error": {"code", "message"}} body with the right code.
func TestV1ErrorEnvelope(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"unknown job", http.MethodGet, "/v1/jobs/nope", "", http.StatusNotFound, CodeNotFound},
		{"unknown route", http.MethodGet, "/v2/anything", "", http.StatusNotFound, CodeNotFound},
		{"malformed body", http.MethodPost, "/v1/jobs", "{not json", http.StatusBadRequest, CodeInvalidRequest},
		{"unknown kind", http.MethodPost, "/v1/jobs", `{"kind":"wat","spec":{}}`, http.StatusBadRequest, CodeInvalidRequest},
		{"missing spec", http.MethodPost, "/v1/jobs", `{"kind":"synth"}`, http.StatusBadRequest, CodeInvalidRequest},
		{"invalid spec", http.MethodPost, "/v1/jobs", `{"kind":"synth","spec":{"blif":""}}`, http.StatusBadRequest, CodeInvalidRequest},
		{"legacy unknown job", http.MethodGet, "/jobs/nope", "", http.StatusNotFound, CodeNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var env struct {
				Error APIError `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("body is not the error envelope: %v", err)
			}
			if env.Error.Code != tc.wantCode || env.Error.Message == "" {
				t.Fatalf("envelope = %+v, want code %s", env.Error, tc.wantCode)
			}
		})
	}
}

// TestLegacyFlatSubmission keeps the pre-v1 removal honest: the retired
// flat routes (POST /synth, unversioned /jobs mirrors) must answer 404
// with the v1 error envelope, never silently run a job.
func TestLegacyFlatSubmission(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/synth", "application/json",
		strings.NewReader(`{"blif":`+string(mustJSON(testBlif))+`}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /synth status = %d, want 404", resp.StatusCode)
	}
	var env struct {
		Error APIError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("POST /synth body is not the error envelope: %v", err)
	}
	if env.Error.Code != CodeNotFound || env.Error.Message == "" {
		t.Fatalf("POST /synth envelope = %+v, want code %s", env.Error, CodeNotFound)
	}
	if jobs := m.List(); len(jobs) != 0 {
		t.Fatalf("retired route created a job: %+v", jobs)
	}

	for _, path := range []string{"/jobs", "/jobs/job-000001", "/healthz", "/metrics"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, r.StatusCode)
		}
	}
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
