package service

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"tels/internal/core"
)

func resynRequest() Request {
	return Request{
		BLIF:  testBlif,
		Kind:  "resyn",
		Yield: YieldSpec{Model: "weight", V: 1.0, MaxTrials: 300, Seed: 11},
		Resyn: ResynSpec{TargetYield: 0.95, MaxIters: 8, TopK: 2},
	}
}

// TestResynJob runs a kind "resyn" job end to end: the result carries
// the loop report and a parseable hardened netlist, the recorded
// iterations stream through the job snapshot, and an identical
// resubmission is a cache hit with the same outcome.
func TestResynJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	job, err := m.Submit(resynRequest())
	if err != nil {
		t.Fatal(err)
	}
	done, err := m.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("state = %s (%s)", done.State, done.Error)
	}
	rep := done.Result.Resyn
	if rep == nil || len(rep.Iterations) == 0 {
		t.Fatalf("missing resyn report: %+v", done.Result)
	}
	if rep.FinalYield < rep.InitialYield {
		t.Fatalf("yield regressed: %.3f → %.3f", rep.InitialYield, rep.FinalYield)
	}
	tn, err := core.ParseTLNString(done.Result.TLN)
	if err != nil {
		t.Fatalf("hardened tln does not parse: %v", err)
	}
	if tn.Area() != rep.FinalArea {
		t.Fatalf("tln area %d != reported final area %d", tn.Area(), rep.FinalArea)
	}
	// The per-iteration progress must have streamed into the snapshot.
	if done.Progress == nil || len(done.Progress.Iterations) != len(rep.Iterations) {
		t.Fatalf("progress = %+v, want %d iterations", done.Progress, len(rep.Iterations))
	}
	if done.Result.Stages.Analyze <= 0 {
		t.Fatalf("resyn stage not timed: %+v", done.Result.Stages)
	}

	again, err := m.Submit(resynRequest())
	if err != nil {
		t.Fatal(err)
	}
	done2, err := m.Wait(context.Background(), again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done2.State != StateDone || !done2.Result.CacheHit {
		t.Fatalf("identical resyn job should be a cache hit: %+v", done2)
	}
	if done2.Result.Resyn.FinalYield != rep.FinalYield || done2.Result.TLN != done.Result.TLN {
		t.Fatal("cached resyn result differs")
	}

	snap := m.MetricsSnapshot()
	if snap["resyn_iterations"] == 0 {
		t.Fatalf("resyn_iterations not counted: %v", snap)
	}
}

// TestResynJobHTTP drives a resyn job over the v1 wire: kind-tagged
// submission, progress visible via GET /v1/jobs/{id}, hardened netlist
// via /tln.
func TestResynJobHTTP(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, PollInterval: 2 * time.Millisecond}
	ctx := context.Background()

	job, err := c.SubmitResyn(ctx, ResynJobSpec{
		SynthSpec: SynthSpec{BLIF: testBlif},
		Yield:     YieldSpec{Model: "weight", V: 1.0, MaxTrials: 300, Seed: 11},
		Resyn:     ResynSpec{TargetYield: 0.95, MaxIters: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawProgress bool
	done, err := c.Wait(ctx, job.ID, func(j Job) {
		if j.Progress != nil && len(j.Progress.Iterations) > 0 {
			sawProgress = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("state = %s (%s)", done.State, done.Error)
	}
	if !sawProgress {
		t.Fatal("no poll ever observed resyn iterations in the job snapshot")
	}
	if done.Result == nil || done.Result.Resyn == nil {
		t.Fatalf("missing resyn result: %+v", done.Result)
	}
	tln, err := c.TLN(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.ParseTLNString(tln); err != nil {
		t.Fatalf("served tln does not parse: %v", err)
	}
}

// TestResynValidation rejects malformed loop knobs and keeps resyn
// digests distinct from yield digests over the same netlist.
func TestResynValidation(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	bad := []Request{
		{BLIF: testBlif, Kind: "resyn", Resyn: ResynSpec{TopK: -1}},
		{BLIF: testBlif, Kind: "resyn", Resyn: ResynSpec{TargetYield: 1.5}},
		{BLIF: testBlif, Kind: "resyn", Resyn: ResynSpec{MaxDeltaOn: 1}, Options: core.Options{Fanin: 3, DeltaOn: 2}},
		{BLIF: testBlif, Kind: "resyn", Yield: YieldSpec{Model: "cosmic-ray"}},
	}
	for i, req := range bad {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}

	yield := Request{BLIF: testBlif, Kind: "yield"}
	if err := yield.Normalize(); err != nil {
		t.Fatal(err)
	}
	res := Request{BLIF: testBlif, Kind: "resyn"}
	if err := res.Normalize(); err != nil {
		t.Fatal(err)
	}
	dy, err := Digest(yield)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := Digest(res)
	if err != nil {
		t.Fatal(err)
	}
	if dy == dr {
		t.Fatal("resyn job shares a digest with a yield job")
	}
	tweaked := res
	tweaked.Resyn.TargetYield = 0.5
	dt, err := Digest(tweaked)
	if err != nil {
		t.Fatal(err)
	}
	if dt == dr {
		t.Fatal("resyn knobs must change the digest")
	}
}
