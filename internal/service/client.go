package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client is a minimal HTTP client for a telsd daemon, used by the
// cmd/tels -server round-trip mode, cmd/telsim sweep, and tests. It
// speaks the versioned /v1/ API.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8455".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval is Wait's initial poll spacing (default 50 ms); each
	// subsequent poll backs off exponentially toward PollMaxInterval.
	PollInterval time.Duration
	// PollMaxInterval caps the backed-off poll spacing (default 1 s).
	PollMaxInterval time.Duration
}

// StatusError is a decoded API error envelope; errors.As against it
// gives callers the machine-readable code.
type StatusError struct {
	StatusCode int
	Code       string
	Message    string
}

func (e *StatusError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("service: server returned %d (%s): %s", e.StatusCode, e.Code, e.Message)
	}
	return fmt.Sprintf("service: server returned %d: %s", e.StatusCode, e.Message)
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// SubmitEnvelope posts a kind-tagged v1 submission and returns the
// accepted job.
func (c *Client) SubmitEnvelope(ctx context.Context, env SubmitEnvelope) (Job, error) {
	body, err := json.Marshal(env)
	if err != nil {
		return Job{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/jobs"), bytes.NewReader(body))
	if err != nil {
		return Job{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	var job Job
	if err := c.doJSON(req, http.StatusAccepted, &job); err != nil {
		return Job{}, err
	}
	return job, nil
}

// SubmitSynth posts a plain synthesis job.
func (c *Client) SubmitSynth(ctx context.Context, spec SynthSpec) (Job, error) {
	return c.submitSpec(ctx, "synth", spec)
}

// SubmitYield posts a yield-analysis job.
func (c *Client) SubmitYield(ctx context.Context, spec YieldJobSpec) (Job, error) {
	return c.submitSpec(ctx, "yield", spec)
}

// SubmitSweep posts a sweep job.
func (c *Client) SubmitSweep(ctx context.Context, spec SweepJobSpec) (Job, error) {
	return c.submitSpec(ctx, "sweep", spec)
}

// SubmitResyn posts a selective re-synthesis job.
func (c *Client) SubmitResyn(ctx context.Context, spec ResynJobSpec) (Job, error) {
	return c.submitSpec(ctx, "resyn", spec)
}

func (c *Client) submitSpec(ctx context.Context, kind string, spec any) (Job, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return Job{}, err
	}
	return c.SubmitEnvelope(ctx, SubmitEnvelope{Kind: kind, Spec: raw})
}

// JobFilter narrows ListJobs. Zero fields don't filter; Limit keeps the
// newest N matches.
type JobFilter struct {
	State State
	Kind  string
	Limit int
}

// JobList is the job-list response: the (possibly limited) matching
// jobs plus the total match count before the limit.
type JobList struct {
	Jobs  []Job `json:"jobs"`
	Total int   `json:"total"`
}

// ListJobs fetches the retained jobs matching the filter.
func (c *Client) ListJobs(ctx context.Context, f JobFilter) (JobList, error) {
	q := url.Values{}
	if f.State != "" {
		q.Set("state", string(f.State))
	}
	if f.Kind != "" {
		q.Set("kind", f.Kind)
	}
	if f.Limit > 0 {
		q.Set("limit", strconv.Itoa(f.Limit))
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return JobList{}, err
	}
	var out JobList
	if err := c.doJSON(req, http.StatusOK, &out); err != nil {
		return JobList{}, err
	}
	return out, nil
}

// Job fetches the current snapshot of a job (sweep jobs include their
// partial progress).
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id), nil)
	if err != nil {
		return Job{}, err
	}
	var job Job
	if err := c.doJSON(req, http.StatusOK, &job); err != nil {
		return Job{}, err
	}
	return job, nil
}

// WaitDone polls until the job reaches a terminal state or ctx expires.
func (c *Client) WaitDone(ctx context.Context, id string) (Job, error) {
	return c.Wait(ctx, id, nil)
}

// Wait polls until the job reaches a terminal state or ctx expires,
// invoking observe (if non-nil) on every snapshot along the way. Polls
// start at PollInterval and back off exponentially (with jitter, so a
// herd of waiters desynchronizes) up to PollMaxInterval: short jobs are
// noticed quickly, long sweeps don't hammer the daemon, and ctx
// cancellation is honored between polls.
func (c *Client) Wait(ctx context.Context, id string, observe func(Job)) (Job, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	maxInterval := c.PollMaxInterval
	if maxInterval <= 0 {
		maxInterval = time.Second
	}
	if maxInterval < interval {
		maxInterval = interval
	}
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			return Job{}, err
		}
		if observe != nil {
			observe(job)
		}
		if job.State.Terminal() {
			return job, nil
		}
		// ±20% jitter around the current interval.
		sleep := time.Duration(float64(interval) * (0.8 + 0.4*rand.Float64()))
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return Job{}, ctx.Err()
		}
		interval *= 2
		if interval > maxInterval {
			interval = maxInterval
		}
	}
}

// TLN fetches the finished job's threshold netlist as text.
func (c *Client) TLN(ctx context.Context, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/tln"), nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp.StatusCode, body)
	}
	return string(body), nil
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/jobs/"+id+"/cancel"), nil)
	if err != nil {
		return err
	}
	return c.doJSON(req, http.StatusOK, &struct{}{})
}

// Metrics fetches the daemon's counter snapshot.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/metrics"), nil)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64)
	if err := c.doJSON(req, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Client) doJSON(req *http.Request, wantStatus int, out any) error {
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		return apiError(resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}

func apiError(status int, body []byte) error {
	// v1 envelope: {"error": {"code", "message"}}.
	var v1 struct {
		Error APIError `json:"error"`
	}
	if json.Unmarshal(body, &v1) == nil && v1.Error.Message != "" {
		return &StatusError{StatusCode: status, Code: v1.Error.Code, Message: v1.Error.Message}
	}
	return &StatusError{StatusCode: status, Message: strings.TrimSpace(string(body))}
}
