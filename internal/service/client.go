package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client is a minimal HTTP client for a telsd daemon, used by the
// cmd/tels -server round-trip mode, cmd/telsim sweep, and tests. It
// speaks the versioned /v1/ API.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8455".
	BaseURL string
	// APIKey, when set, is sent as "Authorization: Bearer <key>" on
	// every request. Leave empty against an open (keyless) daemon.
	APIKey string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval is Wait's initial poll spacing (default 50 ms); each
	// subsequent poll backs off exponentially toward PollMaxInterval.
	PollInterval time.Duration
	// PollMaxInterval caps the backed-off poll spacing (default 1 s).
	PollMaxInterval time.Duration
}

// StatusError is a decoded API error envelope; errors.As against it
// gives callers the machine-readable code, and errors.Is matches a
// template carrying just a Code (see the Is method).
type StatusError struct {
	StatusCode int
	Code       string
	Message    string
	// RetryAfter is the server's Retry-After suggestion (429
	// quota_exceeded and 503 overloaded responses); zero when absent.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("service: server returned %d (%s): %s", e.StatusCode, e.Code, e.Message)
	}
	return fmt.Sprintf("service: server returned %d: %s", e.StatusCode, e.Message)
}

// Is lets errors.Is match on the machine-readable fields alone:
// errors.Is(err, &StatusError{Code: CodeQuotaExceeded}) is true for any
// quota error regardless of its message. A zero field in the target
// matches anything.
func (e *StatusError) Is(target error) bool {
	t, ok := target.(*StatusError)
	if !ok {
		return false
	}
	return (t.StatusCode == 0 || t.StatusCode == e.StatusCode) &&
		(t.Code == "" || t.Code == e.Code)
}

// errHasCode reports whether err carries the given envelope code.
func errHasCode(err error, code string) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == code
}

// IsQuotaExceeded reports whether err is a 429 quota_exceeded rejection
// (the tenant is over its admission quota; retry after se.RetryAfter).
func IsQuotaExceeded(err error) bool { return errHasCode(err, CodeQuotaExceeded) }

// IsUnauthorized reports whether err is a 401 (no credentials sent).
func IsUnauthorized(err error) bool { return errHasCode(err, CodeUnauthorized) }

// IsForbidden reports whether err is a 403 (wrong or insufficient key).
func IsForbidden(err error) bool { return errHasCode(err, CodeForbidden) }

// IsOverloaded reports whether err is a 503 overloaded rejection.
func IsOverloaded(err error) bool { return errHasCode(err, CodeOverloaded) }

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// authorize attaches the client's API key, if any.
func (c *Client) authorize(req *http.Request) {
	if c.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
}

// SubmitEnvelope posts a kind-tagged v1 submission and returns the
// accepted job.
func (c *Client) SubmitEnvelope(ctx context.Context, env SubmitEnvelope) (Job, error) {
	body, err := json.Marshal(env)
	if err != nil {
		return Job{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/jobs"), bytes.NewReader(body))
	if err != nil {
		return Job{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	var job Job
	if err := c.doJSON(req, http.StatusAccepted, &job); err != nil {
		return Job{}, err
	}
	return job, nil
}

// SubmitSynth posts a plain synthesis job.
func (c *Client) SubmitSynth(ctx context.Context, spec SynthSpec) (Job, error) {
	return c.submitSpec(ctx, "synth", spec)
}

// SubmitYield posts a yield-analysis job.
func (c *Client) SubmitYield(ctx context.Context, spec YieldJobSpec) (Job, error) {
	return c.submitSpec(ctx, "yield", spec)
}

// SubmitSweep posts a sweep job.
func (c *Client) SubmitSweep(ctx context.Context, spec SweepJobSpec) (Job, error) {
	return c.submitSpec(ctx, "sweep", spec)
}

// SubmitResyn posts a selective re-synthesis job.
func (c *Client) SubmitResyn(ctx context.Context, spec ResynJobSpec) (Job, error) {
	return c.submitSpec(ctx, "resyn", spec)
}

func (c *Client) submitSpec(ctx context.Context, kind string, spec any) (Job, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return Job{}, err
	}
	return c.SubmitEnvelope(ctx, SubmitEnvelope{Kind: kind, Spec: raw})
}

// JobFilter narrows ListJobs. Zero fields don't filter; Limit keeps the
// newest N matches. Tenant filters by owner (admin keys only; tenant
// keys are always scoped to their own jobs server-side).
type JobFilter struct {
	State  State
	Kind   string
	Tenant string
	Limit  int
}

// JobList is the job-list response: the (possibly limited) matching
// jobs plus the total match count before the limit.
type JobList struct {
	Jobs  []Job `json:"jobs"`
	Total int   `json:"total"`
}

// ListJobs fetches the retained jobs matching the filter.
func (c *Client) ListJobs(ctx context.Context, f JobFilter) (JobList, error) {
	q := url.Values{}
	if f.State != "" {
		q.Set("state", string(f.State))
	}
	if f.Kind != "" {
		q.Set("kind", f.Kind)
	}
	if f.Tenant != "" {
		q.Set("tenant", f.Tenant)
	}
	if f.Limit > 0 {
		q.Set("limit", strconv.Itoa(f.Limit))
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return JobList{}, err
	}
	var out JobList
	if err := c.doJSON(req, http.StatusOK, &out); err != nil {
		return JobList{}, err
	}
	return out, nil
}

// Job fetches the current snapshot of a job (sweep jobs include their
// partial progress).
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id), nil)
	if err != nil {
		return Job{}, err
	}
	var job Job
	if err := c.doJSON(req, http.StatusOK, &job); err != nil {
		return Job{}, err
	}
	return job, nil
}

// WaitDone polls until the job reaches a terminal state or ctx expires.
func (c *Client) WaitDone(ctx context.Context, id string) (Job, error) {
	return c.Wait(ctx, id, nil)
}

// Wait polls until the job reaches a terminal state or ctx expires,
// invoking observe (if non-nil) on every snapshot along the way. Polls
// start at PollInterval and back off exponentially (with jitter, so a
// herd of waiters desynchronizes) up to PollMaxInterval: short jobs are
// noticed quickly, long sweeps don't hammer the daemon, and ctx
// cancellation is honored between polls.
func (c *Client) Wait(ctx context.Context, id string, observe func(Job)) (Job, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	maxInterval := c.PollMaxInterval
	if maxInterval <= 0 {
		maxInterval = time.Second
	}
	if maxInterval < interval {
		maxInterval = interval
	}
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			// Cancellation mid-poll surfaces as a transport error wrapping
			// the context sentinel; normalize it so callers always see
			// ctx.Err() wherever the cancel landed.
			if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
				return Job{}, cerr
			}
			// The daemon asked us to come back later (e.g. a 503 during a
			// restart's WAL replay): honor Retry-After instead of failing
			// the wait. Other errors — not-found, auth — stay fatal.
			var se *StatusError
			if errors.As(err, &se) && se.RetryAfter > 0 &&
				(se.StatusCode == http.StatusServiceUnavailable || se.StatusCode == http.StatusTooManyRequests) {
				select {
				case <-time.After(se.RetryAfter):
					continue
				case <-ctx.Done():
					return Job{}, ctx.Err()
				}
			}
			return Job{}, err
		}
		if observe != nil {
			observe(job)
		}
		if job.State.Terminal() {
			return job, nil
		}
		// ±20% jitter around the current interval.
		sleep := time.Duration(float64(interval) * (0.8 + 0.4*rand.Float64()))
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return Job{}, ctx.Err()
		}
		interval *= 2
		if interval > maxInterval {
			interval = maxInterval
		}
	}
}

// Watch follows a job over the SSE stream (/v1/jobs/{id}/events),
// invoking observe (if non-nil) on every event — the initial snapshot,
// each state transition, and every sweep-point or resyn-iteration
// progress increment — and returns the terminal job. If the stream
// cannot be established or drops mid-job (a proxy that buffers SSE, a
// subscriber overrun on the daemon), Watch degrades to the polling Wait
// loop, so callers always get the terminal snapshot.
func (c *Client) Watch(ctx context.Context, id string, observe func(JobEvent)) (Job, error) {
	job, done, err := c.watchStream(ctx, id, observe)
	if done {
		return job, err
	}
	if ctx.Err() != nil {
		return Job{}, ctx.Err()
	}
	return c.Wait(ctx, id, func(j Job) {
		if observe != nil {
			observe(JobEvent{Type: eventSnapshot, Job: &j})
		}
	})
}

// watchStream runs one SSE connection. done=false means "fall back to
// polling" (stream unavailable or dropped before the end event).
func (c *Client) watchStream(ctx context.Context, id string, observe func(JobEvent)) (Job, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/events"), nil)
	if err != nil {
		return Job{}, false, nil
	}
	req.Header.Set("Accept", "text/event-stream")
	c.authorize(req)
	resp, err := c.http().Do(req)
	if err != nil {
		return Job{}, false, nil
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusUnauthorized || resp.StatusCode == http.StatusForbidden {
		// Fatal answers polling would only repeat — surface them now.
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return Job{}, true, apiError(resp, body)
	}
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		return Job{}, false, nil
	}

	var last Job
	haveLast := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue // id:/event: lines and blank separators
		}
		var ev JobEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return Job{}, false, nil
		}
		if observe != nil {
			observe(ev)
		}
		if ev.Job != nil {
			last, haveLast = *ev.Job, true
		}
		if ev.Type == eventEnd && haveLast {
			return last, true, nil
		}
	}
	if haveLast && last.State.Terminal() {
		// The stream closed right after delivering a terminal snapshot
		// (e.g. subscribing to an already-finished job).
		return last, true, nil
	}
	return Job{}, false, nil
}

// TLN fetches the finished job's threshold netlist as text.
func (c *Client) TLN(ctx context.Context, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/tln"), nil)
	if err != nil {
		return "", err
	}
	c.authorize(req)
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp, body)
	}
	return string(body), nil
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/jobs/"+id+"/cancel"), nil)
	if err != nil {
		return err
	}
	return c.doJSON(req, http.StatusOK, &struct{}{})
}

// Metrics fetches the daemon's counter snapshot.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/metrics"), nil)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64)
	if err := c.doJSON(req, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Client) doJSON(req *http.Request, wantStatus int, out any) error {
	c.authorize(req)
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		return apiError(resp, body)
	}
	return json.Unmarshal(body, out)
}

func apiError(resp *http.Response, body []byte) error {
	se := &StatusError{StatusCode: resp.StatusCode}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	// v1 envelope: {"error": {"code", "message"}}.
	var v1 struct {
		Error APIError `json:"error"`
	}
	if json.Unmarshal(body, &v1) == nil && v1.Error.Message != "" {
		se.Code, se.Message = v1.Error.Code, v1.Error.Message
		return se
	}
	se.Message = strings.TrimSpace(string(body))
	return se
}
