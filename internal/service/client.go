package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is a minimal HTTP client for a telsd daemon, used by the
// cmd/tels -server round-trip mode and by tests.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8455".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval paces WaitDone (default 50 ms).
	PollInterval time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// Submit posts a synthesis request and returns the accepted job.
func (c *Client) Submit(ctx context.Context, sr SubmitRequest) (Job, error) {
	body, err := json.Marshal(sr)
	if err != nil {
		return Job{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/synth"), bytes.NewReader(body))
	if err != nil {
		return Job{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	var job Job
	if err := c.doJSON(req, http.StatusAccepted, &job); err != nil {
		return Job{}, err
	}
	return job, nil
}

// Job fetches the current snapshot of a job.
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/jobs/"+id), nil)
	if err != nil {
		return Job{}, err
	}
	var job Job
	if err := c.doJSON(req, http.StatusOK, &job); err != nil {
		return Job{}, err
	}
	return job, nil
}

// WaitDone polls until the job reaches a terminal state or ctx expires.
func (c *Client) WaitDone(ctx context.Context, id string) (Job, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			return Job{}, err
		}
		if job.State.Terminal() {
			return job, nil
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return Job{}, ctx.Err()
		}
	}
}

// TLN fetches the finished job's threshold netlist as text.
func (c *Client) TLN(ctx context.Context, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/jobs/"+id+"/tln"), nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp.StatusCode, body)
	}
	return string(body), nil
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/jobs/"+id+"/cancel"), nil)
	if err != nil {
		return err
	}
	return c.doJSON(req, http.StatusOK, &struct{}{})
}

// Metrics fetches the daemon's counter snapshot.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/metrics"), nil)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64)
	if err := c.doJSON(req, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Client) doJSON(req *http.Request, wantStatus int, out any) error {
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != wantStatus {
		return apiError(resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}

func apiError(status int, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("service: server returned %d: %s", status, e.Error)
	}
	return fmt.Errorf("service: server returned %d: %s", status, strings.TrimSpace(string(body)))
}
