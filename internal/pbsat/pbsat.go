// Package pbsat implements a small CDCL satisfiability solver with native
// linear pseudo-Boolean constraints, in the style of Pueblo/Sat4j's hybrid
// engines: constraints of the form Σ aᵢ·ℓᵢ ≥ b (aᵢ > 0, ℓᵢ literals) are
// propagated directly with an incremental watched-sum (counter) scheme,
// while conflict analysis derives ordinary clauses from PB reasons
// (1-UIP over greedily reduced reason sets), so the learned database is
// plain clauses under two-watched-literal propagation. Branching is
// activity-driven (VSIDS with deterministic index tie-breaks), phases are
// saved, and restarts follow the Luby sequence.
//
// The solver is deliberately deterministic: identical constraint systems
// always produce identical models, which the threshold-check portfolio in
// internal/core relies on for bit-identical synthesis output.
//
// Monotone strengthening is supported natively: AddLE returns a handle
// whose bound may only be tightened, which keeps every learned clause
// sound across re-solves. This is the engine behind the objective-bounding
// loop (minimize Σwᵢ+T by iteratively lowering an upper-bound constraint)
// and the lexicographic weight minimization used by the portfolio.
package pbsat

import (
	"context"
	"fmt"
	"sort"
)

// Lit is a literal: variable index v with sign, encoded as 2v (positive)
// or 2v+1 (negated).
type Lit int32

// MkLit builds the literal of variable v, negated when neg is true.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 != 0 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("¬x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

// Term is one addend of a pseudo-Boolean constraint: Coef·Lit with the
// literal valued 1 when true.
type Term struct {
	Coef int64
	Lit  Lit
}

// Status reports the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota // budget exhausted or context cancelled
	Sat                   // satisfying assignment found (see Value)
	Unsat                 // proven unsatisfiable
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	case Unknown:
		return "unknown"
	}
	return "invalid"
}

// DefaultMaxConflicts bounds one Solve call when Solver.MaxConflicts is
// zero. Threshold-check systems are tiny; the ceiling only guards against
// pathological instances, mirroring the ILP's §V-E node budget.
const DefaultMaxConflicts = 1 << 20

const (
	lUndef int8 = 0
	lTrue  int8 = 1
	lFalse int8 = -1
)

// reason encoding: -1 = decision/none, even = clause index*2,
// odd = pb index*2+1.
const reasonNone int32 = -1

func clauseReason(i int) int32 { return int32(i << 1) }
func pbReasonRef(i int) int32  { return int32(i<<1 | 1) }

type clause struct {
	lits []Lit
	act  float64
	// learned clauses are eligible for database reduction
	learned bool
}

type pbConstraint struct {
	terms []Term // positive coefficients, distinct vars, sorted by Coef desc
	bound int64  // Σ terms ≥ bound
	slack int64  // Σ_{lit not false} Coef − bound, maintained incrementally
	total int64  // Σ Coef (fixed; used by Tighten to recompute)
}

type pbOcc struct {
	idx  int32 // constraint index
	coef int64
}

// PBRef identifies a tightenable constraint added with AddLE.
type PBRef struct {
	idx   int32
	total int64 // Σ coefs of the original LE terms
}

// Solver is a CDCL solver over clauses and linear PB constraints.
type Solver struct {
	// MaxConflicts bounds the conflicts of one Solve call; zero selects
	// DefaultMaxConflicts.
	MaxConflicts int64

	nVars    int
	assigns  []int8 // per var
	phase    []bool // saved phase (true = assign true first)
	level    []int32
	reason   []int32
	trailPos []int32
	trail    []Lit
	trailLim []int
	qhead    int

	clauses []*clause
	watches [][]int32 // per literal l: clause indices watching l

	pbs   []*pbConstraint
	pbOcc [][]pbOcc // per literal l: PB constraints where assigning l falsifies a term

	activity []float64
	varInc   float64
	claInc   float64

	ok        bool
	conflicts int64
	seen      []bool // scratch for analyze

	model []int8 // assignment snapshot of the last Sat answer
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{ok: true, varInc: 1, claInc: 1}
}

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := s.nVars
	s.nVars++
	s.assigns = append(s.assigns, lUndef)
	s.phase = append(s.phase, false)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, reasonNone)
	s.trailPos = append(s.trailPos, -1)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.pbOcc = append(s.pbOcc, nil, nil)
	return v
}

// SeedActivity initializes a variable's branching activity. Callers use
// it to impose a structural branching order — most-significant bits first
// in arithmetic bit-blast encodings, where uninformed branching makes
// clause learning degenerate — and conflict-driven bumping adapts from
// that starting point.
func (s *Solver) SeedActivity(v int, act float64) {
	s.activity[v] = act
}

func (s *Solver) value(l Lit) int8 {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() {
		return -v
	}
	return v
}

// Value reports the last Sat model's value of variable v.
func (s *Solver) Value(v int) bool {
	return s.model != nil && s.model[v] == lTrue
}

// Okay reports whether the system is still possibly satisfiable (false
// once a top-level conflict proved it unsatisfiable).
func (s *Solver) Okay() bool { return s.ok }

// Conflicts returns the total conflicts across all Solve calls — callers
// running a descend loop use it to spread one budget over many solves.
func (s *Solver) Conflicts() int64 { return s.conflicts }

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

// AddClause adds a disjunction of literals.
func (s *Solver) AddClause(lits ...Lit) {
	if !s.ok {
		return
	}
	s.backtrackTo(0)
	// Remove duplicates and satisfied/false literals at level 0.
	out := lits[:0:0]
	for _, l := range lits {
		switch s.value(l) {
		case lTrue:
			return // already satisfied forever (level 0)
		case lFalse:
			continue
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
			}
			if o == l.Not() {
				return // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
	case 1:
		if !s.enqueue(out[0], reasonNone) {
			s.ok = false
		}
	default:
		s.attachClause(&clause{lits: out})
	}
}

func (s *Solver) attachClause(c *clause) int {
	idx := len(s.clauses)
	s.clauses = append(s.clauses, c)
	s.watches[c.lits[0]] = append(s.watches[c.lits[0]], int32(idx))
	s.watches[c.lits[1]] = append(s.watches[c.lits[1]], int32(idx))
	return idx
}

// AddGE adds the constraint Σ terms ≥ bound. Terms may repeat variables or
// carry nonpositive coefficients; the constraint is normalized to positive
// coefficients over distinct variables first.
func (s *Solver) AddGE(terms []Term, bound int64) {
	s.addPB(terms, bound)
}

// AddLE adds Σ terms ≤ k (terms must have positive coefficients over
// distinct variables) and returns a handle whose bound may later be
// tightened downward with Tighten. Internally the constraint is
// Σ aᵢ·¬ℓᵢ ≥ Σa − k; it is materialized even when trivially true at k so
// that Tighten always has a constraint to strengthen.
func (s *Solver) AddLE(terms []Term, k int64) PBRef {
	if !s.ok {
		return PBRef{idx: -1}
	}
	s.backtrackTo(0)
	var total int64
	neg := make([]Term, len(terms))
	for i, t := range terms {
		if t.Coef <= 0 {
			panic("pbsat: AddLE term with nonpositive coefficient")
		}
		total += t.Coef
		neg[i] = Term{Coef: t.Coef, Lit: t.Lit.Not()}
	}
	sort.Slice(neg, func(i, j int) bool {
		if neg[i].Coef != neg[j].Coef {
			return neg[i].Coef > neg[j].Coef
		}
		return neg[i].Lit < neg[j].Lit
	})
	bound := total - k // may be ≤ 0: dormant until tightened
	c := &pbConstraint{terms: neg, bound: bound, total: total}
	idx := len(s.pbs)
	s.pbs = append(s.pbs, c)
	slack := -bound
	for _, t := range neg {
		if s.value(t.Lit) != lFalse {
			slack += t.Coef
		}
		fl := t.Lit.Not()
		s.pbOcc[fl] = append(s.pbOcc[fl], pbOcc{idx: int32(idx), coef: t.Coef})
	}
	c.slack = slack
	if slack < 0 {
		s.ok = false
	} else if !s.propagatePB(idx) {
		s.ok = false
	}
	return PBRef{idx: int32(idx), total: total}
}

// Tighten lowers the LE constraint's right-hand side to k (which must not
// exceed the current bound). The solver backtracks to the root level; any
// clause learned before the call remains sound because tightening only
// strengthens the system.
func (s *Solver) Tighten(ref PBRef, k int64) {
	if !s.ok {
		return
	}
	if ref.idx < 0 {
		// Constraint was trivially true at add time and never materialized;
		// re-add it at the new bound.
		panic("pbsat: Tighten on unmaterialized constraint")
	}
	s.backtrackTo(0)
	c := s.pbs[ref.idx]
	nb := ref.total - k
	if nb < c.bound {
		panic("pbsat: Tighten must strengthen the bound")
	}
	c.bound = nb
	// Recompute slack against the level-0 assignment and re-propagate.
	slack := -nb
	for _, t := range c.terms {
		if s.value(t.Lit) != lFalse {
			slack += t.Coef
		}
	}
	c.slack = slack
	if slack < 0 {
		s.ok = false
		return
	}
	if !s.propagatePB(int(ref.idx)) {
		s.ok = false
	}
}

// addPB normalizes and installs a PB constraint, returning its index or -1
// when it is trivially satisfied. A trivially false constraint marks the
// solver unsatisfiable.
func (s *Solver) addPB(terms []Term, bound int64) int {
	if !s.ok {
		return -1
	}
	s.backtrackTo(0)
	// Normalize: fold coefficients per variable (a·x − b·¬x forms).
	perVar := make(map[int]int64, len(terms))
	for _, t := range terms {
		if t.Coef == 0 {
			continue
		}
		coef := t.Coef
		if t.Lit.Sign() {
			// a·¬x = a − a·x
			bound -= coef
			coef = -coef
		}
		perVar[t.Lit.Var()] += coef
	}
	norm := make([]Term, 0, len(perVar))
	for v, a := range perVar {
		switch {
		case a > 0:
			norm = append(norm, Term{Coef: a, Lit: MkLit(v, false)})
		case a < 0:
			// −a·x = −a·(1−¬x): move to the negated literal.
			bound += -a
			norm = append(norm, Term{Coef: -a, Lit: MkLit(v, true)})
		}
	}
	if bound <= 0 {
		return -1 // trivially true
	}
	// Saturate coefficients at the bound and apply the level-0 assignment.
	var total int64
	for i := range norm {
		if norm[i].Coef > bound {
			norm[i].Coef = bound
		}
		total += norm[i].Coef
	}
	if total < bound {
		s.ok = false
		return -1
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i].Coef != norm[j].Coef {
			return norm[i].Coef > norm[j].Coef
		}
		return norm[i].Lit < norm[j].Lit
	})
	c := &pbConstraint{terms: norm, bound: bound, total: total}
	idx := len(s.pbs)
	s.pbs = append(s.pbs, c)
	slack := -bound
	for _, t := range norm {
		if s.value(t.Lit) != lFalse {
			slack += t.Coef
		}
		// Assigning ¬t.Lit true falsifies the term.
		fl := t.Lit.Not()
		s.pbOcc[fl] = append(s.pbOcc[fl], pbOcc{idx: int32(idx), coef: t.Coef})
	}
	c.slack = slack
	if slack < 0 {
		s.ok = false
		return idx
	}
	if !s.propagatePB(idx) {
		s.ok = false
	}
	return idx
}

// enqueue assigns a literal true with the given reason. Returns false on
// an immediate value conflict.
func (s *Solver) enqueue(l Lit, from int32) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trailPos[v] = int32(len(s.trail))
	s.trail = append(s.trail, l)
	// Update PB slacks eagerly at assignment time, mirroring the
	// unconditional restore in backtrackTo — conflict detection and
	// propagation happen later when the literal is processed off the
	// queue, but the counters must always reflect the full trail (the
	// trail can hold enqueued-but-unprocessed literals at a conflict).
	for _, occ := range s.pbOcc[l] {
		s.pbs[occ.idx].slack -= occ.coef
	}
	return true
}

// propagate processes the assignment queue; it returns the reason
// reference of a conflicting constraint, or reasonNone.
func (s *Solver) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++

		// PB constraints containing a term falsified by p (their slacks
		// were already decremented when p was enqueued).
		for _, occ := range s.pbOcc[p] {
			c := s.pbs[occ.idx]
			if c.slack < 0 {
				return pbReasonRef(int(occ.idx))
			}
			if !s.propagatePB(int(occ.idx)) {
				return pbReasonRef(int(occ.idx))
			}
		}

		// Clauses watching ¬p (p became true, so ¬p became false).
		np := p.Not()
		ws := s.watches[np]
		out := ws[:0]
		var conflict int32 = reasonNone
		for wi := 0; wi < len(ws); wi++ {
			ci := ws[wi]
			c := s.clauses[ci]
			// Ensure the false literal is at position 1.
			if c.lits[0] == np {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				out = append(out, ci)
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1]] = append(s.watches[c.lits[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Unit or conflicting.
			out = append(out, ci)
			if !s.enqueue(c.lits[0], clauseReason(int(ci))) {
				conflict = clauseReason(int(ci))
				// keep remaining watches intact
				out = append(out, ws[wi+1:]...)
				break
			}
		}
		s.watches[np] = out
		if conflict != reasonNone {
			return conflict
		}
	}
	return reasonNone
}

// propagatePB enqueues every literal forced by the constraint's current
// slack. Terms are sorted by descending coefficient, so the scan stops at
// the first coefficient within slack. Returns false on a value conflict.
func (s *Solver) propagatePB(ci int) bool {
	c := s.pbs[ci]
	for _, t := range c.terms {
		if t.Coef <= c.slack {
			break
		}
		if s.value(t.Lit) == lUndef {
			if !s.enqueue(t.Lit, pbReasonRef(ci)) {
				return false
			}
		}
	}
	return true
}

// pbReasonLits materializes a clause reason from a PB constraint: the
// propagated literal (litUndefSentinel for a conflict) together with
// falsified literals assigned before it, greedily taking large
// coefficients first so the clause stays short.
func (s *Solver) pbReasonLits(ci int, propagated Lit, isConflict bool, out []Lit) []Lit {
	c := s.pbs[ci]
	limit := int32(len(s.trail))
	var need int64 // falsified coefficient mass required for the implication
	if isConflict {
		// Need Σ_{remaining} < bound: remove > total − bound.
		need = c.total - c.bound
	} else {
		limit = s.trailPos[propagated.Var()]
		// Need Σ_{remaining} − bound < coef(propagated).
		var pc int64
		for _, t := range c.terms {
			if t.Lit.Var() == propagated.Var() {
				pc = t.Coef
				break
			}
		}
		need = c.total - c.bound - pc
		out = append(out, propagated)
	}
	// Falsified literals assigned before the propagation, largest first
	// (terms are already sorted by coefficient).
	var removed int64
	for _, t := range c.terms {
		if removed > need {
			break
		}
		if s.value(t.Lit) == lFalse && s.trailPos[t.Lit.Var()] < limit {
			removed += t.Coef
			out = append(out, t.Lit)
		}
	}
	return out
}

// reasonLits returns the clause form of a reason reference. For clause
// reasons the clause's literals are returned directly.
func (s *Solver) reasonLits(ref int32, propagated Lit, isConflict bool, scratch []Lit) []Lit {
	if ref&1 == 1 {
		return s.pbReasonLits(int(ref>>1), propagated, isConflict, scratch)
	}
	return s.clauses[ref>>1].lits
}

// analyze derives a 1-UIP learned clause from the conflict and returns it
// with the backjump level. learnt[0] is the asserting literal.
func (s *Solver) analyze(confl int32) ([]Lit, int32) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	counter := 0
	var p Lit
	first := true
	index := len(s.trail) - 1
	var scratch []Lit

	for {
		var lits []Lit
		if first {
			lits = s.reasonLits(confl, 0, true, scratch[:0])
		} else {
			lits = s.reasonLits(confl, p, false, scratch[:0])
		}
		if confl&1 == 0 && confl >= 0 {
			s.bumpClause(s.clauses[confl>>1])
		}
		for _, q := range lits {
			if !first && q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal to resolve on.
		for !s.seen[s.trail[index].Var()] {
			index--
		}
		p = s.trail[index]
		index--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter <= 0 {
			break
		}
		first = false
		confl = s.reason[v]
	}
	learnt[0] = p.Not()

	// Backjump level: highest level among the other literals.
	var back int32
	maxI := 1
	for i := 1; i < len(learnt); i++ {
		if lv := s.level[learnt[i].Var()]; lv > back {
			back = lv
			maxI = i
		}
	}
	if len(learnt) > 1 {
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	return learnt, back
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e100 {
		for _, cl := range s.clauses {
			cl.act *= 1e-100
		}
		s.claInc *= 1e-100
	}
}

func (s *Solver) backtrackTo(level int32) {
	if s.decisionLevel() <= level {
		return
	}
	limit := s.trailLim[level]
	for i := len(s.trail) - 1; i >= limit; i-- {
		l := s.trail[i]
		v := l.Var()
		// Restore PB slacks for terms this assignment had falsified.
		for _, occ := range s.pbOcc[l] {
			s.pbs[occ.idx].slack += occ.coef
		}
		s.phase[v] = s.assigns[v] == lTrue
		s.assigns[v] = lUndef
		s.reason[v] = reasonNone
		s.trailPos[v] = -1
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:level]
	if s.qhead > limit {
		s.qhead = limit
	}
}

// pickBranch selects the unassigned variable with the highest activity
// (lowest index on ties — deterministic) and its saved phase.
func (s *Solver) pickBranch() (Lit, bool) {
	best := -1
	for v := 0; v < s.nVars; v++ {
		if s.assigns[v] != lUndef {
			continue
		}
		if best < 0 || s.activity[v] > s.activity[best] {
			best = v
		}
	}
	if best < 0 {
		return 0, false
	}
	return MkLit(best, !s.phase[best]), true
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		p := int64(1) << uint(k)
		if i == p-1 {
			return p / 2
		}
		if i < p-1 {
			return luby(i - p/2 + 1)
		}
	}
}

// reduceDB drops the less active half of the learned clauses when the
// database grows past the cap, keeping reason clauses of current
// assignments.
const learnedCap = 16384

func (s *Solver) reduceDB() {
	learned := 0
	for _, c := range s.clauses {
		if c.learned {
			learned++
		}
	}
	if learned <= learnedCap {
		return
	}
	// Median activity of learned clauses.
	acts := make([]float64, 0, learned)
	for _, c := range s.clauses {
		if c.learned {
			acts = append(acts, c.act)
		}
	}
	sort.Float64s(acts)
	median := acts[len(acts)/2]

	locked := make(map[*clause]bool)
	for _, v := range s.trail {
		if r := s.reason[v.Var()]; r >= 0 && r&1 == 0 {
			locked[s.clauses[r>>1]] = true
		}
	}
	keep := make([]*clause, 0, len(s.clauses))
	remap := make([]int32, len(s.clauses))
	for i, c := range s.clauses {
		if !c.learned || c.act >= median || len(c.lits) == 2 || locked[c] {
			remap[i] = int32(len(keep))
			keep = append(keep, c)
		} else {
			remap[i] = -1
		}
	}
	s.clauses = keep
	for l := range s.watches {
		ws := s.watches[l][:0]
		for _, ci := range s.watches[l] {
			if ni := remap[ci]; ni >= 0 {
				ws = append(ws, ni)
			}
		}
		s.watches[l] = ws
	}
	for _, v := range s.trail {
		if r := s.reason[v.Var()]; r >= 0 && r&1 == 0 {
			s.reason[v.Var()] = clauseReason(int(remap[r>>1]))
		}
	}
}

// Solve searches for a satisfying assignment. Sat answers snapshot the
// model (read it with Value); Unsat is a proof for the current constraint
// system; Unknown means the conflict budget or context ran out.
func (s *Solver) Solve(ctx context.Context) Status {
	if !s.ok {
		return Unsat
	}
	budget := s.MaxConflicts
	if budget == 0 {
		budget = DefaultMaxConflicts
	}
	spent := int64(0)
	restart := int64(1)
	restartLimit := 64 * luby(restart)
	sinceRestart := int64(0)
	done := ctx.Done()

	for {
		confl := s.propagate()
		if confl != reasonNone {
			s.conflicts++
			spent++
			sinceRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, back := s.analyze(confl)
			s.backtrackTo(back)
			if len(learnt) == 1 {
				if !s.enqueue(learnt[0], reasonNone) {
					s.ok = false
					return Unsat
				}
			} else {
				c := &clause{lits: learnt, learned: true, act: s.claInc}
				ci := s.attachClause(c)
				if !s.enqueue(learnt[0], clauseReason(ci)) {
					s.ok = false
					return Unsat
				}
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			if spent >= budget {
				s.backtrackTo(0)
				return Unknown
			}
			if spent&255 == 0 && done != nil {
				select {
				case <-done:
					s.backtrackTo(0)
					return Unknown
				default:
				}
			}
			if sinceRestart >= restartLimit {
				restart++
				restartLimit = 64 * luby(restart)
				sinceRestart = 0
				s.backtrackTo(0)
				s.reduceDB()
			}
			continue
		}
		l, any := s.pickBranch()
		if !any {
			// Full assignment: snapshot the model.
			s.model = append(s.model[:0], s.assigns...)
			return Sat
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		if !s.enqueue(l, reasonNone) {
			panic("pbsat: branch literal already assigned")
		}
	}
}
