package pbsat

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func lit(v int) Lit  { return MkLit(v, false) }
func nlit(v int) Lit { return MkLit(v, true) }

func TestLitEncoding(t *testing.T) {
	l := MkLit(3, false)
	if l.Var() != 3 || l.Sign() {
		t.Fatalf("positive literal: var=%d sign=%v", l.Var(), l.Sign())
	}
	n := l.Not()
	if n.Var() != 3 || !n.Sign() {
		t.Fatalf("negated literal: var=%d sign=%v", n.Var(), n.Sign())
	}
	if n.Not() != l {
		t.Fatalf("double negation is not identity")
	}
}

func TestUnitClauses(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(lit(a))
	s.AddClause(nlit(b))
	if got := s.Solve(context.Background()); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Value(a) || s.Value(b) {
		t.Fatalf("model: a=%v b=%v, want true,false", s.Value(a), s.Value(b))
	}
}

func TestContradiction(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(lit(a))
	s.AddClause(nlit(a))
	if got := s.Solve(context.Background()); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
	if s.Okay() {
		t.Fatalf("Okay() = true after Unsat")
	}
}

func TestClausalUnsat(t *testing.T) {
	// All eight clauses over three variables: classically unsatisfiable
	// and requires actual conflict analysis.
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	for mask := 0; mask < 8; mask++ {
		cl := []Lit{MkLit(a, mask&1 != 0), MkLit(b, mask&2 != 0), MkLit(c, mask&4 != 0)}
		s.AddClause(cl...)
	}
	if got := s.Solve(context.Background()); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(4,3): 4 pigeons, 3 holes — UNSAT, classic CDCL stress test.
	const pigeons, holes = 4, 3
	s := New()
	x := make([][]int, pigeons)
	for p := range x {
		x[p] = make([]int, holes)
		for h := range x[p] {
			x[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		cl := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = lit(x[p][h])
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(nlit(x[p1][h]), nlit(x[p2][h]))
			}
		}
	}
	if got := s.Solve(context.Background()); got != Unsat {
		t.Fatalf("PHP(4,3) = %v, want Unsat", got)
	}
}

func TestPBGESimple(t *testing.T) {
	// 3a + 2b + c ≥ 5 forces a (else max is 3) and then b (3+1 < 5).
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddGE([]Term{{3, lit(a)}, {2, lit(b)}, {1, lit(c)}}, 5)
	if got := s.Solve(context.Background()); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Value(a) || !s.Value(b) {
		t.Fatalf("model: a=%v b=%v, want both true", s.Value(a), s.Value(b))
	}
}

func TestPBGEPropagatesEagerly(t *testing.T) {
	// 2a + b + c ≥ 2 with ¬a forces b and c.
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddGE([]Term{{2, lit(a)}, {1, lit(b)}, {1, lit(c)}}, 2)
	s.AddClause(nlit(a))
	if got := s.Solve(context.Background()); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Value(b) || !s.Value(c) {
		t.Fatalf("model: b=%v c=%v, want both true", s.Value(b), s.Value(c))
	}
}

func TestPBUnsatByBounds(t *testing.T) {
	// a + b ≥ 2 and a + b ≤ 1 conflict.
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddGE([]Term{{1, lit(a)}, {1, lit(b)}}, 2)
	s.AddLE([]Term{{1, lit(a)}, {1, lit(b)}}, 1)
	if got := s.Solve(context.Background()); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestPBNormalization(t *testing.T) {
	// 2a − 3¬a + b ≥ −1 normalizes over a single 'a' occurrence:
	// 2a − 3(1−a) + b = 5a + b − 3 ≥ −1 → 5a + b ≥ 2 → a forced... no:
	// slack allows b alone? 5·0 + 1 = 1 < 2 so a is forced when b alone
	// can't reach. Check that a is propagated.
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddGE([]Term{{2, lit(a)}, {-3, nlit(a)}, {1, lit(b)}}, -1)
	if got := s.Solve(context.Background()); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Value(a) {
		t.Fatalf("normalization should force a true")
	}
}

func TestTightenLoop(t *testing.T) {
	// Minimize a+b+c subject to 2a+b ≥ 2, b+c ≥ 1 via the portfolio's
	// descend loop: solve, tighten below the incumbent, repeat.
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddGE([]Term{{2, lit(a)}, {1, lit(b)}}, 2)
	s.AddGE([]Term{{1, lit(b)}, {1, lit(c)}}, 1)
	obj := []Term{{1, lit(a)}, {1, lit(b)}, {1, lit(c)}}
	ref := s.AddLE(obj, 3)

	best := int64(-1)
	for {
		st := s.Solve(context.Background())
		if st == Unsat {
			break
		}
		if st != Sat {
			t.Fatalf("Solve = %v mid-loop", st)
		}
		var cur int64
		for _, tm := range obj {
			if s.Value(tm.Lit.Var()) {
				cur += tm.Coef
			}
		}
		best = cur
		if cur == 0 {
			break
		}
		s.Tighten(ref, cur-1)
	}
	// Optimum: a=1,b=0,c=1 → 2 (or a=1,b=1,c=0 → 2).
	if best != 2 {
		t.Fatalf("descend found %d, want 2", best)
	}
}

func TestUnknownOnBudget(t *testing.T) {
	// PHP(7,6) with a one-conflict budget cannot finish.
	const pigeons, holes = 7, 6
	s := New()
	s.MaxConflicts = 1
	x := make([][]int, pigeons)
	for p := range x {
		x[p] = make([]int, holes)
		for h := range x[p] {
			x[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		cl := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = lit(x[p][h])
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(nlit(x[p1][h]), nlit(x[p2][h]))
			}
		}
	}
	if got := s.Solve(context.Background()); got != Unknown {
		t.Fatalf("Solve = %v, want Unknown under 1-conflict budget", got)
	}
}

func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// PHP(8,7) is hard enough to hit the cancellation check.
	const pigeons, holes = 8, 7
	s := New()
	x := make([][]int, pigeons)
	for p := range x {
		x[p] = make([]int, holes)
		for h := range x[p] {
			x[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		cl := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = lit(x[p][h])
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(nlit(x[p1][h]), nlit(x[p2][h]))
			}
		}
	}
	done := make(chan Status, 1)
	go func() { done <- s.Solve(ctx) }()
	select {
	case st := <-done:
		// Either it finished fast (Unsat) or was cancelled (Unknown);
		// both are acceptable, hanging is not.
		if st != Unsat && st != Unknown {
			t.Fatalf("Solve = %v", st)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("Solve did not return after cancellation")
	}
}

// bruteforcePB exhaustively checks satisfiability of a set of GE
// constraints and clauses over n variables.
type geCon struct {
	terms []Term
	bound int64
}

func bruteforcePB(n int, ges []geCon, clauses [][]Lit) (bool, uint32) {
	for m := uint32(0); m < 1<<uint(n); m++ {
		ok := true
		for _, g := range ges {
			var sum int64
			for _, t := range g.terms {
				val := m&(1<<uint(t.Lit.Var())) != 0
				if t.Lit.Sign() {
					val = !val
				}
				if val {
					sum += t.Coef
				}
			}
			if sum < g.bound {
				ok = false
				break
			}
		}
		if ok {
			for _, cl := range clauses {
				sat := false
				for _, l := range cl {
					val := m&(1<<uint(l.Var())) != 0
					if l.Sign() {
						val = !val
					}
					if val {
						sat = true
						break
					}
				}
				if !sat {
					ok = false
					break
				}
			}
		}
		if ok {
			return true, m
		}
	}
	return false, 0
}

func TestRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(5)
		nGE := 1 + rng.Intn(4)
		nCl := rng.Intn(4)
		ges := make([]geCon, nGE)
		s := New()
		for v := 0; v < n; v++ {
			s.NewVar()
		}
		for i := range ges {
			k := 1 + rng.Intn(n)
			terms := make([]Term, 0, k)
			used := map[int]bool{}
			var total int64
			for len(terms) < k {
				v := rng.Intn(n)
				if used[v] {
					continue
				}
				used[v] = true
				coef := int64(1 + rng.Intn(6))
				terms = append(terms, Term{coef, MkLit(v, rng.Intn(2) == 0)})
				total += coef
			}
			bound := int64(rng.Intn(int(total) + 1))
			ges[i] = geCon{terms, bound}
			s.AddGE(terms, bound)
		}
		var clauses [][]Lit
		for i := 0; i < nCl; i++ {
			k := 1 + rng.Intn(3)
			cl := make([]Lit, 0, k)
			for j := 0; j < k; j++ {
				cl = append(cl, MkLit(rng.Intn(n), rng.Intn(2) == 0))
			}
			clauses = append(clauses, cl)
			s.AddClause(cl...)
		}
		wantSat, _ := bruteforcePB(n, ges, clauses)
		got := s.Solve(context.Background())
		if wantSat && got != Sat {
			t.Fatalf("trial %d: brute=sat solver=%v", trial, got)
		}
		if !wantSat && got != Unsat {
			t.Fatalf("trial %d: brute=unsat solver=%v", trial, got)
		}
		if got == Sat {
			// Verify the model against the constraints.
			for gi, g := range ges {
				var sum int64
				for _, tm := range g.terms {
					val := s.Value(tm.Lit.Var())
					if tm.Lit.Sign() {
						val = !val
					}
					if val {
						sum += tm.Coef
					}
				}
				if sum < g.bound {
					t.Fatalf("trial %d: model violates GE constraint %d (%d < %d)", trial, gi, sum, g.bound)
				}
			}
			for ci, cl := range clauses {
				sat := false
				for _, l := range cl {
					val := s.Value(l.Var())
					if l.Sign() {
						val = !val
					}
					if val {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: model violates clause %d", trial, ci)
				}
			}
		}
	}
}

func TestRandomTightenAgainstBrute(t *testing.T) {
	// Randomized check of the Tighten path: minimize a random positive
	// objective under random GE constraints by descending, and compare
	// the optimum against brute force.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		n := 3 + rng.Intn(4)
		s := New()
		for v := 0; v < n; v++ {
			s.NewVar()
		}
		nGE := 1 + rng.Intn(3)
		ges := make([]geCon, nGE)
		for i := range ges {
			k := 1 + rng.Intn(n)
			terms := make([]Term, 0, k)
			used := map[int]bool{}
			var total int64
			for len(terms) < k {
				v := rng.Intn(n)
				if used[v] {
					continue
				}
				used[v] = true
				coef := int64(1 + rng.Intn(5))
				terms = append(terms, Term{coef, MkLit(v, rng.Intn(2) == 0)})
				total += coef
			}
			bound := int64(rng.Intn(int(total) + 1))
			ges[i] = geCon{terms, bound}
			s.AddGE(terms, bound)
		}
		obj := make([]Term, n)
		var objTotal int64
		for v := 0; v < n; v++ {
			c := int64(1 + rng.Intn(4))
			obj[v] = Term{c, lit(v)}
			objTotal += c
		}

		// Brute-force optimum.
		bestBrute := int64(-1)
		for m := uint32(0); m < 1<<uint(n); m++ {
			ok := true
			for _, g := range ges {
				var sum int64
				for _, tm := range g.terms {
					val := m&(1<<uint(tm.Lit.Var())) != 0
					if tm.Lit.Sign() {
						val = !val
					}
					if val {
						sum += tm.Coef
					}
				}
				if sum < g.bound {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			var cost int64
			for _, tm := range obj {
				if m&(1<<uint(tm.Lit.Var())) != 0 {
					cost += tm.Coef
				}
			}
			if bestBrute < 0 || cost < bestBrute {
				bestBrute = cost
			}
		}

		ref := s.AddLE(obj, objTotal)
		bestSolver := int64(-1)
		for {
			st := s.Solve(context.Background())
			if st == Unsat {
				break
			}
			if st != Sat {
				t.Fatalf("trial %d: Solve = %v mid-descend", trial, st)
			}
			var cur int64
			for _, tm := range obj {
				if s.Value(tm.Lit.Var()) {
					cur += tm.Coef
				}
			}
			bestSolver = cur
			if cur == 0 {
				break
			}
			s.Tighten(ref, cur-1)
		}
		if bestSolver != bestBrute {
			t.Fatalf("trial %d: descend optimum %d, brute %d", trial, bestSolver, bestBrute)
		}
	}
}

func TestDeterministic(t *testing.T) {
	run := func() []bool {
		s := New()
		a, b, c, d := s.NewVar(), s.NewVar(), s.NewVar(), s.NewVar()
		s.AddGE([]Term{{3, lit(a)}, {2, lit(b)}, {2, lit(c)}, {1, lit(d)}}, 4)
		s.AddLE([]Term{{1, lit(a)}, {1, lit(b)}, {1, lit(c)}, {1, lit(d)}}, 2)
		s.AddClause(lit(b), lit(c))
		if s.Solve(context.Background()) != Sat {
			return nil
		}
		return []bool{s.Value(a), s.Value(b), s.Value(c), s.Value(d)}
	}
	first := run()
	if first == nil {
		t.Fatalf("instance unexpectedly unsat")
	}
	for i := 0; i < 10; i++ {
		got := run()
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("run %d: nondeterministic model %v vs %v", i, got, first)
			}
		}
	}
}
