package netcore

import (
	"math/rand"
	"testing"
)

// FuzzStrash builds the same random network under two creation orders and
// checks that structural hashing is order-independent: the arenas intern
// the same number of live nodes with the same dedup/fold counts, and every
// cut's truth table matches an independent recomputation over its leaves.
func FuzzStrash(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(8))
	f.Add(int64(7), uint8(2), uint8(30))
	f.Add(int64(42), uint8(9), uint8(50))
	f.Add(int64(-3), uint8(6), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nInRaw, nNodeRaw uint8) {
		nIn := 2 + int(nInRaw)%9
		nNode := 1 + int(nNodeRaw)%40

		a, _ := randomNetwork(rand.New(rand.NewSource(seed)), nIn, nNode, false)
		b, _ := randomNetwork(rand.New(rand.NewSource(seed)), nIn, nNode, true)

		if a.LiveHandles() != b.LiveHandles() {
			t.Fatalf("live handles differ across build orders: %d vs %d",
				a.LiveHandles(), b.LiveHandles())
		}
		if a.DedupCount() != b.DedupCount() {
			t.Fatalf("dedup counts differ across build orders: %d vs %d",
				a.DedupCount(), b.DedupCount())
		}
		if a.FoldCount() != b.FoldCount() {
			t.Fatalf("fold counts differ across build orders: %d vs %d",
				a.FoldCount(), b.FoldCount())
		}

		// Nets that hash to the same handle must compute the same local
		// function over their shared fanin handles.
		byHandle := make(map[Handle]Net)
		for _, n := range a.Nets() {
			h := a.NetHandle(n)
			prev, ok := byHandle[h]
			if !ok {
				byHandle[h] = n
				continue
			}
			// A net can fold to an input handle; its own handle is then
			// the only usable leaf.
			leaves := a.HandleFanins(h)
			if a.HandleIsInput(h) {
				leaves = []Handle{h}
			}
			tt1, err1 := a.HandleLocalTT(h, leaves)
			tt2, err2 := a.HandleLocalTT(a.NetHandle(prev), leaves)
			if err1 != nil || err2 != nil {
				t.Fatalf("local TT over own fanins failed: %v / %v", err1, err2)
			}
			if !tt1.Equal(tt2) {
				t.Fatalf("nets %s and %s share handle %d but differ in TT",
					a.NetName(n), a.NetName(prev), h)
			}
		}

		// Every enumerated cut is k-feasible, includes the trivial cut,
		// and carries the truth table HandleLocalTT recomputes.
		cfg := CutConfig{K: 4, Limit: 6, TT: true}
		for h, cs := range a.EnumerateCuts(cfg) {
			if cs == nil {
				continue
			}
			trivial := false
			for _, c := range cs {
				if len(c.Leaves) > cfg.K && !(len(c.Leaves) == 1 && c.Leaves[0] == Handle(h)) {
					t.Fatalf("handle %d: cut with %d leaves exceeds k=%d", h, len(c.Leaves), cfg.K)
				}
				if len(c.Leaves) == 1 && c.Leaves[0] == Handle(h) {
					trivial = true
				}
				want, err := a.HandleLocalTT(Handle(h), c.Leaves)
				if err != nil {
					t.Fatalf("handle %d: cut cone escapes leaves: %v", h, err)
				}
				if !c.TT.Equal(want) {
					t.Fatalf("handle %d: cut TT mismatch", h)
				}
			}
			if !a.HandleIsConst(Handle(h)) && !trivial {
				t.Fatalf("handle %d: trivial cut missing", h)
			}
		}
	})
}
