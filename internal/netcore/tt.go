package netcore

import (
	"fmt"

	"tels/internal/logic"
	"tels/internal/truth"
)

// Word-parallel local truth tables. The pointer network's LocalFunction
// walks the cone once per minterm; here the whole table is computed in one
// cone walk, 64 minterms per word, with identical results (a truth table
// is determined by the function, and the function of the window is the
// same regardless of evaluation strategy).

// varMasks[i] is the packed table of variable i within one 64-minterm word.
var varMasks = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

func ttWords(k int) int {
	if k < 6 {
		return 1
	}
	return 1 << uint(k-6)
}

// fillVarWords writes the packed projection table of variable i over k
// variables into out (len ttWords(k)).
func fillVarWords(out []uint64, k, i int) {
	if i < 6 {
		for w := range out {
			out[w] = varMasks[i]
		}
		return
	}
	for w := range out {
		if w&(1<<uint(i-6)) != 0 {
			out[w] = ^uint64(0)
		} else {
			out[w] = 0
		}
	}
}

// coverEvalWords evaluates a slab cover word-parallel: out = OR over cubes
// of AND over literals, with args[i] the packed table of fanin i.
func coverEvalWords(phases []logic.Phase, nCubes, width int, args [][]uint64, out []uint64) {
	for w := range out {
		var acc uint64
		for c := 0; c < nCubes; c++ {
			term := ^uint64(0)
			row := phases[c*width : (c+1)*width]
			for i, p := range row {
				switch p {
				case logic.Pos:
					term &= args[i][w]
				case logic.Neg:
					term &^= args[i][w]
				}
				if term == 0 {
					break
				}
			}
			acc |= term
			if acc == ^uint64(0) {
				break
			}
		}
		out[w] = acc
	}
}

// maskTT clears the unused high bits of a sub-64-minterm table word.
func maskTT(words []uint64, k int) {
	if k < 6 {
		words[0] &= (1 << uint(1<<uint(k))) - 1
	}
}

// ttScratch recycles per-cone word buffers across NetLocalTT calls.
type ttScratch struct {
	memo map[Net][]uint64
	free [][]uint64
}

func (s *ttScratch) get(nWords int) []uint64 {
	if n := len(s.free); n > 0 {
		b := s.free[n-1]
		s.free = s.free[:n-1]
		if cap(b) >= nWords {
			return b[:nWords]
		}
	}
	return make([]uint64, nWords)
}

// NetLocalTT returns the truth table of net n over the given support nets,
// treating every support net as a free variable and evaluating the cone
// between them and n. Every path from n must reach a support net or an
// input-free constant; support nets cut the cone. Semantically identical
// to the pointer network's LocalFunction, but computed word-parallel in a
// single cone walk.
func (nw *Network) NetLocalTT(n Net, support []Net) (*truth.Table, error) {
	k := len(support)
	if k > truth.MaxVars {
		return nil, fmt.Errorf("netcore: support of %d exceeds %d variables", k, truth.MaxVars)
	}
	nWords := ttWords(k)
	pos := make(map[Net]int, k)
	for i, s := range support {
		pos[s] = i
	}
	sc := ttScratch{memo: make(map[Net][]uint64, 16)}
	for i, s := range support {
		w := sc.get(nWords)
		fillVarWords(w, k, i)
		sc.memo[s] = w
	}
	var eval func(x Net) ([]uint64, error)
	eval = func(x Net) ([]uint64, error) {
		if w, ok := sc.memo[x]; ok {
			return w, nil
		}
		if nw.nets[x].kind == NetInput {
			return nil, fmt.Errorf("netcore: cone of %s escapes support at input %s",
				nw.nets[n].name, nw.nets[x].name)
		}
		fans := nw.NetFanins(x)
		args := make([][]uint64, len(fans))
		for i, f := range fans {
			w, err := eval(f)
			if err != nil {
				return nil, err
			}
			args[i] = w
		}
		phases, nCubes, width := nw.NetCubes(x)
		out := sc.get(nWords)
		coverEvalWords(phases, nCubes, width, args, out)
		sc.memo[x] = out
		return out, nil
	}
	res, err := eval(n)
	if err != nil {
		return nil, err
	}
	tt := truth.New(k)
	words := tt.Words()
	copy(words, res)
	maskTT(words, k)
	return tt, nil
}

// HandleLocalTT returns the truth table of handle h over the given leaf
// handles, evaluating the structural cone between them and h. Every path
// must reach a leaf or a constant node.
func (nw *Network) HandleLocalTT(h Handle, leaves []Handle) (*truth.Table, error) {
	k := len(leaves)
	if k > truth.MaxVars {
		return nil, fmt.Errorf("netcore: leaf set of %d exceeds %d variables", k, truth.MaxVars)
	}
	nWords := ttWords(k)
	memo := make(map[Handle][]uint64, 16)
	for i, l := range leaves {
		w := make([]uint64, nWords)
		fillVarWords(w, k, i)
		memo[l] = w
	}
	var eval func(x Handle) ([]uint64, error)
	eval = func(x Handle) ([]uint64, error) {
		if w, ok := memo[x]; ok {
			return w, nil
		}
		nd := &nw.nodes[x]
		switch nd.kind {
		case kindConst:
			w := make([]uint64, nWords)
			if x == Const1 {
				for i := range w {
					w[i] = ^uint64(0)
				}
			}
			memo[x] = w
			return w, nil
		case kindInput:
			return nil, fmt.Errorf("netcore: cone of handle %d escapes leaves at input handle %d", h, x)
		}
		fans := nw.HandleFanins(x)
		args := make([][]uint64, len(fans))
		for i, f := range fans {
			w, err := eval(f)
			if err != nil {
				return nil, err
			}
			args[i] = w
		}
		phases, nCubes, width := nw.nodeCover(x)
		out := make([]uint64, nWords)
		coverEvalWords(phases, nCubes, width, args, out)
		memo[x] = out
		return out, nil
	}
	res, err := eval(h)
	if err != nil {
		return nil, err
	}
	tt := truth.New(k)
	words := tt.Words()
	copy(words, res)
	maskTT(words, k)
	return tt, nil
}
