package netcore

import (
	"sort"

	"tels/internal/truth"
)

// Priority k-feasible cut enumeration over structural handles, in the
// style of the cut managers of ABC and mockturtle: each node keeps at most
// `limit` cuts ranked by a simple priority (fewer leaves first, then lower
// total leaf level), merged pairwise/cross-product from fanin cut sets,
// deduplicated by signature + leaf equality, always including the trivial
// cut {h}. Each cut carries the local truth table of the node over the
// cut leaves (sorted ascending by handle), which is what gives
// optimization passes bounded windows instead of global collapse.

// Cut is one k-feasible cut of a handle.
type Cut struct {
	Leaves []Handle // sorted ascending
	TT     *truth.Table
	sig    uint64 // bloom signature of Leaves for fast subset/equality tests
}

// sigOf hashes leaf handles into a 64-bit bloom signature.
func sigOf(leaves []Handle) uint64 {
	var s uint64
	for _, l := range leaves {
		s |= 1 << (uint(l) % 64)
	}
	return s
}

func leavesEqual(a, b []Handle) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeLeaves unions two sorted leaf sets, returning nil if the union
// exceeds k.
func mergeLeaves(a, b []Handle, k int) []Handle {
	out := make([]Handle, 0, k)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
		if len(out) > k {
			return nil
		}
	}
	for ; i < len(a); i++ {
		out = append(out, a[i])
		if len(out) > k {
			return nil
		}
	}
	for ; j < len(b); j++ {
		out = append(out, b[j])
		if len(out) > k {
			return nil
		}
	}
	return out
}

// CutConfig bounds cut enumeration.
type CutConfig struct {
	K     int // max leaves per cut (capped at 12)
	Limit int // max cuts kept per node (trivial cut not counted)
	TT    bool // compute the local truth table of every cut
}

// DefaultCutConfig returns the k=8, limit=8 configuration used by the
// benchmarks.
func DefaultCutConfig() CutConfig { return CutConfig{K: 8, Limit: 8, TT: true} }

// EnumerateCuts computes priority k-feasible cuts for every handle in the
// arena, indexed by handle. Dead slots get nil. Net-layer mutations are
// rehashed first so handles reflect the current structure.
func (nw *Network) EnumerateCuts(cfg CutConfig) [][]Cut {
	if nw.stale {
		nw.Rehash()
	}
	k := cfg.K
	if k > 12 {
		k = 12
	}
	if k < 2 {
		k = 2
	}
	limit := cfg.Limit
	if limit < 1 {
		limit = 1
	}
	cuts := make([][]Cut, len(nw.nodes))
	for h := range nw.nodes {
		nd := &nw.nodes[h]
		switch nd.kind {
		case kindDead:
			continue
		case kindConst:
			c := Cut{Leaves: []Handle{}}
			if cfg.TT {
				c.TT = truth.Const(0, Handle(h) == Const1)
			}
			cuts[h] = []Cut{c}
			continue
		case kindInput:
			c := Cut{Leaves: []Handle{Handle(h)}, sig: sigOf([]Handle{Handle(h)})}
			if cfg.TT {
				c.TT = truth.Var(1, 0)
			}
			cuts[h] = []Cut{c}
			continue
		}
		// kindFunc: arena order is topological for handles (fanins are
		// interned before fanouts), so fanin cut sets are ready.
		fans := nw.HandleFanins(Handle(h))
		// Cross product of fanin cut sets, bounded by walking fanins
		// left to right and keeping at most limit partial merges.
		partial := []Cut{{Leaves: []Handle{}}}
		for _, f := range fans {
			var next []Cut
			for _, p := range partial {
				for _, fc := range cuts[f] {
					merged := mergeLeaves(p.Leaves, fc.Leaves, k)
					if merged == nil {
						continue
					}
					next = append(next, Cut{Leaves: merged, sig: sigOf(merged)})
				}
			}
			next = nw.pruneCuts(next, limit)
			if len(next) == 0 {
				// No feasible merge at this fanin: only the trivial cut
				// survives for this node.
				partial = nil
				break
			}
			partial = next
		}
		var out []Cut
		if partial != nil {
			out = partial
		}
		// The trivial cut is always available.
		trivial := Cut{Leaves: []Handle{Handle(h)}, sig: sigOf([]Handle{Handle(h)})}
		out = append(out, trivial)
		if cfg.TT {
			for i := range out {
				tt, err := nw.HandleLocalTT(Handle(h), out[i].Leaves)
				if err != nil {
					// A cut whose cone escapes its own leaves is a bug;
					// enumeration guarantees leaves cut every path.
					panic(err)
				}
				out[i].TT = tt
			}
		}
		cuts[h] = out
	}
	return cuts
}

// pruneCuts deduplicates and keeps the best `limit` cuts by (size, total
// leaf level), preserving discovery order among ties for determinism.
func (nw *Network) pruneCuts(cs []Cut, limit int) []Cut {
	if len(cs) == 0 {
		return cs
	}
	uniq := cs[:0]
outer:
	for _, c := range cs {
		for _, u := range uniq {
			if u.sig == c.sig && leavesEqual(u.Leaves, c.Leaves) {
				continue outer
			}
		}
		uniq = append(uniq, c)
	}
	cost := func(c Cut) int {
		lv := 0
		for _, l := range c.Leaves {
			lv += int(nw.nodes[l].level)
		}
		return len(c.Leaves)*1024 + lv
	}
	sort.SliceStable(uniq, func(i, j int) bool { return cost(uniq[i]) < cost(uniq[j]) })
	if len(uniq) > limit {
		uniq = uniq[:limit]
	}
	return uniq
}

// NetCuts returns the cut set of the net's structural handle under cfg.
// Cuts are shared across structurally identical nets by construction.
func (nw *Network) NetCuts(n Net, cfg CutConfig) []Cut {
	all := nw.EnumerateCuts(cfg)
	return all[nw.NetHandle(n)]
}
