package netcore

import (
	"fmt"

	"tels/internal/network"
)

// FromNetwork builds an arena network from a pointer network, preserving
// everything passes can observe: names, creation order (which extraction
// leaves non-topological — fanin lists may point at later-created
// divisors), fanin order, cover cubes exactly as written, and the output
// list including duplicate entries. Structural handles are interned
// bottom-up, so building reports dedup/fold statistics for free.
func FromNetwork(src *network.Network) *Network {
	nw := New(src.Name)
	// Phase 1: reserve every net in creation order so Net indices follow
	// the source order even when fanins are created later.
	mapping := make(map[*network.Node]Net, len(src.Nodes()))
	for _, n := range src.Nodes() {
		if n.Kind == network.Input {
			mapping[n] = nw.AddInput(n.Name)
			continue
		}
		nw.mustBeFresh(n.Name)
		net := Net(len(nw.nets))
		nw.nets = append(nw.nets, netRec{name: n.Name, kind: NetFunc, h: InvalidHandle})
		nw.byName[n.Name] = net
		nw.funcNets++
		mapping[n] = net
	}
	// Phase 2: bind functions in topological order so fanin handles exist
	// before their fanouts are interned.
	order, err := src.TopoSort()
	if err != nil {
		panic(fmt.Sprintf("netcore: FromNetwork(%s): %v", src.Name, err))
	}
	var fanins []Net
	for _, n := range order {
		if n.Kind != network.Internal {
			continue
		}
		fanins = fanins[:0]
		for _, f := range n.Fanins {
			fanins = append(fanins, mapping[f])
		}
		nw.bindFunction(mapping[n], fanins, n.Cover)
	}
	for _, o := range src.Outputs {
		nw.appendOutput(mapping[o])
	}
	return nw
}

// ToNetwork converts back to a pointer network, reproducing creation
// order, names, fanin order, covers, and the exact output list. The
// round trip FromNetwork→ToNetwork is the identity on everything the
// optimization passes and the synthesizer observe.
func (nw *Network) ToNetwork() *network.Network {
	out := network.New(nw.Name)
	mapping := make(map[Net]*network.Node, len(nw.nets))
	for i := range nw.nets {
		r := &nw.nets[i]
		switch r.kind {
		case NetInput:
			mapping[Net(i)] = out.AddInput(r.name)
		case NetFunc:
			mapping[Net(i)] = out.AddShell(r.name)
		}
	}
	order, err := nw.TopoNets()
	if err != nil {
		panic(fmt.Sprintf("netcore: ToNetwork(%s): %v", nw.Name, err))
	}
	for _, n := range order {
		if nw.nets[n].kind != NetFunc {
			continue
		}
		fans := nw.NetFanins(n)
		fanins := make([]*network.Node, len(fans))
		for i, f := range fans {
			fanins[i] = mapping[f]
		}
		out.BindNode(mapping[n], fanins, nw.NetCover(n))
	}
	for _, o := range nw.outputs {
		out.Outputs = append(out.Outputs, mapping[o])
	}
	return out
}
