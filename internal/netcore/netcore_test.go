package netcore

import (
	"fmt"
	"math/rand"
	"testing"

	"tels/internal/logic"
	"tels/internal/network"
)

func cube(phases ...logic.Phase) logic.Cube { return logic.Cube(phases) }

func cover(n int, cubes ...logic.Cube) logic.Cover {
	cv := logic.NewCover(n)
	for _, c := range cubes {
		cv.AddCube(c)
	}
	return cv
}

func TestStrashDedupOnCreation(t *testing.T) {
	nw := New("dedup")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	and := cover(2, cube(logic.Pos, logic.Pos))
	n1 := nw.AddNode("n1", []Net{a, b}, and)
	n2 := nw.AddNode("n2", []Net{a, b}, and)
	if nw.NetHandle(n1) != nw.NetHandle(n2) {
		t.Fatalf("identical (cover, fanins) got different handles %d vs %d",
			nw.NetHandle(n1), nw.NetHandle(n2))
	}
	if nw.DedupCount() != 1 {
		t.Fatalf("DedupCount = %d, want 1", nw.DedupCount())
	}
	// Different cube order is a different shape (covers are positional).
	or2 := cover(2, cube(logic.Pos, logic.DC), cube(logic.DC, logic.Pos))
	or2r := cover(2, cube(logic.DC, logic.Pos), cube(logic.Pos, logic.DC))
	n3 := nw.AddNode("n3", []Net{a, b}, or2)
	n4 := nw.AddNode("n4", []Net{a, b}, or2r)
	if nw.NetHandle(n3) == nw.NetHandle(n4) {
		t.Fatal("covers with different cube order must not share a handle")
	}
	// Same cover over different fanins is a different shape.
	n5 := nw.AddNode("n5", []Net{b, a}, and)
	if nw.NetHandle(n5) == nw.NetHandle(n1) {
		t.Fatal("same cover over swapped fanins must not share a handle")
	}
	nw.MarkOutput(n1)
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStrashConstAndIdentityFolds(t *testing.T) {
	nw := New("folds")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	zero := nw.AddNode("z", []Net{a}, cover(1))
	if nw.NetHandle(zero) != Const0 {
		t.Fatalf("empty cover handle = %d, want Const0", nw.NetHandle(zero))
	}
	one := nw.AddNode("o", []Net{a, b}, cover(2, cube(logic.DC, logic.DC)))
	if nw.NetHandle(one) != Const1 {
		t.Fatalf("universal cover handle = %d, want Const1", nw.NetHandle(one))
	}
	buf := nw.AddNode("buf", []Net{b}, cover(1, cube(logic.Pos)))
	if nw.NetHandle(buf) != nw.NetHandle(b) {
		t.Fatalf("buffer handle = %d, want fanin handle %d", nw.NetHandle(buf), nw.NetHandle(b))
	}
	// An inverter is NOT an identity — it keeps its own node.
	inv := nw.AddNode("inv", []Net{b}, cover(1, cube(logic.Neg)))
	if nw.NetHandle(inv) == nw.NetHandle(b) {
		t.Fatal("inverter folded to its fanin")
	}
	if nw.FoldCount() != 3 {
		t.Fatalf("FoldCount = %d, want 3", nw.FoldCount())
	}
	// The net layer still reports the written covers.
	cv := nw.NetCover(buf)
	if cv.N != 1 || len(cv.Cubes) != 1 || cv.Cubes[0][0] != logic.Pos {
		t.Fatalf("buffer net cover mutated by fold: %+v", cv)
	}
}

func TestFreshNameMatchesRescan(t *testing.T) {
	nc := New("fresh")
	pw := network.New("fresh")
	a := nc.AddInput("a")
	pa := pw.AddInput("a")
	buf := cover(1, cube(logic.Pos))
	add := func(name string) {
		nc.AddNode(name, []Net{a}, buf)
		pw.AddNode(name, []*network.Node{pa}, buf)
	}
	for i := 0; i < 5; i++ {
		n := nc.FreshName("t")
		p := pw.FreshName("t")
		if n != p {
			t.Fatalf("FreshName diverged: netcore %q, network %q", n, p)
		}
		add(n)
	}
	// Open a hole: both sides must reuse it.
	hole := nc.NetByName("t_1")
	nc.ReplaceNet(hole, nc.NetByName("t_0"))
	pw.ReplaceNode(pw.Node("t_1"), pw.Node("t_0"))
	n, p := nc.FreshName("t"), pw.FreshName("t")
	if n != p || n != "t_1" {
		t.Fatalf("after removal FreshName netcore %q, network %q, want t_1", n, p)
	}
}

func TestGateCountO1AndRemoveDangling(t *testing.T) {
	nw := New("gc")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	and := cover(2, cube(logic.Pos, logic.Pos))
	n1 := nw.AddNode("n1", []Net{a, b}, and)
	n2 := nw.AddNode("n2", []Net{n1, a}, and)
	nw.AddNode("dangling", []Net{a, b}, cover(2, cube(logic.Neg, logic.Neg)))
	nw.MarkOutput(n2)
	if nw.GateCount() != 3 {
		t.Fatalf("GateCount = %d, want 3", nw.GateCount())
	}
	if removed := nw.RemoveDangling(); removed != 1 {
		t.Fatalf("RemoveDangling removed %d, want 1", removed)
	}
	if nw.GateCount() != 2 {
		t.Fatalf("GateCount after sweep = %d, want 2", nw.GateCount())
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
}

// randomNetwork builds the same random network into both representations,
// returning them for cross-checks. Permute shuffles internal creation
// order without changing the graph (inputs and node definitions stay
// identical) to exercise order-independence of handle counts.
func randomNetwork(rng *rand.Rand, nIn, nNode int, permute bool) (*Network, *network.Network) {
	type def struct {
		name   string
		fanins []int // index into the signal list
		cov    logic.Cover
	}
	signals := nIn
	defs := make([]def, 0, nNode)
	for i := 0; i < nNode; i++ {
		k := 1 + rng.Intn(3)
		if k > signals {
			k = signals
		}
		fanins := make([]int, k)
		seen := map[int]bool{}
		for j := range fanins {
			for {
				f := rng.Intn(signals)
				if !seen[f] {
					seen[f] = true
					fanins[j] = f
					break
				}
			}
		}
		nc := 1 + rng.Intn(3)
		cv := logic.NewCover(k)
		for c := 0; c < nc; c++ {
			cb := logic.NewCube(k)
			nonDC := false
			for v := 0; v < k; v++ {
				switch rng.Intn(3) {
				case 0:
					cb[v] = logic.Pos
					nonDC = true
				case 1:
					cb[v] = logic.Neg
					nonDC = true
				}
			}
			if !nonDC {
				cb[0] = logic.Pos
			}
			cv.AddCube(cb)
		}
		defs = append(defs, def{name: fmt.Sprintf("n%d", i), fanins: fanins, cov: cv})
		signals++
	}
	build := func(order []int) (*Network, *network.Network) {
		pw := network.New("rand")
		pwSig := make([]*network.Node, signals)
		for i := 0; i < nIn; i++ {
			pwSig[i] = pw.AddInput(fmt.Sprintf("x%d", i))
		}
		// Creation may be out of graph order: shells first, then bind.
		for _, di := range order {
			pwSig[nIn+di] = pw.AddShell(defs[di].name)
		}
		for di := range defs {
			d := defs[di]
			fanins := make([]*network.Node, len(d.fanins))
			for j, f := range d.fanins {
				fanins[j] = pwSig[f]
			}
			pw.BindNode(pwSig[nIn+di], fanins, d.cov)
		}
		// Outputs: the last two defined nodes.
		for i := signals - 1; i >= signals-2 && i >= nIn; i-- {
			pw.MarkOutput(pwSig[i])
		}
		return FromNetwork(pw), pw
	}
	order := make([]int, len(defs))
	for i := range order {
		order[i] = i
	}
	if permute {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	return build(order)
}

func TestNetLocalTTMatchesLocalFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nc, pw := randomNetwork(rng, 4, 8, false)
		order, err := pw.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range order {
			if n.Kind != network.Internal {
				continue
			}
			support := map[*network.Node]bool{}
			for _, f := range n.Fanins {
				support[f] = true
			}
			sup := make([]*network.Node, 0, len(support))
			for _, f := range n.Fanins {
				if support[f] {
					sup = append(sup, f)
					delete(support, f)
				}
			}
			want, err := pw.LocalFunction(n, sup)
			if err != nil {
				continue
			}
			csup := make([]Net, len(sup))
			for i, f := range sup {
				csup[i] = nc.NetByName(f.Name)
			}
			got, err := nc.NetLocalTT(nc.NetByName(n.Name), csup)
			if err != nil {
				t.Fatalf("trial %d node %s: %v", trial, n.Name, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d node %s: NetLocalTT != LocalFunction", trial, n.Name)
			}
		}
	}
}

func TestEvalMatchesPointerNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		nc, pw := randomNetwork(rng, 5, 10, false)
		assign := map[string]bool{}
		for _, in := range pw.Inputs {
			assign[in.Name] = rng.Intn(2) == 0
		}
		want, err := pw.Eval(assign)
		if err != nil {
			t.Fatal(err)
		}
		got, err := nc.Eval(assign)
		if err != nil {
			t.Fatal(err)
		}
		for name, w := range want {
			if got[name] != w {
				t.Fatalf("trial %d: Eval(%s) = %v, want %v", trial, name, got[name], w)
			}
		}
	}
}

func TestRoundTripIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		// permute=true creates non-topological creation orders like
		// extraction does; the round trip must preserve them.
		_, pw := randomNetwork(rng, 4, 9, true)
		back := FromNetwork(pw).ToNetwork()
		a, b := pw.Nodes(), back.Nodes()
		if len(a) != len(b) {
			t.Fatalf("trial %d: node count %d != %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i].Name != b[i].Name || a[i].Kind != b[i].Kind {
				t.Fatalf("trial %d: creation order diverged at %d: %s/%v vs %s/%v",
					trial, i, a[i].Name, a[i].Kind, b[i].Name, b[i].Kind)
			}
			if a[i].Kind != network.Internal {
				continue
			}
			if len(a[i].Fanins) != len(b[i].Fanins) {
				t.Fatalf("trial %d node %s: fanin count differs", trial, a[i].Name)
			}
			for j := range a[i].Fanins {
				if a[i].Fanins[j].Name != b[i].Fanins[j].Name {
					t.Fatalf("trial %d node %s: fanin %d differs", trial, a[i].Name, j)
				}
			}
			if a[i].Cover.String() != b[i].Cover.String() {
				t.Fatalf("trial %d node %s: cover differs", trial, a[i].Name)
			}
		}
		if len(pw.Outputs) != len(back.Outputs) {
			t.Fatalf("trial %d: output count differs", trial)
		}
		for i := range pw.Outputs {
			if pw.Outputs[i].Name != back.Outputs[i].Name {
				t.Fatalf("trial %d: output %d differs", trial, i)
			}
		}
	}
}

func TestTopoNetsMatchesTopoSort(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 25; trial++ {
		nc, pw := randomNetwork(rng, 4, 9, true)
		want, err := pw.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		got, err := nc.TopoNets()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: topo length %d != %d", trial, len(got), len(want))
		}
		for i := range want {
			if nc.NetName(got[i]) != want[i].Name {
				t.Fatalf("trial %d: topo order diverged at %d: %s vs %s",
					trial, i, nc.NetName(got[i]), want[i].Name)
			}
		}
	}
}

func TestSetFunctionRehash(t *testing.T) {
	nw := New("rehash")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	and := cover(2, cube(logic.Pos, logic.Pos))
	or := cover(2, cube(logic.Pos, logic.DC), cube(logic.DC, logic.Pos))
	n1 := nw.AddNode("n1", []Net{a, b}, and)
	n2 := nw.AddNode("n2", []Net{a, b}, or)
	nw.MarkOutput(n1)
	nw.MarkOutput(n2)
	h1 := nw.NetHandle(n1)
	nw.SetFunction(n2, []Net{a, b}, and)
	if got := nw.NetHandle(n2); got != h1 {
		t.Fatalf("after SetFunction to identical shape, handle = %d, want %d", got, h1)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	vals, err := nw.Eval(map[string]bool{"a": true, "b": false})
	if err != nil {
		t.Fatal(err)
	}
	if vals["n2"] != false {
		t.Fatal("n2 should now be AND(a,b) = false")
	}
}
