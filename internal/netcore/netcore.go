// Package netcore is the structurally-hashed network core: a flat,
// arena-allocated store of Boolean-network nodes addressed by int32
// handles instead of per-node pointers, in the style of the strashed node
// stores of the EPFL logic-synthesis libraries (mockturtle) and Cirbo's
// arena circuit representation.
//
// Two layers share one arena:
//
//   - Handles name structural classes: creating the same (cover, fanins)
//     twice returns the same Handle, constant covers fold to the shared
//     constant nodes, and identity covers fold to the fanin's handle.
//     Handle fanins and cover phases live in shared slabs, so a network
//     is a few large allocations instead of one per node.
//
//   - Nets name signals: one Net per named node of the source network,
//     carrying the name, the fanin Net list and the cover exactly as
//     written. The net layer is what optimization passes and the
//     threshold synthesizer walk — its fanout counts and iteration order
//     reproduce the pointer-based internal/network semantics exactly,
//     which is what keeps synthesis output byte-identical — while the
//     handle layer underneath detects structural duplicates and powers
//     cut enumeration and window truth tables.
//
// Nodes are reference counted: killing a net releases its handle, and a
// handle reaching zero references releases its fanins recursively (dead
// slots are skipped by iteration and reclaimed by Compact-free rebuilds
// such as Rehash).
package netcore

import (
	"fmt"
	"sort"
	"strings"

	"tels/internal/logic"
)

// Handle addresses one structural node in the arena.
type Handle int32

// Net addresses one named signal.
type Net int32

// Reserved handles and the invalid sentinels.
const (
	Const0        Handle = 0 // the constant-0 node
	Const1        Handle = 1 // the constant-1 node
	InvalidHandle Handle = -1
	InvalidNet    Net    = -1
)

// Node kinds (internal).
const (
	kindConst uint8 = iota
	kindInput
	kindFunc
	kindDead
)

// Net kinds.
const (
	// NetInput is a primary-input signal.
	NetInput uint8 = iota
	// NetFunc is an internal signal with a cover over its fanins.
	NetFunc
	netDead
)

// node is one arena slot. Fanins and cover phases live in shared slabs so
// the struct holds only offsets; refs counts fanin references from live
// nodes plus live nets whose function this node is.
type node struct {
	kind     uint8
	level    int32
	refs     int32
	nFanin   int32
	faninOff int32
	nCubes   int32
	coverOff int32
	hash     uint64
	next     int32 // strash bucket chain (-1 ends)
	input    int32 // PI ordinal for kindInput
}

type netRec struct {
	name     string
	kind     uint8
	h        Handle
	refs     int32 // fanin references from live nets (per position) + output marks
	nFanin   int32
	faninOff int32
	nCubes   int32
	coverOff int32
	outCnt   int32 // occurrences in the outputs list (ReplaceNet can stack them)
}

// Network is an arena-backed multi-output Boolean network.
type Network struct {
	Name string

	// Structural arena.
	nodes   []node
	fanins  []Handle      // handle fanin slab
	phases  []logic.Phase // cover slab: nCubes x nFanin phases per cover
	strash  map[uint64]int32
	dedups  int  // creations answered by an existing handle
	folds   int  // creations folded to a constant or a fanin
	stale   bool // net mutations since the last handle rebuild
	deadCnt int

	// Reusable creation-path buffers.
	scratchPh []logic.Phase
	scratchH  []Handle

	// Net layer.
	nets     []netRec
	netFan   []Net // net fanin slab
	byName   map[string]Net
	inputs   []Net
	outputs  []Net
	funcNets int            // live NetFunc count: O(1) GateCount
	suffix   map[string]int // FreshName next-suffix cache
}

// New returns an empty network with the shared constant nodes in place.
func New(name string) *Network {
	nw := &Network{
		Name:   name,
		strash: make(map[uint64]int32),
		byName: make(map[string]Net),
		suffix: make(map[string]int),
	}
	// Handles 0 and 1 are the constants; they are never dead.
	nw.nodes = append(nw.nodes,
		node{kind: kindConst, next: -1, refs: 1},
		node{kind: kindConst, next: -1, refs: 1})
	return nw
}

// ---------------------------------------------------------------------------
// Handle layer: arena, structural hashing, reference counts.

// NumHandles returns the arena size including dead and constant slots.
func (nw *Network) NumHandles() int { return len(nw.nodes) }

// LiveHandles returns the number of live structural nodes (constants
// included).
func (nw *Network) LiveHandles() int { return len(nw.nodes) - nw.deadCnt }

// DedupCount returns how many node creations were answered by an already
// existing handle (structural duplicates detected on creation).
func (nw *Network) DedupCount() int { return nw.dedups }

// FoldCount returns how many node creations folded to a constant or to a
// fanin handle (constant or identity covers).
func (nw *Network) FoldCount() int { return nw.folds }

// HandleFanins returns the fanin handles of h. The slice aliases the
// arena slab and must not be modified.
func (nw *Network) HandleFanins(h Handle) []Handle {
	nd := &nw.nodes[h]
	return nw.fanins[nd.faninOff : nd.faninOff+nd.nFanin]
}

// HandleLevel returns h's level (constants and inputs at 0).
func (nw *Network) HandleLevel(h Handle) int { return int(nw.nodes[h].level) }

// HandleIsInput reports whether h is a primary-input node.
func (nw *Network) HandleIsInput(h Handle) bool { return nw.nodes[h].kind == kindInput }

// HandleIsConst reports whether h is one of the constant nodes.
func (nw *Network) HandleIsConst(h Handle) bool { return nw.nodes[h].kind == kindConst }

// coverOf returns the phase slab of the node's cover.
func (nw *Network) nodeCover(h Handle) (phases []logic.Phase, nCubes, width int) {
	nd := &nw.nodes[h]
	w := int(nd.nFanin)
	return nw.phases[nd.coverOff : nd.coverOff+nd.nCubes*nd.nFanin], int(nd.nCubes), w
}

func hashCover(fanins []Handle, phases []logic.Phase) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(len(fanins))) * prime64
	for _, f := range fanins {
		h = (h ^ uint64(uint32(f))) * prime64
	}
	h = (h ^ 0xabcd) * prime64
	for _, p := range phases {
		h = (h ^ uint64(p)) * prime64
	}
	return h
}

// newInputHandle creates a fresh primary-input node with the given ordinal.
func (nw *Network) newInputHandle(ordinal int) Handle {
	h := Handle(len(nw.nodes))
	nw.nodes = append(nw.nodes, node{kind: kindInput, next: -1, input: int32(ordinal)})
	return h
}

// strashFunc interns the (fanins, cover) pair, folding constants and
// identities, and returns the structural handle plus whether the returned
// node's own cover bytes equal the requested cover (false on folds).
// Cover phases are laid out cube-major with the given width
// (= len(fanins)); on a strash miss they are copied into the slab.
func (nw *Network) strashFunc(fanins []Handle, phases []logic.Phase, nCubes int) (Handle, bool) {
	width := len(fanins)
	// Syntactic constant folds, mirroring the pointer network's nodeConst
	// view: no cubes is 0, any universal cube is 1.
	if nCubes == 0 {
		nw.folds++
		return Const0, false
	}
	universe := false
	for c := 0; c < nCubes; c++ {
		u := true
		for i := 0; i < width; i++ {
			if phases[c*width+i] != logic.DC {
				u = false
				break
			}
		}
		if u {
			universe = true
			break
		}
	}
	if universe {
		nw.folds++
		return Const1, false
	}
	// Identity fold: a single positive literal is the fanin itself.
	if nCubes == 1 {
		lit, pos := -1, false
		lits := 0
		for i := 0; i < width; i++ {
			if phases[i] != logic.DC {
				lits++
				lit, pos = i, phases[i] == logic.Pos
			}
		}
		if lits == 1 && pos {
			nw.folds++
			return fanins[lit], false
		}
	}
	hash := hashCover(fanins, phases[:nCubes*width])
	for at := nw.strashHead(hash); at >= 0; at = nw.nodes[at].next {
		nd := &nw.nodes[at]
		if nd.kind != kindFunc || nd.hash != hash || int(nd.nFanin) != width || int(nd.nCubes) != nCubes {
			continue
		}
		if !handleSliceEqual(nw.fanins[nd.faninOff:nd.faninOff+nd.nFanin], fanins) {
			continue
		}
		if !phaseSliceEqual(nw.phases[nd.coverOff:nd.coverOff+nd.nCubes*nd.nFanin], phases[:nCubes*width]) {
			continue
		}
		nw.dedups++
		return Handle(at), true
	}
	h := Handle(len(nw.nodes))
	level := int32(0)
	for _, f := range fanins {
		if l := nw.nodes[f].level + 1; l > level {
			level = l
		}
	}
	nd := node{
		kind:     kindFunc,
		level:    level,
		nFanin:   int32(width),
		faninOff: int32(len(nw.fanins)),
		nCubes:   int32(nCubes),
		coverOff: int32(len(nw.phases)),
		hash:     hash,
		next:     nw.strashHeadRaw(hash),
	}
	nw.fanins = append(nw.fanins, fanins...)
	nw.phases = append(nw.phases, phases[:nCubes*width]...)
	nw.nodes = append(nw.nodes, nd)
	nw.strash[hash] = int32(h)
	for _, f := range fanins {
		nw.ref(f)
	}
	return h, true
}

func (nw *Network) strashHead(hash uint64) int32 {
	if at, ok := nw.strash[hash]; ok {
		return at
	}
	return -1
}

func (nw *Network) strashHeadRaw(hash uint64) int32 { return nw.strashHead(hash) }

func (nw *Network) ref(h Handle) { nw.nodes[h].refs++ }

// deref drops one reference from h, sweeping it (and recursively its
// fanins) from the arena when no references remain.
func (nw *Network) deref(h Handle) {
	nd := &nw.nodes[h]
	nd.refs--
	if nd.refs > 0 || nd.kind != kindFunc {
		return
	}
	// Unlink from the strash chain so the dead shape can be rebuilt fresh.
	if head, ok := nw.strash[nd.hash]; ok {
		if head == int32(h) {
			if nd.next >= 0 {
				nw.strash[nd.hash] = nd.next
			} else {
				delete(nw.strash, nd.hash)
			}
		} else {
			for at := head; at >= 0; at = nw.nodes[at].next {
				if nw.nodes[at].next == int32(h) {
					nw.nodes[at].next = nd.next
					break
				}
			}
		}
	}
	nd.kind = kindDead
	nw.deadCnt++
	for _, f := range nw.HandleFanins(h) {
		nw.deref(f)
	}
}

func handleSliceEqual(a, b []Handle) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func phaseSliceEqual(a, b []logic.Phase) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Net layer: named signals with pointer-network semantics.

// NumNets returns the net count including dead slots.
func (nw *Network) NumNets() int { return len(nw.nets) }

// GateCount returns the number of live internal nets in O(1).
func (nw *Network) GateCount() int { return nw.funcNets }

// Inputs returns the primary-input nets in declaration order.
func (nw *Network) Inputs() []Net { return nw.inputs }

// Outputs returns the primary-output nets in marking order.
func (nw *Network) Outputs() []Net { return nw.outputs }

// NetName returns the net's signal name.
func (nw *Network) NetName(n Net) string { return nw.nets[n].name }

// NetKind returns NetInput or NetFunc.
func (nw *Network) NetKind(n Net) uint8 { return nw.nets[n].kind }

// NetIsInput reports whether the net is a primary input.
func (nw *Network) NetIsInput(n Net) bool { return nw.nets[n].kind == NetInput }

// NetIsDead reports whether the net has been removed.
func (nw *Network) NetIsDead(n Net) bool { return nw.nets[n].kind == netDead }

// NetIsOutput reports whether the net is marked as a primary output.
func (nw *Network) NetIsOutput(n Net) bool { return nw.nets[n].outCnt > 0 }

// NetFanins returns the fanin nets of n. The slice aliases the slab and
// must not be modified.
func (nw *Network) NetFanins(n Net) []Net {
	r := &nw.nets[n]
	return nw.netFan[r.faninOff : r.faninOff+r.nFanin]
}

// NetFanoutCount returns how many live net fanin positions reference n,
// plus one if n is a primary output — the pointer network's FanoutCounts.
func (nw *Network) NetFanoutCount(n Net) int { return int(nw.nets[n].refs) }

// NetCubes returns the net's cover as the raw phase slab (cube-major,
// width = fanin count) without allocating. The slice must not be modified.
func (nw *Network) NetCubes(n Net) (phases []logic.Phase, nCubes, width int) {
	r := &nw.nets[n]
	return nw.phases[r.coverOff : r.coverOff+r.nCubes*r.nFanin], int(r.nCubes), int(r.nFanin)
}

// NetCover materializes the net's cover as a logic.Cover (allocates; use
// NetCubes on hot paths).
func (nw *Network) NetCover(n Net) logic.Cover {
	phases, nCubes, width := nw.NetCubes(n)
	cv := logic.NewCover(width)
	cv.Cubes = make([]logic.Cube, nCubes)
	for c := 0; c < nCubes; c++ {
		cube := make(logic.Cube, width)
		copy(cube, phases[c*width:(c+1)*width])
		cv.Cubes[c] = cube
	}
	return cv
}

// NetByName returns the live net with the given name, or InvalidNet.
func (nw *Network) NetByName(name string) Net {
	if n, ok := nw.byName[name]; ok {
		return n
	}
	return InvalidNet
}

// NetHandle returns the structural handle of the net's function,
// recomputing stale handles after net-layer mutations.
func (nw *Network) NetHandle(n Net) Handle {
	if nw.stale {
		nw.Rehash()
	}
	return nw.nets[n].h
}

// AddInput creates a primary-input net. It panics if the name is taken.
func (nw *Network) AddInput(name string) Net {
	nw.mustBeFresh(name)
	h := nw.newInputHandle(len(nw.inputs))
	nw.ref(h)
	n := Net(len(nw.nets))
	nw.nets = append(nw.nets, netRec{name: name, kind: NetInput, h: h})
	nw.byName[name] = n
	nw.inputs = append(nw.inputs, n)
	return n
}

// AddNode creates an internal net computing the cover over the fanins.
// The cover's variable count must equal len(fanins). Structurally
// identical creations share a handle; the net itself is always fresh.
func (nw *Network) AddNode(name string, fanins []Net, cover logic.Cover) Net {
	nw.mustBeFresh(name)
	if cover.N != len(fanins) {
		panic(fmt.Sprintf("netcore: node %s: cover over %d variables with %d fanins",
			name, cover.N, len(fanins)))
	}
	n := Net(len(nw.nets))
	nw.nets = append(nw.nets, netRec{name: name, kind: NetFunc})
	nw.byName[name] = n
	nw.funcNets++
	nw.bindFunction(n, fanins, cover)
	return n
}

// bindFunction installs (fanins, cover) as net n's function, interning the
// shape in the arena and wiring reference counts. When the shape is owned
// by a structural node (miss or dedup) the net shares that node's phase
// slab range; folded shapes get their own copy so the net's cover of
// record stays exactly as written.
func (nw *Network) bindFunction(n Net, fanins []Net, cover logic.Cover) {
	r := &nw.nets[n]
	r.faninOff = int32(len(nw.netFan))
	r.nFanin = int32(len(fanins))
	nw.netFan = append(nw.netFan, fanins...)
	for _, f := range fanins {
		nw.nets[f].refs++
	}
	width := len(fanins)
	nw.scratchPh = nw.scratchPh[:0]
	for _, c := range cover.Cubes {
		nw.scratchPh = append(nw.scratchPh, c...)
	}
	nw.scratchH = nw.scratchH[:0]
	for _, f := range fanins {
		nw.scratchH = append(nw.scratchH, nw.nets[f].h)
	}
	h, owned := nw.strashFunc(nw.scratchH, nw.scratchPh, len(cover.Cubes))
	if owned {
		r.coverOff = nw.nodes[h].coverOff
	} else {
		r.coverOff = int32(len(nw.phases))
		nw.phases = append(nw.phases, nw.scratchPh[:len(cover.Cubes)*width]...)
	}
	r.nCubes = int32(len(cover.Cubes))
	r.h = h
	nw.ref(h)
}

// SetFunction replaces net n's function with the cover over the fanins.
// Handle recomputation for downstream nets is deferred to the next
// handle-layer query (Rehash).
func (nw *Network) SetFunction(n Net, fanins []Net, cover logic.Cover) {
	if cover.N != len(fanins) {
		panic(fmt.Sprintf("netcore: SetFunction %s: cover over %d variables with %d fanins",
			nw.nets[n].name, cover.N, len(fanins)))
	}
	if nw.nets[n].kind != NetFunc {
		panic(fmt.Sprintf("netcore: SetFunction on non-internal net %s", nw.nets[n].name))
	}
	nw.unbindFunction(n)
	r := &nw.nets[n]
	r.faninOff = int32(len(nw.netFan))
	r.nFanin = int32(len(fanins))
	nw.netFan = append(nw.netFan, fanins...)
	for _, f := range fanins {
		nw.nets[f].refs++
	}
	r.coverOff = int32(len(nw.phases))
	r.nCubes = int32(len(cover.Cubes))
	for _, c := range cover.Cubes {
		nw.phases = append(nw.phases, c...)
	}
	r.h = InvalidHandle
	nw.stale = true
}

func (nw *Network) unbindFunction(n Net) {
	r := &nw.nets[n]
	for _, f := range nw.NetFanins(n) {
		nw.nets[f].refs--
	}
	if r.h >= 0 {
		nw.deref(r.h)
		r.h = InvalidHandle
	}
}

// MarkOutput declares the net a primary output. A net may be marked once;
// repeated marks are ignored, as in the pointer network.
func (nw *Network) MarkOutput(n Net) {
	if nw.nets[n].outCnt > 0 {
		return
	}
	nw.appendOutput(n)
}

// appendOutput adds an outputs-list entry unconditionally — ReplaceNet and
// the bridge use it to reproduce duplicate output entries exactly.
func (nw *Network) appendOutput(n Net) {
	nw.nets[n].outCnt++
	nw.nets[n].refs++
	nw.outputs = append(nw.outputs, n)
}

func (nw *Network) mustBeFresh(name string) {
	if _, dup := nw.byName[name]; dup {
		panic(fmt.Sprintf("netcore: duplicate net name %q", name))
	}
}

// FreshName returns a name derived from base that is not in use. A cached
// per-base next suffix makes the scan O(1) amortized; removing a net
// invalidates the affected base so the produced names match a from-zero
// rescan exactly.
func (nw *Network) FreshName(base string) string {
	if _, taken := nw.byName[base]; !taken {
		return base
	}
	for i := nw.suffix[base]; ; i++ {
		name := fmt.Sprintf("%s_%d", base, i)
		if _, taken := nw.byName[name]; !taken {
			nw.suffix[base] = i
			return name
		}
	}
}

// noteRemovedName keeps the FreshName cache a sound lower bound: freeing
// base_i for any i below the cached suffix re-opens the hole.
func (nw *Network) noteRemovedName(name string) {
	i := strings.LastIndexByte(name, '_')
	if i < 0 {
		return
	}
	delete(nw.suffix, name[:i])
}

// ReplaceNet substitutes old with repl in every fanin list and the output
// list, then removes old. Mirrors the pointer network's ReplaceNode.
func (nw *Network) ReplaceNet(old, repl Net) {
	for i := range nw.nets {
		r := &nw.nets[i]
		if r.kind == netDead {
			continue
		}
		fans := nw.netFan[r.faninOff : r.faninOff+r.nFanin]
		for j, f := range fans {
			if f == old {
				fans[j] = repl
				nw.nets[old].refs--
				nw.nets[repl].refs++
			}
		}
	}
	if nw.nets[old].outCnt > 0 {
		for i, o := range nw.outputs {
			if o == old {
				nw.outputs[i] = repl
				nw.nets[old].outCnt--
				nw.nets[old].refs--
				nw.nets[repl].outCnt++
				nw.nets[repl].refs++
			}
		}
	}
	nw.removeNet(old)
	nw.stale = true
}

// removeNet kills the net record. The caller must have cleared external
// references (fanin positions, output marks).
func (nw *Network) removeNet(n Net) {
	r := &nw.nets[n]
	if r.kind == netDead {
		return
	}
	nw.unbindFunction(n)
	if r.kind == NetFunc {
		nw.funcNets--
	} else if r.kind == NetInput {
		for i, x := range nw.inputs {
			if x == n {
				nw.inputs = append(nw.inputs[:i], nw.inputs[i+1:]...)
				break
			}
		}
	}
	delete(nw.byName, r.name)
	nw.noteRemovedName(r.name)
	r.kind = netDead
	r.nFanin = 0
	r.nCubes = 0
}

// RemoveDangling deletes internal nets with no fanouts that are not
// outputs, repeating until fixpoint. Returns the number removed.
func (nw *Network) RemoveDangling() int {
	removed := 0
	for {
		round := 0
		for i := range nw.nets {
			r := &nw.nets[i]
			if r.kind == NetFunc && r.refs == 0 {
				nw.removeNet(Net(i))
				round++
			}
		}
		if round == 0 {
			return removed
		}
		removed += round
	}
}

// Nets returns all live nets in creation order.
func (nw *Network) Nets() []Net {
	out := make([]Net, 0, len(nw.nets))
	for i := range nw.nets {
		if nw.nets[i].kind != netDead {
			out = append(out, Net(i))
		}
	}
	return out
}

// InternalNets returns the live internal nets in creation order.
func (nw *Network) InternalNets() []Net {
	out := make([]Net, 0, nw.funcNets)
	for i := range nw.nets {
		if nw.nets[i].kind == NetFunc {
			out = append(out, Net(i))
		}
	}
	return out
}

// TopoNets returns the live nets in topological order (fanins before
// fanouts), visiting roots in creation order exactly as the pointer
// network's TopoSort does. It returns an error on a cycle.
func (nw *Network) TopoNets() ([]Net, error) {
	const (
		unseen = 0
		active = 1
		done   = 2
	)
	state := make([]uint8, len(nw.nets))
	out := make([]Net, 0, len(nw.nets))
	var visit func(n Net) error
	visit = func(n Net) error {
		switch state[n] {
		case done:
			return nil
		case active:
			return fmt.Errorf("netcore %s: cycle through net %s", nw.Name, nw.nets[n].name)
		}
		state[n] = active
		for _, f := range nw.NetFanins(n) {
			if err := visit(f); err != nil {
				return err
			}
		}
		state[n] = done
		out = append(out, n)
		return nil
	}
	for i := range nw.nets {
		if nw.nets[i].kind == netDead {
			continue
		}
		if err := visit(Net(i)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Validate checks structural sanity: acyclicity, cover arity, live
// fanins, reference-count consistency, and that outputs exist.
func (nw *Network) Validate() error {
	if _, err := nw.TopoNets(); err != nil {
		return err
	}
	refs := make([]int32, len(nw.nets))
	for i := range nw.nets {
		r := &nw.nets[i]
		if r.kind == netDead {
			continue
		}
		for _, f := range nw.NetFanins(Net(i)) {
			if nw.nets[f].kind == netDead {
				return fmt.Errorf("netcore %s: net %s has dead fanin %s", nw.Name, r.name, nw.nets[f].name)
			}
			refs[f]++
		}
		refs[i] += r.outCnt
	}
	for i := range nw.nets {
		r := &nw.nets[i]
		if r.kind == netDead {
			continue
		}
		if r.refs != refs[i] {
			return fmt.Errorf("netcore %s: net %s refcount %d, recount %d", nw.Name, r.name, r.refs, refs[i])
		}
	}
	if len(nw.outputs) == 0 {
		return fmt.Errorf("netcore %s: no primary outputs", nw.Name)
	}
	return nil
}

// Rehash refreshes stale structural handles bottom-up after net-layer
// mutations. Nets whose shape is unchanged keep their handle (the intern
// lookup finds the existing node); changed nets swap their reference to
// the re-interned shape, sweeping nodes that lose their last reference.
// The dedup/fold counters are preserved — maintenance re-interning is not
// a creation-time dedup.
func (nw *Network) Rehash() {
	if !nw.stale {
		return
	}
	order, err := nw.TopoNets()
	if err != nil {
		panic(err)
	}
	savedDedups, savedFolds := nw.dedups, nw.folds
	var hFanins []Handle
	for _, n := range order {
		r := &nw.nets[n]
		if r.kind != NetFunc {
			continue
		}
		hFanins = hFanins[:0]
		for _, f := range nw.NetFanins(n) {
			hFanins = append(hFanins, nw.nets[f].h)
		}
		phases, nCubes, _ := nw.NetCubes(n)
		h, _ := nw.strashFunc(hFanins, phases, nCubes)
		if h != r.h {
			nw.ref(h)
			if r.h >= 0 {
				nw.deref(r.h)
			}
			r.h = h
		}
	}
	nw.dedups, nw.folds = savedDedups, savedFolds
	nw.stale = false
}

// Levels returns each live net's level (inputs at 0) and the depth.
func (nw *Network) Levels() ([]int32, int) {
	order, err := nw.TopoNets()
	if err != nil {
		panic(err)
	}
	levels := make([]int32, len(nw.nets))
	depth := int32(0)
	for _, n := range order {
		if nw.nets[n].kind == NetInput {
			continue
		}
		l := int32(0)
		for _, f := range nw.NetFanins(n) {
			if levels[f]+1 > l {
				l = levels[f] + 1
			}
		}
		levels[n] = l
		if l > depth {
			depth = l
		}
	}
	return levels, int(depth)
}

// Eval computes every live net's value under the input assignment.
func (nw *Network) Eval(inputs map[string]bool) (map[string]bool, error) {
	order, err := nw.TopoNets()
	if err != nil {
		return nil, err
	}
	values := make([]bool, len(nw.nets))
	out := make(map[string]bool, len(order))
	var assign []bool
	for _, n := range order {
		r := &nw.nets[n]
		if r.kind == NetInput {
			v, ok := inputs[r.name]
			if !ok {
				return nil, fmt.Errorf("netcore %s: no value for input %s", nw.Name, r.name)
			}
			values[n] = v
			out[r.name] = v
			continue
		}
		fans := nw.NetFanins(n)
		assign = assign[:0]
		for _, f := range fans {
			assign = append(assign, values[f])
		}
		phases, nCubes, width := nw.NetCubes(n)
		v := evalCover(phases, nCubes, width, assign)
		values[n] = v
		out[r.name] = v
	}
	return out, nil
}

// evalCover evaluates a slab cover on one assignment.
func evalCover(phases []logic.Phase, nCubes, width int, assign []bool) bool {
	for c := 0; c < nCubes; c++ {
		row := phases[c*width : (c+1)*width]
		ok := true
		for i, p := range row {
			if (p == logic.Pos && !assign[i]) || (p == logic.Neg && assign[i]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Stats summarizes the network.
type Stats struct {
	Inputs   int
	Outputs  int
	Gates    int
	Levels   int
	Literals int
	Handles  int // live structural nodes
	Dedups   int // creations answered by strash
}

// Stats computes summary statistics.
func (nw *Network) Stats() Stats {
	_, depth := nw.Levels()
	lits := 0
	for i := range nw.nets {
		if nw.nets[i].kind != NetFunc {
			continue
		}
		phases, _, _ := nw.NetCubes(Net(i))
		for _, p := range phases {
			if p != logic.DC {
				lits++
			}
		}
	}
	return Stats{
		Inputs:   len(nw.inputs),
		Outputs:  len(nw.outputs),
		Gates:    nw.funcNets,
		Levels:   depth,
		Literals: lits,
		Handles:  nw.LiveHandles(),
		Dedups:   nw.dedups,
	}
}

// SortedNetNames returns all live net names sorted.
func (nw *Network) SortedNetNames() []string {
	names := make([]string, 0, len(nw.byName))
	for name := range nw.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
