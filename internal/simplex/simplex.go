// Package simplex implements a dense two-phase primal simplex solver for
// linear programs in the form
//
//	minimize    c·x
//	subject to  A x ≤ b
//	            x ≥ 0
//
// It stands in for the lp_solve library used by the original TELS tool.
// The threshold-check ILPs it serves are tiny (at most fanin-restriction+1
// variables), so the implementation favours clarity and numerical
// robustness (Bland's anti-cycling rule, explicit tolerances) over speed.
package simplex

import (
	"fmt"
	"math"
)

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal    Status = iota // an optimal solution was found
	Infeasible               // the constraints admit no solution
	Unbounded                // the objective is unbounded below
	IterLimit                // the iteration limit was reached
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Problem is a linear program: minimize C·x subject to A x ≤ B, x ≥ 0.
type Problem struct {
	C []float64   // objective coefficients, length = number of variables
	A [][]float64 // constraint rows, each of length len(C)
	B []float64   // right-hand sides, length = len(A)
}

// Validate checks structural consistency of the problem.
func (p *Problem) Validate() error {
	n := len(p.C)
	if len(p.A) != len(p.B) {
		return fmt.Errorf("simplex: %d constraint rows but %d right-hand sides", len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("simplex: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	return nil
}

// Clone returns a deep copy of the problem.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		C: append([]float64(nil), p.C...),
		B: append([]float64(nil), p.B...),
		A: make([][]float64, len(p.A)),
	}
	for i, row := range p.A {
		q.A[i] = append([]float64(nil), row...)
	}
	return q
}

// AddConstraint appends the row a·x ≤ b to the problem.
func (p *Problem) AddConstraint(a []float64, b float64) {
	row := append([]float64(nil), a...)
	p.A = append(p.A, row)
	p.B = append(p.B, b)
}

// Result holds the outcome of a solve.
type Result struct {
	Status    Status
	X         []float64 // primal solution (valid when Status == Optimal)
	Objective float64   // objective value at X
}

const (
	eps          = 1e-9
	defaultIters = 20000
)

// Solve runs two-phase primal simplex on the problem.
func Solve(p *Problem) Result {
	return SolveWithLimit(p, defaultIters)
}

// SolveWithLimit is Solve with an explicit pivot-count budget.
func SolveWithLimit(p *Problem, maxIters int) Result {
	if err := p.Validate(); err != nil {
		return Result{Status: Infeasible}
	}
	n := len(p.C)
	m := len(p.A)
	if m == 0 {
		// Unconstrained: optimum is x = 0 unless some cost is negative.
		for _, c := range p.C {
			if c < -eps {
				return Result{Status: Unbounded}
			}
		}
		return Result{Status: Optimal, X: make([]float64, n)}
	}

	// Tableau layout: columns are [x_0..x_{n-1}, s_0..s_{m-1}, a_0.., rhs].
	// Rows with negative b are negated so rhs ≥ 0; such rows get an
	// artificial variable (their slack enters with coefficient -1).
	numArt := 0
	negRow := make([]bool, m)
	for i, b := range p.B {
		if b < 0 {
			negRow[i] = true
			numArt++
		}
	}
	cols := n + m + numArt + 1
	rhs := cols - 1
	tab := make([][]float64, m)
	basis := make([]int, m)
	artOf := make([]int, m)
	for i := range artOf {
		artOf[i] = -1
	}
	artCol := n + m
	for i := 0; i < m; i++ {
		row := make([]float64, cols)
		sign := 1.0
		if negRow[i] {
			sign = -1.0
		}
		for j := 0; j < n; j++ {
			row[j] = sign * p.A[i][j]
		}
		row[n+i] = sign // slack
		row[rhs] = sign * p.B[i]
		if negRow[i] {
			row[artCol] = 1
			basis[i] = artCol
			artOf[i] = artCol
			artCol++
		} else {
			basis[i] = n + i
		}
		tab[i] = row
	}

	iters := maxIters

	// Phase 1: minimize the sum of artificial variables.
	if numArt > 0 {
		obj := make([]float64, cols)
		for i := 0; i < m; i++ {
			if artOf[i] >= 0 {
				// Objective row = sum of artificial rows (reduced costs of
				// basic artificials must be zero).
				for j := 0; j < cols; j++ {
					obj[j] -= tab[i][j]
				}
			}
		}
		for c := n + m; c < n+m+numArt; c++ {
			obj[c] += 1
		}
		st := pivotLoop(tab, obj, basis, rhs, n+m+numArt, &iters)
		if st == IterLimit {
			return Result{Status: IterLimit}
		}
		if -obj[rhs] > 1e-7 { // phase-1 objective value is -obj[rhs]
			return Result{Status: Infeasible}
		}
		// Drive any remaining basic artificials out of the basis.
		for i := 0; i < m; i++ {
			if basis[i] >= n+m {
				pivoted := false
				for j := 0; j < n+m; j++ {
					if math.Abs(tab[i][j]) > eps {
						pivot(tab, obj, basis, i, j)
						pivoted = true
						break
					}
				}
				if !pivoted {
					// Redundant row; harmless to leave (rhs is ~0).
					continue
				}
			}
		}
	}

	// Phase 2: minimize the real objective over columns [0, n+m).
	obj := make([]float64, cols)
	for j := 0; j < n; j++ {
		obj[j] = p.C[j]
	}
	// Price out basic variables.
	for i := 0; i < m; i++ {
		bj := basis[i]
		if bj < len(obj) && math.Abs(obj[bj]) > eps {
			coef := obj[bj]
			for j := 0; j < cols; j++ {
				obj[j] -= coef * tab[i][j]
			}
		}
	}
	st := pivotLoop(tab, obj, basis, rhs, n+m, &iters)
	switch st {
	case IterLimit:
		return Result{Status: IterLimit}
	case Unbounded:
		return Result{Status: Unbounded}
	}
	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = tab[i][rhs]
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.C[j] * x[j]
	}
	return Result{Status: Optimal, X: x, Objective: objVal}
}

// pivotLoop runs simplex pivots until optimality, unboundedness, or the
// iteration budget is exhausted. Columns at index ≥ lastCol (artificials in
// phase 2) are never chosen to enter. Bland's rule (smallest eligible
// index) guarantees termination in exact arithmetic.
func pivotLoop(tab [][]float64, obj []float64, basis []int, rhs, lastCol int, iters *int) Status {
	m := len(tab)
	for {
		if *iters <= 0 {
			return IterLimit
		}
		*iters--
		// Entering column: Bland's rule.
		enter := -1
		for j := 0; j < lastCol; j++ {
			if obj[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Leaving row: minimum ratio, ties by smallest basis index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][enter]
			if a > eps {
				ratio := tab[i][rhs] / a
				if ratio < bestRatio-eps || (ratio < bestRatio+eps && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		pivot(tab, obj, basis, leave, enter)
	}
}

// pivot performs a full Gauss–Jordan pivot at (row, col).
func pivot(tab [][]float64, obj []float64, basis []int, row, col int) {
	p := tab[row][col]
	for j := range tab[row] {
		tab[row][j] /= p
	}
	tab[row][col] = 1 // exact
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if math.Abs(f) <= eps {
			tab[i][col] = 0
			continue
		}
		for j := range tab[i] {
			tab[i][j] -= f * tab[row][j]
		}
		tab[i][col] = 0
	}
	f := obj[col]
	if math.Abs(f) > eps {
		for j := range obj {
			obj[j] -= f * tab[row][j]
		}
	}
	obj[col] = 0
	basis[row] = col
}
