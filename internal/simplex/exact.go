package simplex

import "math/big"

// SolveExact runs the same two-phase primal simplex as Solve but in exact
// rational arithmetic (math/big.Rat): no tolerances, no rounding. It is
// slower and exists to cross-validate the float64 solver — the threshold
// ILPs are small enough that exactness is affordable when certainty
// matters (see ilp.Solver.Exact).
func SolveExact(p *Problem) Result {
	return SolveExactWithLimit(p, defaultIters)
}

// SolveExactWithLimit is SolveExact with an explicit pivot budget.
func SolveExactWithLimit(p *Problem, maxIters int) Result {
	if err := p.Validate(); err != nil {
		return Result{Status: Infeasible}
	}
	n := len(p.C)
	m := len(p.A)
	if m == 0 {
		for _, c := range p.C {
			if c < 0 {
				return Result{Status: Unbounded}
			}
		}
		return Result{Status: Optimal, X: make([]float64, n)}
	}

	numArt := 0
	negRow := make([]bool, m)
	for i, b := range p.B {
		if b < 0 {
			negRow[i] = true
			numArt++
		}
	}
	cols := n + m + numArt + 1
	rhs := cols - 1
	tab := make([][]*big.Rat, m)
	basis := make([]int, m)
	artOf := make([]int, m)
	for i := range artOf {
		artOf[i] = -1
	}
	artCol := n + m
	for i := 0; i < m; i++ {
		row := make([]*big.Rat, cols)
		for j := range row {
			row[j] = new(big.Rat)
		}
		sign := int64(1)
		if negRow[i] {
			sign = -1
		}
		for j := 0; j < n; j++ {
			row[j].SetFloat64(p.A[i][j])
			row[j].Mul(row[j], big.NewRat(sign, 1))
		}
		row[n+i].SetInt64(sign)
		row[rhs].SetFloat64(p.B[i])
		row[rhs].Mul(row[rhs], big.NewRat(sign, 1))
		if negRow[i] {
			row[artCol].SetInt64(1)
			basis[i] = artCol
			artOf[i] = artCol
			artCol++
		} else {
			basis[i] = n + i
		}
		tab[i] = row
	}

	iters := maxIters

	if numArt > 0 {
		obj := newRatRow(cols)
		for i := 0; i < m; i++ {
			if artOf[i] >= 0 {
				for j := 0; j < cols; j++ {
					obj[j].Sub(obj[j], tab[i][j])
				}
			}
		}
		for c := n + m; c < n+m+numArt; c++ {
			obj[c].Add(obj[c], big.NewRat(1, 1))
		}
		st := exactPivotLoop(tab, obj, basis, rhs, n+m+numArt, &iters)
		if st == IterLimit {
			return Result{Status: IterLimit}
		}
		if obj[rhs].Sign() != 0 { // phase-1 optimum is -obj[rhs]
			return Result{Status: Infeasible}
		}
		for i := 0; i < m; i++ {
			if basis[i] >= n+m {
				for j := 0; j < n+m; j++ {
					if tab[i][j].Sign() != 0 {
						exactPivot(tab, obj, basis, i, j)
						break
					}
				}
			}
		}
	}

	obj := newRatRow(cols)
	for j := 0; j < n; j++ {
		obj[j].SetFloat64(p.C[j])
	}
	for i := 0; i < m; i++ {
		bj := basis[i]
		if bj < len(obj) && obj[bj].Sign() != 0 {
			coef := new(big.Rat).Set(obj[bj])
			for j := 0; j < cols; j++ {
				obj[j].Sub(obj[j], new(big.Rat).Mul(coef, tab[i][j]))
			}
		}
	}
	st := exactPivotLoop(tab, obj, basis, rhs, n+m, &iters)
	switch st {
	case IterLimit:
		return Result{Status: IterLimit}
	case Unbounded:
		return Result{Status: Unbounded}
	}
	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]], _ = tab[i][rhs].Float64()
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.C[j] * x[j]
	}
	return Result{Status: Optimal, X: x, Objective: objVal}
}

func newRatRow(n int) []*big.Rat {
	row := make([]*big.Rat, n)
	for i := range row {
		row[i] = new(big.Rat)
	}
	return row
}

func exactPivotLoop(tab [][]*big.Rat, obj []*big.Rat, basis []int, rhs, lastCol int, iters *int) Status {
	m := len(tab)
	for {
		if *iters <= 0 {
			return IterLimit
		}
		*iters--
		enter := -1
		for j := 0; j < lastCol; j++ { // Bland's rule
			if obj[j].Sign() < 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			return Optimal
		}
		leave := -1
		var bestRatio *big.Rat
		for i := 0; i < m; i++ {
			if tab[i][enter].Sign() > 0 {
				ratio := new(big.Rat).Quo(tab[i][rhs], tab[i][enter])
				switch {
				case leave < 0 || ratio.Cmp(bestRatio) < 0:
					bestRatio = ratio
					leave = i
				case ratio.Cmp(bestRatio) == 0 && basis[i] < basis[leave]:
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		exactPivot(tab, obj, basis, leave, enter)
	}
}

func exactPivot(tab [][]*big.Rat, obj []*big.Rat, basis []int, row, col int) {
	pv := new(big.Rat).Set(tab[row][col])
	for j := range tab[row] {
		tab[row][j].Quo(tab[row][j], pv)
	}
	for i := range tab {
		if i == row || tab[i][col].Sign() == 0 {
			continue
		}
		f := new(big.Rat).Set(tab[i][col])
		for j := range tab[i] {
			tab[i][j].Sub(tab[i][j], new(big.Rat).Mul(f, tab[row][j]))
		}
	}
	if obj[col].Sign() != 0 {
		f := new(big.Rat).Set(obj[col])
		for j := range obj {
			obj[j].Sub(obj[j], new(big.Rat).Mul(f, tab[row][j]))
		}
	}
	basis[row] = col
}
