package simplex

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleLP(t *testing.T) {
	// max x+y s.t. x+2y ≤ 4, 3x+y ≤ 6  => min -(x+y); optimum at (8/5, 6/5).
	p := &Problem{
		C: []float64{-1, -1},
		A: [][]float64{{1, 2}, {3, 1}},
		B: []float64{4, 6},
	}
	res := Solve(p)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !almostEq(res.X[0], 1.6) || !almostEq(res.X[1], 1.2) {
		t.Fatalf("X = %v, want [1.6 1.2]", res.X)
	}
	if !almostEq(res.Objective, -2.8) {
		t.Fatalf("obj = %v, want -2.8", res.Objective)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x+y s.t. x+y ≥ 3 (i.e. -x-y ≤ -3). Optimum value 3.
	p := &Problem{
		C: []float64{1, 1},
		A: [][]float64{{-1, -1}},
		B: []float64{-3},
	}
	res := Solve(p)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !almostEq(res.X[0]+res.X[1], 3) {
		t.Fatalf("X = %v, want sum 3", res.X)
	}
	if !almostEq(res.Objective, 3) {
		t.Fatalf("obj = %v, want 3", res.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 2.
	p := &Problem{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{1, -2},
	}
	if res := Solve(p); res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with only x ≥ 1.
	p := &Problem{
		C: []float64{-1},
		A: [][]float64{{-1}},
		B: []float64{-1},
	}
	if res := Solve(p); res.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestNoConstraints(t *testing.T) {
	p := &Problem{C: []float64{1, 2}}
	res := Solve(p)
	if res.Status != Optimal || res.X[0] != 0 || res.X[1] != 0 {
		t.Fatalf("res = %+v, want optimal at origin", res)
	}
	p2 := &Problem{C: []float64{-1}}
	if res := Solve(p2); res.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestDegenerate(t *testing.T) {
	// Klee-Minty-flavoured degenerate constraints should still terminate.
	p := &Problem{
		C: []float64{-1, -1, -1},
		A: [][]float64{
			{1, 0, 0},
			{1, 0, 0},
			{0, 1, 0},
			{1, 1, 1},
			{1, 1, 1},
		},
		B: []float64{2, 2, 3, 4, 4},
	}
	res := Solve(p)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !almostEq(res.Objective, -4) {
		t.Fatalf("obj = %v, want -4", res.Objective)
	}
}

func TestValidate(t *testing.T) {
	p := &Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate should reject ragged rows")
	}
	q := &Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{}}
	if err := q.Validate(); err == nil {
		t.Fatal("Validate should reject mismatched B")
	}
}

func TestThresholdStyleLP(t *testing.T) {
	// The LP relaxation of the paper's worked example (§V-B):
	// min w1+w2+w3+T
	//   w1+w2 ≥ T        (ON, δon=0)
	//   w1+w3 ≥ T
	//   w2+w3 ≤ T-1      (OFF, δoff=1)
	//   w1    ≤ T-1
	// Variables: w1,w2,w3,T ≥ 0.
	p := &Problem{
		C: []float64{1, 1, 1, 1},
		A: [][]float64{
			{-1, -1, 0, 1},
			{-1, 0, -1, 1},
			{0, 1, 1, -1},
			{1, 0, 0, -1},
		},
		B: []float64{0, 0, -1, -1},
	}
	res := Solve(p)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Feasibility of the returned point.
	w1, w2, w3, T := res.X[0], res.X[1], res.X[2], res.X[3]
	if w1+w2 < T-1e-6 || w1+w3 < T-1e-6 {
		t.Fatalf("ON constraints violated: %v", res.X)
	}
	if w2+w3 > T-1+1e-6 || w1 > T-1+1e-6 {
		t.Fatalf("OFF constraints violated: %v", res.X)
	}
}

// Randomized cross-check against brute force over a small grid: whenever
// simplex says optimal, no grid point may beat it; whenever it says
// infeasible, no grid point may be feasible.
func TestRandomAgainstGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := 2
		m := 1 + rng.Intn(3)
		p := &Problem{C: make([]float64, n)}
		for j := range p.C {
			p.C[j] = float64(rng.Intn(5)) // nonneg cost => bounded
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(rng.Intn(7) - 3)
			}
			p.A = append(p.A, row)
			p.B = append(p.B, float64(rng.Intn(9)-4))
		}
		res := Solve(p)
		bestGrid := math.Inf(1)
		feasibleGrid := false
		for x0 := 0.0; x0 <= 6; x0 += 0.5 {
			for x1 := 0.0; x1 <= 6; x1 += 0.5 {
				ok := true
				for i := range p.A {
					if p.A[i][0]*x0+p.A[i][1]*x1 > p.B[i]+1e-9 {
						ok = false
						break
					}
				}
				if ok {
					feasibleGrid = true
					v := p.C[0]*x0 + p.C[1]*x1
					if v < bestGrid {
						bestGrid = v
					}
				}
			}
		}
		switch res.Status {
		case Optimal:
			if feasibleGrid && res.Objective > bestGrid+1e-6 {
				t.Fatalf("iter %d: simplex %v worse than grid %v (p=%+v)", iter, res.Objective, bestGrid, p)
			}
		case Infeasible:
			if feasibleGrid {
				t.Fatalf("iter %d: simplex infeasible but grid point exists (p=%+v)", iter, p)
			}
		}
	}
}

// The exact rational solver must agree with the float64 solver on status
// and objective across random problems.
func TestExactAgreesWithFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for iter := 0; iter < 250; iter++ {
		n := 2 + rng.Intn(3)
		m := 1 + rng.Intn(4)
		p := &Problem{C: make([]float64, n)}
		for j := range p.C {
			p.C[j] = float64(rng.Intn(5))
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(rng.Intn(9) - 4)
			}
			p.A = append(p.A, row)
			p.B = append(p.B, float64(rng.Intn(9)-4))
		}
		fl := Solve(p)
		ex := SolveExact(p)
		if fl.Status != ex.Status {
			t.Fatalf("iter %d: status float=%v exact=%v (p=%+v)", iter, fl.Status, ex.Status, p)
		}
		if fl.Status == Optimal && math.Abs(fl.Objective-ex.Objective) > 1e-6 {
			t.Fatalf("iter %d: objective float=%v exact=%v (p=%+v)", iter, fl.Objective, ex.Objective, p)
		}
	}
}

func TestExactBasicCases(t *testing.T) {
	// min x+y s.t. x+y >= 3.
	p := &Problem{C: []float64{1, 1}, A: [][]float64{{-1, -1}}, B: []float64{-3}}
	res := SolveExact(p)
	if res.Status != Optimal || math.Abs(res.Objective-3) > 1e-12 {
		t.Fatalf("res = %+v", res)
	}
	// Infeasible.
	q := &Problem{C: []float64{1}, A: [][]float64{{1}, {-1}}, B: []float64{1, -2}}
	if res := SolveExact(q); res.Status != Infeasible {
		t.Fatalf("status = %v", res.Status)
	}
	// Unbounded.
	u := &Problem{C: []float64{-1}, A: [][]float64{{-1}}, B: []float64{-1}}
	if res := SolveExact(u); res.Status != Unbounded {
		t.Fatalf("status = %v", res.Status)
	}
	// No constraints.
	if res := SolveExact(&Problem{C: []float64{2}}); res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
}
