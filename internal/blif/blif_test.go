package blif

import (
	"strings"
	"testing"

	"tels/internal/network"
)

const sample = `
# the paper's Fig 2(a) network
.model fig2a
.inputs x1 x2 x3 x4 x5 x6 x7
.outputs f
.names x1 x2 x3 n4
111 1
.names x1 inv
0 1
.names inv x4 n5
11 1
.names n4 n5 n3
1- 1
-1 1
.names n3 x5 n1
11 1
.names x6 x7 n2
11 1
.names n1 n2 f
1- 1
-1 1
.end
`

func TestParseSample(t *testing.T) {
	nw, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Name != "fig2a" {
		t.Errorf("name = %q", nw.Name)
	}
	if len(nw.Inputs) != 7 || len(nw.Outputs) != 1 {
		t.Fatalf("I/O = %d/%d", len(nw.Inputs), len(nw.Outputs))
	}
	if nw.GateCount() != 7 {
		t.Fatalf("gates = %d, want 7", nw.GateCount())
	}
	out, err := nw.EvalOutputs(map[string]bool{
		"x1": true, "x2": true, "x3": true, "x4": false,
		"x5": true, "x6": false, "x7": false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0] {
		t.Fatal("f(1110100..) should be 1")
	}
}

func TestRoundTrip(t *testing.T) {
	nw, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	text, err := WriteString(nw)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if back.GateCount() != nw.GateCount() {
		t.Fatalf("round trip changed gate count: %d -> %d", nw.GateCount(), back.GateCount())
	}
	// Behavioural identity on all 128 input vectors.
	for m := 0; m < 128; m++ {
		in := map[string]bool{}
		for i := 1; i <= 7; i++ {
			in["x"+string(rune('0'+i))] = m&(1<<uint(i-1)) != 0
		}
		a, _ := nw.EvalOutputs(in)
		b, _ := back.EvalOutputs(in)
		if a[0] != b[0] {
			t.Fatalf("round trip differs at vector %d", m)
		}
	}
}

func TestContinuationAndComments(t *testing.T) {
	text := `
.model c
.inputs a \
 b
.outputs y
.names a b y  # a comment
11 1
.end
`
	nw, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Inputs) != 2 {
		t.Fatalf("inputs = %d, want 2", len(nw.Inputs))
	}
}

func TestConstants(t *testing.T) {
	text := `
.model consts
.inputs a
.outputs z0 z1
.names z0
.names z1
1
.end
`
	nw, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	out, err := nw.EvalOutputs(map[string]bool{"a": true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != false || out[1] != true {
		t.Fatalf("constants = %v, want [false true]", out)
	}
	// Round trip preserves constants.
	s, err := WriteString(nw)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(s)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s)
	}
	out2, _ := back.EvalOutputs(map[string]bool{"a": false})
	if out2[0] != false || out2[1] != true {
		t.Fatalf("round-tripped constants = %v", out2)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"undefined signal", ".model m\n.inputs a\n.outputs y\n.names a b y\n11 1\n.end"},
		{"duplicate definition", ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end"},
		{"cycle", ".model m\n.inputs a\n.outputs y\n.names z y\n1 1\n.names y z\n1 1\n.end"},
		{"bad cube char", ".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end"},
		{"row outside names", ".model m\n.inputs a\n.outputs y\n11 1\n.end"},
		{"latch", ".model m\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end"},
		{"offset rows", ".model m\n.inputs a\n.outputs y\n.names a y\n1 0\n.end"},
		{"wrong arity", ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end"},
	}
	for _, tc := range cases {
		if _, err := ParseString(tc.text); err == nil {
			t.Errorf("%s: expected parse error", tc.name)
		}
	}
}

func TestUnknownDirectiveIgnored(t *testing.T) {
	text := ".model m\n.default_input_arrival 0 0\n.inputs a\n.outputs y\n.names a y\n1 1\n.end"
	if _, err := ParseString(text); err != nil {
		t.Fatal(err)
	}
}

func TestWritePreservesSharedStructure(t *testing.T) {
	b := network.NewBuilder("shared")
	a := b.Input("a")
	c := b.Input("c")
	n := b.And("n", a, c)
	y1 := b.Or("y1", n, a)
	y2 := b.Or("y2", n, c)
	b.Output(y1)
	b.Output(y2)
	s, err := WriteString(b.Net)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(s, ".names a c n") != 1 {
		t.Fatalf("shared node written %d times:\n%s", strings.Count(s, ".names a c n"), s)
	}
	back, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.GateCount() != 3 {
		t.Fatalf("gates = %d, want 3", back.GateCount())
	}
}
