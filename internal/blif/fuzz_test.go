package blif

import (
	"strings"
	"testing"
)

// FuzzParse checks that the BLIF parser never panics and that anything it
// accepts survives a write/re-parse round trip with identical structure
// counts. Run with `go test -fuzz FuzzParse ./internal/blif` to explore;
// the seeds below run as regular tests.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end",
		".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n0- 1\n.end",
		".model\n.inputs\n.outputs\n.end",
		".names y\n",
		".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end",
		".model m\n.inputs a \\\nb\n.outputs y\n.names a b y\n-1 1\n.end",
		".model m\n.inputs a\n.outputs a\n.end",
		strings.Repeat(".inputs x\n", 5),
		".model m\n.latch a b re c 0\n.end",
		"# only a comment",
		".model m\n.inputs a\n.outputs y\n.names y\n1\n.end",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		nw, err := ParseString(input)
		if err != nil {
			return
		}
		text, err := WriteString(nw)
		if err != nil {
			t.Fatalf("accepted network failed to serialize: %v", err)
		}
		back, err := ParseString(text)
		if err != nil {
			t.Fatalf("serialized network failed to re-parse: %v\n%s", err, text)
		}
		if back.GateCount() != nw.GateCount() ||
			len(back.Inputs) != len(nw.Inputs) ||
			len(back.Outputs) != len(nw.Outputs) {
			t.Fatalf("round trip changed shape: %d/%d/%d -> %d/%d/%d",
				nw.GateCount(), len(nw.Inputs), len(nw.Outputs),
				back.GateCount(), len(back.Inputs), len(back.Outputs))
		}
	})
}
