// Package blif reads and writes the Berkeley Logic Interchange Format
// subset used for combinational networks: .model, .inputs, .outputs,
// .names (single-output cover) and .end. This is the interchange format of
// SIS and of the MCNC benchmark suite the paper evaluates on.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"tels/internal/logic"
	"tels/internal/netcore"
	"tels/internal/network"
)

// Parse reads one .model from r and builds the corresponding network.
// The cover data is assembled directly in the arena-backed netcore
// representation and converted at the boundary; use ParseCore to keep
// the arena form.
func Parse(r io.Reader) (*network.Network, error) {
	nc, err := ParseCore(r)
	if err != nil {
		return nil, err
	}
	return nc.ToNetwork(), nil
}

// ParseString is Parse on a string.
func ParseString(s string) (*network.Network, error) {
	return Parse(strings.NewReader(s))
}

// ParseCore reads one .model from r and builds the arena-backed network,
// interning every cover into the structural-hash table as it is read.
func ParseCore(r io.Reader) (*netcore.Network, error) {
	p := &parser{scanner: bufio.NewScanner(r)}
	p.scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	return p.parse()
}

// ParseCoreString is ParseCore on a string.
func ParseCoreString(s string) (*netcore.Network, error) {
	return ParseCore(strings.NewReader(s))
}

type rawNames struct {
	signals []string // fanin names followed by the output name
	cubes   []string // cover rows "110 1" with the output column stripped
	line    int
}

type parser struct {
	scanner *bufio.Scanner
	line    int
	pending string
	eof     bool
}

// next returns the next logical line with continuations ("\" at end)
// joined, comments stripped, and blanks skipped.
func (p *parser) next() (string, bool) {
	for {
		var parts []string
		for {
			if p.pending != "" {
				parts = append(parts, strings.TrimSuffix(p.pending, "\\"))
				done := !strings.HasSuffix(p.pending, "\\")
				p.pending = ""
				if done {
					break
				}
			}
			if !p.scanner.Scan() {
				p.eof = true
				break
			}
			p.line++
			text := p.scanner.Text()
			if i := strings.Index(text, "#"); i >= 0 {
				text = text[:i]
			}
			text = strings.TrimSpace(text)
			if text == "" && len(parts) == 0 {
				continue
			}
			p.pending = text
			if text == "" {
				break
			}
		}
		joined := strings.TrimSpace(strings.Join(parts, " "))
		if joined != "" {
			return joined, true
		}
		if p.eof {
			return "", false
		}
	}
}

func (p *parser) parse() (*netcore.Network, error) {
	name := "top"
	var inputs, outputs []string
	var names []rawNames
	var current *rawNames

	flush := func() {
		if current != nil {
			names = append(names, *current)
			current = nil
		}
	}

	for {
		line, ok := p.next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if len(fields) > 1 {
				name = fields[1]
			}
		case ".inputs":
			flush()
			inputs = append(inputs, fields[1:]...)
		case ".outputs":
			flush()
			outputs = append(outputs, fields[1:]...)
		case ".names":
			flush()
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif: line %d: .names needs at least an output", p.line)
			}
			current = &rawNames{signals: fields[1:], line: p.line}
		case ".end":
			flush()
		case ".latch", ".gate", ".mlatch", ".subckt":
			return nil, fmt.Errorf("blif: line %d: unsupported construct %s (combinational subset only)", p.line, fields[0])
		default:
			if strings.HasPrefix(fields[0], ".") {
				// Ignore unknown dot-directives (.default_input_arrival etc.)
				continue
			}
			if current == nil {
				return nil, fmt.Errorf("blif: line %d: cover row outside .names", p.line)
			}
			current.cubes = append(current.cubes, line)
		}
	}
	flush()
	return build(name, inputs, outputs, names)
}

func build(name string, inputs, outputs []string, names []rawNames) (*netcore.Network, error) {
	nw := netcore.New(name)
	for _, in := range inputs {
		if nw.NetByName(in) != netcore.InvalidNet {
			return nil, fmt.Errorf("blif: duplicate input %s", in)
		}
		nw.AddInput(in)
	}

	byOutput := make(map[string]rawNames, len(names))
	for _, rn := range names {
		out := rn.signals[len(rn.signals)-1]
		if _, dup := byOutput[out]; dup {
			return nil, fmt.Errorf("blif: line %d: signal %s defined twice", rn.line, out)
		}
		byOutput[out] = rn
	}

	// Signals are defined depth-first from the outputs, so every net's
	// fanins are interned before the net itself — AddNode can hash the
	// cover against the strash table immediately.
	building := make(map[string]bool)
	var define func(sig string) (netcore.Net, error)
	define = func(sig string) (netcore.Net, error) {
		if n := nw.NetByName(sig); n != netcore.InvalidNet {
			return n, nil
		}
		rn, ok := byOutput[sig]
		if !ok {
			return netcore.InvalidNet, fmt.Errorf("blif: signal %s is used but never defined", sig)
		}
		if building[sig] {
			return netcore.InvalidNet, fmt.Errorf("blif: combinational cycle through %s", sig)
		}
		building[sig] = true
		defer delete(building, sig)

		faninNames := rn.signals[:len(rn.signals)-1]
		fanins := make([]netcore.Net, len(faninNames))
		for i, fn := range faninNames {
			f, err := define(fn)
			if err != nil {
				return netcore.InvalidNet, err
			}
			fanins[i] = f
		}
		cover, err := parseCover(rn, len(faninNames))
		if err != nil {
			return netcore.InvalidNet, err
		}
		return nw.AddNode(sig, fanins, cover), nil
	}

	for _, out := range outputs {
		n, err := define(out)
		if err != nil {
			return nil, err
		}
		nw.MarkOutput(n)
	}
	// Define any leftover named signals so round-trips preserve them, in
	// name order so the arena layout is deterministic.
	leftover := make([]string, 0, len(byOutput))
	for sig := range byOutput {
		leftover = append(leftover, sig)
	}
	sort.Strings(leftover)
	for _, sig := range leftover {
		if _, err := define(sig); err != nil {
			return nil, err
		}
	}
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	return nw, nil
}

func parseCover(rn rawNames, faninCount int) (logic.Cover, error) {
	cover := logic.NewCover(faninCount)
	for _, row := range rn.cubes {
		fields := strings.Fields(row)
		var inPart, outPart string
		switch {
		case faninCount == 0 && len(fields) == 1:
			inPart, outPart = "", fields[0]
		case len(fields) == 2:
			inPart, outPart = fields[0], fields[1]
		default:
			return logic.Cover{}, fmt.Errorf("blif: line %d: malformed cover row %q", rn.line, row)
		}
		if len(inPart) != faninCount {
			return logic.Cover{}, fmt.Errorf("blif: line %d: cover row %q has %d columns, want %d",
				rn.line, row, len(inPart), faninCount)
		}
		if outPart == "0" {
			// OFF-set rows (complemented covers) are not supported; SIS
			// writes ON-set covers for combinational networks.
			return logic.Cover{}, fmt.Errorf("blif: line %d: OFF-set cover rows are not supported", rn.line)
		}
		if outPart != "1" {
			return logic.Cover{}, fmt.Errorf("blif: line %d: invalid output column %q", rn.line, outPart)
		}
		cube, err := logic.ParseCube(inPart)
		if err != nil {
			return logic.Cover{}, fmt.Errorf("blif: line %d: %v", rn.line, err)
		}
		cover.AddCube(cube)
	}
	// A .names with no rows is the constant 0; with one empty row and
	// output 1 it is the constant 1 (cover with a universal cube when
	// faninCount == 0 handled naturally above).
	return cover, nil
}

// Write emits the network as BLIF.
func Write(w io.Writer, nw *network.Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", nw.Name)
	fmt.Fprintf(bw, ".inputs")
	for _, in := range nw.Inputs {
		fmt.Fprintf(bw, " %s", in.Name)
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, ".outputs")
	for _, o := range nw.Outputs {
		fmt.Fprintf(bw, " %s", o.Name)
	}
	fmt.Fprintln(bw)
	order, err := nw.TopoSort()
	if err != nil {
		return err
	}
	for _, n := range order {
		if n.Kind != network.Internal {
			continue
		}
		fmt.Fprintf(bw, ".names")
		for _, f := range n.Fanins {
			fmt.Fprintf(bw, " %s", f.Name)
		}
		fmt.Fprintf(bw, " %s\n", n.Name)
		for _, c := range n.Cover.Cubes {
			if len(c) == 0 {
				fmt.Fprintln(bw, "1")
			} else {
				fmt.Fprintf(bw, "%s 1\n", c)
			}
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// WriteCore emits the arena-backed network as BLIF, without converting to
// the pointer representation first.
func WriteCore(w io.Writer, nw *netcore.Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", nw.Name)
	fmt.Fprintf(bw, ".inputs")
	for _, in := range nw.Inputs() {
		fmt.Fprintf(bw, " %s", nw.NetName(in))
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, ".outputs")
	for _, o := range nw.Outputs() {
		fmt.Fprintf(bw, " %s", nw.NetName(o))
	}
	fmt.Fprintln(bw)
	order, err := nw.TopoNets()
	if err != nil {
		return err
	}
	for _, n := range order {
		if nw.NetKind(n) != netcore.NetFunc {
			continue
		}
		fmt.Fprintf(bw, ".names")
		for _, f := range nw.NetFanins(n) {
			fmt.Fprintf(bw, " %s", nw.NetName(f))
		}
		fmt.Fprintf(bw, " %s\n", nw.NetName(n))
		for _, c := range nw.NetCover(n).Cubes {
			if len(c) == 0 {
				fmt.Fprintln(bw, "1")
			} else {
				fmt.Fprintf(bw, "%s 1\n", c)
			}
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// WriteString renders the network as a BLIF string.
func WriteString(nw *network.Network) (string, error) {
	var sb strings.Builder
	if err := Write(&sb, nw); err != nil {
		return "", err
	}
	return sb.String(), nil
}
