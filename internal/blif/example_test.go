package blif_test

import (
	"fmt"

	"tels/internal/blif"
)

// ExampleParseString parses a tiny BLIF model and reports its shape.
func ExampleParseString() {
	nw, err := blif.ParseString(`
.model half_adder
.inputs a b
.outputs s c
.names a b s
10 1
01 1
.names a b c
11 1
.end
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	out, _ := nw.EvalOutputs(map[string]bool{"a": true, "b": true})
	fmt.Printf("%s: %d nodes; 1+1 -> sum=%v carry=%v\n",
		nw.Name, nw.GateCount(), out[0], out[1])
	// Output: half_adder: 2 nodes; 1+1 -> sum=false carry=true
}
