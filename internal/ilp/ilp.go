// Package ilp implements an exact integer linear program solver by branch
// and bound over the LP relaxation solved with package simplex. It plays
// the role lp_solve played in the original TELS tool: deciding whether a
// unate function admits an integer weight–threshold assignment, and if so
// returning the one minimizing total weight plus threshold.
//
// Mirroring the behaviour the paper describes in §V-E, the solver takes a
// node budget; when the budget is exhausted it reports Limit. Budget
// exhaustion is distinct from proven infeasibility: Infeasible means the
// whole branch-and-bound tree was explored and no integer solution
// exists, while Limit (or Result.LimitHit on an Optimal result) means
// parts of the tree were never visited. Callers that cache "not a
// threshold function" verdicts must only do so on Infeasible.
package ilp

import (
	"context"
	"math"

	"tels/internal/simplex"
)

// Status reports the outcome of an ILP solve.
type Status int

// Solve outcomes.
const (
	Optimal    Status = iota // integer optimum found (see Result.LimitHit)
	Infeasible               // no integer solution exists — the tree was exhausted
	Unbounded                // relaxation unbounded below
	Limit                    // budget exhausted (or context cancelled) before any solution
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "node-limit"
	}
	return "unknown"
}

// Result holds the outcome of an ILP solve.
type Result struct {
	Status    Status
	X         []int // integer solution (valid when Status == Optimal)
	Objective float64
	Nodes     int // branch-and-bound nodes explored
	// LimitHit reports that the node budget ran out (or the context was
	// cancelled) before the tree was exhausted. An Optimal result with
	// LimitHit set is an incumbent, not a proven optimum; an Infeasible
	// status is never reported with LimitHit (unproven infeasibility is
	// Limit instead).
	LimitHit bool
}

// Proven reports whether the result is a complete verdict: a true optimum
// or a genuine infeasibility, as opposed to a §V-E budget bailout.
func (r Result) Proven() bool {
	return (r.Status == Optimal || r.Status == Infeasible) && !r.LimitHit
}

// Solver carries the branch-and-bound configuration.
type Solver struct {
	// MaxNodes bounds the number of branch-and-bound nodes explored.
	// Zero means DefaultMaxNodes.
	MaxNodes int
	// Exact solves every LP relaxation in exact rational arithmetic
	// instead of float64 — slower, but immune to rounding pathologies.
	Exact bool
}

// DefaultMaxNodes is the node budget used when Solver.MaxNodes is zero.
// Threshold-check ILPs are tiny; hitting this limit indicates a
// pathological instance, which the synthesizer handles by splitting.
const DefaultMaxNodes = 4000

const intTol = 1e-6

// Solve minimizes p.C·x subject to p.A x ≤ p.B, x ≥ 0, x integer.
func (s *Solver) Solve(p *simplex.Problem) Result {
	return s.SolveContext(context.Background(), p)
}

// SolveContext is Solve with cooperative cancellation: when ctx is
// cancelled mid-search the solver stops at the next node and reports the
// partial outcome with LimitHit set (the portfolio racer uses this to
// cancel the losing engine).
func (s *Solver) SolveContext(ctx context.Context, p *simplex.Problem) Result {
	return s.SolveContextCutoff(ctx, p, math.Inf(1))
}

// SolveContextCutoff is SolveContext with an externally-supplied objective
// cutoff: only solutions with objective strictly below cutoff are
// accepted, and subtrees whose relaxation bound reaches it are pruned.
// When the true optimum k* is known (e.g. proven by another engine),
// calling with cutoff = k*+0.5 returns exactly the solution the unbounded
// solve would have returned — the depth-first traversal up to the first
// optimal incumbent is identical, because pruned subtrees can only
// contain solutions with objective > k* and intermediate incumbents are
// integral (so every pre-optimal acceptance threshold in both runs
// exceeds k*) — while exploring no more nodes, usually far fewer.
func (s *Solver) SolveContextCutoff(ctx context.Context, p *simplex.Problem, cutoff float64) Result {
	maxNodes := s.MaxNodes
	if maxNodes == 0 {
		maxNodes = DefaultMaxNodes
	}
	b := &bnb{
		best:     cutoff,
		maxNodes: maxNodes,
		exact:    s.Exact,
		done:     ctx.Done(),
	}
	b.explore(p)
	switch {
	case b.hitLimit && b.bestX == nil:
		return Result{Status: Limit, Nodes: b.nodes, LimitHit: true}
	case b.unbounded:
		return Result{Status: Unbounded, Nodes: b.nodes}
	case b.bestX == nil:
		return Result{Status: Infeasible, Nodes: b.nodes}
	default:
		return Result{Status: Optimal, X: b.bestX, Objective: b.best, Nodes: b.nodes, LimitHit: b.hitLimit}
	}
}

type bnb struct {
	best      float64
	bestX     []int
	nodes     int
	maxNodes  int
	hitLimit  bool
	unbounded bool
	exact     bool
	done      <-chan struct{}
}

func (b *bnb) explore(p *simplex.Problem) {
	if b.nodes >= b.maxNodes {
		b.hitLimit = true
		return
	}
	// Cancellation check every few nodes: a select per node is cheap
	// relative to one simplex solve, and a cancelled racer must release
	// its CPU quickly.
	if b.nodes&7 == 0 && b.done != nil {
		select {
		case <-b.done:
			b.hitLimit = true
			return
		default:
		}
	}
	b.nodes++
	var res simplex.Result
	if b.exact {
		res = simplex.SolveExact(p)
	} else {
		res = simplex.Solve(p)
	}
	switch res.Status {
	case simplex.Infeasible:
		return
	case simplex.Unbounded:
		// The relaxation is unbounded. For the problems this package
		// serves the objective is a nonnegative combination of the
		// variables, so this does not arise; record and stop.
		b.unbounded = true
		return
	case simplex.IterLimit:
		b.hitLimit = true
		return
	}
	// Bound: an LP optimum no better than the incumbent cannot improve.
	if res.Objective >= b.best-intTol {
		return
	}
	// Find the most fractional variable.
	frac := -1
	fracDist := 0.0
	for i, x := range res.X {
		f := x - math.Floor(x)
		d := math.Min(f, 1-f)
		if d > intTol && d > fracDist {
			frac, fracDist = i, d
		}
	}
	if frac < 0 {
		// Integral solution.
		x := make([]int, len(res.X))
		for i, v := range res.X {
			x[i] = int(math.Round(v))
		}
		b.best = res.Objective
		b.bestX = x
		return
	}
	// Branch on x_frac ≤ floor and x_frac ≥ ceil.
	lo := math.Floor(res.X[frac])
	n := len(p.C)

	down := p.Clone()
	row := make([]float64, n)
	row[frac] = 1
	down.AddConstraint(row, lo)
	b.explore(down)

	up := p.Clone()
	row2 := make([]float64, n)
	row2[frac] = -1
	up.AddConstraint(row2, -(lo + 1))
	b.explore(up)
}
