// Package ilp implements an exact integer linear program solver by branch
// and bound over the LP relaxation solved with package simplex. It plays
// the role lp_solve played in the original TELS tool: deciding whether a
// unate function admits an integer weight–threshold assignment, and if so
// returning the one minimizing total weight plus threshold.
//
// Mirroring the behaviour the paper describes in §V-E, the solver takes a
// node budget; when the budget is exhausted it reports Limit, which the
// synthesizer treats exactly like infeasibility (the function is split
// into smaller pieces instead).
package ilp

import (
	"math"

	"tels/internal/simplex"
)

// Status reports the outcome of an ILP solve.
type Status int

// Solve outcomes.
const (
	Optimal    Status = iota // integer optimum found
	Infeasible               // no integer solution exists
	Unbounded                // relaxation unbounded below
	Limit                    // node or iteration budget exhausted
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "node-limit"
	}
	return "unknown"
}

// Result holds the outcome of an ILP solve.
type Result struct {
	Status    Status
	X         []int // integer solution (valid when Status == Optimal)
	Objective float64
	Nodes     int // branch-and-bound nodes explored
}

// Solver carries the branch-and-bound configuration.
type Solver struct {
	// MaxNodes bounds the number of branch-and-bound nodes explored.
	// Zero means DefaultMaxNodes.
	MaxNodes int
	// Exact solves every LP relaxation in exact rational arithmetic
	// instead of float64 — slower, but immune to rounding pathologies.
	Exact bool
}

// DefaultMaxNodes is the node budget used when Solver.MaxNodes is zero.
// Threshold-check ILPs are tiny; hitting this limit indicates a
// pathological instance, which the synthesizer handles by splitting.
const DefaultMaxNodes = 4000

const intTol = 1e-6

// Solve minimizes p.C·x subject to p.A x ≤ p.B, x ≥ 0, x integer.
func (s *Solver) Solve(p *simplex.Problem) Result {
	maxNodes := s.MaxNodes
	if maxNodes == 0 {
		maxNodes = DefaultMaxNodes
	}
	b := &bnb{
		best:     math.Inf(1),
		maxNodes: maxNodes,
		exact:    s.Exact,
	}
	b.explore(p)
	switch {
	case b.hitLimit && b.bestX == nil:
		return Result{Status: Limit, Nodes: b.nodes}
	case b.unbounded:
		return Result{Status: Unbounded, Nodes: b.nodes}
	case b.bestX == nil:
		return Result{Status: Infeasible, Nodes: b.nodes}
	default:
		return Result{Status: Optimal, X: b.bestX, Objective: b.best, Nodes: b.nodes}
	}
}

type bnb struct {
	best      float64
	bestX     []int
	nodes     int
	maxNodes  int
	hitLimit  bool
	unbounded bool
	exact     bool
}

func (b *bnb) explore(p *simplex.Problem) {
	if b.nodes >= b.maxNodes {
		b.hitLimit = true
		return
	}
	b.nodes++
	var res simplex.Result
	if b.exact {
		res = simplex.SolveExact(p)
	} else {
		res = simplex.Solve(p)
	}
	switch res.Status {
	case simplex.Infeasible:
		return
	case simplex.Unbounded:
		// The relaxation is unbounded. For the problems this package
		// serves the objective is a nonnegative combination of the
		// variables, so this does not arise; record and stop.
		b.unbounded = true
		return
	case simplex.IterLimit:
		b.hitLimit = true
		return
	}
	// Bound: an LP optimum no better than the incumbent cannot improve.
	if res.Objective >= b.best-intTol {
		return
	}
	// Find the most fractional variable.
	frac := -1
	fracDist := 0.0
	for i, x := range res.X {
		f := x - math.Floor(x)
		d := math.Min(f, 1-f)
		if d > intTol && d > fracDist {
			frac, fracDist = i, d
		}
	}
	if frac < 0 {
		// Integral solution.
		x := make([]int, len(res.X))
		for i, v := range res.X {
			x[i] = int(math.Round(v))
		}
		b.best = res.Objective
		b.bestX = x
		return
	}
	// Branch on x_frac ≤ floor and x_frac ≥ ceil.
	lo := math.Floor(res.X[frac])
	n := len(p.C)

	down := p.Clone()
	row := make([]float64, n)
	row[frac] = 1
	down.AddConstraint(row, lo)
	b.explore(down)

	up := p.Clone()
	row2 := make([]float64, n)
	row2[frac] = -1
	up.AddConstraint(row2, -(lo + 1))
	b.explore(up)
}
