package ilp

import (
	"math"
	"math/rand"
	"testing"

	"tels/internal/simplex"
)

func TestIntegerOptimum(t *testing.T) {
	// min x+y s.t. 2x+2y ≥ 3 (-2x-2y ≤ -3). LP optimum 1.5; ILP optimum 2.
	p := &simplex.Problem{
		C: []float64{1, 1},
		A: [][]float64{{-2, -2}},
		B: []float64{-3},
	}
	var s Solver
	res := s.Solve(p)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.X[0]+res.X[1] != 2 {
		t.Fatalf("X = %v, want sum 2", res.X)
	}
	if math.Abs(res.Objective-2) > 1e-9 {
		t.Fatalf("obj = %v, want 2", res.Objective)
	}
}

func TestInfeasibleILP(t *testing.T) {
	// 2x ≥ 1 and 2x ≤ 1 forces x = 0.5: LP feasible, ILP infeasible.
	p := &simplex.Problem{
		C: []float64{1},
		A: [][]float64{{-2}, {2}},
		B: []float64{-1, 1},
	}
	var s Solver
	if res := s.Solve(p); res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestPaperExampleILP(t *testing.T) {
	// The worked ILP of §V-B: expect the optimal weight-threshold vector
	// <2,1,1;3> with objective 7 (possibly permuted in w2/w3).
	p := &simplex.Problem{
		C: []float64{1, 1, 1, 1},
		A: [][]float64{
			{-1, -1, 0, 1}, // w1+w2 ≥ T
			{-1, 0, -1, 1}, // w1+w3 ≥ T
			{0, 1, 1, -1},  // w2+w3 ≤ T-1
			{1, 0, 0, -1},  // w1 ≤ T-1
		},
		B: []float64{0, 0, -1, -1},
	}
	var s Solver
	res := s.Solve(p)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-7) > 1e-9 {
		t.Fatalf("objective = %v, want 7 (X=%v)", res.Objective, res.X)
	}
	w1, w2, w3, T := res.X[0], res.X[1], res.X[2], res.X[3]
	if w1 != 2 || w2 != 1 || w3 != 1 || T != 3 {
		t.Fatalf("X = %v, want [2 1 1 3]", res.X)
	}
}

func TestNodeLimit(t *testing.T) {
	// A fractional-friendly problem with a tiny node budget must report
	// Limit rather than spin.
	p := &simplex.Problem{
		C: []float64{1, 1, 1},
		A: [][]float64{{-2, -2, -2}},
		B: []float64{-3},
	}
	s := Solver{MaxNodes: 1}
	if res := s.Solve(p); res.Status != Limit && res.Status != Optimal {
		t.Fatalf("status = %v, want limit or optimal", res.Status)
	}
	s2 := Solver{MaxNodes: 0} // default budget solves it
	if res := s2.Solve(p); res.Status != Optimal {
		t.Fatalf("status with default budget = %v", res.Status)
	}
}

// Cross-check branch and bound against brute-force enumeration on random
// small integer programs with bounded box constraints.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var s Solver
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(2) // 2..3 vars
		bound := 4
		p := &simplex.Problem{C: make([]float64, n)}
		for j := range p.C {
			p.C[j] = float64(1 + rng.Intn(4))
		}
		m := 1 + rng.Intn(3)
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(rng.Intn(7) - 3)
			}
			p.A = append(p.A, row)
			p.B = append(p.B, float64(rng.Intn(7)-3))
		}
		// Box: x_j ≤ bound, so brute force is exhaustive.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.A = append(p.A, row)
			p.B = append(p.B, float64(bound))
		}
		res := s.Solve(p)

		bestObj := math.Inf(1)
		feasible := false
		x := make([]int, n)
		var rec func(int)
		rec = func(j int) {
			if j == n {
				for i := range p.A {
					lhs := 0.0
					for k := 0; k < n; k++ {
						lhs += p.A[i][k] * float64(x[k])
					}
					if lhs > p.B[i]+1e-9 {
						return
					}
				}
				feasible = true
				obj := 0.0
				for k := 0; k < n; k++ {
					obj += p.C[k] * float64(x[k])
				}
				if obj < bestObj {
					bestObj = obj
				}
				return
			}
			for v := 0; v <= bound; v++ {
				x[j] = v
				rec(j + 1)
			}
		}
		rec(0)

		switch res.Status {
		case Optimal:
			if !feasible {
				t.Fatalf("iter %d: solver optimal but brute force infeasible (p=%+v)", iter, p)
			}
			if math.Abs(res.Objective-bestObj) > 1e-6 {
				t.Fatalf("iter %d: solver obj %v, brute force %v (p=%+v, X=%v)",
					iter, res.Objective, bestObj, p, res.X)
			}
			// Returned point must itself be feasible.
			for i := range p.A {
				lhs := 0.0
				for k := 0; k < n; k++ {
					lhs += p.A[i][k] * float64(res.X[k])
				}
				if lhs > p.B[i]+1e-9 {
					t.Fatalf("iter %d: returned X %v violates row %d", iter, res.X, i)
				}
			}
		case Infeasible:
			if feasible {
				t.Fatalf("iter %d: solver infeasible but brute force found obj %v (p=%+v)", iter, bestObj, p)
			}
		case Limit:
			// Acceptable under the default budget only if genuinely hard;
			// these instances are tiny, treat as failure.
			t.Fatalf("iter %d: hit node limit on a tiny instance (p=%+v)", iter, p)
		}
	}
}

// The exact-arithmetic mode must agree with the float mode.
func TestExactModeAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	fl := Solver{}
	ex := Solver{Exact: true}
	for iter := 0; iter < 80; iter++ {
		n := 2 + rng.Intn(2)
		p := &simplex.Problem{C: make([]float64, n)}
		for j := range p.C {
			p.C[j] = float64(1 + rng.Intn(3))
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(rng.Intn(7) - 3)
			}
			p.A = append(p.A, row)
			p.B = append(p.B, float64(rng.Intn(7)-3))
		}
		for j := 0; j < n; j++ { // box to keep it bounded
			row := make([]float64, n)
			row[j] = 1
			p.A = append(p.A, row)
			p.B = append(p.B, 5)
		}
		a := fl.Solve(p)
		b := ex.Solve(p)
		if a.Status != b.Status {
			t.Fatalf("iter %d: status float=%v exact=%v", iter, a.Status, b.Status)
		}
		if a.Status == Optimal && math.Abs(a.Objective-b.Objective) > 1e-6 {
			t.Fatalf("iter %d: objective float=%v exact=%v", iter, a.Objective, b.Objective)
		}
	}
}
