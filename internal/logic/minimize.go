package logic

// This file implements cover-based two-level minimization in the espresso
// style: EXPAND raises each cube to a prime against the OFF-set, and
// IRREDUNDANT drops cubes covered by the rest of the cover. Unlike the
// truth-table route in package truth, it works directly on covers, so the
// optimizer can minimize nodes too wide for explicit tables.

// MinimizeMaxComplement bounds the complement size Minimize is willing to
// work against; covers whose OFF-sets explode are returned unchanged
// (minus single-cube containment).
const MinimizeMaxComplement = 512

// Minimize returns an equivalent cover in which every cube is prime and
// no cube is redundant, running the espresso loop EXPAND → IRREDUNDANT →
// REDUCE → EXPAND → IRREDUNDANT. The result is a local optimum, not a
// guaranteed minimum cover.
func (f Cover) Minimize() Cover {
	g := f.SCC()
	if len(g.Cubes) <= 1 {
		return g
	}
	off := g.Complement()
	if len(off.Cubes) > MinimizeMaxComplement {
		return g
	}
	first := g.expandIrredundant(off)
	reduced := first.reduce()
	second := reduced.expandIrredundant(off)
	if second.LiteralCount() < first.LiteralCount() ||
		(second.LiteralCount() == first.LiteralCount() && len(second.Cubes) < len(first.Cubes)) {
		return second
	}
	return first
}

// expandIrredundant runs one EXPAND (against the given OFF-set) followed
// by IRREDUNDANT.
func (g Cover) expandIrredundant(off Cover) Cover {
	// EXPAND: raise literals to don't-care while the cube stays disjoint
	// from the OFF-set. Positions are tried in order of how many other
	// cubes would absorb the expansion (cheapest first keeps it simple:
	// left to right).
	expanded := NewCover(g.N)
	for _, c := range g.Cubes {
		cube := c.Clone()
		for i := 0; i < g.N; i++ {
			if cube[i] == DC {
				continue
			}
			saved := cube[i]
			cube[i] = DC
			if intersectsCover(cube, off) {
				cube[i] = saved
			}
		}
		expanded.AddCube(cube)
	}
	expanded = expanded.SCC()
	// IRREDUNDANT: greedily drop cubes covered by the remaining cover.
	result := expanded
	for i := 0; i < len(result.Cubes); {
		rest := NewCover(result.N)
		for j, c := range result.Cubes {
			if j != i {
				rest.AddCube(c)
			}
		}
		if coverContainsCube(rest, result.Cubes[i]) {
			result = rest
			continue
		}
		i++
	}
	return result
}

// reduce shrinks each cube to the smallest cube covering the minterms no
// other cube covers (cubes entirely covered elsewhere are dropped). A
// reduced cover gives the following EXPAND different directions to grow
// in, which is how the espresso loop escapes the first local optimum.
func (f Cover) reduce() Cover {
	cur := f.Clone()
	out := NewCover(f.N)
	for i := 0; i < len(cur.Cubes); i++ {
		rest := NewCover(f.N)
		for _, c := range out.Cubes { // cubes already reduced this pass
			rest.AddCube(c)
		}
		for _, c := range cur.Cubes[i+1:] { // cubes still to process
			rest.AddCube(c)
		}
		single := NewCover(f.N)
		single.AddCube(cur.Cubes[i])
		exclusive := single.And(rest.Complement())
		if exclusive.IsZero() {
			continue // fully covered by the others
		}
		out.AddCube(supercube(exclusive))
	}
	return out
}

// supercube returns the smallest cube containing every minterm of the
// cover: a position keeps a literal only when all cubes agree on a non-DC
// phase there.
func supercube(f Cover) Cube {
	sc := f.Cubes[0].Clone()
	for _, c := range f.Cubes[1:] {
		for i := range sc {
			if sc[i] != c[i] {
				sc[i] = DC
			}
		}
	}
	return sc
}

// intersectsCover reports whether the cube shares any minterm with the
// cover.
func intersectsCover(c Cube, f Cover) bool {
	for _, d := range f.Cubes {
		if c.Distance(d) == 0 {
			return true
		}
	}
	return false
}

// coverContainsCube reports whether every minterm of the cube is covered
// by f, via the standard cofactor-tautology test.
func coverContainsCube(f Cover, c Cube) bool {
	// Cofactor f with respect to c: keep cubes compatible with c, drop
	// the literals c fixes.
	cof := NewCover(f.N)
	for _, d := range f.Cubes {
		if c.Distance(d) != 0 {
			continue
		}
		e := d.Clone()
		for i, p := range c {
			if p != DC {
				e[i] = DC
			}
		}
		cof.AddCube(e)
	}
	return cof.Tautology()
}
