package logic

import (
	"math/rand"
	"testing"
)

func TestMinimizeEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 400; iter++ {
		n := 2 + rng.Intn(5)
		f := randomCover(rng, n, 1+rng.Intn(6))
		g := f.Minimize()
		if !f.Equivalent(g) {
			t.Fatalf("iter %d: Minimize changed the function: %v -> %v", iter, f, g)
		}
	}
}

func TestMinimizeCubesArePrime(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(4)
		f := randomCover(rng, n, 1+rng.Intn(5))
		g := f.Minimize()
		for _, c := range g.Cubes {
			for i, p := range c {
				if p == DC {
					continue
				}
				// Raising any literal must leave the ON-set.
				bigger := NewCover(n)
				bigger.AddCube(c.Without(i))
				if bigger.Complement().Or(f).Tautology() {
					t.Fatalf("iter %d: cube %v of %v is not prime (position %d liftable)",
						iter, c, g, i)
				}
			}
		}
	}
}

func TestMinimizeIrredundant(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(4)
		f := randomCover(rng, n, 1+rng.Intn(5))
		g := f.Minimize()
		for drop := range g.Cubes {
			smaller := NewCover(n)
			for j, c := range g.Cubes {
				if j != drop {
					smaller.AddCube(c)
				}
			}
			if smaller.Equivalent(g) {
				t.Fatalf("iter %d: cube %d of %v is redundant", iter, drop, g)
			}
		}
	}
}

func TestMinimizeClassicAbsorption(t *testing.T) {
	// xy + x!y = x; the pair must collapse to the single prime x.
	f := MustCover("11", "10")
	g := f.Minimize()
	if len(g.Cubes) != 1 || g.Cubes[0].String() != "1-" {
		t.Fatalf("Minimize(xy + x!y) = %v, want 1-", g)
	}
	// Consensus: xy + !xz + yz -> the yz term is redundant.
	h := MustCover("11-", "0-1", "-11").Minimize()
	if len(h.Cubes) != 2 {
		t.Fatalf("Minimize(xy + !xz + yz) = %v, want 2 cubes", h)
	}
}

func TestMinimizeConstants(t *testing.T) {
	if got := Zero(3).Minimize(); !got.IsZero() {
		t.Fatalf("Minimize(0) = %v", got)
	}
	one := MustCover("1--", "0--")
	got := one.Minimize()
	if !got.Tautology() {
		t.Fatalf("Minimize(x + !x) = %v, not tautology", got)
	}
	if len(got.Cubes) != 1 || !got.Cubes[0].IsUniverse() {
		t.Fatalf("Minimize(x + !x) = %v, want the universal cube", got)
	}
}

func TestCoverContainsCube(t *testing.T) {
	f := MustCover("1--", "01-")
	if !coverContainsCube(f, MustParseCube("11-")) {
		t.Fatal("11- is inside x + !x y")
	}
	if coverContainsCube(f, MustParseCube("00-")) {
		t.Fatal("00- is not covered")
	}
}

func TestReducePreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(4)
		f := randomCover(rng, n, 1+rng.Intn(5)).SCC()
		g := f.reduce()
		if !f.Equivalent(g) {
			t.Fatalf("iter %d: reduce changed the function: %v -> %v", iter, f, g)
		}
	}
}

func TestSupercube(t *testing.T) {
	f := MustCover("110", "100")
	if got := supercube(f).String(); got != "1-0" {
		t.Fatalf("supercube = %q, want 1-0", got)
	}
	g := MustCover("101")
	if got := supercube(g).String(); got != "101" {
		t.Fatalf("supercube of one cube = %q", got)
	}
}

func TestMinimizeEspressoLoopNoWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(4)
		f := randomCover(rng, n, 1+rng.Intn(6))
		g := f.Minimize()
		scc := f.SCC()
		if g.LiteralCount() > scc.LiteralCount() && len(g.Cubes) > len(scc.Cubes) {
			t.Fatalf("iter %d: Minimize made both metrics worse: %v -> %v", iter, scc, g)
		}
		if !f.Equivalent(g) {
			t.Fatalf("iter %d: Minimize changed the function", iter)
		}
	}
}
