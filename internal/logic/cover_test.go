package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCover(rng *rand.Rand, n, maxCubes int) Cover {
	f := NewCover(n)
	cubes := 1 + rng.Intn(maxCubes)
	for i := 0; i < cubes; i++ {
		c := NewCube(n)
		for j := 0; j < n; j++ {
			c[j] = Phase(rng.Intn(3))
		}
		f.AddCube(c)
	}
	return f
}

func evalAll(f Cover) []bool {
	out := make([]bool, 1<<uint(f.N))
	assign := make([]bool, f.N)
	for m := range out {
		for i := 0; i < f.N; i++ {
			assign[i] = m&(1<<uint(i)) != 0
		}
		out[m] = f.Eval(assign)
	}
	return out
}

func TestCoverEval(t *testing.T) {
	f := MustCover("11-", "--1")
	cases := []struct {
		assign []bool
		want   bool
	}{
		{[]bool{true, true, false}, true},
		{[]bool{false, false, true}, true},
		{[]bool{true, false, false}, false},
		{[]bool{false, false, false}, false},
	}
	for _, tc := range cases {
		if got := f.Eval(tc.assign); got != tc.want {
			t.Errorf("Eval(%v) = %v, want %v", tc.assign, got, tc.want)
		}
	}
}

func TestSCC(t *testing.T) {
	f := MustCover("1--", "11-", "0-0", "1--")
	g := f.SCC()
	if len(g.Cubes) != 2 {
		t.Fatalf("SCC left %d cubes, want 2: %v", len(g.Cubes), g)
	}
	if !f.Equivalent(g) {
		t.Fatal("SCC changed the function")
	}
}

func TestTautology(t *testing.T) {
	cases := []struct {
		cover Cover
		want  bool
	}{
		{MustCover("---"), true},
		{MustCover("1--", "0--"), true},
		{MustCover("1-1", "1-0", "01-", "00-"), true},
		{MustCover("1--"), false},
		{MustCover("1--", "01-"), false},
		{Zero(3), false},
	}
	for i, tc := range cases {
		if got := tc.cover.Tautology(); got != tc.want {
			t.Errorf("case %d: Tautology(%v) = %v, want %v", i, tc.cover, got, tc.want)
		}
	}
}

func TestComplementSmall(t *testing.T) {
	f := MustCover("11-", "--1")
	g := f.Complement()
	fv, gv := evalAll(f), evalAll(g)
	for m := range fv {
		if fv[m] == gv[m] {
			t.Fatalf("complement agrees with function at minterm %d", m)
		}
	}
}

func TestComplementProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(5)
		f := randomCover(rng, n, 6)
		g := f.Complement()
		fv, gv := evalAll(f), evalAll(g)
		for m := range fv {
			if fv[m] == gv[m] {
				t.Fatalf("iter %d: complement of %v wrong at minterm %d", iter, f, m)
			}
		}
	}
}

func TestAndOrProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(4)
		f := randomCover(rng, n, 4)
		g := randomCover(rng, n, 4)
		and := f.And(g)
		or := f.Or(g)
		fv, gv := evalAll(f), evalAll(g)
		av, ov := evalAll(and), evalAll(or)
		for m := range fv {
			if av[m] != (fv[m] && gv[m]) {
				t.Fatalf("iter %d: And wrong at %d", iter, m)
			}
			if ov[m] != (fv[m] || gv[m]) {
				t.Fatalf("iter %d: Or wrong at %d", iter, m)
			}
		}
	}
}

func TestEquivalent(t *testing.T) {
	f := MustCover("1-", "-1")
	g := MustCover("01", "10", "11")
	if !f.Equivalent(g) {
		t.Fatal("x+y should equal its minterm expansion")
	}
	h := MustCover("11")
	if f.Equivalent(h) {
		t.Fatal("x+y is not x*y")
	}
}

func TestUsageAndSupport(t *testing.T) {
	f := MustCover("1-0", "0-0")
	u := f.Usage()
	if u[0].Pos != 1 || u[0].Neg != 1 {
		t.Errorf("var 0 usage = %+v, want {1 1}", u[0])
	}
	if u[1].Total() != 0 {
		t.Errorf("var 1 usage = %+v, want empty", u[1])
	}
	if u[2].Neg != 2 || u[2].Pos != 0 {
		t.Errorf("var 2 usage = %+v, want {0 2}", u[2])
	}
	sup := f.Support()
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 2 {
		t.Errorf("Support = %v, want [0 2]", sup)
	}
	if f.IsSyntacticallyUnate() {
		t.Error("cover is binate in var 0")
	}
	if !MustCover("1-0", "-10").IsSyntacticallyUnate() {
		t.Error("cover should be syntactically unate")
	}
}

func TestMinterms(t *testing.T) {
	f := MustCover("11")
	m := f.Minterms()
	if len(m) != 1 || m[0] != 3 {
		t.Fatalf("Minterms = %v, want [3]", m)
	}
}

func TestExpr(t *testing.T) {
	f := MustCover("10", "-1")
	got := f.Expr([]string{"a", "b"})
	want := "a*!b + b"
	if got != want {
		t.Fatalf("Expr = %q, want %q", got, want)
	}
	if Zero(2).Expr([]string{"a", "b"}) != "0" {
		t.Fatal("Expr of empty cover should be 0")
	}
}

func TestQuickEquivalentSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 1 + r.Intn(4)
		cv := randomCover(r, n, 5)
		return cv.Equivalent(cv.SCC()) && cv.Equivalent(cv.Complement().Complement())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
