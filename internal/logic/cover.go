package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Cover is a sum-of-products expression: the OR of its cubes, each over the
// same N variables. The zero Cover with N=0 and no cubes is the constant 0
// of zero variables.
type Cover struct {
	N     int
	Cubes []Cube
}

// NewCover returns an empty (constant-0) cover over n variables.
func NewCover(n int) Cover {
	return Cover{N: n}
}

// CoverFromStrings builds a cover from positional cube strings such as
// "1-0". All strings must have the same length.
func CoverFromStrings(cubes ...string) (Cover, error) {
	if len(cubes) == 0 {
		return Cover{}, fmt.Errorf("logic: CoverFromStrings needs at least one cube")
	}
	cv := NewCover(len(cubes[0]))
	for _, s := range cubes {
		if len(s) != cv.N {
			return Cover{}, fmt.Errorf("logic: cube %q has %d positions, want %d", s, len(s), cv.N)
		}
		c, err := ParseCube(s)
		if err != nil {
			return Cover{}, err
		}
		cv.Cubes = append(cv.Cubes, c)
	}
	return cv, nil
}

// MustCover is CoverFromStrings that panics on malformed input.
func MustCover(cubes ...string) Cover {
	cv, err := CoverFromStrings(cubes...)
	if err != nil {
		panic(err)
	}
	return cv
}

// One returns the constant-1 cover over n variables (a single universal cube).
func One(n int) Cover {
	return Cover{N: n, Cubes: []Cube{NewCube(n)}}
}

// Zero returns the constant-0 cover over n variables (no cubes).
func Zero(n int) Cover {
	return Cover{N: n}
}

// Clone returns a deep copy of the cover.
func (f Cover) Clone() Cover {
	g := Cover{N: f.N, Cubes: make([]Cube, len(f.Cubes))}
	for i, c := range f.Cubes {
		g.Cubes[i] = c.Clone()
	}
	return g
}

// IsZero reports whether the cover has no cubes (constant 0 as written;
// note a non-empty cover may still denote constant 0 only if it has no
// cubes, since cubes are never empty).
func (f Cover) IsZero() bool { return len(f.Cubes) == 0 }

// HasUniverse reports whether some cube is the universal cube, which makes
// the cover syntactically the constant 1.
func (f Cover) HasUniverse() bool {
	for _, c := range f.Cubes {
		if c.IsUniverse() {
			return true
		}
	}
	return false
}

// String renders the cover as newline-free positional cubes joined by " + ".
func (f Cover) String() string {
	if f.IsZero() {
		return "0"
	}
	parts := make([]string, len(f.Cubes))
	for i, c := range f.Cubes {
		parts[i] = c.String()
	}
	return strings.Join(parts, " + ")
}

// Expr renders the cover as a human-readable expression using the supplied
// variable names, e.g. "a*!b + c".
func (f Cover) Expr(names []string) string {
	if f.IsZero() {
		return "0"
	}
	var terms []string
	for _, c := range f.Cubes {
		if c.IsUniverse() {
			terms = append(terms, "1")
			continue
		}
		var lits []string
		for i, p := range c {
			switch p {
			case Pos:
				lits = append(lits, names[i])
			case Neg:
				lits = append(lits, "!"+names[i])
			}
		}
		terms = append(terms, strings.Join(lits, "*"))
	}
	return strings.Join(terms, " + ")
}

// Eval evaluates the cover on a complete assignment.
func (f Cover) Eval(assign []bool) bool {
	for _, c := range f.Cubes {
		if c.Eval(assign) {
			return true
		}
	}
	return false
}

// AddCube appends a cube to the cover. The cube length must match N.
func (f *Cover) AddCube(c Cube) {
	if len(c) != f.N {
		panic(fmt.Sprintf("logic: cube of %d positions added to %d-variable cover", len(c), f.N))
	}
	f.Cubes = append(f.Cubes, c)
}

// SCC returns the cover with single-cube containment removed: any cube
// contained in another cube of the cover is dropped. Duplicate cubes are
// reduced to one.
func (f Cover) SCC() Cover {
	out := NewCover(f.N)
	for i, c := range f.Cubes {
		contained := false
		for j, d := range f.Cubes {
			if i == j {
				continue
			}
			if d.Contains(c) {
				if !c.Contains(d) || j < i {
					// strictly contained, or equal with an earlier twin
					contained = true
					break
				}
			}
		}
		if !contained {
			out.Cubes = append(out.Cubes, c.Clone())
		}
	}
	return out
}

// Cofactor returns the Shannon cofactor of the cover with respect to
// variable i at the given phase. Position i becomes DC in every cube.
func (f Cover) Cofactor(i int, ph Phase) Cover {
	out := NewCover(f.N)
	for _, c := range f.Cubes {
		if d, ok := c.Cofactor(i, ph); ok {
			out.Cubes = append(out.Cubes, d)
		}
	}
	return out
}

// LiteralCount returns the total number of literals over all cubes.
func (f Cover) LiteralCount() int {
	n := 0
	for _, c := range f.Cubes {
		n += c.Literals()
	}
	return n
}

// VarUsage describes how a variable appears across the cubes of a cover.
type VarUsage struct {
	Pos int // cubes where the variable appears uncomplemented
	Neg int // cubes where the variable appears complemented
}

// Total returns the number of cubes in which the variable appears at all.
func (u VarUsage) Total() int { return u.Pos + u.Neg }

// Usage returns per-variable appearance counts across the cover.
func (f Cover) Usage() []VarUsage {
	u := make([]VarUsage, f.N)
	for _, c := range f.Cubes {
		for i, p := range c {
			switch p {
			case Pos:
				u[i].Pos++
			case Neg:
				u[i].Neg++
			}
		}
	}
	return u
}

// Support returns the indices of variables appearing in at least one cube.
func (f Cover) Support() []int {
	var vars []int
	for i, u := range f.Usage() {
		if u.Total() > 0 {
			vars = append(vars, i)
		}
	}
	return vars
}

// IsSyntacticallyUnate reports whether no variable appears in both phases
// in the cover as written. A function with a syntactically unate cover is
// unate; the converse does not hold for redundant covers.
func (f Cover) IsSyntacticallyUnate() bool {
	for _, u := range f.Usage() {
		if u.Pos > 0 && u.Neg > 0 {
			return false
		}
	}
	return true
}

// mostBinate returns the index of the variable appearing in both phases in
// the largest number of cubes, or -1 if the cover is syntactically unate.
func (f Cover) mostBinate() int {
	best, bestCount := -1, 0
	for i, u := range f.Usage() {
		if u.Pos > 0 && u.Neg > 0 && u.Total() > bestCount {
			best, bestCount = i, u.Total()
		}
	}
	return best
}

// mostActive returns the variable appearing in the most cubes (any phase),
// or -1 if no cube has a literal.
func (f Cover) mostActive() int {
	best, bestCount := -1, 0
	for i, u := range f.Usage() {
		if u.Total() > bestCount {
			best, bestCount = i, u.Total()
		}
	}
	return best
}

// Tautology reports whether the cover denotes the constant-1 function,
// using the standard recursive Shannon test with a unate shortcut.
func (f Cover) Tautology() bool {
	if f.HasUniverse() {
		return true
	}
	if f.IsZero() {
		return false
	}
	// Unate reduction: a unate cover is a tautology iff it contains the
	// universal cube (already checked above).
	split := f.mostBinate()
	if split < 0 {
		return false
	}
	return f.Cofactor(split, Pos).Tautology() && f.Cofactor(split, Neg).Tautology()
}

// Complement returns a cover of the complement function, computed by
// recursive Shannon expansion with single-cube containment cleanup.
func (f Cover) Complement() Cover {
	if f.IsZero() {
		return One(f.N)
	}
	if f.HasUniverse() {
		return Zero(f.N)
	}
	if len(f.Cubes) == 1 {
		return cubeComplement(f.N, f.Cubes[0])
	}
	split := f.mostBinate()
	if split < 0 {
		split = f.mostActive()
	}
	if split < 0 {
		// No literals anywhere but no universal cube: impossible, since a
		// literal-free cube is universal.
		return Zero(f.N)
	}
	pos := f.Cofactor(split, Pos).Complement()
	neg := f.Cofactor(split, Neg).Complement()
	out := NewCover(f.N)
	for _, c := range pos.Cubes {
		d := c.Clone()
		if d[split] == DC {
			d[split] = Pos
		}
		out.Cubes = append(out.Cubes, d)
	}
	for _, c := range neg.Cubes {
		d := c.Clone()
		if d[split] == DC {
			d[split] = Neg
		}
		out.Cubes = append(out.Cubes, d)
	}
	return out.mergeComplementHalves(split).SCC()
}

// mergeComplementHalves merges pairs of cubes identical except for opposite
// phases of the split variable, lifting them to DC. This keeps Shannon
// complements from exploding.
func (f Cover) mergeComplementHalves(split int) Cover {
	out := NewCover(f.N)
	used := make([]bool, len(f.Cubes))
	for i, c := range f.Cubes {
		if used[i] {
			continue
		}
		merged := false
		if c[split] != DC {
			for j := i + 1; j < len(f.Cubes); j++ {
				if used[j] {
					continue
				}
				d := f.Cubes[j]
				if d[split] != DC && d[split] != c[split] && c.Without(split).Equal(d.Without(split)) {
					out.Cubes = append(out.Cubes, c.Without(split))
					used[i], used[j] = true, true
					merged = true
					break
				}
			}
		}
		if !merged {
			out.Cubes = append(out.Cubes, c.Clone())
			used[i] = true
		}
	}
	return out
}

// cubeComplement returns the complement of a single cube by De Morgan: one
// single-literal cube per literal, with the phase flipped.
func cubeComplement(n int, c Cube) Cover {
	out := NewCover(n)
	for i, p := range c {
		if p == DC {
			continue
		}
		d := NewCube(n)
		if p == Pos {
			d[i] = Neg
		} else {
			d[i] = Pos
		}
		out.Cubes = append(out.Cubes, d)
	}
	return out
}

// Or returns the disjunction of two covers over the same variable count.
func (f Cover) Or(g Cover) Cover {
	if f.N != g.N {
		panic("logic: Or of covers with different variable counts")
	}
	out := f.Clone()
	for _, c := range g.Cubes {
		out.Cubes = append(out.Cubes, c.Clone())
	}
	return out
}

// And returns the conjunction of two covers (pairwise cube intersection).
func (f Cover) And(g Cover) Cover {
	if f.N != g.N {
		panic("logic: And of covers with different variable counts")
	}
	out := NewCover(f.N)
	for _, c := range f.Cubes {
		for _, d := range g.Cubes {
			if x, ok := c.Intersect(d); ok {
				out.Cubes = append(out.Cubes, x)
			}
		}
	}
	return out.SCC()
}

// Equivalent reports whether two covers denote the same function, via two
// tautology checks of (f' + g) and (f + g').
func (f Cover) Equivalent(g Cover) bool {
	if f.N != g.N {
		return false
	}
	fImpliesG := f.Complement().Or(g)
	gImpliesF := g.Complement().Or(f)
	return fImpliesG.Tautology() && gImpliesF.Tautology()
}

// Minterms returns the sorted list of minterm indices covered by f.
// Intended for small N (it enumerates 2^N assignments).
func (f Cover) Minterms() []int {
	if f.N > 24 {
		panic("logic: Minterms on cover with more than 24 variables")
	}
	var out []int
	assign := make([]bool, f.N)
	for m := 0; m < 1<<uint(f.N); m++ {
		for i := 0; i < f.N; i++ {
			assign[i] = m&(1<<uint(i)) != 0
		}
		if f.Eval(assign) {
			out = append(out, m)
		}
	}
	return out
}

// Canonical returns a deterministic, sorted, SCC-reduced copy of the cover,
// useful for comparing covers structurally in tests.
func (f Cover) Canonical() Cover {
	g := f.SCC()
	sort.Slice(g.Cubes, func(i, j int) bool {
		return g.Cubes[i].String() < g.Cubes[j].String()
	})
	return g
}
