// Package logic provides two-level (sum-of-products) Boolean algebra on
// positional-cube covers. It is the foundation the rest of the synthesis
// system builds on: node functions in the Boolean network, the splitting
// heuristics of the threshold synthesizer, and the algebraic factorization
// engine all manipulate Cover values.
//
// A cube assigns one of three phases to each variable position: Neg (the
// variable appears complemented), Pos (uncomplemented), or DC (the variable
// does not appear). A cover is a set of cubes interpreted as their OR.
package logic

import (
	"fmt"
	"strings"
)

// Phase is the polarity of one variable position within a cube.
type Phase uint8

// The three possible phases of a variable in a cube.
const (
	Neg Phase = 0 // variable appears complemented (input must be 0)
	Pos Phase = 1 // variable appears uncomplemented (input must be 1)
	DC  Phase = 2 // variable does not appear (don't care)
)

func (p Phase) String() string {
	switch p {
	case Neg:
		return "0"
	case Pos:
		return "1"
	case DC:
		return "-"
	}
	return "?"
}

// Cube is a product term over n variables in positional notation.
// cube[i] gives the phase of variable i.
type Cube []Phase

// NewCube returns a cube of n variables with every position set to DC,
// i.e. the universal cube (constant 1).
func NewCube(n int) Cube {
	c := make(Cube, n)
	for i := range c {
		c[i] = DC
	}
	return c
}

// ParseCube parses a string of '0', '1' and '-' characters into a cube.
func ParseCube(s string) (Cube, error) {
	c := make(Cube, len(s))
	for i, r := range s {
		switch r {
		case '0':
			c[i] = Neg
		case '1':
			c[i] = Pos
		case '-':
			c[i] = DC
		default:
			return nil, fmt.Errorf("logic: invalid cube character %q in %q", r, s)
		}
	}
	return c, nil
}

// MustParseCube is ParseCube that panics on malformed input. It is intended
// for tests and package-internal literals.
func MustParseCube(s string) Cube {
	c, err := ParseCube(s)
	if err != nil {
		panic(err)
	}
	return c
}

// String renders the cube in positional notation, e.g. "1-0".
func (c Cube) String() string {
	var b strings.Builder
	for _, p := range c {
		b.WriteString(p.String())
	}
	return b.String()
}

// Clone returns an independent copy of the cube.
func (c Cube) Clone() Cube {
	d := make(Cube, len(c))
	copy(d, c)
	return d
}

// Literals returns the number of non-DC positions in the cube.
func (c Cube) Literals() int {
	n := 0
	for _, p := range c {
		if p != DC {
			n++
		}
	}
	return n
}

// IsUniverse reports whether every position is DC (the constant-1 cube).
func (c Cube) IsUniverse() bool {
	for _, p := range c {
		if p != DC {
			return false
		}
	}
	return true
}

// Contains reports whether c contains d, i.e. every minterm of d is a
// minterm of c. This holds iff at every position c is DC or agrees with d.
func (c Cube) Contains(d Cube) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != DC && c[i] != d[i] {
			return false
		}
	}
	return true
}

// Intersect returns the cube covering exactly the minterms common to c and
// d, and reports whether that intersection is non-empty. Two cubes have an
// empty intersection iff they conflict (opposite phases) at some position.
func (c Cube) Intersect(d Cube) (Cube, bool) {
	out := make(Cube, len(c))
	for i := range c {
		switch {
		case c[i] == DC:
			out[i] = d[i]
		case d[i] == DC || c[i] == d[i]:
			out[i] = c[i]
		default:
			return nil, false
		}
	}
	return out, true
}

// Distance returns the number of positions at which c and d require
// opposite phases. Distance 0 means the cubes intersect.
func (c Cube) Distance(d Cube) int {
	n := 0
	for i := range c {
		if c[i] != DC && d[i] != DC && c[i] != d[i] {
			n++
		}
	}
	return n
}

// Eval reports whether the cube covers the given complete assignment.
func (c Cube) Eval(assign []bool) bool {
	for i, p := range c {
		switch p {
		case Pos:
			if !assign[i] {
				return false
			}
		case Neg:
			if assign[i] {
				return false
			}
		}
	}
	return true
}

// Cofactor returns the cofactor of the cube with respect to variable i set
// to the given phase (Pos or Neg), and reports whether the cofactor is
// non-empty. In the returned cube position i becomes DC.
func (c Cube) Cofactor(i int, ph Phase) (Cube, bool) {
	if c[i] != DC && c[i] != ph {
		return nil, false
	}
	d := c.Clone()
	d[i] = DC
	return d, true
}

// Without returns a copy of the cube with position i forced to DC.
func (c Cube) Without(i int) Cube {
	d := c.Clone()
	d[i] = DC
	return d
}

// Equal reports whether the two cubes are identical position by position.
func (c Cube) Equal(d Cube) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}
