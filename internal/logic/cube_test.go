package logic

import (
	"testing"
	"testing/quick"
)

func TestParseCube(t *testing.T) {
	c, err := ParseCube("1-0")
	if err != nil {
		t.Fatalf("ParseCube: %v", err)
	}
	if c[0] != Pos || c[1] != DC || c[2] != Neg {
		t.Fatalf("ParseCube(\"1-0\") = %v", c)
	}
	if got := c.String(); got != "1-0" {
		t.Fatalf("String() = %q, want %q", got, "1-0")
	}
	if _, err := ParseCube("1x0"); err == nil {
		t.Fatal("ParseCube accepted invalid character")
	}
}

func TestCubeLiterals(t *testing.T) {
	cases := []struct {
		cube string
		want int
	}{
		{"---", 0},
		{"1--", 1},
		{"101", 3},
		{"0-1", 2},
	}
	for _, tc := range cases {
		if got := MustParseCube(tc.cube).Literals(); got != tc.want {
			t.Errorf("Literals(%q) = %d, want %d", tc.cube, got, tc.want)
		}
	}
}

func TestCubeContains(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"---", "101", true},
		{"1--", "101", true},
		{"1--", "001", false},
		{"101", "101", true},
		{"101", "1-1", false},
		{"1-1", "101", true},
	}
	for _, tc := range cases {
		a, b := MustParseCube(tc.a), MustParseCube(tc.b)
		if got := a.Contains(b); got != tc.want {
			t.Errorf("Contains(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCubeIntersect(t *testing.T) {
	a := MustParseCube("1--")
	b := MustParseCube("-0-")
	x, ok := a.Intersect(b)
	if !ok || x.String() != "10-" {
		t.Fatalf("Intersect(1--, -0-) = %v, %v", x, ok)
	}
	c := MustParseCube("0--")
	if _, ok := a.Intersect(c); ok {
		t.Fatal("Intersect(1--, 0--) should be empty")
	}
}

func TestCubeDistance(t *testing.T) {
	if d := MustParseCube("10-").Distance(MustParseCube("01-")); d != 2 {
		t.Fatalf("Distance = %d, want 2", d)
	}
	if d := MustParseCube("1--").Distance(MustParseCube("-0-")); d != 0 {
		t.Fatalf("Distance = %d, want 0", d)
	}
}

func TestCubeEval(t *testing.T) {
	c := MustParseCube("1-0")
	if !c.Eval([]bool{true, false, false}) {
		t.Error("Eval(100) should be true")
	}
	if !c.Eval([]bool{true, true, false}) {
		t.Error("Eval(110) should be true")
	}
	if c.Eval([]bool{true, true, true}) {
		t.Error("Eval(111) should be false")
	}
	if c.Eval([]bool{false, true, false}) {
		t.Error("Eval(010) should be false")
	}
}

func TestCubeCofactor(t *testing.T) {
	c := MustParseCube("1-0")
	d, ok := c.Cofactor(0, Pos)
	if !ok || d.String() != "--0" {
		t.Fatalf("Cofactor(0, Pos) = %v, %v", d, ok)
	}
	if _, ok := c.Cofactor(0, Neg); ok {
		t.Fatal("Cofactor(0, Neg) of cube 1-0 should be empty")
	}
}

// Property: intersection covers exactly the common minterms.
func TestCubeIntersectProperty(t *testing.T) {
	f := func(aRaw, bRaw [5]uint8) bool {
		a, b := make(Cube, 5), make(Cube, 5)
		for i := 0; i < 5; i++ {
			a[i] = Phase(aRaw[i] % 3)
			b[i] = Phase(bRaw[i] % 3)
		}
		x, ok := a.Intersect(b)
		assign := make([]bool, 5)
		for m := 0; m < 32; m++ {
			for i := 0; i < 5; i++ {
				assign[i] = m&(1<<uint(i)) != 0
			}
			want := a.Eval(assign) && b.Eval(assign)
			var got bool
			if ok {
				got = x.Eval(assign)
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: containment agrees with minterm subset.
func TestCubeContainsProperty(t *testing.T) {
	f := func(aRaw, bRaw [4]uint8) bool {
		a, b := make(Cube, 4), make(Cube, 4)
		for i := 0; i < 4; i++ {
			a[i] = Phase(aRaw[i] % 3)
			b[i] = Phase(bRaw[i] % 3)
		}
		subset := true
		assign := make([]bool, 4)
		for m := 0; m < 16; m++ {
			for i := 0; i < 4; i++ {
				assign[i] = m&(1<<uint(i)) != 0
			}
			if b.Eval(assign) && !a.Eval(assign) {
				subset = false
				break
			}
		}
		return a.Contains(b) == subset
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
