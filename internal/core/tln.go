package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTLN writes the threshold network in the textual .tln format:
//
//	.tnet <name>
//	.inputs a b c
//	.outputs f
//	.gate f = [T=2] +1*a +1*b -1*c
//	.end
func WriteTLN(w io.Writer, tn *Network) error {
	_, err := io.WriteString(w, tn.String())
	return err
}

// ParseTLN reads a threshold network in the .tln format.
func ParseTLN(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	tn := NewNetwork("top")
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.Index(text, "#"); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case ".tnet":
			if len(fields) > 1 {
				tn.Name = fields[1]
			}
		case ".inputs":
			for _, in := range fields[1:] {
				tn.AddInput(in)
			}
		case ".outputs":
			for _, o := range fields[1:] {
				tn.MarkOutput(o)
			}
		case ".gate":
			g, err := parseGateLine(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("tln: line %d: %v", line, err)
			}
			if err := tn.AddGate(g); err != nil {
				return nil, fmt.Errorf("tln: line %d: %v", line, err)
			}
		case ".end":
		default:
			return nil, fmt.Errorf("tln: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := tn.Validate(); err != nil {
		return nil, err
	}
	return tn, nil
}

// parseGateLine parses "f = [T=2] +1*a -1*b".
func parseGateLine(fields []string) (*Gate, error) {
	if len(fields) < 3 || fields[1] != "=" {
		return nil, fmt.Errorf("malformed gate line %v", fields)
	}
	g := &Gate{Name: fields[0]}
	tField := fields[2]
	if !strings.HasPrefix(tField, "[T=") || !strings.HasSuffix(tField, "]") {
		return nil, fmt.Errorf("malformed threshold %q", tField)
	}
	t, err := strconv.Atoi(tField[3 : len(tField)-1])
	if err != nil {
		return nil, fmt.Errorf("bad threshold %q: %v", tField, err)
	}
	g.T = t
	for _, term := range fields[3:] {
		star := strings.Index(term, "*")
		if star < 0 {
			return nil, fmt.Errorf("malformed term %q", term)
		}
		w, err := strconv.Atoi(term[:star])
		if err != nil {
			return nil, fmt.Errorf("bad weight in %q: %v", term, err)
		}
		name := term[star+1:]
		if name == "" {
			return nil, fmt.Errorf("missing input name in %q", term)
		}
		g.Weights = append(g.Weights, w)
		g.Inputs = append(g.Inputs, name)
	}
	return g, nil
}

// ParseTLNString parses a .tln document from a string.
func ParseTLNString(s string) (*Network, error) {
	return ParseTLN(strings.NewReader(s))
}
