package core

import (
	"math/rand"
	"testing"

	"tels/internal/ilp"
	"tels/internal/logic"
	"tels/internal/network"
	"tels/internal/truth"
)

// fig2a builds the paper's motivational Boolean network (Fig. 2(a)).
func fig2a() *network.Network {
	b := network.NewBuilder("fig2a")
	var x [8]*network.Node
	for i := 1; i <= 7; i++ {
		x[i] = b.Input("x" + string(rune('0'+i)))
	}
	n4 := b.And("n4", x[1], x[2], x[3])
	inv := b.Not("inv", x[1])
	n5 := b.And("n5", inv, x[4])
	n3 := b.Or("n3", n4, n5)
	n1 := b.And("n1", n3, x[5])
	n2 := b.And("n2", x[6], x[7])
	f := b.Or("f", n1, n2)
	b.Output(f)
	return b.Net
}

// checkEquivalent verifies the threshold network matches the Boolean
// network on all (≤ 14 inputs) or 4096 random vectors.
func checkEquivalent(t *testing.T, nw *network.Network, tn *Network) {
	t.Helper()
	n := len(nw.Inputs)
	exhaustive := n <= 14
	vectors := 1 << uint(n)
	if !exhaustive {
		vectors = 4096
	}
	rng := rand.New(rand.NewSource(123))
	for v := 0; v < vectors; v++ {
		in := make(map[string]bool, n)
		for i, node := range nw.Inputs {
			if exhaustive {
				in[node.Name] = v&(1<<uint(i)) != 0
			} else {
				in[node.Name] = rng.Intn(2) == 1
			}
		}
		want, err := nw.EvalOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tn.EvalOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("output %s differs on vector %d: bool=%v thr=%v",
					nw.Outputs[i].Name, v, want[i], got[i])
			}
		}
	}
}

// checkGateInvariants verifies ψ and the δ-margins of every gate against
// its exact local function.
func checkGateInvariants(t *testing.T, tn *Network, o Options) {
	t.Helper()
	if got := tn.MaxFanin(); got > o.Fanin {
		t.Fatalf("max fanin %d exceeds ψ=%d", got, o.Fanin)
	}
	// Rebuild each gate's function from its weight vector... the margin
	// check needs the intended function; here we check self-consistency:
	// the realized function of the weights must respect the margins, i.e.
	// no input combination may land in the forbidden band
	// (T-δoff, T+δon).
	for _, g := range tn.Gates {
		n := len(g.Inputs)
		if n > 16 {
			t.Fatalf("gate %s too wide to check", g.Name)
		}
		for m := 0; m < 1<<uint(n); m++ {
			sum := 0
			for i := 0; i < n; i++ {
				if m&(1<<uint(i)) != 0 {
					sum += g.Weights[i]
				}
			}
			if sum > g.T-o.DeltaOff && sum < g.T+o.DeltaOn {
				t.Fatalf("gate %s: weighted sum %d falls inside the forbidden band (T=%d, δon=%d, δoff=%d)",
					g.Name, sum, g.T, o.DeltaOn, o.DeltaOff)
			}
			if sum >= g.T && sum < g.T+o.DeltaOn {
				t.Fatalf("gate %s: ON margin violated", g.Name)
			}
			if sum < g.T && sum > g.T-o.DeltaOff {
				t.Fatalf("gate %s: OFF margin violated", g.Name)
			}
		}
	}
}

func TestMotivationalExample(t *testing.T) {
	nw := fig2a()
	o := Options{Fanin: 4, DeltaOn: 0, DeltaOff: 1}
	tn, stats, err := Synthesize(nw, o)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, nw, tn)
	checkGateInvariants(t, tn, o)
	// The paper synthesizes this network into 5 gates and 3 levels with
	// ψ=4 (Fig. 2(b)). Heuristic orderings may differ slightly; require
	// strict improvement over the 7-gate/5-level one-to-one result and
	// allow a small band around the paper's numbers.
	s := tn.Stats()
	if s.Gates > 6 || s.Gates < 3 {
		t.Fatalf("gates = %d, want about 5 (paper) and < 7 (one-to-one)", s.Gates)
	}
	if s.Levels > 4 {
		t.Fatalf("levels = %d, want about 3", s.Levels)
	}
	if stats.ILPCalls == 0 {
		t.Fatal("no ILP calls recorded")
	}
}

func TestSynthesizePreservesFanout(t *testing.T) {
	// n3 shared by two outputs must remain a single gate.
	b := network.NewBuilder("shared")
	x1 := b.Input("x1")
	x2 := b.Input("x2")
	x3 := b.Input("x3")
	x4 := b.Input("x4")
	n3 := b.Or("n3", b.And("a1", x1, x2), b.And("a2", x3, x4))
	y1 := b.And("y1", n3, x1)
	y2 := b.Or("y2", n3, x4)
	b.Output(y1)
	b.Output(y2)
	o := DefaultOptions()
	tn, _, err := Synthesize(b.Net, o)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, b.Net, tn)
	if tn.Gate("n3") == nil {
		t.Fatalf("fanout node n3 not preserved; gates: %v", tn.SortedGateNames())
	}
	// n3 must be referenced by both y1 and y2 cones.
	refs := 0
	for _, g := range tn.Gates {
		for _, in := range g.Inputs {
			if in == "n3" {
				refs++
			}
		}
	}
	if refs < 2 {
		t.Fatalf("n3 referenced %d times, want ≥ 2", refs)
	}
}

func TestSynthesizeXor(t *testing.T) {
	// XOR forces binate splitting.
	b := network.NewBuilder("xor")
	x := b.Input("x")
	y := b.Input("y")
	b.Output(b.Xor("f", x, y))
	o := DefaultOptions()
	tn, stats, err := Synthesize(b.Net, o)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, b.Net, tn)
	checkGateInvariants(t, tn, o)
	if stats.BinateSplits == 0 {
		t.Fatal("xor should trigger a binate split")
	}
	if tn.GateCount() < 3 {
		t.Fatalf("xor needs ≥ 3 LTGs, got %d", tn.GateCount())
	}
}

func TestSynthesizeBinatePaperExample(t *testing.T) {
	// §V-D: n = !x1 x4 + x2 x3 + !x2 x4 x5 with ψ=5 becomes an OR of
	// three threshold parts.
	nw := network.New("vd")
	var ins []*network.Node
	for i := 1; i <= 5; i++ {
		ins = append(ins, nw.AddInput("x"+string(rune('0'+i))))
	}
	n := nw.AddNode("n", ins, logic.MustCover("0--1-", "-11--", "-0-11"))
	nw.MarkOutput(n)
	o := Options{Fanin: 5, DeltaOn: 0, DeltaOff: 1}
	tn, stats, err := Synthesize(nw, o)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, nw, tn)
	checkGateInvariants(t, tn, o)
	if stats.BinateSplits == 0 {
		t.Fatal("expected a binate split")
	}
	top := tn.Gate("n")
	if top == nil {
		t.Fatal("no top gate named n")
	}
	// Top gate is an OR: unit weights, threshold 1.
	if top.T != 1 {
		t.Fatalf("top gate T = %d, want 1 (OR)", top.T)
	}
	for _, w := range top.Weights {
		if w != 1 {
			t.Fatalf("top gate weights = %v, want all 1", top.Weights)
		}
	}
}

func TestSynthesizeWideAnd(t *testing.T) {
	// 9-input AND with ψ=3 must become a tree of ANDs.
	b := network.NewBuilder("wide")
	var ins []*network.Node
	for i := 0; i < 9; i++ {
		ins = append(ins, b.Input("x"+string(rune('a'+i))))
	}
	b.Output(b.And("f", ins...))
	o := DefaultOptions()
	tn, _, err := Synthesize(b.Net, o)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, b.Net, tn)
	checkGateInvariants(t, tn, o)
}

func TestSynthesizeConstantOutputs(t *testing.T) {
	nw := network.New("consts")
	a := nw.AddInput("a")
	one := nw.AddNode("one", []*network.Node{a}, logic.MustCover("1", "0"))
	zero := nw.AddNode("zero", nil, logic.Zero(0))
	nw.MarkOutput(one)
	nw.MarkOutput(zero)
	tn, _, err := Synthesize(nw, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := tn.EvalOutputs(map[string]bool{"a": true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != true || out[1] != false {
		t.Fatalf("constants = %v", out)
	}
}

func TestSynthesizePIOutput(t *testing.T) {
	nw := network.New("pipo")
	a := nw.AddInput("a")
	bn := nw.AddNode("f", []*network.Node{a}, logic.MustCover("0"))
	nw.MarkOutput(a)
	nw.MarkOutput(bn)
	tn, _, err := Synthesize(nw, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := tn.EvalOutputs(map[string]bool{"a": true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != true || out[1] != false {
		t.Fatalf("outputs = %v", out)
	}
}

func TestSynthesizeRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for iter := 0; iter < 25; iter++ {
		nw := randomNet(rng, 3+rng.Intn(5), 4+rng.Intn(8))
		for _, psi := range []int{2, 3, 4, 6} {
			o := Options{Fanin: psi, DeltaOn: 0, DeltaOff: 1, Seed: int64(iter)}
			tn, _, err := Synthesize(nw, o)
			if err != nil {
				t.Fatalf("iter %d ψ=%d: %v", iter, psi, err)
			}
			checkEquivalent(t, nw, tn)
			checkGateInvariants(t, tn, o)
		}
	}
}

func TestSynthesizeWithDefectTolerances(t *testing.T) {
	nw := fig2a()
	for deltaOn := 0; deltaOn <= 3; deltaOn++ {
		o := Options{Fanin: 3, DeltaOn: deltaOn, DeltaOff: 1}
		tn, _, err := Synthesize(nw, o)
		if err != nil {
			t.Fatalf("δon=%d: %v", deltaOn, err)
		}
		checkEquivalent(t, nw, tn)
		checkGateInvariants(t, tn, o)
	}
}

func TestSynthesizeAreaGrowsWithDeltaOn(t *testing.T) {
	nw := fig2a()
	prev := 0
	for deltaOn := 0; deltaOn <= 3; deltaOn++ {
		tn, _, err := Synthesize(nw, Options{Fanin: 3, DeltaOn: deltaOn, DeltaOff: 1})
		if err != nil {
			t.Fatal(err)
		}
		a := tn.Area()
		if a < prev {
			t.Fatalf("area decreased with δon: %d -> %d", prev, a)
		}
		prev = a
	}
}

func TestOptionsValidation(t *testing.T) {
	nw := fig2a()
	if _, _, err := Synthesize(nw, Options{Fanin: 1}); err == nil {
		t.Fatal("ψ=1 must be rejected")
	}
	if _, _, err := Synthesize(nw, Options{Fanin: 3, DeltaOn: -1, DeltaOff: 1}); err == nil {
		t.Fatal("negative δon must be rejected")
	}
	if _, _, err := Synthesize(nw, Options{Fanin: 100}); err == nil {
		t.Fatal("huge ψ must be rejected")
	}
}

func randomNet(rng *rand.Rand, inputs, gates int) *network.Network {
	nw := network.New("rnd")
	var signals []*network.Node
	for i := 0; i < inputs; i++ {
		signals = append(signals, nw.AddInput("i"+string(rune('a'+i))))
	}
	for g := 0; g < gates; g++ {
		k := 2 + rng.Intn(3)
		if k > len(signals) {
			k = len(signals)
		}
		perm := rng.Perm(len(signals))
		fanins := make([]*network.Node, k)
		for i := 0; i < k; i++ {
			fanins[i] = signals[perm[i]]
		}
		cover := logic.NewCover(k)
		for c := 0; c < 1+rng.Intn(3); c++ {
			cube := logic.NewCube(k)
			any := false
			for j := 0; j < k; j++ {
				switch rng.Intn(3) {
				case 0:
					cube[j] = logic.Pos
					any = true
				case 1:
					cube[j] = logic.Neg
					any = true
				}
			}
			if any {
				cover.AddCube(cube)
			}
		}
		if cover.IsZero() {
			cb := logic.NewCube(k)
			cb[0] = logic.Pos
			cover.AddCube(cb)
		}
		signals = append(signals, nw.AddNode(nw.FreshName("g"), fanins, cover))
	}
	outs := 0
	for i := len(signals) - 1; i >= 0 && outs < 3; i-- {
		if signals[i].Kind == network.Internal {
			nw.MarkOutput(signals[i])
			outs++
		}
	}
	nw.RemoveDangling()
	return nw
}

func TestOneToOneFig2a(t *testing.T) {
	nw := fig2a()
	o := Options{Fanin: 4, DeltaOn: 0, DeltaOff: 1}
	tn, err := OneToOne(nw, o)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, nw, tn)
	checkGateInvariants(t, tn, o)
	// One-to-one on the raw Fig 2(a) yields 7 gates (paper §III).
	if tn.GateCount() != 7 {
		t.Fatalf("one-to-one gates = %d, want 7", tn.GateCount())
	}
	if _, depth := tn.Levels(); depth != 5 {
		t.Fatalf("one-to-one levels = %d, want 5", depth)
	}
}

func TestOneToOneRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 15; iter++ {
		nw := randomNet(rng, 4+rng.Intn(4), 5+rng.Intn(6))
		for _, psi := range []int{2, 3, 5} {
			o := Options{Fanin: psi, DeltaOn: 0, DeltaOff: 1}
			tn, err := OneToOne(nw, o)
			if err != nil {
				t.Fatalf("iter %d ψ=%d: %v", iter, psi, err)
			}
			checkEquivalent(t, nw, tn)
			checkGateInvariants(t, tn, o)
		}
	}
}

func TestGateAreaEq14(t *testing.T) {
	g := &Gate{Name: "g", Inputs: []string{"a", "b", "c"}, Weights: []int{2, -1, -1}, T: 1}
	if got := g.Area(); got != 5 {
		t.Fatalf("area = %d, want |2|+|-1|+|-1|+|1| = 5", got)
	}
}

func TestNetworkLevelsAndArea(t *testing.T) {
	tn := NewNetwork("t")
	tn.AddInput("a")
	tn.AddInput("b")
	if err := tn.AddGate(&Gate{Name: "g1", Inputs: []string{"a", "b"}, Weights: []int{1, 1}, T: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tn.AddGate(&Gate{Name: "g2", Inputs: []string{"g1", "a"}, Weights: []int{1, 1}, T: 1}); err != nil {
		t.Fatal(err)
	}
	tn.MarkOutput("g2")
	if _, depth := tn.Levels(); depth != 2 {
		t.Fatalf("depth = %d, want 2", depth)
	}
	if tn.Area() != 4+3 {
		t.Fatalf("area = %d, want 7", tn.Area())
	}
	if err := tn.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkErrors(t *testing.T) {
	tn := NewNetwork("e")
	tn.AddInput("a")
	if err := tn.AddGate(&Gate{Name: "a", T: 1}); err == nil {
		t.Fatal("gate shadowing input must fail")
	}
	if err := tn.AddGate(&Gate{Name: "g", Inputs: []string{"x"}, Weights: []int{1, 2}, T: 1}); err == nil {
		t.Fatal("weight/input mismatch must fail")
	}
	if err := tn.AddGate(&Gate{Name: "g", Inputs: []string{"missing"}, Weights: []int{1}, T: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tn.AddGate(&Gate{Name: "g", T: 1}); err == nil {
		t.Fatal("duplicate gate must fail")
	}
	tn.MarkOutput("g")
	if err := tn.Validate(); err == nil {
		t.Fatal("undriven gate input must fail validation")
	}
}

func TestSynthesizeDeterministicWithSeed(t *testing.T) {
	nw := fig2a()
	o := Options{Fanin: 3, DeltaOn: 0, DeltaOff: 1, Seed: 42}
	a, _, err := Synthesize(nw, o)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Synthesize(nw, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed must give identical networks")
	}
}

func TestCollapseRespectsDone(t *testing.T) {
	// A chain a->n1->n2->f with ψ large: f collapses across n2 and n1 all
	// the way to the input, producing a single gate.
	b := network.NewBuilder("chain")
	x1 := b.Input("x1")
	x2 := b.Input("x2")
	x3 := b.Input("x3")
	n1 := b.And("n1", x1, x2)
	n2 := b.Or("n2", n1, x3)
	f := b.And("f", n2, x1)
	b.Output(f)
	o := Options{Fanin: 5, DeltaOn: 0, DeltaOff: 1}
	tn, stats, err := Synthesize(b.Net, o)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, b.Net, tn)
	if stats.Collapses == 0 {
		t.Fatal("expected collapsing on the chain")
	}
	if tn.GateCount() > 2 {
		t.Fatalf("gates = %d, want the chain collapsed (≤ 2)", tn.GateCount())
	}
}

// Property test: the ILP-based synthesis output always respects margins,
// fanin, equivalence, and never emits an unused gate.
func TestNoDanglingGates(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for iter := 0; iter < 10; iter++ {
		nw := randomNet(rng, 5, 8)
		tn, _, err := Synthesize(nw, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		used := make(map[string]bool)
		for _, o := range tn.Outputs {
			used[o] = true
		}
		for _, g := range tn.Gates {
			for _, in := range g.Inputs {
				used[in] = true
			}
		}
		for _, g := range tn.Gates {
			if !used[g.Name] {
				t.Fatalf("iter %d: gate %s is dangling", iter, g.Name)
			}
		}
	}
}

func TestVerifyVectorRejectsBad(t *testing.T) {
	f := truth.Var(2, 0).And(truth.Var(2, 1))
	good := WeightVector{Weights: []int{1, 1}, T: 2}
	if !VerifyVector(f, good, 0, 1) {
		t.Fatal("good AND vector rejected")
	}
	bad := WeightVector{Weights: []int{1, 1}, T: 1} // realizes OR
	if VerifyVector(f, bad, 0, 1) {
		t.Fatal("OR vector accepted for AND")
	}
	short := WeightVector{Weights: []int{1}, T: 1}
	if VerifyVector(f, short, 0, 1) {
		t.Fatal("arity mismatch accepted")
	}
}

var _ = ilp.Solver{} // keep the import for documentation-style references

func TestSynthesizeExactILP(t *testing.T) {
	nw := fig2a()
	o := Options{Fanin: 3, DeltaOn: 0, DeltaOff: 1, ExactILP: true}
	exact, _, err := Synthesize(nw, o)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, nw, exact)
	o.ExactILP = false
	float, _, err := Synthesize(nw, o)
	if err != nil {
		t.Fatal(err)
	}
	if exact.String() != float.String() {
		t.Fatal("exact and float ILP backends produced different networks")
	}
}

func TestMaxWeightRespected(t *testing.T) {
	// f = x1x2 + x1x3 needs weight 2 on x1 as a single gate; with
	// MaxWeight 1 it must split into unit-weight gates instead.
	nw := network.New("mw")
	var ins []*network.Node
	for i := 1; i <= 3; i++ {
		ins = append(ins, nw.AddInput("x"+string(rune('0'+i))))
	}
	f := nw.AddNode("f", ins, logic.MustCover("11-", "1-1"))
	nw.MarkOutput(f)

	unbounded, _, err := Synthesize(nw, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.GateCount() != 1 {
		t.Fatalf("unbounded synthesis used %d gates, want 1", unbounded.GateCount())
	}

	o := DefaultOptions()
	o.MaxWeight = 1
	bounded, _, err := Synthesize(nw, o)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, nw, bounded)
	if bounded.GateCount() < 2 {
		t.Fatalf("bounded synthesis used %d gates; expected a split", bounded.GateCount())
	}
	for _, g := range bounded.Gates {
		for _, w := range g.Weights {
			if w > 1 || w < -1 {
				t.Fatalf("gate %s has weight %d beyond the bound", g.Name, w)
			}
		}
	}
}

func TestMaxWeightOnBenchmarkFlavour(t *testing.T) {
	nw := fig2a()
	o := DefaultOptions()
	o.MaxWeight = 2
	tn, _, err := Synthesize(nw, o)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, nw, tn)
	for _, g := range tn.Gates {
		for _, w := range g.Weights {
			if w > 2 || w < -2 {
				t.Fatalf("gate %s weight %d beyond bound 2", g.Name, w)
			}
		}
	}
}

func TestMaxWeightValidation(t *testing.T) {
	nw := fig2a()
	o := Options{Fanin: 3, DeltaOn: 2, DeltaOff: 2, MaxWeight: 3}
	if _, _, err := Synthesize(nw, o); err == nil {
		t.Fatal("MaxWeight below δon+δoff must be rejected")
	}
}
