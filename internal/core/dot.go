package core

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the threshold network in Graphviz dot format: inputs
// as plain nodes, gates as records showing their weights and threshold,
// edges labelled with the input weight.
func WriteDot(w io.Writer, tn *Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", tn.Name)
	fmt.Fprintln(bw, "  rankdir=LR;")
	fmt.Fprintln(bw, "  node [fontname=\"Helvetica\"];")
	for _, in := range tn.Inputs {
		fmt.Fprintf(bw, "  %q [shape=circle];\n", in)
	}
	outputs := make(map[string]bool, len(tn.Outputs))
	for _, o := range tn.Outputs {
		outputs[o] = true
	}
	order, err := tn.TopoGates()
	if err != nil {
		return err
	}
	for _, g := range order {
		shape := "box"
		if outputs[g.Name] {
			shape = "doubleoctagon"
		}
		fmt.Fprintf(bw, "  %q [shape=%s,label=\"%s\\nT=%d\"];\n",
			g.Name, shape, dotEscape(g.Name), g.T)
		for i, in := range g.Inputs {
			fmt.Fprintf(bw, "  %q -> %q [label=\"%d\"];\n", in, g.Name, g.Weights[i])
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func dotEscape(s string) string {
	return strings.NewReplacer("\"", "\\\"", "\\", "\\\\").Replace(s)
}
