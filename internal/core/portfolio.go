package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"tels/internal/ilp"
	"tels/internal/truth"
)

// SolverMode selects the engine behind the Fig. 6 threshold check.
type SolverMode int

// The three solver modes. The zero value is the portfolio, so an
// unconfigured Options races both engines by default.
const (
	// SolverPortfolio races the simplex ILP against the pbsat
	// pseudo-Boolean engine per node; the first proven answer wins and
	// cancels the loser. Results are bit-identical to SolverILP whenever
	// the ILP's §V-E budget suffices, regardless of which engine wins.
	SolverPortfolio SolverMode = iota
	// SolverILP is the historical simplex branch-and-bound alone.
	SolverILP
	// SolverPbsat decides with the pseudo-Boolean engine alone; the ILP
	// is used only to extract the canonical weight vector once the
	// optimal objective is proven.
	SolverPbsat
)

func (m SolverMode) String() string {
	switch m {
	case SolverPortfolio:
		return "portfolio"
	case SolverILP:
		return "ilp"
	case SolverPbsat:
		return "pbsat"
	}
	return fmt.Sprintf("SolverMode(%d)", int(m))
}

// ParseSolverMode parses the CLI/config spelling of a solver mode. The
// empty string selects the portfolio default.
func ParseSolverMode(s string) (SolverMode, error) {
	switch s {
	case "", "portfolio":
		return SolverPortfolio, nil
	case "ilp":
		return SolverILP, nil
	case "pbsat":
		return SolverPbsat, nil
	}
	return 0, fmt.Errorf("unknown solver mode %q (want portfolio, ilp, or pbsat)", s)
}

// CheckCounters is a snapshot of the process-wide threshold-check
// observability counters. They are deliberately not part of SynthStats:
// stats travel inside service results, and these counters depend on race
// timing, which must never influence result bytes.
type CheckCounters struct {
	// Checks counts threshold-check invocations that reached an engine
	// or the UNSAT cache (constants/binate early-outs excluded).
	Checks int64
	// Races counts portfolio checks that escalated past the quick ILP
	// probe into a two-engine race.
	Races int64
	// ILPWins / PbsatWins attribute each race to the engine whose proven
	// answer arrived first.
	ILPWins   int64
	PbsatWins int64
	// UnsatCacheHits counts checks answered by the proven-UNSAT cache
	// without touching either engine.
	UnsatCacheHits int64
	// BudgetBailouts counts checks declared non-threshold because every
	// engine ran out of budget (§V-E bailout; the caller splits).
	BudgetBailouts int64
}

var checkCounters struct {
	checks, races, ilpWins, pbsatWins, unsatHits, bailouts atomic.Int64
}

// SnapshotCheckCounters returns the current process-wide counters.
func SnapshotCheckCounters() CheckCounters {
	return CheckCounters{
		Checks:         checkCounters.checks.Load(),
		Races:          checkCounters.races.Load(),
		ILPWins:        checkCounters.ilpWins.Load(),
		PbsatWins:      checkCounters.pbsatWins.Load(),
		UnsatCacheHits: checkCounters.unsatHits.Load(),
		BudgetBailouts: checkCounters.bailouts.Load(),
	}
}

// ResetCheckCounters zeroes the counters (tests and per-run CLI summaries).
func ResetCheckCounters() {
	checkCounters.checks.Store(0)
	checkCounters.races.Store(0)
	checkCounters.ilpWins.Store(0)
	checkCounters.pbsatWins.Store(0)
	checkCounters.unsatHits.Store(0)
	checkCounters.bailouts.Store(0)
}

// unsatCache remembers proven-UNSAT check instances by the canonical
// truth-table digest (the positive-unate form plus margins — computed
// before the ON/OFF covers are derived, so a hit skips not only both
// engines but also the exact prime generation that dominates wide
// checks). Binate splits and resyn iterations re-check the same rejected
// functions over and over, and array-style benchmarks repeat the same
// wide slice function across outputs. Only proven verdicts enter — a
// §V-E budget bailout is not a certificate (see ilp.Result.Proven) — so
// a hit never changes a verdict, only the time to reach it.
const unsatCacheCap = 1 << 16

var unsatCache = struct {
	sync.RWMutex
	m map[[32]byte]struct{}
}{m: make(map[[32]byte]struct{})}

func unsatCacheLookup(key [32]byte) bool {
	unsatCache.RLock()
	_, ok := unsatCache.m[key]
	unsatCache.RUnlock()
	return ok
}

func unsatCacheInsert(key [32]byte) {
	unsatCache.Lock()
	if len(unsatCache.m) < unsatCacheCap {
		unsatCache.m[key] = struct{}{}
	}
	unsatCache.Unlock()
}

// ResetUnsatCache drops every cached UNSAT certificate (tests and
// benchmarks that must measure cold solves).
func ResetUnsatCache() {
	unsatCache.Lock()
	unsatCache.m = make(map[[32]byte]struct{})
	unsatCache.Unlock()
}

// Checker runs Fig. 6 threshold checks under a selectable engine. The
// zero value is ready to use: portfolio mode, default ILP node budget,
// default pbsat conflict budget, UNSAT cache on.
type Checker struct {
	// Mode selects the engine (default SolverPortfolio).
	Mode SolverMode
	// ILP configures the branch-and-bound engine (§V-E node budget,
	// exact arithmetic).
	ILP ilp.Solver
	// MaxConflicts bounds the pbsat engine's total conflicts per check
	// (0 = DefaultPbsatConflicts).
	MaxConflicts int64
	// NoCache bypasses the process-wide proven-UNSAT cache. Benchmarks
	// use it to measure cold solves.
	NoCache bool
}

// Checker builds the threshold-check engine described by the synthesis
// knobs; internal/resyn and the synthesizer share it so the solver-mode
// knob reaches every check.
func (o *Options) Checker() Checker {
	return Checker{
		Mode: o.Solver,
		ILP:  ilp.Solver{MaxNodes: o.MaxILPNodes, Exact: o.ExactILP},
	}
}

// DefaultPbsatConflicts is the per-check pbsat conflict budget: the
// pseudo-Boolean analogue of ilp.DefaultMaxNodes, far above what any
// MCNC node needs.
const DefaultPbsatConflicts = 1 << 18

// probeNodes is the portfolio's stage-1 ILP budget. Most instances end at
// the root relaxation — a Farkas-certified Infeasible or an integral
// Optimal — and the rest of the realistic ones within a few dozen
// branch-and-bound nodes; answering them inline avoids paying two
// goroutines, a context, and a redundant root solve per check, which is
// measurable on µs-scale checks. Only instances that genuinely thrash
// (none in the MCNC corpus, but reachable with tight weight caps) reach
// the race, where the probe's wasted work is small against either
// engine's runtime.
const probeNodes = 64

// outcome of one engine dispatch.
type checkOutcome int

const (
	outIndet checkOutcome = iota // every engine exhausted its budget
	outSat
	outUnsat
)

// Check decides whether tt is a threshold function under the margins and
// weight cap, exactly like CheckThresholdBounded, using the configured
// engine. All modes return bit-identical vectors on the same instance
// (as long as the ILP budget suffices — see SolverPortfolio).
func (c *Checker) Check(tt *truth.Table, deltaOn, deltaOff, maxWeight int) (WeightVector, bool) {
	sys, ok := buildCheckSystem(tt, deltaOn, deltaOff, maxWeight)
	if !ok {
		return WeightVector{}, false
	}
	checkCounters.checks.Add(1)
	var key [32]byte
	if !c.NoCache {
		key = sys.digest()
		if unsatCacheLookup(key) {
			checkCounters.unsatHits.Add(1)
			return WeightVector{}, false
		}
	}
	var (
		vec WeightVector
		out checkOutcome
	)
	switch c.Mode {
	case SolverILP:
		vec, out = c.runILP(context.Background(), sys)
	case SolverPbsat:
		vec, out = c.runPbsat(context.Background(), sys)
	default:
		vec, out = c.runPortfolio(sys)
	}
	switch out {
	case outSat:
		return vec, true
	case outUnsat:
		if !c.NoCache {
			unsatCacheInsert(key)
		}
		return WeightVector{}, false
	default:
		checkCounters.bailouts.Add(1)
		return WeightVector{}, false
	}
}

// runILP decides with branch-and-bound alone. An Optimal verdict that hit
// the node budget is an unproven incumbent and is treated as a §V-E
// bailout, not a threshold realization — the two other engines could
// find a better objective, and accepting unproven incumbents would break
// cross-mode identity.
func (c *Checker) runILP(ctx context.Context, sys *checkSystem) (WeightVector, checkOutcome) {
	solver := c.ILP
	res := solver.SolveContext(ctx, sys.problem())
	return c.classifyILP(sys, res)
}

func (c *Checker) classifyILP(sys *checkSystem, res ilp.Result) (WeightVector, checkOutcome) {
	switch {
	case res.Status == ilp.Optimal && !res.LimitHit:
		return sys.vector(res.X), outSat
	case res.Status == ilp.Infeasible:
		return WeightVector{}, outUnsat
	default:
		return WeightVector{}, outIndet
	}
}

// runPbsat decides with the pseudo-Boolean engine, then extracts the
// canonical vector with a cutoff-bounded ILP run so the returned weights
// are bit-identical to what SolverILP returns on the same instance.
func (c *Checker) runPbsat(ctx context.Context, sys *checkSystem) (WeightVector, checkOutcome) {
	st, kstar := c.pbDecide(ctx, sys)
	switch st {
	case pbUnsat:
		return WeightVector{}, outUnsat
	case pbSat:
		return c.extract(sys, kstar)
	default:
		return WeightVector{}, outIndet
	}
}

// extract turns a proven optimal objective k* into the canonical weight
// vector: a branch-and-bound run with cutoff k*+0.5 visits the same
// depth-first prefix as the unbounded run (see ilp.SolveContextCutoff)
// and therefore lands on the identical solution, while the cutoff prunes
// the post-optimal portion of the tree. If the bounded run cannot prove
// the solution inside the budget — or disagrees with k*, which a correct
// pbsat engine never causes — it falls back to the plain ILP path.
func (c *Checker) extract(sys *checkSystem, kstar int64) (WeightVector, checkOutcome) {
	solver := c.ILP
	res := solver.SolveContextCutoff(context.Background(), sys.problem(), float64(kstar)+0.5)
	if res.Status == ilp.Optimal && !res.LimitHit && int64(objOf(res.X)) == kstar {
		return sys.vector(res.X), outSat
	}
	return c.runILP(context.Background(), sys)
}

func objOf(x []int) int {
	sum := 0
	for _, v := range x {
		sum += v
	}
	return sum
}

// runPortfolio is the race: a cheap inline ILP probe first, then both
// engines concurrently under a shared context. The first proven answer
// wins and cancels the loser. Whichever engine wins, the returned vector
// is the one SolverILP would return, so race timing never reaches the
// result bytes.
func (c *Checker) runPortfolio(sys *checkSystem) (WeightVector, checkOutcome) {
	probe := c.ILP
	if probe.MaxNodes == 0 || probe.MaxNodes > probeNodes {
		probe.MaxNodes = probeNodes
	}
	if res := probe.Solve(sys.problem()); res.Proven() {
		return c.classifyILP(sys, res)
	}

	checkCounters.races.Add(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type ilpMsg struct{ res ilp.Result }
	type pbMsg struct {
		st pbVerdict
		k  int64
	}
	ilpCh := make(chan ilpMsg, 1)
	pbCh := make(chan pbMsg, 1)
	go func() {
		solver := c.ILP
		ilpCh <- ilpMsg{solver.SolveContext(ctx, sys.problem())}
	}()
	go func() {
		st, k := c.pbDecide(ctx, sys)
		pbCh <- pbMsg{st, k}
	}()

	var (
		ilpRes   *ilp.Result
		pbRes    *pbMsg
		received int
	)
	for received < 2 {
		select {
		case m := <-ilpCh:
			received++
			ilpRes = &m.res
			if m.res.Proven() {
				cancel()
				checkCounters.ilpWins.Add(1)
				return c.classifyILP(sys, m.res)
			}
		case m := <-pbCh:
			received++
			pbRes = &m
			if m.st != pbUnknown {
				cancel()
				checkCounters.pbsatWins.Add(1)
				if m.st == pbUnsat {
					return WeightVector{}, outUnsat
				}
				return c.extract(sys, m.k)
			}
		}
	}
	// Neither engine proved anything within its budget: §V-E bailout.
	// (ilpRes/pbRes are kept for symmetry and future diagnostics.)
	_, _ = ilpRes, pbRes
	return WeightVector{}, outIndet
}
