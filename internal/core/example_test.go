package core_test

import (
	"fmt"

	"tels/internal/core"
	"tels/internal/ilp"
	"tels/internal/logic"
	"tels/internal/network"
	"tels/internal/truth"
)

// ExampleSynthesize synthesizes a majority-of-three function: a single
// threshold gate replaces the whole sum-of-products network.
func ExampleSynthesize() {
	b := network.NewBuilder("majority")
	x, y, z := b.Input("x"), b.Input("y"), b.Input("z")
	maj := logic.MustCover("11-", "1-1", "-11") // xy + xz + yz
	b.Output(b.Node("f", maj, x, y, z))

	tn, _, err := core.Synthesize(b.Net, core.DefaultOptions())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("gates: %d\n", tn.GateCount())
	fmt.Println(tn.Gates[0])
	// Output:
	// gates: 1
	// f = [T=2] +1*x +1*y +1*z
}

// ExampleCheckThreshold reproduces the paper's §V-B worked example:
// f = x1·x̄2 + x1·x̄3 has the weight–threshold vector ⟨2,−1,−1;1⟩.
func ExampleCheckThreshold() {
	f := truth.Var(3, 0).And(truth.Var(3, 1).Not()).
		Or(truth.Var(3, 0).And(truth.Var(3, 2).Not()))
	var solver ilp.Solver
	v, ok := core.CheckThreshold(f, 0, 1, &solver)
	fmt.Println(ok, v.Weights, v.T)
	// Output: true [2 -1 -1] 1
}

// ExampleTheorem2Vector shows the constructive Theorem-2 witness: given a
// vector for f, the vector for f ∨ x adds one input of weight T + δon.
func ExampleTheorem2Vector() {
	v := core.WeightVector{Weights: []int{2, 1, 1}, T: 3}
	h := core.Theorem2Vector(v, 0)
	fmt.Println(h.Weights, h.T)
	// Output: [2 1 1 3] 3
}

// ExampleOneToOne maps a small network gate-for-gate.
func ExampleOneToOne() {
	b := network.NewBuilder("pair")
	x, y := b.Input("x"), b.Input("y")
	b.Output(b.Nand("f", x, y))

	tn, err := core.OneToOne(b.Net, core.DefaultOptions())
	if err != nil {
		fmt.Println(err)
		return
	}
	s := tn.Stats()
	fmt.Printf("gates: %d, area: %d\n", s.Gates, s.Area)
	// Output: gates: 3, area: 5
}
