package core

import (
	"strings"
	"testing"
)

func TestSynthesizeBestNeverWorse(t *testing.T) {
	nw := fig2a()
	for _, psi := range []int{2, 3, 4, 5} {
		o := Options{Fanin: psi, DeltaOn: 0, DeltaOff: 1}
		best, telsWon, err := SynthesizeBest(nw, o)
		if err != nil {
			t.Fatalf("ψ=%d: %v", psi, err)
		}
		oneToOne, err := OneToOne(nw, o)
		if err != nil {
			t.Fatal(err)
		}
		if best.GateCount() > oneToOne.GateCount() {
			t.Fatalf("ψ=%d: best %d gates worse than one-to-one %d",
				psi, best.GateCount(), oneToOne.GateCount())
		}
		checkEquivalent(t, nw, best)
		_ = telsWon
	}
}

func TestSynthesizeBestReportsWinner(t *testing.T) {
	nw := fig2a()
	best, telsWon, err := SynthesizeBest(nw, Options{Fanin: 4, DeltaOn: 0, DeltaOff: 1})
	if err != nil {
		t.Fatal(err)
	}
	// On the motivational example TELS wins decisively (3 vs 7 gates).
	if !telsWon {
		t.Fatalf("TELS should win on fig2a (best has %d gates)", best.GateCount())
	}
}

func TestWriteDot(t *testing.T) {
	tn := sampleTN(t)
	var sb strings.Builder
	if err := WriteDot(&sb, tn); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph \"demo\"",
		"\"a\" [shape=circle]",
		"T=1",
		"\"g1\" -> \"f\"",
		"doubleoctagon", // the output gate f
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}

func TestMergeDuplicates(t *testing.T) {
	tn := NewNetwork("md")
	tn.AddInput("a")
	tn.AddInput("b")
	gates := []*Gate{
		{Name: "g1", Inputs: []string{"a", "b"}, Weights: []int{1, 1}, T: 2},
		{Name: "g2", Inputs: []string{"a", "b"}, Weights: []int{1, 1}, T: 2}, // dup of g1
		{Name: "h1", Inputs: []string{"g1"}, Weights: []int{-1}, T: 0},
		{Name: "h2", Inputs: []string{"g2"}, Weights: []int{-1}, T: 0}, // dup after merge
		{Name: "f", Inputs: []string{"h1", "h2"}, Weights: []int{1, 1}, T: 1},
	}
	for _, g := range gates {
		if err := tn.AddGate(g); err != nil {
			t.Fatal(err)
		}
	}
	tn.MarkOutput("f")
	before := map[int]bool{}
	for m := 0; m < 4; m++ {
		out, err := tn.EvalOutputs(map[string]bool{"a": m&1 != 0, "b": m&2 != 0})
		if err != nil {
			t.Fatal(err)
		}
		before[m] = out[0]
	}
	if got := tn.MergeDuplicates(); got != 2 {
		t.Fatalf("merged %d gates, want 2 (cascading)", got)
	}
	if err := tn.Validate(); err != nil {
		t.Fatal(err)
	}
	if tn.GateCount() != 3 {
		t.Fatalf("gates = %d, want 3", tn.GateCount())
	}
	for m := 0; m < 4; m++ {
		out, err := tn.EvalOutputs(map[string]bool{"a": m&1 != 0, "b": m&2 != 0})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != before[m] {
			t.Fatalf("function changed at %d", m)
		}
	}
}

func TestMergeKeepsOutputs(t *testing.T) {
	tn := NewNetwork("mo")
	tn.AddInput("a")
	for _, name := range []string{"y1", "y2"} {
		if err := tn.AddGate(&Gate{Name: name, Inputs: []string{"a"}, Weights: []int{1}, T: 1}); err != nil {
			t.Fatal(err)
		}
		tn.MarkOutput(name)
	}
	if got := tn.MergeDuplicates(); got != 0 {
		t.Fatalf("merged %d output gates; both must survive", got)
	}
	if tn.Gate("y1") == nil || tn.Gate("y2") == nil {
		t.Fatal("an output gate was removed")
	}
}
