package core

import (
	"tels/internal/truth"
)

// SubstituteLiteral implements the transformation of Theorem 1: in
// f(x₁,…,x_l), literal x_i is replaced by x̄_j (i ≠ j), producing a
// function g that no longer depends on x_i. Theorem 1 states that if g is
// not a threshold function then f is not either, which the synthesizer's
// exact unateness/ILP pipeline exploits implicitly and the tests verify
// explicitly. The returned table still has l variables; variable i is
// redundant.
func SubstituteLiteral(f *truth.Table, i, j int) *truth.Table {
	if i == j {
		panic("core: SubstituteLiteral requires i != j")
	}
	n := f.N()
	g := truth.New(n)
	for m := 0; m < g.Size(); m++ {
		src := m &^ (1 << uint(i))
		if m&(1<<uint(j)) == 0 { // x̄j = 1 -> xi = 1
			src |= 1 << uint(i)
		}
		g.Set(m, f.Get(src))
	}
	return g
}

// Theorem2Vector implements the constructive part of Theorem 2: given a
// weight–threshold vector for a positive-unate threshold function f, it
// returns the vector for h = f ∨ x_{l+1}, where the new input receives
// weight T + δon. The synthesizer itself re-derives minimal weights with
// the ILP; this constructive form is the theorem's witness and is used as
// a fallback and in tests.
func Theorem2Vector(v WeightVector, deltaOn int) WeightVector {
	w := append(append([]int(nil), v.Weights...), v.T+deltaOn)
	return WeightVector{Weights: w, T: v.T}
}
