// Package core implements TELS, the threshold logic synthesizer of
// Zhang, Gupta, Zhong and Jha (DATE 2004): multi-level, multi-output
// synthesis of linear-threshold-gate networks from Boolean networks, with
// fanin restriction and defect tolerances, plus the one-to-one mapping
// baseline the paper compares against.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Gate is a linear threshold gate (LTG): it outputs 1 exactly when the
// weighted sum of its inputs reaches the threshold, Σ wᵢxᵢ ≥ T.
// The defect tolerances used during synthesis guarantee the stronger
// separation Σ ≥ T+δon on the ON-set and Σ ≤ T−δoff on the OFF-set, so
// the gate still evaluates correctly when weights drift.
type Gate struct {
	Name    string
	Inputs  []string
	Weights []int
	T       int
}

// Eval computes the gate output for the given input values.
func (g *Gate) Eval(in []bool) bool {
	sum := 0
	for i, v := range in {
		if v {
			sum += g.Weights[i]
		}
	}
	return sum >= g.T
}

// EvalPerturbed computes the gate output with per-input weight
// disturbances added (the w' = w + v·U(−0.5,0.5) model of §VI-C).
func (g *Gate) EvalPerturbed(in []bool, noise []float64) bool {
	sum := 0.0
	for i, v := range in {
		if v {
			sum += float64(g.Weights[i]) + noise[i]
		}
	}
	return sum >= float64(g.T)
}

// Area returns the gate's RTD area per the paper's Eq. 14 with unit area
// A_u = 1: the sum of absolute weights plus the absolute threshold.
func (g *Gate) Area() int {
	a := abs(g.T)
	for _, w := range g.Weights {
		a += abs(w)
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// String renders the gate in the .tln textual form.
func (g *Gate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s = [T=%d]", g.Name, g.T)
	for i, in := range g.Inputs {
		fmt.Fprintf(&b, " %+d*%s", g.Weights[i], in)
	}
	return b.String()
}

// Network is a combinational threshold network: a DAG of LTGs over named
// primary inputs.
type Network struct {
	Name    string
	Inputs  []string
	Outputs []string
	Gates   []*Gate

	byName map[string]*Gate
}

// NewNetwork returns an empty threshold network.
func NewNetwork(name string) *Network {
	return &Network{Name: name, byName: make(map[string]*Gate)}
}

// AddInput declares a primary input name.
func (tn *Network) AddInput(name string) {
	tn.Inputs = append(tn.Inputs, name)
}

// AddGate appends a gate. Names must be unique and distinct from inputs.
func (tn *Network) AddGate(g *Gate) error {
	if len(g.Inputs) != len(g.Weights) {
		return fmt.Errorf("core: gate %s has %d inputs but %d weights",
			g.Name, len(g.Inputs), len(g.Weights))
	}
	if _, dup := tn.byName[g.Name]; dup {
		return fmt.Errorf("core: duplicate gate name %s", g.Name)
	}
	for _, in := range tn.Inputs {
		if in == g.Name {
			return fmt.Errorf("core: gate %s shadows a primary input", g.Name)
		}
	}
	tn.Gates = append(tn.Gates, g)
	tn.byName[g.Name] = g
	return nil
}

// Gate returns the gate driving the named signal, or nil.
func (tn *Network) Gate(name string) *Gate { return tn.byName[name] }

// MarkOutput declares a signal (gate or input) a primary output.
func (tn *Network) MarkOutput(name string) {
	for _, o := range tn.Outputs {
		if o == name {
			return
		}
	}
	tn.Outputs = append(tn.Outputs, name)
}

// GateCount returns the number of threshold gates.
func (tn *Network) GateCount() int { return len(tn.Gates) }

// Area returns the total network area per Eq. 14.
func (tn *Network) Area() int {
	a := 0
	for _, g := range tn.Gates {
		a += g.Area()
	}
	return a
}

// MaxFanin returns the largest gate fanin.
func (tn *Network) MaxFanin() int {
	m := 0
	for _, g := range tn.Gates {
		if len(g.Inputs) > m {
			m = len(g.Inputs)
		}
	}
	return m
}

// TopoGates returns the gates in topological order (drivers first), or an
// error when a gate input is neither a primary input nor a gate output, or
// the network is cyclic.
func (tn *Network) TopoGates() ([]*Gate, error) {
	inputSet := make(map[string]bool, len(tn.Inputs))
	for _, in := range tn.Inputs {
		inputSet[in] = true
	}
	const (
		unseen = 0
		active = 1
		done   = 2
	)
	state := make(map[string]int, len(tn.Gates))
	out := make([]*Gate, 0, len(tn.Gates))
	var visit func(name string) error
	visit = func(name string) error {
		if inputSet[name] {
			return nil
		}
		g := tn.byName[name]
		if g == nil {
			return fmt.Errorf("core: signal %s is not an input or gate", name)
		}
		switch state[name] {
		case done:
			return nil
		case active:
			return fmt.Errorf("core: cycle through gate %s", name)
		}
		state[name] = active
		for _, in := range g.Inputs {
			if err := visit(in); err != nil {
				return err
			}
		}
		state[name] = done
		out = append(out, g)
		return nil
	}
	for _, g := range tn.Gates {
		if err := visit(g.Name); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Validate checks structural sanity including that every output is driven.
func (tn *Network) Validate() error {
	if _, err := tn.TopoGates(); err != nil {
		return err
	}
	inputSet := make(map[string]bool, len(tn.Inputs))
	for _, in := range tn.Inputs {
		inputSet[in] = true
	}
	for _, o := range tn.Outputs {
		if !inputSet[o] && tn.byName[o] == nil {
			return fmt.Errorf("core: output %s is not driven", o)
		}
	}
	return nil
}

// Eval computes every signal value under the given primary-input
// assignment and returns the map of all signal values.
func (tn *Network) Eval(inputs map[string]bool) (map[string]bool, error) {
	order, err := tn.TopoGates()
	if err != nil {
		return nil, err
	}
	values := make(map[string]bool, len(order)+len(tn.Inputs))
	for _, in := range tn.Inputs {
		v, ok := inputs[in]
		if !ok {
			return nil, fmt.Errorf("core: no value for input %s", in)
		}
		values[in] = v
	}
	buf := make([]bool, 0, 16)
	for _, g := range order {
		buf = buf[:0]
		for _, in := range g.Inputs {
			buf = append(buf, values[in])
		}
		values[g.Name] = g.Eval(buf)
	}
	return values, nil
}

// EvalOutputs evaluates the network and returns outputs in output order.
func (tn *Network) EvalOutputs(inputs map[string]bool) ([]bool, error) {
	values, err := tn.Eval(inputs)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(tn.Outputs))
	for i, o := range tn.Outputs {
		out[i] = values[o]
	}
	return out, nil
}

// Levels returns the level of each signal (inputs at 0) and the depth.
func (tn *Network) Levels() (map[string]int, int) {
	order, err := tn.TopoGates()
	if err != nil {
		panic(err)
	}
	levels := make(map[string]int, len(order))
	for _, in := range tn.Inputs {
		levels[in] = 0
	}
	depth := 0
	for _, g := range order {
		l := 0
		for _, in := range g.Inputs {
			if levels[in]+1 > l {
				l = levels[in] + 1
			}
		}
		levels[g.Name] = l
		if l > depth {
			depth = l
		}
	}
	return levels, depth
}

// Stats summarizes the network for reporting as in Table I.
type Stats struct {
	Gates  int
	Levels int
	Area   int
}

// Stats computes summary metrics.
func (tn *Network) Stats() Stats {
	_, depth := tn.Levels()
	return Stats{Gates: tn.GateCount(), Levels: depth, Area: tn.Area()}
}

// String renders the network in .tln form.
func (tn *Network) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".tnet %s\n", tn.Name)
	fmt.Fprintf(&b, ".inputs %s\n", strings.Join(tn.Inputs, " "))
	fmt.Fprintf(&b, ".outputs %s\n", strings.Join(tn.Outputs, " "))
	order, err := tn.TopoGates()
	if err != nil {
		order = tn.Gates
	}
	for _, g := range order {
		fmt.Fprintf(&b, ".gate %s\n", g)
	}
	b.WriteString(".end\n")
	return b.String()
}

// SortedGateNames returns the gate names sorted, for deterministic tests.
func (tn *Network) SortedGateNames() []string {
	names := make([]string, 0, len(tn.Gates))
	for _, g := range tn.Gates {
		names = append(names, g.Name)
	}
	sort.Strings(names)
	return names
}
