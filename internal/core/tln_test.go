package core

import (
	"strings"
	"testing"
)

func sampleTN(t *testing.T) *Network {
	t.Helper()
	tn := NewNetwork("demo")
	tn.AddInput("a")
	tn.AddInput("b")
	tn.AddInput("c")
	gates := []*Gate{
		{Name: "g1", Inputs: []string{"a", "b", "c"}, Weights: []int{2, -1, -1}, T: 1},
		{Name: "f", Inputs: []string{"g1", "c"}, Weights: []int{1, 1}, T: 1},
	}
	for _, g := range gates {
		if err := tn.AddGate(g); err != nil {
			t.Fatal(err)
		}
	}
	tn.MarkOutput("f")
	return tn
}

func TestTLNRoundTrip(t *testing.T) {
	tn := sampleTN(t)
	text := tn.String()
	back, err := ParseTLNString(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if back.Name != "demo" || len(back.Inputs) != 3 || len(back.Gates) != 2 {
		t.Fatalf("round trip shape wrong: %+v", back)
	}
	for m := 0; m < 8; m++ {
		in := map[string]bool{"a": m&1 != 0, "b": m&2 != 0, "c": m&4 != 0}
		x, _ := tn.EvalOutputs(in)
		y, _ := back.EvalOutputs(in)
		if x[0] != y[0] {
			t.Fatalf("round trip differs at %d", m)
		}
	}
}

func TestTLNNegativeWeightsFormat(t *testing.T) {
	tn := sampleTN(t)
	text := tn.String()
	if !strings.Contains(text, "-1*b") {
		t.Fatalf("negative weight not rendered:\n%s", text)
	}
	if !strings.Contains(text, "[T=1]") {
		t.Fatalf("threshold not rendered:\n%s", text)
	}
}

func TestTLNParseErrors(t *testing.T) {
	cases := []string{
		".tnet x\n.inputs a\n.outputs f\n.gate f = T=1 +1*a\n.end",   // bad threshold
		".tnet x\n.inputs a\n.outputs f\n.gate f = [T=z] +1*a\n.end", // bad number
		".tnet x\n.inputs a\n.outputs f\n.gate f [T=1] +1*a\n.end",   // missing =
		".tnet x\n.inputs a\n.outputs f\n.gate f = [T=1] a\n.end",    // missing weight
		".tnet x\n.inputs a\n.outputs f\n.gate f = [T=1] +1*\n.end",  // missing name
		".tnet x\n.inputs a\n.outputs f\n.wat\n.end",                 // unknown directive
		".tnet x\n.inputs a\n.outputs f\n.end",                       // undriven output
	}
	for i, c := range cases {
		if _, err := ParseTLNString(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestTLNComments(t *testing.T) {
	text := `
# comment
.tnet c
.inputs a  # trailing
.outputs f
.gate f = [T=0] -1*a
.end
`
	tn, err := ParseTLNString(text)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tn.EvalOutputs(map[string]bool{"a": false})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0] {
		t.Fatal("inverter gate should output 1 on input 0")
	}
}

func TestWriteTLNAndAccessors(t *testing.T) {
	tn := sampleTN(t)
	var sb strings.Builder
	if err := WriteTLN(&sb, tn); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), ".tnet demo") {
		t.Fatalf("WriteTLN output wrong:\n%s", sb.String())
	}
	names := tn.SortedGateNames()
	if len(names) != 2 || names[0] != "f" || names[1] != "g1" {
		t.Fatalf("SortedGateNames = %v", names)
	}
}

func TestGateEvalPerturbed(t *testing.T) {
	g := &Gate{Name: "g", Inputs: []string{"a", "b"}, Weights: []int{1, 1}, T: 2}
	in := []bool{true, true}
	if !g.EvalPerturbed(in, []float64{0, 0}) {
		t.Fatal("AND(1,1) with zero noise should fire")
	}
	// Noise pushing the sum below threshold flips the output.
	if g.EvalPerturbed(in, []float64{-0.6, -0.6}) {
		t.Fatal("heavily disturbed AND should not fire")
	}
}

func TestSplitStrategyString(t *testing.T) {
	for s, want := range map[SplitStrategy]string{
		SplitFrequency:    "frequency",
		SplitBalanced:     "balanced",
		SplitRandom:       "random",
		SplitStrategy(99): "unknown",
	} {
		if s.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(s), s.String(), want)
		}
	}
}
