package core

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"tels/internal/ilp"
	"tels/internal/logic"
	"tels/internal/simplex"
	"tels/internal/truth"
)

// WeightVector is the weight–threshold vector ⟨w₁,…,w_l;T⟩ of a threshold
// function.
type WeightVector struct {
	Weights []int
	T       int
}

// CheckThreshold decides whether the function tt — which must be unate and
// depend on all of its variables — is a threshold function under the given
// defect tolerances, and if so returns an integer weight–threshold vector
// minimizing Σ|wᵢ| + T′ where T′ is the threshold of the positive-unate
// form. This is the ILP formulation of the paper's Fig. 6:
//
// The function is first put in positive-unate form by substituting
// negative-phase variables (§IV). With all weights nonnegative, an
// assignment of ⟨w;T⟩ satisfies all 2^l minterm constraints iff it
// satisfies one constraint per cube of a cover of f (the cube's minimal
// minterm) and one per cube of a cover of f̄ (the cube's maximal minterm):
//
//	ON:  Σ_{i ∈ lits(C)} wᵢ ≥ T + δon      for every cube C of f
//	OFF: Σ_{i ∈ dc(C)}  wᵢ ≤ T − δoff      for every cube C of f̄
//
// Soundness: any minterm of an ON cube has a superset of its literals at 1,
// and weights are nonnegative, so its sum dominates the cube constraint;
// symmetrically for OFF cubes. Completeness: the cube constraints are
// themselves minterm constraints. Hence this system is exact for any
// covers of f and f̄, prime or not (redundant cubes only add redundant
// rows). The strict "<" of Eq. 1 becomes "≤ T − δoff" over the integers,
// matching the paper's worked example ⟨2,1,1;3⟩ which satisfies
// w₂+w₃ = 2 = T − δoff with equality.
//
// The limit solver mirrors §V-E: when the branch-and-bound budget is
// exhausted the function is declared non-threshold and the caller splits.
func CheckThreshold(tt *truth.Table, deltaOn, deltaOff int, solver *ilp.Solver) (WeightVector, bool) {
	return CheckThresholdBounded(tt, deltaOn, deltaOff, 0, solver)
}

// CheckThresholdBounded is CheckThreshold with an additional bound on the
// magnitude of every weight (and the positive-form threshold): RTD peak
// currents scale with the weight, so physical designs cap the ratio
// between the largest and unit weight. maxWeight ≤ 0 means unbounded.
// Functions needing larger weights are declared non-threshold, which
// makes the synthesizer split them into smaller gates.
//
// This entry point always decides with the ILP engine alone; the
// portfolio (ILP raced against the pbsat pseudo-Boolean engine) is
// reached through Checker.
func CheckThresholdBounded(tt *truth.Table, deltaOn, deltaOff, maxWeight int, solver *ilp.Solver) (WeightVector, bool) {
	c := Checker{Mode: SolverILP, ILP: *solver}
	return c.Check(tt, deltaOn, deltaOff, maxWeight)
}

// checkSystem is the ON/OFF cube constraint system of one threshold check
// in positive-unate form, shared by the ILP and pbsat encodings so both
// engines decide exactly the same instance.
type checkSystem struct {
	n       int
	flipped []bool       // variables substituted to reach positive-unate form
	pos     *truth.Table // positive-unate form (canonical across phases)
	don     int
	doff    int
	maxW    int

	// The ON/OFF covers are by far the most expensive part of a check on
	// wide functions (exact prime generation over 2ⁿ minterms dwarfs the
	// solve itself), so they are derived lazily: the UNSAT-certificate
	// cache is keyed on pos alone, and a hit never pays for them. Both
	// portfolio goroutines may reach for the covers concurrently, hence
	// the Once.
	coverOnce sync.Once
	on        []logic.Cube
	off       []logic.Cube
}

// covers derives (once) and returns the minimal ON and OFF covers.
func (sys *checkSystem) covers() ([]logic.Cube, []logic.Cube) {
	sys.coverOnce.Do(func() {
		sys.on = sys.pos.MinimalSOP().Cubes
		sys.off = sys.pos.Not().MinimalSOP().Cubes
	})
	return sys.on, sys.off
}

// buildCheckSystem normalizes tt to positive-unate form and derives the
// ON/OFF covers. ok is false for constants, binate functions, and
// functions with dead variables — the same early-outs the checker always
// had.
func buildCheckSystem(tt *truth.Table, deltaOn, deltaOff, maxWeight int) (*checkSystem, bool) {
	n := tt.N()
	if isConst, _ := tt.IsConst(); isConst {
		return nil, false // constants are handled by the caller
	}
	// Positive-unate transform: flip negative-unate variables.
	flipped := make([]bool, n)
	g := tt
	for i := 0; i < n; i++ {
		switch g.VarUnateness(i) {
		case truth.NegUnate:
			g = g.SubstituteNeg(i)
			flipped[i] = true
		case truth.Binate:
			return nil, false // threshold functions are unate
		case truth.Independent:
			return nil, false // caller must reduce support first
		}
	}
	return &checkSystem{
		n:       n,
		flipped: flipped,
		pos:     g,
		don:     deltaOn,
		doff:    deltaOff,
		maxW:    maxWeight,
	}, true
}

// problem builds the simplex/ILP formulation. Row order matches the
// original CheckThresholdBounded exactly, so branch-and-bound traversal —
// and therefore the returned vector — is bit-identical to the historical
// behaviour.
func (sys *checkSystem) problem() *simplex.Problem {
	n := sys.n
	on, off := sys.covers()
	// Variables 0..n-1 are the weights, n is the threshold.
	p := &simplex.Problem{C: make([]float64, n+1)}
	for i := range p.C {
		p.C[i] = 1
	}
	for _, c := range on {
		// -Σ_{lits} w + T ≤ -δon
		row := make([]float64, n+1)
		for i, ph := range c {
			if ph == logic.Pos {
				row[i] = -1
			}
		}
		row[n] = 1
		p.AddConstraint(row, -float64(sys.don))
	}
	for _, c := range off {
		// Σ_{dc} w - T ≤ -δoff
		row := make([]float64, n+1)
		for i, ph := range c {
			if ph == logic.DC {
				row[i] = 1
			}
		}
		row[n] = -1
		p.AddConstraint(row, -float64(sys.doff))
	}
	if sys.maxW > 0 {
		// Bound the input weights only: the threshold is realized by the
		// clocked driver RTD, whose sizing is independent of the input
		// branches (a 2-input AND already needs T = δon+δoff+1).
		for i := 0; i < n; i++ {
			row := make([]float64, n+1)
			row[i] = 1
			p.AddConstraint(row, float64(sys.maxW))
		}
	}
	return p
}

// vector maps a positive-form solution x (weights 0..n-1, threshold at n)
// back to the original phases (§IV): a flipped variable's weight is
// negated and the threshold drops by the original (positive) weight.
func (sys *checkSystem) vector(x []int) WeightVector {
	weights := make([]int, sys.n)
	T := x[sys.n]
	for i := 0; i < sys.n; i++ {
		w := x[i]
		if sys.flipped[i] {
			weights[i] = -w
			T -= w
		} else {
			weights[i] = w
		}
	}
	return WeightVector{Weights: weights, T: T}
}

// digest is a canonical key of the check instance: the positive-unate
// table bits (identical across input phase flips) plus every parameter
// that influences the verdict. It keys the proven-UNSAT cache.
func (sys *checkSystem) digest() [32]byte {
	h := sha256.New()
	var hdr [4 * 8]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(sys.n))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(int64(sys.don)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(int64(sys.doff)))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(int64(sys.maxW)))
	h.Write(hdr[:])
	var w [8]byte
	for _, word := range sys.pos.Words() {
		binary.LittleEndian.PutUint64(w[:], word)
		h.Write(w[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// VerifyVector checks that the weight vector realizes tt exactly under the
// plain Σ ≥ T rule and respects the δon/δoff separation margins. Used by
// tests and the simulator's self-checks.
func VerifyVector(tt *truth.Table, v WeightVector, deltaOn, deltaOff int) bool {
	n := tt.N()
	if len(v.Weights) != n {
		return false
	}
	for m := 0; m < tt.Size(); m++ {
		sum := 0
		for i := 0; i < n; i++ {
			if m&(1<<uint(i)) != 0 {
				sum += v.Weights[i]
			}
		}
		if tt.Get(m) {
			if sum < v.T+deltaOn {
				return false
			}
		} else {
			if sum > v.T-deltaOff {
				return false
			}
		}
	}
	return true
}

// IsThresholdLP is an exact threshold-function oracle that does not use
// the cube formulation: it checks real-valued linear separability of all
// 2^l minterms directly (a function is threshold iff its ON and OFF sets
// are linearly separable; rational separability scales to integers).
// Weights may be negative here, so the LP uses a shifted encoding.
// Intended for tests and small functions.
func IsThresholdLP(tt *truth.Table) bool {
	n := tt.N()
	// Variables: w⁺_0..w⁺_{n-1}, w⁻_0..w⁻_{n-1}, T⁺, T⁻ with w = w⁺ − w⁻.
	nv := 2*n + 2
	p := &simplex.Problem{C: make([]float64, nv)}
	for i := range p.C {
		p.C[i] = 1
	}
	for m := 0; m < tt.Size(); m++ {
		row := make([]float64, nv)
		for i := 0; i < n; i++ {
			if m&(1<<uint(i)) != 0 {
				row[i] = 1
				row[n+i] = -1
			}
		}
		row[2*n] = -1
		row[2*n+1] = 1
		if tt.Get(m) {
			// Σw − T ≥ 0  →  −(Σw − T) ≤ 0
			neg := make([]float64, nv)
			for j := range row {
				neg[j] = -row[j]
			}
			p.AddConstraint(neg, 0)
		} else {
			// Σw − T ≤ −1 (strictly below threshold, scaled)
			p.AddConstraint(row, -1)
		}
	}
	res := simplex.Solve(p)
	return res.Status == simplex.Optimal
}
