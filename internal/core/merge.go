package core

import (
	"fmt"
	"strings"
)

// MergeDuplicates structurally hashes the network's gates and merges
// those with identical inputs, weights and threshold, rewiring fanouts to
// the surviving gate. Distinct synthesis cones can emit identical split
// gates; merging them never changes behaviour. Output names are
// preserved: when a merged gate drives a primary output, the output-named
// gate survives. Returns the number of gates removed.
func (tn *Network) MergeDuplicates() int {
	outputs := make(map[string]bool, len(tn.Outputs))
	for _, o := range tn.Outputs {
		outputs[o] = true
	}
	removed := 0
	for {
		order, err := tn.TopoGates()
		if err != nil {
			return removed
		}
		replace := make(map[string]string)
		seen := make(map[string]*Gate)
		for _, g := range order {
			key := gateKey(g)
			prev, ok := seen[key]
			if !ok {
				seen[key] = g
				continue
			}
			// Prefer keeping a gate whose name is a primary output; if
			// both are outputs they must both survive.
			victim, keeper := g, prev
			if outputs[g.Name] && !outputs[prev.Name] {
				victim, keeper = prev, g
				seen[key] = g
			}
			if outputs[victim.Name] {
				continue
			}
			replace[victim.Name] = keeper.Name
		}
		if len(replace) == 0 {
			return removed
		}
		kept := tn.Gates[:0]
		for _, g := range tn.Gates {
			if _, dead := replace[g.Name]; dead {
				delete(tn.byName, g.Name)
				removed++
				continue
			}
			for i, in := range g.Inputs {
				if to, ok := replace[in]; ok {
					g.Inputs[i] = to
				}
			}
			kept = append(kept, g)
		}
		tn.Gates = kept
	}
}

// gateKey is a structural hash of a gate's function (inputs are order-
// sensitive, which is fine: synthesis emits deterministic orders).
func gateKey(g *Gate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "T%d", g.T)
	for i, in := range g.Inputs {
		fmt.Fprintf(&b, "|%d*%s", g.Weights[i], in)
	}
	return b.String()
}
