package core

import (
	"fmt"

	"tels/internal/logic"
	"tels/internal/netcore"
	"tels/internal/truth"
)

// pin is one input of a gate under construction: either an existing
// support signal used as a literal (possibly negated) or a fresh part
// signal whose function will be synthesized recursively.
type pin struct {
	name string
	// net is the support signal for literal pins (enqueued when used);
	// InvalidNet for fresh part signals. The zero Net is a real net, so
	// every pin must set this field explicitly.
	net  netcore.Net
	neg  bool    // literal phase for support-signal pins
	part *partFn // non-nil for fresh part signals
}

// partFn is a pending sub-function to synthesize.
type partFn struct {
	name    string
	tt      *truth.Table
	support []netcore.Net
}

// makePartPin converts a cube subset of a cover over support into a pin:
// single-literal parts are inlined as direct literals, everything else
// becomes a fresh part signal.
func (s *synthesizer) makePartPin(base string, cover logic.Cover, support []netcore.Net) pin {
	if len(cover.Cubes) == 1 && cover.Cubes[0].Literals() == 1 {
		for i, ph := range cover.Cubes[0] {
			if ph != logic.DC {
				return pin{name: s.src.NetName(support[i]), net: support[i], neg: ph == logic.Neg}
			}
		}
	}
	tt, sup := reduceSupport(truth.FromCover(cover), support)
	name := s.freshName(base)
	return pin{name: name, net: netcore.InvalidNet, part: &partFn{name: name, tt: tt, support: sup}}
}

// emitPinGate builds the gate function over the pins (OR or AND of the pin
// literals), solves its ILP — both shapes are always threshold — emits the
// gate, and recursively synthesizes the part pins.
func (s *synthesizer) emitPinGate(name string, pins []pin, isAnd bool) error {
	if len(pins) > s.o.Fanin {
		return fmt.Errorf("core: internal error: %d pins exceed fanin restriction %d", len(pins), s.o.Fanin)
	}
	cover := logic.NewCover(len(pins))
	if isAnd {
		c := logic.NewCube(len(pins))
		for i, p := range pins {
			c[i] = logic.Pos
			if p.neg {
				c[i] = logic.Neg
			}
		}
		cover.AddCube(c)
	} else {
		for i, p := range pins {
			c := logic.NewCube(len(pins))
			c[i] = logic.Pos
			if p.neg {
				c[i] = logic.Neg
			}
			cover.AddCube(c)
		}
	}
	tt := truth.FromCover(cover)
	s.stats.ILPCalls++
	v, ok := s.chk.Check(tt, s.don, s.o.DeltaOff, s.o.MaxWeight)
	if !ok {
		names := make([]string, len(pins))
		for i, p := range pins {
			names[i] = p.name
		}
		return fmt.Errorf("core: internal error: simple %s gate not threshold (cover %v, pins %v)",
			gateKind(isAnd), cover, names)
	}
	s.stats.ILPFeasible++
	inputs := make([]string, len(pins))
	for i, p := range pins {
		inputs[i] = p.name
		if p.net != netcore.InvalidNet {
			s.enqueue(p.net)
		}
	}
	if err := s.out.AddGate(&Gate{Name: name, Inputs: inputs, Weights: v.Weights, T: v.T}); err != nil {
		return err
	}
	for _, p := range pins {
		if p.part != nil {
			if err := s.synthFunction(p.part.name, p.part.tt, p.part.support); err != nil {
				return err
			}
		}
	}
	return nil
}

func gateKind(isAnd bool) string {
	if isAnd {
		return "AND"
	}
	return "OR"
}

// unateSplit handles a unate non-threshold (or over-wide) function per
// §V-C: factor a common literal, halve single-occurrence covers, or split
// on the most frequent variable; try Theorem 2 on the larger half; fall
// back to a k-way OR split.
func (s *synthesizer) unateSplit(name string, tt *truth.Table, support []netcore.Net) error {
	s.stats.UnateSplits++
	cover := tt.MinimalSOP()

	// Wide single cube: an AND that exceeds ψ. Split the literal set.
	if len(cover.Cubes) == 1 {
		return s.splitWideCube(name, cover, support)
	}

	usage := cover.Usage()

	// Condition 2: some variable appears in every cube — factor it out.
	var common []int
	for i, u := range usage {
		if u.Total() == len(cover.Cubes) {
			common = append(common, i)
		}
	}
	if len(common) > 0 {
		return s.factorCommon(name, cover, support, common)
	}

	// Condition 1: every variable appears exactly once — halve the cubes.
	allOnce := true
	for _, u := range usage {
		if u.Total() > 1 {
			allOnce = false
			break
		}
	}
	var coverA, coverB logic.Cover
	switch {
	case allOnce || s.o.Split == SplitBalanced:
		half := (len(cover.Cubes) + 1) / 2
		coverA = subCover(cover, 0, half)
		coverB = subCover(cover, half, len(cover.Cubes))
	case s.o.Split == SplitRandom:
		coverA = logic.NewCover(cover.N)
		coverB = logic.NewCover(cover.N)
		for _, c := range cover.Cubes {
			if s.rng.Intn(2) == 0 {
				coverA.AddCube(c.Clone())
			} else {
				coverB.AddCube(c.Clone())
			}
		}
		// A degenerate draw leaves a side empty; rebalance.
		if coverA.IsZero() || coverB.IsZero() {
			half := (len(cover.Cubes) + 1) / 2
			coverA = subCover(cover, 0, half)
			coverB = subCover(cover, half, len(cover.Cubes))
		}
	default:
		// Condition 3: split on the most frequent variable; condition 4:
		// break ties randomly.
		v := s.mostFrequentVar(usage)
		coverA = logic.NewCover(cover.N)
		coverB = logic.NewCover(cover.N)
		for _, c := range cover.Cubes {
			if c[v] != logic.DC {
				coverA.AddCube(c.Clone())
			} else {
				coverB.AddCube(c.Clone())
			}
		}
	}
	return s.twoWayOr(name, tt, support, coverA, coverB)
}

// mostFrequentVar picks the variable used in the most cubes, breaking ties
// with the synthesis RNG (§V-C condition 4).
func (s *synthesizer) mostFrequentVar(usage []logic.VarUsage) int {
	best := 0
	for i, u := range usage {
		if u.Total() > usage[best].Total() {
			best = i
		}
	}
	var tied []int
	for i, u := range usage {
		if u.Total() == usage[best].Total() {
			tied = append(tied, i)
		}
	}
	if len(tied) == 1 {
		return tied[0]
	}
	return tied[s.rng.Intn(len(tied))]
}

func subCover(f logic.Cover, lo, hi int) logic.Cover {
	out := logic.NewCover(f.N)
	for _, c := range f.Cubes[lo:hi] {
		out.AddCube(c.Clone())
	}
	return out
}

// splitWideCube splits an AND of more than ψ literals into a balanced
// two-input AND of sub-cubes.
func (s *synthesizer) splitWideCube(name string, cover logic.Cover, support []netcore.Net) error {
	cube := cover.Cubes[0]
	var lits []int
	for i, ph := range cube {
		if ph != logic.DC {
			lits = append(lits, i)
		}
	}
	half := (len(lits) + 1) / 2
	mk := func(idxs []int) logic.Cover {
		c := logic.NewCube(cover.N)
		for _, i := range idxs {
			c[i] = cube[i]
		}
		out := logic.NewCover(cover.N)
		out.AddCube(c)
		return out
	}
	pins := []pin{
		s.makePartPin(name, mk(lits[:half]), support),
		s.makePartPin(name, mk(lits[half:]), support),
	}
	return s.emitPinGate(name, pins, true)
}

// factorCommon implements condition 2: n = (common literals) * rest.
func (s *synthesizer) factorCommon(name string, cover logic.Cover, support []netcore.Net, common []int) error {
	rest := logic.NewCover(cover.N)
	for _, c := range cover.Cubes {
		d := c.Clone()
		for _, v := range common {
			d[v] = logic.DC
		}
		rest.AddCube(d)
	}
	rest = rest.SCC()
	restPin := s.makePartPin(name, rest, support)
	if len(common)+1 <= s.o.Fanin {
		pins := make([]pin, 0, len(common)+1)
		for _, v := range common {
			pins = append(pins, pin{
				name: s.src.NetName(support[v]),
				net:  support[v],
				neg:  cover.Cubes[0][v] == logic.Neg,
			})
		}
		pins = append(pins, restPin)
		return s.emitPinGate(name, pins, true)
	}
	// Too many common literals for one gate: common cube as its own part.
	commonCube := logic.NewCube(cover.N)
	for _, v := range common {
		commonCube[v] = cover.Cubes[0][v]
	}
	commonCover := logic.NewCover(cover.N)
	commonCover.AddCube(commonCube)
	pins := []pin{s.makePartPin(name, commonCover, support), restPin}
	return s.emitPinGate(name, pins, true)
}

// twoWayOr realizes n = A ∨ B: if either half is a threshold function and
// the merged gate fits ψ, Theorem 2 absorbs the other half as one extra
// input of the same gate; otherwise the node falls back to a k-way OR.
func (s *synthesizer) twoWayOr(name string, tt *truth.Table, support []netcore.Net, coverA, coverB logic.Cover) error {
	// Order: larger part (more cubes) first, per §V-C.
	if len(coverB.Cubes) > len(coverA.Cubes) {
		coverA, coverB = coverB, coverA
	}
	if !s.o.NoTheorem2 {
		if err, ok := s.tryTheorem2(name, coverA, coverB, support); ok {
			return err
		}
		if err, ok := s.tryTheorem2(name, coverB, coverA, support); ok {
			return err
		}
	}
	return s.kWayOr(name, tt, support)
}

// tryTheorem2 attempts to realize base ∨ extra as a single gate: base must
// be threshold and the gate (base's support plus one input) must fit ψ.
// The second return reports whether the gate was emitted.
func (s *synthesizer) tryTheorem2(name string, base, extra logic.Cover, support []netcore.Net) (error, bool) {
	baseTT, baseSup := reduceSupport(truth.FromCover(base), support)
	if baseTT.N()+1 > s.o.Fanin {
		return nil, false
	}
	s.stats.ILPCalls++
	if _, ok := s.chk.Check(baseTT, s.don, s.o.DeltaOff, s.o.MaxWeight); !ok {
		return nil, false
	}
	s.stats.ILPFeasible++

	extraPin := s.makePartPin(name, extra, support)
	// Build base ∨ pin over baseSup plus the new input.
	n := baseTT.N()
	parent := truth.New(n + 1)
	for m := 0; m < parent.Size(); m++ {
		bit := m&(1<<uint(n)) != 0
		v := baseTT.Get(m & ((1 << uint(n)) - 1))
		if extraPin.neg {
			parent.Set(m, v || !bit)
		} else {
			parent.Set(m, v || bit)
		}
	}
	s.stats.ILPCalls++
	vec, ok := s.chk.Check(parent, s.don, s.o.DeltaOff, s.o.MaxWeight)
	if !ok {
		// Cannot happen for a genuinely new input (Theorem 2), but the
		// extra pin may alias a base support signal; fall back.
		return nil, false
	}
	s.stats.ILPFeasible++
	s.stats.Theorem2++

	inputs := make([]string, n+1)
	for i, sn := range baseSup {
		inputs[i] = s.src.NetName(sn)
		s.enqueue(sn)
	}
	inputs[n] = extraPin.name
	if extraPin.net != netcore.InvalidNet {
		s.enqueue(extraPin.net)
	}
	if err := s.out.AddGate(&Gate{Name: name, Inputs: inputs, Weights: vec.Weights, T: vec.T}); err != nil {
		return err, true
	}
	if extraPin.part != nil {
		return s.synthFunction(extraPin.part.name, extraPin.part.tt, extraPin.part.support), true
	}
	return nil, true
}

// kWayOr splits the function into k = min(ψ, |cubes|) OR parts with unit
// weights (§V-C final fallback, and §V-D for binate nodes).
func (s *synthesizer) kWayOr(name string, tt *truth.Table, support []netcore.Net) error {
	cover := tt.MinimalSOP()
	k := s.o.Fanin
	if len(cover.Cubes) < k {
		k = len(cover.Cubes)
	}
	parts := make([]logic.Cover, k)
	for i := range parts {
		parts[i] = logic.NewCover(cover.N)
	}
	for i, c := range cover.Cubes {
		parts[i%k].AddCube(c.Clone())
	}
	pins := make([]pin, k)
	for i, p := range parts {
		pins[i] = s.makePartPin(name, p, support)
	}
	return s.emitPinGate(name, pins, false)
}

// binateSplit implements Fig. 8: split on the most frequent binate
// variable until k parts (or none left), finish with unate splits, and
// emit the OR of the parts.
func (s *synthesizer) binateSplit(name string, tt *truth.Table, support []netcore.Net) error {
	s.stats.BinateSplits++
	cover := tt.MinimalSOP()
	k := s.o.Fanin
	if len(cover.Cubes) < k {
		k = len(cover.Cubes)
	}
	parts := []logic.Cover{cover}

	// Phase 1: split parts on binate variables.
	for len(parts) < k {
		pi, v := s.findBinatePart(parts)
		if pi < 0 {
			break
		}
		p := parts[pi]
		pos := logic.NewCover(p.N) // positive-phase and absent cubes
		neg := logic.NewCover(p.N) // negative-phase cubes
		for _, c := range p.Cubes {
			if c[v] == logic.Neg {
				neg.AddCube(c.Clone())
			} else {
				pos.AddCube(c.Clone())
			}
		}
		parts = append(parts[:pi], parts[pi+1:]...)
		parts = append(parts, pos, neg)
	}
	// Phase 2: split multi-cube unate parts.
	for len(parts) < k {
		pi := -1
		for i, p := range parts {
			if len(p.Cubes) >= 2 {
				pi = i
				break
			}
		}
		if pi < 0 {
			break
		}
		p := parts[pi]
		half := (len(p.Cubes) + 1) / 2
		a := subCover(p, 0, half)
		b := subCover(p, half, len(p.Cubes))
		parts = append(parts[:pi], parts[pi+1:]...)
		parts = append(parts, a, b)
	}

	pins := make([]pin, len(parts))
	for i, p := range parts {
		pins[i] = s.makePartPin(name, p, support)
	}
	return s.emitPinGate(name, pins, false)
}

// findBinatePart returns the index of a part with a syntactically binate
// variable and that part's most frequent binate variable, or (-1, -1).
func (s *synthesizer) findBinatePart(parts []logic.Cover) (int, int) {
	for i, p := range parts {
		usage := p.Usage()
		best, bestCount := -1, 0
		for v, u := range usage {
			if u.Pos > 0 && u.Neg > 0 && u.Total() > bestCount {
				best, bestCount = v, u.Total()
			}
		}
		if best >= 0 {
			return i, best
		}
	}
	return -1, -1
}
