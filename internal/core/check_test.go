package core

import (
	"math/rand"
	"testing"

	"tels/internal/ilp"
	"tels/internal/truth"
)

func TestPaperWorkedExample(t *testing.T) {
	// §V-B: f = x1!x2 + x1!x3 has vector <2,-1,-1;1> with δon=0, δoff=1.
	f := truth.Var(3, 0).And(truth.Var(3, 1).Not()).
		Or(truth.Var(3, 0).And(truth.Var(3, 2).Not()))
	var solver ilp.Solver
	v, ok := CheckThreshold(f, 0, 1, &solver)
	if !ok {
		t.Fatal("f should be threshold")
	}
	if v.Weights[0] != 2 || v.Weights[1] != -1 || v.Weights[2] != -1 || v.T != 1 {
		t.Fatalf("vector = %v;%d, want <2,-1,-1;1>", v.Weights, v.T)
	}
	if !VerifyVector(f, v, 0, 1) {
		t.Fatal("vector does not verify")
	}
}

func TestPaperPositiveForm(t *testing.T) {
	// g = x1y2 + x1y3 (positive form) has vector <2,1,1;3>.
	g := truth.Var(3, 0).And(truth.Var(3, 1)).
		Or(truth.Var(3, 0).And(truth.Var(3, 2)))
	var solver ilp.Solver
	v, ok := CheckThreshold(g, 0, 1, &solver)
	if !ok {
		t.Fatal("g should be threshold")
	}
	if v.Weights[0] != 2 || v.Weights[1] != 1 || v.Weights[2] != 1 || v.T != 3 {
		t.Fatalf("vector = %v;%d, want <2,1,1;3>", v.Weights, v.T)
	}
}

func TestNonThreshold2of4(t *testing.T) {
	// f = x1x2 + x3x4 is the canonical non-threshold unate function.
	f := truth.Var(4, 0).And(truth.Var(4, 1)).
		Or(truth.Var(4, 2).And(truth.Var(4, 3)))
	var solver ilp.Solver
	if _, ok := CheckThreshold(f, 0, 1, &solver); ok {
		t.Fatal("x1x2+x3x4 must not be threshold")
	}
	if IsThresholdLP(f) {
		t.Fatal("LP oracle disagrees: x1x2+x3x4 must not be threshold")
	}
}

func TestBinateRejected(t *testing.T) {
	x := truth.Var(2, 0).Xor(truth.Var(2, 1))
	var solver ilp.Solver
	if _, ok := CheckThreshold(x, 0, 1, &solver); ok {
		t.Fatal("xor must not be threshold")
	}
	if IsThresholdLP(x) {
		t.Fatal("LP oracle: xor must not be threshold")
	}
}

func TestSimpleGatesAreThreshold(t *testing.T) {
	var solver ilp.Solver
	cases := []struct {
		name string
		fn   *truth.Table
	}{
		{"and3", truth.Var(3, 0).And(truth.Var(3, 1)).And(truth.Var(3, 2))},
		{"or3", truth.Var(3, 0).Or(truth.Var(3, 1)).Or(truth.Var(3, 2))},
		{"nand2", truth.Var(2, 0).And(truth.Var(2, 1)).Not()},
		{"nor2", truth.Var(2, 0).Or(truth.Var(2, 1)).Not()},
		{"inv", truth.Var(1, 0).Not()},
		{"buf", truth.Var(1, 0)},
		{"maj3", majority3()},
		{"aoi", truth.Var(3, 0).And(truth.Var(3, 1)).Or(truth.Var(3, 2))},
	}
	for _, tc := range cases {
		for deltaOn := 0; deltaOn <= 2; deltaOn++ {
			v, ok := CheckThreshold(tc.fn, deltaOn, 1, &solver)
			if !ok {
				t.Errorf("%s (δon=%d): not threshold", tc.name, deltaOn)
				continue
			}
			if !VerifyVector(tc.fn, v, deltaOn, 1) {
				t.Errorf("%s (δon=%d): vector %v;%d fails verification", tc.name, deltaOn, v.Weights, v.T)
			}
		}
	}
}

func majority3() *truth.Table {
	a, b, c := truth.Var(3, 0), truth.Var(3, 1), truth.Var(3, 2)
	return a.And(b).Or(a.And(c)).Or(b.And(c))
}

func TestMajorityWeights(t *testing.T) {
	var solver ilp.Solver
	v, ok := CheckThreshold(majority3(), 0, 1, &solver)
	if !ok {
		t.Fatal("majority must be threshold")
	}
	// Unit weights with T=2 satisfy δoff=1 (a single input sums to
	// 1 = T−1, two inputs reach T); the solution must stay symmetric.
	if v.Weights[0] != v.Weights[1] || v.Weights[1] != v.Weights[2] {
		t.Fatalf("majority weights not symmetric: %v", v.Weights)
	}
	if !VerifyVector(majority3(), v, 0, 1) {
		t.Fatal("majority vector fails")
	}
}

// Exhaustive agreement with the LP separability oracle on every function
// of up to 4 variables that is unate with full support.
func TestCheckAgainstOracleExhaustive(t *testing.T) {
	var solver ilp.Solver
	for n := 1; n <= 4; n++ {
		size := 1 << uint(n)
		total := 1 << uint(size)
		if n == 4 {
			// 65536 functions; still fast enough, but sample every third
			// to keep the test snappy.
			total = 1 << 16
		}
		step := 1
		if n == 4 {
			step = 3
		}
		for code := 0; code < total; code += step {
			tt := truth.New(n)
			for m := 0; m < size; m++ {
				tt.Set(m, code&(1<<uint(m)) != 0)
			}
			if isConst, _ := tt.IsConst(); isConst {
				continue
			}
			if len(tt.Support()) != n || !tt.IsUnate() {
				continue
			}
			want := IsThresholdLP(tt)
			v, got := CheckThreshold(tt, 0, 1, &solver)
			if got != want {
				t.Fatalf("n=%d code=%x: CheckThreshold=%v oracle=%v", n, code, got, want)
			}
			if got && !VerifyVector(tt, v, 0, 1) {
				t.Fatalf("n=%d code=%x: vector %v;%d fails verification", n, code, v.Weights, v.T)
			}
		}
	}
}

// Random 5- and 6-variable unate functions against the oracle.
func TestCheckAgainstOracleRandom(t *testing.T) {
	var solver ilp.Solver
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 150; iter++ {
		n := 5 + rng.Intn(2)
		tt := randomUnate(rng, n)
		if isConst, _ := tt.IsConst(); isConst {
			continue
		}
		if len(tt.Support()) != n {
			continue
		}
		want := IsThresholdLP(tt)
		v, got := CheckThreshold(tt, 0, 1, &solver)
		if got != want {
			t.Fatalf("iter %d: CheckThreshold=%v oracle=%v (f=%s)", iter, got, want, tt)
		}
		if got && !VerifyVector(tt, v, 0, 1) {
			t.Fatalf("iter %d: bad vector", iter)
		}
	}
}

// randomUnate builds a random positive-unate-with-random-phases function
// as an OR of random cubes with fixed per-variable phases.
func randomUnate(rng *rand.Rand, n int) *truth.Table {
	phases := make([]bool, n) // true = negative phase
	for i := range phases {
		phases[i] = rng.Intn(2) == 1
	}
	f := truth.New(n)
	cubes := 1 + rng.Intn(4)
	for c := 0; c < cubes; c++ {
		cube := truth.Const(n, true)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				v := truth.Var(n, i)
				if phases[i] {
					v = v.Not()
				}
				cube = cube.And(v)
			}
		}
		f = f.Or(cube)
	}
	return f
}

// Defect-tolerance margins: vectors found with larger δon must keep larger
// separation, and area must not decrease.
func TestDefectToleranceMargins(t *testing.T) {
	var solver ilp.Solver
	f := majority3()
	prevArea := 0
	for deltaOn := 0; deltaOn <= 3; deltaOn++ {
		v, ok := CheckThreshold(f, deltaOn, 1, &solver)
		if !ok {
			t.Fatalf("δon=%d: not threshold", deltaOn)
		}
		if !VerifyVector(f, v, deltaOn, 1) {
			t.Fatalf("δon=%d: margin violated", deltaOn)
		}
		area := v.T
		if area < 0 {
			area = -area
		}
		for _, w := range v.Weights {
			if w < 0 {
				area -= w
			} else {
				area += w
			}
		}
		if area < prevArea {
			t.Fatalf("δon=%d: area %d decreased from %d", deltaOn, area, prevArea)
		}
		prevArea = area
	}
}

func TestTheorem1(t *testing.T) {
	// f = x1x2 + x3x4; substitute x3 := !x1 gives g = x1x2 + !x1x4, which
	// is binate in x1, hence non-threshold; Theorem 1 concludes f is not
	// threshold. Both facts verified exactly.
	f := truth.Var(4, 0).And(truth.Var(4, 1)).
		Or(truth.Var(4, 2).And(truth.Var(4, 3)))
	g := SubstituteLiteral(f, 2, 0)
	if g.VarUnateness(0) != truth.Binate {
		t.Fatal("g should be binate in x1")
	}
	if IsThresholdLP(g) {
		t.Fatal("g must not be threshold")
	}
	if IsThresholdLP(f) {
		t.Fatal("f must not be threshold (Theorem 1)")
	}
}

// Theorem 1 as a property: for random unate threshold f, every literal
// substitution must yield a threshold g (contrapositive of the theorem).
func TestTheorem1Property(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	checked := 0
	for iter := 0; iter < 400 && checked < 60; iter++ {
		n := 3 + rng.Intn(2)
		f := randomUnate(rng, n)
		if isConst, _ := f.IsConst(); isConst {
			continue
		}
		if !IsThresholdLP(f) {
			continue
		}
		checked++
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				g := SubstituteLiteral(f, i, j)
				if isConst, _ := g.IsConst(); isConst {
					continue
				}
				if !IsThresholdLP(g) {
					t.Fatalf("Theorem 1 violated: f=%s threshold but g (x%d:=!x%d) is not", f, i, j)
				}
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d threshold functions sampled", checked)
	}
}

func TestTheorem2Constructive(t *testing.T) {
	var solver ilp.Solver
	rng := rand.New(rand.NewSource(88))
	checked := 0
	for iter := 0; iter < 300 && checked < 50; iter++ {
		n := 2 + rng.Intn(3)
		f := randomUnate(rng, n)
		if isConst, _ := f.IsConst(); isConst || len(f.Support()) != n {
			continue
		}
		// Need positive-unate f for the constructive vector.
		pos := true
		for i := 0; i < n; i++ {
			if f.VarUnateness(i) == truth.NegUnate {
				pos = false
				break
			}
		}
		if !pos {
			continue
		}
		v, ok := CheckThreshold(f, 0, 1, &solver)
		if !ok {
			continue
		}
		checked++
		// h = f ∨ x_{n+1} with the constructive vector of Theorem 2.
		h := truth.New(n + 1)
		for m := 0; m < h.Size(); m++ {
			h.Set(m, f.Get(m&((1<<uint(n))-1)) || m&(1<<uint(n)) != 0)
		}
		hv := Theorem2Vector(v, 0)
		if !VerifyVector(h, hv, 0, 1) {
			t.Fatalf("Theorem 2 constructive vector fails: f=%s v=%v;%d", f, v.Weights, v.T)
		}
		// And the ILP agrees h is threshold.
		if _, ok := CheckThreshold(h, 0, 1, &solver); !ok {
			t.Fatalf("ILP says f∨x not threshold for threshold f=%s", f)
		}
	}
	if checked < 15 {
		t.Fatalf("only %d cases checked", checked)
	}
}

func TestTheorem2PaperExample(t *testing.T) {
	// §IV: f = x1!x2 is threshold with <1,-1;1> (pos form <1,1;2>);
	// h = x1!x2 + x3 is threshold with <1,-1,2;1>.
	h := truth.Var(3, 0).And(truth.Var(3, 1).Not()).Or(truth.Var(3, 2))
	var solver ilp.Solver
	v, ok := CheckThreshold(h, 0, 1, &solver)
	if !ok {
		t.Fatal("x1!x2+x3 should be threshold")
	}
	if !VerifyVector(h, v, 0, 1) {
		t.Fatal("vector fails")
	}
	// The paper's constructive vector also verifies.
	paper := WeightVector{Weights: []int{1, -1, 2}, T: 1}
	if !VerifyVector(h, paper, 0, 1) {
		t.Fatal("paper's vector <1,-1,2;1> fails verification")
	}
}

// The exact-arithmetic ILP backend must agree with the float backend on
// every unate function of up to 4 variables.
func TestCheckThresholdExactBackend(t *testing.T) {
	fl := ilp.Solver{}
	ex := ilp.Solver{Exact: true}
	for n := 1; n <= 4; n++ {
		size := 1 << uint(n)
		step := 1
		if n == 4 {
			step = 7
		}
		for code := 0; code < 1<<uint(size); code += step {
			tt := truth.New(n)
			for m := 0; m < size; m++ {
				tt.Set(m, code&(1<<uint(m)) != 0)
			}
			if isConst, _ := tt.IsConst(); isConst {
				continue
			}
			if len(tt.Support()) != n || !tt.IsUnate() {
				continue
			}
			vf, okF := CheckThreshold(tt, 0, 1, &fl)
			ve, okE := CheckThreshold(tt, 0, 1, &ex)
			if okF != okE {
				t.Fatalf("n=%d code=%x: float=%v exact=%v", n, code, okF, okE)
			}
			if okF {
				if !VerifyVector(tt, vf, 0, 1) || !VerifyVector(tt, ve, 0, 1) {
					t.Fatalf("n=%d code=%x: vector verification failed", n, code)
				}
			}
		}
	}
}
