package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tels/internal/ilp"
	"tels/internal/truth"
)

// unateFn is a generator-friendly description of a random unate function:
// per-variable phases plus a cube set. It implements quick.Generator so
// testing/quick drives the property tests below.
type unateFn struct {
	N      int
	Phases []bool   // true = negative phase
	Cubes  [][]bool // cube c uses variable i iff Cubes[c][i]
}

// Generate implements quick.Generator.
func (unateFn) Generate(rng *rand.Rand, _ int) reflect.Value {
	n := 2 + rng.Intn(4)
	f := unateFn{N: n, Phases: make([]bool, n)}
	for i := range f.Phases {
		f.Phases[i] = rng.Intn(2) == 1
	}
	for c := 0; c < 1+rng.Intn(4); c++ {
		cube := make([]bool, n)
		any := false
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				cube[i] = true
				any = true
			}
		}
		if any {
			f.Cubes = append(f.Cubes, cube)
		}
	}
	return reflect.ValueOf(f)
}

func (f unateFn) table() *truth.Table {
	tt := truth.New(f.N)
	if len(f.Cubes) == 0 {
		return tt
	}
	for m := 0; m < tt.Size(); m++ {
	cubes:
		for _, cube := range f.Cubes {
			for i := 0; i < f.N; i++ {
				if !cube[i] {
					continue
				}
				bitSet := m&(1<<uint(i)) != 0
				if bitSet == f.Phases[i] { // literal is false
					continue cubes
				}
			}
			tt.Set(m, true)
			break
		}
	}
	return tt
}

// Property: whenever CheckThreshold reports a vector, that vector realizes
// the function exactly with the required δ margins.
func TestQuickCheckThresholdSound(t *testing.T) {
	var solver ilp.Solver
	prop := func(f unateFn) bool {
		tt := f.table()
		if isConst, _ := tt.IsConst(); isConst {
			return true
		}
		sup := tt.Support()
		if len(sup) != tt.N() {
			reduced := tt.Project(sup)
			tt = reduced
		}
		v, ok := CheckThreshold(tt, 0, 1, &solver)
		if !ok {
			// Non-threshold verdicts are validated against the LP oracle
			// elsewhere; here soundness of positives is the property.
			return !IsThresholdLP(tt)
		}
		return VerifyVector(tt, v, 0, 1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the ILP objective never beats the LP relaxation and the
// returned weights of a positive-unate function are nonnegative.
func TestQuickPositiveUnateWeights(t *testing.T) {
	var solver ilp.Solver
	prop := func(f unateFn) bool {
		pos := f
		pos.Phases = make([]bool, f.N) // force all positive phases
		tt := pos.table()
		if isConst, _ := tt.IsConst(); isConst {
			return true
		}
		if len(tt.Support()) != tt.N() {
			tt = tt.Project(tt.Support())
		}
		v, ok := CheckThreshold(tt, 0, 1, &solver)
		if !ok {
			return true
		}
		if v.T < 0 {
			return false
		}
		for _, w := range v.Weights {
			if w < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Theorem 1 — substituting x_i := !x_j in a threshold function
// leaves a threshold function (contrapositive of the paper's statement),
// checked via the LP oracle.
func TestQuickTheorem1(t *testing.T) {
	prop := func(f unateFn, iRaw, jRaw uint8) bool {
		tt := f.table()
		if isConst, _ := tt.IsConst(); isConst {
			return true
		}
		if !IsThresholdLP(tt) {
			return true
		}
		i := int(iRaw) % tt.N()
		j := int(jRaw) % tt.N()
		if i == j {
			return true
		}
		g := SubstituteLiteral(tt, i, j)
		if isConst, _ := g.IsConst(); isConst {
			return true
		}
		return IsThresholdLP(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the weight vector of a threshold function scales — doubling
// every weight and the threshold (plus margin slack) still realizes it.
func TestQuickVectorScaling(t *testing.T) {
	var solver ilp.Solver
	prop := func(f unateFn) bool {
		tt := f.table()
		if isConst, _ := tt.IsConst(); isConst {
			return true
		}
		if len(tt.Support()) != tt.N() {
			tt = tt.Project(tt.Support())
		}
		v, ok := CheckThreshold(tt, 0, 1, &solver)
		if !ok {
			return true
		}
		scaled := WeightVector{Weights: make([]int, len(v.Weights)), T: 2 * v.T}
		for i, w := range v.Weights {
			scaled.Weights[i] = 2 * w
		}
		// Doubling doubles every margin, so the scaled vector satisfies
		// the original tolerances a fortiori.
		return VerifyVector(tt, scaled, 0, 1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
