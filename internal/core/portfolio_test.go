package core

import (
	"math/rand"
	"reflect"
	"testing"

	"tels/internal/ilp"
	"tels/internal/truth"
)

// checkAllModes runs the same instance through every solver mode with the
// cache off and requires bit-identical answers.
func checkAllModes(t *testing.T, tt *truth.Table, don, doff, maxW int) (WeightVector, bool) {
	t.Helper()
	modes := []SolverMode{SolverILP, SolverPbsat, SolverPortfolio}
	var ref WeightVector
	var refOK bool
	for i, m := range modes {
		c := Checker{Mode: m, NoCache: true}
		v, ok := c.Check(tt, don, doff, maxW)
		if i == 0 {
			ref, refOK = v, ok
			continue
		}
		if ok != refOK {
			t.Fatalf("mode %v verdict %v, ilp verdict %v (f=%s don=%d doff=%d maxW=%d)",
				m, ok, refOK, tt, don, doff, maxW)
		}
		if ok && !reflect.DeepEqual(v, ref) {
			t.Fatalf("mode %v vector %v;%d, ilp vector %v;%d (f=%s)",
				m, v.Weights, v.T, ref.Weights, ref.T, tt)
		}
	}
	return ref, refOK
}

// Exhaustive cross-engine identity on every unate full-support function
// of up to 3 variables, plus margins.
func TestPortfolioIdentityExhaustive(t *testing.T) {
	for n := 1; n <= 3; n++ {
		size := 1 << uint(n)
		for code := 0; code < 1<<uint(size); code++ {
			tt := truth.New(n)
			for m := 0; m < size; m++ {
				tt.Set(m, code&(1<<uint(m)) != 0)
			}
			if isConst, _ := tt.IsConst(); isConst {
				continue
			}
			if len(tt.Support()) != n || !tt.IsUnate() {
				continue
			}
			v, ok := checkAllModes(t, tt, 0, 1, 0)
			if ok && !VerifyVector(tt, v, 0, 1) {
				t.Fatalf("n=%d code=%x: vector fails verification", n, code)
			}
		}
	}
}

// Randomized cross-engine identity on wider functions, random margins and
// weight caps.
func TestPortfolioIdentityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 120; iter++ {
		n := 3 + rng.Intn(4)
		tt := randomUnate(rng, n)
		if isConst, _ := tt.IsConst(); isConst {
			continue
		}
		if len(tt.Support()) != n {
			continue
		}
		don := rng.Intn(3)
		doff := 1 + rng.Intn(2)
		maxW := 0
		if rng.Intn(3) == 0 {
			maxW = don + doff + rng.Intn(4)
		}
		v, ok := checkAllModes(t, tt, don, doff, maxW)
		if ok && !VerifyVector(tt, v, don, doff) {
			t.Fatalf("iter %d: vector fails verification", iter)
		}
	}
}

// The pbsat engine alone must agree with the LP separability oracle —
// this exercises the Muroga-capped stage-1 domain on both verdicts.
func TestPbsatAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := Checker{Mode: SolverPbsat, NoCache: true}
	for iter := 0; iter < 100; iter++ {
		n := 4 + rng.Intn(3)
		tt := randomUnate(rng, n)
		if isConst, _ := tt.IsConst(); isConst {
			continue
		}
		if len(tt.Support()) != n {
			continue
		}
		want := IsThresholdLP(tt)
		v, got := c.Check(tt, 0, 1, 0)
		if got != want {
			t.Fatalf("iter %d: pbsat=%v oracle=%v (f=%s)", iter, got, want, tt)
		}
		if got && !VerifyVector(tt, v, 0, 1) {
			t.Fatalf("iter %d: bad vector", iter)
		}
	}
}

// The proven-UNSAT cache must change timing only, never verdicts, and
// must register hits on repeated rejections.
func TestUnsatCacheTransparent(t *testing.T) {
	ResetUnsatCache()
	defer ResetUnsatCache()

	// x0·x1 + x2·x3 is unate with full support but not threshold.
	n := 4
	tt := truth.New(n)
	for m := 0; m < tt.Size(); m++ {
		a := m&1 != 0 && m&2 != 0
		b := m&4 != 0 && m&8 != 0
		tt.Set(m, a || b)
	}
	if IsThresholdLP(tt) {
		t.Fatal("test function unexpectedly threshold")
	}

	before := SnapshotCheckCounters().UnsatCacheHits
	c := Checker{Mode: SolverILP}
	if _, ok := c.Check(tt, 0, 1, 0); ok {
		t.Fatal("first check: expected non-threshold")
	}
	if _, ok := c.Check(tt, 0, 1, 0); ok {
		t.Fatal("second check: expected non-threshold")
	}
	if hits := SnapshotCheckCounters().UnsatCacheHits - before; hits != 1 {
		t.Fatalf("unsat cache hits = %d, want 1", hits)
	}

	// Different margins form a different instance: no false sharing.
	if _, ok := c.Check(tt, 1, 1, 0); ok {
		t.Fatal("margin variant: expected non-threshold")
	}
}

// A tiny ILP budget must surface as a budget bailout (declared
// non-threshold, nothing cached), never as a cached UNSAT certificate.
func TestBudgetBailoutNotCached(t *testing.T) {
	ResetUnsatCache()
	defer ResetUnsatCache()

	rng := rand.New(rand.NewSource(5))
	tiny := Checker{Mode: SolverILP, ILP: ilp.Solver{MaxNodes: 1}}
	full := Checker{Mode: SolverILP}
	for iter := 0; iter < 300; iter++ {
		tt := randomUnate(rng, 6)
		if isConst, _ := tt.IsConst(); isConst {
			continue
		}
		if len(tt.Support()) != 6 {
			continue
		}
		// A 1-node budget bails out unless the root LP happens to be
		// integral or infeasible; hunt for an instance where it bails.
		before := SnapshotCheckCounters().BudgetBailouts
		_, ok := tiny.Check(tt, 0, 1, 0)
		if SnapshotCheckCounters().BudgetBailouts == before {
			continue
		}
		if ok {
			t.Fatal("a budget bailout must report non-threshold")
		}
		// The bailout must not have poisoned the UNSAT cache: with the
		// full budget the verdict must match the LP separability oracle.
		_, got := full.Check(tt, 0, 1, 0)
		if want := IsThresholdLP(tt); got != want {
			t.Fatalf("after bailout: full-budget=%v oracle=%v", got, want)
		}
		return
	}
	t.Skip("no bailout instance found in 300 trials")
}

// Portfolio race counters move, and the race path yields the ILP vector.
func TestPortfolioCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	before := SnapshotCheckCounters()
	c := Checker{Mode: SolverPortfolio, NoCache: true}
	ilpc := Checker{Mode: SolverILP, NoCache: true}
	checked := 0
	for iter := 0; iter < 40 && checked < 20; iter++ {
		tt := randomUnate(rng, 5)
		if isConst, _ := tt.IsConst(); isConst {
			continue
		}
		if len(tt.Support()) != 5 {
			continue
		}
		checked++
		v1, ok1 := c.Check(tt, 0, 1, 0)
		v2, ok2 := ilpc.Check(tt, 0, 1, 0)
		if ok1 != ok2 || (ok1 && !reflect.DeepEqual(v1, v2)) {
			t.Fatalf("portfolio diverged from ilp on %s", tt)
		}
	}
	after := SnapshotCheckCounters()
	if after.Checks-before.Checks < int64(checked)*2 {
		t.Fatalf("check counter did not advance: %+v -> %+v", before, after)
	}
	if after.Races-before.Races != after.ILPWins-before.ILPWins+after.PbsatWins-before.PbsatWins {
		// Only races that ended with a proven winner increment a win
		// counter; with full default budgets every race ends proven.
		t.Fatalf("races %d != ilp wins %d + pbsat wins %d",
			after.Races-before.Races, after.ILPWins-before.ILPWins, after.PbsatWins-before.PbsatWins)
	}
}

func TestParseSolverMode(t *testing.T) {
	cases := []struct {
		in   string
		want SolverMode
		err  bool
	}{
		{"", SolverPortfolio, false},
		{"portfolio", SolverPortfolio, false},
		{"ilp", SolverILP, false},
		{"pbsat", SolverPbsat, false},
		{"simplex", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseSolverMode(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Fatalf("ParseSolverMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	for _, m := range []SolverMode{SolverPortfolio, SolverILP, SolverPbsat} {
		back, err := ParseSolverMode(m.String())
		if err != nil || back != m {
			t.Fatalf("round trip %v failed", m)
		}
	}
}
