package core

import (
	"fmt"
	"math/rand"

	"tels/internal/netcore"
	"tels/internal/network"
	"tels/internal/opt"
	"tels/internal/truth"
)

// Options configures threshold network synthesis.
type Options struct {
	// Fanin is the fanin restriction ψ on every threshold gate (≥ 2).
	Fanin int
	// DeltaOn and DeltaOff are the defect tolerances of Eq. 1. The paper's
	// defaults are δon = 0 and δoff = 1.
	DeltaOn  int
	DeltaOff int
	// DeltaOnOverrides raises (or lowers) the ON-set separation margin for
	// individual source nodes: when the node named by a key is synthesized,
	// every gate emitted for it — including split parts — uses the mapped
	// δon instead of the global DeltaOn. Nodes collapsed into a consumer
	// take the consumer's margin. This is the selective-hardening hook of
	// internal/resyn: only the blamed gates pay the Fig. 12 area cost.
	DeltaOnOverrides map[string]int
	// Seed drives the random tie-break between equally frequent split
	// variables (§V-C condition 4).
	Seed int64
	// MaxILPNodes bounds the branch-and-bound budget per threshold check;
	// zero selects the ilp package default.
	MaxILPNodes int
	// ExactILP solves the threshold ILPs in exact rational arithmetic
	// instead of float64 — slower, immune to rounding pathologies.
	ExactILP bool
	// MaxWeight bounds |wᵢ| of every gate input (0 = unbounded): RTD peak
	// currents scale with the weight, so physical designs cap the ratio
	// to the unit RTD. Functions needing larger weights are split.
	MaxWeight int
	// NoCollapse disables the Fig. 4 node-collapsing step, synthesizing
	// every node over its immediate fanins. Ablation knob: quantifies how
	// much of TELS's gate reduction comes from collapsing.
	NoCollapse bool
	// NoTheorem2 disables the Theorem-2 merge after two-way splits,
	// always falling back to the k-way OR split. Ablation knob.
	NoTheorem2 bool
	// Split selects the unate-splitting heuristic. The paper (§VII)
	// conjectures "there may also exist better partitioning heuristics";
	// the alternatives here let that be measured.
	Split SplitStrategy
	// Solver selects the threshold-check engine: the default
	// SolverPortfolio races the simplex ILP against the pbsat
	// pseudo-Boolean solver per node, SolverILP and SolverPbsat pin one
	// engine. Every mode returns bit-identical networks on the same
	// input (the race only changes which engine proves the answer
	// first), so this is a deployment knob, not a semantic one.
	Solver SolverMode
}

// SplitStrategy selects how a non-threshold unate cover is partitioned.
type SplitStrategy int

// Splitting heuristics.
const (
	// SplitFrequency is the paper's §V-C heuristic: split on the most
	// frequently appearing variable, ties broken randomly.
	SplitFrequency SplitStrategy = iota
	// SplitBalanced halves the cube list, keeping the two parts the same
	// size regardless of variable frequency.
	SplitBalanced
	// SplitRandom partitions the cubes uniformly at random — the strawman
	// baseline for the heuristics experiment.
	SplitRandom
)

func (s SplitStrategy) String() string {
	switch s {
	case SplitFrequency:
		return "frequency"
	case SplitBalanced:
		return "balanced"
	case SplitRandom:
		return "random"
	}
	return "unknown"
}

// DefaultOptions returns the paper's default configuration: ψ = 3,
// δon = 0, δoff = 1.
func DefaultOptions() Options {
	return Options{Fanin: 3, DeltaOn: 0, DeltaOff: 1}
}

// Validate reports whether the options are self-consistent; Synthesize
// and OneToOne run the same check, this export is for callers (e.g. the
// re-synthesis loop) that use the knobs without going through them.
func (o *Options) Validate() error { return o.validate() }

func (o *Options) validate() error {
	if o.Fanin < 2 {
		return fmt.Errorf("core: fanin restriction %d < 2", o.Fanin)
	}
	if o.Fanin > truth.MaxVars {
		return fmt.Errorf("core: fanin restriction %d exceeds the %d-variable engine limit",
			o.Fanin, truth.MaxVars)
	}
	if o.DeltaOn < 0 || o.DeltaOff < 0 {
		return fmt.Errorf("core: negative defect tolerance (δon=%d, δoff=%d)", o.DeltaOn, o.DeltaOff)
	}
	maxDon := o.DeltaOn
	for name, don := range o.DeltaOnOverrides {
		if don < 0 {
			return fmt.Errorf("core: negative δon override %d for node %s", don, name)
		}
		if don > maxDon {
			maxDon = don
		}
	}
	if o.MaxWeight != 0 && o.MaxWeight < maxDon+o.DeltaOff {
		return fmt.Errorf("core: max weight %d below δon+δoff = %d (even OR gates need that much)",
			o.MaxWeight, maxDon+o.DeltaOff)
	}
	return nil
}

// DeltaOnFor returns the margin in effect for the named source node: its
// override when present, the global DeltaOn otherwise.
func (o *Options) DeltaOnFor(name string) int {
	if don, ok := o.DeltaOnOverrides[name]; ok {
		return don
	}
	return o.DeltaOn
}

// SynthStats reports what the synthesizer did.
type SynthStats struct {
	ILPCalls     int // threshold checks attempted
	ILPFeasible  int // checks that found a weight vector
	Collapses    int // node substitutions performed during collapsing
	UnateSplits  int // unate splitting steps
	BinateSplits int // binate splitting steps
	Theorem2     int // Theorem-2 merges applied
}

// maxSupport bounds collapsed/split function supports so truth tables stay
// small even when the input network has wide nodes.
const maxSupport = 12

// Synthesize converts the Boolean network into a functionally equivalent
// threshold network per the paper's methodology (Fig. 3): every primary
// output is collapsed, checked, and recursively split until all nodes are
// threshold gates. Fanout nodes of the source network are preserved.
//
// The source is converted into the arena-backed netcore representation
// after structural pre-decomposition; all cone reads (local functions,
// fanins, fanout counts) run against the slab, and the word-parallel
// NetLocalTT replaces the per-node cone walk.
func Synthesize(src *network.Network, o Options) (*Network, SynthStats, error) {
	if err := o.validate(); err != nil {
		return nil, SynthStats{}, err
	}
	if err := src.Validate(); err != nil {
		return nil, SynthStats{}, err
	}
	work := src.Clone()
	// Nodes wider than the truth-table engine are structurally split
	// first; the algorithm itself enforces ψ on the result.
	opt.DecomposeLarge(work, maxSupport-2)
	cw := netcore.FromNetwork(work)

	s := &synthesizer{
		o:      o,
		src:    cw,
		out:    NewNetwork(src.Name),
		fanout: make(map[netcore.Net]bool),
		done:   make(map[string]bool),
		rng:    rand.New(rand.NewSource(o.Seed)),
		chk:    o.Checker(),
	}
	for _, n := range cw.InternalNets() {
		if cw.NetFanoutCount(n) > 1 {
			s.fanout[n] = true
		}
	}
	for _, in := range cw.Inputs() {
		s.out.AddInput(cw.NetName(in))
		s.done[cw.NetName(in)] = true
	}
	s.queue = append(s.queue, cw.Outputs()...)
	for len(s.queue) > 0 {
		n := s.queue[0]
		s.queue = s.queue[1:]
		if err := s.processNode(n); err != nil {
			return nil, s.stats, err
		}
	}
	for _, po := range cw.Outputs() {
		s.out.MarkOutput(cw.NetName(po))
	}
	// Distinct cones can synthesize identical split gates; merge them.
	s.out.MergeDuplicates()
	if err := s.out.Validate(); err != nil {
		return nil, s.stats, fmt.Errorf("core: internal error, invalid output network: %w", err)
	}
	return s.out, s.stats, nil
}

type synthesizer struct {
	o      Options
	src    *netcore.Network
	out    *Network
	fanout map[netcore.Net]bool
	done   map[string]bool
	queue  []netcore.Net
	rng    *rand.Rand
	chk    Checker
	stats  SynthStats
	serial int
	// don is the margin of the source node currently being synthesized;
	// processNode sets it from the per-node overrides before any gate of
	// that node (split parts included) is emitted.
	don int
}

func (s *synthesizer) freshName(base string) string {
	for {
		s.serial++
		name := fmt.Sprintf("%s~%d", base, s.serial)
		if s.out.Gate(name) == nil && s.src.NetByName(name) == netcore.InvalidNet {
			return name
		}
	}
}

// enqueue schedules a source net for synthesis if not already handled.
func (s *synthesizer) enqueue(n netcore.Net) {
	if s.src.NetKind(n) == netcore.NetInput || s.done[s.src.NetName(n)] {
		return
	}
	s.queue = append(s.queue, n)
}

// processNode synthesizes one source-network node into threshold gates.
func (s *synthesizer) processNode(n netcore.Net) error {
	name := s.src.NetName(n)
	if s.done[name] {
		return nil
	}
	s.done[name] = true
	s.don = s.o.DeltaOnFor(name)
	support := append([]netcore.Net(nil), s.src.NetFanins(n)...)
	support = dedupeNets(support)
	tt, err := s.src.NetLocalTT(n, support)
	if err != nil {
		return err
	}
	return s.synthFunction(name, tt, support)
}

// synthFunction emits a gate named name computing tt over the support
// signals, splitting recursively when the function is not threshold.
func (s *synthesizer) synthFunction(name string, tt *truth.Table, support []netcore.Net) error {
	tt, support = reduceSupport(tt, support)

	if isConst, v := tt.IsConst(); isConst {
		return s.emitConstGate(name, v)
	}

	// Node collapsing (Fig. 4): substitute non-fanout internal support
	// nodes while the support stays within ψ.
	if !s.o.NoCollapse {
		tt, support = s.collapse(tt, support)
	}

	// Collapsing composes exact cone functions; a cone such as x*!x can
	// reduce to a constant here even though the node cover was not.
	if isConst, v := tt.IsConst(); isConst {
		return s.emitConstGate(name, v)
	}

	// Classify unateness exactly.
	binate := false
	for i := 0; i < tt.N(); i++ {
		if tt.VarUnateness(i) == truth.Binate {
			binate = true
			break
		}
	}
	if binate {
		return s.binateSplit(name, tt, support)
	}

	// Threshold check, only meaningful within the fanin restriction.
	if tt.N() <= s.o.Fanin {
		s.stats.ILPCalls++
		if v, ok := s.chk.Check(tt, s.don, s.o.DeltaOff, s.o.MaxWeight); ok {
			s.stats.ILPFeasible++
			return s.emitGate(name, v, support)
		}
	}
	return s.unateSplit(name, tt, support)
}

// emitConstGate emits a zero-input gate: T = −δon fires on every vector
// (Σ = 0 ≥ T with margin δon), while any threshold above δoff never fires.
func (s *synthesizer) emitConstGate(name string, value bool) error {
	t := s.o.DeltaOff
	if t < 1 {
		t = 1
	}
	if value {
		t = -s.don
	}
	return s.out.AddGate(&Gate{Name: name, T: t})
}

// emitGate creates the LTG and schedules its support nets.
func (s *synthesizer) emitGate(name string, v WeightVector, support []netcore.Net) error {
	inputs := make([]string, len(support))
	for i, n := range support {
		inputs[i] = s.src.NetName(n)
		s.enqueue(n)
	}
	return s.out.AddGate(&Gate{Name: name, Inputs: inputs, Weights: v.Weights, T: v.T})
}

// collapse implements the Fig. 4 node-collapsing loop on the function
// level: repeatedly substitute a support net's function into tt unless
// the net is a primary input, a fanout net, already synthesized, or the
// substitution would exceed the fanin restriction (the "undo" branch).
func (s *synthesizer) collapse(tt *truth.Table, support []netcore.Net) (*truth.Table, []netcore.Net) {
	failed := make(map[netcore.Net]bool)
	for {
		progress := false
		for idx, cand := range support {
			if s.src.NetKind(cand) == netcore.NetInput || s.fanout[cand] ||
				s.done[s.src.NetName(cand)] || failed[cand] {
				continue
			}
			// Fig. 4 checks the fanin count l = |F| syntactically before
			// accepting a substitution; doing the same here avoids building
			// truth tables for substitutions that will be undone anyway.
			if s.mergedSupportSize(support, idx) > s.o.Fanin {
				failed[cand] = true
				continue
			}
			newTT, newSupport, ok := s.substitute(tt, support, idx)
			if !ok || newTT.N() > s.o.Fanin || newTT.N() > maxSupport {
				failed[cand] = true
				continue
			}
			tt, support = newTT, newSupport
			s.stats.Collapses++
			progress = true
			break
		}
		if !progress {
			return tt, support
		}
	}
}

// mergedSupportSize returns |support \ {support[idx]} ∪ fanins(support[idx])|.
func (s *synthesizer) mergedSupportSize(support []netcore.Net, idx int) int {
	seen := make(map[netcore.Net]bool, len(support)+4)
	for i, n := range support {
		if i != idx {
			seen[n] = true
		}
	}
	for _, n := range s.src.NetFanins(support[idx]) {
		seen[n] = true
	}
	return len(seen)
}

// substitute replaces support[idx] by that net's own function, returning
// the new function over the merged, reduced support. This stays pure
// truth-table math (rather than NetLocalTT over the merged support): the
// incoming tt can already be a composition whose intermediate cone inputs
// were dropped by reduceSupport, so the cone no longer exists in the
// network as a unit.
func (s *synthesizer) substitute(tt *truth.Table, support []netcore.Net, idx int) (*truth.Table, []netcore.Net, bool) {
	victim := support[idx]
	victimFanins := s.src.NetFanins(victim)
	merged := make([]netcore.Net, 0, len(support)+len(victimFanins))
	seen := make(map[netcore.Net]bool)
	for i, n := range support {
		if i == idx {
			continue
		}
		if !seen[n] {
			seen[n] = true
			merged = append(merged, n)
		}
	}
	for _, n := range victimFanins {
		if !seen[n] {
			seen[n] = true
			merged = append(merged, n)
		}
	}
	if len(merged) > maxSupport {
		return nil, nil, false
	}
	victimTT := truth.FromCover(s.src.NetCover(victim))
	// Evaluate the composition minterm by minterm over the merged support.
	out := truth.New(len(merged))
	pos := make(map[netcore.Net]int, len(merged))
	for i, n := range merged {
		pos[n] = i
	}
	oldAssign := make([]bool, len(support))
	vicAssign := make([]bool, len(victimFanins))
	for m := 0; m < out.Size(); m++ {
		for i, f := range victimFanins {
			vicAssign[i] = m&(1<<uint(pos[f])) != 0
		}
		vicVal := victimTT.Eval(vicAssign)
		for i, n := range support {
			if i == idx {
				oldAssign[i] = vicVal
			} else {
				oldAssign[i] = m&(1<<uint(pos[n])) != 0
			}
		}
		out.Set(m, tt.Eval(oldAssign))
	}
	rtt, rsupport := reduceSupport(out, merged)
	return rtt, rsupport, true
}

// reduceSupport drops variables the function does not depend on.
func reduceSupport(tt *truth.Table, support []netcore.Net) (*truth.Table, []netcore.Net) {
	sup := tt.Support()
	if len(sup) == len(support) {
		return tt, support
	}
	reduced := tt.Project(sup)
	out := make([]netcore.Net, len(sup))
	for i, v := range sup {
		out[i] = support[v]
	}
	return reduced, out
}

func dedupeNets(nets []netcore.Net) []netcore.Net {
	seen := make(map[netcore.Net]bool, len(nets))
	out := nets[:0]
	for _, n := range nets {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
